/**
 * @file
 * Shared helpers for the evaluation benchmarks: running a workload on a
 * machine configuration, printing Figure 4.1-style execution-time bars
 * and Table 4.1-style statistics rows, and aggregating PP toolchain
 * statistics (Table 5.2).
 */

#ifndef FLASHSIM_BENCH_BENCH_UTIL_HH_
#define FLASHSIM_BENCH_BENCH_UTIL_HH_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/workload.hh"
#include "machine/report.hh"
#include "machine/runner.hh"
#include "ppisa/ppsim.hh"
#include "sim/sweep.hh"

namespace flashsim::bench
{

using apps::Scale;
using machine::Machine;
using machine::MachineConfig;
using machine::MissLatencies;
using machine::Summary;

/** A finished run plus its machine (kept for detailed inspection). */
struct RunOutcome
{
    std::unique_ptr<Machine> machine;
    Summary summary;
};

inline RunOutcome
runApp(const MachineConfig &cfg, const std::string &app,
       Scale scale = Scale::Default)
{
    auto w = apps::makeWorkload(app, scale);
    RunOutcome out;
    out.machine = apps::runWorkload(cfg, *w);
    out.summary = machine::summarize(*out.machine);
    return out;
}

/** FLASH/ideal pair for one workload. */
struct Pair
{
    RunOutcome flash;
    RunOutcome ideal;

    double
    slowdownPct() const
    {
        return 100.0 * (static_cast<double>(flash.summary.execTime) /
                            static_cast<double>(ideal.summary.execTime) -
                        1.0);
    }
};

inline Pair
runPair(const std::string &app, int procs, std::uint32_t cache_bytes,
        Scale scale = Scale::Default)
{
    Pair p;
    p.flash = runApp(MachineConfig::flash(procs, cache_bytes), app, scale);
    p.ideal = runApp(MachineConfig::ideal(procs, cache_bytes), app, scale);
    return p;
}

/** One FLASH/ideal comparison in a multi-config sweep. */
struct PairSpec
{
    std::string app;
    MachineConfig flash;
    MachineConfig ideal;
    Scale scale = Scale::Default;
};

/** PairSpec from the standard machine pair for @p app. */
inline PairSpec
pairSpec(const std::string &app, int procs, std::uint32_t cache_bytes,
         Scale scale = Scale::Default)
{
    return {app, MachineConfig::flash(procs, cache_bytes),
            MachineConfig::ideal(procs, cache_bytes), scale};
}

/**
 * Run every spec's FLASH and ideal machine as independent jobs through
 * @p runner (2 jobs per spec). Results come back in spec order and are
 * bit-identical to calling runPair() serially, whatever the worker
 * count.
 */
inline std::vector<Pair>
runPairs(const std::vector<PairSpec> &specs, sim::SweepRunner &runner)
{
    std::vector<std::function<RunOutcome()>> jobs;
    jobs.reserve(2 * specs.size());
    for (const PairSpec &s : specs) {
        jobs.emplace_back([s] { return runApp(s.flash, s.app, s.scale); });
        jobs.emplace_back([s] { return runApp(s.ideal, s.app, s.scale); });
    }
    std::vector<RunOutcome> outs = runner.run(std::move(jobs));
    std::vector<Pair> pairs(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        pairs[i].flash = std::move(outs[2 * i]);
        pairs[i].ideal = std::move(outs[2 * i + 1]);
    }
    return pairs;
}

/** One-line sweep metrics report for a bench's stderr footer. */
inline void
printSweepMetrics(const char *label, const sim::SweepMetrics &m)
{
    std::fprintf(stderr,
                 "[sweep] %s: %zu jobs on %d workers, wall %.2fs, "
                 "serial %.2fs, speedup %.2fx, %.2f jobs/s\n",
                 label, m.jobs.size(), m.workers, m.wallSeconds,
                 m.serialSeconds, m.speedup(), m.jobsPerSecond());
}

/** Figure 4.1-style paired bars, FLASH normalized to 100. */
inline void
printBars(const std::string &app, const Pair &p)
{
    double norm = static_cast<double>(p.flash.summary.execTime);
    auto bar = [&](const char *label, const Summary &s) {
        double h = 100.0 * static_cast<double>(s.execTime) / norm;
        std::printf("  %-8s %-6s %6.1f |", app.c_str(), label, h);
        std::printf(" busy %5.1f cont %4.1f read %5.1f write %4.1f sync "
                    "%5.1f\n",
                    h * s.busy, h * s.cont, h * s.read, h * s.write,
                    h * s.sync);
    };
    bar("FLASH", p.flash.summary);
    bar("ideal", p.ideal.summary);
}

/** Table 4.1-style statistics column for one workload. */
inline void
printTable41Row(const std::string &app, const Pair &p,
                const MissLatencies &flash_lat,
                const MissLatencies &ideal_lat)
{
    const Summary &s = p.flash.summary;
    std::printf("%-8s miss %5.2f%% | LC %5.1f LDR %5.1f RC %5.1f RDH "
                "%5.1f RDR %5.1f | CRMT F %3.0f I %3.0f | mem %4.1f%% "
                "pp %4.1f%% | FLASH +%.1f%%\n",
                app.c_str(), 100.0 * s.missRate,
                100.0 * s.dist.localClean,
                100.0 * s.dist.localDirtyRemote,
                100.0 * s.dist.remoteClean,
                100.0 * s.dist.remoteDirtyHome,
                100.0 * s.dist.remoteDirtyRemote, flash_lat.crmt(s.dist),
                ideal_lat.crmt(p.ideal.summary.dist),
                100.0 * s.avgMemOcc, 100.0 * s.avgPpOcc,
                p.slowdownPct());
}

/** Aggregate dynamic PP statistics over all nodes (Table 5.2). */
inline ppisa::RunStats
aggregatePpStats(const Machine &m)
{
    ppisa::RunStats total;
    for (int i = 0; i < m.numProcs(); ++i) {
        if (const magic::PpTimingModel *pm = m.node(i).magic().ppModel())
            total.accumulate(pm->runStats());
    }
    return total;
}

} // namespace flashsim::bench

#endif // FLASHSIM_BENCH_BENCH_UTIL_HH_
