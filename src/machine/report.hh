/**
 * @file
 * Run summaries: the quantities the paper's tables and figures report,
 * extracted from a finished Machine.
 */

#ifndef FLASHSIM_MACHINE_REPORT_HH_
#define FLASHSIM_MACHINE_REPORT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.hh"

namespace flashsim::machine
{

/** Read-miss distribution as fractions summing to ~1 (Table 4.1). */
struct ReadMissDistribution
{
    double localClean = 0;
    double localDirtyRemote = 0;
    double remoteClean = 0;
    double remoteDirtyHome = 0;
    double remoteDirtyRemote = 0;
};

/** No-contention read-miss latencies per class (Table 3.3). */
struct MissLatencies
{
    double localClean = 0;
    double localDirtyRemote = 0;
    double remoteClean = 0;
    double remoteDirtyHome = 0;
    double remoteDirtyRemote = 0;

    /** Contentionless read miss time for a distribution (Section 4.1). */
    double crmt(const ReadMissDistribution &d) const;
};

/** Everything the paper reports about one run. */
struct Summary
{
    Tick execTime = 0;

    // Execution-time breakdown, as fractions of aggregate processor time
    // (Figure 4.1's Busy / Cont / Read / Write / Sync categories).
    double busy = 0;
    double cont = 0;
    double read = 0;
    double write = 0;
    double sync = 0;

    double missRate = 0; ///< processor cache misses / references
    ReadMissDistribution dist;

    double avgMemOcc = 0;
    double maxMemOcc = 0;
    double avgPpOcc = 0;
    double maxPpOcc = 0;

    std::uint64_t cacheReads = 0;
    std::uint64_t cacheWrites = 0;
    std::uint64_t backgroundRefs = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t handlerInvocations = 0;
    double handlersPerMiss = 0;

    std::uint64_t specIssued = 0;
    double specUselessFrac = 0;

    double mdcMissRate = 0;
    double mdcReadMissRate = 0;
    std::uint64_t mdcProtocolMemOps = 0; ///< MDC fills + writebacks

    std::uint64_t nacksSent = 0;
};

/** Collect a Summary from a machine that has finished run(). */
Summary summarize(const Machine &m);

/** Figure 4.1-style row: normalized total plus category percentages. */
std::string breakdownRow(const std::string &label, const Summary &s,
                         double norm_exec_time);

/** Header matching breakdownRow. */
std::string breakdownHeader();

} // namespace flashsim::machine

#endif // FLASHSIM_MACHINE_REPORT_HH_
