/**
 * @file
 * Dynamic pointer allocation directory storage.
 *
 * The paper's initial protocol (Simoni's dynamic pointer allocation)
 * keeps one 8-byte directory header per 128-byte memory line, holding
 * state bits and a link into a linked list of sharers allocated from a
 * free pool. All of it lives in main memory and is accessed by the PP
 * through the MAGIC data cache; this class is that memory region.
 *
 * The store is word-addressable (loadWord/storeWord) so PP handler
 * programs can execute against it through a PpMemory adapter, and also
 * exposes typed helpers used by the authoritative C++ handlers. Both
 * views manipulate the same packed words.
 *
 * Address map (per node; nodes never touch each other's region):
 *   headerAddr(line)  = kDirHeaderBase + lineNumber(line) * 8
 *   linkAddr(idx)     = kLinkPoolBase + idx * 8
 *   free-list head    = linkAddr(0)  (link index 0 is the null index)
 *
 * Header word: bit 0 dirty, bit 1 pending, bits [16,32) head link index,
 * bits [32,48) owner node. Link word: bits [0,16) node, bits [16,32)
 * next link index.
 */

#ifndef FLASHSIM_PROTOCOL_DIRECTORY_HH_
#define FLASHSIM_PROTOCOL_DIRECTORY_HH_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace flashsim::protocol
{

/** Base of the directory header region in the protocol address space. */
inline constexpr Addr kDirHeaderBase = Addr{1} << 44;
/**
 * Base of the sharer-link pool region. The region bases are staggered
 * by a quarter of the MAGIC data cache's sets so the header, link and
 * ack-table words of one memory line do not systematically alias into
 * the same MDC set (a real machine gets this for free from physical
 * allocation).
 */
inline constexpr Addr kLinkPoolBase = (Addr{1} << 45) + 64 * 128;

/** Header field bit positions (shared with the PP handler programs). */
namespace dirfield
{
inline constexpr unsigned kDirtyBit = 0;
inline constexpr unsigned kPendingBit = 1;
inline constexpr unsigned kHeadLo = 16;
inline constexpr unsigned kHeadWidth = 16;
inline constexpr unsigned kOwnerLo = 32;
inline constexpr unsigned kOwnerWidth = 16;
} // namespace dirfield

/** Address of the directory header word for @p addr's line. */
constexpr Addr
headerAddr(Addr addr)
{
    return kDirHeaderBase + lineNumber(addr) * 8;
}

/** Address of link-pool entry @p idx. */
constexpr Addr
linkAddr(std::uint32_t idx)
{
    return kLinkPoolBase + static_cast<Addr>(idx) * 8;
}

/** Decoded directory header. */
struct DirHeader
{
    bool dirty = false;
    /** Reserved transient-state bit. The shipped protocol resolves all
     *  races by NACK/retry instead of pending states (see handlers.hh),
     *  so this bit is never set; it is kept in the encoding because a
     *  pending-based protocol variant would live here. */
    bool pending = false;
    std::uint32_t head = 0;  ///< first sharer link index (0 = empty)
    NodeId owner = 0;        ///< owning node when dirty

    static DirHeader unpack(std::uint64_t w);
    std::uint64_t pack() const;
};

/** Decoded sharer-list link entry. */
struct LinkEntry
{
    NodeId node = 0;
    std::uint32_t next = 0;

    static LinkEntry unpack(std::uint64_t w);
    std::uint64_t pack() const;
};

/**
 * The per-node protocol data store: directory headers plus the sharer
 * link pool with an embedded free list.
 */
class DirectoryStore
{
  public:
    /** @param pool_limit maximum live link entries (fatal if exceeded). */
    explicit DirectoryStore(std::uint32_t pool_limit = 1u << 22);

    // -- Word-level access (PP handler programs / MDC path) ---------------
    std::uint64_t loadWord(Addr a) const;
    void storeWord(Addr a, std::uint64_t v);

    // -- Typed access (authoritative C++ handlers) -------------------------
    DirHeader header(Addr line) const;
    void setHeader(Addr line, const DirHeader &h);

    LinkEntry link(std::uint32_t idx) const;
    void setLink(std::uint32_t idx, const LinkEntry &e);

    /** Prepend @p node to @p line's sharer list. */
    void addSharer(Addr line, NodeId node);

    /**
     * Remove @p node from @p line's sharer list.
     * @return zero-based position the node was found at, or -1.
     */
    int removeSharer(Addr line, NodeId node);

    /** All sharers of @p line, head first. */
    std::vector<NodeId> sharers(Addr line) const;

    bool isSharer(Addr line, NodeId node) const;
    int countSharers(Addr line) const;

    /** Free the whole sharer list (used after invalidating all). */
    void clearSharers(Addr line);

    /** Live (allocated, in-use) link entries. */
    std::uint32_t liveLinks() const { return liveLinks_; }

  private:
    std::uint32_t allocLink();
    void freeLink(std::uint32_t idx);
    /** Keep the free-list head word readable by PP programs. */
    void mirrorFreeHead();

    std::unordered_map<Addr, std::uint64_t> words_;
    std::uint32_t freeHead_ = 1;
    std::uint32_t nextUnused_ = 2;
    std::uint32_t poolLimit_;
    std::uint32_t liveLinks_ = 0;
};

} // namespace flashsim::protocol

#endif // FLASHSIM_PROTOCOL_DIRECTORY_HH_
