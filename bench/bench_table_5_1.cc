/**
 * @file
 * Reproduces Table 5.1 ("Impact of Speculative Memory Operations"):
 * each workload runs with the jump table programmed normally and with
 * all speculative memory operations disabled (the PP then initiates
 * the memory access itself after reading the directory state). Reports
 * the fraction of useless speculative reads and the execution-time
 * increase without speculation, at 1 MB and at the paper's small cache
 * size (4 KB; 16 KB for Ocean; the paper marks Barnes/LU/OS N/A).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

struct Row
{
    const char *app;
    double paperUseless1M;
    double paperSlow1M;
    double paperUselessSmall; // <0: N/A
    double paperSlowSmall;
};

const Row kRows[] = {
    {"barnes", 54.0, 12.7, -1, -1}, {"fft", 43.5, 0.9, 5.9, 6.8},
    {"lu", 33.5, 0.2, -1, -1},      {"mp3d", 67.8, 11.8, 37.7, 11.4},
    {"ocean", 20.0, 2.2, 1.2, 21.0}, {"os", 21.9, 2.9, -1, -1},
    {"radix", 59.9, 4.8, 18.0, 17.9},
};

struct SpecResult
{
    double uselessPct = 0;
    double slowdownPct = 0;
};

SpecResult
measure(const std::string &app, std::uint32_t cache_bytes)
{
    int procs = app == "os" ? 8 : 16;
    MachineConfig with = MachineConfig::flash(procs, cache_bytes);
    MachineConfig without = with;
    without.magic.speculation = false;

    RunOutcome on = runApp(with, app);
    RunOutcome off = runApp(without, app);

    SpecResult r;
    r.uselessPct = 100.0 * on.summary.specUselessFrac;
    r.slowdownPct =
        100.0 * (static_cast<double>(off.summary.execTime) /
                     static_cast<double>(on.summary.execTime) -
                 1.0);
    return r;
}

} // namespace

int
main()
{
    std::printf("Table 5.1: impact of speculative memory operations\n\n");
    std::printf("%-8s | %21s | %21s || %21s | %21s\n", "",
                "useless w/ spec (1MB)", "slowdown w/o (1MB)",
                "useless w/ spec (4KB)", "slowdown w/o (4KB)");
    std::printf("%-8s | %10s %10s | %10s %10s || %10s %10s | %10s %10s\n",
                "app", "paper", "meas", "paper", "meas", "paper", "meas",
                "paper", "meas");

    for (const Row &row : kRows) {
        SpecResult big = measure(row.app, 1u << 20);
        std::printf("%-8s | %9.1f%% %9.1f%% | %9.1f%% %9.1f%% ||",
                    row.app, row.paperUseless1M, big.uselessPct,
                    row.paperSlow1M, big.slowdownPct);
        if (row.paperUselessSmall < 0) {
            std::printf(" %10s %10s | %10s %10s\n", "N/A", "-", "N/A",
                        "-");
        } else {
            std::uint32_t small =
                std::string(row.app) == "ocean" ? 16384u : 4096u;
            SpecResult sm = measure(row.app, small);
            std::printf(" %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n",
                        row.paperUselessSmall, sm.uselessPct,
                        row.paperSlowSmall, sm.slowdownPct);
        }
    }
    std::printf("\n(paper's finding: speculation is always beneficial — "
                "the issue-early win outweighs useless reads loading "
                "the memory system, and the benefit grows with small "
                "caches where more misses are local)\n");
    return 0;
}
