#include "verify/sentinel.hh"

#include <iostream>

#include "sim/logging.hh"

namespace flashsim::verify
{

Sentinel::Sentinel(EventQueue &eq, const VerifyParams &params,
                   int num_nodes)
    : eq_(eq), params_(params), numNodes_(num_nodes),
      injector_(params.fault)
{
    rings_.reserve(static_cast<std::size_t>(num_nodes));
    for (int i = 0; i < num_nodes; ++i)
        rings_.emplace_back(params_.traceDepth);

    if (params_.watchdog) {
        watchdog_ = std::make_unique<Watchdog>(eq_, params_);
        watchdog_->onTrip = [this](const std::string &r) { onTrip(r); };
    }

    postMortemToken_ = registerPostMortem(
        [this](std::ostream &os) { writePostMortem(os, "fatal"); });
}

Sentinel::~Sentinel()
{
    if (postMortemToken_ >= 0)
        unregisterPostMortem(postMortemToken_);
}

void
Sentinel::wireOracle(CoherenceOracle::Wiring wiring)
{
    if (!params_.oracle)
        return;
    oracle_ = std::make_unique<CoherenceOracle>(
        std::move(wiring), injector_.perturbsHints());
    oracle_->onViolation = [this](const Violation &v) { onViolation(v); };
}

void
Sentinel::observeHandler(NodeId node, bool at_home, Tick now,
                         const protocol::Message &msg,
                         const protocol::HandlerResult &res)
{
    TraceEntry e;
    e.tick = now;
    e.kind = TraceEntry::Kind::Handler;
    e.type = msg.type;
    e.handler = res.id;
    e.src = msg.src;
    e.requester = msg.requester;
    e.addr = msg.addr;
    e.aux = msg.aux;
    rings_[node].record(e);

    if (oracle_)
        oracle_->onHandler(node, at_home, now, msg, res);
}

void
Sentinel::recordInjected(NodeId node, Tick now, const protocol::Message &msg,
                         TraceEntry::Kind kind)
{
    TraceEntry e;
    e.tick = now;
    e.kind = kind;
    e.type = msg.type;
    e.src = msg.src;
    e.requester = msg.requester;
    e.addr = msg.addr;
    e.aux = msg.aux;
    rings_[node].record(e);
}

void
Sentinel::txnStart(NodeId node, Addr addr)
{
    if (watchdog_)
        watchdog_->txnStart(node, addr);
}

void
Sentinel::txnRetire(NodeId node, Addr addr)
{
    if (watchdog_)
        watchdog_->txnRetire(node, addr);
}

void
Sentinel::finalCheck()
{
    if (oracle_)
        oracle_->finalCheck(eq_.now());
}

void
Sentinel::onViolation(const Violation &v)
{
    if (params_.haltOnViolation) {
        // fatal() replays the registered post-mortem (trace rings,
        // watchdog status) before aborting.
        fatal("coherence violation [%s] at t=%llu node %u line %#llx: %s",
              v.kind.c_str(), static_cast<unsigned long long>(v.tick),
              v.node, static_cast<unsigned long long>(v.addr),
              v.detail.c_str());
    }
    warn("coherence violation [%s] at t=%llu node %u line %#llx: %s",
         v.kind.c_str(), static_cast<unsigned long long>(v.tick), v.node,
         static_cast<unsigned long long>(v.addr), v.detail.c_str());
    dumpOnce("coherence violation");
}

void
Sentinel::onTrip(const std::string &reason)
{
    if (params_.haltOnTrip)
        fatal("watchdog trip at t=%llu: %s",
              static_cast<unsigned long long>(eq_.now()), reason.c_str());
    warn("watchdog trip at t=%llu: %s",
         static_cast<unsigned long long>(eq_.now()), reason.c_str());
    dumpOnce("watchdog trip");
}

void
Sentinel::dumpOnce(const char *reason)
{
    if (dumped_)
        return;
    dumped_ = true;
    writePostMortem(std::cerr, reason);
    std::cerr.flush();
}

void
Sentinel::writeSummary(std::ostream &os) const
{
    os << "sentinel:";
    if (oracle_)
        os << " oracle(" << oracle_->trackedLines() << " lines, "
           << oracle_->violations() << " violations)";
    if (watchdog_)
        os << " watchdog(" << watchdog_->retired() << " retired, "
           << watchdog_->trips() << " trips)";
    if (injector_.enabled())
        os << " injector(seed " << injector_.params().seed << ": "
           << injector_.nacksInjected << " nacks, "
           << injector_.hintsDropped << " hints dropped, "
           << injector_.hintsDuped << " duped, " << injector_.jitterCycles
           << " jitter cyc, " << injector_.stallCycles << " stall cyc)";
    os << "\n";
}

void
Sentinel::writePostMortem(std::ostream &os, const char *reason) const
{
    os << "=== sentinel post-mortem (" << reason << ") t=" << eq_.now()
       << " ===\n";
    if (watchdog_)
        watchdog_->writeStatus(os);
    if (oracle_) {
        os << "oracle: " << oracle_->violations() << " violation(s), "
           << oracle_->trackedLines() << " line(s) tracked\n";
        for (const Violation &v : oracle_->violationLog())
            os << "  [" << v.kind << "] t=" << v.tick << " node " << v.node
               << " line 0x" << std::hex << v.addr << std::dec << ": "
               << v.detail << "\n";
    }
    if (injector_.enabled())
        os << "injector: seed " << injector_.params().seed << ", "
           << injector_.nacksInjected << " nack(s) injected, "
           << injector_.hintsDropped << " hint(s) dropped, "
           << injector_.hintsDuped << " duplicated, "
           << injector_.jitterCycles << " jitter cycle(s), "
           << injector_.stallCycles << " stall cycle(s)\n";
    os << "recent activity (oldest first, ring depth "
       << params_.traceDepth << "):\n";
    for (int n = 0; n < numNodes_; ++n)
        rings_[static_cast<std::size_t>(n)].dump(
            os, static_cast<NodeId>(n));
    os << "=== end post-mortem ===\n";
}

} // namespace flashsim::verify
