/**
 * @file
 * Handler timing models.
 *
 * MAGIC asks a HandlerTimingModel how many cycles the PP is occupied by
 * each handler invocation. Two implementations:
 *
 *  - TableTimingModel: the per-operation occupancies of Table 3.4.
 *    Deterministic and independent of the PP toolchain; used in unit
 *    tests and as a cross-check.
 *
 *  - PpTimingModel: executes the compiled PP handler program (PPsim)
 *    against a shadow view of the live directory, with every load/store
 *    filtered through the MAGIC data cache model. Yields dynamic cycle
 *    counts, MDC miss traffic, and the Table 5.2 instruction statistics.
 */

#ifndef FLASHSIM_MAGIC_TIMING_MODEL_HH_
#define FLASHSIM_MAGIC_TIMING_MODEL_HH_

#include <array>
#include <memory>
#include <vector>

#include "magic/magic_cache.hh"
#include "sim/flat_table.hh"
#include "magic/params.hh"
#include "ppisa/ppsim.hh"
#include "protocol/directory.hh"
#include "protocol/handlers.hh"
#include "protocol/message.hh"
#include "protocol/pp_programs.hh"

namespace flashsim::magic
{

/** Per-invocation information the PP model reports back to MAGIC. */
struct HandlerTiming
{
    Cycles occupancy = 0;       ///< PP busy cycles (incl. MDC stalls)
    std::uint32_t mdcMisses = 0;///< misses -> main-memory fills
    std::uint32_t mdcWritebacks = 0; ///< dirty victims -> memory writes
    bool micColdMiss = false;   ///< first invocation of this handler
};

class HandlerTimingModel
{
  public:
    virtual ~HandlerTimingModel() = default;

    /**
     * Called with pre-handler state, before the authoritative C++
     * handler mutates the directory.
     */
    virtual void preHandler(const protocol::Message &msg, NodeId self,
                            NodeId home, bool cache_dirty) = 0;

    /** Called after the authoritative handler; returns the timing. */
    virtual HandlerTiming occupancy(const protocol::Message &msg,
                                    const protocol::HandlerResult &res) = 0;
};

/** Table 3.4 occupancies. */
class TableTimingModel : public HandlerTimingModel
{
  public:
    void preHandler(const protocol::Message &, NodeId, NodeId,
                    bool) override
    {}
    HandlerTiming occupancy(const protocol::Message &msg,
                            const protocol::HandlerResult &res) override;

    /** The Table 3.4 cost of a handler outcome (exposed for benches). */
    static Cycles cost(protocol::HandlerId id, int param);
};

/** PPsim-driven timing. */
class PpTimingModel : public HandlerTimingModel
{
  public:
    PpTimingModel(const protocol::HandlerPrograms &programs,
                  const protocol::DirectoryStore &dir,
                  const MagicParams &params);

    void preHandler(const protocol::Message &msg, NodeId self, NodeId home,
                    bool cache_dirty) override;
    HandlerTiming occupancy(const protocol::Message &msg,
                            const protocol::HandlerResult &res) override;

    /** Accumulated dynamic instruction statistics (Table 5.2). */
    const ppisa::RunStats &runStats() const { return stats_; }

    /** The MDC model (Section 5.2 statistics). */
    const MagicCache &mdc() const { return mdc_; }
    MagicCache &mdc() { return mdc_; }

  private:
    /** Shadow memory: reads through to the live directory, buffers
     *  writes, charges MDC miss penalties. */
    class ShadowMemory : public ppisa::PpMemory
    {
      public:
        ShadowMemory(const protocol::DirectoryStore &dir, MagicCache &mdc,
                     Cycles miss_penalty)
            : dir_(dir), mdc_(mdc), missPenalty_(miss_penalty)
        {}

        std::uint64_t load(Addr addr, Cycles &extra) override;
        void store(Addr addr, std::uint64_t value, Cycles &extra) override;

        void reset();
        std::uint32_t misses = 0;
        std::uint32_t writebacks = 0;

      private:
        const protocol::DirectoryStore &dir_;
        MagicCache &mdc_;
        Cycles missPenalty_;
        /** Buffered shadow writes for the current invocation; bulk-
         *  cleared in O(1) by reset() (generation-stamped flat table). */
        ScratchWordMap writes_;
    };

    /**
     * One slot of the pre-resolved dispatch table: the handler program
     * for a (message type, at-home) combination, with its instruction
     * decode and MIC warm-up state resolved once at construction
     * instead of per invocation (forMessage switch + hash-set probe).
     * warmSlot indexes warm_ and is shared by every table entry that
     * aliases the same program (e.g. niFetchOp serves both PiFetchOp
     * at home and NetFetchOp), so a handler warms the MIC once no
     * matter which path first dispatches it — the same semantics the
     * old per-pointer set had.
     */
    struct DispatchEntry
    {
        const ppisa::Program *prog = nullptr;
        /** prog->decoded(), pinned at construction so the per-message
         *  path uses PpSim's pre-resolved run() overload (no decode
         *  fingerprint check per invocation). */
        const ppisa::DecodedProgram *decoded = nullptr;
        std::int8_t warmSlot = -1;
    };

    const protocol::HandlerPrograms &programs_;
    MagicParams params_;
    MagicCache mdc_;
    ShadowMemory shadow_;
    ppisa::PpSim sim_;
    ppisa::RunStats stats_;
    /** Reused per-invocation Send buffer (no allocation per handler). */
    std::vector<ppisa::SentMessage> sent_;
    HandlerTiming last_;
    std::array<std::array<DispatchEntry, 2>, protocol::kNumMsgTypes>
        dispatch_{};
    /** Per-unique-program "has run at least once" (MIC cold-miss). */
    std::array<bool, protocol::kNumMsgTypes * 2> warm_{};
};

} // namespace flashsim::magic

#endif // FLASHSIM_MAGIC_TIMING_MODEL_HH_
