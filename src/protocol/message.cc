#include "protocol/message.hh"

#include <sstream>

namespace flashsim::protocol
{

bool
carriesData(MsgType t)
{
    switch (t) {
      case MsgType::PiWriteback:
      case MsgType::PiPut:
      case MsgType::PiPutx:
      case MsgType::NetPut:
      case MsgType::NetPutx:
      case MsgType::NetSwb:
      case MsgType::NetWriteback:
      case MsgType::NetBlockXfer:
        return true;
      default:
        return false;
    }
}

bool
isNetMsg(MsgType t)
{
    if (t == MsgType::PiFetchOp)
        return false;
    return static_cast<int>(t) >= static_cast<int>(MsgType::NetGet);
}

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::PiGet: return "PiGet";
      case MsgType::PiGetx: return "PiGetx";
      case MsgType::PiWriteback: return "PiWriteback";
      case MsgType::PiReplaceHint: return "PiReplaceHint";
      case MsgType::PiPut: return "PiPut";
      case MsgType::PiPutx: return "PiPutx";
      case MsgType::PiInval: return "PiInval";
      case MsgType::NetGet: return "NetGet";
      case MsgType::NetGetx: return "NetGetx";
      case MsgType::NetFwdGet: return "NetFwdGet";
      case MsgType::NetFwdGetx: return "NetFwdGetx";
      case MsgType::NetPut: return "NetPut";
      case MsgType::NetPutx: return "NetPutx";
      case MsgType::NetSwb: return "NetSwb";
      case MsgType::NetOwnXfer: return "NetOwnXfer";
      case MsgType::NetInval: return "NetInval";
      case MsgType::NetInvalAck: return "NetInvalAck";
      case MsgType::NetWriteback: return "NetWriteback";
      case MsgType::NetReplaceHint: return "NetReplaceHint";
      case MsgType::NetNack: return "NetNack";
      case MsgType::NetBlockXfer: return "NetBlockXfer";
      case MsgType::NetBlockAck: return "NetBlockAck";
      case MsgType::PiFetchOp: return "PiFetchOp";
      case MsgType::NetFetchOp: return "NetFetchOp";
      case MsgType::NetFetchOpAck: return "NetFetchOpAck";
    }
    return "?";
}

std::string
Message::toString() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " src=" << src << " dest=" << dest
       << " req=" << requester << " addr=0x" << std::hex << addr << std::dec
       << " aux=" << aux;
    return os.str();
}

} // namespace flashsim::protocol
