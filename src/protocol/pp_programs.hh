/**
 * @file
 * PP handler programs: the protocol handlers written in the PP IR.
 *
 * Each program mirrors the control flow of its authoritative C++
 * counterpart in handlers.cc, performing the same directory-word loads
 * and stores (through the MAGIC data cache) and launching the same
 * outgoing messages via Send. PpTimingModel executes these against a
 * shadow of the live directory to obtain cycle-accurate handler
 * occupancies; the conformance test in tests/ checks message-level
 * agreement with the C++ handlers across the protocol input space.
 *
 * Handler ABI (registers preloaded by the inbox before dispatch):
 *   r1  message type          r2  line address
 *   r3  source node           r4  message aux field
 *   r5  original requester    r6  this node's id
 *   r7  home node of address  r8  directory header word address
 *   r9  link pool base        r10 local-cache-holds-dirty flag
 *   r11 ack-table entry address for this line
 *   r12 raw message argument word (packSendArg of addr/aux/requester)
 */

#ifndef FLASHSIM_PROTOCOL_PP_PROGRAMS_HH_
#define FLASHSIM_PROTOCOL_PP_PROGRAMS_HH_

#include <cstddef>
#include <vector>

#include "ppc/compiler.hh"
#include "ppisa/ppsim.hh"
#include "protocol/directory.hh"
#include "protocol/message.hh"

namespace flashsim::protocol
{
// kAckTableBase / ackAddr moved to directory.hh (the DirectoryStore
// region decoder owns the protocol-data address map); re-exported here
// via the include for existing users.

/**
 * The full set of compiled handler programs. The jump table dispatches
 * on message type plus the inbox's address decode (local vs remote), so
 * processor requests have distinct local-service and forward-to-home
 * programs, exactly as the real protocol code does.
 */
struct HandlerPrograms
{
    ppisa::Program piGetLocal;   ///< PiGet serviced at home
    ppisa::Program piGetRemote;  ///< PiGet forwarded to a remote home
    ppisa::Program piGetxLocal;  ///< PiGetx serviced at home
    ppisa::Program piGetxRemote; ///< PiGetx forwarded to a remote home
    ppisa::Program piWbLocal;    ///< PiWriteback into local memory
    ppisa::Program piWbRemote;   ///< PiWriteback forwarded to home
    ppisa::Program piHintLocal;  ///< PiReplaceHint at home
    ppisa::Program piHintRemote; ///< PiReplaceHint forwarded to home
    ppisa::Program niGet;        ///< NetGet at home
    ppisa::Program niGetx;       ///< NetGetx at home
    ppisa::Program niFwdGet;     ///< NetFwdGet at the dirty owner
    ppisa::Program niFwdGetx;    ///< NetFwdGetx at the dirty owner
    ppisa::Program niSwb;        ///< NetSwb at home
    ppisa::Program niOwnXfer;    ///< NetOwnXfer at home
    ppisa::Program niInval;      ///< NetInval at a sharer
    ppisa::Program niInvalAck;   ///< NetInvalAck at the requester
    ppisa::Program niPut;        ///< NetPut at the requester
    ppisa::Program niPutx;       ///< NetPutx at the requester
    ppisa::Program niNack;       ///< NetNack at the requester
    ppisa::Program niWb;         ///< NetWriteback at home
    ppisa::Program niHint;       ///< NetReplaceHint at home
    ppisa::Program niBlockXfer;  ///< block-transfer chunk (msg passing)
    ppisa::Program niBlockAck;   ///< block-transfer completion
    ppisa::Program niFetchOp;    ///< fetch&op service at home
    ppisa::Program niFetchOpAck; ///< fetch&op result at the requester
    ppisa::Program piFetchOpRemote; ///< fetch&op forwarded to home

    /** Program dispatched for a message type (+ inbox address decode). */
    const ppisa::Program &forMessage(MsgType t, bool at_home) const;

    /** Like forMessage, but nullptr for types with no handler program —
     *  lets PpTimingModel build its dispatch table over every
     *  (type, at_home) slot without tripping the panic. */
    const ppisa::Program *forMessageOrNull(MsgType t, bool at_home) const;

    /** All programs, for code-size and toolchain statistics. */
    std::vector<const ppisa::Program *> all() const;

    /** Total static code size (Table 5.2 "static code size"). */
    std::size_t totalCodeBytes() const;
};

/** Compile all handler programs with the given compiler options. */
HandlerPrograms buildHandlerPrograms(const ppc::CompileOptions &opts = {});

/**
 * Process-wide cache of compiled handler programs, keyed by the
 * compile options. The handler toolchain is deterministic, so every
 * machine with the same options can share one immutable, pre-decoded
 * program set instead of re-running the compiler and the pre-decode
 * pass per Machine. Thread-safe (sweep workers construct machines
 * concurrently); the returned set is fully decoded before publication,
 * so the lazy Program::decoded() path is never raced.
 */
std::shared_ptr<const HandlerPrograms>
sharedHandlerPrograms(const ppc::CompileOptions &opts = {});

/**
 * Prepare the handler-ABI register file for @p msg arriving at @p self.
 * Inline: this runs once per handler invocation on the PP dispatch hot
 * path (see BM_PpHandlerDispatch), where an out-of-line copy of the
 * 256-byte register file costs as much as several executed pairs.
 */
inline ppisa::RegFile
makeHandlerRegs(const Message &msg, NodeId self, NodeId home,
                bool cache_dirty)
{
    // Not `RegFile regs{}`: GCC lowers that 256-byte value-init to a
    // rep-stos memset whose startup latency alone costs as much as the
    // defined-register stores below. Explicit stores (with the scratch
    // range unrolled so it is not re-idiomized into memset) compile to
    // straight vector stores at half the cost.
    ppisa::RegFile regs;
    std::uint64_t *const r = regs.data();
    r[0] = 0;
    r[1] = static_cast<std::uint64_t>(msg.type);
    r[2] = msg.addr;
    r[3] = msg.src;
    r[4] = msg.aux;
    r[5] = msg.requester;
    r[6] = self;
    r[7] = home;
    r[8] = headerAddr(msg.addr);
    r[9] = kLinkPoolBase;
    r[10] = cache_dirty ? 1 : 0;
    r[11] = ackAddr(msg.addr);
    // The inbox passes the raw message header through to the PP, so
    // pass-through sends (forwards, replies, NACKs) need no repacking.
    r[12] = packSendArg(msg.addr, msg.aux, msg.requester);
#pragma GCC unroll 19
    for (int i = 13; i < ppisa::kNumRegs; ++i)
        r[i] = 0;
    return regs;
}

/** Decode a PP Send back into a protocol message (for conformance). */
Message decodeSent(const ppisa::SentMessage &s, NodeId self);

} // namespace flashsim::protocol

#endif // FLASHSIM_PROTOCOL_PP_PROGRAMS_HH_
