/**
 * @file
 * Differential conformance between the two PP execution backends.
 *
 * The threaded-code engine (ppisa/threaded.hh) must be architecturally
 * bit-identical to the decoded interpreter: same register/memory/message
 * effects, same cycle charges (including MDC stalls), same statistics,
 * and the same contract panics, in the same order. These tests drive
 * every compiled protocol handler program and a randomized stream of
 * synthetic programs through both backends and require outcome equality
 * down to the individual memory operation, plus panic-text parity for
 * every contract violation class.
 *
 * Also covers the static micro-op profile pass (ppc/profile.hh) and the
 * structural invariants of the threaded lowering, pinning the
 * specialized-kernel coverage so the fused fast-path set cannot silently
 * rot as the handler set evolves.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ppc/profile.hh"
#include "ppisa/decode.hh"
#include "ppisa/instruction.hh"
#include "ppisa/ppsim.hh"
#include "ppisa/threaded.hh"
#include "protocol/directory.hh"
#include "protocol/pp_programs.hh"
#include "sim/random.hh"

namespace flashsim::ppisa
{
namespace
{

/**
 * PP memory with a deterministic word store, a full access trace, and a
 * deterministic per-address stall pattern (so the cycle comparison
 * covers the memory-stall accounting, not just the 1-cycle-per-pair
 * base). Two instances seeded identically and handed to the two
 * backends must produce identical traces.
 */
struct TraceMemory : PpMemory
{
    struct Event
    {
        bool isStore = false;
        Addr addr = 0;
        std::uint64_t value = 0;
        Cycles extra = 0;

        bool operator==(const Event &) const = default;
    };

    std::map<Addr, std::uint64_t> words;
    std::vector<Event> log;
    bool stalls = false;

    Cycles
    stallFor(Addr a) const
    {
        return stalls ? static_cast<Cycles>((a >> 3) % 5) : 0;
    }

    std::uint64_t
    load(Addr a, Cycles &extra) override
    {
        auto it = words.find(a);
        std::uint64_t v = it == words.end() ? 0 : it->second;
        extra = stallFor(a);
        log.push_back({false, a, v, extra});
        return v;
    }

    void
    store(Addr a, std::uint64_t v, Cycles &extra) override
    {
        words[a] = v;
        extra = stallFor(a);
        log.push_back({true, a, v, extra});
    }
};

struct Outcome
{
    Cycles cycles = 0;
    RegFile regs{};
    std::vector<SentMessage> sent;
    RunStats stats;
    std::vector<TraceMemory::Event> memLog;
    std::map<Addr, std::uint64_t> memWords;
};

Outcome
runBackend(PpBackend backend, const Program &prog, const RegFile &regs_in,
           const std::map<Addr, std::uint64_t> &words_in, bool stalls)
{
    Outcome o;
    o.regs = regs_in;
    TraceMemory mem;
    mem.words = words_in;
    mem.stalls = stalls;
    PpSim sim(backend);
    o.cycles = sim.run(prog, o.regs, mem, o.sent, o.stats);
    o.memLog = std::move(mem.log);
    o.memWords = std::move(mem.words);
    return o;
}

void
expectBackendsAgree(const Program &prog, const RegFile &regs_in,
                    const std::map<Addr, std::uint64_t> &words_in,
                    bool stalls, const std::string &what)
{
    Outcome i =
        runBackend(PpBackend::Interpreter, prog, regs_in, words_in, stalls);
    Outcome t =
        runBackend(PpBackend::Threaded, prog, regs_in, words_in, stalls);
    EXPECT_EQ(i.cycles, t.cycles) << what;
    EXPECT_EQ(i.regs, t.regs) << what;
    EXPECT_EQ(i.sent, t.sent) << what;
    EXPECT_TRUE(i.stats == t.stats) << what;
    EXPECT_EQ(i.memLog, t.memLog) << what << " (memory access trace)";
    EXPECT_EQ(i.memWords, t.memWords) << what << " (final memory image)";
}

// ---------------------------------------------------------------------
// Fuzz 1: every compiled handler program over randomized directory
// states and message fields.
// ---------------------------------------------------------------------

constexpr NodeId kSelf = 0;
constexpr int kNodes = 4;

/** PP memory adapter over a DirectoryStore, with the same trace. */
struct TraceDirMem : PpMemory
{
    protocol::DirectoryStore &d;
    std::vector<TraceMemory::Event> log;

    explicit TraceDirMem(protocol::DirectoryStore &dd) : d(dd) {}

    std::uint64_t
    load(Addr a, Cycles &extra) override
    {
        std::uint64_t v = d.loadWord(a);
        extra = static_cast<Cycles>((a >> 3) % 5);
        log.push_back({false, a, v, extra});
        return v;
    }

    void
    store(Addr a, std::uint64_t v, Cycles &extra) override
    {
        extra = static_cast<Cycles>((a >> 3) % 5);
        d.storeWord(a, v);
        log.push_back({true, a, v, extra});
    }
};

/**
 * Apply a random but structurally valid directory pre-state. Takes the
 * Rng by value so the two stores can be prepared from identical draw
 * sequences.
 */
void
applyRandomState(protocol::DirectoryStore &dir, Addr line, Rng rng)
{
    // Thread the free list (as the C++/PP conformance sweep does) so
    // link words exist wherever a handler walks.
    constexpr Addr scratch = 0x40000;
    for (int i = 0; i < 12; ++i)
        dir.addSharer(scratch, static_cast<NodeId>(i));
    for (int i = 0; i < 12; ++i)
        dir.removeSharer(scratch, static_cast<NodeId>(i));

    if (rng.below(3) == 0) {
        protocol::DirHeader h = dir.header(line);
        h.dirty = true;
        h.owner = static_cast<NodeId>(rng.below(kNodes));
        dir.setHeader(line, h);
        return;
    }
    // Clean with a random subset of distinct sharers.
    NodeId order[kNodes] = {0, 1, 2, 3};
    for (int i = kNodes - 1; i > 0; --i)
        std::swap(order[i],
                  order[rng.below(static_cast<std::uint64_t>(i) + 1)]);
    const int nsharers = static_cast<int>(rng.below(kNodes + 1));
    for (int i = 0; i < nsharers; ++i)
        dir.addSharer(line, order[i]);
}

struct DirOutcome
{
    Cycles cycles = 0;
    RegFile regs{};
    std::vector<SentMessage> sent;
    RunStats stats;
    std::vector<TraceMemory::Event> memLog;
};

DirOutcome
runHandlerCase(PpBackend backend, const Program &prog,
               const protocol::Message &msg, NodeId home, bool cache_dirty,
               std::uint64_t state_seed, protocol::DirectoryStore &dir)
{
    applyRandomState(dir, msg.addr, Rng(state_seed));
    DirOutcome o;
    o.regs = protocol::makeHandlerRegs(msg, kSelf, home, cache_dirty);
    TraceDirMem mem(dir);
    PpSim sim(backend);
    o.cycles = sim.run(prog, o.regs, mem, o.sent, o.stats);
    o.memLog = std::move(mem.log);
    return o;
}

TEST(BackendDiff, HandlerFuzzAllProgramsAllOptions)
{
    const ppc::CompileOptions option_sets[] = {
        {true, true}, {true, false}, {false, true}, {false, false}};
    for (const ppc::CompileOptions &opts : option_sets) {
        protocol::HandlerPrograms programs =
            protocol::buildHandlerPrograms(opts);
        Rng rng(0x9d5c0fb1u ^
                (static_cast<std::uint64_t>(opts.useSpecialInstrs) << 1) ^
                static_cast<std::uint64_t>(opts.dualIssue));
        for (int t = 0; t < protocol::kNumMsgTypes; ++t) {
            const auto type = static_cast<protocol::MsgType>(t);
            for (int at_home = 0; at_home < 2; ++at_home) {
                const Program *prog =
                    programs.forMessageOrNull(type, at_home != 0);
                if (prog == nullptr)
                    continue;
                for (int iter = 0; iter < 8; ++iter) {
                    protocol::Message m;
                    m.type = type;
                    m.src = static_cast<NodeId>(rng.below(kNodes));
                    m.dest = kSelf;
                    m.requester =
                        static_cast<NodeId>(rng.below(kNodes));
                    m.addr = rng.below(64) << 6; // line-aligned
                    m.aux = static_cast<std::uint32_t>(rng.below(8));
                    const NodeId home =
                        at_home != 0
                            ? kSelf
                            : static_cast<NodeId>(
                                  1 + rng.below(kNodes - 1));
                    const bool cache_dirty = rng.below(2) != 0;
                    const std::uint64_t state_seed = rng.next();

                    protocol::DirectoryStore dirI, dirT;
                    DirOutcome i = runHandlerCase(
                        PpBackend::Interpreter, *prog, m, home,
                        cache_dirty, state_seed, dirI);
                    DirOutcome th = runHandlerCase(
                        PpBackend::Threaded, *prog, m, home, cache_dirty,
                        state_seed, dirT);

                    const std::string what =
                        prog->name + " iter " + std::to_string(iter);
                    EXPECT_EQ(i.cycles, th.cycles) << what;
                    EXPECT_EQ(i.regs, th.regs) << what;
                    EXPECT_EQ(i.sent, th.sent) << what;
                    EXPECT_TRUE(i.stats == th.stats) << what;
                    EXPECT_EQ(i.memLog, th.memLog) << what;
                    EXPECT_EQ(dirT.sharers(m.addr), dirI.sharers(m.addr))
                        << what;
                    protocol::DirHeader hi = dirI.header(m.addr);
                    protocol::DirHeader ht = dirT.header(m.addr);
                    EXPECT_EQ(ht.dirty, hi.dirty) << what;
                    EXPECT_EQ(ht.owner, hi.owner) << what;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fuzz 2: randomized synthetic programs covering the whole opcode set
// (single-issue kernels, branches, sends, memory traffic, stalls).
// ---------------------------------------------------------------------

Instr
randomInstr(Rng &rng, int index, int total)
{
    Instr in;
    // Weighted opcode menu: every executable opcode appears, memory and
    // special ops often enough to matter.
    static const Op menu[] = {
        Op::Add,  Op::Sub,  Op::And,  Op::Or,   Op::Xor,  Op::Sllv,
        Op::Srlv, Op::Slt,  Op::Sltu, Op::Addi, Op::Andi, Op::Ori,
        Op::Xori, Op::Slli, Op::Srli, Op::Srai, Op::Slti, Op::Ld,
        Op::Ld,   Op::Sd,   Op::Sd,   Op::Beq,  Op::Bne,  Op::J,
        Op::Ffs,  Op::Bbs,  Op::Bbc,  Op::Ext,  Op::Ins,  Op::Orfi,
        Op::Andfi, Op::Send, Op::Send};
    in.op = menu[rng.below(sizeof(menu) / sizeof(menu[0]))];
    in.rd = static_cast<std::uint8_t>(rng.below(8));
    in.rs = static_cast<std::uint8_t>(rng.below(8));
    in.rt = static_cast<std::uint8_t>(rng.below(8));
    in.lo = static_cast<std::uint8_t>(rng.below(56));
    in.width = static_cast<std::uint8_t>(1 + rng.below(8));
    switch (in.op) {
      case Op::Ld:
      case Op::Sd:
        in.imm = static_cast<std::int64_t>(rng.below(32)) * 8;
        break;
      case Op::Beq:
      case Op::Bne:
      case Op::J:
      case Op::Bbs:
      case Op::Bbc:
        // Forward-only targets keep every random program terminating;
        // target == total branches to the final Halt pair.
        in.imm = static_cast<std::int64_t>(
            index + 1 +
            rng.below(static_cast<std::uint64_t>(total - index)));
        break;
      case Op::Send:
        in.imm = static_cast<std::int64_t>(rng.below(26));
        break;
      default:
        in.imm = static_cast<std::int64_t>(rng.below(4096)) - 2048;
        break;
    }
    return in;
}

Program
makeRandomProgram(Rng &rng, int id)
{
    Program prog;
    prog.name = "fuzz" + std::to_string(id);
    const int n = 8 + static_cast<int>(rng.below(24));
    std::vector<Instr> instrs;
    instrs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        instrs.push_back(randomInstr(rng, i, n));
    // Runner-style lowering: one instruction per pair with a NOP pair in
    // between, so the load-delay and intra-pair contracts hold by
    // construction; branch targets scale from instruction to pair index.
    for (Instr &in : instrs) {
        if (in.isBranch())
            in.imm *= 2;
        prog.mutablePairs().push_back(InstrPair{in, Instr{}});
        prog.mutablePairs().push_back(InstrPair{Instr{}, Instr{}});
    }
    Instr halt;
    halt.op = Op::Halt;
    prog.mutablePairs().push_back(InstrPair{halt, Instr{}});
    return prog;
}

TEST(BackendDiff, RandomProgramFuzz)
{
    Rng rng(0xfe315ull);
    for (int p = 0; p < 150; ++p) {
        Program prog = makeRandomProgram(rng, p);
        RegFile regs{};
        for (int r = 1; r < 8; ++r)
            regs[static_cast<std::size_t>(r)] = rng.below(32) * 8;
        std::map<Addr, std::uint64_t> words;
        for (Addr a = 0; a < 512; a += 8)
            words[a] = rng.next();
        expectBackendsAgree(prog, regs, words, true, prog.name);
    }
}

// ---------------------------------------------------------------------
// Contract-panic parity: both backends must fail the same way, with the
// same message, for every violation class — and must stay silent for
// violations that are never dynamically reached (lazy checking).
// ---------------------------------------------------------------------

Instr
mk(Op op, int rd, int rs, int rt, std::int64_t imm = 0)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.rs = static_cast<std::uint8_t>(rs);
    in.rt = static_cast<std::uint8_t>(rt);
    in.imm = imm;
    return in;
}

Program
progOf(std::vector<InstrPair> pairs, const char *name)
{
    Program p;
    p.name = name;
    p.mutablePairs() = std::move(pairs);
    return p;
}

void
runOn(PpBackend backend, const Program &prog)
{
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    PpSim sim(backend);
    sim.run(prog, regs, mem, sent, stats);
}

class BackendPanicParity
    : public ::testing::TestWithParam<PpBackend>
{};

TEST_P(BackendPanicParity, IntraPairRaw)
{
    Program p = progOf({{mk(Op::Addi, 3, 1, 0, 5), mk(Op::Add, 4, 3, 1)}},
                       "raw");
    EXPECT_DEATH(runOn(GetParam(), p),
                 "intra-pair RAW on r3 at pair 0 of 'raw'");
}

TEST_P(BackendPanicParity, IntraPairWaw)
{
    Program p = progOf({{mk(Op::Addi, 3, 1, 0, 5), mk(Op::Addi, 3, 2, 0, 7)}},
                       "waw");
    EXPECT_DEATH(runOn(GetParam(), p),
                 "intra-pair WAW on r3 at pair 0 of 'waw'");
}

TEST_P(BackendPanicParity, TwoBranches)
{
    Program p = progOf(
        {{mk(Op::Beq, 0, 1, 2, 1), mk(Op::Bne, 0, 1, 2, 1)},
         {mk(Op::Halt, 0, 0, 0), Instr{}}},
        "twobr");
    EXPECT_DEATH(runOn(GetParam(), p), "two branches in pair 0 of 'twobr'");
}

TEST_P(BackendPanicParity, LoadDelayViolation)
{
    Program p = progOf(
        {{mk(Op::Ld, 3, 1, 0, 0), Instr{}},
         {mk(Op::Addi, 4, 3, 0, 1), Instr{}},
         {mk(Op::Halt, 0, 0, 0), Instr{}}},
        "lddelay");
    EXPECT_DEATH(runOn(GetParam(), p),
                 "load-delay violation on r3 at pair 1 of 'lddelay'");
}

TEST_P(BackendPanicParity, FallOffEnd)
{
    Program p =
        progOf({{mk(Op::Addi, 1, 0, 0, 1), Instr{}}}, "falloff");
    EXPECT_DEATH(runOn(GetParam(), p), "pc 1 out of range in 'falloff'");
}

TEST_P(BackendPanicParity, BranchOnePastEnd)
{
    // A branch target of npairs is legal to encode (falls off the end);
    // both backends raise the out-of-range panic when it is taken.
    Program p = progOf(
        {{mk(Op::J, 0, 0, 0, 2), Instr{}},
         {mk(Op::Halt, 0, 0, 0), Instr{}}},
        "pastend");
    EXPECT_DEATH(runOn(GetParam(), p), "pc 2 out of range in 'pastend'");
}

TEST_P(BackendPanicParity, RunawayHandler)
{
    Program p = progOf({{mk(Op::J, 0, 0, 0, 0), Instr{}}}, "spin");
    EXPECT_DEATH(runOn(GetParam(), p), "runaway handler 'spin'");
}

TEST_P(BackendPanicParity, EmptyProgram)
{
    Program p;
    p.name = "empty";
    EXPECT_DEATH(runOn(GetParam(), p), "empty program 'empty'");
}

TEST_P(BackendPanicParity, UnreachedViolationStaysSilent)
{
    // Lazy contract checking: a violating pair after the Halt is never
    // reached, so neither backend may panic over it.
    Program p = progOf(
        {{mk(Op::Halt, 0, 0, 0), Instr{}},
         {mk(Op::Addi, 3, 1, 0, 5), mk(Op::Add, 4, 3, 1)}},
        "silent");
    runOn(GetParam(), p); // must not die
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendPanicParity,
    ::testing::Values(PpBackend::Interpreter, PpBackend::Threaded),
    [](const ::testing::TestParamInfo<PpBackend> &info) {
        return std::string(ppBackendName(info.param));
    });

// ---------------------------------------------------------------------
// Structure of the threaded lowering over the production handler set.
// ---------------------------------------------------------------------

TEST(ThreadedLowering, HandlerSetStructureAndCoverage)
{
    protocol::HandlerPrograms programs =
        protocol::buildHandlerPrograms({true, true});
    double frac_sum = 0;
    int n = 0;
    for (const Program *p : programs.all()) {
        const ThreadedProgram &t = p->decoded().threaded();
        ASSERT_EQ(t.ops().size(), p->pairs().size() + 1) << p->name;
        ASSERT_EQ(t.size(), p->pairs().size()) << p->name;
        EXPECT_EQ(t.ops().back().kernel, ThreadedKernel::OutOfRange)
            << p->name;
        for (const ThreadedOp &op : t.ops()) {
            // The compiled handlers honour the scheduling contract, so
            // no pair may carry a violation verdict or need the dynamic
            // load-delay check.
            EXPECT_NE(op.kernel, ThreadedKernel::Violation) << p->name;
            EXPECT_FALSE(op.checkLoadDelay) << p->name;
        }
        frac_sum += t.specializedFraction();
        ++n;
    }
    ASSERT_GT(n, 0);
    // Fused + per-opcode kernels must keep covering nearly all of the
    // handler set; a drop means new scheduler output is falling back to
    // the Generic kernel and the fused set needs to catch up.
    EXPECT_GE(frac_sum / n, 0.90);
}

TEST(ThreadedLowering, SingleIssueSetFullySpecialized)
{
    protocol::HandlerPrograms programs =
        protocol::buildHandlerPrograms({true, false});
    for (const Program *p : programs.all())
        EXPECT_DOUBLE_EQ(p->decoded().threaded().specializedFraction(),
                         1.0)
            << p->name;
}

// ---------------------------------------------------------------------
// Static micro-op profile pass.
// ---------------------------------------------------------------------

TEST(MicroOpProfile, HandlerSetHotPairsDriveFusedKernels)
{
    protocol::HandlerPrograms programs =
        protocol::buildHandlerPrograms({true, true});
    ppc::MicroOpProfile prof = ppc::profilePrograms(programs.all());
    EXPECT_GT(prof.totalPairs(), 0u);
    EXPECT_GT(prof.opCount(Op::Send), 0u);
    EXPECT_GT(prof.opCount(Op::Ld), 0u);

    std::vector<ppc::PairFreq> hot = prof.hottestDual(10);
    ASSERT_GE(hot.size(), 5u);
    for (std::size_t i = 1; i < hot.size(); ++i)
        EXPECT_GE(hot[i - 1].count, hot[i].count);
    // The profile's top dual pair motivated the FuseLdAddi kernel; if
    // the handler set shifts enough to change it, the fused kernel set
    // in threaded.hh should be revisited.
    EXPECT_EQ(hot[0].a, Op::Ld);
    EXPECT_EQ(hot[0].b, Op::Addi);
    EXPECT_EQ(prof.pairCount(hot[0].a, hot[0].b), hot[0].count);

    // Every hot dual pair must map to a non-Generic kernel wherever it
    // appears in the lowered handler set (modulo pairs the lowering
    // legitimately bails on, which the coverage test above bounds).
    for (const Program *p : programs.all()) {
        const ThreadedProgram &t = p->decoded().threaded();
        const auto &pairs = p->pairs();
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            if (pairs[i].a.op == Op::Ld && pairs[i].b.op == Op::Addi) {
                EXPECT_EQ(t.ops()[i].kernel, ThreadedKernel::FuseLdAddi)
                    << p->name << " pair " << i;
            }
        }
    }
}

TEST(MicroOpProfile, CountsAreExactOnAKnownProgram)
{
    Program prog;
    prog.name = "counted";
    prog.mutablePairs().push_back(
        InstrPair{mk(Op::Ld, 3, 1, 0, 0), mk(Op::Addi, 4, 2, 0, 1)});
    prog.mutablePairs().push_back(InstrPair{Instr{}, Instr{}});
    prog.mutablePairs().push_back(
        InstrPair{mk(Op::Ld, 5, 1, 0, 8), mk(Op::Addi, 6, 2, 0, 2)});
    prog.mutablePairs().push_back(
        InstrPair{mk(Op::Halt, 0, 0, 0), Instr{}});

    ppc::MicroOpProfile prof;
    prof.addProgram(prog);
    EXPECT_EQ(prof.totalPairs(), 4u);
    EXPECT_EQ(prof.pairCount(Op::Ld, Op::Addi), 2u);
    EXPECT_EQ(prof.opCount(Op::Ld), 2u);
    EXPECT_EQ(prof.opCount(Op::Addi), 2u);
    EXPECT_EQ(prof.opCount(Op::Halt), 1u);
    EXPECT_EQ(prof.pairCount(Op::Nop, Op::Nop), 1u);

    std::vector<ppc::PairFreq> hot = prof.hottest(2);
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].a, Op::Ld);
    EXPECT_EQ(hot[0].b, Op::Addi);
    EXPECT_EQ(hot[0].count, 2u);
    // Nop/Nop padding is excluded from the fusion candidates.
    EXPECT_FALSE(hot[1].a == Op::Nop && hot[1].b == Op::Nop);

    std::vector<ppc::PairFreq> dual = prof.hottestDual(4);
    ASSERT_EQ(dual.size(), 1u); // only (Ld, Addi) is genuinely dual
}

// ---------------------------------------------------------------------
// Backend selection plumbing.
// ---------------------------------------------------------------------

TEST(PpBackendKnob, DefaultsAndNames)
{
    EXPECT_EQ(PpSim{}.backend(), PpBackend::Interpreter);
    EXPECT_EQ(PpSim(PpBackend::Threaded).backend(), PpBackend::Threaded);
    EXPECT_STREQ(ppBackendName(PpBackend::Interpreter), "interpreter");
    EXPECT_STREQ(ppBackendName(PpBackend::Threaded), "threaded");
}

} // namespace
} // namespace flashsim::ppisa
