/**
 * @file
 * Token-threaded PP executor.
 *
 * Build side: lower every DecodedPair to a ThreadedOp carrying a kernel
 * token, resolving at build time what the interpreter re-checked every
 * pair (contract verdicts, branch-target bounds, load-delay
 * reachability). Run side: a computed-goto dispatch loop whose kernels
 * are hand-unrolled copies of exactly one interpreter case each, so a
 * single-issue Addi pair costs one table jump, one add, and the shared
 * epilogue. On compilers without the labels-as-values extension the
 * same kernel bodies compile into a for/switch loop (see the KERNEL /
 * DISPATCH macros).
 *
 * Bit-identical semantics with the interpreter are non-negotiable; the
 * quirks worth calling out, all replicated deliberately:
 *  - regs[0] is zeroed after every pair, not before the run, so pair 0
 *    observes the caller's r0;
 *  - write-back is parallel: both slots read pre-pair register values;
 *  - slot a's memory/send op executes before slot b's;
 *  - a halting pair breaks out before the runaway-cycles check;
 *  - the runaway check runs before the pc bounds check.
 *
 * The runaway-cycles test itself is deferred from straight-line pairs
 * to control-transfer and terminal kernels; see RUNAWAY_CHECK below for
 * the argument that this is externally indistinguishable.
 */

#include "ppisa/threaded.hh"

#include "ppisa/microexec.hh"
#include "sim/logging.hh"

namespace flashsim::ppisa
{

namespace
{

bool
isBranchOp(Op op)
{
    switch (op) {
      case Op::Beq:
      case Op::Bne:
      case Op::J:
      case Op::Bbs:
      case Op::Bbc:
        return true;
      default:
        return false;
    }
}

/** Register-to-register ops with no memory, branch, send, or halt side
 *  effects — the slots the fused dual-issue kernels can evaluate with a
 *  plain value computation. */
bool
isPureAlu(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Sllv:
      case Op::Srlv:
      case Op::Slt:
      case Op::Sltu:
      case Op::Addi:
      case Op::Andi:
      case Op::Ori:
      case Op::Xori:
      case Op::Slli:
      case Op::Srli:
      case Op::Srai:
      case Op::Slti:
      case Op::Ffs:
      case Op::Ext:
      case Op::Ins:
      case Op::Orfi:
      case Op::Andfi:
        return true;
      default:
        return false;
    }
}

/** Value computed by a pure-ALU micro-op over the pre-pair register
 *  file. Reads only; the caller does the (parallel) write-back. */
[[gnu::always_inline]] inline std::uint64_t
evalAlu(const MicroOp &m, const RegFile &regs)
{
    const std::uint64_t rs = regs[m.rs];
    const std::uint64_t rt = regs[m.rt];
    switch (m.op) {
      case Op::Add: return rs + rt;
      case Op::Sub: return rs - rt;
      case Op::And: return rs & rt;
      case Op::Or: return rs | rt;
      case Op::Xor: return rs ^ rt;
      case Op::Sllv: return rs << (rt & 63);
      case Op::Srlv: return rs >> (rt & 63);
      case Op::Slt:
        return static_cast<std::int64_t>(rs) < static_cast<std::int64_t>(rt)
                   ? 1
                   : 0;
      case Op::Sltu: return rs < rt ? 1 : 0;
      case Op::Addi: return rs + static_cast<std::uint64_t>(m.imm);
      case Op::Andi: return rs & static_cast<std::uint64_t>(m.imm);
      case Op::Ori: return rs | static_cast<std::uint64_t>(m.imm);
      case Op::Xori: return rs ^ static_cast<std::uint64_t>(m.imm);
      case Op::Slli: return rs << (m.imm & 63);
      case Op::Srli: return rs >> (m.imm & 63);
      case Op::Srai:
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(rs) >>
                                          (m.imm & 63));
      case Op::Slti: return static_cast<std::int64_t>(rs) < m.imm ? 1 : 0;
      case Op::Ffs:
        return rs == 0 ? 64
                       : static_cast<std::uint64_t>(__builtin_ctzll(rs));
      case Op::Ext: return (rs >> m.lo) & m.mask;
      case Op::Ins: return (regs[m.rd] & ~m.mask) | ((rs << m.lo) & m.mask);
      case Op::Orfi: return rs | m.mask;
      case Op::Andfi: return rs & ~m.mask;
      default:
        // Build-time selection only routes pure-ALU ops here.
        return 0;
    }
}

/** Branch decision over the pre-pair register file. */
[[gnu::always_inline]] inline bool
evalBranchTaken(const MicroOp &m, const RegFile &regs)
{
    switch (m.op) {
      case Op::Beq: return regs[m.rs] == regs[m.rt];
      case Op::Bne: return regs[m.rs] != regs[m.rt];
      case Op::J: return true;
      case Op::Bbs: return ((regs[m.rs] >> m.lo) & 1) != 0;
      case Op::Bbc: return ((regs[m.rs] >> m.lo) & 1) == 0;
      default: return false;
    }
}

/**
 * Pick the kernel for one pair. @p npairs bounds branch targets: a
 * target of exactly npairs lands on the out-of-range sentinel (same
 * panic as the interpreter's bounds check), anything beyond must go
 * through the Generic kernel, which range-checks the computed pc.
 */
ThreadedKernel
selectKernel(const DecodedPair &p, bool check_load_delay,
             std::size_t npairs)
{
    using K = ThreadedKernel;
    if (p.violation != DecodedPair::Violation::None)
        return K::Violation;
    if (check_load_delay)
        return K::Generic;
    if (p.halts)
        return (p.a.op == Op::Halt && p.b.op == Op::Nop) ? K::Halt
                                                         : K::Generic;

    const bool targetOk = [&](const MicroOp &m) {
        return m.target <= npairs;
    }(isBranchOp(p.b.op) ? p.b : p.a);

    if (p.b.op == Op::Nop) {
        switch (p.a.op) {
          case Op::Nop: return K::Nop;
          case Op::Add: return K::Add;
          case Op::Sub: return K::Sub;
          case Op::And: return K::And;
          case Op::Or: return K::Or;
          case Op::Xor: return K::Xor;
          case Op::Sllv: return K::Sllv;
          case Op::Srlv: return K::Srlv;
          case Op::Slt: return K::Slt;
          case Op::Sltu: return K::Sltu;
          case Op::Addi: return K::Addi;
          case Op::Andi: return K::Andi;
          case Op::Ori: return K::Ori;
          case Op::Xori: return K::Xori;
          case Op::Slli: return K::Slli;
          case Op::Srli: return K::Srli;
          case Op::Srai: return K::Srai;
          case Op::Slti: return K::Slti;
          case Op::Ld: return K::Ld;
          case Op::Sd: return K::Sd;
          case Op::Beq: return targetOk ? K::Beq : K::Generic;
          case Op::Bne: return targetOk ? K::Bne : K::Generic;
          case Op::J: return targetOk ? K::J : K::Generic;
          case Op::Ffs: return K::Ffs;
          case Op::Bbs: return targetOk ? K::Bbs : K::Generic;
          case Op::Bbc: return targetOk ? K::Bbc : K::Generic;
          case Op::Ext: return K::Ext;
          case Op::Ins: return K::Ins;
          case Op::Orfi: return K::Orfi;
          case Op::Andfi: return K::Andfi;
          case Op::Send: return K::Send;
          case Op::Halt: return K::Generic; // unreachable: halts above
        }
        return K::Generic;
    }

    // Dual-issue fusions, most specific first. The named pairs are the
    // hottest combinations in the static micro-op profile over the
    // protocol handler set (ppc/profile.hh); the class-based fusions
    // cover the long tail of ALU-heavy pairs.
    const bool aluA = isPureAlu(p.a.op);
    const bool aluB = isPureAlu(p.b.op);
    if (p.a.op == Op::Addi && p.b.op == Op::Addi)
        return K::FuseAddiAddi;
    if (p.a.op == Op::Ld) {
        if (p.b.op == Op::Addi)
            return K::FuseLdAddi;
        if (aluB)
            return K::FuseLdAlu;
        if (p.b.op == Op::Send)
            return K::FuseLdSend;
        return K::Generic;
    }
    if (p.a.op == Op::Sd && p.b.op == Op::Send)
        return K::FuseSdSend;
    if (p.a.op == Op::Send && aluB)
        return K::FuseSendAlu;
    if (aluA) {
        if (aluB)
            return K::FuseAluAlu;
        if (p.b.op == Op::Ld)
            return K::FuseAluLd;
        if (p.b.op == Op::Send)
            return K::FuseAluSend;
        if (isBranchOp(p.b.op))
            return targetOk ? K::FuseAluBr : K::Generic;
    }
    return K::Generic;
}

} // namespace

ThreadedProgram::ThreadedProgram(const std::string &name,
                                 const std::vector<DecodedPair> &pairs)
{
    (void)name;
    const std::size_t npairs = pairs.size();

    // Static load-delay reachability: collect, per pair, the union of
    // load masks of every static predecessor (fall-through and branch
    // targets; a halting pair has no successors and a J pair never
    // falls through). Only pairs where that union overlaps the source
    // mask need the runtime load-delay check — in correctly scheduled
    // code, none do. The runtime check itself stays exact (it tests the
    // dynamic prevLoadMask), so over-approximation here costs a check,
    // never a spurious panic.
    std::vector<std::uint32_t> predLoad(npairs, 0);
    for (std::size_t i = 0; i < npairs; ++i) {
        const DecodedPair &p = pairs[i];
        if (p.halts)
            continue;
        bool unconditional = false;
        for (const MicroOp *m : {&p.a, &p.b}) {
            if (!isBranchOp(m->op))
                continue;
            if (m->op == Op::J)
                unconditional = true;
            if (m->target < npairs)
                predLoad[m->target] |= p.loadMask;
        }
        if (!unconditional && i + 1 < npairs)
            predLoad[i + 1] |= p.loadMask;
    }

    ops_.reserve(npairs + 1);
    for (std::size_t i = 0; i < npairs; ++i) {
        const DecodedPair &p = pairs[i];
        ThreadedOp t;
        t.a = p.a;
        t.b = p.b;
        t.srcMask = p.srcMask;
        t.loadMask = p.loadMask;
        t.instrsInc = p.instrsInc;
        t.specialsInc = p.specialsInc;
        t.aluBranchInc = p.aluBranchInc;
        t.statPackA = static_cast<std::uint64_t>(p.instrsInc) |
                      static_cast<std::uint64_t>(p.specialsInc) << 32;
        t.statPackB = static_cast<std::uint64_t>(p.aluBranchInc) |
                      std::uint64_t{1} << 32;
        t.halts = p.halts;
        t.violation = p.violation;
        t.violationReg = p.violationReg;
        t.checkLoadDelay = (predLoad[i] & p.srcMask) != 0;
        t.kernel = selectKernel(p, t.checkLoadDelay, npairs);
        ops_.push_back(t);
    }

    // Sentinel one past the end: falling through the last pair (or
    // branching to exactly npairs) dispatches here and raises the
    // interpreter's pc-out-of-range panic.
    ThreadedOp sentinel;
    sentinel.kernel = ThreadedKernel::OutOfRange;
    ops_.push_back(sentinel);
}

double
ThreadedProgram::specializedFraction() const
{
    std::size_t total = 0, specialized = 0;
    for (std::size_t i = 0; i + 1 < ops_.size(); ++i) {
        if (ops_[i].kernel == ThreadedKernel::Nop)
            continue; // padding: nothing to specialize
        ++total;
        if (ops_[i].kernel != ThreadedKernel::Generic)
            ++specialized;
    }
    return total ? static_cast<double>(specialized) / total : 1.0;
}

// Token threading needs the GNU labels-as-values extension; elsewhere
// the same kernel bodies become cases of a for/switch loop.
#if defined(__GNUC__) || defined(__clang__)
#define FLASHSIM_THREADED_GOTO 1
#endif

#if FLASHSIM_THREADED_GOTO
#define KERNEL(n) k_##n
#define DISPATCH() goto *ktab[static_cast<int>(op->kernel)]
#else
#define KERNEL(n) case ThreadedKernel::n
#define DISPATCH() continue
#endif

/** Shared per-pair epilogue: zero r0, fold statistics (two packed
 *  adds; see ThreadedOp::statPackA), charge cycles, expose this pair's
 *  load mask, step to NEXT_OP, and re-dispatch. Expects `t` (the
 *  current op) in scope.
 *
 *  Unlike the interpreter, straight-line kernels do NOT test the
 *  runaway-cycles budget here: the check runs at every control
 *  transfer (branch kernels, Generic) and on entry to every terminal
 *  kernel (Halt, OutOfRange, Violation) instead — see RUNAWAY_CHECK
 *  below for why that is externally indistinguishable. */
#define STEP_EPILOGUE_BASE(STALL, LOADMASK, NEXT_OP)                      \
    regs[0] = 0;                                                          \
    statA += t.statPackA;                                                 \
    statB += t.statPackB;                                                 \
    cycles += 1 + (STALL);                                                \
    memStall += (STALL);                                                  \
    prevLoadMask = (LOADMASK);                                            \
    op = (NEXT_OP)

#define STEP_EPILOGUE(STALL, LOADMASK, NEXT_OP)                           \
    STEP_EPILOGUE_BASE(STALL, LOADMASK, NEXT_OP);                         \
    DISPATCH()

/** Epilogue for control-transfer kernels: same, plus the deferred
 *  runaway test (after this pair's cycle charge, like the
 *  interpreter's own post-pair check). */
#define STEP_EPILOGUE_CHECKED(STALL, LOADMASK, NEXT_OP)                   \
    STEP_EPILOGUE_BASE(STALL, LOADMASK, NEXT_OP);                         \
    RUNAWAY_CHECK();                                                      \
    DISPATCH()

/**
 * Deferred runaway test. The interpreter checks `cycles > kMaxCycles`
 * after every executed non-halting pair; the threaded executor checks
 * only where it matters for observable behaviour:
 *
 *  - cycles are monotone, so "some earlier non-halting pair crossed
 *    the budget" is exactly "cycles > kMaxCycles now";
 *  - a crossing inside a straight-line stretch is always followed by a
 *    checked kernel (every loop needs a taken branch or Generic, and
 *    every run ends in Halt / OutOfRange / Violation / Generic, all of
 *    which check on entry before raising any other panic — preserving
 *    the interpreter's runaway-before-bounds-check ordering);
 *  - panic() aborts the process with a message that carries no pair
 *    index, so reporting the runaway a few ALU pairs late is
 *    indistinguishable from outside.
 */
#define RUNAWAY_CHECK()                                                   \
    if (cycles > PpSim::kMaxCycles) [[unlikely]]                          \
    panic("PpSim: runaway handler '%s'", name)

/** Single-issue ALU kernel: one value computation plus the epilogue.
 *  EXPR may use `rs`, `rt`, `regs`, and `t.a`. A destination of r0 is
 *  fine: the write lands in regs[0] and the epilogue re-zeroes it,
 *  which is the interpreter's net effect. */
#define ALU_KERNEL(K, EXPR)                                               \
    KERNEL(K) : {                                                         \
        const ThreadedOp &t = *op;                                        \
        const std::uint64_t rs = regs[t.a.rs];                            \
        const std::uint64_t rt = regs[t.a.rt];                            \
        (void)rt;                                                         \
        regs[t.a.rd] = (EXPR);                                            \
        STEP_EPILOGUE(0, 0, op + 1);                                      \
    }

/** Single-issue branch kernel: TAKEN may use `regs` and `t.a`. */
#define BRANCH_KERNEL(K, TAKEN)                                           \
    KERNEL(K) : {                                                         \
        const ThreadedOp &t = *op;                                        \
        const bool taken = (TAKEN);                                       \
        STEP_EPILOGUE_CHECKED(0, 0, taken ? base + t.a.target : op + 1);  \
    }

/**
 * The executor, statically typed on the memory implementation: the
 * FlatPpMemory instantiation (benches, tests) inlines every memory op
 * into its kernel; the PpMemory instantiation keeps the virtual calls
 * for every other implementation (MDC shadow memory, oracle recorder).
 */
template <class Mem>
Cycles
runThreadedImpl(const DecodedProgram &d, RegFile &regs, Mem &mem,
                std::vector<SentMessage> &sent, RunStats &stats)
{
    const ThreadedProgram &tp = d.threaded();
    const ThreadedOp *const base = tp.ops().data();
    const std::size_t npairs = tp.size();
    const ThreadedOp *op = base;
    const char *const name = d.name().c_str();

    Cycles cycles = 0;
    Cycles memStall = 0;
    std::uint32_t prevLoadMask = 0;
    // Packed statistics accumulators (layout in ThreadedOp::statPackA).
    std::uint64_t statA = 0, statB = 0;

#if FLASHSIM_THREADED_GOTO
    // One entry per ThreadedKernel enumerator, in declaration order.
    static const void *const ktab[] = {
        &&k_Generic, &&k_Violation, &&k_OutOfRange, &&k_Halt, &&k_Nop,
        &&k_Add, &&k_Sub, &&k_And, &&k_Or, &&k_Xor, &&k_Sllv, &&k_Srlv,
        &&k_Slt, &&k_Sltu, &&k_Addi, &&k_Andi, &&k_Ori, &&k_Xori,
        &&k_Slli, &&k_Srli, &&k_Srai, &&k_Slti, &&k_Ld, &&k_Sd, &&k_Beq,
        &&k_Bne, &&k_J, &&k_Ffs, &&k_Bbs, &&k_Bbc, &&k_Ext, &&k_Ins,
        &&k_Orfi, &&k_Andfi, &&k_Send, &&k_FuseAddiAddi, &&k_FuseLdAddi,
        &&k_FuseLdAlu, &&k_FuseLdSend, &&k_FuseSdSend, &&k_FuseAluAlu,
        &&k_FuseAluLd, &&k_FuseAluSend, &&k_FuseSendAlu, &&k_FuseAluBr,
    };
    static_assert(sizeof(ktab) / sizeof(ktab[0]) ==
                      static_cast<std::size_t>(ThreadedKernel::Count_),
                  "dispatch table out of sync with ThreadedKernel");
    DISPATCH();
#else
    for (;;) {
        switch (op->kernel) {
#endif

    // The interpreter loop body verbatim: full contract checking,
    // generic two-slot execution, bounds-checked next pc. Every pair a
    // specialized kernel cannot take (decode-time contract violations
    // excepted) lands here, so the threaded backend is never less
    // capable than the interpreter.
    KERNEL(Generic) : {
        const ThreadedOp &t = *op;
        RUNAWAY_CHECK(); // deferred from preceding straight-line pairs
        if ((t.srcMask & prevLoadMask) != 0) [[unlikely]]
            detail::panicLoadDelay(t.a, t.b,
                                   static_cast<std::size_t>(op - base),
                                   name, prevLoadMask);
        Cycles stall = 0;
        detail::MicroResult ra =
            detail::execMicro(t.a, regs, mem, sent, stall);
        detail::MicroResult rb;
        if (t.b.op != Op::Nop)
            rb = detail::execMicro(t.b, regs, mem, sent, stall);
        if (ra.destReg > 0)
            regs[ra.destReg] = ra.destVal;
        if (rb.destReg > 0)
            regs[rb.destReg] = rb.destVal;
        regs[0] = 0;
        statA += t.statPackA;
        statB += t.statPackB;
        cycles += 1 + stall;
        memStall += stall;
        prevLoadMask = t.loadMask;
        if (t.halts)
            goto done;
        std::size_t next;
        if (ra.branchTaken)
            next = ra.target;
        else if (rb.branchTaken)
            next = rb.target;
        else
            next = static_cast<std::size_t>(op - base) + 1;
        if (cycles > PpSim::kMaxCycles) [[unlikely]]
            panic("PpSim: runaway handler '%s'", name);
        if (next > npairs) [[unlikely]]
            panic("PpSim: pc %zu out of range in '%s'", next, name);
        op = base + next;
        DISPATCH();
    }

    KERNEL(Violation) : {
        const ThreadedOp &t = *op;
        // An exhausted budget would have stopped the interpreter before
        // it ever reached (and reported) this pair.
        RUNAWAY_CHECK();
        const std::size_t pc = static_cast<std::size_t>(op - base);
        using V = DecodedPair::Violation;
        // Interpreter check order: intra-pair RAW/WAW first, then the
        // load-delay check, then two-branch.
        if (t.violation == V::IntraRaw || t.violation == V::IntraWaw)
            detail::panicViolation(t.violation, t.violationReg, pc, name);
        if ((t.srcMask & prevLoadMask) != 0)
            detail::panicLoadDelay(t.a, t.b, pc, name, prevLoadMask);
        detail::panicViolation(t.violation, t.violationReg, pc, name);
    }

    KERNEL(OutOfRange) : {
        // Runaway before bounds, the interpreter's check order.
        RUNAWAY_CHECK();
        panic("PpSim: pc %zu out of range in '%s'",
              static_cast<std::size_t>(op - base), name);
    }

    KERNEL(Halt) : {
        // {Halt, Nop}: the interpreter executes the (effect-free) pair,
        // zeroes r0, folds statistics, charges the cycle, and breaks
        // before checking its own budget — but it did check after every
        // earlier pair, which the deferred test reproduces exactly
        // (entry cycles here are the cycles after the last pre-halt
        // pair).
        const ThreadedOp &t = *op;
        RUNAWAY_CHECK();
        regs[0] = 0;
        statA += t.statPackA;
        statB += t.statPackB;
        cycles += 1;
        goto done;
    }

    KERNEL(Nop) : {
        const ThreadedOp &t = *op;
        STEP_EPILOGUE(0, 0, op + 1);
    }

    ALU_KERNEL(Add, rs + rt)
    ALU_KERNEL(Sub, rs - rt)
    ALU_KERNEL(And, rs & rt)
    ALU_KERNEL(Or, rs | rt)
    ALU_KERNEL(Xor, rs ^ rt)
    ALU_KERNEL(Sllv, rs << (rt & 63))
    ALU_KERNEL(Srlv, rs >> (rt & 63))
    ALU_KERNEL(Slt, static_cast<std::int64_t>(rs) <
                            static_cast<std::int64_t>(rt)
                        ? 1
                        : 0)
    ALU_KERNEL(Sltu, rs < rt ? 1 : 0)
    ALU_KERNEL(Addi, rs + static_cast<std::uint64_t>(t.a.imm))
    ALU_KERNEL(Andi, rs & static_cast<std::uint64_t>(t.a.imm))
    ALU_KERNEL(Ori, rs | static_cast<std::uint64_t>(t.a.imm))
    ALU_KERNEL(Xori, rs ^ static_cast<std::uint64_t>(t.a.imm))
    ALU_KERNEL(Slli, rs << (t.a.imm & 63))
    ALU_KERNEL(Srli, rs >> (t.a.imm & 63))
    ALU_KERNEL(Srai, static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(rs) >> (t.a.imm & 63)))
    ALU_KERNEL(Slti, static_cast<std::int64_t>(rs) < t.a.imm ? 1 : 0)
    ALU_KERNEL(Ffs, rs == 0
                        ? 64
                        : static_cast<std::uint64_t>(__builtin_ctzll(rs)))
    ALU_KERNEL(Ext, (rs >> t.a.lo) & t.a.mask)
    ALU_KERNEL(Ins, (regs[t.a.rd] & ~t.a.mask) |
                        ((rs << t.a.lo) & t.a.mask))
    ALU_KERNEL(Orfi, rs | t.a.mask)
    ALU_KERNEL(Andfi, rs & ~t.a.mask)

    KERNEL(Ld) : {
        const ThreadedOp &t = *op;
        Cycles stall = 0;
        const std::uint64_t v = mem.load(
            regs[t.a.rs] + static_cast<std::uint64_t>(t.a.imm), stall);
        regs[t.a.rd] = v;
        STEP_EPILOGUE(stall, t.loadMask, op + 1);
    }

    KERNEL(Sd) : {
        const ThreadedOp &t = *op;
        Cycles stall = 0;
        mem.store(regs[t.a.rs] + static_cast<std::uint64_t>(t.a.imm),
                  regs[t.a.rt], stall);
        STEP_EPILOGUE(stall, 0, op + 1);
    }

    BRANCH_KERNEL(Beq, regs[t.a.rs] == regs[t.a.rt])
    BRANCH_KERNEL(Bne, regs[t.a.rs] != regs[t.a.rt])
    BRANCH_KERNEL(J, true)
    BRANCH_KERNEL(Bbs, ((regs[t.a.rs] >> t.a.lo) & 1) != 0)
    BRANCH_KERNEL(Bbc, ((regs[t.a.rs] >> t.a.lo) & 1) == 0)

    KERNEL(Send) : {
        const ThreadedOp &t = *op;
        sent.push_back(SentMessage{static_cast<int>(t.a.imm),
                                   regs[t.a.rs], regs[t.a.rt]});
        STEP_EPILOGUE(0, 0, op + 1);
    }

    KERNEL(FuseAddiAddi) : {
        const ThreadedOp &t = *op;
        const std::uint64_t va =
            regs[t.a.rs] + static_cast<std::uint64_t>(t.a.imm);
        const std::uint64_t vb =
            regs[t.b.rs] + static_cast<std::uint64_t>(t.b.imm);
        regs[t.a.rd] = va;
        regs[t.b.rd] = vb;
        STEP_EPILOGUE(0, 0, op + 1);
    }

    KERNEL(FuseLdAddi) : {
        const ThreadedOp &t = *op;
        Cycles stall = 0;
        const std::uint64_t va = mem.load(
            regs[t.a.rs] + static_cast<std::uint64_t>(t.a.imm), stall);
        const std::uint64_t vb =
            regs[t.b.rs] + static_cast<std::uint64_t>(t.b.imm);
        regs[t.a.rd] = va;
        regs[t.b.rd] = vb;
        STEP_EPILOGUE(stall, t.loadMask, op + 1);
    }

    KERNEL(FuseLdAlu) : {
        const ThreadedOp &t = *op;
        Cycles stall = 0;
        const std::uint64_t va = mem.load(
            regs[t.a.rs] + static_cast<std::uint64_t>(t.a.imm), stall);
        const std::uint64_t vb = evalAlu(t.b, regs);
        regs[t.a.rd] = va;
        regs[t.b.rd] = vb;
        STEP_EPILOGUE(stall, t.loadMask, op + 1);
    }

    KERNEL(FuseLdSend) : {
        const ThreadedOp &t = *op;
        Cycles stall = 0;
        const std::uint64_t va = mem.load(
            regs[t.a.rs] + static_cast<std::uint64_t>(t.a.imm), stall);
        sent.push_back(SentMessage{static_cast<int>(t.b.imm),
                                   regs[t.b.rs], regs[t.b.rt]});
        regs[t.a.rd] = va;
        STEP_EPILOGUE(stall, t.loadMask, op + 1);
    }

    KERNEL(FuseSdSend) : {
        const ThreadedOp &t = *op;
        Cycles stall = 0;
        mem.store(regs[t.a.rs] + static_cast<std::uint64_t>(t.a.imm),
                  regs[t.a.rt], stall);
        sent.push_back(SentMessage{static_cast<int>(t.b.imm),
                                   regs[t.b.rs], regs[t.b.rt]});
        STEP_EPILOGUE(stall, 0, op + 1);
    }

    KERNEL(FuseAluAlu) : {
        const ThreadedOp &t = *op;
        const std::uint64_t va = evalAlu(t.a, regs);
        const std::uint64_t vb = evalAlu(t.b, regs);
        regs[t.a.rd] = va;
        regs[t.b.rd] = vb;
        STEP_EPILOGUE(0, 0, op + 1);
    }

    KERNEL(FuseAluLd) : {
        const ThreadedOp &t = *op;
        const std::uint64_t va = evalAlu(t.a, regs);
        Cycles stall = 0;
        const std::uint64_t vb = mem.load(
            regs[t.b.rs] + static_cast<std::uint64_t>(t.b.imm), stall);
        regs[t.a.rd] = va;
        regs[t.b.rd] = vb;
        STEP_EPILOGUE(stall, t.loadMask, op + 1);
    }

    KERNEL(FuseAluSend) : {
        const ThreadedOp &t = *op;
        const std::uint64_t va = evalAlu(t.a, regs);
        sent.push_back(SentMessage{static_cast<int>(t.b.imm),
                                   regs[t.b.rs], regs[t.b.rt]});
        regs[t.a.rd] = va;
        STEP_EPILOGUE(0, 0, op + 1);
    }

    KERNEL(FuseSendAlu) : {
        const ThreadedOp &t = *op;
        sent.push_back(SentMessage{static_cast<int>(t.a.imm),
                                   regs[t.a.rs], regs[t.a.rt]});
        const std::uint64_t vb = evalAlu(t.b, regs);
        regs[t.b.rd] = vb;
        STEP_EPILOGUE(0, 0, op + 1);
    }

    KERNEL(FuseAluBr) : {
        const ThreadedOp &t = *op;
        const std::uint64_t va = evalAlu(t.a, regs);
        const bool taken = evalBranchTaken(t.b, regs);
        regs[t.a.rd] = va;
        STEP_EPILOGUE_CHECKED(0, 0, taken ? base + t.b.target : op + 1);
    }

#if !FLASHSIM_THREADED_GOTO
        case ThreadedKernel::Count_:
            panic("PpSim: corrupt kernel token in '%s'", name);
        }
    }
#endif

done:
    stats.instrs += statA & 0xffffffffu;
    stats.specials += statA >> 32;
    stats.aluBranch += statB & 0xffffffffu;
    stats.pairs += statB >> 32;
    stats.memStall += memStall;
    stats.cycles += cycles;
    ++stats.invocations;
    return cycles;
}

Cycles
runThreaded(const DecodedProgram &d, RegFile &regs, PpMemory &mem,
            std::vector<SentMessage> &sent, RunStats &stats)
{
    if (mem.isFlat())
        return runThreadedFlat(d, regs, static_cast<FlatPpMemory &>(mem),
                               sent, stats);
    return runThreadedImpl(d, regs, mem, sent, stats);
}

Cycles
runThreadedFlat(const DecodedProgram &d, RegFile &regs, FlatPpMemory &mem,
                std::vector<SentMessage> &sent, RunStats &stats)
{
    return runThreadedImpl(d, regs, mem, sent, stats);
}

#undef STEP_EPILOGUE_BASE
#undef STEP_EPILOGUE
#undef STEP_EPILOGUE_CHECKED
#undef RUNAWAY_CHECK
#undef ALU_KERNEL
#undef BRANCH_KERNEL
#undef KERNEL
#undef DISPATCH

} // namespace flashsim::ppisa
