/**
 * @file
 * Section 4.4's closing observation, implemented: "the same flexibility
 * can be used to dynamically detect hot-spotting situations and provide
 * support for techniques such as automatic page remapping or
 * migration."
 *
 * The experiment: FFT with 4 KB caches and all memory on node 0 (the
 * Section 4.3 hot spot). A first run executes with MAGIC's PP-side
 * page-access monitoring enabled (a couple of handler cycles per
 * request — only a flexible controller can do this); the measured
 * per-page remote-access counts then drive a remapping policy that
 * spreads the hot pages round-robin, and the remapped run recovers the
 * performance the hot spot cost.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

struct Run
{
    Tick exec = 0;
    double maxPp = 0;
    double maxMem = 0;
};

Run
measure(const MachineConfig &cfg)
{
    RunOutcome r = runApp(cfg, "fft");
    Run out;
    out.exec = r.summary.execTime;
    out.maxPp = r.summary.maxPpOcc;
    out.maxMem = r.summary.maxMemOcc;
    return out;
}

} // namespace

int
main()
{
    std::printf("Section 4.4: hot-spot detection and page remapping via "
                "MAGIC's flexibility\n\n");

    // Phase 1: the hot-spotted machine, with PP page monitoring on.
    MachineConfig hot = MachineConfig::flash(16, 4096);
    hot.placement = machine::Placement::Node0;
    hot.magic.monitorPages = true;

    RunOutcome monitored = runApp(hot, "fft");
    auto heat = monitored.machine->pageHeat();
    std::printf("1. Monitored hot run: %llu cycles, max PP occupancy "
                "%.1f%%, %zu pages with remote traffic\n",
                static_cast<unsigned long long>(
                    monitored.summary.execTime),
                100.0 * monitored.summary.maxPpOcc, heat.size());

    std::vector<std::pair<std::uint64_t, Counter>> ranked(heat.begin(),
                                                          heat.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    std::printf("   hottest pages:");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size());
         ++i)
        std::printf(" #%llu(%llu)",
                    static_cast<unsigned long long>(ranked[i].first),
                    static_cast<unsigned long long>(ranked[i].second));
    std::printf("\n\n");

    // Phase 2: remap — pages with measured remote traffic are spread
    // round-robin across the machine; cold pages stay on node 0.
    std::unordered_map<std::uint64_t, NodeId> remap;
    NodeId next = 0;
    for (const auto &[page, count] : ranked) {
        remap[page] = next;
        next = (next + 1) % 16;
    }
    MachineConfig remapped = hot;
    remapped.magic.monitorPages = false;
    remapped.placementHook = [remap](std::uint64_t page) -> NodeId {
        auto it = remap.find(page);
        return it != remap.end() ? it->second : 0;
    };

    Run hot_plain = measure([&] {
        MachineConfig c = hot;
        c.magic.monitorPages = false;
        return c;
    }());
    Run fixed = measure(remapped);
    MachineConfig rr = MachineConfig::flash(16, 4096);
    Run baseline = measure(rr);

    std::printf("2. Results (FFT, 4 KB caches, 16 processors):\n");
    std::printf("   %-34s %10s %8s %8s\n", "configuration", "cycles",
                "maxPP", "maxMem");
    auto row = [](const char *label, const Run &r) {
        std::printf("   %-34s %10llu %7.1f%% %7.1f%%\n", label,
                    static_cast<unsigned long long>(r.exec),
                    100.0 * r.maxPp, 100.0 * r.maxMem);
    };
    row("all pages on node 0 (hot)", hot_plain);
    row("monitored + remapped", fixed);
    row("round-robin from the start", baseline);

    double monitor_overhead =
        100.0 * (static_cast<double>(monitored.summary.execTime) /
                     static_cast<double>(hot_plain.exec) -
                 1.0);
    double recovered =
        100.0 * (static_cast<double>(hot_plain.exec) -
                 static_cast<double>(fixed.exec)) /
        (static_cast<double>(hot_plain.exec) -
         static_cast<double>(baseline.exec));

    std::printf("\n   monitoring overhead: %.1f%% of the hot run\n",
                monitor_overhead);
    std::printf("   remapping recovered %.0f%% of the hot-spot "
                "penalty\n", recovered);
    return 0;
}
