file(REMOVE_RECURSE
  "CMakeFiles/bench_fetchop.dir/bench_fetchop.cc.o"
  "CMakeFiles/bench_fetchop.dir/bench_fetchop.cc.o.d"
  "bench_fetchop"
  "bench_fetchop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fetchop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
