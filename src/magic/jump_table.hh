/**
 * @file
 * The inbox jump table.
 *
 * The inbox indexes this small associative memory with fields of the
 * message header; the entry names the PP handler to dispatch and says
 * whether to launch a speculative memory read before the PP even sees
 * the message (Section 5.1). The table is software-programmable — the
 * speculation benchmark reprograms it with speculation disabled.
 */

#ifndef FLASHSIM_MAGIC_JUMP_TABLE_HH_
#define FLASHSIM_MAGIC_JUMP_TABLE_HH_

#include <array>

#include "protocol/message.hh"

namespace flashsim::magic
{

struct JumpTableEntry
{
    bool valid = false;
    /** Initiate a speculative memory read when the message is at home. */
    bool specRead = false;
};

class JumpTable
{
  public:
    /** Standard programming for the coherence protocol. */
    static JumpTable standard(bool speculation_enabled);

    const JumpTableEntry &lookup(protocol::MsgType t) const;
    void set(protocol::MsgType t, JumpTableEntry e);

  private:
    std::array<JumpTableEntry, protocol::kNumMsgTypes> entries_{};
};

} // namespace flashsim::magic

#endif // FLASHSIM_MAGIC_JUMP_TABLE_HH_
