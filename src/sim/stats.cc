#include "sim/stats.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace flashsim
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    last_ = v;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = last_ = 0.0;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        panic("StatSet: unknown stat '%s'", name.c_str());
    return it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.find(name) != values_.end();
}

double
pct(double num, double denom)
{
    return denom != 0.0 ? 100.0 * num / denom : 0.0;
}

double
ratio(double num, double denom)
{
    return denom != 0.0 ? num / denom : 0.0;
}

} // namespace flashsim
