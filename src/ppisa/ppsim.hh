/**
 * @file
 * PPsim: the instruction-set emulator for the MAGIC protocol processor.
 *
 * The paper (Section 3.3) integrates an instruction-set emulator for the
 * PP with FlashLite so that protocol handler timing comes from executing
 * the real handler code. This emulator plays that role: it executes
 * scheduled dual-issue handler programs, reporting dynamic cycle counts
 * and the instruction-usage statistics of Table 5.2, and routes all
 * memory operations through a pluggable interface so the MAGIC data
 * cache model can charge its 29-cycle miss penalty.
 */

#ifndef FLASHSIM_PPISA_PPSIM_HH_
#define FLASHSIM_PPISA_PPSIM_HH_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppisa/backend.hh"
#include "ppisa/instruction.hh"
#include "sim/flat_table.hh"
#include "sim/types.hh"

namespace flashsim::ppisa
{

class DecodedProgram;

/**
 * A fully scheduled PP handler program.
 *
 * Branch targets are pair indices. Each pair executes in one PP cycle
 * (plus any memory stall charged by the PpMemory implementation).
 */
class Program
{
  public:
    std::string name;

    /** The scheduled instruction pairs (read-only view). */
    const std::vector<InstrPair> &pairs() const { return pairs_; }

    /**
     * Mutable access to the instruction pairs. Every call bumps the
     * decode version, so any mutation through this accessor — including
     * an in-place element overwrite that keeps both the data pointer
     * and the size — is seen by the decode-cache fingerprint and forces
     * a re-decode on the next execution. Holding the returned reference
     * across a later decoded() call and mutating through it afterwards
     * is outside the contract.
     */
    std::vector<InstrPair> &
    mutablePairs()
    {
        ++version_;
        return pairs_;
    }

    /** Fingerprint component: bumped by every mutablePairs() call. */
    std::uint64_t decodeVersion() const { return version_; }

    /** Static code size in bytes (two 4-byte instruction words per pair),
     *  NOP slots included, matching Table 5.2's "with NOPs" metric. */
    std::size_t codeBytes() const { return pairs_.size() * 8; }

    std::string toString() const;

    /**
     * The pre-decoded image of this program (see decode.hh), built
     * lazily on first use and cached. Rebuilt automatically when the
     * program is reloaded: the cache fingerprints the pairs storage
     * (data pointer + size) plus the mutation version bumped by every
     * mutablePairs() call, so reassignment and in-place mutation both
     * invalidate it. Lazy build is not thread-safe: any program shared
     * across threads — the process-wide handler set read by sweep
     * workers and by the shards of a sharded run (sim/shard.hh) — must
     * be pre-decoded before publication (protocol/pp_programs.cc
     * does), after which concurrent decoded() calls are pure reads.
     */
    const DecodedProgram &decoded() const;

    /** Drop the cached decode (kept for emphasis at call sites; the
     *  version fingerprint already catches mutablePairs() mutations). */
    void invalidateDecodeCache() const;

  private:
    std::vector<InstrPair> pairs_;
    std::uint64_t version_ = 0;
    mutable std::shared_ptr<const DecodedProgram> decoded_;
};

/**
 * Memory seen by the PP: protocol data structures in main memory,
 * accessed through the MAGIC data cache. Implementations return the
 * extra stall cycles (0 on an MDC hit, the miss penalty otherwise).
 */
class FlatPpMemory;

class PpMemory
{
  public:
    virtual ~PpMemory() = default;
    virtual std::uint64_t load(Addr addr, Cycles &extra_cycles) = 0;
    virtual void store(Addr addr, std::uint64_t value,
                       Cycles &extra_cycles) = 0;

    /**
     * Devirtualization tag for the threaded backend: true exactly for
     * FlatPpMemory, whose statically-typed executor instantiation
     * inlines every memory op instead of making virtual calls. A plain
     * flag (not a virtual query): the executor tests it on every
     * handler invocation, where an indirect call is measurable. Cycle
     * accounting is unaffected — FlatPpMemory never stalls.
     */
    bool isFlat() const { return isFlat_; }

  protected:
    PpMemory() = default;
    /** Only FlatPpMemory may pass true: runThreaded static_casts the
     *  tagged object to FlatPpMemory. */
    explicit PpMemory(bool is_flat) : isFlat_(is_flat) {}

  private:
    bool isFlat_ = false;
};

/** Trivial PpMemory backed by a flat hash table; every access hits
 *  (0 stall). Final + fully inline so the threaded executor's
 *  FlatPpMemory instantiation folds the whole access into the kernel. */
class FlatPpMemory final : public PpMemory
{
  public:
    FlatPpMemory() : PpMemory(true) {}

    std::uint64_t
    load(Addr addr, Cycles &extra_cycles) override
    {
        extra_cycles = 0;
        return peek(addr);
    }

    void
    store(Addr addr, std::uint64_t value, Cycles &extra_cycles) override
    {
        extra_cycles = 0;
        poke(addr, value);
    }

    /** Direct (non-timed) backdoor access for test setup. */
    std::uint64_t
    peek(Addr addr) const
    {
        const Counter *v = data_.find(addr);
        return v != nullptr ? *v : 0;
    }

    void poke(Addr addr, std::uint64_t value) { data_[addr] = value; }

  private:
    FlatCounterMap data_;
};

/** An outgoing message launched by a Send instruction. */
struct SentMessage
{
    int type;           ///< protocol message type (Send immediate)
    std::uint64_t dest; ///< destination (node id or interface code)
    std::uint64_t arg;  ///< packed argument word (address + aux fields)

    bool operator==(const SentMessage &) const = default;
};

/** Dynamic statistics from one or more handler executions. */
struct RunStats
{
    Cycles cycles = 0;        ///< total PP cycles including memory stalls
    std::uint64_t pairs = 0;  ///< dual-issue pairs executed
    std::uint64_t instrs = 0; ///< non-NOP instructions executed
    std::uint64_t specials = 0;   ///< special (FLASH-extension) instructions
    std::uint64_t aluBranch = 0;  ///< ALU + branch instructions
    std::uint64_t memStall = 0;   ///< cycles of MDC stall included in cycles
    std::uint64_t invocations = 0; ///< handler invocations accumulated

    bool operator==(const RunStats &) const = default;

    void accumulate(const RunStats &other);

    /** Table 5.2: non-NOP instructions per pair (2.0 is perfect). */
    double dualIssueEfficiency() const;
    /** Table 5.2: fraction of ALU/branch instructions that are special. */
    double specialFraction() const;
    /** Table 5.2: mean instruction pairs per handler invocation. */
    double pairsPerInvocation() const;
};

/** Register file contents passed into / out of a handler run. */
using RegFile = std::array<std::uint64_t, kNumRegs>;

/**
 * The PP emulator. Stateless between runs; all architectural state lives
 * in the RegFile and PpMemory passed to run().
 */
class PpSim
{
  public:
    /** Upper bound on cycles per handler; exceeded => runaway handler. */
    static constexpr Cycles kMaxCycles = 1 << 20;

    /**
     * @param backend which engine run() uses. Interpreter is the
     * default for direct constructions (tests, tools); the machine
     * plumbs MagicParams::ppBackend through here. With the Threaded
     * backend, run() cross-checks every invocation against
     * runReference() when the conformance oracle is enabled — see
     * oracleEnabled().
     */
    explicit PpSim(PpBackend backend = PpBackend::Interpreter)
        : backend_(backend),
          checkThreaded_(backend == PpBackend::Threaded && oracleEnabled())
    {
    }

    PpBackend backend() const { return backend_; }

    /**
     * True when threaded-backend runs are cross-checked step-for-step
     * against the reference interpreter. Controlled by the FS_PP_ORACLE
     * environment variable ("1" forces on, anything else forces off);
     * when unset, on in debug builds (!NDEBUG) and off in release
     * builds. Read once per process.
     */
    static bool oracleEnabled();

    /**
     * Execute @p prog from pair 0 until Halt.
     *
     * Enforces the PP's static-scheduling contract: an intra-pair
     * dependency or a use of a load result in the pair immediately after
     * the load is a panic (the real PP has no interlocks, so such code is
     * simply broken).
     *
     * Runs over the program's cached decode (Program::decoded()); the
     * architectural behaviour — register/memory/message effects, cycle
     * charges, statistics, and every contract panic — is identical to
     * runReference().
     *
     * @param regs     register file (r0 forced to zero); updated in place.
     * @param mem      protocol-data memory (MDC timing hook).
     * @param sent     messages launched by Send, in order.
     * @param stats    dynamic statistics, accumulated (not reset).
     * @return cycles consumed by this invocation.
     */
    Cycles run(const Program &prog, RegFile &regs, PpMemory &mem,
               std::vector<SentMessage> &sent, RunStats &stats) const;

    /**
     * Pre-resolved run() for dispatch tables that pin their programs'
     * decodes at load time (PpTimingModel resolves every handler's
     * decode once at construction): @p decoded must be prog.decoded()
     * and @p prog must not have been mutated since, which skips the
     * per-invocation decode-cache fingerprint check on the dispatch
     * hot path. Behaviour is otherwise identical to run() above.
     */
    Cycles run(const Program &prog, const DecodedProgram &decoded,
               RegFile &regs, PpMemory &mem,
               std::vector<SentMessage> &sent, RunStats &stats) const;

    /**
     * The original per-issue-slot interpreter, which re-decodes each
     * instruction (bitfields, source/dest sets, contract checks) every
     * time it executes. Kept as the conformance oracle for the decode
     * cache: tests run every opcode through both paths and require
     * identical results.
     */
    Cycles runReference(const Program &prog, RegFile &regs, PpMemory &mem,
                        std::vector<SentMessage> &sent,
                        RunStats &stats) const;

  private:
    Cycles runThreadedChecked(const Program &prog, RegFile &regs,
                              PpMemory &mem,
                              std::vector<SentMessage> &sent,
                              RunStats &stats) const;

    PpBackend backend_ = PpBackend::Interpreter;
    /** Threaded backend + oracle on, latched at construction so run()
     *  skips the static-local guard of oracleEnabled() per call. */
    bool checkThreaded_ = false;
};

} // namespace flashsim::ppisa

#endif // FLASHSIM_PPISA_PPSIM_HH_
