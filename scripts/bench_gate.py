#!/usr/bin/env python3
"""Perf-smoke gate: run bench_hotpath and compare against the committed
BENCH_hotpath.json baseline.

Fails (exit 1) when any benchmark tracked in the baseline regresses by
more than the tolerance (default 25%). This is a smoke gate against
order-of-magnitude mistakes -- an accidental O(n^2), a lost fast path --
not a precision gate: CI hardware differs from the machine that recorded
the baseline, so the tolerance is wide and each benchmark is measured as
the minimum over several repetitions to shed scheduler noise.

Benchmarks present only in the current run (newly added) are reported
but never fail the gate; benchmarks present only in the baseline fail it
(the suite lost coverage).

Usage:
  scripts/bench_gate.py [--build-dir build] [--baseline BENCH_hotpath.json]
                        [--tolerance 0.25] [--repetitions 3]
                        [--current out.json]   # compare a saved run
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Map benchmark name -> (best real_time in ns) from a google-benchmark
    JSON file, ignoring aggregate rows (mean/median/stddev). Also returns
    the recording host's core count: the bench_host block stamped by
    scripts/bench_hotpath.sh when present, else google-benchmark's own
    context.num_cpus, else None."""
    with open(path) as f:
        doc = json.load(f)
    best = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        ns = b["real_time"] * UNIT_TO_NS[b.get("time_unit", "ns")]
        if name not in best or ns < best[name]:
            best[name] = ns
    cores = doc.get("bench_host", {}).get("cores") \
        or doc.get("context", {}).get("num_cpus")
    return best, cores


def shard_parties(name):
    """BM_Sharded*/N -> N (worker threads the bench needs), else None."""
    if not name.startswith("BM_Sharded"):
        return None
    _, _, arg = name.partition("/")
    try:
        return int(arg)
    except ValueError:
        return None


def run_bench(binary, out_path, repetitions):
    cmd = [
        binary,
        "--benchmark_format=console",
        "--benchmark_out=%s" % out_path,
        "--benchmark_out_format=json",
        # Old-style min_time flag (no unit suffix): the baked-in
        # google-benchmark predates the "0.2s" syntax.
        "--benchmark_min_time=0.05",
        "--benchmark_repetitions=%d" % repetitions,
    ]
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True)


def fmt(ns):
    if ns >= 1e6:
        return "%.3f ms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.1f us" % (ns / 1e3)
    return "%.1f ns" % ns


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap.add_argument("--build-dir", default=os.path.join(repo, "build"))
    ap.add_argument("--baseline",
                    default=os.path.join(repo, "BENCH_hotpath.json"))
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("BENCH_GATE_TOLERANCE",
                                                 0.25)),
                    help="allowed fractional regression (0.25 = +25%%)")
    ap.add_argument("--repetitions", type=int, default=3)
    ap.add_argument("--current", default=None,
                    help="saved benchmark JSON to compare instead of "
                         "running the binary")
    ap.add_argument("--strict", action="append", default=[],
                    metavar="NAME=TOL",
                    help="tighter per-benchmark tolerance, e.g. "
                         "BM_MissRoundTrip=0.05 to assert the clean "
                         "miss path pays <5%% for features that are "
                         "compiled in but disabled; repeatable")
    args = ap.parse_args()

    strict = {}
    for spec in args.strict:
        name, _, tol = spec.partition("=")
        if not tol:
            print("error: --strict wants NAME=TOL, got %r" % spec,
                  file=sys.stderr)
            return 2
        strict[name] = float(tol)

    baseline, base_cores = load_benchmarks(args.baseline)
    if not baseline:
        print("error: no benchmarks in baseline %s" % args.baseline,
              file=sys.stderr)
        return 2

    if args.current:
        current_path = args.current
    else:
        binary = os.path.join(args.build_dir, "bench", "bench_hotpath")
        if not os.access(binary, os.X_OK):
            print("error: %s not built" % binary, file=sys.stderr)
            return 2
        fd, current_path = tempfile.mkstemp(suffix=".json")
        os.close(fd)
        run_bench(binary, current_path, args.repetitions)
    current, cur_cores = load_benchmarks(current_path)

    failures = []
    width = max(len(n) for n in sorted(baseline) + sorted(current))
    print("\n%-*s %12s %12s %8s" %
          (width, "benchmark", "baseline", "current", "ratio"))
    for name in sorted(baseline):
        # Shard-scaling benches only measure parallel speedup when both
        # the baseline recorder and this host have a core per shard;
        # on smaller hosts the comparison is core-contention noise, so
        # skip it (never a failure).
        parties = shard_parties(name)
        if parties is not None and any(
                c is not None and c < parties
                for c in (base_cores, cur_cores)):
            print("%-*s %12s %12s %8s  SKIPPED (needs %d cores; "
                  "baseline %s, host %s)" %
                  (width, name, fmt(baseline[name]),
                   fmt(current[name]) if name in current else "-", "-",
                   parties, base_cores, cur_cores))
            continue
        if name not in current:
            failures.append("%s: missing from current run" % name)
            print("%-*s %12s %12s %8s" %
                  (width, name, fmt(baseline[name]), "MISSING", "-"))
            continue
        ratio = current[name] / baseline[name]
        tol = strict.get(name, args.tolerance)
        flag = ""
        if ratio > 1.0 + tol:
            failures.append("%s: %.2fx baseline (limit %.2fx)" %
                            (name, ratio, 1.0 + tol))
            flag = "  REGRESSED"
        print("%-*s %12s %12s %7.2fx%s" %
              (width, name, fmt(baseline[name]), fmt(current[name]),
               ratio, flag))
    for name in sorted(set(current) - set(baseline)):
        print("%-*s %12s %12s %8s  (untracked)" %
              (width, name, "-", fmt(current[name]), "-"))

    if failures:
        print("\nFAIL: %d benchmark(s) beyond +%d%% tolerance" %
              (len(failures), round(args.tolerance * 100)))
        for f in failures:
            print("  " + f)
        return 1
    print("\nOK: no tracked benchmark regressed beyond +%d%%" %
          round(args.tolerance * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
