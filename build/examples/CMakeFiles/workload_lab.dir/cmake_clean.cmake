file(REMOVE_RECURSE
  "CMakeFiles/workload_lab.dir/workload_lab.cpp.o"
  "CMakeFiles/workload_lab.dir/workload_lab.cpp.o.d"
  "workload_lab"
  "workload_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
