#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace flashsim
{

void
EventQueue::schedule(Cycles delay, Callback cb)
{
    scheduleAt(_now + delay, std::move(cb));
}

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < _now)
        panic("event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    events_.push(Event{when, nextSeq_++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never re-compare the element.
    Event ev = std::move(const_cast<Event &>(events_.top()));
    events_.pop();
    _now = ev.when;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!events_.empty() && events_.top().when <= limit) {
        step();
        ++executed;
    }
    if (_now < limit && limit != ~Tick{0})
        _now = limit;
    return executed;
}

void
EventQueue::reset()
{
    events_ = decltype(events_){};
    _now = 0;
    nextSeq_ = 0;
}

} // namespace flashsim
