/** @file Unit tests for the dynamic pointer allocation directory. */

#include <gtest/gtest.h>

#include "protocol/directory.hh"

namespace flashsim::protocol
{
namespace
{

constexpr Addr kLine = 0x4000;

TEST(DirHeader, PackUnpackRoundtrip)
{
    DirHeader h;
    h.dirty = true;
    h.pending = true;
    h.head = 0x1234;
    h.owner = 42;
    DirHeader r = DirHeader::unpack(h.pack());
    EXPECT_EQ(r.dirty, h.dirty);
    EXPECT_EQ(r.pending, h.pending);
    EXPECT_EQ(r.head, h.head);
    EXPECT_EQ(r.owner, h.owner);
}

TEST(LinkEntry, PackUnpackRoundtrip)
{
    LinkEntry e{55, 0xbeef};
    LinkEntry r = LinkEntry::unpack(e.pack());
    EXPECT_EQ(r.node, e.node);
    EXPECT_EQ(r.next, e.next);
}

TEST(DirectoryStore, EmptyLineHasNoSharers)
{
    DirectoryStore d;
    EXPECT_EQ(d.countSharers(kLine), 0);
    EXPECT_TRUE(d.sharers(kLine).empty());
    EXPECT_FALSE(d.isSharer(kLine, 3));
    DirHeader h = d.header(kLine);
    EXPECT_FALSE(h.dirty);
    EXPECT_EQ(h.head, 0u);
}

TEST(DirectoryStore, AddSharersPrepends)
{
    DirectoryStore d;
    d.addSharer(kLine, 1);
    d.addSharer(kLine, 2);
    d.addSharer(kLine, 3);
    EXPECT_EQ(d.countSharers(kLine), 3);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{3, 2, 1}));
    EXPECT_TRUE(d.isSharer(kLine, 2));
    EXPECT_FALSE(d.isSharer(kLine, 9));
    EXPECT_EQ(d.liveLinks(), 3u);
}

TEST(DirectoryStore, RemoveSharerReportsPosition)
{
    DirectoryStore d;
    d.addSharer(kLine, 1);
    d.addSharer(kLine, 2);
    d.addSharer(kLine, 3); // list: 3, 2, 1
    EXPECT_EQ(d.removeSharer(kLine, 3), 0);
    EXPECT_EQ(d.removeSharer(kLine, 1), 1);
    EXPECT_EQ(d.removeSharer(kLine, 7), -1);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{2}));
    EXPECT_EQ(d.liveLinks(), 1u);
}

TEST(DirectoryStore, RemoveMiddleRelinksList)
{
    DirectoryStore d;
    for (NodeId n = 1; n <= 5; ++n)
        d.addSharer(kLine, n); // 5 4 3 2 1
    EXPECT_EQ(d.removeSharer(kLine, 3), 2);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{5, 4, 2, 1}));
}

TEST(DirectoryStore, ClearSharersFreesEverything)
{
    DirectoryStore d;
    for (NodeId n = 0; n < 16; ++n)
        d.addSharer(kLine, n);
    d.clearSharers(kLine);
    EXPECT_EQ(d.countSharers(kLine), 0);
    EXPECT_EQ(d.liveLinks(), 0u);
}

TEST(DirectoryStore, FreeListRecyclesEntries)
{
    DirectoryStore d;
    d.addSharer(kLine, 1);
    std::uint32_t first = d.header(kLine).head;
    EXPECT_EQ(d.removeSharer(kLine, 1), 0);
    d.addSharer(kLine, 2);
    EXPECT_EQ(d.header(kLine).head, first); // same slot reused
}

TEST(DirectoryStore, TwoLinesIndependent)
{
    DirectoryStore d;
    constexpr Addr other = kLine + kLineSize;
    d.addSharer(kLine, 1);
    d.addSharer(other, 2);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{1}));
    EXPECT_EQ(d.sharers(other), (std::vector<NodeId>{2}));
}

TEST(DirectoryStore, HeaderBitsIndependentOfList)
{
    DirectoryStore d;
    d.addSharer(kLine, 4);
    DirHeader h = d.header(kLine);
    h.dirty = true;
    h.owner = 4;
    d.setHeader(kLine, h);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{4}));
    EXPECT_TRUE(d.header(kLine).dirty);
}

TEST(DirectoryStore, WordViewMatchesTypedView)
{
    DirectoryStore d;
    d.addSharer(kLine, 9);
    std::uint64_t w = d.loadWord(headerAddr(kLine));
    DirHeader h = DirHeader::unpack(w);
    EXPECT_EQ(h.head, d.header(kLine).head);
    LinkEntry e = LinkEntry::unpack(d.loadWord(linkAddr(h.head)));
    EXPECT_EQ(e.node, 9u);
    EXPECT_EQ(e.next, 0u);
}

TEST(DirectoryStore, FreeHeadWordMirrored)
{
    DirectoryStore d;
    // The word at link index 0 always holds the current free head.
    std::uint64_t fh0 = d.loadWord(linkAddr(0));
    EXPECT_NE(fh0, 0u);
    d.addSharer(kLine, 1);
    std::uint64_t fh1 = d.loadWord(linkAddr(0));
    EXPECT_NE(fh0, fh1);
}

TEST(DirectoryStore, PoolExhaustionIsFatal)
{
    DirectoryStore d(4);
    d.addSharer(kLine, 1);
    d.addSharer(kLine, 2);
    EXPECT_DEATH(
        {
            for (NodeId n = 3; n < 10; ++n)
                d.addSharer(kLine, n);
        },
        "pool exhausted");
}

TEST(DirectoryStore, HeaderAddrGeometry)
{
    // 16 directory headers (8 bytes each) share one 128-byte MDC line,
    // so headers for 2 KB of contiguous data live on one MDC line
    // (Section 5.2).
    Addr a0 = headerAddr(0);
    Addr a1 = headerAddr(15 * kLineSize);
    Addr a2 = headerAddr(16 * kLineSize);
    EXPECT_EQ(a1 - a0, 15u * 8u);
    EXPECT_EQ(a2 - a0, 16u * 8u);
    EXPECT_EQ(a0 / 128, a1 / 128);
    EXPECT_NE(a0 / 128, a2 / 128);
}

TEST(DirectoryStore, StressManyLinesAndSharers)
{
    DirectoryStore d;
    for (int l = 0; l < 64; ++l) {
        Addr line = static_cast<Addr>(l) * kLineSize;
        for (NodeId n = 0; n < 16; ++n)
            d.addSharer(line, n);
    }
    EXPECT_EQ(d.liveLinks(), 64u * 16u);
    for (int l = 0; l < 64; ++l) {
        Addr line = static_cast<Addr>(l) * kLineSize;
        EXPECT_EQ(d.countSharers(line), 16);
        for (NodeId n = 0; n < 16; ++n)
            EXPECT_GE(d.removeSharer(line, n), 0);
    }
    EXPECT_EQ(d.liveLinks(), 0u);
}

} // namespace
} // namespace flashsim::protocol
