#include "machine/machine.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sim/logging.hh"

namespace flashsim::machine
{

namespace
{
/** Base of the application address space (must stay clear of the
 *  protocol-data regions at 1<<44 and above). */
constexpr Addr kAppBase = Addr{1} << 20;
} // namespace

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), programs_(protocol::sharedHandlerPrograms(cfg.ppCompile)),
      base_(kAppBase), next_(kAppBase)
{
    cfg_.magic.pageShift = 0;
    for (std::uint64_t b = cfg_.pageBytes; b > 1; b >>= 1)
        ++cfg_.magic.pageShift;
    if (cfg_.pageBytes != 0 &&
        (cfg_.pageBytes & (cfg_.pageBytes - 1)) == 0)
        pageShift_ = cfg_.magic.pageShift;

    // The conservative lookahead is the minimum inter-node transit: a
    // message sent in one window cannot arrive before the next. A
    // degenerate zero-latency network leaves no safe window, so such a
    // configuration falls back to one shard.
    shards_ = resolveShards(cfg_.shards, cfg_.numProcs);
    lookahead_ = network::MeshNetwork::minTransitFor(cfg_.numProcs,
                                                     cfg_.net);
    if (lookahead_ == 0 && shards_ > 1) {
        warn("Machine: zero minimum mesh transit leaves no PDES "
             "lookahead; running single-threaded");
        shards_ = 1;
    }
    cfg_.shards = shards_;

    shardOf_.resize(static_cast<std::size_t>(cfg_.numProcs));
    for (int i = 0; i < cfg_.numProcs; ++i)
        shardOf_[static_cast<std::size_t>(i)] =
            shardOfNode(i, cfg_.numProcs, shards_);
    std::vector<EventQueue *> eqp;
    for (int s = 0; s < shards_; ++s) {
        eqs_.push_back(std::make_unique<EventQueue>());
        eqp.push_back(eqs_.back().get());
    }
    arb_.init(eqp, cfg_.numProcs);

    net_ = std::make_unique<network::MeshNetwork>(eqp, shardOf_,
                                                  cfg_.numProcs, cfg_.net);
    nodes_.reserve(static_cast<std::size_t>(cfg_.numProcs));
    for (int i = 0; i < cfg_.numProcs; ++i) {
        nodes_.push_back(std::make_unique<Node>(
            *eqs_[static_cast<std::size_t>(
                shardOf_[static_cast<std::size_t>(i)])],
            static_cast<NodeId>(i), cfg_, *this, programs_.get(), *net_));
    }

    // Route every shared host-state access in the tango sync
    // primitives through the arbiter's canonical per-tick sync phase —
    // in single-shard runs too, so lock/barrier resolution order is
    // identical across shard counts (see sim/shard.hh).
    for (int i = 0; i < cfg_.numProcs; ++i) {
        tango::Env &env = nodes_[static_cast<std::size_t>(i)]->env();
        const int s = shardOf_[static_cast<std::size_t>(i)];
        const NodeId n = static_cast<NodeId>(i);
        env.syncParker = [this, s, n](Tick t, std::coroutine_handle<> h) {
            arb_.park(s, t, n, h);
        };
        env.syncInlineOk = [this](Tick t) { return arb_.inlineOk(t); };
    }

    // The machine's construction thread owns shard 0; worker threads
    // (sharded runs) install their own thread-local log context.
    setLogTickSource([this] { return eqs_[0]->now(); });

    if (cfg_.magic.verify.any()) {
        sentinel_ = std::make_unique<verify::Sentinel>(
            *eqs_[0], cfg_.magic.verify, cfg_.numProcs);
        sentinel_->setWindowed(shards_ > 1);
        std::vector<const EventQueue *> nodeEqs;
        nodeEqs.reserve(static_cast<std::size_t>(cfg_.numProcs));
        for (int i = 0; i < cfg_.numProcs; ++i)
            nodeEqs.push_back(
                eqs_[static_cast<std::size_t>(
                         shardOf_[static_cast<std::size_t>(i)])]
                    .get());
        sentinel_->setNodeQueues(std::move(nodeEqs));

        verify::CoherenceOracle::Wiring w;
        w.numNodes = cfg_.numProcs;
        w.homeOf = [this](Addr a) { return homeOf(a); };
        w.header = [this](NodeId home, Addr line) {
            return nodes_[home]->magic().directory().header(line);
        };
        w.sharers = [this](NodeId home, Addr line) {
            return nodes_[home]->magic().directory().sharers(line);
        };
        w.cacheState = [this](NodeId n, Addr line) {
            switch (nodes_[n]->cache().state(line)) {
              case cpu::Cache::State::Invalid: return 0;
              case cpu::Cache::State::Shared: return 1;
              case cpu::Cache::State::Exclusive: return 2;
            }
            return 0;
        };
        sentinel_->wireOracle(std::move(w));

        for (auto &n : nodes_)
            n->magic().attachSentinel(sentinel_.get());
        if (sentinel_->injector().enabled()) {
            // Jitter draws come from the sending node's stream: send
            // order per node is shard-invariant, so the same seed
            // perturbs the same messages at any shard count. Installed
            // whenever the injector is on — not only when the jitter
            // knob is nonzero — so every send consumes exactly one
            // draw and enabling another injection class (loss, NACKs)
            // can never shift the per-node stream positions.
            net_->setPerturb([this](const protocol::Message &m) {
                return sentinel_->injector().meshJitter(m.src);
            });
            if (cfg_.magic.verify.fault.wireLossy())
                net_->enableTransport(&sentinel_->injector());
        }
    }
}

Machine::~Machine()
{
    setLogTickSource({});
}

Addr
Machine::alloc(std::uint64_t bytes, NodeId node)
{
    if (node >= static_cast<NodeId>(cfg_.numProcs))
        fatal("Machine::alloc: node %u out of range", node);
    // Under the Section 4.3 hot-spot policies the physical allocator
    // ignores NUMA placement hints: first-fit is the original
    // bus-oriented IRIX port, Node0 the all-memory-on-one-node FFT
    // experiment. Round-robin (the tuned kernel) honors explicit hints.
    if (cfg_.placement == Placement::Node0 ||
        cfg_.placement == Placement::FirstFit || cfg_.placementHook)
        return allocAuto(bytes);
    Addr start = next_;
    std::uint64_t pages =
        (bytes + cfg_.pageBytes - 1) / cfg_.pageBytes;
    if (pages == 0)
        pages = 1;
    for (std::uint64_t p = 0; p < pages; ++p)
        pageHome_.push_back(node);
    next_ += pages * cfg_.pageBytes;
    return start;
}

Addr
Machine::allocAuto(std::uint64_t bytes)
{
    Addr start = next_;
    std::uint64_t pages =
        (bytes + cfg_.pageBytes - 1) / cfg_.pageBytes;
    if (pages == 0)
        pages = 1;
    for (std::uint64_t p = 0; p < pages; ++p) {
        if (cfg_.placementHook) {
            pageHome_.push_back(cfg_.placementHook(pageHome_.size()) %
                                static_cast<NodeId>(cfg_.numProcs));
            continue;
        }
        NodeId home = 0;
        switch (cfg_.placement) {
          case Placement::RoundRobinPages:
            home = static_cast<NodeId>(rrCounter_++ %
                                       static_cast<std::uint64_t>(
                                           cfg_.numProcs));
            break;
          case Placement::Node0:
            home = 0;
            break;
          case Placement::FirstFit:
            home = static_cast<NodeId>(
                (firstFitAllocated_ / cfg_.firstFitNodeBytes) %
                static_cast<std::uint64_t>(cfg_.numProcs));
            firstFitAllocated_ += cfg_.pageBytes;
            break;
        }
        pageHome_.push_back(home);
    }
    next_ += pages * cfg_.pageBytes;
    return start;
}

NodeId
Machine::homeOf(Addr addr) const
{
    if (addr < base_)
        panic("homeOf: address 0x%llx below app base",
              static_cast<unsigned long long>(addr));
    std::uint64_t page = pageShift_ != 0
                             ? (addr - base_) >> pageShift_
                             : (addr - base_) / cfg_.pageBytes;
    if (page >= pageHome_.size())
        panic("homeOf: address 0x%llx was never allocated",
              static_cast<unsigned long long>(addr));
    return pageHome_[page];
}

tango::BarrierVar
Machine::makeBarrier()
{
    tango::BarrierVar b;
    b.parties = cfg_.numProcs;
    int ngroups = (cfg_.numProcs + tango::BarrierVar::kArity - 1) /
                  tango::BarrierVar::kArity;
    for (int g = 0; g < ngroups; ++g) {
        tango::BarrierVar::Group grp;
        // Each group's lines live on one of its members' nodes.
        NodeId home = static_cast<NodeId>(
            (g * tango::BarrierVar::kArity) % cfg_.numProcs);
        grp.countAddr = alloc(kLineSize, home);
        grp.flagAddr = alloc(kLineSize, home);
        grp.size = std::min(tango::BarrierVar::kArity,
                            cfg_.numProcs -
                                g * tango::BarrierVar::kArity);
        b.groups.push_back(grp);
    }
    b.rootCountAddr = alloc(kLineSize, 0);
    return b;
}

tango::LockVar
Machine::makeLock(NodeId node)
{
    tango::LockVar l;
    l.addr = alloc(kLineSize, node);
    return l;
}

std::uint64_t
Machine::pageIndexOf(Addr addr) const
{
    return (addr - base_) / cfg_.pageBytes;
}

FlatCounterMap
Machine::pageHeat() const
{
    FlatCounterMap heat;
    std::size_t entries = 0;
    for (const auto &n : nodes_)
        entries += n->magic().pageRemoteAccesses.size();
    heat.reserve(entries);
    const std::uint64_t base_page = base_ / cfg_.pageBytes;
    for (const auto &n : nodes_) {
        for (const auto &[abs_page, count] :
             n->magic().pageRemoteAccesses)
            heat[abs_page - base_page] += count;
    }
    // NRVO/move: the aggregate is handed to the caller, never copied.
    return heat;
}

void
Machine::runShardWindow(int s, Tick wend)
{
    EventQueue &eq = *eqs_[static_cast<std::size_t>(s)];
    while (true) {
        const Tick tq = eq.nextTick();
        const Tick u = std::min(tq, arb_.minPending(s));
        if (u >= wend)
            break;
        // Publish before executing tick u: shards rendezvousing at an
        // earlier tick may proceed, while anyone waiting on tick u
        // itself must keep waiting — we might still park there. The
        // publish is liveness-only (registration-before-publish is
        // what freezes participant sets), so it is elided while no
        // shard is in a rendezvous — the common case; the watermark is
        // re-checked every iteration and the window-end publish below
        // is unconditional, so a parked shard never waits on us for
        // more than one tick's worth of work.
        if (arb_.anyParked())
            arb_.publishClock(s, u);
        if (tq == u)
            eq.drainTick(u);
        if (arb_.minPending(s) == u)
            arb_.syncPhase(s, u);
    }
    arb_.publishClock(s, wend);
}

Tick
Machine::earliestWork() const
{
    Tick t = EventQueue::kNever;
    for (int s = 0; s < shards_; ++s) {
        t = std::min(t, eqs_[static_cast<std::size_t>(s)]->nextTick());
        t = std::min(t, arb_.minPending(s));
    }
    return t;
}

Tick
Machine::windowEndFor(Tick T) const
{
    // Adaptive widening. A window [T, wend) is safe iff no cross-shard
    // message sent during it is due before wend (staged sends merge at
    // the edge, so an earlier due time would deliver it late). Every
    // send from shard s this window happens at or after
    // e_s = min(nextTick, pending sync op) — including sends from
    // sync-phase-resumed coroutines, which run at park ticks >= e_s —
    // and takes at least the shard's minimum outbound transit L_s, so
    // nothing can be due before min_s(e_s + L_s). Called at a window
    // edge, every future cross-shard arrival is already merged, and
    // armed ARQ/retry timers are plain events inside nextTick, so they
    // bound the horizon automatically. With the stock uniform-latency
    // mesh the bound degenerates to T + lookahead (the shard owning T
    // bounds itself); it widens when outbound transits differ per
    // shard. Proof sketch in DESIGN.md 5i.
    Tick wend = T + lookahead_;
    if (shards_ > 1) {
        Tick bound = EventQueue::kNever;
        for (int s = 0; s < shards_; ++s) {
            const Tick e =
                std::min(eqs_[static_cast<std::size_t>(s)]->nextTick(),
                         arb_.minPending(s));
            if (e == EventQueue::kNever)
                continue;
            bound = std::min(bound, e + net_->minOutboundTransit(s));
        }
        if (bound != EventQueue::kNever)
            wend = std::max(wend, bound);
    }
    return wend;
}

void
Machine::noteWindow(Tick T, Tick wend)
{
    ShardRunStats &st = shardStats_;
    ++st.windowsRun;
    if (anyWindow_ && T > lastWindowEnd_) {
        ++st.windowsSkipped;
        st.ticksSkipped += T - lastWindowEnd_;
    }
    const Tick w = wend - T;
    st.ticksWindowed += w;
    st.maxWidth = std::max(st.maxWidth, w);
    if (w > lookahead_)
        ++st.windowsWidened;
    lastWindowEnd_ = wend;
    anyWindow_ = true;
}

void
Machine::runSingle(const std::function<bool()> &all_done)
{
    // The single-shard loop advances tick by tick with the same
    // canonical intra-tick structure as a sharded window (network-lane
    // deliveries, normal events, then the sync phase), which is what
    // makes the two modes bit-identical.
    EventQueue &eq = *eqs_[0];
    while (!all_done()) {
        const Tick tq = eq.nextTick();
        const Tick u = std::min(tq, arb_.minPending(0));
        if (u == EventQueue::kNever)
            fatal("Machine::run: deadlock — event queue empty with %d "
                  "processors unfinished",
                  cfg_.numProcs);
        if (tq == u)
            eq.drainTick(u);
        if (arb_.minPending(0) == u)
            arb_.syncPhase(0, u);
    }
}

void
Machine::runSharded(const std::function<bool()> &all_done)
{
    // done/windowEnd are plain: they are written only inside the
    // barrier's serial section and read after its release edge.
    bool done = false;
    Tick windowEnd = 0;

    // No spin budget on oversubscribed hosts — the shard being waited
    // on needs this core to make progress.
    const unsigned hw = std::thread::hardware_concurrency();
    const int spin =
        hw != 0 && static_cast<unsigned>(shards_) > hw ? 0 : 4096;
    SpinBarrier gate(shards_, spin);

    // The serial window edge, run by the barrier's last arriver while
    // every other shard is held in the rendezvous: merge staged
    // cross-shard traffic, flush the sentinel, then pick the next
    // window — its start jumps to the earliest pending work machine-
    // wide (idle-gap skipping: a quiescent stretch costs one
    // rendezvous, not one per lookahead), and its end widens
    // adaptively (windowEndFor). One rendezvous per window, with the
    // same serial-section ordering the old two-std::barrier
    // coordinator had.
    auto edge = [&] {
        net_->exchangeWindows();
        if (sentinel_)
            sentinel_->flushWindow();
        if (all_done()) {
            done = true;
            return;
        }
        const Tick T = earliestWork();
        if (T == EventQueue::kNever)
            fatal("Machine::run: deadlock — event queue empty with %d "
                  "processors unfinished",
                  cfg_.numProcs);
        windowEnd = windowEndFor(T);
        noteWindow(T, windowEnd);
    };

    auto worker = [&](int s) {
        setLogTickSource(
            [this, s] { return eqs_[static_cast<std::size_t>(s)]->now(); });
        while (true) {
            gate.arriveAndWait(edge);
            if (done)
                break;
            runShardWindow(s, windowEnd);
        }
        setLogTickSource({});
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(shards_ - 1));
    for (int s = 1; s < shards_; ++s)
        threads.emplace_back(worker, s);

    // The main thread is shard 0's worker, and additionally meters its
    // wall time inside the rendezvous (window edges it happens to run
    // itself included) — the run report's barrier-wait estimate.
    std::uint64_t waitNs = 0;
    while (true) {
        const auto t0 = std::chrono::steady_clock::now();
        gate.arriveAndWait(edge);
        waitNs += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        if (done)
            break;
        runShardWindow(0, windowEnd);
    }
    for (std::thread &t : threads)
        t.join();

    shardStats_.barrierWaitNs += waitNs;
    shardStats_.barrierParks = gate.parks();
    shardStats_.syncPhases = arb_.phasesRun();
}

Tick
Machine::run(const Workload &workload)
{
    for (auto &n : nodes_)
        n->startWorkload(workload);

    // finished() is monotone, so it suffices to watch one unfinished
    // processor at a time: the scan resumes where it left off instead
    // of walking every node on every step.
    std::size_t watch = 0;
    auto all_done = [this, &watch] {
        while (watch < nodes_.size() && nodes_[watch]->proc().finished())
            ++watch;
        return watch == nodes_.size();
    };

    if (shards_ == 1)
        runSingle(all_done);
    else
        runSharded(all_done);

    execTime_ = 0;
    for (auto &n : nodes_)
        execTime_ = std::max(execTime_, n->proc().finishTime());
    return execTime_;
}

void
Machine::drain()
{
    if (shards_ == 1) {
        eqs_[0]->run();
    } else {
        // Drain the tail windowed but on one thread: the workloads
        // have finished, so no sync phases can arise (nothing parks),
        // and running the shards' windows back-to-back preserves the
        // canonical order exactly as the threaded loop would. The same
        // skipping/widening applies — retry-backoff and RTO tails are
        // mostly armed-timer waits, which the horizon jumps over.
        while (true) {
            const Tick T = earliestWork();
            if (T == EventQueue::kNever)
                break;
            const Tick wend = windowEndFor(T);
            noteWindow(T, wend);
            for (int s = 0; s < shards_; ++s)
                runShardWindow(s, wend);
            net_->exchangeWindows();
            if (sentinel_)
                sentinel_->flushWindow();
        }
        shardStats_.syncPhases = arb_.phasesRun();
    }
    // The machine is quiesced: every in-flight message has landed, so
    // the oracle can hold it to the strict (no transient windows)
    // whole-machine invariants — and every wire lane must have
    // recovered every dropped copy.
    net_->checkTransportQuiesced();
    if (sentinel_)
        sentinel_->finalCheck();
}

std::uint64_t
Machine::stateDigest() const
{
    // FNV-1a over every allocated line's directory header + sharer
    // list at its home plus each node's cache state for that line: a
    // bit-exact fingerprint of the final architectural state, for the
    // lossy-vs-clean and cross-shard equivalence tests.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (Addr line = base_; line < next_; line += kLineSize) {
        const NodeId home = homeOf(line);
        const auto hdr = nodes_[home]->magic().directory().header(line);
        mix(hdr.pack());
        for (NodeId s : nodes_[home]->magic().directory().sharers(line))
            mix(s);
        for (const auto &n : nodes_)
            mix(static_cast<std::uint64_t>(n->cache().state(line)));
    }
    return h;
}

} // namespace flashsim::machine
