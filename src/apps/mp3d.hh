/**
 * @file
 * MP3D: rarefied-fluid-flow particle simulation (Table 3.5: 50,000
 * particles) — the paper's communication stress test.
 *
 * Particles are statically partitioned across processors; the space
 * cells they move through are shared and updated by whoever moves a
 * particle into them, producing intense migratory write sharing: most
 * misses find the line dirty in another processor's cache (Table 4.1:
 * 84% remote dirty remote, 6% miss rate), and both FLASH and the ideal
 * machine spend most of their time in the memory system.
 */

#ifndef FLASHSIM_APPS_MP3D_HH_
#define FLASHSIM_APPS_MP3D_HH_

#include <cstdint>

#include "apps/workload.hh"
#include "sim/random.hh"

namespace flashsim::apps
{

struct Mp3dParams
{
    int particles = 20000; ///< paper: 50000
    int steps = 6;
    int cells = 4096;      ///< space array cells
    std::uint64_t seed = 31;
    std::uint64_t instrsPerMove = 120;

    static Mp3dParams
    paper()
    {
        Mp3dParams p;
        p.particles = 50000;
        return p;
    }
};

class Mp3d : public Workload
{
  public:
    explicit Mp3d(Mp3dParams params = {}) : p_(params) {}

    std::string name() const override { return "mp3d"; }
    void setup(machine::Machine &m) override;
    tango::Task run(tango::Env &env) override;

  private:
    Mp3dParams p_;
    int nprocs_ = 0;
    int perProc_ = 0;
    std::vector<Addr> particleAddr_;
    std::vector<Addr> cellAddr_;
    std::vector<std::uint32_t> particleCell_; ///< host positions
    tango::BarrierVar bar_;
};

} // namespace flashsim::apps

#endif // FLASHSIM_APPS_MP3D_HH_
