#include "apps/os_workload.hh"

#include "sim/logging.hh"

namespace flashsim::apps
{

namespace
{
constexpr int kNumLocks = 6; ///< fs, vm, proc, buffer, vnode, sched
// The task loop draws a non-fs lock as 1 + below(kNumLocks - 1), so a
// single-lock configuration would pass Rng::below a zero bound
// (division by zero before that assertion existed).
static_assert(kNumLocks > 1, "need at least one non-fs kernel lock");
} // namespace

void
OsWorkload::setup(machine::Machine &m)
{
    // The kernel phases draw uniformly over these ranges every task, so
    // a degenerate sweep configuration must fail here with a clear
    // message rather than hand Rng::below a zero bound mid-run.
    if (p_.fileCacheLines <= 0 || p_.kernelTableLines <= 0 ||
        p_.hotLines <= 0)
        panic("OsWorkload: fileCacheLines/kernelTableLines/hotLines "
              "must be positive (got %d/%d/%d)", p_.fileCacheLines,
              p_.kernelTableLines, p_.hotLines);

    nprocs_ = m.numProcs();
    for (int p = 0; p < nprocs_; ++p)
        userBase_.push_back(
            m.alloc(static_cast<Addr>(p_.userLines) * kLineSize,
                    static_cast<NodeId>(p)));
    // Kernel tables and the file cache are striped by the machine's
    // page placement policy (round-robin in the tuned kernel; first-fit
    // reproduces the original bus-oriented IRIX port of Section 4.3).
    kernelBase_ = m.allocAuto(
        static_cast<Addr>(p_.kernelTableLines) * kLineSize);
    hotBase_ = m.allocAuto(static_cast<Addr>(p_.hotLines) * kLineSize);
    fileBase_ =
        m.allocAuto(static_cast<Addr>(p_.fileCacheLines) * kLineSize);
    // Fresh-page pool: enough pages for every task of every process.
    int total_pages = p_.pagesPerTask * p_.tasks * nprocs_;
    for (int i = 0; i < total_pages; ++i)
        freshPages_.push_back(m.allocAuto(m.config().pageBytes));
    for (int l = 0; l < kNumLocks; ++l)
        locks_.push_back(
            m.makeLock(static_cast<NodeId>(l % nprocs_)));
    pageLines_ = m.config().pageBytes / kLineSize;
    bar_ = m.makeBarrier();
}

tango::Task
OsWorkload::run(tango::Env &env)
{
    co_await env.busy(0);
    const int me = env.id();
    Rng rng(p_.seed + static_cast<std::uint64_t>(me) * 13 + 1);
    const Addr my_user = userBase_[static_cast<std::size_t>(me)];
    const Addr lines_per_page = pageLines_;

    for (int task = 0; task < p_.tasks; ++task) {
        // --- User mode: a compiler pass over the private working set.
        for (int sweep = 0; sweep < 2; ++sweep) {
            for (int l = 0; l < p_.userLines; ++l) {
                Addr a = my_user + static_cast<Addr>(l) * kLineSize;
                co_await env.read(a);
                co_await env.busy(p_.userInstrsPerLine);
                if ((l & 3) == 0)
                    co_await env.write(a);
            }
        }

        // --- Kernel: open/read source files (file cache + fs lock).
        co_await env.lockAcquire(locks_[0]);
        for (int i = 0; i < 56; ++i) {
            Addr a = fileBase_ +
                     rng.below(static_cast<std::uint64_t>(
                         p_.fileCacheLines)) *
                         kLineSize;
            co_await env.read(a);
            co_await env.busy(p_.kernelInstrsPerOp);
        }
        co_await env.lockRelease(locks_[0]);

        // --- Kernel: process management / scheduling tables.
        int lock_id = 1 + static_cast<int>(rng.below(kNumLocks - 1));
        co_await env.lockAcquire(locks_[static_cast<std::size_t>(lock_id)]);
        for (int i = 0; i < 40; ++i) {
            Addr a = kernelBase_ +
                     rng.below(static_cast<std::uint64_t>(
                         p_.kernelTableLines)) *
                         kLineSize;
            co_await env.read(a);
            co_await env.busy(p_.kernelInstrsPerOp);
            if ((i & 1) == 0)
                co_await env.write(a);
        }
        co_await env.lockRelease(locks_[static_cast<std::size_t>(lock_id)]);

        // --- Kernel: scheduler / VM hot counters. A small set of
        // intensively write-shared lines (run queues, page counters)
        // that every processor read-modify-writes constantly. This is
        // the traffic that makes the original first-fit IRIX port
        // protocol-processor-bound on node 0 (Section 4.3): the dirty
        // lines migrate cache-to-cache, loading the home PP with
        // forwards/invals/acks while barely touching its memory.
        for (int i = 0; i < p_.hotOpsPerTask; ++i) {
            Addr a = hotBase_ +
                     rng.below(static_cast<std::uint64_t>(p_.hotLines)) *
                         kLineSize;
            co_await env.read(a);
            co_await env.busy(30);
            // Mostly-read counters: the occasional update invalidates
            // every reader, so the home PP pays a long invalidation
            // burst for a single (usually useless) memory access.
            if (rng.below(3) == 0)
                co_await env.write(a);
        }

        // --- Kernel: allocate and zero fresh pages for the compiler.
        // The pages come from the machine-wide pool, so their homes
        // follow the page placement policy; zeroing is pure local-or-
        // remote memory bandwidth (write misses with no sharers).
        for (int pg = 0; pg < p_.pagesPerTask; ++pg) {
            std::size_t idx =
                (static_cast<std::size_t>(me) * p_.tasks + task) *
                    p_.pagesPerTask +
                pg;
            Addr page = freshPages_[idx % freshPages_.size()];
            for (Addr l = 0; l < lines_per_page; ++l) {
                co_await env.write(page + l * kLineSize);
                co_await env.busy(16);
            }
        }

        // --- User mode: code generation over the working set again.
        for (int l = 0; l < p_.userLines; ++l) {
            Addr a = my_user + static_cast<Addr>(l) * kLineSize;
            co_await env.read(a);
            co_await env.busy(p_.userInstrsPerLine / 2);
            co_await env.write(a);
        }
    }
    co_await env.barrier(bar_);
}

} // namespace flashsim::apps
