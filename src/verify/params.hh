/**
 * @file
 * Configuration of the verification layer (src/verify): the coherence
 * oracle, the deadlock/livelock watchdog, and the deterministic fault
 * injector. Everything here is off by default, so a machine built
 * without touching these knobs behaves (and times) exactly as before.
 *
 * Scalars only: this header is embedded in magic::MagicParams and must
 * not pull protocol or machine types.
 */

#ifndef FLASHSIM_VERIFY_PARAMS_HH_
#define FLASHSIM_VERIFY_PARAMS_HH_

#include "sim/types.hh"

namespace flashsim::verify
{

/**
 * Seeded, deterministic protocol perturbations. Every decision comes
 * from one xorshift64* stream drawn in event order, so a (seed, config)
 * pair replays bit-identically. All perturbations preserve the
 * point-to-point FIFO ordering the NACK/retry protocol depends on:
 * delay jitter and inbound stalls are clamped so no message overtakes
 * an earlier one on the same (src, dest) pair or MAGIC queue.
 */
struct FaultParams
{
    bool enabled = false;
    std::uint64_t seed = 1;

    /** Max extra mesh transit cycles added per message (0 = off). */
    Cycles meshJitter = 0;
    /** Probability a home-node GET/GETX is NACKed outright instead of
     *  serviced (forces the retry paths; 0 = off). */
    double extraNackProb = 0.0;
    /** Probability a replacement hint is dropped on arrival (leaves a
     *  stale sharer pointer for later invalidation to clean up). */
    double dropHintProb = 0.0;
    /** Probability a replacement hint is duplicated on arrival. */
    double dupHintProb = 0.0;
    /** Max extra cycles a message stalls entering a MAGIC inbound
     *  queue, modelling queue-full backpressure (0 = off). */
    Cycles inboundStall = 0;

    // -- Lossy-mesh wire plane (recoverable-fault transport) ----------------
    //
    // Any nonzero wire probability enables the reliable transport layer
    // on every mesh lane: wire copies of protocol messages are genuinely
    // dropped / duplicated / reordered, and sequencing + cumulative acks
    // + retransmit timers recover them. Fates come from per-(src,dst)-
    // lane streams drawn in lane transmission order, so they are
    // independent of the shard partition.

    /** Probability a wire copy is dropped in flight (0 = off). */
    double wireDropProb = 0.0;
    /** Probability a wire copy is duplicated in flight. */
    double wireDupProb = 0.0;
    /** Probability a wire copy is held back past its successors
     *  (genuine reordering within the lane's dedup window). */
    double wireReorderProb = 0.0;
    /** Max extra cycles a reordered wire copy is delayed. */
    Cycles wireReorderDelay = 96;

    /** Probability an inbound network request (NetGet/NetGetx) dies at
     *  the home node's NI before touching any protocol state. Unlike
     *  the wire knobs this kills the transaction outright; recovery
     *  relies on the requester's timeout/retry (txnRetryTimeout). */
    double txnDropProb = 0.0;

    /** True when the wire-plane transport should be built. */
    bool
    wireLossy() const
    {
        return wireDropProb > 0.0 || wireDupProb > 0.0 ||
               wireReorderProb > 0.0;
    }
};

/** The verification layer proper. */
struct VerifyParams
{
    /** Maintain the golden shadow state and cross-check the directory
     *  and processor caches at every handler completion. */
    bool oracle = false;
    /** Track per-transaction ages and global protocol progress. */
    bool watchdog = false;

    /** fatal() on the first oracle violation (otherwise record and
     *  continue; the run's violation log is inspected afterwards). */
    bool haltOnViolation = false;
    /** fatal() on a watchdog trip. A trip means the simulation is
     *  hanging, so dying loudly (with the post-mortem dump) is usually
     *  better than letting the run wedge; record-only is for tests. */
    bool haltOnTrip = true;

    /** Watchdog sampling interval. */
    Cycles watchdogInterval = 20000;
    /** A single transaction older than this trips the watchdog. */
    Cycles maxTransactionAge = 400000;
    /** Trip when transactions are outstanding and events keep firing
     *  but nothing has retired for this many cycles (NACK livelock). */
    Cycles noProgressWindow = 200000;

    /** Entries kept in each node's message/handler trace ring. */
    std::uint32_t traceDepth = 64;

    FaultParams fault;

    /** True when any component needs a Sentinel constructed. */
    bool
    any() const
    {
        return oracle || watchdog || fault.enabled;
    }
};

} // namespace flashsim::verify

#endif // FLASHSIM_VERIFY_PARAMS_HH_
