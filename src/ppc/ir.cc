#include "ppc/ir.hh"

#include "sim/logging.hh"

namespace flashsim::ppc
{

ppisa::Instr
IrInstr::toInstr(std::int64_t resolved_target) const
{
    ppisa::Instr in;
    in.op = op;
    in.rd = rd;
    in.rs = rs;
    in.rt = rt;
    in.imm = label >= 0 ? resolved_target : imm;
    in.lo = lo;
    in.width = width;
    return in;
}

Reg
IrFunction::reg()
{
    if (nextReg_ >= kScratchBase)
        panic("IrFunction '%s': out of registers", name_.c_str());
    return Reg{nextReg_++};
}

Label
IrFunction::label()
{
    labelPos_.push_back(-1);
    return Label{static_cast<int>(labelPos_.size()) - 1};
}

void
IrFunction::bind(Label l)
{
    if (l.id < 0 || l.id >= static_cast<int>(labelPos_.size()))
        panic("IrFunction '%s': bad label", name_.c_str());
    if (labelPos_[l.id] != -1)
        panic("IrFunction '%s': label %d bound twice", name_.c_str(), l.id);
    labelPos_[l.id] = static_cast<int>(instrs_.size());
}

void
IrFunction::rrr(Op op, Reg d, Reg a, Reg b)
{
    IrInstr in;
    in.op = op;
    in.rd = d.id;
    in.rs = a.id;
    in.rt = b.id;
    instrs_.push_back(in);
}

void
IrFunction::rri(Op op, Reg d, Reg a, std::int64_t imm)
{
    IrInstr in;
    in.op = op;
    in.rd = d.id;
    in.rs = a.id;
    in.imm = imm;
    instrs_.push_back(in);
}

void
IrFunction::ld(Reg d, Reg base, std::int64_t off)
{
    IrInstr in;
    in.op = Op::Ld;
    in.rd = d.id;
    in.rs = base.id;
    in.imm = off;
    instrs_.push_back(in);
}

void
IrFunction::sd(Reg base, std::int64_t off, Reg val)
{
    IrInstr in;
    in.op = Op::Sd;
    in.rs = base.id;
    in.rt = val.id;
    in.imm = off;
    instrs_.push_back(in);
}

void
IrFunction::beq(Reg a, Reg b, Label l)
{
    IrInstr in;
    in.op = Op::Beq;
    in.rs = a.id;
    in.rt = b.id;
    in.label = l.id;
    instrs_.push_back(in);
}

void
IrFunction::bne(Reg a, Reg b, Label l)
{
    IrInstr in;
    in.op = Op::Bne;
    in.rs = a.id;
    in.rt = b.id;
    in.label = l.id;
    instrs_.push_back(in);
}

void
IrFunction::j(Label l)
{
    IrInstr in;
    in.op = Op::J;
    in.label = l.id;
    instrs_.push_back(in);
}

void
IrFunction::halt()
{
    IrInstr in;
    in.op = Op::Halt;
    instrs_.push_back(in);
}

void
IrFunction::bbs(Reg a, unsigned bit, Label l)
{
    IrInstr in;
    in.op = Op::Bbs;
    in.rs = a.id;
    in.lo = static_cast<std::uint8_t>(bit);
    in.label = l.id;
    instrs_.push_back(in);
}

void
IrFunction::bbc(Reg a, unsigned bit, Label l)
{
    IrInstr in;
    in.op = Op::Bbc;
    in.rs = a.id;
    in.lo = static_cast<std::uint8_t>(bit);
    in.label = l.id;
    instrs_.push_back(in);
}

void
IrFunction::ext(Reg d, Reg a, unsigned lo, unsigned width)
{
    IrInstr in;
    in.op = Op::Ext;
    in.rd = d.id;
    in.rs = a.id;
    in.lo = static_cast<std::uint8_t>(lo);
    in.width = static_cast<std::uint8_t>(width);
    instrs_.push_back(in);
}

void
IrFunction::ins(Reg d, Reg a, unsigned lo, unsigned width)
{
    IrInstr in;
    in.op = Op::Ins;
    in.rd = d.id;
    in.rs = a.id;
    in.lo = static_cast<std::uint8_t>(lo);
    in.width = static_cast<std::uint8_t>(width);
    instrs_.push_back(in);
}

void
IrFunction::orfi(Reg d, Reg a, unsigned lo, unsigned width)
{
    IrInstr in;
    in.op = Op::Orfi;
    in.rd = d.id;
    in.rs = a.id;
    in.lo = static_cast<std::uint8_t>(lo);
    in.width = static_cast<std::uint8_t>(width);
    instrs_.push_back(in);
}

void
IrFunction::andfi(Reg d, Reg a, unsigned lo, unsigned width)
{
    IrInstr in;
    in.op = Op::Andfi;
    in.rd = d.id;
    in.rs = a.id;
    in.lo = static_cast<std::uint8_t>(lo);
    in.width = static_cast<std::uint8_t>(width);
    instrs_.push_back(in);
}

void
IrFunction::send(int msg_type, Reg dest, Reg arg)
{
    IrInstr in;
    in.op = Op::Send;
    in.rs = dest.id;
    in.rt = arg.id;
    in.imm = msg_type;
    instrs_.push_back(in);
}

void
IrFunction::validate() const
{
    for (std::size_t i = 0; i < labelPos_.size(); ++i)
        if (labelPos_[i] == -1)
            panic("IrFunction '%s': label %zu never bound", name_.c_str(),
                  i);
    for (const auto &in : instrs_) {
        if (in.label >= static_cast<int>(labelPos_.size()))
            panic("IrFunction '%s': dangling label reference",
                  name_.c_str());
    }
    if (instrs_.empty() || instrs_.back().op != Op::Halt)
        panic("IrFunction '%s': must end with halt", name_.c_str());
}

} // namespace flashsim::ppc
