/**
 * @file
 * Reproduces the Section 4.5 scaling experiments: 64-processor runs
 * with the same (now relatively small) problem sizes, which drives up
 * the communication-to-computation ratio and the remote miss fraction,
 * widening the FLASH/ideal gap (paper: FFT 17%, Ocean 12%, LU 0.7%);
 * scaling FFT's data set proportionally brings it back down (12%).
 */

#include <cstdio>

#include "apps/fft.hh"
#include "apps/lu.hh"
#include "apps/ocean.hh"
#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

Pair
runBoth(apps::Workload &wf, apps::Workload &wi, int procs)
{
    Pair p;
    p.flash.machine =
        apps::runWorkload(MachineConfig::flash(procs), wf);
    p.flash.summary = machine::summarize(*p.flash.machine);
    p.ideal.machine =
        apps::runWorkload(MachineConfig::ideal(procs), wi);
    p.ideal.summary = machine::summarize(*p.ideal.machine);
    return p;
}

} // namespace

int
main()
{
    std::printf("Section 4.5: scaling to 64 processors "
                "(same problem sizes as the 16-processor runs)\n\n");
    std::printf("%-26s %10s %10s %10s\n", "configuration", "16p slow%",
                "64p slow%", "paper 64p");

    // FFT.
    {
        apps::FftParams p; // default size at both machine scales
        apps::Fft f16a(p), f16b(p), f64a(p), f64b(p);
        Pair p16 = runBoth(f16a, f16b, 16);
        Pair p64 = runBoth(f64a, f64b, 64);
        std::printf("%-26s %9.1f%% %9.1f%% %9.1f%%\n", "fft",
                    p16.slowdownPct(), p64.slowdownPct(), 17.0);

        // FFT with the data set scaled proportionally (4x points).
        apps::FftParams big = p;
        big.logN += 2;
        apps::Fft fb1(big), fb2(big);
        Pair pb = runBoth(fb1, fb2, 64);
        std::printf("%-26s %10s %9.1f%% %9.1f%%\n", "fft (scaled data)",
                    "-", pb.slowdownPct(), 12.0);
    }

    // Ocean.
    {
        apps::OceanParams p;
        apps::Ocean o1(p), o2(p), o3(p), o4(p);
        Pair p16 = runBoth(o1, o2, 16);
        Pair p64 = runBoth(o3, o4, 64);
        std::printf("%-26s %9.1f%% %9.1f%% %9.1f%%\n", "ocean",
                    p16.slowdownPct(), p64.slowdownPct(), 12.0);
    }

    // LU.
    {
        apps::LuParams p;
        apps::Lu l1(p), l2(p), l3(p), l4(p);
        Pair p16 = runBoth(l1, l2, 16);
        Pair p64 = runBoth(l3, l4, 64);
        std::printf("%-26s %9.1f%% %9.1f%% %9.1f%%\n", "lu",
                    p16.slowdownPct(), p64.slowdownPct(), 0.7);
    }

    std::printf("\n(key shape: shrinking per-processor work raises the "
                "remote miss rate and widens the gap, except for LU "
                "whose communication stays negligible)\n");
    return 0;
}
