#include "apps/barnes.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace flashsim::apps
{

namespace
{
constexpr Addr kBodyBytes = 64; ///< particle record (pos/vel/acc/mass)
constexpr int kMaxDepth = 24;
} // namespace

void
Barnes::setup(machine::Machine &m)
{
    nprocs_ = m.numProcs();
    perProc_ = p_.particles / nprocs_;
    if (perProc_ == 0)
        fatal("Barnes: fewer particles than processors");

    rng_ = Rng(p_.seed);
    px_.resize(static_cast<std::size_t>(p_.particles));
    py_.resize(px_.size());
    pz_.resize(px_.size());
    for (std::size_t i = 0; i < px_.size(); ++i) {
        px_[i] = rng_.uniform();
        py_[i] = rng_.uniform();
        pz_[i] = rng_.uniform();
    }
    // Partition bodies across processors by spatial (Morton) order, as
    // the real Barnes-Hut does: a processor's bodies then share most of
    // their tree walks, which is what keeps the miss rate low.
    std::vector<std::size_t> order(px_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    auto morton = [this](std::size_t i) {
        std::uint32_t key = 0;
        auto qx = static_cast<std::uint32_t>(px_[i] * 1024);
        auto qy = static_cast<std::uint32_t>(py_[i] * 1024);
        auto qz = static_cast<std::uint32_t>(pz_[i] * 1024);
        for (int b = 9; b >= 0; --b) {
            key = (key << 3) | (((qx >> b) & 1) << 2) |
                  (((qy >> b) & 1) << 1) | ((qz >> b) & 1);
        }
        return key;
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return morton(a) < morton(b);
              });
    std::vector<double> nx(px_.size()), ny(px_.size()), nz(px_.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        nx[i] = px_[order[i]];
        ny[i] = py_[order[i]];
        nz[i] = pz_[order[i]];
    }
    px_ = nx;
    py_ = ny;
    pz_ = nz;

    // Particle records, blocked per owning processor.
    for (int p = 0; p < nprocs_; ++p) {
        Addr base = m.alloc(static_cast<Addr>(perProc_) * kBodyBytes,
                            static_cast<NodeId>(p));
        for (int i = 0; i < perProc_; ++i)
            bodyAddr_.push_back(base + static_cast<Addr>(i) * kBodyBytes);
    }

    // Cell records: one line each, from a page-interleaved shared heap
    // (page-granular striping keeps each node's directory headers
    // contiguous; striping individual lines would give the headers a
    // pathological one-per-MDC-line stride, see Section 5.2).
    int max_cells = 4 * p_.particles + 64;
    Addr heap =
        m.allocAuto(static_cast<Addr>(max_cells) * kLineSize);
    for (int i = 0; i < max_cells; ++i)
        cellPool_.push_back(heap + static_cast<Addr>(i) * kLineSize);

    bar_ = m.makeBarrier();
    buildTree();
}

int
Barnes::insert(int cell, int body, double x, double y, double z,
               double size, int depth)
{
    // NOTE: cells_ may reallocate during recursion; never hold a Cell
    // reference across a mutation.
    if (depth > kMaxDepth) {
        // Coincident particles: fold into this leaf's mass.
        cells_[static_cast<std::size_t>(cell)].mass += 1.0;
        return cell;
    }
    double bx = px_[static_cast<std::size_t>(body)];
    double by = py_[static_cast<std::size_t>(body)];
    double bz = pz_[static_cast<std::size_t>(body)];

    if (cells_[static_cast<std::size_t>(cell)].body >= 0) {
        // Leaf already holds a particle: split it.
        int old = cells_[static_cast<std::size_t>(cell)].body;
        cells_[static_cast<std::size_t>(cell)].body = -1;
        insert(cell, old, x, y, z, size, depth);
        // fall through to insert the new body below
    }
    int oct = (bx >= x ? 1 : 0) | (by >= y ? 2 : 0) | (bz >= z ? 4 : 0);
    int child = cells_[static_cast<std::size_t>(cell)]
                    .child[static_cast<std::size_t>(oct)];
    double half = size / 2.0;
    double nx = x + (oct & 1 ? half / 2 : -half / 2);
    double ny = y + (oct & 2 ? half / 2 : -half / 2);
    double nz = z + (oct & 4 ? half / 2 : -half / 2);
    if (child < 0) {
        if (cells_.size() >= cellPool_.size())
            fatal("Barnes: cell pool exhausted");
        Cell leaf;
        leaf.body = body;
        leaf.size = half;
        leaf.cx = bx;
        leaf.cy = by;
        leaf.cz = bz;
        leaf.child.fill(-1);
        leaf.addr = cellPool_[cells_.size()];
        cells_.push_back(leaf);
        cells_[static_cast<std::size_t>(cell)]
            .child[static_cast<std::size_t>(oct)] =
            static_cast<int>(cells_.size()) - 1;
        return cell;
    }
    // Descend (the child may itself be a leaf that will split).
    insert(child, body, nx, ny, nz, half, depth + 1);
    return cell;
}

void
Barnes::summarize(int cell)
{
    Cell &c = cells_[static_cast<std::size_t>(cell)];
    if (c.body >= 0) {
        c.mass = 1.0;
        c.cx = px_[static_cast<std::size_t>(c.body)];
        c.cy = py_[static_cast<std::size_t>(c.body)];
        c.cz = pz_[static_cast<std::size_t>(c.body)];
        return;
    }
    double m = 0, sx = 0, sy = 0, sz = 0;
    for (int ch : c.child) {
        if (ch < 0)
            continue;
        summarize(ch);
        const Cell &cc = cells_[static_cast<std::size_t>(ch)];
        m += cc.mass;
        sx += cc.cx * cc.mass;
        sy += cc.cy * cc.mass;
        sz += cc.cz * cc.mass;
    }
    c.mass = m > 0 ? m : 1.0;
    c.cx = m > 0 ? sx / m : c.cx;
    c.cy = m > 0 ? sy / m : c.cy;
    c.cz = m > 0 ? sz / m : c.cz;
}

void
Barnes::buildTree()
{
    cells_.clear();
    Cell root;
    root.size = 1.0;
    root.cx = root.cy = root.cz = 0.5;
    root.child.fill(-1);
    root.addr = cellPool_[0];
    cells_.push_back(root);
    for (int b = 0; b < p_.particles; ++b)
        insert(0, b, 0.5, 0.5, 0.5, 1.0, 0);
    summarize(0);
}

void
Barnes::walk(int cell, int body, std::vector<int> &out) const
{
    const Cell &c = cells_[static_cast<std::size_t>(cell)];
    if (c.body == body)
        return;
    out.push_back(cell);
    if (c.body >= 0)
        return;
    double dx = c.cx - px_[static_cast<std::size_t>(body)];
    double dy = c.cy - py_[static_cast<std::size_t>(body)];
    double dz = c.cz - pz_[static_cast<std::size_t>(body)];
    double dist = std::sqrt(dx * dx + dy * dy + dz * dz) + 1e-9;
    if (c.size / dist < p_.theta)
        return; // far enough: use this cell's center of mass
    for (int ch : c.child)
        if (ch >= 0)
            walk(ch, body, out);
}

tango::Task
Barnes::run(tango::Env &env)
{
    co_await env.busy(0);
    const int me = env.id();

    for (int step = 0; step < p_.steps; ++step) {
        // Tree build. The host-side construction is done once (by the
        // rotating coordinator); the cell records are then written in
        // parallel, every processor loading its slice of the shared
        // tree. A cell is usually homed on a different node than the
        // processor that wrote it, so the first force-phase read of
        // each cell is a three-hop dirty miss (Table 4.1: 52.6% remote
        // dirty remote for Barnes).
        if (me == step % nprocs_ && step > 0)
            buildTree();
        co_await env.barrier(bar_);
        {
            std::size_t n = cells_.size();
            std::size_t lo = n * static_cast<std::size_t>(me) /
                             static_cast<std::size_t>(nprocs_);
            std::size_t hi = n * (static_cast<std::size_t>(me) + 1) /
                             static_cast<std::size_t>(nprocs_);
            for (std::size_t ci = lo; ci < hi; ++ci) {
                co_await env.write(cells_[ci].addr);
                co_await env.busy(40);
            }
        }
        co_await env.barrier(bar_);

        // Force computation over my particle block.
        std::vector<int> touched;
        for (int i = 0; i < perProc_; ++i) {
            int body = me * perProc_ + i;
            touched.clear();
            walk(0, body, touched);
            for (int cell : touched) {
                co_await env.read(
                    cells_[static_cast<std::size_t>(cell)].addr);
                co_await env.busy(p_.instrsPerInteraction);
            }
            co_await env.read(bodyAddr_[static_cast<std::size_t>(body)]);
            co_await env.write(
                bodyAddr_[static_cast<std::size_t>(body)]);
            co_await env.busy(40);
        }
        co_await env.barrier(bar_);

        // Position update for my particles (host drift + local record
        // writes).
        Rng drift(p_.seed + static_cast<std::uint64_t>(step) * 1009 +
                  static_cast<std::uint64_t>(me));
        for (int i = 0; i < perProc_; ++i) {
            int body = me * perProc_ + i;
            auto bump = [&](double v) {
                double nv = v + (drift.uniform() - 0.5) * 0.02;
                return nv < 0 ? 0.0 : (nv >= 1 ? 0.999999 : nv);
            };
            px_[static_cast<std::size_t>(body)] =
                bump(px_[static_cast<std::size_t>(body)]);
            py_[static_cast<std::size_t>(body)] =
                bump(py_[static_cast<std::size_t>(body)]);
            pz_[static_cast<std::size_t>(body)] =
                bump(pz_[static_cast<std::size_t>(body)]);
            co_await env.read(bodyAddr_[static_cast<std::size_t>(body)]);
            co_await env.write(
                bodyAddr_[static_cast<std::size_t>(body)]);
            co_await env.busy(30);
        }
        co_await env.barrier(bar_);
    }
}

} // namespace flashsim::apps
