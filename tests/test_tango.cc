/**
 * @file
 * Unit tests for the Tango coroutine runtime: task composition,
 * awaitable behavior, sync-time attribution, and the combining-tree
 * barrier's group structure.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "tango/task.hh"

namespace flashsim::tango
{
namespace
{

using machine::Machine;
using machine::MachineConfig;

Task
leaf(int *counter)
{
    *counter += 1;
    co_return;
}

Task
parent(int *counter)
{
    co_await leaf(counter);
    co_await leaf(counter);
    *counter += 10;
}

TEST(Task, LazyStartAndCompletion)
{
    int counter = 0;
    Task t = leaf(&counter);
    EXPECT_EQ(counter, 0); // lazy: nothing ran yet
    t.start();
    EXPECT_EQ(counter, 1);
    EXPECT_TRUE(t.done());
}

TEST(Task, CompositionRunsChildrenInOrder)
{
    int counter = 0;
    Task t = parent(&counter);
    t.start();
    EXPECT_EQ(counter, 12);
    EXPECT_TRUE(t.done());
}

TEST(Task, MoveSemantics)
{
    int counter = 0;
    Task a = leaf(&counter);
    Task b = std::move(a);
    b.start();
    EXPECT_EQ(counter, 1);
    EXPECT_TRUE(a.done()); // moved-from task reads as done
}

TEST(Task, DefaultConstructedIsDone)
{
    Task t;
    EXPECT_TRUE(t.done());
}

TEST(TangoEnv, BusyAdvancesCursorByIssueWidth)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    m.run([](tango::Env &env) -> tango::Task {
        co_await env.busy(400); // 400 instrs = 100 cycles at 4/cycle
    });
    EXPECT_EQ(m.node(0).proc().breakdown().busy, 100u);
    EXPECT_EQ(m.node(0).proc().finishTime(), 100u);
}

TEST(TangoEnv, SubCycleInstructionsCarry)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    m.run([](tango::Env &env) -> tango::Task {
        for (int i = 0; i < 8; ++i)
            co_await env.busy(1); // 8 instrs = 2 cycles total
    });
    EXPECT_EQ(m.node(0).proc().breakdown().busy, 2u);
}

TEST(TangoEnv, SyncRegionAttributesTime)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    m.run([](tango::Env &env) -> tango::Task {
        co_await env.busy(400);
        {
            SyncRegion region(env);
            co_await env.busy(400);
        }
        co_await env.busy(400);
    });
    const auto &bd = m.node(0).proc().breakdown();
    EXPECT_EQ(bd.busy, 200u);
    EXPECT_EQ(bd.sync, 100u);
}

TEST(TangoEnv, LockCountsAcquisitions)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    auto lock = std::make_shared<LockVar>(m.makeLock(0));
    m.run([lock](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int i = 0; i < 3; ++i) {
            co_await env.lockAcquire(*lock);
            co_await env.busy(40);
            co_await env.lockRelease(*lock);
        }
    });
    EXPECT_EQ(lock->acquisitions, 12u);
    EXPECT_FALSE(lock->held);
}

TEST(Barrier, GroupStructureMatchesArity)
{
    MachineConfig cfg = MachineConfig::flash(16);
    Machine m(cfg);
    BarrierVar b = m.makeBarrier();
    ASSERT_EQ(b.groups.size(), 2u); // 16 procs / arity 8
    EXPECT_EQ(b.groups[0].size, 8);
    EXPECT_EQ(b.groups[1].size, 8);
    EXPECT_EQ(b.parties, 16);
}

TEST(Barrier, UnevenGroupSizes)
{
    MachineConfig cfg = MachineConfig::flash(12);
    Machine m(cfg);
    BarrierVar b = m.makeBarrier();
    ASSERT_EQ(b.groups.size(), 2u);
    EXPECT_EQ(b.groups[0].size, 8);
    EXPECT_EQ(b.groups[1].size, 4);
}

TEST(Barrier, SingleGroupForSmallMachines)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    BarrierVar b = m.makeBarrier();
    ASSERT_EQ(b.groups.size(), 1u);
    EXPECT_EQ(b.groups[0].size, 4);
}

TEST(Barrier, SixtyFourProcessorsSynchronize)
{
    MachineConfig cfg = MachineConfig::flash(64);
    Machine m(cfg);
    auto bar = std::make_shared<BarrierVar>(m.makeBarrier());
    auto before_max = std::make_shared<Tick>(0);
    auto ok = std::make_shared<bool>(true);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        co_await env.busy(
            100 * static_cast<std::uint64_t>(env.id() + 1));
        *before_max = std::max(*before_max, env.proc().cursor());
        co_await env.barrier(*bar);
        if (env.proc().cursor() < *before_max)
            *ok = false;
    });
    EXPECT_TRUE(*ok);
    EXPECT_EQ(bar->gen, 1);
}

TEST(Barrier, ManyEpisodesStayConsistent)
{
    MachineConfig cfg = MachineConfig::flash(8);
    Machine m(cfg);
    auto bar = std::make_shared<BarrierVar>(m.makeBarrier());
    auto phase = std::make_shared<int>(0);
    auto ok = std::make_shared<bool>(true);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int round = 0; round < 20; ++round) {
            if (env.id() == round % 8)
                *phase = round;
            co_await env.barrier(*bar);
            if (*phase != round)
                *ok = false;
            co_await env.barrier(*bar);
        }
    });
    EXPECT_TRUE(*ok);
    EXPECT_EQ(bar->gen, 40);
}

} // namespace
} // namespace flashsim::tango
