/**
 * @file
 * Conservative time-window PDES support.
 *
 * A sharded run partitions the machine's nodes into contiguous shards,
 * gives each shard its own EventQueue, and advances all shards in
 * barrier-synchronized windows [T, T+W) where W is the minimum
 * inter-node mesh transit time: nodes interact only through the
 * network, so a message sent inside a window cannot arrive before the
 * next one (classic conservative lookahead).
 *
 * Two pieces live here:
 *
 *  - the node->shard partition and shard-count resolution helpers;
 *
 *  - SyncArbiter, which keeps sharded runs bit-identical to the
 *    single-threaded path in the one place windows alone cannot:
 *    host-side synchronization state (tango lock/barrier variables).
 *    Every shared host access in the tango primitives passes through a
 *    syncPoint() that defers the coroutine into a canonical per-tick
 *    *sync phase*, executed in (tick, node, per-node sequence) order.
 *    In a sharded run the shards rendezvous on that tick — the lowest
 *    parked shard becomes the executor and runs every parked shard's
 *    operations single-threaded in the same canonical order — so lock
 *    winners and barrier arrival order cannot depend on thread timing.
 */

#ifndef FLASHSIM_SIM_SHARD_HH_
#define FLASHSIM_SIM_SHARD_HH_

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace flashsim
{

/** Hard cap on shards per run (participant sets use fixed storage). */
constexpr int kMaxShards = 64;

/**
 * Resolve a requested shard count against the machine: clamped to
 * [1, min(num_nodes, kMaxShards)]. 0 means "one shard" (the
 * single-threaded default). Deliberately not clamped to the host's
 * core count — results are identical either way, and tests force
 * multi-shard runs on any host; user-facing knobs (the CLI's --shards)
 * apply the core-count clamp before building the config.
 */
int resolveShards(int requested, int num_nodes);

/** Contiguous node partition: shard of node @p n (blocks of nearly
 *  equal size, so mesh-adjacent nodes tend to share a shard). */
inline int
shardOfNode(int n, int num_nodes, int shards)
{
    return static_cast<int>(static_cast<std::int64_t>(n) * shards /
                            num_nodes);
}

/**
 * The cross-shard synchronization arbiter (see file comment).
 *
 * Per-shard clocks are monotone: clock(s) = t published with release
 * order means shard s has fully completed every tick < t. A shard with
 * a pending sync operation at tick u registers in the rendezvous table
 * and parks (publishing clock u+1, its own tick-u event stage being
 * complete), then waits until every shard's clock exceeds u; the
 * lowest-numbered shard registered at u then executes all registered
 * shards' tick-u operations in canonical order, draining any tick-u
 * events they schedule, and releases the others. At most one sync
 * phase is ever live machine-wide (the executor's own clock stays at
 * u+1 until it finishes, blocking any later rendezvous), so the
 * executor may safely resume coroutines owned by parked shards.
 *
 * The rendezvous bookkeeping (registration table + phase watermark) is
 * mutex-guarded: registration happens *before* the clock publish, so
 * once every clock has passed u the set of shards registered at u is
 * complete and frozen, and every scanner computes the same set — one
 * unique executor. A participant that only gets around to scanning
 * after a fast executor already finished sees the watermark past u and
 * falls straight through to the release wait (its release counter was
 * already bumped); the acquire there is what orders the executor's
 * phase work before everything the participant does next. Phase ticks
 * strictly increase machine-wide (a completed phase consumes every
 * tick-u sync op and tick-u event on its participants, and
 * non-participants are already past u), which is what makes the single
 * watermark sufficient.
 */
class SyncArbiter
{
  public:
    SyncArbiter() = default;
    SyncArbiter(const SyncArbiter &) = delete;
    SyncArbiter &operator=(const SyncArbiter &) = delete;

    /** (Re)initialize for a run over @p eqs (one queue per shard),
     *  with @p num_nodes nodes machine-wide. */
    void init(std::vector<EventQueue *> eqs, int num_nodes);

    /** Defer a coroutine into the sync phase at @p tick (>= the
     *  shard's current tick). Called on the owning shard's thread, or
     *  by the executor during a phase (the owner is then parked). */
    void park(int shard, Tick tick, NodeId node,
              std::coroutine_handle<> h);

    /** True while the sync phase at exactly @p tick is executing on
     *  this thread — the continuation may then run inline (the same
     *  deterministic rule in sharded and single-threaded runs). */
    bool
    inlineOk(Tick tick) const
    {
        return execTick_.load(std::memory_order_relaxed) == tick;
    }

    /** Earliest pending sync-op tick on @p shard, or
     *  EventQueue::kNever. Owner thread (or coordinator at a window
     *  barrier) only. */
    Tick minPending(int shard) const;

    /** Publish that every tick < @p t is complete on @p shard. */
    void publishClock(int shard, Tick t);

    /** Run the sync phase for tick @p u from @p shard (which has a
     *  pending operation at @p u and has completed its tick-u events).
     *  Blocks until the phase completes machine-wide. */
    void syncPhase(int shard, Tick u);

  private:
    struct SyncOp
    {
        Tick tick;
        NodeId node;
        std::uint64_t seq;
        std::coroutine_handle<> h;
    };

    struct alignas(64) PerShard
    {
        std::atomic<Tick> clock{0};
        std::atomic<std::uint64_t> release{0};
        EventQueue *eq = nullptr;
        std::vector<SyncOp> ops;
    };

    void runPhase(Tick u, const int *parts, int nparts);

    std::vector<std::unique_ptr<PerShard>> per_;
    /** Rendezvous bookkeeping (see file comment). Guarded by mu_. */
    std::mutex mu_;
    /** parked_[s]: tick shard s is registered at, or kNever. */
    std::vector<Tick> parked_;
    /** All phases at ticks < phaseDone_ have completed. */
    Tick phaseDone_ = 0;
    /** Per-node monotonic sequence numbers for canonical op order
     *  (each node is written only by its owning shard / the executor
     *  while that shard is parked). */
    std::vector<std::uint64_t> nodeSeq_;
    std::atomic<Tick> execTick_{EventQueue::kNever};
    int shards_ = 0;
};

} // namespace flashsim

#endif // FLASHSIM_SIM_SHARD_HH_
