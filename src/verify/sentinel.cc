#include "verify/sentinel.hh"

#include <algorithm>
#include <iostream>

#include "sim/logging.hh"

namespace flashsim::verify
{

Sentinel::Sentinel(EventQueue &eq, const VerifyParams &params,
                   int num_nodes)
    : eq_(eq), params_(params), numNodes_(num_nodes),
      injector_(params.fault, num_nodes),
      buffers_(static_cast<std::size_t>(num_nodes))
{
    rings_.reserve(static_cast<std::size_t>(num_nodes));
    for (int i = 0; i < num_nodes; ++i)
        rings_.emplace_back(params_.traceDepth);

    if (params_.watchdog) {
        watchdog_ = std::make_unique<Watchdog>(eq_, params_);
        watchdog_->onTrip = [this](const std::string &r) { onTrip(r); };
    }

    postMortemToken_ = registerPostMortem(
        [this](std::ostream &os) { writePostMortem(os, "fatal"); });
}

Sentinel::~Sentinel()
{
    if (postMortemToken_ >= 0)
        unregisterPostMortem(postMortemToken_);
}

void
Sentinel::wireOracle(CoherenceOracle::Wiring wiring)
{
    if (!params_.oracle)
        return;
    oracle_ = std::make_unique<CoherenceOracle>(
        std::move(wiring), injector_.perturbsHints());
    oracle_->onViolation = [this](const Violation &v) { onViolation(v); };
}

void
Sentinel::applyHandler(NodeId node, bool at_home, Tick now,
                       const protocol::Message &msg,
                       const protocol::HandlerResult &res, bool deferred)
{
    TraceEntry e;
    e.tick = now;
    e.kind = TraceEntry::Kind::Handler;
    e.type = msg.type;
    e.handler = res.id;
    e.src = msg.src;
    e.requester = msg.requester;
    e.addr = msg.addr;
    e.aux = msg.aux;
    rings_[node].record(e);

    if (!oracle_)
        return;
    if (deferred)
        oracle_->onHandlerDeferred(node, at_home, now, msg, res);
    else
        oracle_->onHandler(node, at_home, now, msg, res);
}

void
Sentinel::observeHandler(NodeId node, bool at_home, Tick now,
                         const protocol::Message &msg,
                         const protocol::HandlerResult &res)
{
    if (windowed_) {
        Deferred d;
        d.k = Deferred::K::Handler;
        d.atHome = at_home;
        d.tick = now;
        d.msg = msg;
        d.res = res;
        buffers_[node].d.push_back(std::move(d));
        return;
    }
    applyHandler(node, at_home, now, msg, res, /*deferred=*/false);
}

void
Sentinel::recordInjected(NodeId node, Tick now, const protocol::Message &msg,
                         TraceEntry::Kind kind)
{
    if (windowed_) {
        Deferred d;
        d.k = Deferred::K::Injected;
        d.ikind = kind;
        d.tick = now;
        d.msg = msg;
        buffers_[node].d.push_back(std::move(d));
        return;
    }
    TraceEntry e;
    e.tick = now;
    e.kind = kind;
    e.type = msg.type;
    e.src = msg.src;
    e.requester = msg.requester;
    e.addr = msg.addr;
    e.aux = msg.aux;
    rings_[node].record(e);
}

void
Sentinel::txnStart(NodeId node, Addr addr)
{
    if (!watchdog_)
        return;
    if (windowed_) {
        Deferred d;
        d.k = Deferred::K::TxnStart;
        d.tick = nodeEqs_[node]->now();
        d.addr = addr;
        buffers_[node].d.push_back(std::move(d));
        return;
    }
    watchdog_->txnStart(node, addr);
}

void
Sentinel::txnRetire(NodeId node, Addr addr)
{
    if (!watchdog_)
        return;
    if (windowed_) {
        Deferred d;
        d.k = Deferred::K::TxnRetire;
        d.tick = nodeEqs_[node]->now();
        d.addr = addr;
        buffers_[node].d.push_back(std::move(d));
        return;
    }
    watchdog_->txnRetire(node, addr);
}

void
Sentinel::txnRetry(NodeId node, Addr addr)
{
    if (!watchdog_)
        return;
    if (windowed_) {
        Deferred d;
        d.k = Deferred::K::TxnRetry;
        d.tick = nodeEqs_[node]->now();
        d.addr = addr;
        buffers_[node].d.push_back(std::move(d));
        return;
    }
    watchdog_->txnRetry(node, addr);
}

void
Sentinel::flushWindow()
{
    if (!windowed_)
        return;
    // Merge the per-node buffers in canonical (tick, node, arrival)
    // order: the exact order a single-threaded run would have produced
    // these observations, so the trace rings and golden transitions
    // are bit-identical across shard counts. Within one node the
    // buffer is already tick-ordered, so a stable sort on tick with
    // node as tiebreaker is a true merge. The ref list is a member so
    // each window edge reuses the last one's storage.
    std::vector<FlushRef> &order = flushOrder_;
    order.clear();
    for (NodeId n = 0; n < static_cast<NodeId>(numNodes_); ++n) {
        const auto &buf = buffers_[n].d;
        for (std::uint32_t i = 0; i < buf.size(); ++i)
            order.push_back(FlushRef{buf[i].tick, n, i});
    }
    std::sort(order.begin(), order.end(),
              [](const FlushRef &a, const FlushRef &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  if (a.node != b.node)
                      return a.node < b.node;
                  return a.idx < b.idx;
              });

    for (const FlushRef &r : order) {
        Deferred &d = buffers_[r.node].d[r.idx];
        switch (d.k) {
          case Deferred::K::Handler:
            applyHandler(r.node, d.atHome, d.tick, d.msg, d.res,
                         /*deferred=*/true);
            break;
          case Deferred::K::Injected: {
            TraceEntry e;
            e.tick = d.tick;
            e.kind = d.ikind;
            e.type = d.msg.type;
            e.src = d.msg.src;
            e.requester = d.msg.requester;
            e.addr = d.msg.addr;
            e.aux = d.msg.aux;
            rings_[r.node].record(e);
            break;
          }
          case Deferred::K::TxnStart:
            watchdog_->txnStart(r.node, d.addr);
            break;
          case Deferred::K::TxnRetire:
            watchdog_->txnRetire(r.node, d.addr);
            break;
          case Deferred::K::TxnRetry:
            watchdog_->txnRetry(r.node, d.addr);
            break;
        }
    }
    for (auto &buf : buffers_)
        buf.d.clear();

    // The cross-node invariant checks the live path runs per handler:
    // once per touched line, against the quiescent window-edge state.
    if (oracle_)
        oracle_->runDeferredChecks(eq_.now());
}

void
Sentinel::finalCheck()
{
    if (oracle_)
        oracle_->finalCheck(eq_.now());
}

void
Sentinel::onViolation(const Violation &v)
{
    if (params_.haltOnViolation) {
        // fatal() replays the registered post-mortem (trace rings,
        // watchdog status) before aborting.
        fatal("coherence violation [%s] at t=%llu node %u line %#llx: %s",
              v.kind.c_str(), static_cast<unsigned long long>(v.tick),
              v.node, static_cast<unsigned long long>(v.addr),
              v.detail.c_str());
    }
    warn("coherence violation [%s] at t=%llu node %u line %#llx: %s",
         v.kind.c_str(), static_cast<unsigned long long>(v.tick), v.node,
         static_cast<unsigned long long>(v.addr), v.detail.c_str());
    dumpOnce("coherence violation");
}

void
Sentinel::onTrip(const std::string &reason)
{
    if (params_.haltOnTrip)
        fatal("watchdog trip at t=%llu: %s",
              static_cast<unsigned long long>(eq_.now()), reason.c_str());
    warn("watchdog trip at t=%llu: %s",
         static_cast<unsigned long long>(eq_.now()), reason.c_str());
    dumpOnce("watchdog trip");
}

void
Sentinel::dumpOnce(const char *reason)
{
    if (dumped_)
        return;
    dumped_ = true;
    writePostMortem(std::cerr, reason);
    std::cerr.flush();
}

void
Sentinel::writeSummary(std::ostream &os) const
{
    os << "sentinel:";
    if (oracle_)
        os << " oracle(" << oracle_->trackedLines() << " lines, "
           << oracle_->violations() << " violations)";
    if (watchdog_)
        os << " watchdog(" << watchdog_->retired() << " retired, "
           << watchdog_->trips() << " trips)";
    if (injector_.enabled())
        os << " injector(seed " << injector_.params().seed << ": "
           << injector_.nacksInjected() << " nacks, "
           << injector_.hintsDropped() << " hints dropped, "
           << injector_.hintsDuped() << " duped, " << injector_.jitterCycles()
           << " jitter cyc, " << injector_.stallCycles() << " stall cyc)";
    if (injector_.params().wireLossy())
        os << " wire(" << injector_.wireDropsInjected() << " drops, "
           << injector_.wireDupsInjected() << " dups, "
           << injector_.wireReordersInjected() << " reorders)";
    if (injector_.reqDropsInjected() != 0)
        os << " txn(" << injector_.reqDropsInjected()
           << " requests dropped)";
    os << "\n";
}

void
Sentinel::writePostMortem(std::ostream &os, const char *reason) const
{
    os << "=== sentinel post-mortem (" << reason << ") t=" << eq_.now()
       << " ===\n";
    if (watchdog_)
        watchdog_->writeStatus(os);
    if (oracle_) {
        os << "oracle: " << oracle_->violations() << " violation(s), "
           << oracle_->trackedLines() << " line(s) tracked\n";
        for (const Violation &v : oracle_->violationLog())
            os << "  [" << v.kind << "] t=" << v.tick << " node " << v.node
               << " line 0x" << std::hex << v.addr << std::dec << ": "
               << v.detail << "\n";
    }
    if (injector_.enabled())
        os << "injector: seed " << injector_.params().seed << ", "
           << injector_.nacksInjected() << " nack(s) injected, "
           << injector_.hintsDropped() << " hint(s) dropped, "
           << injector_.hintsDuped() << " duplicated, "
           << injector_.jitterCycles() << " jitter cycle(s), "
           << injector_.stallCycles() << " stall cycle(s)\n";
    if (injector_.params().wireLossy() ||
        injector_.reqDropsInjected() != 0)
        os << "injected loss: " << injector_.wireDropsInjected()
           << " wire drop(s), " << injector_.wireDupsInjected()
           << " wire dup(s), " << injector_.wireReordersInjected()
           << " wire reorder(s), " << injector_.reqDropsInjected()
           << " request(s) dropped at home NI\n";
    os << "recent activity (oldest first, ring depth "
       << params_.traceDepth << "):\n";
    for (int n = 0; n < numNodes_; ++n)
        rings_[static_cast<std::size_t>(n)].dump(
            os, static_cast<NodeId>(n));
    os << "=== end post-mortem ===\n";
}

} // namespace flashsim::verify
