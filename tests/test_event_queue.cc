/** @file Unit tests for the deterministic event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace flashsim
{
namespace
{

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    std::vector<Tick> at;
    eq.schedule(10, [&] {
        at.push_back(eq.now());
        eq.schedule(5, [&] { at.push_back(eq.now()); });
    });
    eq.run();
    EXPECT_EQ(at, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, ZeroDelayRunsAtSameTick)
{
    EventQueue eq;
    Tick seen = 999;
    eq.schedule(7, [&] { eq.schedule(0, [&] { seen = eq.now(); }); });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvancesClock)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(100, [&] { ++ran; });
    std::uint64_t n = eq.run(50);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(1, [&] { ++ran; });
    eq.schedule(2, [&] { ++ran; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
    });
    eq.run();
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    eq.run();
    EXPECT_EQ(ran, 0);
}

TEST(EventQueue, FifoPreservedAcrossHeapReordering)
{
    // Scrambled submission times with several same-tick groups: the
    // heap must still run ticks in order and same-tick events FIFO
    // (this pins the std::pop_heap-based pop, which replaced the
    // const_cast move out of priority_queue::top()).
    EventQueue eq;
    std::vector<int> order;
    const Cycles ticks[] = {5, 1, 5, 3, 1, 5, 3, 1};
    for (int i = 0; i < 8; ++i)
        eq.schedule(ticks[i], [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 4, 7, 3, 6, 0, 2, 5}));
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 10000; ++i)
        eq.schedule(static_cast<Cycles>((i * 7919) % 1000), [&] {
            if (eq.now() < last)
                monotonic = false;
            last = eq.now();
        });
    eq.run();
    EXPECT_TRUE(monotonic);
}

TEST(EventQueue, BucketRingWraparound)
{
    // A self-rescheduling chain whose in-window stride does not divide
    // kRingSize walks the ring slots through many wraps without ever
    // touching the overflow heap; each hop must land exactly where
    // scheduled.
    EventQueue eq;
    constexpr Cycles kStride = 700; // < kRingSize, does not divide it
    constexpr int kHops = 40;       // covers > 27 * kRingSize ticks
    std::vector<Tick> at;
    struct Hopper
    {
        EventQueue &eq;
        std::vector<Tick> &at;
        int hopsLeft;
        void
        operator()()
        {
            at.push_back(eq.now());
            if (hopsLeft > 1)
                eq.schedule(kStride, Hopper{eq, at, hopsLeft - 1});
        }
    };
    eq.schedule(kStride, Hopper{eq, at, kHops});
    eq.run();
    ASSERT_EQ(at.size(), static_cast<std::size_t>(kHops));
    for (int i = 0; i < kHops; ++i)
        EXPECT_EQ(at[static_cast<std::size_t>(i)],
                  static_cast<Tick>(kStride) *
                      static_cast<Tick>(i + 1));
    EXPECT_GT(eq.now(), EventQueue::kRingSize * 27);
}

TEST(EventQueue, FarFutureOverflowPromotion)
{
    // An event beyond the ring window parks in the overflow heap and is
    // promoted into its bucket when the clock approaches; it must still
    // run at its exact tick, before any same-tick event scheduled later.
    EventQueue eq;
    std::vector<int> order;
    const Tick far = EventQueue::kRingSize * 3 + 17;
    eq.scheduleAt(far, [&] { order.push_back(0); }); // overflow
    eq.scheduleAt(far - 100, [&] {
        // far is now inside the window; this lands in the bucket.
        eq.scheduleAt(far, [&] { order.push_back(1); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.now(), far);
}

TEST(EventQueue, FifoWithinTickAcrossBucketHeapBoundary)
{
    // Several events land on one tick via both levels: three scheduled
    // while the tick was outside the window (heap), two more scheduled
    // after it entered the window (bucket). Global FIFO is by schedule
    // time, so the heap-promoted three run first, in order.
    EventQueue eq;
    std::vector<int> order;
    const Tick t = EventQueue::kRingSize * 2 + 5;
    for (int i = 0; i < 3; ++i)
        eq.scheduleAt(t, [&order, i] { order.push_back(i); });
    eq.scheduleAt(t - 50, [&] {
        for (int i = 3; i < 5; ++i)
            eq.scheduleAt(t, [&order, i] { order.push_back(i); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, MixedNearFarStressOrdering)
{
    // Random mix straddling the ring/overflow boundary, including
    // events that reschedule across it; (tick, seq) order must hold.
    EventQueue eq;
    std::uint32_t lcg = 42;
    auto rnd = [&] {
        lcg = lcg * 1664525u + 1013904223u;
        return lcg >> 16;
    };
    Tick last = 0;
    std::uint64_t executed = 0;
    bool monotonic = true;
    for (int i = 0; i < 5000; ++i) {
        Cycles d = rnd() % (3 * EventQueue::kRingSize);
        eq.schedule(d, [&] {
            if (eq.now() < last)
                monotonic = false;
            last = eq.now();
            ++executed;
        });
    }
    EXPECT_EQ(eq.run(), 5000u);
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(executed, 5000u);
}

TEST(EventQueue, ResetClearsBothLevels)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(3, [&] { ++ran; });                          // ring
    eq.schedule(EventQueue::kRingSize * 5, [&] { ++ran; }); // overflow
    EXPECT_EQ(eq.pending(), 2u);
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.run(), 0u);
    EXPECT_EQ(ran, 0);
    // The queue must be fully reusable after reset.
    eq.schedule(1, [&] { ++ran; });
    eq.run();
    EXPECT_EQ(ran, 1);
}

/** Instrumented callable for InlineCallback lifetime checks. */
struct LifeProbe
{
    static int live;
    static int invoked;
    int *sink;

    explicit LifeProbe(int *s) : sink(s) { ++live; }
    LifeProbe(const LifeProbe &o) : sink(o.sink) { ++live; }
    LifeProbe(LifeProbe &&o) noexcept : sink(o.sink) { ++live; }
    ~LifeProbe() { --live; }
    void
    operator()()
    {
        ++invoked;
        ++*sink;
    }
};

int LifeProbe::live = 0;
int LifeProbe::invoked = 0;

// ---------------------------------------------------------------------------
// Cancellable / re-armable timers (the transport's RTO machinery).

TEST(EventQueueTimer, FiresAtAbsoluteTick)
{
    EventQueue eq;
    Tick fired = 0;
    EventQueue::TimerId id =
        eq.armTimer(40, [&] { fired = eq.now(); });
    EXPECT_TRUE(id.valid());
    EXPECT_TRUE(eq.timerArmed(id));
    eq.run();
    EXPECT_EQ(fired, 40u);
    EXPECT_FALSE(eq.timerArmed(id));
}

TEST(EventQueueTimer, CancelBeforeFireSuppressesCallback)
{
    EventQueue eq;
    int fired = 0;
    EventQueue::TimerId id = eq.armTimer(40, [&] { ++fired; });
    EXPECT_TRUE(eq.cancelTimer(id));
    EXPECT_FALSE(eq.timerArmed(id));
    eq.run();
    EXPECT_EQ(fired, 0);
    // Stale handle: every operation is a safe no-op.
    EXPECT_FALSE(eq.cancelTimer(id));
    EXPECT_FALSE(eq.rearmTimer(id, 100));
}

TEST(EventQueueTimer, CancelAfterOverflowPromotion)
{
    // Arm far enough out that the fire event lands in the overflow
    // heap (the bucket ring covers kRingSize=1024 ticks), then cancel
    // *after* the event has been promoted into the ring: a canceller
    // scheduled at the same far-future tick, earlier in FIFO order,
    // runs at that tick before the promoted fire would.
    EventQueue eq;
    int fired = 0;
    EventQueue::TimerId id;
    eq.scheduleAt(5000, [&] { EXPECT_TRUE(eq.cancelTimer(id)); });
    id = eq.armTimer(5000, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(eq.now(), 5000u);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTimer, RearmMovesPendingFire)
{
    EventQueue eq;
    std::vector<Tick> fires;
    EventQueue::TimerId id =
        eq.armTimer(10, [&] { fires.push_back(eq.now()); });
    EXPECT_TRUE(eq.rearmTimer(id, 50)); // supersedes the tick-10 fire
    eq.run();
    EXPECT_EQ(fires, (std::vector<Tick>{50}));
}

TEST(EventQueueTimer, RearmFromWithinCallbackSameTickAndLater)
{
    // The RTO pattern: the fire handler re-arms its own timer. Also
    // covers re-arming at the current tick (fires again same tick).
    EventQueue eq;
    std::vector<Tick> fires;
    EventQueue::TimerId id;
    id = eq.armTimer(10, [&] {
        fires.push_back(eq.now());
        if (fires.size() == 1) {
            EXPECT_TRUE(eq.rearmTimer(id, eq.now())); // same tick
        } else if (fires.size() == 2) {
            EXPECT_TRUE(eq.rearmTimer(id, 30));
        }
    });
    eq.run();
    EXPECT_EQ(fires, (std::vector<Tick>{10, 10, 30}));
}

TEST(EventQueueTimer, RearmAfterFireReusesStoredCallback)
{
    EventQueue eq;
    int fired = 0;
    EventQueue::TimerId id = eq.armTimer(10, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    // The slot keeps its callback after firing: re-arm without
    // re-supplying it.
    EXPECT_TRUE(eq.rearmTimer(id, 25));
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTimer, CancelRecyclesSlotWithoutCrossTalk)
{
    EventQueue eq;
    int a = 0, b = 0;
    EventQueue::TimerId first = eq.armTimer(10, [&] { ++a; });
    eq.cancelTimer(first);
    // The recycled slot must answer only to the new handle.
    EventQueue::TimerId second = eq.armTimer(20, [&] { ++b; });
    EXPECT_EQ(first.slot, second.slot);
    EXPECT_FALSE(eq.timerArmed(first));
    EXPECT_TRUE(eq.timerArmed(second));
    EXPECT_FALSE(eq.rearmTimer(first, 30));
    eq.run();
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
}

TEST(EventQueueTimer, ResetClearsTimers)
{
    EventQueue eq;
    int fired = 0;
    EventQueue::TimerId id = eq.armTimer(10, [&] { ++fired; });
    eq.reset();
    EXPECT_FALSE(eq.timerArmed(id));
    eq.run();
    EXPECT_EQ(fired, 0);
}

// ---------------------------------------------------------------------------
// The O(1) horizon query backing the sharded coordinator's adaptive
// windows (nextTick() runs once per shard per window edge).

TEST(EventQueueHorizon, EmptyQueueReportsNever)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextTick(), EventQueue::kNever);
}

TEST(EventQueueHorizon, TracksEarliestEventAndArmedTimers)
{
    EventQueue eq;
    eq.scheduleAt(100, [] {});
    EXPECT_EQ(eq.nextTick(), 100u);
    // An earlier schedule lowers the cached horizon in place...
    eq.scheduleAt(60, [] {});
    EXPECT_EQ(eq.nextTick(), 60u);
    // ...a later one (overflow-heap range) leaves it alone...
    eq.scheduleAt(EventQueue::kRingSize * 4, [] {});
    EXPECT_EQ(eq.nextTick(), 60u);
    // ...and armed timers bound it like any other event, which is what
    // lets the window coordinator skip idle stretches without ever
    // skipping a pending retransmit/retry fire.
    eq.armTimer(30, [] {});
    EXPECT_EQ(eq.nextTick(), 30u);
}

TEST(EventQueueHorizon, DrainTickRecomputesExactHorizon)
{
    EventQueue eq;
    std::vector<Tick> seen;
    eq.scheduleAt(10, [&] {
        seen.push_back(eq.now());
        eq.scheduleAt(12, [&] { seen.push_back(eq.now()); });
    });
    eq.scheduleAt(40, [&] { seen.push_back(eq.now()); });
    EXPECT_EQ(eq.nextTick(), 10u);
    eq.drainTick(10);
    EXPECT_EQ(seen, (std::vector<Tick>{10}));
    EXPECT_EQ(eq.nextTick(), 12u); // scheduled during the drain
    eq.drainTick(12);
    EXPECT_EQ(eq.nextTick(), 40u);
    eq.drainTick(40);
    EXPECT_EQ(eq.nextTick(), EventQueue::kNever);
}

TEST(EventQueueHorizon, CancelledTimerIsConservativeNeverLate)
{
    EventQueue eq;
    int dead = 0, live = 0;
    EventQueue::TimerId id = eq.armTimer(50, [&] { ++dead; });
    eq.scheduleAt(200, [&] { ++live; });
    eq.cancelTimer(id);
    // Lazy cancellation may keep the horizon at the dead fire's tick (a
    // window edge there just finds a no-op wrapper) — conservative is
    // fine, but it must never report *past* the real work.
    EXPECT_LE(eq.nextTick(), 200u);
    while (eq.nextTick() != EventQueue::kNever)
        eq.drainTick(eq.nextTick());
    EXPECT_EQ(dead, 0);
    EXPECT_EQ(live, 1);
    EXPECT_EQ(eq.now(), 200u);
}

TEST(InlineCallback, MoveTransfersOwnershipAndDestroysOnce)
{
    LifeProbe::live = 0;
    LifeProbe::invoked = 0;
    int hits = 0;
    {
        InlineCallback a = LifeProbe(&hits);
        EXPECT_EQ(LifeProbe::live, 1);
        EXPECT_TRUE(static_cast<bool>(a));

        InlineCallback b = std::move(a);
        EXPECT_EQ(LifeProbe::live, 1) << "relocate must destroy source";
        EXPECT_FALSE(static_cast<bool>(a));
        EXPECT_TRUE(static_cast<bool>(b));

        InlineCallback c;
        EXPECT_FALSE(static_cast<bool>(c));
        c = std::move(b);
        EXPECT_EQ(LifeProbe::live, 1);
        EXPECT_FALSE(static_cast<bool>(b));

        c();
        EXPECT_EQ(hits, 1);
        EXPECT_EQ(LifeProbe::invoked, 1);
    }
    EXPECT_EQ(LifeProbe::live, 0);
}

TEST(InlineCallback, MoveAssignOverExistingDestroysOld)
{
    LifeProbe::live = 0;
    int x = 0, y = 0;
    {
        InlineCallback a = LifeProbe(&x);
        InlineCallback b = LifeProbe(&y);
        EXPECT_EQ(LifeProbe::live, 2);
        a = std::move(b); // destroys a's probe, relocates b's
        EXPECT_EQ(LifeProbe::live, 1);
        a();
        EXPECT_EQ(x, 0);
        EXPECT_EQ(y, 1);
    }
    EXPECT_EQ(LifeProbe::live, 0);
}

TEST(InlineCallback, QueueDestroysPendingCallbacksOnReset)
{
    LifeProbe::live = 0;
    int hits = 0;
    EventQueue eq;
    eq.schedule(10, LifeProbe(&hits));
    eq.schedule(EventQueue::kRingSize * 2, LifeProbe(&hits));
    EXPECT_EQ(LifeProbe::live, 2);
    eq.reset();
    EXPECT_EQ(LifeProbe::live, 0);
    EXPECT_EQ(hits, 0);
}

} // namespace
} // namespace flashsim
