
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barnes.cc" "src/CMakeFiles/flashsim.dir/apps/barnes.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/apps/barnes.cc.o.d"
  "/root/repo/src/apps/fft.cc" "src/CMakeFiles/flashsim.dir/apps/fft.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/apps/fft.cc.o.d"
  "/root/repo/src/apps/lu.cc" "src/CMakeFiles/flashsim.dir/apps/lu.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/apps/lu.cc.o.d"
  "/root/repo/src/apps/mp3d.cc" "src/CMakeFiles/flashsim.dir/apps/mp3d.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/apps/mp3d.cc.o.d"
  "/root/repo/src/apps/ocean.cc" "src/CMakeFiles/flashsim.dir/apps/ocean.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/apps/ocean.cc.o.d"
  "/root/repo/src/apps/os_workload.cc" "src/CMakeFiles/flashsim.dir/apps/os_workload.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/apps/os_workload.cc.o.d"
  "/root/repo/src/apps/radix.cc" "src/CMakeFiles/flashsim.dir/apps/radix.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/apps/radix.cc.o.d"
  "/root/repo/src/apps/workload.cc" "src/CMakeFiles/flashsim.dir/apps/workload.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/apps/workload.cc.o.d"
  "/root/repo/src/cpu/cache.cc" "src/CMakeFiles/flashsim.dir/cpu/cache.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/cpu/cache.cc.o.d"
  "/root/repo/src/cpu/processor.cc" "src/CMakeFiles/flashsim.dir/cpu/processor.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/cpu/processor.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/CMakeFiles/flashsim.dir/machine/machine.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/machine/machine.cc.o.d"
  "/root/repo/src/machine/node.cc" "src/CMakeFiles/flashsim.dir/machine/node.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/machine/node.cc.o.d"
  "/root/repo/src/machine/report.cc" "src/CMakeFiles/flashsim.dir/machine/report.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/machine/report.cc.o.d"
  "/root/repo/src/machine/runner.cc" "src/CMakeFiles/flashsim.dir/machine/runner.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/machine/runner.cc.o.d"
  "/root/repo/src/magic/jump_table.cc" "src/CMakeFiles/flashsim.dir/magic/jump_table.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/magic/jump_table.cc.o.d"
  "/root/repo/src/magic/magic.cc" "src/CMakeFiles/flashsim.dir/magic/magic.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/magic/magic.cc.o.d"
  "/root/repo/src/magic/magic_cache.cc" "src/CMakeFiles/flashsim.dir/magic/magic_cache.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/magic/magic_cache.cc.o.d"
  "/root/repo/src/magic/timing_model.cc" "src/CMakeFiles/flashsim.dir/magic/timing_model.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/magic/timing_model.cc.o.d"
  "/root/repo/src/network/mesh.cc" "src/CMakeFiles/flashsim.dir/network/mesh.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/network/mesh.cc.o.d"
  "/root/repo/src/ppc/compiler.cc" "src/CMakeFiles/flashsim.dir/ppc/compiler.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/ppc/compiler.cc.o.d"
  "/root/repo/src/ppc/expand.cc" "src/CMakeFiles/flashsim.dir/ppc/expand.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/ppc/expand.cc.o.d"
  "/root/repo/src/ppc/ir.cc" "src/CMakeFiles/flashsim.dir/ppc/ir.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/ppc/ir.cc.o.d"
  "/root/repo/src/ppc/schedule.cc" "src/CMakeFiles/flashsim.dir/ppc/schedule.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/ppc/schedule.cc.o.d"
  "/root/repo/src/ppisa/instruction.cc" "src/CMakeFiles/flashsim.dir/ppisa/instruction.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/ppisa/instruction.cc.o.d"
  "/root/repo/src/ppisa/ppsim.cc" "src/CMakeFiles/flashsim.dir/ppisa/ppsim.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/ppisa/ppsim.cc.o.d"
  "/root/repo/src/protocol/directory.cc" "src/CMakeFiles/flashsim.dir/protocol/directory.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/protocol/directory.cc.o.d"
  "/root/repo/src/protocol/handlers.cc" "src/CMakeFiles/flashsim.dir/protocol/handlers.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/protocol/handlers.cc.o.d"
  "/root/repo/src/protocol/message.cc" "src/CMakeFiles/flashsim.dir/protocol/message.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/protocol/message.cc.o.d"
  "/root/repo/src/protocol/pp_programs.cc" "src/CMakeFiles/flashsim.dir/protocol/pp_programs.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/protocol/pp_programs.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/flashsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/flashsim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/flashsim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/sim/stats.cc.o.d"
  "/root/repo/src/tango/runtime.cc" "src/CMakeFiles/flashsim.dir/tango/runtime.cc.o" "gcc" "src/CMakeFiles/flashsim.dir/tango/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
