/** @file Tests for run summaries and report formatting. */

#include <gtest/gtest.h>

#include "machine/report.hh"
#include "machine/runner.hh"

namespace flashsim::machine
{
namespace
{

TEST(Report, CrmtIsWeightedSum)
{
    MissLatencies l;
    l.localClean = 20;
    l.localDirtyRemote = 100;
    l.remoteClean = 90;
    l.remoteDirtyHome = 140;
    l.remoteDirtyRemote = 190;
    ReadMissDistribution d;
    d.localClean = 0.2;
    d.localDirtyRemote = 0.1;
    d.remoteClean = 0.3;
    d.remoteDirtyHome = 0.3;
    d.remoteDirtyRemote = 0.1;
    EXPECT_NEAR(l.crmt(d), 0.2 * 20 + 0.1 * 100 + 0.3 * 90 + 0.3 * 140 +
                               0.1 * 190,
                1e-9);
}

TEST(Report, BreakdownRowNormalizes)
{
    Summary s;
    s.execTime = 500;
    s.busy = 0.5;
    s.read = 0.5;
    std::string row = breakdownRow("test", s, 1000.0);
    // Normalized height = 50.0; busy and read shares = 25.0 each.
    EXPECT_NE(row.find("test"), std::string::npos);
    EXPECT_NE(row.find("50.0"), std::string::npos);
    EXPECT_NE(row.find("25.0"), std::string::npos);
    EXPECT_FALSE(breakdownHeader().empty());
}

TEST(Report, SummaryOfQuietMachineIsSane)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    m.run([](tango::Env &env) -> tango::Task {
        co_await env.busy(400);
    });
    Summary s = summarize(m);
    EXPECT_EQ(s.execTime, 100u);
    EXPECT_DOUBLE_EQ(s.busy, 1.0);
    EXPECT_EQ(s.readMisses + s.writeMisses, 0u);
    EXPECT_EQ(s.nacksSent, 0u);
    EXPECT_DOUBLE_EQ(s.missRate, 0.0);
}

TEST(Report, OccupanciesBoundedByOne)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    Addr base = m.allocAuto(64 * kLineSize);
    m.run([base](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int i = 0; i < 64; ++i)
            co_await env.read(base + static_cast<Addr>(i) * kLineSize);
    });
    m.drain();
    Summary s = summarize(m);
    EXPECT_GE(s.maxPpOcc, s.avgPpOcc);
    EXPECT_GE(s.maxMemOcc, s.avgMemOcc);
    EXPECT_LE(s.maxPpOcc, 1.0);
    EXPECT_LE(s.maxMemOcc, 1.0);
    EXPECT_GT(s.avgPpOcc, 0.0);
}

TEST(Report, ProbeDetectsConfigChanges)
{
    // A slower network must show up in the remote classes but not the
    // local clean latency.
    MachineConfig fast = MachineConfig::flash(16);
    MachineConfig slow = MachineConfig::flash(16);
    slow.net.perHop = 8;
    ProbeResult a = probeMissLatencies(fast);
    ProbeResult b = probeMissLatencies(slow);
    EXPECT_EQ(a.latency.localClean, b.latency.localClean);
    EXPECT_GT(b.latency.remoteClean, a.latency.remoteClean + 30);
}

} // namespace
} // namespace flashsim::machine
