/**
 * @file
 * Dynamic pointer allocation directory storage.
 *
 * The paper's initial protocol (Simoni's dynamic pointer allocation)
 * keeps one 8-byte directory header per 128-byte memory line, holding
 * state bits and a link into a linked list of sharers allocated from a
 * free pool. All of it lives in main memory and is accessed by the PP
 * through the MAGIC data cache; this class is that memory region.
 *
 * The store is word-addressable (loadWord/storeWord) so PP handler
 * programs can execute against it through a PpMemory adapter, and also
 * exposes typed helpers used by the authoritative C++ handlers. Both
 * views manipulate the same packed words.
 *
 * Address map (per node; nodes never touch each other's region):
 *   headerAddr(line)  = kDirHeaderBase + lineNumber(line) * 8
 *   linkAddr(idx)     = kLinkPoolBase + idx * 8
 *   free-list head    = linkAddr(0)  (link index 0 is the null index)
 *
 * Header word: bit 0 dirty, bit 1 pending, bits [16,32) head link index,
 * bits [32,48) owner node. Link word: bits [0,16) node, bits [16,32)
 * next link index.
 *
 * Storage is a paged flat store rather than a hash map: a region
 * decoder maps each word address onto one of three index-addressed
 * backings — fixed-size zero-filled header pages indexed by line
 * number, a flat link-pool vector, and the fixed ack-table array — so
 * the word-level view PP programs execute through costs a couple of
 * compares and an array index instead of a hash probe. Addresses
 * outside the decoded regions (or misaligned ones) fall back to a
 * small overflow map, keeping loadWord/storeWord bit-identical to the
 * historical map-backed store for every address.
 */

#ifndef FLASHSIM_PROTOCOL_DIRECTORY_HH_
#define FLASHSIM_PROTOCOL_DIRECTORY_HH_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace flashsim::protocol
{

/** Base of the directory header region in the protocol address space. */
inline constexpr Addr kDirHeaderBase = Addr{1} << 44;
/**
 * Base of the sharer-link pool region. The region bases are staggered
 * by a quarter of the MAGIC data cache's sets so the header, link and
 * ack-table words of one memory line do not systematically alias into
 * the same MDC set (a real machine gets this for free from physical
 * allocation).
 */
inline constexpr Addr kLinkPoolBase = (Addr{1} << 45) + 64 * 128;

/** Base of the per-line invalidation-ack counting table (staggered by
 *  half the MDC sets; see kLinkPoolBase). */
inline constexpr Addr kAckTableBase = (Addr{1} << 46) + 128 * 128;

/** Entries in the direct-mapped ack table. */
inline constexpr std::uint32_t kAckTableEntries = 1024;

/** Ack-table entry address for a line (direct-mapped, 1024 entries). */
constexpr Addr
ackAddr(Addr addr)
{
    return kAckTableBase + (lineNumber(addr) % kAckTableEntries) * 8;
}

/** Header field bit positions (shared with the PP handler programs). */
namespace dirfield
{
inline constexpr unsigned kDirtyBit = 0;
inline constexpr unsigned kPendingBit = 1;
inline constexpr unsigned kHeadLo = 16;
inline constexpr unsigned kHeadWidth = 16;
inline constexpr unsigned kOwnerLo = 32;
inline constexpr unsigned kOwnerWidth = 16;
} // namespace dirfield

/** Address of the directory header word for @p addr's line. */
constexpr Addr
headerAddr(Addr addr)
{
    return kDirHeaderBase + lineNumber(addr) * 8;
}

/** Address of link-pool entry @p idx. */
constexpr Addr
linkAddr(std::uint32_t idx)
{
    return kLinkPoolBase + static_cast<Addr>(idx) * 8;
}

/** Decoded directory header. */
struct DirHeader
{
    bool dirty = false;
    /** Reserved transient-state bit. The shipped protocol resolves all
     *  races by NACK/retry instead of pending states (see handlers.hh),
     *  so this bit is never set; it is kept in the encoding because a
     *  pending-based protocol variant would live here. */
    bool pending = false;
    std::uint32_t head = 0;  ///< first sharer link index (0 = empty)
    NodeId owner = 0;        ///< owning node when dirty

    static DirHeader unpack(std::uint64_t w);
    std::uint64_t pack() const;
};

/** Decoded sharer-list link entry. */
struct LinkEntry
{
    NodeId node = 0;
    std::uint32_t next = 0;

    static LinkEntry unpack(std::uint64_t w);
    std::uint64_t pack() const;
};

/**
 * The per-node protocol data store: directory headers plus the sharer
 * link pool with an embedded free list.
 */
class DirectoryStore
{
  public:
    /** Words per header page (one page covers this many memory lines). */
    static constexpr std::uint32_t kPageWords = 4096;
    /** Header words directly decoded; beyond this, overflow map. */
    static constexpr std::uint64_t kMaxHeaderWords = std::uint64_t{1}
                                                     << 26;
    /** Link words directly decoded; beyond this, overflow map. */
    static constexpr std::uint64_t kMaxLinkWords = std::uint64_t{1} << 26;

    /** @param pool_limit maximum live link entries (fatal if exceeded). */
    explicit DirectoryStore(std::uint32_t pool_limit = 1u << 22);

    // -- Word-level access (PP handler programs / MDC path) ---------------
    std::uint64_t loadWord(Addr a) const;
    void storeWord(Addr a, std::uint64_t v);

    // -- Typed access (authoritative C++ handlers) -------------------------
    DirHeader header(Addr line) const;
    void setHeader(Addr line, const DirHeader &h);

    LinkEntry link(std::uint32_t idx) const;
    void setLink(std::uint32_t idx, const LinkEntry &e);

    /** Prepend @p node to @p line's sharer list. */
    void addSharer(Addr line, NodeId node);

    /**
     * Remove @p node from @p line's sharer list.
     * @return zero-based position the node was found at, or -1.
     */
    int removeSharer(Addr line, NodeId node);

    /** All sharers of @p line, head first. */
    std::vector<NodeId> sharers(Addr line) const;

    bool isSharer(Addr line, NodeId node) const;
    int countSharers(Addr line) const;

    /** Free the whole sharer list (used after invalidating all). */
    void clearSharers(Addr line);

    /** Live (allocated, in-use) link entries. */
    std::uint32_t liveLinks() const { return liveLinks_; }

  private:
    /** One zero-filled header page. */
    using Page = std::unique_ptr<std::uint64_t[]>;

    std::uint32_t allocLink();
    void freeLink(std::uint32_t idx);
    /** Keep the free-list head word readable by PP programs. */
    void mirrorFreeHead();

    // Direct region accessors used by both the word-level decoder and
    // the typed fast paths.
    std::uint64_t
    headerWord(std::uint64_t w) const
    {
        std::uint64_t page = w / kPageWords;
        if (page >= headerPages_.size() || !headerPages_[page])
            return 0;
        return headerPages_[page][w % kPageWords];
    }
    void setHeaderWord(std::uint64_t w, std::uint64_t v);

    std::uint64_t
    linkWord(std::uint64_t idx) const
    {
        return idx < links_.size() ? links_[idx] : 0;
    }
    void setLinkWord(std::uint64_t idx, std::uint64_t v);

    std::vector<Page> headerPages_;
    std::vector<std::uint64_t> links_;
    std::vector<std::uint64_t> ackTable_;
    /** Escape hatch for addresses outside the decoded regions; keeps
     *  the word view semantics of the historical map-backed store. */
    std::unordered_map<Addr, std::uint64_t> overflow_;

    std::uint32_t freeHead_ = 1;
    std::uint32_t nextUnused_ = 2;
    std::uint32_t poolLimit_;
    std::uint32_t liveLinks_ = 0;
};

} // namespace flashsim::protocol

#endif // FLASHSIM_PROTOCOL_DIRECTORY_HH_
