/** @file Unit tests for the authoritative C++ protocol handlers. */

#include <gtest/gtest.h>

#include "protocol/directory.hh"
#include "protocol/handlers.hh"

namespace flashsim::protocol
{
namespace
{

/** Home = address bits [12,16) modulo 4. */
struct TestMap : AddressMap
{
    NodeId
    homeOf(Addr addr) const override
    {
        return static_cast<NodeId>((addr >> 12) % 4);
    }
};

struct TestProbe : CacheProbe
{
    bool dirty = false;
    bool
    holdsDirty(Addr) const override
    {
        return dirty;
    }
};

class HandlersTest : public ::testing::Test
{
  protected:
    HandlersTest() : engine(kSelf, dir, map, probe) {}

    Message
    msg(MsgType t, NodeId src, Addr addr, NodeId req,
        std::uint32_t aux = 0)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dest = kSelf;
        m.requester = req;
        m.addr = addr;
        m.aux = aux;
        return m;
    }

    static constexpr NodeId kSelf = 0;
    static constexpr Addr kLocal = 0x0000;  // homed at node 0
    static constexpr Addr kRemote = 0x1000; // homed at node 1

    TestMap map;
    TestProbe probe;
    DirectoryStore dir;
    ProtocolEngine engine;
};

TEST_F(HandlersTest, LocalGetCleanServesFromMemory)
{
    HandlerResult r = engine.handle(msg(MsgType::PiGet, 0, kLocal, 0));
    EXPECT_EQ(r.id, HandlerId::ServeReadMemory);
    EXPECT_TRUE(r.memRead);
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::PiPut);
    EXPECT_EQ(r.out[0].msg.dest, 0u);
    EXPECT_EQ(r.out[0].gate, Gate::MemData);
    EXPECT_TRUE(dir.isSharer(kLocal, 0));
}

TEST_F(HandlersTest, RemoteRequestForwardsToHome)
{
    HandlerResult r = engine.handle(msg(MsgType::PiGet, 0, kRemote, 0));
    EXPECT_EQ(r.id, HandlerId::FwdToHome);
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetGet);
    EXPECT_EQ(r.out[0].msg.dest, 1u);
    EXPECT_EQ(r.out[0].msg.requester, 0u);
}

TEST_F(HandlersTest, NetGetCleanAddsSharerAndReplies)
{
    HandlerResult r = engine.handle(msg(MsgType::NetGet, 2, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::ServeReadMemory);
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetPut);
    EXPECT_EQ(r.out[0].msg.dest, 2u);
    EXPECT_TRUE(dir.isSharer(kLocal, 2));
}

TEST_F(HandlersTest, GetDirtyRemoteForwardsThreeHop)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = 3;
    dir.setHeader(kLocal, h);
    HandlerResult r = engine.handle(msg(MsgType::NetGet, 2, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::FwdHomeToDirty);
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetFwdGet);
    EXPECT_EQ(r.out[0].msg.dest, 3u);
    EXPECT_EQ(r.out[0].msg.requester, 2u);
    EXPECT_FALSE(r.memRead); // a speculative read would be useless
}

TEST_F(HandlersTest, GetDirtyAtHomeRetrievesFromCache)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = kSelf;
    dir.setHeader(kLocal, h);
    probe.dirty = true;
    HandlerResult r = engine.handle(msg(MsgType::NetGet, 2, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::RetrieveFromCache);
    EXPECT_TRUE(r.cacheRetrieve);
    EXPECT_TRUE(r.cacheSharing);
    EXPECT_TRUE(r.memWrite); // sharing writeback
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetPut);
    EXPECT_EQ(r.out[0].gate, Gate::CacheData);
    EXPECT_FALSE(dir.header(kLocal).dirty);
    EXPECT_TRUE(dir.isSharer(kLocal, kSelf));
    EXPECT_TRUE(dir.isSharer(kLocal, 2));
}

TEST_F(HandlersTest, GetDirtyAtHomeButCacheCleanNacks)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = kSelf;
    dir.setHeader(kLocal, h);
    probe.dirty = false; // writeback in flight
    HandlerResult r = engine.handle(msg(MsgType::NetGet, 2, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::HomeNack);
    EXPECT_TRUE(r.nackedRequest);
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetNack);
    EXPECT_TRUE(dir.header(kLocal).dirty); // state unchanged
}

TEST_F(HandlersTest, GetByOwnerWhileWritebackInFlightNacks)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = 2;
    dir.setHeader(kLocal, h);
    HandlerResult r = engine.handle(msg(MsgType::NetGet, 2, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::HomeNack);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetNack);
}

TEST_F(HandlersTest, GetxNoSharersGrantsExclusive)
{
    HandlerResult r = engine.handle(msg(MsgType::NetGetx, 2, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::ServeWriteMemory);
    EXPECT_EQ(r.costParam, 0);
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetPutx);
    EXPECT_EQ(r.out[0].msg.aux, 0u);
    DirHeader h = dir.header(kLocal);
    EXPECT_TRUE(h.dirty);
    EXPECT_EQ(h.owner, 2u);
    EXPECT_EQ(dir.countSharers(kLocal), 0);
}

TEST_F(HandlersTest, GetxInvalidatesOtherSharers)
{
    dir.addSharer(kLocal, 1);
    dir.addSharer(kLocal, 2);
    dir.addSharer(kLocal, 3); // list: 3 2 1
    HandlerResult r = engine.handle(msg(MsgType::NetGetx, 2, kLocal, 2));
    EXPECT_EQ(r.costParam, 2); // nodes 3 and 1
    ASSERT_EQ(r.out.size(), 3u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetInval);
    EXPECT_EQ(r.out[0].msg.dest, 3u);
    EXPECT_EQ(r.out[0].msg.requester, 2u);
    EXPECT_EQ(r.out[1].msg.type, MsgType::NetInval);
    EXPECT_EQ(r.out[1].msg.dest, 1u);
    EXPECT_EQ(r.out[2].msg.type, MsgType::NetPutx);
    EXPECT_EQ(r.out[2].msg.aux, 2u); // expect two acks
    EXPECT_EQ(dir.countSharers(kLocal), 0);
}

TEST_F(HandlersTest, GetxWithHomeAsSharerAcksOnItsBehalf)
{
    dir.addSharer(kLocal, 0); // home itself
    dir.addSharer(kLocal, 3);
    HandlerResult r = engine.handle(msg(MsgType::NetGetx, 2, kLocal, 2));
    ASSERT_EQ(r.out.size(), 3u);
    EXPECT_TRUE(r.cacheInvalidate);
    // Order follows the list (3 first, then home's self-ack).
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetInval);
    EXPECT_EQ(r.out[0].msg.dest, 3u);
    EXPECT_EQ(r.out[1].msg.type, MsgType::NetInvalAck);
    EXPECT_EQ(r.out[1].msg.dest, 2u);
    EXPECT_EQ(r.out[2].msg.aux, 2u);
}

TEST_F(HandlersTest, UpgradeByCurrentSharerSendsNoInvalToSelf)
{
    dir.addSharer(kLocal, 2);
    HandlerResult r = engine.handle(msg(MsgType::NetGetx, 2, kLocal, 2));
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetPutx);
    EXPECT_EQ(r.out[0].msg.aux, 0u);
}

TEST_F(HandlersTest, GetxDirtyAtHomeTransfersOwnership)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = kSelf;
    dir.setHeader(kLocal, h);
    probe.dirty = true;
    HandlerResult r = engine.handle(msg(MsgType::NetGetx, 2, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::RetrieveFromCache);
    EXPECT_TRUE(r.cacheInvalidate);
    EXPECT_FALSE(r.memWrite); // requester now owns the only copy
    EXPECT_EQ(dir.header(kLocal).owner, 2u);
    EXPECT_TRUE(dir.header(kLocal).dirty);
}

TEST_F(HandlersTest, FwdGetAtDirtyOwnerServesAndSwb)
{
    probe.dirty = true;
    HandlerResult r =
        engine.handle(msg(MsgType::NetFwdGet, 1, kRemote, 2));
    EXPECT_EQ(r.id, HandlerId::RetrieveFromCache);
    EXPECT_TRUE(r.cacheSharing);
    ASSERT_EQ(r.out.size(), 2u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetPut);
    EXPECT_EQ(r.out[0].msg.dest, 2u);
    EXPECT_EQ(r.out[1].msg.type, MsgType::NetSwb);
    EXPECT_EQ(r.out[1].msg.dest, 1u); // home of kRemote
    EXPECT_EQ(r.out[1].msg.requester, 2u);
}

TEST_F(HandlersTest, FwdGetRaceNacksRequester)
{
    probe.dirty = false;
    HandlerResult r =
        engine.handle(msg(MsgType::NetFwdGet, 1, kRemote, 2));
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetNack);
    EXPECT_EQ(r.out[0].msg.dest, 2u);
}

TEST_F(HandlersTest, FwdGetxInvalidatesAndTransfers)
{
    probe.dirty = true;
    HandlerResult r =
        engine.handle(msg(MsgType::NetFwdGetx, 1, kRemote, 2));
    EXPECT_TRUE(r.cacheInvalidate);
    ASSERT_EQ(r.out.size(), 2u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetPutx);
    EXPECT_EQ(r.out[1].msg.type, MsgType::NetOwnXfer);
}

TEST_F(HandlersTest, WritebackClearsDirty)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = 2;
    dir.setHeader(kLocal, h);
    HandlerResult r =
        engine.handle(msg(MsgType::NetWriteback, 2, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::RemoteWriteback);
    EXPECT_TRUE(r.memWrite);
    EXPECT_FALSE(dir.header(kLocal).dirty);
}

TEST_F(HandlersTest, LocalWritebackUsesLocalCost)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = 0;
    dir.setHeader(kLocal, h);
    HandlerResult r =
        engine.handle(msg(MsgType::PiWriteback, 0, kLocal, 0));
    EXPECT_EQ(r.id, HandlerId::LocalWriteback);
}

TEST_F(HandlersTest, StaleWritebackLeavesNewOwner)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = 3; // ownership already moved on
    dir.setHeader(kLocal, h);
    HandlerResult r =
        engine.handle(msg(MsgType::NetWriteback, 2, kLocal, 2));
    EXPECT_TRUE(r.memWrite);
    EXPECT_EQ(dir.header(kLocal).owner, 3u);
    EXPECT_TRUE(dir.header(kLocal).dirty);
}

TEST_F(HandlersTest, ReplaceHintCosts)
{
    dir.addSharer(kLocal, 2);
    HandlerResult only =
        engine.handle(msg(MsgType::NetReplaceHint, 2, kLocal, 2));
    EXPECT_EQ(only.id, HandlerId::RemoteHintOnly);
    EXPECT_EQ(dir.countSharers(kLocal), 0);

    dir.addSharer(kLocal, 1);
    dir.addSharer(kLocal, 2);
    dir.addSharer(kLocal, 3); // 3 2 1
    HandlerResult nth =
        engine.handle(msg(MsgType::NetReplaceHint, 1, kLocal, 1));
    EXPECT_EQ(nth.id, HandlerId::RemoteHintNth);
    EXPECT_EQ(nth.costParam, 2);

    HandlerResult local =
        engine.handle(msg(MsgType::PiReplaceHint, 0, kLocal, 0));
    EXPECT_EQ(local.id, HandlerId::LocalHint);
}

TEST_F(HandlersTest, SwbMakesBothSharers)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = 3;
    dir.setHeader(kLocal, h);
    HandlerResult r = engine.handle(msg(MsgType::NetSwb, 3, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::SwbReceive);
    EXPECT_TRUE(r.memWrite);
    EXPECT_FALSE(dir.header(kLocal).dirty);
    EXPECT_TRUE(dir.isSharer(kLocal, 3));
    EXPECT_TRUE(dir.isSharer(kLocal, 2));
}

TEST_F(HandlersTest, OwnXferMovesOwnership)
{
    DirHeader h = dir.header(kLocal);
    h.dirty = true;
    h.owner = 3;
    dir.setHeader(kLocal, h);
    HandlerResult r =
        engine.handle(msg(MsgType::NetOwnXfer, 3, kLocal, 2));
    EXPECT_EQ(r.id, HandlerId::OwnXferReceive);
    EXPECT_EQ(dir.header(kLocal).owner, 2u);
    EXPECT_TRUE(dir.header(kLocal).dirty);
}

TEST_F(HandlersTest, InvalAtSharerAcksRequester)
{
    HandlerResult r = engine.handle(msg(MsgType::NetInval, 1, kRemote, 2));
    EXPECT_EQ(r.id, HandlerId::InvalReceive);
    EXPECT_TRUE(r.cacheInvalidate);
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].msg.type, MsgType::NetInvalAck);
    EXPECT_EQ(r.out[0].msg.dest, 2u);
}

TEST_F(HandlersTest, RepliesForwardToProcessor)
{
    HandlerResult put = engine.handle(msg(MsgType::NetPut, 1, kRemote, 0));
    EXPECT_EQ(put.id, HandlerId::ReplyToProc);
    ASSERT_EQ(put.out.size(), 1u);
    EXPECT_EQ(put.out[0].msg.type, MsgType::PiPut);

    HandlerResult putx =
        engine.handle(msg(MsgType::NetPutx, 1, kRemote, 0, 3));
    ASSERT_EQ(putx.out.size(), 1u);
    EXPECT_EQ(putx.out[0].msg.type, MsgType::PiPutx);
    EXPECT_EQ(putx.out[0].msg.aux, 3u);

    HandlerResult ack =
        engine.handle(msg(MsgType::NetInvalAck, 1, kRemote, 0));
    EXPECT_EQ(ack.id, HandlerId::InvalAck);
    EXPECT_TRUE(ack.out.empty());

    HandlerResult nack =
        engine.handle(msg(MsgType::NetNack, 1, kRemote, 0));
    EXPECT_EQ(nack.id, HandlerId::NackReceive);
    EXPECT_TRUE(nack.out.empty());
}

TEST_F(HandlersTest, SendArgPackingRoundtrip)
{
    std::uint64_t arg = packSendArg(0x123456780, 0x1f2, 7);
    EXPECT_EQ(sendArgAddr(arg), 0x123456780u);
    EXPECT_EQ(sendArgAux(arg), 0x1f2u);
    EXPECT_EQ(sendArgRequester(arg), 7u);
}

} // namespace
} // namespace flashsim::protocol
