#include "sim/stats.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace flashsim
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    last_ = v;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = last_ = 0.0;
}

StatSet::Handle
StatSet::handle(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    Handle h = static_cast<Handle>(values_.size());
    values_.push_back(0.0);
    names_.push_back(name);
    index_.emplace(name, h);
    viewStale_ = true;
    return h;
}

double
StatSet::get(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        panic("StatSet: unknown stat '%s'", name.c_str());
    return values_[it->second];
}

bool
StatSet::has(const std::string &name) const
{
    return index_.find(name) != index_.end();
}

const std::map<std::string, double> &
StatSet::all() const
{
    if (viewStale_) {
        view_.clear();
        for (std::size_t i = 0; i < values_.size(); ++i)
            view_[names_[i]] = values_[i];
        viewStale_ = false;
    }
    return view_;
}

double
pct(double num, double denom)
{
    return denom != 0.0 ? 100.0 * num / denom : 0.0;
}

double
ratio(double num, double denom)
{
    return denom != 0.0 ? num / denom : 0.0;
}

} // namespace flashsim
