#include "ppisa/instruction.hh"

#include <sstream>

namespace flashsim::ppisa
{

bool
Instr::isBranch() const
{
    switch (op) {
      case Op::Beq:
      case Op::Bne:
      case Op::J:
      case Op::Bbs:
      case Op::Bbc:
        return true;
      default:
        return false;
    }
}

bool
Instr::isSpecial() const
{
    switch (op) {
      case Op::Ffs:
      case Op::Bbs:
      case Op::Bbc:
      case Op::Ext:
      case Op::Ins:
      case Op::Orfi:
      case Op::Andfi:
        return true;
      default:
        return false;
    }
}

bool
Instr::isAluOrBranch() const
{
    switch (op) {
      case Op::Nop:
      case Op::Ld:
      case Op::Sd:
      case Op::Halt:
      case Op::Send:
        return false;
      default:
        return true;
    }
}

int
Instr::destReg() const
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or: case Op::Xor:
      case Op::Sllv: case Op::Srlv: case Op::Slt: case Op::Sltu:
      case Op::Addi: case Op::Andi: case Op::Ori: case Op::Xori:
      case Op::Slli: case Op::Srli: case Op::Srai: case Op::Slti:
      case Op::Ld: case Op::Ffs: case Op::Ext: case Op::Ins:
      case Op::Orfi: case Op::Andfi:
        return rd;
      default:
        return -1;
    }
}

std::vector<int>
Instr::srcRegs() const
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or: case Op::Xor:
      case Op::Sllv: case Op::Srlv: case Op::Slt: case Op::Sltu:
        return {rs, rt};
      case Op::Addi: case Op::Andi: case Op::Ori: case Op::Xori:
      case Op::Slli: case Op::Srli: case Op::Srai: case Op::Slti:
      case Op::Ffs: case Op::Ext: case Op::Orfi: case Op::Andfi:
        return {rs};
      case Op::Ins:
        return {rs, rd}; // Ins merges into the existing rd value
      case Op::Ld:
        return {rs};
      case Op::Sd:
        return {rs, rt}; // mem[rs + imm] = rt
      case Op::Beq: case Op::Bne:
        return {rs, rt};
      case Op::Bbs: case Op::Bbc:
        return {rs};
      case Op::Send:
        return {rs, rt};
      default:
        return {};
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Sllv: return "sllv";
      case Op::Srlv: return "srlv";
      case Op::Slt: return "slt";
      case Op::Sltu: return "sltu";
      case Op::Addi: return "addi";
      case Op::Andi: return "andi";
      case Op::Ori: return "ori";
      case Op::Xori: return "xori";
      case Op::Slli: return "slli";
      case Op::Srli: return "srli";
      case Op::Srai: return "srai";
      case Op::Slti: return "slti";
      case Op::Ld: return "ld";
      case Op::Sd: return "sd";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::J: return "j";
      case Op::Halt: return "halt";
      case Op::Ffs: return "ffs";
      case Op::Bbs: return "bbs";
      case Op::Bbc: return "bbc";
      case Op::Ext: return "ext";
      case Op::Ins: return "ins";
      case Op::Orfi: return "orfi";
      case Op::Andfi: return "andfi";
      case Op::Send: return "send";
    }
    return "?";
}

std::string
Instr::toString() const
{
    std::ostringstream os;
    os << opName(op);
    switch (op) {
      case Op::Nop:
      case Op::Halt:
        break;
      case Op::J:
        os << " ->" << imm;
        break;
      case Op::Beq:
      case Op::Bne:
        os << " r" << int(rs) << ", r" << int(rt) << " ->" << imm;
        break;
      case Op::Bbs:
      case Op::Bbc:
        os << " r" << int(rs) << "[" << int(lo) << "] ->" << imm;
        break;
      case Op::Ld:
        os << " r" << int(rd) << ", " << imm << "(r" << int(rs) << ")";
        break;
      case Op::Sd:
        os << " r" << int(rt) << ", " << imm << "(r" << int(rs) << ")";
        break;
      case Op::Ext:
      case Op::Ins:
      case Op::Orfi:
      case Op::Andfi:
        os << " r" << int(rd) << ", r" << int(rs) << ", <" << int(lo) << ","
           << int(width) << ">";
        break;
      case Op::Send:
        os << " type=" << imm << " dest=r" << int(rs) << " arg=r" << int(rt);
        break;
      default:
        os << " r" << int(rd) << ", r" << int(rs);
        if (srcRegs().size() > 1)
            os << ", r" << int(rt);
        if (imm)
            os << ", " << imm;
        break;
    }
    return os.str();
}

} // namespace flashsim::ppisa
