/**
 * @file
 * Conservative time-window PDES support.
 *
 * A sharded run partitions the machine's nodes into contiguous shards,
 * gives each shard its own EventQueue, and advances all shards in
 * barrier-synchronized windows [T, T+W) where W is the minimum
 * inter-node mesh transit time: nodes interact only through the
 * network, so a message sent inside a window cannot arrive before the
 * next one (classic conservative lookahead).
 *
 * Two pieces live here:
 *
 *  - the node->shard partition and shard-count resolution helpers;
 *
 *  - SyncArbiter, which keeps sharded runs bit-identical to the
 *    single-threaded path in the one place windows alone cannot:
 *    host-side synchronization state (tango lock/barrier variables).
 *    Every shared host access in the tango primitives passes through a
 *    syncPoint() that defers the coroutine into a canonical per-tick
 *    *sync phase*, executed in (tick, node, per-node sequence) order.
 *    In a sharded run the shards rendezvous on that tick — the lowest
 *    parked shard becomes the executor and runs every parked shard's
 *    operations single-threaded in the same canonical order — so lock
 *    winners and barrier arrival order cannot depend on thread timing.
 */

#ifndef FLASHSIM_SIM_SHARD_HH_
#define FLASHSIM_SIM_SHARD_HH_

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace flashsim
{

/** Hard cap on shards per run (participant sets use fixed storage). */
constexpr int kMaxShards = 64;

/** De-prioritize the issuing hyperthread inside a spin loop without
 *  giving up the core. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

/**
 * Sense-reversing (generation-counter) spin barrier with a serial
 * section: the last arriver runs a callback while every other party is
 * still held, then releases them by bumping the generation — one
 * rendezvous per window instead of std::barrier's two, with no futex
 * round-trip on the fast path. Waiters spin a bounded number of
 * iterations, yield for a few more, then park in std::atomic::wait; the
 * releaser pays the notify syscall only when somebody actually parked.
 *
 * Memory ordering: the arrival fetch_add is acq_rel, so the last
 * arriver (via the release sequence on arrived_) observes every earlier
 * party's window work before running the serial section, and the
 * generation bump is a release store paired with the waiters' acquire
 * loads, so everything the serial section wrote happens-before every
 * released party's next window. That is the same full per-window
 * happens-before edge the old two-std::barrier scheme provided, which
 * the sharded determinism argument (DESIGN 5g) relies on.
 *
 * Generation reuse is safe: a party can only re-arrive after being
 * released, releases happen only after the arrival counter was reset,
 * and the count cannot reach parties_ again until every released party
 * arrives anew — a waiter still draining out of the previous generation
 * only ever reads gen_.
 */
class SpinBarrier
{
  public:
    /** @p spin_limit bounds the busy-wait; pass 0 on oversubscribed
     *  hosts (the waited-on shard may need this core). */
    explicit SpinBarrier(int parties, int spin_limit = 4096)
        : parties_(parties), spinLimit_(spin_limit)
    {}

    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    template <typename SerialFn>
    void
    arriveAndWait(SerialFn &&serial)
    {
        const std::uint32_t gen = gen_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            serial();
            arrived_.store(0, std::memory_order_relaxed);
            gen_.fetch_add(1, std::memory_order_release);
            if (parked_.load(std::memory_order_relaxed) != 0)
                gen_.notify_all();
            return;
        }
        int spins = 0;
        while (gen_.load(std::memory_order_acquire) == gen) {
            if (spins < spinLimit_) {
                ++spins;
                cpuRelax();
            } else if (spins < spinLimit_ + kYields) {
                ++spins;
                std::this_thread::yield();
            } else {
                // No lost wakeup: wait() rechecks the value after the
                // parked_ increment, and the releaser re-reads parked_
                // after its generation bump.
                parked_.fetch_add(1, std::memory_order_relaxed);
                parks_.fetch_add(1, std::memory_order_relaxed);
                gen_.wait(gen, std::memory_order_acquire);
                parked_.fetch_sub(1, std::memory_order_relaxed);
            }
        }
    }

    void
    arriveAndWait()
    {
        arriveAndWait([] {});
    }

    /** Times any party fell back to a futex park (diagnostics). */
    std::uint64_t
    parks() const
    {
        return parks_.load(std::memory_order_relaxed);
    }

  private:
    /** Yields between the spin phase and the futex park. */
    static constexpr int kYields = 16;

    const int parties_;
    const int spinLimit_;
    std::atomic<std::uint32_t> gen_{0};
    std::atomic<int> arrived_{0};
    std::atomic<int> parked_{0};
    std::atomic<std::uint64_t> parks_{0};
};

/**
 * Resolve a requested shard count against the machine: clamped to
 * [1, min(num_nodes, kMaxShards)]. 0 means "one shard" (the
 * single-threaded default). Deliberately not clamped to the host's
 * core count — results are identical either way, and tests force
 * multi-shard runs on any host; user-facing knobs (the CLI's --shards)
 * apply the core-count clamp before building the config.
 */
int resolveShards(int requested, int num_nodes);

/** Contiguous node partition: shard of node @p n (blocks of nearly
 *  equal size, so mesh-adjacent nodes tend to share a shard). */
inline int
shardOfNode(int n, int num_nodes, int shards)
{
    return static_cast<int>(static_cast<std::int64_t>(n) * shards /
                            num_nodes);
}

/**
 * The cross-shard synchronization arbiter (see file comment).
 *
 * Per-shard clocks are monotone: clock(s) = t published with release
 * order means shard s has fully completed every tick < t. A shard with
 * a pending sync operation at tick u registers in the rendezvous table
 * and parks (publishing clock u+1, its own tick-u event stage being
 * complete), then waits until every shard's clock exceeds u; the
 * lowest-numbered shard registered at u then executes all registered
 * shards' tick-u operations in canonical order, draining any tick-u
 * events they schedule, and releases the others. At most one sync
 * phase is ever live machine-wide (the executor's own clock stays at
 * u+1 until it finishes, blocking any later rendezvous), so the
 * executor may safely resume coroutines owned by parked shards.
 *
 * The rendezvous bookkeeping (registration table + phase watermark) is
 * mutex-guarded: registration happens *before* the clock publish, so
 * once every clock has passed u the set of shards registered at u is
 * complete and frozen, and every scanner computes the same set — one
 * unique executor. A participant that only gets around to scanning
 * after a fast executor already finished sees the watermark past u and
 * falls straight through to the release wait (its release counter was
 * already bumped); the acquire there is what orders the executor's
 * phase work before everything the participant does next. Phase ticks
 * strictly increase machine-wide (a completed phase consumes every
 * tick-u sync op and tick-u event on its participants, and
 * non-participants are already past u), which is what makes the single
 * watermark sufficient.
 */
class SyncArbiter
{
  public:
    SyncArbiter() = default;
    SyncArbiter(const SyncArbiter &) = delete;
    SyncArbiter &operator=(const SyncArbiter &) = delete;

    /** (Re)initialize for a run over @p eqs (one queue per shard),
     *  with @p num_nodes nodes machine-wide. */
    void init(std::vector<EventQueue *> eqs, int num_nodes);

    /** Defer a coroutine into the sync phase at @p tick (>= the
     *  shard's current tick). Called on the owning shard's thread, or
     *  by the executor during a phase (the owner is then parked). */
    void park(int shard, Tick tick, NodeId node,
              std::coroutine_handle<> h);

    /** True while the sync phase at exactly @p tick is executing on
     *  this thread — the continuation may then run inline (the same
     *  deterministic rule in sharded and single-threaded runs). */
    bool
    inlineOk(Tick tick) const
    {
        return execTick_.load(std::memory_order_relaxed) == tick;
    }

    /** Earliest pending sync-op tick on @p shard, or
     *  EventQueue::kNever. Owner thread (or coordinator at a window
     *  barrier) only. */
    Tick minPending(int shard) const;

    /** Publish that every tick < @p t is complete on @p shard. */
    void publishClock(int shard, Tick t);

    /**
     * True while some shard is registered in (or heading into) a sync
     * rendezvous. Per-tick clock publishes are liveness-only — the
     * registration-before-publish protocol freezes participant sets
     * regardless of publish granularity — so the window loop skips
     * them entirely while this watermark is clear, which is almost
     * always. Relaxed reads suffice: a parker raises the watermark
     * before spinning on the other shards' clocks, and a stale-zero
     * read merely delays that shard's next publish by one loop
     * iteration (every iteration re-checks, and the unconditional
     * window-end publish bounds the wait).
     */
    bool
    anyParked() const
    {
        return parkedHint_.load(std::memory_order_relaxed) != 0;
    }

    /** Sync phases executed so far (read the count quiescent). */
    std::uint64_t phasesRun() const { return phasesRun_; }

    /** Run the sync phase for tick @p u from @p shard (which has a
     *  pending operation at @p u and has completed its tick-u events).
     *  Blocks until the phase completes machine-wide. */
    void syncPhase(int shard, Tick u);

  private:
    struct SyncOp
    {
        Tick tick;
        NodeId node;
        std::uint64_t seq;
        std::coroutine_handle<> h;
    };

    struct alignas(64) PerShard
    {
        std::atomic<Tick> clock{0};
        std::atomic<std::uint64_t> release{0};
        EventQueue *eq = nullptr;
        std::vector<SyncOp> ops;
    };

    void runPhase(Tick u, const int *parts, int nparts);

    std::vector<std::unique_ptr<PerShard>> per_;
    /** Rendezvous bookkeeping (see file comment). Guarded by mu_. */
    std::mutex mu_;
    /** parked_[s]: tick shard s is registered at, or kNever. */
    std::vector<Tick> parked_;
    /** All phases at ticks < phaseDone_ have completed. */
    Tick phaseDone_ = 0;
    /** Per-node monotonic sequence numbers for canonical op order
     *  (each node is written only by its owning shard / the executor
     *  while that shard is parked). */
    std::vector<std::uint64_t> nodeSeq_;
    std::atomic<Tick> execTick_{EventQueue::kNever};
    int shards_ = 0;
    /** Shards currently inside syncPhase (see anyParked()). */
    std::atomic<int> parkedHint_{0};
    /** Phases executed. Written by executors only; consecutive
     *  executors are ordered through mu_ (phaseDone_ handoff). */
    std::uint64_t phasesRun_ = 0;
    /** Round-snapshot scratch reused across phases (allocation-free
     *  window edges); same executor-serialized access as phasesRun_. */
    std::vector<SyncOp> batch_;
};

} // namespace flashsim

#endif // FLASHSIM_SIM_SHARD_HH_
