/**
 * @file
 * MAGIC data buffer pool.
 *
 * MAGIC stages line data in 16 on-chip, cache-line-sized buffers with
 * per-word valid bits (which is what makes transfers pipelined and
 * copy-free). We model the pool as a counting resource: a unit that
 * needs a buffer when none is available stalls (Table 3.1).
 */

#ifndef FLASHSIM_MAGIC_DATA_BUFFER_HH_
#define FLASHSIM_MAGIC_DATA_BUFFER_HH_

#include "sim/stats.hh"

namespace flashsim::magic
{

class DataBufferPool
{
  public:
    explicit DataBufferPool(int count, bool infinite = false)
        : free_(count), infinite_(infinite)
    {}

    bool
    available() const
    {
        return infinite_ || free_ > 0;
    }

    /** Claim a buffer; returns false (and counts a stall) if exhausted. */
    bool
    acquire()
    {
        if (infinite_)
            return true;
        if (free_ == 0) {
            ++stalls;
            return false;
        }
        --free_;
        return true;
    }

    void
    release()
    {
        if (!infinite_)
            ++free_;
    }

    Counter stalls = 0;

  private:
    int free_;
    bool infinite_;
};

} // namespace flashsim::magic

#endif // FLASHSIM_MAGIC_DATA_BUFFER_HH_
