/**
 * @file
 * Reproduces the Section 5.2 MAGIC data cache study:
 *
 *  - MDC miss rates across the parallel application suite (paper:
 *    0.84% overall, 1.43% read miss rate — too small to matter).
 *  - The pathological single-processor radix sort: 16 MB of keys with
 *    radix 2048 generates scattered writes whose directory headers
 *    thrash the MDC (paper: 14.9% overall MDC miss rate, 30% read miss
 *    rate, 14% slowdown vs a machine with no MDC miss penalty).
 *  - The stride argument: unit-stride streaming barely misses (1 in
 *    16 headers) while >2 KB strides miss on every header line.
 */

#include <cstdio>

#include "apps/radix.hh"
#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

struct MdcStats
{
    double missRate = 0;
    double readMissRate = 0;
};

MdcStats
mdcOf(const Machine &m)
{
    std::uint64_t reads = 0, read_misses = 0, acc = 0, misses = 0;
    for (int i = 0; i < m.numProcs(); ++i) {
        const magic::PpTimingModel *pm = m.node(i).magic().ppModel();
        if (!pm)
            continue;
        reads += pm->mdc().reads;
        read_misses += pm->mdc().readMisses;
        acc += pm->mdc().reads + pm->mdc().writes;
        misses += pm->mdc().readMisses + pm->mdc().writeMisses;
    }
    MdcStats s;
    s.missRate = acc ? 100.0 * static_cast<double>(misses) / acc : 0;
    s.readMissRate =
        reads ? 100.0 * static_cast<double>(read_misses) / reads : 0;
    return s;
}

} // namespace

int
main()
{
    std::printf("Section 5.2: MAGIC data cache behaviour\n\n");

    // Parallel suite at 1 MB: MDC misses should be negligible.
    std::printf("MDC miss rates, parallel applications (paper: 0.84%% "
                "overall / 1.43%% read):\n");
    double worst = 0;
    for (const std::string &app : apps::parallelAppNames()) {
        RunOutcome r = runApp(MachineConfig::flash(16), app);
        MdcStats s = mdcOf(*r.machine);
        worst = std::max(worst, s.missRate);
        std::printf("  %-8s overall %5.2f%%  read %5.2f%%\n", app.c_str(),
                    s.missRate, s.readMissRate);
    }
    std::printf("  (worst overall: %.2f%%)\n\n", worst);

    // Pathological radix: big data set, large radix, one processor.
    // The paper uses 16 MB and radix 2048 on one processor; we scale to
    // 4 MB (the per-node MDC covers directory state for 1 MB of local
    // data, so 4 MB of keys thrashes it the same way).
    std::printf("Pathological uniprocessor radix sort (paper: MDC 14.9%% "
                "overall, 30%% read miss rate, 14%% slowdown):\n");
    {
        apps::RadixParams rp;
        rp.keys = 1u << 20; // 4 MB of 4-byte keys
        rp.radix = 2048;
        rp.passes = 2;

        MachineConfig with = MachineConfig::flash(1);
        apps::Radix r1(rp);
        auto m1 = apps::runWorkload(with, r1);
        MdcStats s1 = mdcOf(*m1);

        MachineConfig without = with;
        without.magic.mdcMissPenalty = 0; // no MDC miss penalty
        apps::Radix r2(rp);
        auto m2 = apps::runWorkload(without, r2);

        double slow = 100.0 * (static_cast<double>(m1->executionTime()) /
                                   static_cast<double>(m2->executionTime()) -
                               1.0);
        std::printf("  MDC overall %5.2f%%  read %5.2f%%  slowdown vs "
                    "no-penalty machine %.1f%%\n\n",
                    s1.missRate, s1.readMissRate, slow);
    }

    // Stride microbenchmarks on the raw MDC model.
    std::printf("Stride argument (tag-only MDC model, 64 KB 2-way):\n");
    {
        magic::MagicCache mdc(64 * 1024, 2, 128);
        for (int i = 0; i < 4096; ++i)
            mdc.access(protocol::headerAddr(
                           static_cast<Addr>(i) * kLineSize),
                       false);
        std::printf("  unit-stride headers: %.1f%% miss (1 of 16 "
                    "expected)\n", 100.0 * mdc.missRate());
    }
    {
        magic::MagicCache mdc(64 * 1024, 2, 128);
        for (int i = 0; i < 4096; ++i)
            mdc.access(protocol::headerAddr(static_cast<Addr>(i) * 4096),
                       false);
        std::printf("  4 KB-stride headers: %.1f%% miss (~100%% "
                    "expected)\n", 100.0 * mdc.missRate());
    }
    return 0;
}
