#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace flashsim
{

std::string
vstrprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

namespace
{

void
emit(const char *prefix, const char *fmt, std::va_list args)
{
    // Serialise whole messages: sweep-runner workers log concurrently.
    static std::mutex mu;
    std::string msg = vstrprintf(fmt, args);
    std::lock_guard<std::mutex> lock(mu);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

} // namespace flashsim
