/**
 * @file
 * Workload tests: every application runs to completion on a small
 * machine, leaves the machine coherent, behaves deterministically, and
 * reproduces its paper-characteristic sharing pattern.
 */

#include <gtest/gtest.h>

#include "apps/barnes.hh"
#include "apps/fft.hh"
#include "apps/lu.hh"
#include "apps/mp3d.hh"
#include "apps/ocean.hh"
#include "apps/os_workload.hh"
#include "apps/radix.hh"
#include "apps/workload.hh"
#include "machine/report.hh"

namespace flashsim::apps
{
namespace
{

using machine::Machine;
using machine::MachineConfig;
using machine::Summary;
using machine::summarize;

/** Small problem instances so the whole suite stays fast. */
std::unique_ptr<Workload>
makeSmall(const std::string &name)
{
    if (name == "fft") {
        FftParams p;
        p.logN = 10;
        return std::make_unique<Fft>(p);
    }
    if (name == "lu") {
        LuParams p;
        p.n = 64;
        return std::make_unique<Lu>(p);
    }
    if (name == "ocean") {
        OceanParams p;
        p.n = 34;
        p.iters = 2;
        p.grids = 3;
        return std::make_unique<Ocean>(p);
    }
    if (name == "radix") {
        RadixParams p;
        p.keys = 1 << 12;
        return std::make_unique<Radix>(p);
    }
    if (name == "barnes") {
        BarnesParams p;
        p.particles = 256;
        p.steps = 2;
        return std::make_unique<Barnes>(p);
    }
    if (name == "mp3d") {
        Mp3dParams p;
        p.particles = 1024;
        p.steps = 2;
        p.cells = 256;
        return std::make_unique<Mp3d>(p);
    }
    OsParams p;
    p.tasks = 1;
    p.userLines = 32;
    p.pagesPerTask = 2;
    return std::make_unique<OsWorkload>(p);
}

class AppTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(AppTest, RunsToCompletionOnFlash)
{
    auto w = makeSmall(GetParam());
    auto m = runWorkload(MachineConfig::flash(4), *w);
    EXPECT_GT(m->executionTime(), 0u);
    Summary s = summarize(*m);
    EXPECT_GT(s.missRate, 0.0);
    EXPECT_NEAR(s.busy + s.cont + s.read + s.write + s.sync, 1.0, 1e-9);
}

TEST_P(AppTest, RunsOnIdealAndFlashIsSlower)
{
    auto w1 = makeSmall(GetParam());
    auto flash = runWorkload(MachineConfig::flash(4), *w1);
    auto w2 = makeSmall(GetParam());
    auto ideal = runWorkload(MachineConfig::ideal(4), *w2);
    EXPECT_GT(flash->executionTime(), ideal->executionTime());
    // The flexibility cost is bounded: nothing should be 3x.
    EXPECT_LT(static_cast<double>(flash->executionTime()),
              3.0 * static_cast<double>(ideal->executionTime()));
}

TEST_P(AppTest, Deterministic)
{
    auto run_once = [this] {
        auto w = makeSmall(GetParam());
        return runWorkload(MachineConfig::flash(4), *w)->executionTime();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST_P(AppTest, MachineCoherentAfterRun)
{
    auto w = makeSmall(GetParam());
    auto m = runWorkload(MachineConfig::flash(4), *w);
    // Every line any cache holds must be consistent with its home
    // directory after drain.
    for (int i = 0; i < m->numProcs(); ++i) {
        // Walk the sharer lists of every node's directory via its own
        // cached lines: sample the caches instead (cheap and sufficient
        // to catch protocol corruption).
        (void)i;
    }
    // Directory-level invariants are covered by the machine stress
    // tests; here we simply require quiescence (drain terminated) and a
    // sane handler/miss ratio.
    // Note: merged (secondary) misses attach to an existing MSHR
    // without invoking any handler, so the ratio can drop below 1 on
    // merge-heavy access patterns.
    Summary s = summarize(*m);
    EXPECT_GT(s.handlersPerMiss, 0.4);
    EXPECT_LT(s.handlersPerMiss, 12.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, AppTest,
    ::testing::Values("fft", "lu", "ocean", "radix", "barnes", "mp3d",
                      "os"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(AppFactory, MakesEveryWorkload)
{
    for (const std::string &name : allWorkloadNames()) {
        auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), name);
    }
    EXPECT_EQ(parallelAppNames().size(), 6u);
    EXPECT_DEATH((void)makeWorkload("nonesuch"), "unknown workload");
}

TEST(RadixApp, ActuallySortsTheKeys)
{
    RadixParams p;
    p.keys = 1 << 12;
    p.passes = 2;
    Radix radix(p);
    auto m = runWorkload(MachineConfig::flash(4), radix);
    (void)m;
    // After two radix-256 passes the keys are sorted by their low 16
    // bits (a stable LSD radix sort).
    const auto &keys = radix.result();
    ASSERT_EQ(keys.size(), p.keys);
    for (std::size_t i = 1; i < keys.size(); ++i)
        ASSERT_LE(keys[i - 1] & 0xffff, keys[i] & 0xffff) << i;
}

TEST(FftApp, TransposeTrafficIsDirtyAtHome)
{
    FftParams p;
    p.logN = 12;
    Fft fft(p);
    auto m = runWorkload(MachineConfig::flash(4), fft);
    Summary s = summarize(*m);
    // Table 4.1: FFT misses are dominated by "remote dirty at home".
    EXPECT_GT(s.dist.remoteDirtyHome, 0.35);
}

TEST(Mp3dApp, MigratorySharingIsThreeHop)
{
    Mp3dParams p;
    p.particles = 2048;
    p.steps = 3;
    Mp3d mp3d(p);
    auto m = runWorkload(MachineConfig::flash(4), mp3d);
    Summary s = summarize(*m);
    // Table 4.1: 84% of MP3D misses are dirty in a third node's cache
    // (at this test's 4 processors the "third node" is often the home
    // or the requester itself, so the threshold is lower than at 16).
    EXPECT_GT(s.dist.remoteDirtyRemote, 0.25);
    EXPECT_GT(s.missRate, 0.01);
}

TEST(RadixApp, PermutationLeavesLinesDirtyRemote)
{
    RadixParams p;
    p.keys = 1 << 14;
    Radix radix(p);
    auto m = runWorkload(MachineConfig::flash(4), radix);
    Summary s = summarize(*m);
    // Table 4.1: radix shows the machine's largest "local, dirty
    // remote" fraction.
    EXPECT_GT(s.dist.localDirtyRemote, 0.2);
}

TEST(OsApp, KernelTablesAreRemoteClean)
{
    OsParams p;
    p.tasks = 2;
    OsWorkload os(p);
    auto m = runWorkload(MachineConfig::flash(8), os);
    Summary s = summarize(*m);
    EXPECT_GT(s.dist.remoteClean, 0.25);
}

TEST(OceanApp, SmallCacheRaisesMissRate)
{
    OceanParams p;
    p.n = 66;
    p.iters = 2;
    Ocean big(p);
    auto mb = runWorkload(MachineConfig::flash(4, 1u << 20), big);
    Ocean small(p);
    auto ms = runWorkload(MachineConfig::flash(4, 4096), small);
    EXPECT_GT(summarize(*ms).missRate, 1.25 * summarize(*mb).missRate);
}

} // namespace
} // namespace flashsim::apps
