#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <utility>
#include <vector>

namespace flashsim
{

std::string
vstrprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

namespace
{

// Serialise whole messages (and post-mortem dumps): sweep-runner
// workers log concurrently.
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

thread_local std::function<Tick()> tickSource;
thread_local NodeId logNode = kInvalidNode;
thread_local std::vector<std::pair<int, std::function<void(std::ostream &)>>>
    postMortems;
thread_local int nextToken = 0;

std::string
contextPrefix()
{
    std::string ctx;
    if (tickSource)
        ctx += "t=" + std::to_string(tickSource());
    if (logNode != kInvalidNode) {
        if (!ctx.empty())
            ctx += " ";
        ctx += "node=" + std::to_string(logNode);
    }
    return ctx.empty() ? ctx : "[" + ctx + "] ";
}

void
emit(const char *prefix, const char *fmt, std::va_list args)
{
    std::string msg = vstrprintf(fmt, args);
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%s: %s%s\n", prefix, contextPrefix().c_str(),
                 msg.c_str());
}

[[noreturn]] void
die(const char *prefix, const char *fmt, std::va_list args)
{
    emit(prefix, fmt, args);
    if (!postMortems.empty()) {
        std::lock_guard<std::mutex> lock(logMutex());
        for (const auto &[token, fn] : postMortems)
            fn(std::cerr);
        std::cerr.flush();
    }
    std::fflush(stderr);
    std::abort();
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    die("panic", fmt, args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    die("fatal", fmt, args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
setLogTickSource(std::function<Tick()> fn)
{
    tickSource = std::move(fn);
}

void
setLogNode(NodeId node)
{
    logNode = node;
}

NodeId
currentLogNode()
{
    return logNode;
}

int
registerPostMortem(std::function<void(std::ostream &)> fn)
{
    int token = nextToken++;
    postMortems.emplace_back(token, std::move(fn));
    return token;
}

void
unregisterPostMortem(int token)
{
    for (auto it = postMortems.begin(); it != postMortems.end(); ++it) {
        if (it->first == token) {
            postMortems.erase(it);
            return;
        }
    }
}

void
runPostMortems(std::ostream &os)
{
    std::lock_guard<std::mutex> lock(logMutex());
    for (const auto &[token, fn] : postMortems)
        fn(os);
}

} // namespace flashsim
