/**
 * @file
 * Tests for the uncached fetch&op primitive: single round trip at the
 * home node, no coherence state, and a hot-counter contention
 * comparison against cached read-modify-write.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace flashsim::machine
{
namespace
{

TEST(FetchOp, LocalRoundTrip)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    auto counter = std::make_shared<int>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        co_await env.fetchOp(a);
        ++*counter;
    });
    m.drain();
    EXPECT_EQ(*counter, 1);
    // The service ran at home node 0 as one word-granular RMW.
    using protocol::HandlerId;
    EXPECT_EQ(m.node(0).magic().handlerCount[static_cast<int>(
                  HandlerId::FetchOpService)], 1u);
    EXPECT_EQ(m.node(0).magic().memory().rmws, 1u);
}

TEST(FetchOp, RemoteRoundTrip)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    auto done_at = std::make_shared<Tick>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 1)
            co_return;
        co_await env.fetchOp(a);
        *done_at = env.proc().cursor();
    });
    m.drain();
    // One network round trip plus the home memory access.
    EXPECT_GT(*done_at, 2u * 22u);
    EXPECT_LT(*done_at, 200u);
    using protocol::HandlerId;
    EXPECT_EQ(m.node(0).magic().handlerCount[static_cast<int>(
                  HandlerId::FetchOpService)], 1u);
    EXPECT_EQ(m.node(1).magic().handlerCount[static_cast<int>(
                  HandlerId::FetchOpAck)], 1u);
}

TEST(FetchOp, LeavesNoCoherenceState)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int i = 0; i < 4; ++i)
            co_await env.fetchOp(a);
    });
    m.drain();
    const auto &dir = m.node(0).magic().directory();
    EXPECT_FALSE(dir.header(a).dirty);
    EXPECT_EQ(dir.countSharers(a), 0);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(m.node(i).cache().state(a),
                  cpu::Cache::State::Invalid);
}

TEST(FetchOp, HostCountExactUnderContention)
{
    MachineConfig cfg = MachineConfig::flash(8);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    auto counter = std::make_shared<int>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int i = 0; i < 10; ++i) {
            co_await env.fetchOp(a);
            ++*counter; // host-side op applied on completion
            co_await env.busy(32);
        }
    });
    m.drain();
    EXPECT_EQ(*counter, 80);
    EXPECT_EQ(m.node(0).magic().nacksSent, 0u); // no coherence races
}

TEST(FetchOp, BeatsCachedRmwOnHotCounter)
{
    // Eight processors hammer one counter. Cached read-modify-write
    // ping-pongs the line (invals, 3-hop transfers, NACK retries);
    // fetch&op serializes cleanly at the home memory.
    auto run_once = [](bool use_fetchop) {
        MachineConfig cfg = MachineConfig::flash(8);
        Machine m(cfg);
        Addr a = m.alloc(kLineSize, 0);
        m.run([=](tango::Env &env) -> tango::Task {
            co_await env.busy(0);
            for (int i = 0; i < 20; ++i) {
                if (use_fetchop) {
                    co_await env.fetchOp(a);
                } else {
                    co_await env.read(a);
                    co_await env.write(a);
                }
                co_await env.busy(64);
            }
        });
        return m.executionTime();
    };
    Tick cached = run_once(false);
    Tick fop = run_once(true);
    EXPECT_LT(fop, cached);
}

} // namespace
} // namespace flashsim::machine
