/**
 * @file
 * Unit tests for the MAGIC pipeline itself: dispatch serialization,
 * speculative memory initiation (inbox-pipelined and disabled), local
 * loopback, MIC cold misses, occupancy accounting, and the ideal
 * machine's zero-time behavior. Driven through a minimal two-node
 * machine so the protocol and cache layers behave normally.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace flashsim::machine
{
namespace
{

tango::Task
singleRead(tango::Env &env, Addr a, int reader)
{
    co_await env.busy(0);
    if (env.id() == reader)
        co_await env.read(a);
}

TEST(MagicTest, SpeculativeReadIssuedForLocalGet)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([&](tango::Env &env) { return singleRead(env, a, 0); });
    m.drain();
    EXPECT_EQ(m.node(0).magic().specIssued, 1u);
    EXPECT_EQ(m.node(0).magic().specUseless, 0u);
}

TEST(MagicTest, UselessSpeculativeReadCounted)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([&](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1) {
            co_await env.write(a); // dirty at node 1
        } else {
            co_await env.busy(40000);
            co_await env.read(a); // GET finds line dirty remote
        }
    });
    m.drain();
    // The GET's speculative read was useless (data was dirty remotely);
    // the write's speculative read was useful.
    EXPECT_GE(m.node(0).magic().specUseless, 1u);
}

TEST(MagicTest, DisablingSpeculationRemovesUselessReads)
{
    MachineConfig cfg = MachineConfig::flash(2);
    cfg.magic.speculation = false;
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([&](tango::Env &env) { return singleRead(env, a, 0); });
    m.drain();
    EXPECT_EQ(m.node(0).magic().specIssued, 0u);
    // The read still completed (the PP initiated the access itself).
    EXPECT_EQ(m.node(0).cache().readMisses, 1u);
}

TEST(MagicTest, SpeculationDisabledIsSlowerForLocalReads)
{
    auto run_one = [](bool spec) {
        MachineConfig cfg = MachineConfig::flash(2);
        cfg.magic.speculation = spec;
        Machine m(cfg);
        Addr base = m.alloc(64 * kLineSize, 0);
        return m.run([base](tango::Env &env) -> tango::Task {
            co_await env.busy(0);
            if (env.id() != 0)
                co_return;
            for (int i = 0; i < 64; ++i)
                co_await env.read(base + static_cast<Addr>(i) *
                                             kLineSize);
        });
    };
    Tick with = run_one(true);
    Tick without = run_one(false);
    EXPECT_GT(without, with);
}

TEST(MagicTest, PpSerializesHandlers)
{
    // Two processors hammer one home node: the PP must serialize, so
    // its busy time must be near the sum of its handler costs and the
    // queue stall counter must be nonzero under load.
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    Addr base = m.alloc(128 * kLineSize, 0);
    m.run([base](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0)
            co_return;
        for (int i = 0; i < 40; ++i)
            co_await env.read(base +
                              static_cast<Addr>((env.id() - 1) * 40 + i) *
                                  kLineSize);
    });
    m.drain();
    EXPECT_GT(m.node(0).magic().queueStallCycles, 0u);
    Cycles handler_sum = 0;
    for (Counter c : m.node(0).magic().handlerCycles)
        handler_sum += c;
    EXPECT_EQ(m.node(0).magic().ppOcc.busyCycles(), handler_sum);
}

TEST(MagicTest, IdealMachineHasZeroPpTime)
{
    MachineConfig cfg = MachineConfig::ideal(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([&](tango::Env &env) { return singleRead(env, a, 1); });
    m.drain();
    EXPECT_EQ(m.node(0).magic().ppOcc.busyCycles(), 0u);
    EXPECT_GT(m.node(0).magic().invocations, 0u);
}

TEST(MagicTest, MicColdMissesOncePerHandler)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr base = m.alloc(8 * kLineSize, 0);
    m.run([base](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        for (int i = 0; i < 8; ++i)
            co_await env.read(base + static_cast<Addr>(i) * kLineSize);
    });
    m.drain();
    // Eight identical local GETs share one handler program: exactly one
    // cold MIC miss.
    EXPECT_EQ(m.node(0).magic().micColdMisses, 1u);
}

TEST(MagicTest, HandlerCountsMatchTraffic)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0); // homed at node 0
    m.run([&](tango::Env &env) { return singleRead(env, a, 1); });
    m.drain();
    using protocol::HandlerId;
    const auto &home = m.node(0).magic();
    const auto &req = m.node(1).magic();
    EXPECT_EQ(home.handlerCount[static_cast<int>(
                  HandlerId::ServeReadMemory)], 1u);
    EXPECT_EQ(req.handlerCount[static_cast<int>(HandlerId::FwdToHome)],
              1u);
    EXPECT_EQ(req.handlerCount[static_cast<int>(HandlerId::ReplyToProc)],
              1u);
    EXPECT_EQ(home.readClasses.remoteClean, 1u);
}

TEST(MagicTest, MemoryOccupiedByProtocolData)
{
    // A stream of misses over many distinct lines forces MDC fills,
    // which must show up as protocol accesses on the memory controller.
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    // 4 MB of lines: directory headers span 256 KB > the 64 KB MDC.
    Addr base = m.alloc(Addr{1} << 22, 0);
    m.run([base](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() != 0)
            co_return;
        for (int i = 0; i < 2048; ++i)
            co_await env.read(base + static_cast<Addr>(i) * 16 *
                                         kLineSize);
    });
    m.drain();
    EXPECT_GT(m.node(0).magic().memory().protocolAccesses, 50u);
}

TEST(MagicTest, TraceLineEnvDoesNotCrash)
{
    // Smoke-test the FS_TRACE_LINE debugging aid.
    setenv("FS_TRACE_LINE", "8192", 1);
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([&](tango::Env &env) { return singleRead(env, a, 0); });
    m.drain();
    unsetenv("FS_TRACE_LINE");
    SUCCEED();
}

} // namespace
} // namespace flashsim::machine
