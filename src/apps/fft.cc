#include "apps/fft.hh"

#include "sim/logging.hh"

namespace flashsim::apps
{

namespace
{
constexpr Addr kComplexBytes = 16;
} // namespace

void
Fft::setup(machine::Machine &m)
{
    nprocs_ = m.numProcs();
    side_ = 1 << (p_.logN / 2);
    if ((1 << p_.logN) != side_ * side_)
        fatal("Fft: logN must be even");
    rowsPerProc_ = side_ / nprocs_;
    if (rowsPerProc_ == 0)
        fatal("Fft: fewer rows than processors");

    const Addr block_bytes =
        static_cast<Addr>(rowsPerProc_) * side_ * kComplexBytes;
    for (int p = 0; p < nprocs_; ++p) {
        aBase_.push_back(m.alloc(block_bytes, static_cast<NodeId>(p)));
        bBase_.push_back(m.alloc(block_bytes, static_cast<NodeId>(p)));
    }
    bar_ = m.makeBarrier();
}

Addr
Fft::elem(int row, int col) const
{
    int owner = row / rowsPerProc_;
    int local_row = row % rowsPerProc_;
    return aBase_[static_cast<std::size_t>(owner)] +
           (static_cast<Addr>(local_row) * side_ + col) * kComplexBytes;
}

tango::Task
Fft::run(tango::Env &env)
{
    co_await env.busy(0);
    const int p = env.id();
    const int row0 = p * rowsPerProc_;
    const Addr my_b = bBase_[static_cast<std::size_t>(p)];

    // Phase 1: 1-D FFTs on my rows of A (all local once resident; the
    // butterfly passes re-walk each row, so with small caches these
    // become local capacity misses, which dominate Table 4.2's small-
    // cache miss mix).
    for (int pass = 0; pass < p_.passesPerFft; ++pass) {
        for (int r = 0; r < rowsPerProc_; ++r) {
            for (int c = 0; c < side_; ++c) {
                Addr a = elem(row0 + r, c);
                co_await env.read(a);
                co_await env.busy(p_.instrsPerPoint);
                co_await env.write(a);
            }
        }
    }
    co_await env.barrier(bar_);

    // Phase 2: transpose A into B. B_local[r][c] = A[c][row0 + r]; the
    // source column walks every other processor's rows, which are dirty
    // in their caches. As in SPLASH-2, each processor starts with a
    // different source block so the home nodes are not hammered in
    // lockstep.
    for (int ob = 0; ob < nprocs_; ++ob) {
        int owner = (p + 1 + ob) % nprocs_;
        for (int r = 0; r < rowsPerProc_; ++r) {
            for (int lc = 0; lc < rowsPerProc_; ++lc) {
                int c = owner * rowsPerProc_ + lc;
                co_await env.read(elem(c, row0 + r));
                co_await env.write(my_b +
                                   (static_cast<Addr>(r) * side_ + c) *
                                       kComplexBytes);
                co_await env.busy(14);
            }
        }
    }
    co_await env.barrier(bar_);

    // Phase 3: 1-D FFTs on my rows of B, with the twiddle multiply.
    for (int pass = 0; pass < p_.passesPerFft; ++pass) {
        for (int r = 0; r < rowsPerProc_; ++r) {
            for (int c = 0; c < side_; ++c) {
                Addr a = my_b +
                         (static_cast<Addr>(r) * side_ + c) *
                             kComplexBytes;
                co_await env.read(a);
                co_await env.busy(p_.instrsPerPoint + 4);
                co_await env.write(a);
            }
        }
    }
    co_await env.barrier(bar_);

    // Phase 4: transpose back into A, staggered the same way.
    for (int ob = 0; ob < nprocs_; ++ob) {
        int owner = (p + 1 + ob) % nprocs_;
        for (int r = 0; r < rowsPerProc_; ++r) {
            for (int lc = 0; lc < rowsPerProc_; ++lc) {
                int c = owner * rowsPerProc_ + lc;
                Addr src =
                    bBase_[static_cast<std::size_t>(owner)] +
                    (static_cast<Addr>(lc) * side_ + row0 + r) *
                        kComplexBytes;
                co_await env.read(src);
                co_await env.write(elem(row0 + r, c));
                co_await env.busy(14);
            }
        }
    }
    co_await env.barrier(bar_);
}

} // namespace flashsim::apps
