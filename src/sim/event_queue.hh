/**
 * @file
 * The event-driven simulation core.
 *
 * FlashLite (the paper's simulator) is a multi-threaded event-driven
 * memory-system simulator. Here every hardware unit schedules closures on
 * an EventQueue; ties are broken by insertion order so simulation is
 * fully deterministic. A sharded run (see sim/shard.hh) gives each shard
 * of nodes its own EventQueue and advances them in conservative time
 * windows; mesh deliveries travel in a separate *network lane* ordered
 * by a (source node, per-source sequence) key so that the same delivery
 * order falls out whether a message stayed on its own shard or was
 * staged across a window edge.
 */

#ifndef FLASHSIM_SIM_EVENT_QUEUE_HH_
#define FLASHSIM_SIM_EVENT_QUEUE_HH_

#include <array>
#include <cstdint>
#include <vector>

#include "sim/inline_callback.hh"
#include "sim/types.hh"

namespace flashsim
{

/**
 * Deterministic discrete-event queue.
 *
 * Events are arbitrary callables. Two events scheduled for the same tick
 * run in the order they were scheduled (FIFO), which keeps hardware
 * arbitration deterministic across runs.
 *
 * Storage is two-level, sized for the simulator's delay profile (almost
 * every latency is a handful of cycles, far-future events are rare):
 *
 *  - a power-of-two ring of per-tick buckets covering the next
 *    kRingSize ticks. Each bucket is an append-only FIFO vector, so
 *    schedule() into the window is push_back into recycled storage —
 *    O(1), allocation-free in steady state, and same-tick FIFO order is
 *    the storage order itself;
 *  - a binary min-heap holding the overflow (events >= kRingSize ticks
 *    out). When the clock reaches an overflow event's tick it is
 *    promoted into that tick's bucket, merged by sequence number so the
 *    global (tick, seq) execution order is identical to a single heap.
 *
 * Callbacks are InlineCallback: stored inline in the event, with a
 * compile-time size cap instead of std::function's silent heap fallback
 * — schedule() never allocates once bucket capacity has warmed up.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Ticks covered by the near-term bucket ring (power of two). */
    static constexpr std::size_t kRingSize = 1024;

    /** Sentinel for "no pending event" (also used by the shard
     *  scheduler as "no pending tick"). */
    static constexpr Tick kNever = ~Tick{0};

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time in system clock cycles. */
    Tick now() const { return _now; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void
    schedule(Cycles delay, Callback cb)
    {
        scheduleAt(_now + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute time @p when (must be >= now()). */
    void scheduleAt(Tick when, Callback cb);

    /**
     * Schedule a network-lane delivery at @p when (must be > now();
     * a degenerate zero-latency delivery falls back to the normal
     * lane). Within a tick every network-lane event runs before any
     * normal event, ordered by (@p src, @p srcSeq) — a canonical key
     * independent of which shard scheduled it, so sharded and
     * single-threaded runs interleave deliveries identically.
     */
    void scheduleNet(Tick when, NodeId src, std::uint64_t srcSeq,
                     Callback cb);

    /** True when no events remain. */
    bool
    empty() const
    {
        return ringCount_ == 0 && overflow_.empty() && netCount_ == 0 &&
               netOverflow_.empty();
    }

    /** Number of pending events. */
    std::size_t
    pending() const
    {
        return ringCount_ + overflow_.size() + netCount_ +
               netOverflow_.size();
    }

    /**
     * Earliest pending tick across all lanes (normal, network, and the
     * timer fires riding the normal lane), or kNever. O(1) when the
     * cached horizon is warm (see nextCache_) — this is the query the
     * sharded run loop and the window-edge horizon computation hammer.
     * Armed timers bound it like any other event; a lazily cancelled
     * timer leaves its stale fire event behind, which can only make the
     * answer conservatively early, never late.
     */
    Tick nextTick() const;

    /**
     * Advance to tick @p t (== nextTick()) and run everything due then:
     * first the network lane in (src, seq) order, then normal events in
     * FIFO order, including same-tick events they schedule.
     * @return number of events executed.
     */
    std::uint64_t drainTick(Tick t);

    /**
     * Run events until the queue drains or @p limit ticks have elapsed.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = ~Tick{0});

    /** Execute exactly one event, if any; returns true if one ran. */
    bool step();

    /** Drop all pending events and reset time to zero. */
    void reset();

    // -- Cancellable / re-armable timers ------------------------------------

    /** Sentinel slot index for an invalid TimerId. */
    static constexpr std::uint32_t kNoTimerSlot = ~std::uint32_t{0};

    /**
     * Handle to a timer slot. Default-constructed handles are invalid.
     * A handle is invalidated by cancelTimer() (never by the timer
     * merely firing: the slot and its stored callback stay allocated so
     * the fire handler can rearmTimer() itself — the retransmit
     * pattern).
     */
    struct TimerId
    {
        std::uint32_t slot = kNoTimerSlot;
        std::uint32_t gen = 0;

        bool valid() const { return slot != kNoTimerSlot; }
    };

    /**
     * Arm a timer: run @p cb at absolute tick @p when, on the normal
     * lane. Unlike a bare scheduleAt, the pending fire can be cancelled
     * or moved. Cancellation is lazy — the queued event stays where it
     * is and no-ops when reached — so arm/cancel/rearm are each O(1)
     * plus at most one ordinary schedule.
     */
    TimerId armTimer(Tick when, Callback cb);

    /**
     * Re-schedule @p id's stored callback to fire at @p when instead,
     * superseding any pending fire. Legal from within the timer's own
     * callback (rearm-on-fire) and for a timer that already fired.
     * @return false on a stale or invalid handle.
     */
    bool rearmTimer(TimerId id, Tick when);

    /**
     * Cancel @p id: any pending fire becomes a no-op and the slot is
     * recycled. The stored callback is destroyed lazily when the slot
     * is next reused. Safe on stale/invalid handles.
     * @return true when a fire was actually pending.
     */
    bool cancelTimer(TimerId id);

    /** True while @p id names a live timer with a pending fire. */
    bool timerArmed(TimerId id) const;

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * One tick's events. head indexes the next unexecuted event;
     * entries before it have already run (their storage is recycled
     * when the bucket drains). All live entries share the same tick:
     * the window [now, now + kRingSize) maps each ring slot to exactly
     * one tick, and a slot is fully drained before the window wraps
     * back onto it.
     */
    struct Bucket
    {
        std::vector<Event> events;
        std::size_t head = 0;
    };

    /**
     * A network-lane event: a mesh delivery keyed for canonical
     * within-tick ordering. src/seq come from the mesh (per-source
     * monotonic send counters), so the key is a property of the
     * *message*, not of which queue it was scheduled on.
     */
    struct NetEvent
    {
        Tick when;
        NodeId src;
        std::uint64_t seq;
        Callback cb;
    };

    struct NetLater
    {
        bool
        operator()(const NetEvent &a, const NetEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.src != b.src)
                return a.src > b.src;
            return a.seq > b.seq;
        }
    };

    /** One tick's network-lane events, kept sorted by (src, seq). */
    struct NetBucket
    {
        std::vector<NetEvent> events;
        std::size_t head = 0;
    };

    /**
     * Timer slot: callback storage plus the validity counters that make
     * lazy cancellation work. gen invalidates *handles* (bumped when
     * the slot is freed for reuse); armSeq invalidates *in-flight fire
     * events* (bumped by every arm/rearm/cancel, so a superseded fire
     * no-ops when it runs).
     */
    struct TimerSlot
    {
        std::uint32_t gen = 0;
        std::uint64_t armSeq = 0;
        bool armed = false;
        Callback cb;
    };

    static constexpr std::size_t kRingMask = kRingSize - 1;
    static constexpr std::size_t kBitWords = kRingSize / 64;

    Bucket &bucketFor(Tick when) { return ring_[when & kRingMask]; }

    void markLive(Tick when);
    void clearLive(Tick when);
    void netMarkLive(Tick when);
    void netClearLive(Tick when);

    /** Recycle a fully executed bucket's storage before reuse. */
    static void
    freshen(Bucket &b)
    {
        if (b.head != 0 && b.head == b.events.size()) {
            b.events.clear();
            b.head = 0;
        }
    }

    /** Recompute the earliest pending tick (bitmap scans + heap
     *  fronts); nextTick() caches the result. */
    Tick computeNextTick() const;
    /** Earliest pending tick in the ring, or kNever. */
    Tick nextRingTick() const;
    /** Earliest pending network-lane tick in its ring, or kNever. */
    Tick nextNetRingTick() const;
    /** Move overflow events for tick @p t into its bucket, seq-merged. */
    void promoteOverflow(Tick t);
    /** Move network-lane overflow for tick @p t into its bucket. */
    void promoteNetOverflow(Tick t);
    /** Sorted insert of @p e into its tick's network bucket. */
    void insertNet(NetEvent e);
    /** Queue the lazy-cancel fire wrapper for timer @p slot. */
    void scheduleTimerFire(std::uint32_t slot, Tick when);

    Tick _now = 0;
    std::uint64_t nextSeq_ = 0;

    std::array<Bucket, kRingSize> ring_{};
    /** Occupancy bitmap: bit i set iff ring_[i] has unexecuted events. */
    std::array<std::uint64_t, kBitWords> live_{};
    std::size_t ringCount_ = 0;

    /** Overflow min-heap (std::push_heap/std::pop_heap over a vector,
     *  ordered by Later so front() is the earliest event). */
    std::vector<Event> overflow_;

    /** Network lane: same two-level shape as the normal lane, but each
     *  bucket is sorted by (src, seq) instead of FIFO. */
    std::array<NetBucket, kRingSize> netRing_{};
    std::array<std::uint64_t, kBitWords> netLive_{};
    std::size_t netCount_ = 0;
    std::vector<NetEvent> netOverflow_;

    /** Timer slots + freelist of cancelled slots awaiting reuse. */
    std::vector<TimerSlot> timers_;
    std::vector<std::uint32_t> timerFree_;

    /**
     * Cached nextTick(). Exact-min maintained on schedule (an earlier
     * insert lowers it); invalidated for the duration of a drain/step
     * (callbacks schedule freely without touching it) and recomputed
     * once when the tick completes. mutable: logically const — reads
     * from another thread happen only at window edges, under the run
     * barrier's happens-before (see machine/machine.cc).
     */
    mutable Tick nextCache_ = kNever;
    mutable bool nextCacheValid_ = true;
};

} // namespace flashsim

#endif // FLASHSIM_SIM_EVENT_QUEUE_HH_
