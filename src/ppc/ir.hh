/**
 * @file
 * Handler intermediate representation and builder.
 *
 * Protocol handlers are written once against this builder API (the
 * analogue of the paper's C handlers compiled with the gcc port). The
 * compiler then emits either the optimized PP program (special
 * instructions + statically scheduled dual-issue, like PPtwine) or the
 * baseline program (special instructions expanded into the DLX
 * substitution sequences of Table 5.3, single-issue) for the Section 5.3
 * ablation.
 *
 * Registers in the IR are physical PP registers handed out sequentially
 * by the builder; handlers are small enough that no spilling is needed
 * (the builder panics if a handler exceeds the allocatable range).
 * Registers r26..r29 are reserved as scratch for the DLX expansion pass.
 */

#ifndef FLASHSIM_PPC_IR_HH_
#define FLASHSIM_PPC_IR_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "ppisa/instruction.hh"

namespace flashsim::ppc
{

using ppisa::Op;

/** An unscheduled IR instruction; branch targets are label ids. */
struct IrInstr
{
    Op op = Op::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::int64_t imm = 0;
    std::uint8_t lo = 0;
    std::uint8_t width = 0;
    int label = -1; ///< branch target label, or -1

    /** Convert to an executable instruction (imm <- resolved target). */
    ppisa::Instr toInstr(std::int64_t resolved_target) const;
};

/** A register handle handed out by the builder. */
struct Reg
{
    std::uint8_t id = 0;
};

/** A branch-target handle. */
struct Label
{
    int id = -1;
};

/** First scratch register reserved for the expansion pass. */
inline constexpr std::uint8_t kScratchBase = 26;
/** Number of reserved scratch registers. */
inline constexpr std::uint8_t kNumScratch = 4;

/**
 * A handler function under construction: a linear instruction list with
 * labels bound to positions.
 */
class IrFunction
{
  public:
    explicit IrFunction(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    const std::vector<IrInstr> &instrs() const { return instrs_; }
    /** Position each label is bound to (index into instrs()). */
    const std::vector<int> &labelPos() const { return labelPos_; }

    // -- Register and label management ------------------------------------
    /** Allocate a fresh register (r1 upward, below the scratch range). */
    Reg reg();
    Label label();
    /** Bind @p l to the current end of the instruction stream. */
    void bind(Label l);

    // -- ALU ----------------------------------------------------------------
    void add(Reg d, Reg a, Reg b) { rrr(Op::Add, d, a, b); }
    void sub(Reg d, Reg a, Reg b) { rrr(Op::Sub, d, a, b); }
    void and_(Reg d, Reg a, Reg b) { rrr(Op::And, d, a, b); }
    void or_(Reg d, Reg a, Reg b) { rrr(Op::Or, d, a, b); }
    void xor_(Reg d, Reg a, Reg b) { rrr(Op::Xor, d, a, b); }
    void slt(Reg d, Reg a, Reg b) { rrr(Op::Slt, d, a, b); }
    void sltu(Reg d, Reg a, Reg b) { rrr(Op::Sltu, d, a, b); }
    void addi(Reg d, Reg a, std::int64_t imm) { rri(Op::Addi, d, a, imm); }
    void andi(Reg d, Reg a, std::int64_t imm) { rri(Op::Andi, d, a, imm); }
    void ori(Reg d, Reg a, std::int64_t imm) { rri(Op::Ori, d, a, imm); }
    void xori(Reg d, Reg a, std::int64_t imm) { rri(Op::Xori, d, a, imm); }
    void slli(Reg d, Reg a, std::int64_t imm) { rri(Op::Slli, d, a, imm); }
    void srli(Reg d, Reg a, std::int64_t imm) { rri(Op::Srli, d, a, imm); }
    void srai(Reg d, Reg a, std::int64_t imm) { rri(Op::Srai, d, a, imm); }
    void slti(Reg d, Reg a, std::int64_t imm) { rri(Op::Slti, d, a, imm); }
    /** d = imm (pseudo-op: addi d, r0, imm). */
    void li(Reg d, std::int64_t imm) { rri(Op::Addi, d, Reg{0}, imm); }
    /** d = a (pseudo-op: addi d, a, 0). */
    void mv(Reg d, Reg a) { rri(Op::Addi, d, a, 0); }

    // -- Memory --------------------------------------------------------------
    void ld(Reg d, Reg base, std::int64_t off);
    void sd(Reg base, std::int64_t off, Reg val);

    // -- Control -------------------------------------------------------------
    void beq(Reg a, Reg b, Label l);
    void bne(Reg a, Reg b, Label l);
    void j(Label l);
    void halt();

    // -- FLASH special instructions -------------------------------------------
    void ffs(Reg d, Reg a) { rri(Op::Ffs, d, a, 0); }
    void bbs(Reg a, unsigned bit, Label l);
    void bbc(Reg a, unsigned bit, Label l);
    void ext(Reg d, Reg a, unsigned lo, unsigned width);
    void ins(Reg d, Reg a, unsigned lo, unsigned width);
    void orfi(Reg d, Reg a, unsigned lo, unsigned width);
    void andfi(Reg d, Reg a, unsigned lo, unsigned width);

    // -- MAGIC I/O -------------------------------------------------------------
    void send(int msg_type, Reg dest, Reg arg);

    /** Validate: all labels bound, registers in range; panics on error. */
    void validate() const;

  private:
    void rrr(Op op, Reg d, Reg a, Reg b);
    void rri(Op op, Reg d, Reg a, std::int64_t imm);

    std::string name_;
    std::vector<IrInstr> instrs_;
    std::vector<int> labelPos_;
    std::uint8_t nextReg_ = 1;
};

} // namespace flashsim::ppc

#endif // FLASHSIM_PPC_IR_HH_
