#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace flashsim
{

void
EventQueue::schedule(Cycles delay, Callback cb)
{
    scheduleAt(_now + delay, std::move(cb));
}

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < _now)
        panic("event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    events_.push_back(Event{when, nextSeq_++, std::move(cb)});
    std::push_heap(events_.begin(), events_.end(), Later{});
}

EventQueue::Event
EventQueue::popNext()
{
    std::pop_heap(events_.begin(), events_.end(), Later{});
    Event ev = std::move(events_.back());
    events_.pop_back();
    return ev;
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    Event ev = popNext();
    _now = ev.when;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!events_.empty() && events_.front().when <= limit) {
        step();
        ++executed;
    }
    if (_now < limit && limit != ~Tick{0})
        _now = limit;
    return executed;
}

void
EventQueue::reset()
{
    events_.clear();
    _now = 0;
    nextSeq_ = 0;
}

} // namespace flashsim
