/**
 * @file
 * The event-driven simulation core.
 *
 * FlashLite (the paper's simulator) is a multi-threaded event-driven
 * memory-system simulator. Here every hardware unit schedules closures on
 * a single global-order EventQueue; ties are broken by insertion order so
 * simulation is fully deterministic.
 */

#ifndef FLASHSIM_SIM_EVENT_QUEUE_HH_
#define FLASHSIM_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace flashsim
{

/**
 * Deterministic discrete-event queue.
 *
 * Events are arbitrary callables. Two events scheduled for the same tick
 * run in the order they were scheduled (FIFO), which keeps hardware
 * arbitration deterministic across runs.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time in system clock cycles. */
    Tick now() const { return _now; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void schedule(Cycles delay, Callback cb);

    /** Schedule @p cb at absolute time @p when (must be >= now()). */
    void scheduleAt(Tick when, Callback cb);

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /**
     * Run events until the queue drains or @p limit ticks have elapsed.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = ~Tick{0});

    /** Execute exactly one event, if any; returns true if one ran. */
    bool step();

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop the earliest event off the heap and return it by value. */
    Event popNext();

    Tick _now = 0;
    std::uint64_t nextSeq_ = 0;
    /** Binary heap ordered by Later (front() is the earliest event);
     *  maintained with std::push_heap/std::pop_heap so elements can be
     *  moved out safely, unlike std::priority_queue::top(). */
    std::vector<Event> events_;
};

} // namespace flashsim

#endif // FLASHSIM_SIM_EVENT_QUEUE_HH_
