/**
 * @file
 * Baseline-PP expansion pass: rewrite each FLASH special instruction into
 * the DLX substitution sequence of Table 5.3. The resulting code uses the
 * reserved scratch registers r26..r29 and may introduce new labels (the
 * find-first-set loop).
 */

#include <cstdint>

#include "ppc/compiler.hh"
#include "sim/logging.hh"

namespace flashsim::ppc
{

namespace
{

constexpr std::uint8_t kS0 = kScratchBase;
constexpr std::uint8_t kS1 = kScratchBase + 1;

/** Helper that appends expansion instructions and manages new labels. */
class Expander
{
  public:
    explicit Expander(LinearCode &out) : out_(out) {}

    void
    emit(IrInstr in)
    {
        out_.instrs.push_back(in);
    }

    void
    rri(Op op, std::uint8_t rd, std::uint8_t rs, std::int64_t imm)
    {
        IrInstr in;
        in.op = op;
        in.rd = rd;
        in.rs = rs;
        in.imm = imm;
        emit(in);
    }

    void
    rrr(Op op, std::uint8_t rd, std::uint8_t rs, std::uint8_t rt)
    {
        IrInstr in;
        in.op = op;
        in.rd = rd;
        in.rs = rs;
        in.rt = rt;
        emit(in);
    }

    void
    branch(Op op, std::uint8_t rs, std::uint8_t rt, int label)
    {
        IrInstr in;
        in.op = op;
        in.rs = rs;
        in.rt = rt;
        in.label = label;
        emit(in);
    }

    int
    newLabel()
    {
        out_.labelPos.push_back(-1);
        return static_cast<int>(out_.labelPos.size()) - 1;
    }

    void
    bindHere(int label)
    {
        out_.labelPos[label] = static_cast<int>(out_.instrs.size());
    }

    /** Materialize fieldMask(lo, width) into @p dest. Cost 1-4 instrs. */
    void
    buildMask(std::uint8_t dest, unsigned lo, unsigned width)
    {
        std::uint64_t mask = ppisa::fieldMask(lo, width);
        if (mask < 0x8000) {
            rri(Op::Addi, dest, 0, static_cast<std::int64_t>(mask));
            return;
        }
        rri(Op::Addi, dest, 0, 1);
        rri(Op::Slli, dest, dest, static_cast<std::int64_t>(width));
        rri(Op::Addi, dest, dest, -1);
        if (lo)
            rri(Op::Slli, dest, dest, static_cast<std::int64_t>(lo));
    }

  private:
    LinearCode &out_;
};

void
expandFfs(const IrInstr &in, Expander &e)
{
    // d = index of lowest set bit of rs; 64 when rs == 0.
    // Loop cost ~ 2 + 5 cycles per bit checked (paper: 2 + 4).
    int check = e.newLabel();
    int body = e.newLabel();
    int done = e.newLabel();
    e.rri(Op::Addi, kS0, in.rs, 0);
    e.rri(Op::Addi, in.rd, 0, 0);
    e.bindHere(check);
    e.branch(Op::Bne, kS0, 0, body);
    e.rri(Op::Addi, in.rd, 0, 64);
    e.branch(Op::J, 0, 0, done);
    e.bindHere(body);
    e.rri(Op::Andi, kS1, kS0, 1);
    e.branch(Op::Bne, kS1, 0, done);
    e.rri(Op::Srli, kS0, kS0, 1);
    e.rri(Op::Addi, in.rd, in.rd, 1);
    e.branch(Op::J, 0, 0, check);
    e.bindHere(done);
}

void
expandBranchOnBit(const IrInstr &in, Expander &e)
{
    // 2 instructions when the bit fits an andi immediate, else 3
    // ("2 or 4" in Table 5.3; our immediates are a little wider).
    Op br = in.op == Op::Bbs ? Op::Bne : Op::Beq;
    if (in.lo < 15) {
        e.rri(Op::Andi, kS0, in.rs, std::int64_t{1} << in.lo);
    } else {
        e.rri(Op::Srli, kS0, in.rs, in.lo);
        e.rri(Op::Andi, kS0, kS0, 1);
    }
    e.branch(br, kS0, 0, in.label);
}

void
expandExt(const IrInstr &in, Expander &e)
{
    unsigned total = in.lo + in.width;
    if (total > 64)
        panic("expandExt: bad field <%u,%u>", in.lo, in.width);
    e.rri(Op::Slli, in.rd, in.rs, 64 - total);
    e.rri(Op::Srli, in.rd, in.rd, 64 - in.width);
}

void
expandOrfi(const IrInstr &in, Expander &e)
{
    std::uint64_t mask = ppisa::fieldMask(in.lo, in.width);
    if (mask < 0x8000) {
        e.rri(Op::Ori, in.rd, in.rs, static_cast<std::int64_t>(mask));
        return;
    }
    e.buildMask(kS0, in.lo, in.width);
    e.rrr(Op::Or, in.rd, in.rs, kS0);
}

void
expandAndfi(const IrInstr &in, Expander &e)
{
    // rd = rs & ~mask: materialize mask, complement, and.
    e.buildMask(kS0, in.lo, in.width);
    e.rri(Op::Xori, kS0, kS0, -1);
    e.rrr(Op::And, in.rd, in.rs, kS0);
}

void
expandIns(const IrInstr &in, Expander &e)
{
    // rd = (rd & ~mask) | ((rs << lo) & mask): "two field immediates
    // followed by an or" (Table 5.3).
    e.buildMask(kS0, in.lo, in.width);
    // s1 = (rs << lo) & mask
    e.rri(Op::Slli, kS1, in.rs, in.lo);
    e.rrr(Op::And, kS1, kS1, kS0);
    // s0 = ~mask; rd = (rd & s0) | s1
    e.rri(Op::Xori, kS0, kS0, -1);
    e.rrr(Op::And, in.rd, in.rd, kS0);
    e.rrr(Op::Or, in.rd, in.rd, kS1);
}

} // namespace

LinearCode
expandSpecials(const LinearCode &code)
{
    LinearCode out;
    out.name = code.name;
    out.labelPos = code.labelPos; // positions remapped below
    Expander e(out);

    std::vector<int> newPos(code.instrs.size() + 1, -1);
    for (std::size_t i = 0; i < code.instrs.size(); ++i) {
        newPos[i] = static_cast<int>(out.instrs.size());
        const IrInstr &in = code.instrs[i];
        switch (in.op) {
          case Op::Ffs: expandFfs(in, e); break;
          case Op::Bbs:
          case Op::Bbc: expandBranchOnBit(in, e); break;
          case Op::Ext: expandExt(in, e); break;
          case Op::Orfi: expandOrfi(in, e); break;
          case Op::Andfi: expandAndfi(in, e); break;
          case Op::Ins: expandIns(in, e); break;
          default:
            out.instrs.push_back(in);
            break;
        }
    }
    newPos[code.instrs.size()] = static_cast<int>(out.instrs.size());

    // Remap the original labels to their new positions (labels created by
    // the expansion itself are already bound to output positions).
    for (std::size_t l = 0; l < code.labelPos.size(); ++l)
        out.labelPos[l] = newPos[code.labelPos[l]];
    return out;
}

} // namespace flashsim::ppc
