/**
 * @file
 * Reproduces Table 3.3 ("Memory Latencies and Occupancies, No
 * Contention") and the Figure 3.1 sub-operation walkthrough, printing
 * paper values next to measured values for FLASH and the ideal machine.
 * Also echoes the Table 3.2 sub-operation latencies the model is built
 * from.
 */

#include <cstdio>

#include "machine/runner.hh"
#include "sim/sweep.hh"

using namespace flashsim;
using namespace flashsim::machine;

namespace
{

struct Row
{
    const char *name;
    double paper_ideal;
    double paper_flash;
    double paper_occ;
    double MissLatencies::*slot;
};

const Row kRows[] = {
    {"Local read, clean in memory", 24, 27, 11,
     &MissLatencies::localClean},
    {"Local read, dirty in remote cache", 100, 143, 53,
     &MissLatencies::localDirtyRemote},
    {"Remote read, clean in home memory", 92, 111, 16,
     &MissLatencies::remoteClean},
    {"Remote read, dirty in home cache", 100, 145, 53,
     &MissLatencies::remoteDirtyHome},
    {"Remote read, dirty in 3rd node", 136, 191, 61,
     &MissLatencies::remoteDirtyRemote},
};

void
printTable32(const magic::MagicParams &p)
{
    std::printf("Table 3.2: sub-operation latencies (10 ns cycles)\n");
    std::printf("  miss detect %llu, bus transit %llu, PI in %llu, "
                "PI out %llu (ideal %llu)\n",
                (unsigned long long)p.missDetect,
                (unsigned long long)p.busTransit,
                (unsigned long long)p.piInbound,
                (unsigned long long)p.piOutbound,
                (unsigned long long)p.piOutboundIdeal);
    std::printf("  cache state retrieve %llu, cache data retrieve %llu\n",
                (unsigned long long)p.cacheStateRetrieve,
                (unsigned long long)p.cacheDataRetrieve);
    std::printf("  NI in %llu, NI out %llu, inbox arb %llu, jump table "
                "%llu, outbox %llu\n",
                (unsigned long long)p.niInbound,
                (unsigned long long)p.niOutbound,
                (unsigned long long)p.inboxArb,
                (unsigned long long)p.jumpTable,
                (unsigned long long)p.outbox);
    std::printf("  MDC miss penalty %llu, memory access %llu\n\n",
                (unsigned long long)p.mdcMissPenalty,
                (unsigned long long)p.memAccess);
}

} // namespace

int
main()
{
    MachineConfig flash_cfg = MachineConfig::flash(16);
    MachineConfig ideal_cfg = MachineConfig::ideal(16);
    printTable32(flash_cfg.magic);

    std::printf("Probing the five read-miss classes "
                "(16-node machines, no contention)...\n\n");
    sim::SweepRunner runner;
    ProbeResult pf = probeMissLatencies(flash_cfg, &runner);
    const sim::SweepMetrics flash_metrics = runner.lastMetrics();
    ProbeResult pi = probeMissLatencies(ideal_cfg, &runner);
    std::fprintf(stderr,
                 "[sweep] probe: 2x%zu jobs on %d workers, wall "
                 "%.2fs+%.2fs, speedup %.2fx/%.2fx\n",
                 flash_metrics.jobs.size(), flash_metrics.workers,
                 flash_metrics.wallSeconds,
                 runner.lastMetrics().wallSeconds,
                 flash_metrics.speedup(), runner.lastMetrics().speedup());

    std::printf("Table 3.3: memory latencies and occupancies, no "
                "contention (10 ns cycles)\n");
    std::printf("%-36s | %6s %6s | %6s %6s | %7s %7s | %6s %6s\n",
                "operation", "idealP", "idealM", "flashP", "flashM",
                "deltaP", "deltaM", "occP", "occM");
    for (const Row &r : kRows) {
        double im = pi.latency.*(r.slot);
        double fm = pf.latency.*(r.slot);
        double om = pf.ppOccupancy.*(r.slot);
        std::printf("%-36s | %6.0f %6.0f | %6.0f %6.0f | %7.0f %7.0f | "
                    "%6.0f %6.0f\n",
                    r.name, r.paper_ideal, im, r.paper_flash, fm,
                    r.paper_flash - r.paper_ideal, fm - im, r.paper_occ,
                    om);
    }
    std::printf("\n(P = paper value, M = measured; delta = FLASH - "
                "ideal, the cost of flexibility per miss class)\n");

    std::printf("\nFigure 3.1: sub-operations of a local clean read\n");
    const magic::MagicParams &p = flash_cfg.magic;
    Tick t = 0;
    std::printf("  t=%2llu processor detects miss\n",
                (unsigned long long)t);
    t += p.missDetect + p.busTransit;
    std::printf("  t=%2llu request on bus at MAGIC\n",
                (unsigned long long)t);
    t += p.piInbound + p.inboxArb;
    std::printf("  t=%2llu inbox selects message\n",
                (unsigned long long)t);
    t += p.jumpTable;
    std::printf("  t=%2llu jump table done; speculative memory read "
                "issued; PP handler starts\n",
                (unsigned long long)t);
    std::printf("  t=%2llu memory returns first 8 bytes (handler has "
                "been hidden underneath)\n",
                (unsigned long long)(t + p.memAccess));
    std::printf("  t=%2llu first 8 bytes on processor bus (measured "
                "total: %.0f; paper: 27)\n",
                (unsigned long long)(t + p.memAccess + p.busArb +
                                     p.busTransit),
                pf.latency.localClean);
    return 0;
}
