file(REMOVE_RECURSE
  "CMakeFiles/flashsim_cli.dir/flashsim_cli.cpp.o"
  "CMakeFiles/flashsim_cli.dir/flashsim_cli.cpp.o.d"
  "flashsim_cli"
  "flashsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
