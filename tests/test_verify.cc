/**
 * @file
 * Verification-layer tests: the coherence oracle must stay silent on
 * correct runs and catch deliberately broken handlers (with a
 * post-mortem dump); the watchdog must trip on wedged transactions and
 * livelock, and disarm cleanly on quiescence; fault injection must be
 * seeded-deterministic and never provoke a real violation; fatal()
 * must report tick/node context and replay post-mortem dumpers.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "machine/machine.hh"
#include "sim/logging.hh"
#include "verify/oracle.hh"

namespace flashsim::machine
{
namespace
{

using protocol::HandlerId;
using protocol::HandlerResult;
using protocol::Message;
using verify::VerifyParams;
using verify::Watchdog;

/** Verification-on config: record-only policies so tests can assert on
 *  the counters instead of dying. */
MachineConfig
verifyConfig(int procs)
{
    MachineConfig cfg = MachineConfig::flash(procs);
    cfg.magic.verify.oracle = true;
    cfg.magic.verify.watchdog = true;
    cfg.magic.verify.haltOnViolation = false;
    cfg.magic.verify.haltOnTrip = false;
    cfg.magic.verify.traceDepth = 8; // keep post-mortem dumps short
    return cfg;
}

/** All nodes hammer a 64-line region spread across every node's memory
 *  with a deterministic mixed read/write pattern: plenty of sharing,
 *  invalidations, 3-hop transfers and (with small caches) evictions. */
void
runContention(Machine &m, Addr base, int iters = 4)
{
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int it = 0; it < iters; ++it) {
            for (int i = 0; i < 64; ++i) {
                Addr a = base +
                         static_cast<Addr>((i * 7 + env.id() * 13) % 64) *
                             kLineSize;
                if ((i + it + env.id()) % 3 == 0)
                    co_await env.write(a);
                else
                    co_await env.read(a);
            }
        }
    });
    m.drain();
}

/** Allocate one page of lines on each node so the contention pattern
 *  crosses every home. */
Addr
allocSpread(Machine &m)
{
    Addr base = m.alloc(16 * kLineSize, 0);
    for (int n = 1; n < m.numProcs(); ++n)
        m.alloc(16 * kLineSize, static_cast<NodeId>(n % m.numProcs()));
    return base;
}

// ---------------------------------------------------------------------------
// Oracle: silent on correct protocol execution.

TEST(OracleTest, CleanRunHasNoViolations)
{
    MachineConfig cfg = verifyConfig(4);
    Machine m(cfg);
    Addr base = allocSpread(m);
    runContention(m, base);

    ASSERT_NE(m.sentinel(), nullptr);
    EXPECT_EQ(m.sentinel()->violations(), 0u);
    EXPECT_EQ(m.sentinel()->trips(), 0u);
    EXPECT_FALSE(m.sentinel()->dumped());
    EXPECT_GT(m.sentinel()->oracle()->trackedLines(), 0u);
    EXPECT_GT(m.sentinel()->watchdog()->retired(), 0u);
    EXPECT_EQ(m.sentinel()->watchdog()->outstanding(), 0u);
}

// ---------------------------------------------------------------------------
// Oracle: a deliberately broken handler is caught at the handler that
// introduced the bug, and a post-mortem dump is produced.

TEST(OracleTest, CatchesDroppedSharerInBrokenHandler)
{
    MachineConfig cfg = verifyConfig(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0); // homed at node 0

    // The "broken handler": ServeReadMemory adds the requester to the
    // sharer list, and this mutator immediately undoes it — the classic
    // forgotten-addSharer bug.
    bool corrupted = false;
    m.sentinel()->testMutator = [&](NodeId node, const Message &msg,
                                    HandlerResult &res) {
        if (corrupted || res.id != HandlerId::ServeReadMemory)
            return;
        corrupted = true;
        m.node(node).magic().directory().removeSharer(msg.addr,
                                                      msg.requester);
    };

    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1)
            co_await env.read(a);
    });
    m.drain();

    ASSERT_TRUE(corrupted);
    ASSERT_GE(m.sentinel()->violations(), 1u);
    const auto &log = m.sentinel()->oracle()->violationLog();
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log[0].kind, "dir-mismatch");
    EXPECT_EQ(log[0].node, 0u);         // blamed at the home node
    EXPECT_EQ(log[0].addr, lineBase(a)); // and the corrupted line
    // Record-only policy still dumps a post-mortem (once).
    EXPECT_TRUE(m.sentinel()->dumped());

    std::ostringstream pm;
    m.sentinel()->writePostMortem(pm, "test");
    EXPECT_NE(pm.str().find("dir-mismatch"), std::string::npos);
    EXPECT_NE(pm.str().find("recent activity"), std::string::npos);
    EXPECT_NE(pm.str().find("ServeReadMemory"), std::string::npos);
}

TEST(OracleTest, CatchesCorruptedOwnerInBrokenHandler)
{
    MachineConfig cfg = verifyConfig(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);

    // The "broken handler": ServeWriteMemory records the wrong owner —
    // the directory claims home owns the line while the requester's
    // cache goes Exclusive.
    bool corrupted = false;
    m.sentinel()->testMutator = [&](NodeId node, const Message &msg,
                                    HandlerResult &res) {
        if (corrupted || res.id != HandlerId::ServeWriteMemory)
            return;
        corrupted = true;
        auto &dir = m.node(node).magic().directory();
        protocol::DirHeader h = dir.header(msg.addr);
        h.owner = static_cast<NodeId>(h.owner == 0 ? 1 : 0);
        dir.setHeader(msg.addr, h);
    };

    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1)
            co_await env.write(a);
    });
    m.drain();

    ASSERT_TRUE(corrupted);
    ASSERT_GE(m.sentinel()->violations(), 1u);
    EXPECT_EQ(m.sentinel()->oracle()->violationLog()[0].kind,
              "dir-mismatch");
    EXPECT_TRUE(m.sentinel()->dumped());
}

// ---------------------------------------------------------------------------
// Oracle: a replacement hint crossing an invalidation on the mesh is a
// benign race (hints are imprecise by design), forgiven exactly once
// per invalidated sharer -- a second hint is still a violation.

TEST(OracleTest, HintCrossingInvalidationIsForgivenOnce)
{
    verify::CoherenceOracle::Wiring w;
    w.numNodes = 4;
    w.homeOf = [](Addr) { return NodeId{0}; };
    w.header = [](NodeId, Addr) { return protocol::DirHeader{}; };
    w.sharers = [](NodeId, Addr) { return std::vector<NodeId>{}; };
    w.cacheState = [](NodeId, Addr) { return 0; };
    verify::CoherenceOracle oracle(std::move(w),
                                   /*allow_hint_anomalies=*/false);

    const Addr line = 0x1000;
    auto feed = [&](HandlerId id, protocol::MsgType type, NodeId src) {
        Message msg;
        msg.type = type;
        msg.src = src;
        msg.requester = src;
        msg.addr = line;
        HandlerResult res;
        res.id = id;
        // Deferred observation applies the golden transition without
        // cross-checking the (stubbed) live machine.
        oracle.onHandlerDeferred(/*node=*/0, /*at_home=*/true, /*now=*/0,
                                 msg, res);
    };

    // Node 1 reads: it becomes a golden sharer.
    feed(HandlerId::ServeReadMemory, protocol::MsgType::NetGet, 1);
    // Node 2 writes: the sharer list is cleared and an inval races
    // toward node 1 -- whose eviction hint may already be in flight.
    feed(HandlerId::ServeWriteMemory, protocol::MsgType::NetGetx, 2);
    EXPECT_EQ(oracle.violations(), 0u);

    // The in-flight hint lands after the exclusive grant: benign.
    feed(HandlerId::RemoteHintOnly, protocol::MsgType::NetReplaceHint, 1);
    EXPECT_EQ(oracle.violations(), 0u);

    // A second hint from the same node has no invalidation to blame.
    feed(HandlerId::RemoteHintOnly, protocol::MsgType::NetReplaceHint, 1);
    EXPECT_EQ(oracle.violations(), 1u);
    ASSERT_FALSE(oracle.violationLog().empty());
    EXPECT_EQ(oracle.violationLog().back().kind, "hint-underflow");
}

// ---------------------------------------------------------------------------
// Watchdog: trips on wedged transactions and on global no-progress,
// disarms on quiescence so the event queue drains.

VerifyParams
watchdogParams(Cycles interval, Cycles max_age, Cycles window)
{
    VerifyParams p;
    p.watchdog = true;
    p.haltOnTrip = false;
    p.watchdogInterval = interval;
    p.maxTransactionAge = max_age;
    p.noProgressWindow = window;
    return p;
}

TEST(WatchdogTest, TripsOnWedgedTransaction)
{
    EventQueue eq;
    VerifyParams p = watchdogParams(100, 1000, 1u << 30);
    Watchdog wd(eq, p);
    std::string reason;
    wd.onTrip = [&](const std::string &r) { reason = r; };

    wd.txnStart(2, 5 * kLineSize);
    eq.run(); // checks fire every 100 cycles until the age trips

    EXPECT_EQ(wd.trips(), 1u);
    EXPECT_EQ(wd.outstanding(), 1u);
    EXPECT_NE(reason.find("node 2"), std::string::npos) << reason;
    EXPECT_NE(reason.find("outstanding"), std::string::npos) << reason;
    // The trip disarmed the watchdog, which is why eq.run() returned at
    // all: a record-only trip must not keep the queue alive forever.
}

TEST(WatchdogTest, TripsOnNoProgress)
{
    EventQueue eq;
    VerifyParams p = watchdogParams(100, 1u << 30, 500);
    Watchdog wd(eq, p);
    std::string reason;
    wd.onTrip = [&](const std::string &r) { reason = r; };

    wd.txnStart(0, 0);
    eq.run();

    EXPECT_EQ(wd.trips(), 1u);
    EXPECT_NE(reason.find("livelock or deadlock"), std::string::npos)
        << reason;
}

TEST(WatchdogTest, DisarmsWhenAllTransactionsRetire)
{
    EventQueue eq;
    VerifyParams p = watchdogParams(100, 1000, 500);
    Watchdog wd(eq, p);

    wd.txnStart(1, kLineSize);
    wd.txnRetire(1, kLineSize);
    eq.run(); // the one scheduled check sees no txns and stops

    EXPECT_EQ(wd.trips(), 0u);
    EXPECT_EQ(wd.retired(), 1u);
    EXPECT_EQ(wd.outstanding(), 0u);
}

TEST(WatchdogTest, RetryRearmsTransactionAge)
{
    // A transaction that legitimately retries three times and retires
    // just under the per-retry age limit must never trip: txnRetry
    // restarts the age clock (and counts as progress). The control run
    // without the retries trips on the very same schedule.
    auto run = [](bool with_retries) {
        EventQueue eq;
        VerifyParams p = watchdogParams(100, 1000, 1u << 30);
        Watchdog wd(eq, p);
        wd.txnStart(4, 2 * kLineSize);
        if (with_retries)
            for (Tick t : {Tick{800}, Tick{1600}, Tick{2400}})
                eq.schedule(t, [&wd] { wd.txnRetry(4, 2 * kLineSize); });
        eq.schedule(3100, [&wd] { wd.txnRetire(4, 2 * kLineSize); });
        eq.run();
        return wd.trips();
    };
    EXPECT_EQ(run(true), 0u);
    EXPECT_EQ(run(false), 1u);
}

TEST(WatchdogTest, RetryOfUnknownTransactionIsIgnored)
{
    EventQueue eq;
    VerifyParams p = watchdogParams(100, 1000, 500);
    Watchdog wd(eq, p);
    wd.txnRetry(0, 0); // nothing outstanding: must not arm or crash
    eq.run();
    EXPECT_EQ(wd.trips(), 0u);
    EXPECT_EQ(wd.outstanding(), 0u);
}

TEST(WatchdogTest, StatusListsOldestTransactions)
{
    EventQueue eq;
    VerifyParams p = watchdogParams(100, 1u << 30, 1u << 30);
    Watchdog wd(eq, p);
    wd.txnStart(3, 7 * kLineSize);

    std::ostringstream os;
    wd.writeStatus(os);
    EXPECT_NE(os.str().find("1 transaction(s) outstanding"),
              std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("node 3"), std::string::npos) << os.str();
}

// ---------------------------------------------------------------------------
// Fault injection: perturbed runs stay coherent and replay
// bit-identically for the same (seed, config).

MachineConfig
injectionConfig(int procs, std::uint64_t seed)
{
    MachineConfig cfg = verifyConfig(procs);
    cfg.cache.sizeBytes = 4096; // force evictions: hint traffic
    cfg.magic.verify.fault.enabled = true;
    cfg.magic.verify.fault.seed = seed;
    cfg.magic.verify.fault.meshJitter = 12;
    cfg.magic.verify.fault.extraNackProb = 0.15;
    cfg.magic.verify.fault.dropHintProb = 0.1;
    cfg.magic.verify.fault.dupHintProb = 0.1;
    cfg.magic.verify.fault.inboundStall = 6;
    return cfg;
}

struct InjectionDigest
{
    Tick execTime = 0;
    Counter violations = 0;
    Counter trips = 0;
    Counter nacks = 0;
    Counter dropped = 0;
    Counter duped = 0;
    Counter jitter = 0;
    Counter stall = 0;
};

InjectionDigest
runInjected(const MachineConfig &cfg)
{
    Machine m(cfg);
    Addr base = allocSpread(m);
    runContention(m, base);
    const verify::Sentinel *s = m.sentinel();
    InjectionDigest d;
    d.execTime = m.executionTime();
    d.violations = s->violations();
    d.trips = s->trips();
    d.nacks = s->injectorStats().nacksInjected();
    d.dropped = s->injectorStats().hintsDropped();
    d.duped = s->injectorStats().hintsDuped();
    d.jitter = s->injectorStats().jitterCycles();
    d.stall = s->injectorStats().stallCycles();
    return d;
}

TEST(InjectionTest, PerturbedRunStaysCoherent)
{
    InjectionDigest d = runInjected(injectionConfig(4, 7));
    EXPECT_EQ(d.violations, 0u);
    EXPECT_EQ(d.trips, 0u);
    // The perturbations actually happened.
    EXPECT_GT(d.nacks, 0u);
    EXPECT_GT(d.jitter, 0u);
    EXPECT_GT(d.stall, 0u);
    EXPECT_GT(d.dropped + d.duped, 0u);
}

TEST(InjectionTest, SameSeedReplaysBitIdentically)
{
    InjectionDigest a = runInjected(injectionConfig(4, 11));
    InjectionDigest b = runInjected(injectionConfig(4, 11));
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.nacks, b.nacks);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.duped, b.duped);
    EXPECT_EQ(a.jitter, b.jitter);
    EXPECT_EQ(a.stall, b.stall);
}

TEST(InjectionTest, DifferentSeedsPerturbDifferently)
{
    InjectionDigest a = runInjected(injectionConfig(4, 1));
    InjectionDigest b = runInjected(injectionConfig(4, 2));
    // Identical work, different perturbation schedule: at least the
    // accumulated jitter must differ (probability of collision over
    // thousands of draws is negligible).
    EXPECT_NE(a.jitter, b.jitter);
}

// ---------------------------------------------------------------------------
// fatal() context and post-mortem plumbing.

TEST(FatalContextDeathTest, ReportsTickAndNode)
{
    EXPECT_DEATH(
        {
            setLogTickSource([] { return Tick{42}; });
            setLogNode(3);
            fatal("boom %d", 7);
        },
        "fatal: \\[t=42 node=3\\] boom 7");
}

TEST(FatalContextDeathTest, RunsPostMortemDumpersBeforeAbort)
{
    EXPECT_DEATH(
        {
            registerPostMortem([](std::ostream &os) {
                os << "RING-DUMP-MARKER\n";
            });
            fatal("dying");
        },
        "RING-DUMP-MARKER");
}

TEST(FatalContextDeathTest, HaltOnViolationDiesWithPostMortem)
{
    // End-to-end: a broken handler under the halt policy dies via
    // fatal(), whose output carries the violation and the trace dump.
    EXPECT_DEATH(
        {
            MachineConfig cfg = verifyConfig(2);
            cfg.magic.verify.haltOnViolation = true;
            Machine m(cfg);
            Addr a = m.alloc(kLineSize, 0);
            m.sentinel()->testMutator = [&](NodeId node,
                                            const Message &msg,
                                            HandlerResult &res) {
                if (res.id != HandlerId::ServeReadMemory)
                    return;
                m.node(node).magic().directory().removeSharer(
                    msg.addr, msg.requester);
            };
            m.run([=](tango::Env &env) -> tango::Task {
                co_await env.busy(0);
                if (env.id() == 1)
                    co_await env.read(a);
            });
        },
        "coherence violation \\[dir-mismatch\\].*");
}

} // namespace
} // namespace flashsim::machine
