#include "network/mesh.hh"

#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace flashsim::network
{

MeshNetwork::MeshNetwork(EventQueue &eq, int num_nodes, MeshParams params)
    : eq_(eq), numNodes_(num_nodes), params_(params),
      deliver_(static_cast<std::size_t>(num_nodes))
{
    side_ = 1;
    while (side_ * side_ < num_nodes)
        ++side_;

    // Average internal hop count for uniform traffic on a side x side
    // mesh: the mean |dx| on a line of n nodes is (n^2 - 1) / (3n), the
    // Manhattan distance doubles it, and excluding the self-pairs
    // scales by N/(N-1). That gives the paper's 2.6 average hops for 16
    // nodes; with one hop to enter and one to exit at 4 cycles each
    // plus 3 header cycles the average transit is 22 cycles.
    double n_nodes = static_cast<double>(side_) * side_;
    double mean_axis =
        (static_cast<double>(side_) * side_ - 1.0) / (3.0 * side_);
    double internal = 2.0 * mean_axis *
                      (n_nodes > 1 ? n_nodes / (n_nodes - 1.0) : 1.0);
    double hops = internal + 2.0;
    avgTransit_ = static_cast<Cycles>(
        std::lround(params_.perHop * hops + params_.header));
}

void
MeshNetwork::connect(NodeId n, Deliver deliver)
{
    if (n >= deliver_.size())
        fatal("MeshNetwork: node %u out of range", n);
    deliver_[n] = std::move(deliver);
}

Cycles
MeshNetwork::transit(NodeId src, NodeId dest) const
{
    // A self-send never crosses the mesh: it pays only the entry and
    // exit hops plus the header, in both average and distance-based
    // modes. (The average-transit figure explicitly excludes the
    // self-pairs, so charging it here would overbill by the mean
    // internal hop count, ~22 cycles on 16 nodes.)
    if (src == dest)
        return params_.perHop * 2 + params_.header;
    if (!params_.distanceBased)
        return avgTransit_;
    int sx = static_cast<int>(src) % side_;
    int sy = static_cast<int>(src) / side_;
    int dx = static_cast<int>(dest) % side_;
    int dy = static_cast<int>(dest) / side_;
    int hops = std::abs(sx - dx) + std::abs(sy - dy) + 2;
    return params_.perHop * static_cast<Cycles>(hops) + params_.header;
}

void
MeshNetwork::setPerturb(std::function<Cycles(const protocol::Message &)> p)
{
    perturb_ = std::move(p);
    if (perturb_ && lastDelivery_.empty())
        lastDelivery_.assign(static_cast<std::size_t>(numNodes_) *
                                 static_cast<std::size_t>(numNodes_),
                             0);
}

void
MeshNetwork::send(const protocol::Message &msg)
{
    if (msg.dest >= deliver_.size() || !deliver_[msg.dest])
        panic("MeshNetwork: no receiver for %s", msg.toString().c_str());
    ++messages;
    if (protocol::carriesData(msg.type))
        ++dataMessages;
    Cycles lat = transit(msg.src, msg.dest);
    Tick when = eq_.now() + lat;
    if (perturb_) {
        when += perturb_(msg);
        // Clamp per (src, dest) pair: jitter must never reorder the
        // point-to-point FIFO the protocol's race resolution assumes.
        Tick &last = lastDelivery_[static_cast<std::size_t>(msg.src) *
                                       static_cast<std::size_t>(numNodes_) +
                                   msg.dest];
        when = std::max(when, last);
        last = when;
    }
    eq_.scheduleAt(when, [this, msg] { deliver_[msg.dest](msg); });
}

} // namespace flashsim::network
