/**
 * @file
 * Sharded-run determinism suite: the conservative time-window PDES
 * path (cfg.shards > 1, see sim/shard.hh) must be *bit-identical* to
 * the single-threaded run for the same configuration and seed. The
 * single-threaded path is the conformance oracle: every test runs the
 * same workload at 1, 2 and 4 shards and compares a full-fat signature
 * — the complete report Summary, mesh counters, sentinel verdicts,
 * injector draw counts and the post-mortem trace ring — for string
 * equality. Coverage spans clean runs, seeded fault-injection runs
 * (the injector's per-node streams must survive the node partition),
 * and a host-side lock/barrier torture loop whose winner order is the
 * single hardest thing to keep deterministic across threads.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/fft.hh"
#include "apps/mp3d.hh"
#include "apps/radix.hh"
#include "apps/workload.hh"
#include "machine/machine.hh"
#include "machine/report.hh"
#include "sim/shard.hh"

namespace flashsim::apps
{
namespace
{

using machine::Machine;
using machine::MachineConfig;

std::unique_ptr<Workload>
makeShardWorkload(int which)
{
    switch (which) {
      case 0: {
          FftParams p;
          p.logN = 8;
          return std::make_unique<Fft>(p);
      }
      case 1: {
          Mp3dParams p;
          p.particles = 2000;
          p.steps = 3;
          p.cells = 512;
          return std::make_unique<Mp3d>(p);
      }
      default: {
          RadixParams p;
          p.keys = 1 << 11;
          return std::make_unique<Radix>(p);
      }
    }
}

/** Small caches + verification on; @p fault_seed 0 means no injection. */
MachineConfig
shardConfig(int shards, std::uint64_t fault_seed)
{
    MachineConfig cfg = MachineConfig::flash(8, 64u * 1024u);
    cfg.shards = shards;
    cfg.magic.verify.oracle = true;
    cfg.magic.verify.watchdog = true;
    cfg.magic.verify.haltOnViolation = false;
    cfg.magic.verify.haltOnTrip = false;
    if (fault_seed != 0) {
        cfg.magic.verify.fault.enabled = true;
        cfg.magic.verify.fault.seed = fault_seed;
        cfg.magic.verify.fault.meshJitter = 10;
        cfg.magic.verify.fault.extraNackProb = 0.05;
        cfg.magic.verify.fault.dropHintProb = 0.05;
        cfg.magic.verify.fault.dupHintProb = 0.05;
        cfg.magic.verify.fault.inboundStall = 4;
    }
    return cfg;
}

/**
 * Everything observable about a finished run, serialized. The
 * post-mortem is compared from its "recent activity" trace ring on:
 * the header's "t=" is the main queue's final local time, which is a
 * per-shard notion, not machine state.
 */
std::string
signature(Machine &m)
{
    const machine::Summary s = machine::summarize(m);
    std::ostringstream os;
    os.precision(17);
    os << s.execTime << '|' << s.busy << '|' << s.cont << '|' << s.read
       << '|' << s.write << '|' << s.sync << '|' << s.missRate << '|'
       << s.dist.localClean << '|' << s.dist.localDirtyRemote << '|'
       << s.dist.remoteClean << '|' << s.dist.remoteDirtyHome << '|'
       << s.dist.remoteDirtyRemote << '|' << s.avgMemOcc << '|'
       << s.maxMemOcc << '|' << s.avgPpOcc << '|' << s.maxPpOcc << '|'
       << s.cacheReads << '|' << s.cacheWrites << '|'
       << s.backgroundRefs << '|' << s.readMisses << '|'
       << s.writeMisses << '|' << s.handlerInvocations << '|'
       << s.specIssued << '|' << s.specUselessFrac << '|'
       << s.mdcMissRate << '|' << s.mdcProtocolMemOps << '|'
       << s.nacksSent << '|' << m.network().messages() << '|'
       << m.network().dataMessages() << '|';
    if (const verify::Sentinel *sent = m.sentinel()) {
        os << sent->violations() << '|' << sent->trips() << '|'
           << sent->watchdog()->retired() << '|'
           << sent->oracle()->trackedLines() << '|'
           << sent->injectorStats().nacksInjected() << '|'
           << sent->injectorStats().hintsDropped() << '|'
           << sent->injectorStats().hintsDuped() << '|'
           << sent->injectorStats().jitterCycles() << '|'
           << sent->injectorStats().stallCycles() << '|';
        std::ostringstream pm;
        sent->writePostMortem(pm, "signature");
        const std::string text = pm.str();
        const std::size_t at = text.find("recent activity");
        os << (at == std::string::npos ? text : text.substr(at));
    }
    return os.str();
}

std::string
runSignature(int shards, int workload, std::uint64_t fault_seed)
{
    auto w = makeShardWorkload(workload);
    auto m = runWorkload(shardConfig(shards, fault_seed), *w);
    EXPECT_EQ(m->shards(), shards);
    EXPECT_EQ(m->sentinel()->violations(), 0u);
    EXPECT_EQ(m->sentinel()->trips(), 0u);
    return signature(*m);
}

TEST(ShardTest, ResolveShardsClamps)
{
    EXPECT_EQ(resolveShards(0, 16), 1);
    EXPECT_EQ(resolveShards(1, 16), 1);
    EXPECT_EQ(resolveShards(-3, 16), 1);
    EXPECT_EQ(resolveShards(4, 16), 4);
    EXPECT_EQ(resolveShards(8, 4), 4);
    EXPECT_EQ(resolveShards(200, 256), kMaxShards);

    MachineConfig cfg = MachineConfig::flash(4);
    cfg.shards = 5;
    Machine m(cfg);
    EXPECT_EQ(m.shards(), 4);
    EXPECT_GT(m.lookahead(), 0u);
}

TEST(ShardTest, CleanRunsBitIdenticalAcrossShardCounts)
{
    for (int w = 0; w < 3; ++w) {
        SCOPED_TRACE("workload " + std::to_string(w));
        const std::string base = runSignature(1, w, 0);
        EXPECT_EQ(runSignature(2, w, 0), base);
        EXPECT_EQ(runSignature(4, w, 0), base);
    }
}

TEST(ShardTest, InjectedRunsBitIdenticalAcrossShardCounts)
{
    const std::uint64_t seeds[] = {3, 7, 11, 23};
    for (int w = 0; w < 3; ++w) {
        for (std::uint64_t seed : seeds) {
            SCOPED_TRACE("workload " + std::to_string(w) + " seed " +
                         std::to_string(seed));
            const std::string base = runSignature(1, w, seed);
            EXPECT_EQ(runSignature(2, w, seed), base);
            EXPECT_EQ(runSignature(4, w, seed), base);
        }
    }
}

TEST(ShardTest, FaultInjectionActuallyPerturbsShardedRun)
{
    // The determinism tests above prove sharded == single; this proves
    // they are comparing a genuinely perturbed machine, not one whose
    // injector went quiet under the node partition.
    auto w = makeShardWorkload(0);
    auto m = runWorkload(shardConfig(4, 7), *w);
    const verify::Sentinel *sent = m->sentinel();
    EXPECT_EQ(sent->violations(), 0u);
    EXPECT_EQ(sent->trips(), 0u);
    EXPECT_GT(sent->injectorStats().nacksInjected() +
                  sent->injectorStats().hintsDropped() +
                  sent->injectorStats().hintsDuped() +
                  sent->injectorStats().jitterCycles() +
                  sent->injectorStats().stallCycles(),
              0u);
}

/**
 * Host-side synchronization torture: contended locks interleaved with
 * barrier episodes, with the critical section recording the exact
 * acquisition order. Lock winner order is where naive sharding
 * diverges first (it would depend on thread timing); the SyncArbiter
 * must reproduce the single-threaded order exactly.
 */
struct TortureResult
{
    std::vector<int> order;
    std::uint64_t acquisitions = 0;
    int generations = 0;
    std::uint64_t counter = 0;
    Tick execTime = 0;

    bool
    operator==(const TortureResult &o) const
    {
        return order == o.order && acquisitions == o.acquisitions &&
               generations == o.generations && counter == o.counter &&
               execTime == o.execTime;
    }
};

TortureResult
runTorture(int shards)
{
    MachineConfig cfg = MachineConfig::flash(8, 64u * 1024u);
    cfg.shards = shards;
    Machine m(cfg);
    auto lock = std::make_shared<tango::LockVar>(m.makeLock(3));
    auto bar = std::make_shared<tango::BarrierVar>(m.makeBarrier());
    auto order = std::make_shared<std::vector<int>>();
    auto counter = std::make_shared<std::uint64_t>(0);
    const Tick t = m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int round = 0; round < 6; ++round) {
            // Skew arrival so different processors reach the lock
            // first in different rounds.
            co_await env.busy(37 * static_cast<std::uint64_t>(
                                       (env.id() + round) % 8));
            co_await env.lockAcquire(*lock);
            order->push_back(env.id());
            *counter += static_cast<std::uint64_t>(env.id()) + 1;
            co_await env.busy(25);
            co_await env.lockRelease(*lock);
            co_await env.barrier(*bar);
        }
    });
    m.drain();
    TortureResult r;
    r.order = *order;
    r.acquisitions = lock->acquisitions;
    r.generations = bar->gen;
    r.counter = *counter;
    r.execTime = t;
    return r;
}

TEST(ShardTest, LockAndBarrierTortureBitIdenticalAcrossShardCounts)
{
    const TortureResult base = runTorture(1);
    ASSERT_EQ(base.order.size(), 48u);
    EXPECT_EQ(base.acquisitions, 48u);
    EXPECT_EQ(base.generations, 6);
    EXPECT_TRUE(runTorture(2) == base);
    EXPECT_TRUE(runTorture(4) == base);
}

// ---------------------------------------------------------------------------
// Adaptive-lookahead coordinator: idle-window skipping, clamp edges,
// and timers that span skipped windows. The engine counters
// (Machine::shardStats) are asserted alongside the usual bit-identity;
// they are deliberately outside the signature, since they vary with
// shard count by design.

struct SparseRun
{
    Tick execTime = 0;
    Machine::ShardRunStats stats;
};

/** A few remote reads separated by long busy stretches: most of
 *  virtual time is idle, so the coordinator should be skipping. */
SparseRun
runSparse(int shards, Cycles gap)
{
    MachineConfig cfg = MachineConfig::flash(8, 64u * 1024u);
    cfg.shards = shards;
    Machine m(cfg);
    const Addr base = m.allocAuto(64 * 64);
    SparseRun r;
    r.execTime = m.run([base, gap](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int i = 0; i < 6; ++i) {
            const Addr a =
                base +
                static_cast<Addr>((env.id() * 13 + i * 5) % 64) * 64;
            co_await env.read(a);
            co_await env.busy(gap);
        }
    });
    m.drain();
    r.stats = m.shardStats();
    return r;
}

TEST(ShardTest, SparseWorkloadSkipsIdleWindows)
{
    const SparseRun one = runSparse(1, 2000);
    // Single-shard runs never enter the window loop: engine counters
    // stay zero (and so can never contaminate a 1-shard signature).
    EXPECT_EQ(one.stats.windowsRun, 0u);
    EXPECT_EQ(one.stats.ticksSkipped, 0u);
    for (int shards : {2, 4}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        const SparseRun r = runSparse(shards, 2000);
        EXPECT_EQ(r.execTime, one.execTime);
        EXPECT_GT(r.stats.windowsRun, 0u);
        EXPECT_GT(r.stats.windowsSkipped, 0u);
        EXPECT_GT(r.stats.ticksSkipped, 0u);
        // The acceptance bar: on a mostly-idle run the majority of
        // window edges jump over dead time (or widen past minimum).
        EXPECT_GT(2 * (r.stats.windowsSkipped + r.stats.windowsWidened),
                  r.stats.windowsRun);
    }
}

TEST(ShardTest, ShardStatsExportToDenseHandles)
{
    MachineConfig cfg = MachineConfig::flash(8, 64u * 1024u);
    cfg.shards = 2;
    Machine m(cfg);
    const Addr base = m.allocAuto(64 * 64);
    m.run([base](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        co_await env.read(base + static_cast<Addr>(env.id()) * 64);
        co_await env.busy(500);
    });
    m.drain();

    StatSet stats;
    machine::exportShardStats(m, stats);
    const Machine::ShardRunStats &st = m.shardStats();
    EXPECT_GT(st.windowsRun, 0u);
    EXPECT_EQ(stats.get(stats.handle("shard.windows.run")),
              static_cast<double>(st.windowsRun));
    EXPECT_EQ(stats.get(stats.handle("shard.ticks.skipped")),
              static_cast<double>(st.ticksSkipped));
    EXPECT_EQ(stats.get(stats.handle("shard.width.mean")),
              st.meanWidth());
    EXPECT_EQ(stats.get(stats.handle("shard.sync.phases")),
              static_cast<double>(st.syncPhases));
}

struct RetryRun
{
    Tick execTime = 0;
    std::uint64_t retries = 0;
    Machine::ShardRunStats stats;
};

RetryRun
runRetry(int shards)
{
    // Drop 30% of requests at the home NI; the only recovery is the
    // cache's retry timer, armed at exactly now + 2000 (doubling per
    // retry) — ticks that sit deep inside idle stretches the
    // coordinator skips over.
    MachineConfig cfg = MachineConfig::flash(8, 64u * 1024u);
    cfg.shards = shards;
    cfg.magic.verify.oracle = true;
    cfg.magic.verify.watchdog = true;
    cfg.magic.verify.haltOnViolation = false;
    cfg.magic.verify.haltOnTrip = false;
    cfg.magic.verify.fault.enabled = true;
    cfg.magic.verify.fault.seed = 13;
    cfg.magic.verify.fault.txnDropProb = 0.3;
    cfg.magic.txnRetryTimeout = 2000;
    Machine m(cfg);
    const Addr base = m.allocAuto(64 * 64);
    RetryRun r;
    r.execTime = m.run([base](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int i = 0; i < 4; ++i) {
            const Addr a =
                base +
                static_cast<Addr>((env.id() * 13 + i * 5) % 64) * 64;
            co_await env.read(a);
            co_await env.busy(1200);
        }
    });
    m.drain();
    r.retries = machine::summarize(m).timeoutRetries;
    r.stats = m.shardStats();
    return r;
}

TEST(ShardTest, RetryTimersFireExactlyAcrossSkippedWindows)
{
    // The run only stays bit-identical across shard counts if armed
    // timers bound the skip horizon and fire at their exact ticks —
    // a coordinator that jumped past one would retry late (different
    // execTime), one that clamped early would just be slow.
    const RetryRun one = runRetry(1);
    EXPECT_GT(one.retries, 0u);
    for (int shards : {2, 4}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        const RetryRun r = runRetry(shards);
        EXPECT_EQ(r.execTime, one.execTime);
        EXPECT_EQ(r.retries, one.retries);
        EXPECT_GT(r.stats.windowsSkipped, 0u);
    }
}

TEST(ShardTest, UnitLookaheadWindowEdgesStayBitIdentical)
{
    // Degenerate W=1: distance-based transit with perHop 0 and a
    // 1-cycle header makes the minimum cross-node transit — and so the
    // base window — a single tick. Every event lands on a window edge;
    // only the idle-skip keeps this from being one barrier per tick.
    auto sig = [](int shards) {
        MachineConfig cfg = shardConfig(shards, 0);
        cfg.net.distanceBased = true;
        cfg.net.perHop = 0;
        cfg.net.header = 1;
        auto w = makeShardWorkload(2);
        auto m = runWorkload(cfg, *w);
        EXPECT_EQ(m->lookahead(), 1u);
        return signature(*m);
    };
    const std::string base = sig(1);
    EXPECT_EQ(sig(2), base);
}

TEST(ShardTest, OneNodePerShardClampStaysBitIdentical)
{
    // cfg.shards far above the node count clamps to one node per shard
    // — the narrowest partition the coordinator supports — and must
    // still match the single-threaded oracle.
    MachineConfig cfg = shardConfig(64, 0);
    auto w = makeShardWorkload(0);
    auto m = runWorkload(cfg, *w);
    EXPECT_EQ(m->shards(), 8);
    EXPECT_GT(m->shardStats().windowsRun, 0u);
    EXPECT_EQ(signature(*m), runSignature(1, 0, 0));
}

} // namespace
} // namespace flashsim::apps
