/**
 * @file
 * InlineCallback: a small-buffer-only move-callable, the event queue's
 * replacement for std::function<void()>.
 *
 * Every simulated cycle funnels through EventQueue::schedule(), and a
 * std::function built from a capturing lambda heap-allocates once its
 * captures exceed the library's tiny inline buffer (16 bytes in
 * libstdc++) — which every MAGIC/processor/network lambda does. This
 * type stores the callable inline, always: there is no heap fallback,
 * and a callable that does not fit is a compile-time error, so the
 * zero-allocation property of the hot path is enforced statically
 * rather than hoped for.
 *
 * Move-only. Requires the callable to be nothrow-move-constructible so
 * that growing the queue's vectors (which moves events) cannot throw
 * mid-move.
 */

#ifndef FLASHSIM_SIM_INLINE_CALLBACK_HH_
#define FLASHSIM_SIM_INLINE_CALLBACK_HH_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace flashsim
{

class InlineCallback
{
  public:
    /**
     * Inline capture budget. Sized for the largest lambda scheduled
     * in-tree: [this + Pending{Message, 2 Ticks, flags}] in
     * magic::Magic::tryDispatch and [this, addr, in_sync, done =
     * std::function] in cpu::Processor, both 64 bytes. The
     * static_assert below turns a future oversized capture into a
     * build error instead of a silent heap allocation.
     */
    static constexpr std::size_t kInlineBytes = 64;

    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&f) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kInlineBytes,
                      "callback captures exceed InlineCallback's inline "
                      "storage; shrink the capture list (or capture a "
                      "pointer to longer-lived state) rather than "
                      "growing kInlineBytes casually");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callback");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callbacks must be nothrow-move-constructible");
        ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(f));
        ops_ = &opsFor<Fn>;
    }

    InlineCallback(InlineCallback &&other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            destroy();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(storage_, other.storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { destroy(); }

    /** True when holding a callable. */
    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(storage_);
    }

  private:
    /** Per-type operation table (one static instance per callable). */
    struct Ops
    {
        void (*invoke)(void *self);
        /** Move-construct into @p dst from @p src, destroy @p src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
    };

    template <typename Fn>
    static constexpr Ops opsFor = {
        [](void *self) { (*static_cast<Fn *>(self))(); },
        [](void *dst, void *src) {
            Fn *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *self) { static_cast<Fn *>(self)->~Fn(); },
    };

    void
    destroy()
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace flashsim

#endif // FLASHSIM_SIM_INLINE_CALLBACK_HH_
