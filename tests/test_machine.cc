/**
 * @file
 * Whole-machine integration and property tests: FLASH vs ideal
 * ordering, coherence invariants under random workloads, barriers and
 * locks, determinism, and placement policies.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "machine/report.hh"
#include "sim/random.hh"

namespace flashsim::machine
{
namespace
{

using cpu::Cache;

/** Check directory/cache agreement for every line after drain(). */
void
expectCoherent(Machine &m, Addr base, int n_lines)
{
    for (int l = 0; l < n_lines; ++l) {
        Addr a = base + static_cast<Addr>(l) * kLineSize;
        NodeId home = m.homeOf(a);
        const auto &dir = m.node(static_cast<int>(home)).magic().directory();
        auto h = dir.header(a);

        int exclusive_holders = 0;
        for (int i = 0; i < m.numProcs(); ++i) {
            Cache::State st = m.node(i).cache().state(a);
            if (st == Cache::State::Exclusive) {
                ++exclusive_holders;
                EXPECT_TRUE(h.dirty) << "line " << l;
                EXPECT_EQ(h.owner, static_cast<NodeId>(i))
                    << "line " << l;
            } else if (st == Cache::State::Shared) {
                EXPECT_FALSE(h.dirty) << "line " << l << " node " << i;
                EXPECT_TRUE(dir.isSharer(a, static_cast<NodeId>(i)))
                    << "line " << l << " node " << i;
            }
        }
        EXPECT_LE(exclusive_holders, 1) << "line " << l;
        if (h.dirty) {
            EXPECT_EQ(exclusive_holders, 1) << "line " << l;
        }
        // No phantom sharers after quiescence.
        for (NodeId s : dir.sharers(a)) {
            ASSERT_LT(s, static_cast<NodeId>(m.numProcs()));
            EXPECT_NE(m.node(static_cast<int>(s)).cache().state(a),
                      Cache::State::Invalid)
                << "line " << l << " phantom sharer " << s;
        }
    }
}

tango::Task
randomWorkload(tango::Env &env, Addr base, int n_lines, int ops,
               std::uint64_t seed)
{
    co_await env.busy(0);
    Rng rng(seed + static_cast<std::uint64_t>(env.id()) * 7919 + 1);
    for (int i = 0; i < ops; ++i) {
        Addr a = base + rng.below(static_cast<std::uint64_t>(n_lines)) *
                            kLineSize;
        co_await env.busy(rng.below(64));
        if (rng.below(100) < 30)
            co_await env.write(a);
        else
            co_await env.read(a);
    }
}

class RandomStressTest : public ::testing::TestWithParam<int>
{};

TEST_P(RandomStressTest, CoherenceInvariantsHold)
{
    const int seed = GetParam();
    MachineConfig cfg = MachineConfig::flash(4);
    // Small caches force evictions, writebacks and replacement hints.
    cfg.cache.sizeBytes = 8192;
    Machine m(cfg);
    const int n_lines = 48;
    Addr base = m.allocAuto(static_cast<Addr>(n_lines) * kLineSize);
    m.run([=](tango::Env &env) {
        return randomWorkload(env, base, n_lines, 300,
                              static_cast<std::uint64_t>(seed));
    });
    m.drain();
    expectCoherent(m, base, n_lines);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStressTest,
                         ::testing::Range(1, 11));

TEST(MachineTest, FlashSlowerThanIdealButClose)
{
    auto run_one = [](bool ideal) {
        MachineConfig cfg =
            ideal ? MachineConfig::ideal(4) : MachineConfig::flash(4);
        Machine m(cfg);
        Addr base = m.allocAuto(64 * kLineSize);
        Tick t = m.run([=](tango::Env &env) -> tango::Task {
            co_await env.busy(0);
            Addr mine = base + static_cast<Addr>(env.id()) * 16 * kLineSize;
            for (int it = 0; it < 4; ++it) {
                for (int i = 0; i < 16; ++i) {
                    co_await env.read(mine + static_cast<Addr>(i) *
                                                 kLineSize);
                    co_await env.busy(200);
                    co_await env.write(mine + static_cast<Addr>(i) *
                                                  kLineSize);
                }
            }
        });
        return t;
    };
    Tick flash = run_one(false);
    Tick ideal = run_one(true);
    EXPECT_GT(flash, ideal);
    // Optimized-workload territory: the flexibility cost is bounded.
    EXPECT_LT(static_cast<double>(flash),
              1.5 * static_cast<double>(ideal));
}

TEST(MachineTest, DeterministicAcrossRuns)
{
    auto run_one = [] {
        MachineConfig cfg = MachineConfig::flash(4);
        Machine m(cfg);
        Addr base = m.allocAuto(32 * kLineSize);
        return m.run([=](tango::Env &env) {
            return randomWorkload(env, base, 32, 200, 7);
        });
    };
    EXPECT_EQ(run_one(), run_one());
}

TEST(MachineTest, BarrierSynchronizesAllProcessors)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    auto bar = std::make_shared<tango::BarrierVar>(m.makeBarrier());
    auto after = std::make_shared<std::vector<Tick>>(4);
    auto before_max = std::make_shared<Tick>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        // Stagger arrival heavily.
        co_await env.busy(
            4000 * static_cast<std::uint64_t>(env.id() + 1));
        *before_max = std::max(*before_max, env.proc().cursor());
        co_await env.barrier(*bar);
        (*after)[static_cast<std::size_t>(env.id())] = env.proc().cursor();
    });
    m.drain();
    for (Tick t : *after)
        EXPECT_GE(t, *before_max); // nobody left before the last arrival
    EXPECT_EQ(bar->episodes, 4u);
}

TEST(MachineTest, BarrierReusableAcrossEpisodes)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    auto bar = std::make_shared<tango::BarrierVar>(m.makeBarrier());
    auto counter = std::make_shared<int>(0);
    auto ok = std::make_shared<bool>(true);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int round = 0; round < 5; ++round) {
            if (env.id() == 0)
                *counter += 1;
            co_await env.barrier(*bar);
            if (*counter != round + 1)
                *ok = false;
            co_await env.barrier(*bar);
        }
    });
    EXPECT_TRUE(*ok);
    EXPECT_EQ(*counter, 5);
}

TEST(MachineTest, LockProvidesMutualExclusion)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    auto lock = std::make_shared<tango::LockVar>(m.makeLock());
    auto in_section = std::make_shared<int>(0);
    auto max_in_section = std::make_shared<int>(0);
    auto total = std::make_shared<int>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int i = 0; i < 10; ++i) {
            co_await env.lockAcquire(*lock);
            *in_section += 1;
            *max_in_section = std::max(*max_in_section, *in_section);
            co_await env.busy(100);
            *total += 1;
            *in_section -= 1;
            co_await env.lockRelease(*lock);
            co_await env.busy(50);
        }
    });
    EXPECT_EQ(*max_in_section, 1);
    EXPECT_EQ(*total, 40);
    EXPECT_EQ(lock->acquisitions, 40u);
}

TEST(MachineTest, SyncTimeIsAttributed)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    auto bar = std::make_shared<tango::BarrierVar>(m.makeBarrier());
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        // Proc 0 arrives very late; others spin in sync.
        if (env.id() == 0)
            co_await env.busy(40000);
        co_await env.barrier(*bar);
    });
    m.drain();
    Summary s = summarize(m);
    EXPECT_GT(s.sync, 0.3);
    const auto &bd1 = m.node(1).proc().breakdown();
    EXPECT_GT(bd1.sync, 5000u);
}

TEST(MachineTest, PlacementPoliciesRouteHomes)
{
    {
        MachineConfig cfg = MachineConfig::flash(4);
        cfg.placement = Placement::RoundRobinPages;
        Machine m(cfg);
        Addr a = m.allocAuto(4 * cfg.pageBytes);
        EXPECT_EQ(m.homeOf(a), 0u);
        EXPECT_EQ(m.homeOf(a + cfg.pageBytes), 1u);
        EXPECT_EQ(m.homeOf(a + 3 * cfg.pageBytes), 3u);
    }
    {
        MachineConfig cfg = MachineConfig::flash(4);
        cfg.placement = Placement::Node0;
        Machine m(cfg);
        Addr a = m.allocAuto(8 * cfg.pageBytes);
        for (int p = 0; p < 8; ++p)
            EXPECT_EQ(m.homeOf(a + static_cast<Addr>(p) * cfg.pageBytes),
                      0u);
    }
    {
        MachineConfig cfg = MachineConfig::flash(4);
        cfg.placement = Placement::FirstFit;
        cfg.firstFitNodeBytes = 2 * cfg.pageBytes;
        Machine m(cfg);
        Addr a = m.allocAuto(6 * cfg.pageBytes);
        EXPECT_EQ(m.homeOf(a), 0u);
        EXPECT_EQ(m.homeOf(a + cfg.pageBytes), 0u);
        EXPECT_EQ(m.homeOf(a + 2 * cfg.pageBytes), 1u);
        EXPECT_EQ(m.homeOf(a + 4 * cfg.pageBytes), 2u);
    }
}

TEST(MachineTest, ExplicitAllocationHonored)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    Addr a = m.alloc(3 * cfg.pageBytes, 2);
    for (int p = 0; p < 3; ++p)
        EXPECT_EQ(m.homeOf(a + static_cast<Addr>(p) * cfg.pageBytes), 2u);
    EXPECT_DEATH(m.homeOf(a + 100 * cfg.pageBytes), "never allocated");
}

TEST(MachineTest, TableTimingModeRuns)
{
    MachineConfig cfg = MachineConfig::flash(4);
    cfg.magic.usePpEmulator = false;
    Machine m(cfg);
    Addr base = m.allocAuto(32 * kLineSize);
    Tick t = m.run([=](tango::Env &env) {
        return randomWorkload(env, base, 32, 100, 3);
    });
    EXPECT_GT(t, 0u);
    m.drain();
    expectCoherent(m, base, 32);
}

TEST(MachineTest, SummaryFractionsSumToOne)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    Addr base = m.allocAuto(32 * kLineSize);
    m.run([=](tango::Env &env) {
        return randomWorkload(env, base, 32, 200, 11);
    });
    m.drain();
    Summary s = summarize(m);
    EXPECT_NEAR(s.busy + s.cont + s.read + s.write + s.sync, 1.0, 1e-9);
    EXPECT_GT(s.missRate, 0.0);
    EXPECT_GT(s.handlersPerMiss, 1.0);
    double dist_sum = s.dist.localClean + s.dist.localDirtyRemote +
                      s.dist.remoteClean + s.dist.remoteDirtyHome +
                      s.dist.remoteDirtyRemote;
    EXPECT_NEAR(dist_sum, 1.0, 1e-9);
}

TEST(MachineTest, SixtyFourProcessorsBootAndRun)
{
    MachineConfig cfg = MachineConfig::flash(64);
    Machine m(cfg);
    Addr base = m.allocAuto(64 * kLineSize);
    Tick t = m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        co_await env.read(base +
                          static_cast<Addr>(env.id()) * kLineSize);
    });
    EXPECT_GT(t, 0u);
}

} // namespace
} // namespace flashsim::machine
