#include "ppisa/ppsim.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "ppisa/decode.hh"
#include "ppisa/microexec.hh"
#include "ppisa/threaded.hh"
#include "sim/logging.hh"

namespace flashsim::ppisa
{

std::string
Program::toString() const
{
    std::ostringstream os;
    os << name << " (" << pairs_.size() << " pairs, " << codeBytes()
       << " bytes)\n";
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
        os << "  " << i << ": [" << pairs_[i].a.toString() << " | "
           << pairs_[i].b.toString() << "]\n";
    }
    return os.str();
}

void
RunStats::accumulate(const RunStats &other)
{
    cycles += other.cycles;
    pairs += other.pairs;
    instrs += other.instrs;
    specials += other.specials;
    aluBranch += other.aluBranch;
    memStall += other.memStall;
    invocations += other.invocations;
}

double
RunStats::dualIssueEfficiency() const
{
    return pairs ? static_cast<double>(instrs) / pairs : 0.0;
}

double
RunStats::specialFraction() const
{
    return aluBranch ? static_cast<double>(specials) / aluBranch : 0.0;
}

double
RunStats::pairsPerInvocation() const
{
    return invocations ? static_cast<double>(pairs) / invocations : 0.0;
}

namespace
{

/** Per-slot execution result. */
struct SlotResult
{
    int destReg = -1;
    std::uint64_t destVal = 0;
    bool branchTaken = false;
    std::int64_t branchTarget = 0;
};

SlotResult
execSlot(const Instr &in, RegFile &regs, PpMemory &mem,
         std::vector<SentMessage> &sent, Cycles &stall)
{
    SlotResult r;
    auto rs = [&] { return regs[in.rs]; };
    auto rt = [&] { return regs[in.rt]; };
    auto setDest = [&](std::uint64_t v) {
        r.destReg = in.rd;
        r.destVal = v;
    };

    switch (in.op) {
      case Op::Nop:
        break;
      case Op::Add: setDest(rs() + rt()); break;
      case Op::Sub: setDest(rs() - rt()); break;
      case Op::And: setDest(rs() & rt()); break;
      case Op::Or: setDest(rs() | rt()); break;
      case Op::Xor: setDest(rs() ^ rt()); break;
      case Op::Sllv: setDest(rs() << (rt() & 63)); break;
      case Op::Srlv: setDest(rs() >> (rt() & 63)); break;
      case Op::Slt:
        setDest(static_cast<std::int64_t>(rs()) <
                        static_cast<std::int64_t>(rt())
                    ? 1
                    : 0);
        break;
      case Op::Sltu: setDest(rs() < rt() ? 1 : 0); break;
      case Op::Addi:
        setDest(rs() + static_cast<std::uint64_t>(in.imm));
        break;
      case Op::Andi:
        setDest(rs() & static_cast<std::uint64_t>(in.imm));
        break;
      case Op::Ori:
        setDest(rs() | static_cast<std::uint64_t>(in.imm));
        break;
      case Op::Xori:
        setDest(rs() ^ static_cast<std::uint64_t>(in.imm));
        break;
      case Op::Slli: setDest(rs() << (in.imm & 63)); break;
      case Op::Srli: setDest(rs() >> (in.imm & 63)); break;
      case Op::Srai:
        setDest(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rs()) >> (in.imm & 63)));
        break;
      case Op::Slti:
        setDest(static_cast<std::int64_t>(rs()) < in.imm ? 1 : 0);
        break;
      case Op::Ld: {
        Cycles extra = 0;
        std::uint64_t v =
            mem.load(rs() + static_cast<std::uint64_t>(in.imm), extra);
        stall += extra;
        setDest(v);
        break;
      }
      case Op::Sd: {
        Cycles extra = 0;
        mem.store(rs() + static_cast<std::uint64_t>(in.imm), rt(), extra);
        stall += extra;
        break;
      }
      case Op::Beq:
        if (rs() == rt()) {
            r.branchTaken = true;
            r.branchTarget = in.imm;
        }
        break;
      case Op::Bne:
        if (rs() != rt()) {
            r.branchTaken = true;
            r.branchTarget = in.imm;
        }
        break;
      case Op::J:
        r.branchTaken = true;
        r.branchTarget = in.imm;
        break;
      case Op::Halt:
        break;
      case Op::Ffs: {
        std::uint64_t v = rs();
        setDest(v == 0 ? 64 : static_cast<std::uint64_t>(
                                  __builtin_ctzll(v)));
        break;
      }
      case Op::Bbs:
        if ((rs() >> in.lo) & 1) {
            r.branchTaken = true;
            r.branchTarget = in.imm;
        }
        break;
      case Op::Bbc:
        if (!((rs() >> in.lo) & 1)) {
            r.branchTaken = true;
            r.branchTarget = in.imm;
        }
        break;
      case Op::Ext:
        setDest((rs() >> in.lo) & fieldMask(0, in.width));
        break;
      case Op::Ins: {
        std::uint64_t mask = fieldMask(in.lo, in.width);
        setDest((regs[in.rd] & ~mask) | ((rs() << in.lo) & mask));
        break;
      }
      case Op::Orfi:
        setDest(rs() | fieldMask(in.lo, in.width));
        break;
      case Op::Andfi:
        setDest(rs() & ~fieldMask(in.lo, in.width));
        break;
      case Op::Send:
        sent.push_back(
            SentMessage{static_cast<int>(in.imm), rs(), rt()});
        break;
    }
    return r;
}

void
countInstr(const Instr &in, RunStats &stats)
{
    if (in.isNop())
        return;
    ++stats.instrs;
    if (in.isSpecial())
        ++stats.specials;
    if (in.isAluOrBranch())
        ++stats.aluBranch;
}

/** One memory operation observed during a threaded-backend run. */
struct MemOp
{
    bool isStore = false;
    Addr addr = 0;
    std::uint64_t value = 0; ///< loaded value / stored value
    Cycles extra = 0;        ///< stall cycles the real memory charged
};

/**
 * Conformance-oracle plumbing: the threaded backend runs against the
 * real memory through RecordingMemory, which logs every operation;
 * the reference interpreter then re-runs against ReplayMemory, which
 * serves the recorded loads (the real memory has already been mutated,
 * so re-issuing the ops would double-apply stores and observe its own
 * writes) and cross-checks that the reference issues the exact same
 * operation sequence.
 */
class RecordingMemory : public PpMemory
{
  public:
    explicit RecordingMemory(PpMemory &real) : real_(real) {}

    std::uint64_t
    load(Addr addr, Cycles &extra_cycles) override
    {
        const std::uint64_t v = real_.load(addr, extra_cycles);
        log_.push_back(MemOp{false, addr, v, extra_cycles});
        return v;
    }

    void
    store(Addr addr, std::uint64_t value, Cycles &extra_cycles) override
    {
        real_.store(addr, value, extra_cycles);
        log_.push_back(MemOp{true, addr, value, extra_cycles});
    }

    const std::vector<MemOp> &log() const { return log_; }

  private:
    PpMemory &real_;
    std::vector<MemOp> log_;
};

class ReplayMemory : public PpMemory
{
  public:
    ReplayMemory(const std::vector<MemOp> &log, const char *prog_name)
        : log_(log), name_(prog_name)
    {
    }

    std::uint64_t
    load(Addr addr, Cycles &extra_cycles) override
    {
        const MemOp &op = next("load", addr);
        if (op.isStore || op.addr != addr)
            mismatch("load", addr);
        extra_cycles = op.extra;
        return op.value;
    }

    void
    store(Addr addr, std::uint64_t value, Cycles &extra_cycles) override
    {
        const MemOp &op = next("store", addr);
        if (!op.isStore || op.addr != addr || op.value != value)
            mismatch("store", addr);
        extra_cycles = op.extra;
    }

    bool drained() const { return pos_ == log_.size(); }

  private:
    const MemOp &
    next(const char *kind, Addr addr)
    {
        if (pos_ >= log_.size())
            panic("PpSim oracle: reference issued an extra %s of "
                  "0x%llx in '%s' (threaded backend issued %zu memory "
                  "ops)", kind, static_cast<unsigned long long>(addr),
                  name_, log_.size());
        return log_[pos_++];
    }

    [[noreturn]] void
    mismatch(const char *kind, Addr addr)
    {
        const MemOp &op = log_[pos_ - 1];
        panic("PpSim oracle: memory-op divergence in '%s' at op %zu: "
              "reference issued %s of 0x%llx, threaded backend issued "
              "%s of 0x%llx", name_, pos_ - 1, kind,
              static_cast<unsigned long long>(addr),
              op.isStore ? "store" : "load",
              static_cast<unsigned long long>(op.addr));
    }

    const std::vector<MemOp> &log_;
    const char *name_;
    std::size_t pos_ = 0;
};

} // namespace

bool
PpSim::oracleEnabled()
{
    static const bool enabled = [] {
        if (const char *env = std::getenv("FS_PP_ORACLE"))
            return env[0] == '1' && env[1] == '\0';
#ifdef NDEBUG
        return false;
#else
        return true;
#endif
    }();
    return enabled;
}

Cycles
PpSim::run(const Program &prog, RegFile &regs, PpMemory &mem,
           std::vector<SentMessage> &sent, RunStats &stats) const
{
    if (prog.pairs().empty())
        panic("PpSim: empty program '%s'", prog.name.c_str());
    return run(prog, prog.decoded(), regs, mem, sent, stats);
}

Cycles
PpSim::run(const Program &prog, const DecodedProgram &d, RegFile &regs,
           PpMemory &mem, std::vector<SentMessage> &sent,
           RunStats &stats) const
{
    if (d.pairs().empty()) [[unlikely]]
        panic("PpSim: empty program '%s'", prog.name.c_str());

    if (backend_ == PpBackend::Threaded) {
        if (checkThreaded_) [[unlikely]]
            return runThreadedChecked(prog, regs, mem, sent, stats);
        // Pick the executor instantiation here rather than through
        // runThreaded(): one less call on the per-invocation path.
        if (mem.isFlat())
            return runThreadedFlat(
                d, regs, static_cast<FlatPpMemory &>(mem), sent, stats);
        return runThreaded(d, regs, mem, sent, stats);
    }

    const DecodedPair *pairs = d.pairs().data();
    const std::size_t npairs = d.pairs().size();

    Cycles cycles = 0;
    std::size_t pc = 0;
    // Load destinations of the previous pair; reading one this pair
    // violates the load-delay scheduling contract.
    std::uint32_t prevLoadMask = 0;
    // Accumulate the per-pair statistics in locals and fold them into
    // stats once at the end: the loop body keeps them in registers
    // instead of re-touching the RunStats fields every pair.
    std::uint64_t instrs = 0, specials = 0, aluBranch = 0, npairsRun = 0;
    Cycles memStall = 0;

    while (true) {
        if (pc >= npairs)
            panic("PpSim: pc %zu out of range in '%s'", pc,
                  d.name().c_str());
        const DecodedPair &pair = pairs[pc];

        // Contract verdicts were resolved at decode time; act on them
        // in the interpreter's check order (intra-pair, load-delay,
        // two-branch) only now that the pair is dynamically reached.
        using Violation = DecodedPair::Violation;
        if (pair.violation == Violation::IntraRaw) [[unlikely]]
            panic("PpSim: intra-pair RAW on r%d at pair %zu of '%s'",
                  int(pair.violationReg), pc, d.name().c_str());
        if (pair.violation == Violation::IntraWaw) [[unlikely]]
            panic("PpSim: intra-pair WAW on r%d at pair %zu of '%s'",
                  int(pair.violationReg), pc, d.name().c_str());
        if ((pair.srcMask & prevLoadMask) != 0) [[unlikely]]
            detail::panicLoadDelay(pair.a, pair.b, pc, d.name().c_str(),
                                   prevLoadMask);
        if (pair.violation == Violation::TwoBranch) [[unlikely]]
            panic("PpSim: two branches in pair %zu of '%s'", pc,
                  d.name().c_str());

        Cycles stall = 0;
        detail::MicroResult ra =
            detail::execMicro(pair.a, regs, mem, sent, stall);
        // Slot b is a Nop in every single-issue pair (and many dual-
        // issue ones): skip the whole switch for it.
        detail::MicroResult rb;
        if (pair.b.op != Op::Nop)
            rb = detail::execMicro(pair.b, regs, mem, sent, stall);
        // Parallel write-back (no intra-pair deps, so order is moot).
        if (ra.destReg > 0)
            regs[ra.destReg] = ra.destVal;
        if (rb.destReg > 0)
            regs[rb.destReg] = rb.destVal;
        regs[0] = 0;

        instrs += pair.instrsInc;
        specials += pair.specialsInc;
        aluBranch += pair.aluBranchInc;
        ++npairsRun;
        cycles += 1 + stall;
        memStall += stall;

        prevLoadMask = pair.loadMask;

        if (pair.halts)
            break;
        if (ra.branchTaken)
            pc = ra.target;
        else if (rb.branchTaken)
            pc = rb.target;
        else
            ++pc;

        if (cycles > kMaxCycles)
            panic("PpSim: runaway handler '%s'", d.name().c_str());
    }

    stats.instrs += instrs;
    stats.specials += specials;
    stats.aluBranch += aluBranch;
    stats.pairs += npairsRun;
    stats.memStall += memStall;
    stats.cycles += cycles;
    ++stats.invocations;
    return cycles;
}

Cycles
PpSim::runThreadedChecked(const Program &prog, RegFile &regs,
                          PpMemory &mem, std::vector<SentMessage> &sent,
                          RunStats &stats) const
{
    const char *name = prog.name.c_str();
    const RegFile regsIn = regs;

    RecordingMemory recording(mem);
    RunStats threadedStats;
    std::vector<SentMessage> threadedSent;
    const Cycles cycles = runThreaded(prog.decoded(), regs, recording,
                                      threadedSent, threadedStats);

    RegFile refRegs = regsIn;
    ReplayMemory replay(recording.log(), name);
    RunStats refStats;
    std::vector<SentMessage> refSent;
    const Cycles refCycles =
        runReference(prog, refRegs, replay, refSent, refStats);

    if (refCycles != cycles)
        panic("PpSim oracle: cycle divergence in '%s': threaded %llu, "
              "reference %llu", name,
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(refCycles));
    if (refRegs != regs)
        for (std::size_t r = 0; r < regs.size(); ++r)
            if (refRegs[r] != regs[r])
                panic("PpSim oracle: register divergence in '%s': r%zu "
                      "threaded 0x%llx, reference 0x%llx", name, r,
                      static_cast<unsigned long long>(regs[r]),
                      static_cast<unsigned long long>(refRegs[r]));
    if (refSent != threadedSent)
        panic("PpSim oracle: sent-message divergence in '%s': threaded "
              "%zu messages, reference %zu", name, threadedSent.size(),
              refSent.size());
    if (!(refStats == threadedStats))
        panic("PpSim oracle: statistics divergence in '%s'", name);
    if (!replay.drained())
        panic("PpSim oracle: threaded backend issued extra memory ops "
              "in '%s'", name);

    sent.insert(sent.end(), threadedSent.begin(), threadedSent.end());
    stats.accumulate(threadedStats);
    return cycles;
}

Cycles
PpSim::runReference(const Program &prog, RegFile &regs, PpMemory &mem,
                    std::vector<SentMessage> &sent, RunStats &stats) const
{
    if (prog.pairs().empty())
        panic("PpSim: empty program '%s'", prog.name.c_str());

    Cycles cycles = 0;
    std::size_t pc = 0;
    // Registers written by loads in the previous pair: using them in the
    // current pair violates the load-delay scheduling contract.
    int prevLoadDest[2] = {-1, -1};

    while (true) {
        if (pc >= prog.pairs().size())
            panic("PpSim: pc %zu out of range in '%s'", pc,
                  prog.name.c_str());
        const InstrPair &pair = prog.pairs()[pc];

        // Static-scheduling contract checks.
        int dest_a = pair.a.destReg();
        if (dest_a > 0) {
            for (int src : pair.b.srcRegs())
                if (src == dest_a)
                    panic("PpSim: intra-pair RAW on r%d at pair %zu of "
                          "'%s'", dest_a, pc, prog.name.c_str());
            if (pair.b.destReg() == dest_a)
                panic("PpSim: intra-pair WAW on r%d at pair %zu of '%s'",
                      dest_a, pc, prog.name.c_str());
        }
        for (const Instr *in : {&pair.a, &pair.b}) {
            for (int src : in->srcRegs()) {
                if (src != 0 &&
                    (src == prevLoadDest[0] || src == prevLoadDest[1])) {
                    panic("PpSim: load-delay violation on r%d at pair %zu "
                          "of '%s'", src, pc, prog.name.c_str());
                }
            }
        }
        if (pair.a.isBranch() && pair.b.isBranch())
            panic("PpSim: two branches in pair %zu of '%s'", pc,
                  prog.name.c_str());

        Cycles stall = 0;
        SlotResult ra = execSlot(pair.a, regs, mem, sent, stall);
        SlotResult rb = execSlot(pair.b, regs, mem, sent, stall);
        // Parallel write-back (no intra-pair deps, so order is moot).
        if (ra.destReg > 0)
            regs[ra.destReg] = ra.destVal;
        if (rb.destReg > 0)
            regs[rb.destReg] = rb.destVal;
        regs[0] = 0;

        countInstr(pair.a, stats);
        countInstr(pair.b, stats);
        ++stats.pairs;
        cycles += 1 + stall;
        stats.memStall += stall;

        prevLoadDest[0] = pair.a.isLoad() ? pair.a.destReg() : -1;
        prevLoadDest[1] = pair.b.isLoad() ? pair.b.destReg() : -1;

        if (pair.a.op == Op::Halt || pair.b.op == Op::Halt)
            break;
        if (ra.branchTaken)
            pc = static_cast<std::size_t>(ra.branchTarget);
        else if (rb.branchTaken)
            pc = static_cast<std::size_t>(rb.branchTarget);
        else
            ++pc;

        if (cycles > kMaxCycles)
            panic("PpSim: runaway handler '%s'", prog.name.c_str());
    }

    stats.cycles += cycles;
    ++stats.invocations;
    return cycles;
}

} // namespace flashsim::ppisa
