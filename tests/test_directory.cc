/** @file Unit tests for the dynamic pointer allocation directory. */

#include <algorithm>
#include <random>
#include <unordered_map>

#include <gtest/gtest.h>

#include "protocol/directory.hh"

namespace flashsim::protocol
{
namespace
{

constexpr Addr kLine = 0x4000;

/**
 * The historical map-backed word store, with the typed directory
 * operations layered purely on loadWord/storeWord: the conformance
 * oracle the paged flat store must match bit for bit. Kept deliberately
 * naive — every access is a map probe — so its correctness is obvious
 * by inspection.
 */
class LegacyMapStore
{
  public:
    LegacyMapStore() { storeWord(linkAddr(0), freeHead_); }

    std::uint64_t
    loadWord(Addr a) const
    {
        auto it = words_.find(a);
        return it == words_.end() ? 0 : it->second;
    }
    void storeWord(Addr a, std::uint64_t v) { words_[a] = v; }

    DirHeader
    header(Addr line) const
    {
        return DirHeader::unpack(loadWord(headerAddr(line)));
    }
    void
    setHeader(Addr line, const DirHeader &h)
    {
        storeWord(headerAddr(line), h.pack());
    }
    LinkEntry
    link(std::uint32_t idx) const
    {
        return LinkEntry::unpack(loadWord(linkAddr(idx)));
    }
    void
    setLink(std::uint32_t idx, const LinkEntry &e)
    {
        storeWord(linkAddr(idx), e.pack());
    }

    void
    addSharer(Addr line, NodeId node)
    {
        DirHeader h = header(line);
        std::uint32_t idx = allocLink();
        setLink(idx, LinkEntry{node, h.head});
        h.head = idx;
        setHeader(line, h);
    }

    int
    removeSharer(Addr line, NodeId node)
    {
        DirHeader h = header(line);
        std::uint32_t idx = h.head;
        std::uint32_t prev = 0;
        int pos = 0;
        while (idx != 0) {
            LinkEntry e = link(idx);
            if (e.node == node) {
                if (prev == 0) {
                    h.head = e.next;
                    setHeader(line, h);
                } else {
                    LinkEntry pe = link(prev);
                    pe.next = e.next;
                    setLink(prev, pe);
                }
                freeLink(idx);
                return pos;
            }
            prev = idx;
            idx = e.next;
            ++pos;
        }
        return -1;
    }

    void
    clearSharers(Addr line)
    {
        DirHeader h = header(line);
        std::uint32_t idx = h.head;
        while (idx != 0) {
            std::uint32_t next = link(idx).next;
            freeLink(idx);
            idx = next;
        }
        h.head = 0;
        setHeader(line, h);
    }

    std::vector<NodeId>
    sharers(Addr line) const
    {
        std::vector<NodeId> out;
        std::uint32_t idx = header(line).head;
        while (idx != 0) {
            LinkEntry e = link(idx);
            out.push_back(e.node);
            idx = e.next;
        }
        return out;
    }

    bool
    isSharer(Addr line, NodeId node) const
    {
        std::uint32_t idx = header(line).head;
        while (idx != 0) {
            LinkEntry e = link(idx);
            if (e.node == node)
                return true;
            idx = e.next;
        }
        return false;
    }

    /** Highest link index ever written (for word-range comparison). */
    std::uint32_t maxLinkIndex() const { return nextUnused_; }

  private:
    std::uint32_t
    allocLink()
    {
        std::uint32_t idx = freeHead_;
        std::uint32_t next = link(idx).next;
        if (next == 0) {
            next = nextUnused_++;
            setLink(next, LinkEntry{0, 0});
        }
        freeHead_ = next;
        storeWord(linkAddr(0), freeHead_);
        return idx;
    }
    void
    freeLink(std::uint32_t idx)
    {
        setLink(idx, LinkEntry{0, freeHead_});
        freeHead_ = idx;
        storeWord(linkAddr(0), freeHead_);
    }

    std::unordered_map<Addr, std::uint64_t> words_;
    std::uint32_t freeHead_ = 1;
    std::uint32_t nextUnused_ = 2;
};

TEST(DirHeader, PackUnpackRoundtrip)
{
    DirHeader h;
    h.dirty = true;
    h.pending = true;
    h.head = 0x1234;
    h.owner = 42;
    DirHeader r = DirHeader::unpack(h.pack());
    EXPECT_EQ(r.dirty, h.dirty);
    EXPECT_EQ(r.pending, h.pending);
    EXPECT_EQ(r.head, h.head);
    EXPECT_EQ(r.owner, h.owner);
}

TEST(LinkEntry, PackUnpackRoundtrip)
{
    LinkEntry e{55, 0xbeef};
    LinkEntry r = LinkEntry::unpack(e.pack());
    EXPECT_EQ(r.node, e.node);
    EXPECT_EQ(r.next, e.next);
}

TEST(DirectoryStore, EmptyLineHasNoSharers)
{
    DirectoryStore d;
    EXPECT_EQ(d.countSharers(kLine), 0);
    EXPECT_TRUE(d.sharers(kLine).empty());
    EXPECT_FALSE(d.isSharer(kLine, 3));
    DirHeader h = d.header(kLine);
    EXPECT_FALSE(h.dirty);
    EXPECT_EQ(h.head, 0u);
}

TEST(DirectoryStore, AddSharersPrepends)
{
    DirectoryStore d;
    d.addSharer(kLine, 1);
    d.addSharer(kLine, 2);
    d.addSharer(kLine, 3);
    EXPECT_EQ(d.countSharers(kLine), 3);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{3, 2, 1}));
    EXPECT_TRUE(d.isSharer(kLine, 2));
    EXPECT_FALSE(d.isSharer(kLine, 9));
    EXPECT_EQ(d.liveLinks(), 3u);
}

TEST(DirectoryStore, RemoveSharerReportsPosition)
{
    DirectoryStore d;
    d.addSharer(kLine, 1);
    d.addSharer(kLine, 2);
    d.addSharer(kLine, 3); // list: 3, 2, 1
    EXPECT_EQ(d.removeSharer(kLine, 3), 0);
    EXPECT_EQ(d.removeSharer(kLine, 1), 1);
    EXPECT_EQ(d.removeSharer(kLine, 7), -1);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{2}));
    EXPECT_EQ(d.liveLinks(), 1u);
}

TEST(DirectoryStore, RemoveMiddleRelinksList)
{
    DirectoryStore d;
    for (NodeId n = 1; n <= 5; ++n)
        d.addSharer(kLine, n); // 5 4 3 2 1
    EXPECT_EQ(d.removeSharer(kLine, 3), 2);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{5, 4, 2, 1}));
}

TEST(DirectoryStore, ClearSharersFreesEverything)
{
    DirectoryStore d;
    for (NodeId n = 0; n < 16; ++n)
        d.addSharer(kLine, n);
    d.clearSharers(kLine);
    EXPECT_EQ(d.countSharers(kLine), 0);
    EXPECT_EQ(d.liveLinks(), 0u);
}

TEST(DirectoryStore, FreeListRecyclesEntries)
{
    DirectoryStore d;
    d.addSharer(kLine, 1);
    std::uint32_t first = d.header(kLine).head;
    EXPECT_EQ(d.removeSharer(kLine, 1), 0);
    d.addSharer(kLine, 2);
    EXPECT_EQ(d.header(kLine).head, first); // same slot reused
}

TEST(DirectoryStore, TwoLinesIndependent)
{
    DirectoryStore d;
    constexpr Addr other = kLine + kLineSize;
    d.addSharer(kLine, 1);
    d.addSharer(other, 2);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{1}));
    EXPECT_EQ(d.sharers(other), (std::vector<NodeId>{2}));
}

TEST(DirectoryStore, HeaderBitsIndependentOfList)
{
    DirectoryStore d;
    d.addSharer(kLine, 4);
    DirHeader h = d.header(kLine);
    h.dirty = true;
    h.owner = 4;
    d.setHeader(kLine, h);
    EXPECT_EQ(d.sharers(kLine), (std::vector<NodeId>{4}));
    EXPECT_TRUE(d.header(kLine).dirty);
}

TEST(DirectoryStore, WordViewMatchesTypedView)
{
    DirectoryStore d;
    d.addSharer(kLine, 9);
    std::uint64_t w = d.loadWord(headerAddr(kLine));
    DirHeader h = DirHeader::unpack(w);
    EXPECT_EQ(h.head, d.header(kLine).head);
    LinkEntry e = LinkEntry::unpack(d.loadWord(linkAddr(h.head)));
    EXPECT_EQ(e.node, 9u);
    EXPECT_EQ(e.next, 0u);
}

TEST(DirectoryStore, FreeHeadWordMirrored)
{
    DirectoryStore d;
    // The word at link index 0 always holds the current free head.
    std::uint64_t fh0 = d.loadWord(linkAddr(0));
    EXPECT_NE(fh0, 0u);
    d.addSharer(kLine, 1);
    std::uint64_t fh1 = d.loadWord(linkAddr(0));
    EXPECT_NE(fh0, fh1);
}

TEST(DirectoryStore, PoolExhaustionIsFatal)
{
    DirectoryStore d(4);
    d.addSharer(kLine, 1);
    d.addSharer(kLine, 2);
    EXPECT_DEATH(
        {
            for (NodeId n = 3; n < 10; ++n)
                d.addSharer(kLine, n);
        },
        "pool exhausted");
}

TEST(DirectoryStore, HeaderAddrGeometry)
{
    // 16 directory headers (8 bytes each) share one 128-byte MDC line,
    // so headers for 2 KB of contiguous data live on one MDC line
    // (Section 5.2).
    Addr a0 = headerAddr(0);
    Addr a1 = headerAddr(15 * kLineSize);
    Addr a2 = headerAddr(16 * kLineSize);
    EXPECT_EQ(a1 - a0, 15u * 8u);
    EXPECT_EQ(a2 - a0, 16u * 8u);
    EXPECT_EQ(a0 / 128, a1 / 128);
    EXPECT_NE(a0 / 128, a2 / 128);
}

TEST(DirectoryStore, StressManyLinesAndSharers)
{
    DirectoryStore d;
    for (int l = 0; l < 64; ++l) {
        Addr line = static_cast<Addr>(l) * kLineSize;
        for (NodeId n = 0; n < 16; ++n)
            d.addSharer(line, n);
    }
    EXPECT_EQ(d.liveLinks(), 64u * 16u);
    for (int l = 0; l < 64; ++l) {
        Addr line = static_cast<Addr>(l) * kLineSize;
        EXPECT_EQ(d.countSharers(line), 16);
        for (NodeId n = 0; n < 16; ++n)
            EXPECT_GE(d.removeSharer(line, n), 0);
    }
    EXPECT_EQ(d.liveLinks(), 0u);
}

TEST(DirectoryOracle, RandomizedSequencesMatchLegacyMapStore)
{
    // Drive the flat store and the historical map-backed oracle through
    // the same randomized add/remove/clear/header-poke sequence. The
    // allocation discipline is deterministic, so not just the typed
    // results but the raw word view must stay bit-identical throughout.
    std::mt19937 rng(0xf1a54u);
    DirectoryStore d;
    LegacyMapStore o;
    constexpr int kLines = 12;
    constexpr NodeId kNodes = 16;
    constexpr int kOps = 4000;

    auto line_of = [](int i) { return static_cast<Addr>(i) * kLineSize; };

    for (int i = 0; i < kOps; ++i) {
        Addr line = line_of(static_cast<int>(rng() % kLines));
        NodeId node = static_cast<NodeId>(rng() % kNodes);
        switch (rng() % 8) {
        case 0:
        case 1:
        case 2:
        case 3:
            // The protocol never double-adds a sharer; mirror that.
            if (!d.isSharer(line, node)) {
                d.addSharer(line, node);
                o.addSharer(line, node);
            }
            break;
        case 4:
        case 5:
            ASSERT_EQ(d.removeSharer(line, node),
                      o.removeSharer(line, node));
            break;
        case 6:
            d.clearSharers(line);
            o.clearSharers(line);
            break;
        case 7: {
            // Flip dirty/owner through the raw word view, the way a PP
            // handler program would.
            std::uint64_t w = d.loadWord(headerAddr(line));
            ASSERT_EQ(w, o.loadWord(headerAddr(line)));
            DirHeader h = DirHeader::unpack(w);
            h.dirty = !h.dirty;
            h.owner = node;
            d.storeWord(headerAddr(line), h.pack());
            o.storeWord(headerAddr(line), h.pack());
            break;
        }
        }
        ASSERT_EQ(d.isSharer(line, node), o.isSharer(line, node));
    }

    for (int l = 0; l < kLines; ++l) {
        Addr line = line_of(l);
        EXPECT_EQ(d.sharers(line), o.sharers(line)) << "line " << l;
        EXPECT_EQ(d.loadWord(headerAddr(line)), o.loadWord(headerAddr(line)))
            << "header word, line " << l;
    }
    // Whole link-pool region, including the mirrored free head at index
    // 0 and every slot the sequence ever touched.
    for (std::uint32_t idx = 0; idx <= o.maxLinkIndex(); ++idx)
        EXPECT_EQ(d.loadWord(linkAddr(idx)), o.loadWord(linkAddr(idx)))
            << "link word " << idx;
}

TEST(DirectoryOracle, WordViewMatchesOutsideDecodedRegions)
{
    // Misaligned and out-of-region addresses take the overflow path and
    // must behave exactly like the historical map: keyed on the raw
    // address, zero until written.
    DirectoryStore d;
    LegacyMapStore o;
    const Addr addrs[] = {
        headerAddr(kLine) + 1,              // misaligned header
        linkAddr(7) + 3,                    // misaligned link
        Addr{0x1234},                       // below every region
        kAckTableBase + kAckTableEntries * 8, // past the ack table
    };
    for (Addr a : addrs) {
        EXPECT_EQ(d.loadWord(a), o.loadWord(a));
        d.storeWord(a, 0xdeadbeef0 + a);
        o.storeWord(a, 0xdeadbeef0 + a);
        EXPECT_EQ(d.loadWord(a), o.loadWord(a));
    }
    // The misaligned stores must not have leaked into the aligned slots.
    EXPECT_EQ(d.loadWord(headerAddr(kLine)), o.loadWord(headerAddr(kLine)));
    EXPECT_EQ(d.loadWord(linkAddr(7)), o.loadWord(linkAddr(7)));
}

TEST(DirectoryStore, FreeListReusedAfterClearSharers)
{
    DirectoryStore d;
    constexpr NodeId kSharerCount = 8;
    for (NodeId n = 0; n < kSharerCount; ++n)
        d.addSharer(kLine, n);
    // Record the pool high-water mark: the largest link index on the
    // list after the first fill.
    std::uint32_t high = 0;
    for (std::uint32_t idx = d.header(kLine).head; idx != 0;
         idx = d.link(idx).next)
        high = std::max(high, idx);

    d.clearSharers(kLine);
    EXPECT_EQ(d.liveLinks(), 0u);

    for (NodeId n = 0; n < kSharerCount; ++n)
        d.addSharer(kLine, n);
    EXPECT_EQ(d.liveLinks(), kSharerCount);
    // Refilling must recycle the freed slots, never grow the pool.
    for (std::uint32_t idx = d.header(kLine).head; idx != 0;
         idx = d.link(idx).next)
        EXPECT_LE(idx, high);
}

} // namespace
} // namespace flashsim::protocol
