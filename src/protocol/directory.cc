#include "protocol/directory.hh"

#include "ppisa/instruction.hh"
#include "sim/logging.hh"

namespace flashsim::protocol
{

using ppisa::fieldMask;
namespace df = dirfield;

DirHeader
DirHeader::unpack(std::uint64_t w)
{
    DirHeader h;
    h.dirty = (w >> df::kDirtyBit) & 1;
    h.pending = (w >> df::kPendingBit) & 1;
    h.head = static_cast<std::uint32_t>((w >> df::kHeadLo) &
                                        fieldMask(0, df::kHeadWidth));
    h.owner = static_cast<NodeId>((w >> df::kOwnerLo) &
                                  fieldMask(0, df::kOwnerWidth));
    return h;
}

std::uint64_t
DirHeader::pack() const
{
    std::uint64_t w = 0;
    w |= static_cast<std::uint64_t>(dirty) << df::kDirtyBit;
    w |= static_cast<std::uint64_t>(pending) << df::kPendingBit;
    w |= (static_cast<std::uint64_t>(head) & fieldMask(0, df::kHeadWidth))
         << df::kHeadLo;
    w |= (static_cast<std::uint64_t>(owner) & fieldMask(0, df::kOwnerWidth))
         << df::kOwnerLo;
    return w;
}

LinkEntry
LinkEntry::unpack(std::uint64_t w)
{
    LinkEntry e;
    e.node = static_cast<NodeId>(w & 0xffff);
    e.next = static_cast<std::uint32_t>((w >> 16) & 0xffff);
    return e;
}

std::uint64_t
LinkEntry::pack() const
{
    return (static_cast<std::uint64_t>(node) & 0xffff) |
           ((static_cast<std::uint64_t>(next) & 0xffff) << 16);
}

DirectoryStore::DirectoryStore(std::uint32_t pool_limit)
    : poolLimit_(pool_limit)
{
    // The link pool is populated sequentially from index 1; pre-size a
    // first chunk so early handler activity never reallocates.
    links_.reserve(256);
    ackTable_.assign(kAckTableEntries, 0);
    mirrorFreeHead();
}

void
DirectoryStore::setHeaderWord(std::uint64_t w, std::uint64_t v)
{
    std::uint64_t page = w / kPageWords;
    if (page >= headerPages_.size())
        headerPages_.resize(page + 1);
    if (!headerPages_[page]) {
        headerPages_[page] =
            std::make_unique<std::uint64_t[]>(kPageWords);
        // make_unique value-initializes: the page reads as zeros, the
        // same as absent keys in the historical map-backed store.
    }
    headerPages_[page][w % kPageWords] = v;
}

void
DirectoryStore::setLinkWord(std::uint64_t idx, std::uint64_t v)
{
    if (idx >= links_.size()) {
        std::size_t want = links_.size() < 128 ? 256 : links_.size() * 2;
        if (want <= idx)
            want = static_cast<std::size_t>(idx) + 1;
        links_.resize(want, 0);
    }
    links_[idx] = v;
}

std::uint64_t
DirectoryStore::loadWord(Addr a) const
{
    // Region decoder: header page, link pool, ack table, or overflow.
    // Misaligned addresses never alias onto a word slot (the historical
    // store keyed on the raw address), so they take the overflow path.
    if ((a & 7) == 0) {
        if (a >= kDirHeaderBase && a < kLinkPoolBase) {
            std::uint64_t w = (a - kDirHeaderBase) >> 3;
            if (w < kMaxHeaderWords)
                return headerWord(w);
        } else if (a >= kLinkPoolBase && a < kAckTableBase) {
            std::uint64_t w = (a - kLinkPoolBase) >> 3;
            if (w < kMaxLinkWords)
                return linkWord(w);
        } else if (a >= kAckTableBase) {
            std::uint64_t w = (a - kAckTableBase) >> 3;
            if (w < kAckTableEntries)
                return ackTable_[w];
        }
    }
    auto it = overflow_.find(a);
    return it == overflow_.end() ? 0 : it->second;
}

void
DirectoryStore::storeWord(Addr a, std::uint64_t v)
{
    if ((a & 7) == 0) {
        if (a >= kDirHeaderBase && a < kLinkPoolBase) {
            std::uint64_t w = (a - kDirHeaderBase) >> 3;
            if (w < kMaxHeaderWords) {
                setHeaderWord(w, v);
                return;
            }
        } else if (a >= kLinkPoolBase && a < kAckTableBase) {
            std::uint64_t w = (a - kLinkPoolBase) >> 3;
            if (w < kMaxLinkWords) {
                setLinkWord(w, v);
                return;
            }
        } else if (a >= kAckTableBase) {
            std::uint64_t w = (a - kAckTableBase) >> 3;
            if (w < kAckTableEntries) {
                ackTable_[w] = v;
                return;
            }
        }
    }
    overflow_[a] = v;
}

DirHeader
DirectoryStore::header(Addr line) const
{
    std::uint64_t w = lineNumber(line);
    if (w < kMaxHeaderWords)
        return DirHeader::unpack(headerWord(w));
    return DirHeader::unpack(loadWord(headerAddr(line)));
}

void
DirectoryStore::setHeader(Addr line, const DirHeader &h)
{
    std::uint64_t w = lineNumber(line);
    if (w < kMaxHeaderWords)
        setHeaderWord(w, h.pack());
    else
        storeWord(headerAddr(line), h.pack());
}

LinkEntry
DirectoryStore::link(std::uint32_t idx) const
{
    return LinkEntry::unpack(linkWord(idx));
}

void
DirectoryStore::setLink(std::uint32_t idx, const LinkEntry &e)
{
    setLinkWord(idx, e.pack());
}

std::uint32_t
DirectoryStore::allocLink()
{
    std::uint32_t idx = freeHead_;
    std::uint32_t next = link(idx).next;
    if (next == 0) {
        if (nextUnused_ >= poolLimit_)
            fatal("DirectoryStore: sharer link pool exhausted (%u entries)",
                  poolLimit_);
        next = nextUnused_++;
        setLink(next, LinkEntry{0, 0});
    }
    freeHead_ = next;
    mirrorFreeHead();
    ++liveLinks_;
    return idx;
}

void
DirectoryStore::freeLink(std::uint32_t idx)
{
    setLink(idx, LinkEntry{0, freeHead_});
    freeHead_ = idx;
    mirrorFreeHead();
    --liveLinks_;
}

void
DirectoryStore::mirrorFreeHead()
{
    // The free-list head lives at link index 0 so PP handler programs can
    // load/store it like the real protocol does.
    setLinkWord(0, freeHead_);
}

void
DirectoryStore::addSharer(Addr line, NodeId node)
{
    DirHeader h = header(line);
    std::uint32_t idx = allocLink();
    setLink(idx, LinkEntry{node, h.head});
    h.head = idx;
    setHeader(line, h);
}

int
DirectoryStore::removeSharer(Addr line, NodeId node)
{
    DirHeader h = header(line);
    std::uint32_t idx = h.head;
    std::uint32_t prev = 0;
    int pos = 0;
    while (idx != 0) {
        LinkEntry e = link(idx);
        if (e.node == node) {
            if (prev == 0) {
                h.head = e.next;
                setHeader(line, h);
            } else {
                LinkEntry pe = link(prev);
                pe.next = e.next;
                setLink(prev, pe);
            }
            freeLink(idx);
            return pos;
        }
        prev = idx;
        idx = e.next;
        ++pos;
    }
    return -1;
}

std::vector<NodeId>
DirectoryStore::sharers(Addr line) const
{
    std::vector<NodeId> out;
    std::uint32_t idx = header(line).head;
    while (idx != 0) {
        LinkEntry e = link(idx);
        out.push_back(e.node);
        idx = e.next;
    }
    return out;
}

bool
DirectoryStore::isSharer(Addr line, NodeId node) const
{
    std::uint32_t idx = header(line).head;
    while (idx != 0) {
        LinkEntry e = link(idx);
        if (e.node == node)
            return true;
        idx = e.next;
    }
    return false;
}

int
DirectoryStore::countSharers(Addr line) const
{
    int n = 0;
    std::uint32_t idx = header(line).head;
    while (idx != 0) {
        ++n;
        idx = link(idx).next;
    }
    return n;
}

void
DirectoryStore::clearSharers(Addr line)
{
    DirHeader h = header(line);
    std::uint32_t idx = h.head;
    while (idx != 0) {
        std::uint32_t next = link(idx).next;
        freeLink(idx);
        idx = next;
    }
    h.head = 0;
    setHeader(line, h);
}

} // namespace flashsim::protocol
