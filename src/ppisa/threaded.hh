/**
 * @file
 * Threaded-code PP execution backend.
 *
 * The decoded interpreter (ppsim.cc) still pays one indirect switch
 * dispatch, a generic two-slot executor, and a by-value result/writeback
 * dance per pair. This backend lowers each DecodedPair once more, into a
 * ThreadedOp tagged with a *kernel id*: the executor is a single
 * function whose kernels are computed-goto labels (token threading), so
 * every pair jumps straight to a block specialized for its shape —
 * per-opcode kernels for single-issue pairs, fused kernels for the
 * hottest dual-issue combinations reported by the static micro-op
 * profile pass (ppc/profile.hh), and a generic fallback that reuses the
 * interpreter's own execMicro for everything else.
 *
 * Work the interpreter re-did every pair is resolved at build time:
 *  - static contract verdicts become a dedicated panic kernel, so clean
 *    pairs carry no violation branches at all;
 *  - the load-delay check runs only for pairs some static predecessor
 *    could actually poison (none, in correctly scheduled code);
 *  - the pc bounds check disappears — branch targets are validated at
 *    build time and fall-through off the end lands on a sentinel op
 *    that raises the interpreter's exact out-of-range panic.
 *
 * Architectural behaviour — register/memory/message effects, cycle
 * charges, statistics, and every contract panic text — is bit-identical
 * to PpSim's interpreter (and therefore to runReference). This is
 * enforced by the debug conformance oracle in ppsim.cc (FS_PP_ORACLE),
 * the differential fuzz suite in tests/test_pp_backends.cc, and the
 * coherence sentinel running full workloads on this backend in CI.
 */

#ifndef FLASHSIM_PPISA_THREADED_HH_
#define FLASHSIM_PPISA_THREADED_HH_

#include <cstdint>
#include <vector>

#include "ppisa/decode.hh"

namespace flashsim::ppisa
{

/**
 * Kernel ids for the token-threaded executor. Every ThreadedOp names
 * one; the executor's dispatch table maps ids to computed-goto labels.
 */
enum class ThreadedKernel : std::uint8_t
{
    Generic,    ///< any pair: interpreter-equivalent two-slot execution
                ///< with the full bounds + load-delay checked epilogue
    Violation,  ///< decode-time contract violation; panics when reached
    OutOfRange, ///< sentinel one past the last pair (fall-off panic)
    Halt,       ///< {Halt, Nop}: fold stats and return
    Nop,        ///< {Nop, Nop} padding pair

    // --- single-issue (slot b == Nop, rd != 0 where one is written) ---
    Add, Sub, And, Or, Xor, Sllv, Srlv, Slt, Sltu,
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
    Ld, Sd,
    Beq, Bne, J,
    Ffs, Bbs, Bbc, Ext, Ins, Orfi, Andfi,
    Send,

    // --- fused dual-issue fast paths. The set mirrors the hottest
    //     dual-issue combinations in the static micro-op profile over
    //     the protocol handler set (ppc/profile.hh): [ld|addi] 8,
    //     [add|ins] 5, [ld|send] 5, [sd|send] 5, [slli|ins] 4,
    //     [ld|ext] 4, [ext|ext] 4, [send|addi] 4, [addi|send] 3, ...
    //     — the named kernels take the top entries, the class-based
    //     ones (pure-ALU × {ALU, Ld, Send, branch}) the tail. ---
    FuseAddiAddi, ///< [Addi | Addi]
    FuseLdAddi,   ///< [Ld | Addi]: the profile's hottest dual pair
    FuseLdAlu,    ///< Ld in a, any pure-ALU op in b
    FuseLdSend,   ///< [Ld | Send]
    FuseSdSend,   ///< [Sd | Send]
    FuseAluAlu,   ///< both slots pure ALU
    FuseAluLd,    ///< pure ALU in a, Ld in b
    FuseAluSend,  ///< pure ALU in a, Send in b
    FuseSendAlu,  ///< Send in a, pure ALU in b
    FuseAluBr,    ///< pure ALU in a, branch in b

    Count_, ///< number of kernels (dispatch table size)
};

/** One lowered pair: the decoded operands plus the kernel token. */
struct ThreadedOp
{
    MicroOp a, b;
    std::uint32_t srcMask = 0;
    std::uint32_t loadMask = 0;
    std::uint8_t instrsInc = 0;
    std::uint8_t specialsInc = 0;
    std::uint8_t aluBranchInc = 0;
    /**
     * The pair's statistics deltas packed into two words so the
     * executor folds all four counters with two adds per pair:
     *   statPackA = instrsInc    | specialsInc << 32
     *   statPackB = aluBranchInc | 1 << 32   (the pair count)
     * 32-bit lanes cannot carry into each other: the runaway-cycles
     * cap bounds a run at kMaxCycles + 1 pairs, two instructions each,
     * far below 2^32.
     */
    std::uint64_t statPackA = 0;
    std::uint64_t statPackB = 0;
    ThreadedKernel kernel = ThreadedKernel::Generic;
    bool halts = false; ///< for the generic kernel
    DecodedPair::Violation violation = DecodedPair::Violation::None;
    std::uint8_t violationReg = 0;
    /** Some static predecessor's loads overlap this pair's sources, so
     *  the dynamic load-delay check must run (forces Generic kernel). */
    bool checkLoadDelay = false;
};

/**
 * The threaded-code image of one program. Built by DecodedProgram
 * alongside the micro-op decode (eagerly, so pre-decoded shared handler
 * sets publish it race-free) and immutable afterwards.
 */
class ThreadedProgram
{
  public:
    ThreadedProgram(const std::string &name,
                    const std::vector<DecodedPair> &pairs);

    /** Lowered ops; ops()[pairs.size()] is the out-of-range sentinel. */
    const std::vector<ThreadedOp> &ops() const { return ops_; }

    /** Executable pairs (excluding the sentinel). */
    std::size_t size() const { return ops_.size() - 1; }

    /** Fraction of non-padding ops mapped to a specialized (non-
     *  Generic) kernel — pinned by tests so fusion coverage cannot
     *  silently rot as the handler set evolves. */
    double specializedFraction() const;

  private:
    std::vector<ThreadedOp> ops_;
};

/**
 * Execute @p d's threaded image from pair 0 until Halt. Exact same
 * contract as PpSim::run (which forwards here for the Threaded
 * backend); see ppsim.hh. Picks the statically-typed FlatPpMemory
 * instantiation when mem.isFlat().
 */
Cycles runThreaded(const DecodedProgram &d, RegFile &regs, PpMemory &mem,
                   std::vector<SentMessage> &sent, RunStats &stats);

/** The FlatPpMemory instantiation of the executor, for callers that
 *  already hold the concrete type (PpSim::run's isFlat() dispatch):
 *  every memory op is inlined into its kernel. */
Cycles runThreadedFlat(const DecodedProgram &d, RegFile &regs,
                       FlatPpMemory &mem, std::vector<SentMessage> &sent,
                       RunStats &stats);

} // namespace flashsim::ppisa

#endif // FLASHSIM_PPISA_THREADED_HH_
