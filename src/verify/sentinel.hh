/**
 * @file
 * The coherence sentinel: composition root of the verification layer.
 *
 * One Sentinel per Machine owns the three cooperating pieces —
 * CoherenceOracle (golden shadow state, invariant checks), Watchdog
 * (transaction ages + global progress), FaultInjector (seeded
 * perturbations) — plus the per-node trace rings they all dump from.
 * The hardware models only ever talk to the Sentinel through narrow
 * hooks (observeHandler, txnStart/txnRetire, injector()); policy (dump
 * post-mortems, halt or record) lives entirely here.
 *
 * The Sentinel registers itself with the logging layer's thread-local
 * post-mortem registry, so any fatal()/panic() on the machine's thread
 * replays the trace rings and watchdog status before dying.
 */

#ifndef FLASHSIM_VERIFY_SENTINEL_HH_
#define FLASHSIM_VERIFY_SENTINEL_HH_

#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "protocol/handlers.hh"
#include "protocol/message.hh"
#include "sim/event_queue.hh"
#include "verify/fault.hh"
#include "verify/oracle.hh"
#include "verify/params.hh"
#include "verify/trace.hh"
#include "verify/watchdog.hh"

namespace flashsim::verify
{

class Sentinel
{
  public:
    Sentinel(EventQueue &eq, const VerifyParams &params, int num_nodes);
    ~Sentinel();

    Sentinel(const Sentinel &) = delete;
    Sentinel &operator=(const Sentinel &) = delete;

    /** Construct the oracle (if enabled) over the live machine. Called
     *  by machine::Machine once all nodes exist. */
    void wireOracle(CoherenceOracle::Wiring wiring);

    /**
     * Windowed (sharded) observation mode: hooks buffer per node
     * instead of applying immediately — nodes advance on different
     * threads, and the oracle/watchdog/trace state is shared. At every
     * window edge the machine calls flushWindow(), which merges the
     * buffers in canonical (tick, node, arrival) order and applies
     * them; the trace rings and golden transitions end up identical to
     * a single-threaded run's, and the oracle's cross-node checks run
     * against the quiescent window-edge state.
     */
    void setWindowed(bool windowed) { windowed_ = windowed; }

    /** Per-node shard queues: in windowed mode txnStart/txnRetire stamp
     *  their buffered observation with the *calling node's* queue time
     *  (the hook runs on that node's shard thread — reading the main
     *  queue's clock from there would race and be the wrong time). */
    void setNodeQueues(std::vector<const EventQueue *> qs)
    {
        nodeEqs_ = std::move(qs);
    }

    /** Apply all buffered observations (window edge, shards parked). */
    void flushWindow();

    // -- Hooks from the hardware models -------------------------------------

    /** A protocol handler completed (all its cache operations applied).
     *  Records the trace entry and runs the oracle transition+checks. */
    void observeHandler(NodeId node, bool at_home, Tick now,
                        const protocol::Message &msg,
                        const protocol::HandlerResult &res);

    /** An injector action happened at @p node (trace only). */
    void recordInjected(NodeId node, Tick now, const protocol::Message &msg,
                        TraceEntry::Kind kind);

    /** A processor transaction left / completed at @p node. */
    void txnStart(NodeId node, Addr addr);
    void txnRetire(NodeId node, Addr addr);
    /** A timed-out transaction was legitimately re-issued at @p node:
     *  the watchdog restarts its age clock (retries are recovery, not
     *  wedges). */
    void txnRetry(NodeId node, Addr addr);

    FaultInjector &injector() { return injector_; }

    /**
     * Test-only hook: runs after a handler's directory transition and
     * before the oracle check, free to corrupt machine state (e.g. via
     * a captured DirectoryStore) so tests can prove the oracle catches
     * a broken handler. Null in normal operation.
     */
    std::function<void(NodeId node, const protocol::Message &msg,
                       protocol::HandlerResult &res)>
        testMutator;

    // -- Whole-run checks and reporting -------------------------------------

    /** Oracle whole-machine check on a quiesced machine. */
    void finalCheck();

    Counter violations() const
    {
        return oracle_ ? oracle_->violations() : 0;
    }
    Counter trips() const { return watchdog_ ? watchdog_->trips() : 0; }
    bool dumped() const { return dumped_; }

    const CoherenceOracle *oracle() const { return oracle_.get(); }
    const Watchdog *watchdog() const { return watchdog_.get(); }
    const FaultInjector &injectorStats() const { return injector_; }
    const VerifyParams &params() const { return params_; }

    /** One-line component summary for the CLI. */
    void writeSummary(std::ostream &os) const;

    /** Full post-mortem: watchdog status, oracle violations, injector
     *  counters, per-node trace rings. */
    void writePostMortem(std::ostream &os, const char *reason) const;

  private:
    /** One buffered observation (windowed mode). */
    struct Deferred
    {
        enum class K : std::uint8_t
        {
            Handler,
            Injected,
            TxnStart,
            TxnRetire,
            TxnRetry,
        };

        K k;
        bool atHome = false;
        TraceEntry::Kind ikind = TraceEntry::Kind::Handler;
        Tick tick = 0;
        Addr addr = 0;
        protocol::Message msg{};
        protocol::HandlerResult res{};
    };

    void onViolation(const Violation &v);
    void onTrip(const std::string &reason);
    void dumpOnce(const char *reason);
    void applyHandler(NodeId node, bool at_home, Tick now,
                      const protocol::Message &msg,
                      const protocol::HandlerResult &res, bool deferred);

    EventQueue &eq_;
    VerifyParams params_;
    int numNodes_;

    FaultInjector injector_;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<CoherenceOracle> oracle_;
    std::vector<TraceRing> rings_;

    /** Per-node observation buffers (windowed mode); each is written
     *  only by its node's shard during a window. Padded: adjacent
     *  nodes may append from different threads. */
    struct alignas(64) NodeBuffer
    {
        std::vector<Deferred> d;
    };
    std::vector<NodeBuffer> buffers_;
    std::vector<const EventQueue *> nodeEqs_;
    bool windowed_ = false;

    /** Canonical-merge scratch reused across flushWindow() calls, so a
     *  window edge allocates nothing in steady state. */
    struct FlushRef
    {
        Tick tick;
        NodeId node;
        std::uint32_t idx;
    };
    std::vector<FlushRef> flushOrder_;

    bool dumped_ = false;
    int postMortemToken_ = -1;
};

} // namespace flashsim::verify

#endif // FLASHSIM_VERIFY_SENTINEL_HH_
