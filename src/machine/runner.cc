#include "machine/runner.hh"

#include "sim/logging.hh"

namespace flashsim::machine
{

namespace
{

/** Which processor performs the measured read for each class. */
constexpr int kReader[5] = {0, 0, 1, 1, 2};
/** Which processor dirties the line first (-1: none). */
constexpr int kWriter[5] = {-1, 1, -1, 0, 1};

/**
 * Both lines are homed on node 0 and adjacent, so their directory
 * headers (and ack-table entries) share MAGIC data cache lines: the
 * access to @p warm_line brings the protocol data into the MDC and the
 * measured access to @p line then sees the steady-state (warm-MDC)
 * latency that Table 3.3 reports. The MDC miss penalty itself is
 * evaluated separately in Section 5.2.
 */
tango::Task
probeTask(tango::Env &env, int cls, Addr warm_line, Addr line,
          bool do_read)
{
    co_await env.busy(0);
    const std::uint64_t wait_instrs = 400000; // 100k cycles of settling
    if (env.id() == kWriter[cls]) {
        co_await env.write(warm_line);
        co_await env.write(line);
    } else if (env.id() == kReader[cls]) {
        co_await env.busy(wait_instrs);
        co_await env.read(warm_line);
        co_await env.busy(wait_instrs);
        if (do_read)
            co_await env.read(line);
    }
}

/** Total PP busy cycles across the machine. */
Cycles
totalPpCycles(const Machine &m)
{
    Cycles total = 0;
    for (int i = 0; i < m.numProcs(); ++i)
        total += m.node(i).magic().ppOcc.busyCycles();
    return total;
}

/** Run one probe; returns {latency, pp cycles for the read}. */
std::pair<double, double>
probeClass(const MachineConfig &cfg, int cls)
{
    // Reference run without the measured read, to subtract the PP
    // cycles of the setup traffic (the write and its writeback path).
    Cycles pp_base;
    {
        Machine m(cfg);
        Addr warm = m.alloc(2 * kLineSize, 0);
        m.run([cls, warm](tango::Env &env) {
            return probeTask(env, cls, warm, warm + kLineSize, false);
        });
        m.drain();
        pp_base = totalPpCycles(m);
    }

    Machine m(cfg);
    Addr warm = m.alloc(2 * kLineSize, 0);
    m.run([cls, warm](tango::Env &env) {
        return probeTask(env, cls, warm, warm + kLineSize, true);
    });
    const cpu::Cache &reader = m.node(kReader[cls]).cache();
    if (reader.missLatency.count() != 2)
        panic("probeClass %d: expected 2 read misses at the reader, got "
              "%llu", cls,
              static_cast<unsigned long long>(reader.missLatency.count()));
    double latency = reader.missLatency.last();
    m.drain();
    double pp = static_cast<double>(totalPpCycles(m)) -
                static_cast<double>(pp_base);
    return {latency, pp};
}

} // namespace

ProbeResult
probeMissLatencies(MachineConfig cfg)
{
    if (cfg.numProcs < 3)
        fatal("probeMissLatencies: need at least 3 processors");
    // Cold-MIC penalties would pollute the per-class PP deltas.
    cfg.magic.micColdMiss = 0;
    cfg.placement = Placement::Node0;

    ProbeResult r;
    double *lat[5] = {&r.latency.localClean, &r.latency.localDirtyRemote,
                      &r.latency.remoteClean, &r.latency.remoteDirtyHome,
                      &r.latency.remoteDirtyRemote};
    double *occ[5] = {&r.ppOccupancy.localClean,
                      &r.ppOccupancy.localDirtyRemote,
                      &r.ppOccupancy.remoteClean,
                      &r.ppOccupancy.remoteDirtyHome,
                      &r.ppOccupancy.remoteDirtyRemote};
    for (int cls = 0; cls < 5; ++cls) {
        auto [latency, pp] = probeClass(cfg, cls);
        *lat[cls] = latency;
        *occ[cls] = pp;
    }
    return r;
}

} // namespace flashsim::machine
