/**
 * @file
 * Tests for the Section 4.4 flexibility features: PP-side page access
 * monitoring and placement-hook remapping.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace flashsim::machine
{
namespace
{

tango::Task
remoteHammer(tango::Env &env, Addr a, int times)
{
    co_await env.busy(0);
    if (env.id() != 1)
        co_return;
    for (int i = 0; i < times; ++i) {
        co_await env.read(a);
        co_await env.write(a); // upgrade, then re-read next round
        co_await env.busy(64);
    }
}

TEST(Monitoring, CountsRemoteRequestsPerPage)
{
    MachineConfig cfg = MachineConfig::flash(2);
    cfg.magic.monitorPages = true;
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0); // homed node 0, hammered by node 1
    m.run([&](tango::Env &env) { return remoteHammer(env, a, 5); });
    m.drain();
    auto heat = m.pageHeat();
    std::uint64_t page = m.pageIndexOf(a);
    ASSERT_TRUE(heat.count(page));
    // At least the initial GET and GETX; re-reads after ownership
    // changes add more.
    EXPECT_GE(heat[page], 2u);
}

TEST(Monitoring, LocalRequestsNotCounted)
{
    MachineConfig cfg = MachineConfig::flash(2);
    cfg.magic.monitorPages = true;
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([&](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0) {
            co_await env.read(a);
            co_await env.write(a);
        }
    });
    m.drain();
    EXPECT_TRUE(m.pageHeat().empty());
}

TEST(Monitoring, DisabledByDefault)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([&](tango::Env &env) { return remoteHammer(env, a, 3); });
    m.drain();
    EXPECT_TRUE(m.pageHeat().empty());
}

TEST(Monitoring, MonitoringCostsPpCycles)
{
    auto pp_cycles = [](bool monitor) {
        MachineConfig cfg = MachineConfig::flash(2);
        cfg.magic.monitorPages = monitor;
        Machine m(cfg);
        Addr a = m.alloc(kLineSize, 0);
        m.run([&](tango::Env &env) { return remoteHammer(env, a, 4); });
        m.drain();
        Cycles total = 0;
        for (int i = 0; i < 2; ++i)
            total += m.node(i).magic().ppOcc.busyCycles();
        return total;
    };
    EXPECT_GT(pp_cycles(true), pp_cycles(false));
}

TEST(Monitoring, PlacementHookOverridesEverything)
{
    MachineConfig cfg = MachineConfig::flash(4);
    cfg.placementHook = [](std::uint64_t page) {
        return static_cast<NodeId>((page * 3) % 4);
    };
    Machine m(cfg);
    Addr a = m.alloc(3 * cfg.pageBytes, 1); // explicit hint ignored
    EXPECT_EQ(m.homeOf(a), 0u);
    EXPECT_EQ(m.homeOf(a + cfg.pageBytes), 3u);
    EXPECT_EQ(m.homeOf(a + 2 * cfg.pageBytes), 2u);
    Addr b = m.allocAuto(cfg.pageBytes);
    EXPECT_EQ(m.homeOf(b), 1u); // page index 3 -> node 1
}

TEST(Monitoring, RemapMovesTrafficOffHotNode)
{
    // Hammer one node-0 page from everyone, then remap it using the
    // measured heat and verify the traffic follows.
    auto run_once = [](MachineConfig cfg, std::uint64_t *hot_page) {
        cfg.magic.monitorPages = true;
        Machine m(cfg);
        Addr a = m.allocAuto(cfg.pageBytes);
        m.run([&](tango::Env &env) -> tango::Task {
            co_await env.busy(0);
            for (int i = 0; i < 4; ++i) {
                co_await env.read(a + static_cast<Addr>(env.id()) *
                                          kLineSize);
                co_await env.busy(200);
            }
        });
        m.drain();
        auto heat = m.pageHeat();
        if (hot_page && !heat.empty())
            *hot_page = heat.begin()->first;
        return m.node(0).magic().invocations;
    };

    MachineConfig hot = MachineConfig::flash(4);
    hot.placement = Placement::Node0;
    std::uint64_t hot_page = 0;
    Counter node0_before = run_once(hot, &hot_page);

    MachineConfig fixed = hot;
    fixed.placementHook = [hot_page](std::uint64_t page) {
        return page == hot_page ? NodeId{2} : NodeId{0};
    };
    Counter node0_after = run_once(fixed, nullptr);
    EXPECT_LT(node0_after, node0_before);
}

} // namespace
} // namespace flashsim::machine
