/**
 * @file
 * Deterministic fault injector.
 *
 * Each node owns an independent xorshift64* stream (seeded from the
 * run seed and the node id), drawn in that node's event order, so a
 * (seed, config) pair replays bit-identically — including in sharded
 * runs, where nodes advance on different threads: every draw is keyed
 * by the node whose event stream triggered it (the message source for
 * mesh jitter, the local MAGIC for queue stalls, NACKs and hint
 * fates), and node-local event order is invariant under sharding. The
 * injector itself is pure policy — it only answers "what should happen
 * to this message"; the mechanism (delaying delivery, synthesizing a
 * NACK, swallowing a hint) lives at the call sites in the mesh and in
 * MAGIC, which are also responsible for preserving the point-to-point
 * FIFO ordering the NACK/retry protocol depends on (delivery times are
 * clamped monotonically per (src, dest) pair and per inbound queue).
 */

#ifndef FLASHSIM_VERIFY_FAULT_HH_
#define FLASHSIM_VERIFY_FAULT_HH_

#include <vector>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "verify/params.hh"

namespace flashsim::verify
{

class FaultInjector
{
  public:
    FaultInjector(const FaultParams &params, int num_nodes)
        : p_(params), numNodes_(num_nodes),
          per_(static_cast<std::size_t>(num_nodes))
    {
        // Per-node seeds via a splitmix-style mix of the run seed and
        // the node id: decorrelated streams from one knob.
        for (std::size_t n = 0; n < per_.size(); ++n)
            per_[n].rng = Rng(params.seed ^
                              (0x9e3779b97f4a7c15ull * (n + 1)));
        // Per-(src,dst)-lane streams for the wire plane, mixed with a
        // different constant so lane streams never collide with node
        // streams. Drawn in lane transmission order — a property of
        // the lane's own traffic, not of the shard partition.
        if (p_.wireLossy()) {
            lanes_.resize(static_cast<std::size_t>(num_nodes) *
                          static_cast<std::size_t>(num_nodes));
            for (std::size_t l = 0; l < lanes_.size(); ++l)
                lanes_[l].rng = Rng(params.seed ^
                                    (0xbf58476d1ce4e5b9ull * (l + 1)));
        }
    }

    bool enabled() const { return p_.enabled; }
    const FaultParams &params() const { return p_; }

    // Every decision method below consumes exactly the same number of
    // stream draws regardless of which injection classes are enabled:
    // a disabled class draws and discards rather than early-outing.
    // Otherwise flipping one knob (say, enabling loss) would shift the
    // per-node stream positions and change every *other* class's
    // decisions for the same seed.

    /** Extra mesh transit cycles for one message, drawn from the
     *  stream of its source node. */
    Cycles
    meshJitter(NodeId src)
    {
        PerNode &n = per_[src];
        Cycles j = n.rng.below(p_.meshJitter + 1);
        n.jitterCycles += j;
        return j;
    }

    /** Extra cycles a message waits to enter node @p at's MAGIC
     *  inbound queue (models queue-full backpressure). */
    Cycles
    inboundStall(NodeId at)
    {
        PerNode &n = per_[at];
        Cycles s = n.rng.below(p_.inboundStall + 1);
        n.stallCycles += s;
        return s;
    }

    /** Should home node @p home NACK this GET/GETX outright? */
    bool
    rollNack(NodeId home)
    {
        PerNode &n = per_[home];
        if (n.rng.uniform() >= p_.extraNackProb)
            return false;
        ++n.nacksInjected;
        return true;
    }

    enum class HintFate
    {
        Deliver,
        Drop,
        Duplicate,
    };

    /** Fate of a replacement hint arriving at home node @p home. */
    HintFate
    hintFate(NodeId home)
    {
        PerNode &n = per_[home];
        double u = n.rng.uniform();
        if (u < p_.dropHintProb) {
            ++n.hintsDropped;
            return HintFate::Drop;
        }
        if (u < p_.dropHintProb + p_.dupHintProb) {
            ++n.hintsDuped;
            return HintFate::Duplicate;
        }
        return HintFate::Deliver;
    }

    /** Should this inbound network request (NetGet/NetGetx) die at home
     *  node @p home's NI, before touching any protocol state? Recovery
     *  relies on the requester's transaction timeout/retry. */
    bool
    txnDrop(NodeId home)
    {
        PerNode &n = per_[home];
        if (n.rng.uniform() >= p_.txnDropProb)
            return false;
        ++n.reqDropsInjected;
        return true;
    }

    // -- Wire-plane fates (per-lane streams) --------------------------------

    enum class WireFate
    {
        Deliver,
        Drop,
        Duplicate,
        Reorder,
    };

    /**
     * Fate of one wire copy on lane (@p src -> @p dst), drawn from that
     * lane's stream. When the fate is Reorder, @p extra_delay receives
     * the hold-back (>= 1 cycle). Only ever called with the wire plane
     * built (p_.wireLossy()).
     */
    WireFate
    wireFate(NodeId src, NodeId dst, Cycles &extra_delay)
    {
        PerLane &l = lanes_[static_cast<std::size_t>(src) *
                                static_cast<std::size_t>(numNodes_) +
                            dst];
        extra_delay = 0;
        double u = l.rng.uniform();
        if (u < p_.wireDropProb) {
            ++l.drops;
            return WireFate::Drop;
        }
        if (u < p_.wireDropProb + p_.wireDupProb) {
            ++l.dups;
            return WireFate::Duplicate;
        }
        if (u < p_.wireDropProb + p_.wireDupProb + p_.wireReorderProb) {
            ++l.reorders;
            extra_delay =
                1 + l.rng.below(p_.wireReorderDelay > 0 ? p_.wireReorderDelay
                                                        : 1);
            return WireFate::Reorder;
        }
        return WireFate::Deliver;
    }

    /** True when hint perturbation can leave duplicate or stale sharer
     *  pointers in the directory (the oracle relaxes its checks). */
    bool
    perturbsHints() const
    {
        return p_.enabled && (p_.dropHintProb > 0.0 || p_.dupHintProb > 0.0);
    }

    // -- Statistics (summed over nodes) -------------------------------------
    Counter
    nacksInjected() const
    {
        return sum(&PerNode::nacksInjected);
    }
    Counter
    hintsDropped() const
    {
        return sum(&PerNode::hintsDropped);
    }
    Counter
    hintsDuped() const
    {
        return sum(&PerNode::hintsDuped);
    }
    Counter
    jitterCycles() const
    {
        return sum(&PerNode::jitterCycles);
    }
    Counter
    stallCycles() const
    {
        return sum(&PerNode::stallCycles);
    }
    Counter
    reqDropsInjected() const
    {
        return sum(&PerNode::reqDropsInjected);
    }
    Counter
    wireDropsInjected() const
    {
        return laneSum(&PerLane::drops);
    }
    Counter
    wireDupsInjected() const
    {
        return laneSum(&PerLane::dups);
    }
    Counter
    wireReordersInjected() const
    {
        return laneSum(&PerLane::reorders);
    }

  private:
    /** Padded to a cache line: adjacent nodes' streams are drawn from
     *  different shard threads concurrently. */
    struct alignas(64) PerNode
    {
        Rng rng{0};
        Counter nacksInjected = 0;
        Counter hintsDropped = 0;
        Counter hintsDuped = 0;
        Counter jitterCycles = 0;
        Counter stallCycles = 0;
        Counter reqDropsInjected = 0;
    };

    /** One wire lane's fault stream + fate counters. Padded like
     *  PerNode: lane (s, d) is drawn only from s's shard thread. */
    struct alignas(64) PerLane
    {
        Rng rng{0};
        Counter drops = 0;
        Counter dups = 0;
        Counter reorders = 0;
    };

    Counter
    sum(Counter PerNode::*f) const
    {
        Counter total = 0;
        for (const PerNode &n : per_)
            total += n.*f;
        return total;
    }

    Counter
    laneSum(Counter PerLane::*f) const
    {
        Counter total = 0;
        for (const PerLane &l : lanes_)
            total += l.*f;
        return total;
    }

    FaultParams p_;
    int numNodes_;
    std::vector<PerNode> per_;
    std::vector<PerLane> lanes_;
};

} // namespace flashsim::verify

#endif // FLASHSIM_VERIFY_FAULT_HH_
