/**
 * @file
 * The PP pre-decode pass.
 *
 * PPsim used to re-derive everything about an instruction on every
 * dynamic issue slot: srcRegs() (which heap-allocates a vector per
 * call), destReg(), the isNop/isSpecial/isAluOrBranch predicates, the
 * fieldMask() of every bitfield op, and the full static-scheduling
 * contract checks. Handlers execute millions of times per simulation,
 * so all of that per-issue work is hoisted here into a one-time decode:
 * each instruction pair is lowered into a DecodedPair of micro-ops with
 * extracted bitfields, precomputed masks, resolved branch targets,
 * per-pair statistics increments, and the contract checks resolved to a
 * verdict that the dynamic loop merely acts on.
 *
 * Only host-side decode work moves; the MAGIC instruction-cache timing
 * model is untouched (PpTimingModel still charges the MIC cold miss per
 * handler), and the dynamic loop charges cycles exactly as before.
 */

#ifndef FLASHSIM_PPISA_DECODE_HH_
#define FLASHSIM_PPISA_DECODE_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppisa/instruction.hh"
#include "ppisa/ppsim.hh"

namespace flashsim::ppisa
{

/** A fully decoded issue slot. */
struct MicroOp
{
    Op op = Op::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::uint8_t lo = 0;     ///< bit number for Bbs/Bbc
    std::uint8_t nsrcs = 0;  ///< entries used in srcs (panic reporting)
    std::uint8_t srcs[2] = {0, 0}; ///< source regs in srcRegs() order
    std::uint32_t target = 0;///< resolved branch target (pair index)
    std::int64_t imm = 0;    ///< non-branch immediate / Send type
    std::uint64_t mask = 0;  ///< precomputed fieldMask for Ext/Ins/
                             ///< Orfi/Andfi (Ext: width mask at bit 0)
};

/**
 * A decoded dual-issue pair: the two micro-ops plus everything the
 * dynamic loop previously recomputed per execution.
 */
struct DecodedPair
{
    /**
     * Static-scheduling contract verdict from decode time. The
     * interpreter only checked a pair when it was dynamically reached,
     * so a violation is recorded rather than reported eagerly and the
     * executor panics on arrival — unreachable bad pairs stay silent,
     * exactly as before.
     */
    enum class Violation : std::uint8_t
    {
        None,
        IntraRaw,  ///< slot b reads what slot a writes
        IntraWaw,  ///< both slots write the same register
        TwoBranch, ///< two branches in one pair
    };

    MicroOp a, b;
    std::uint32_t srcMask = 0;  ///< union of source regs, r0 excluded
    std::uint32_t loadMask = 0; ///< load destination regs, r0 excluded
    std::uint8_t instrsInc = 0;    ///< non-NOP instructions in the pair
    std::uint8_t specialsInc = 0;  ///< Table 5.2 special instructions
    std::uint8_t aluBranchInc = 0; ///< Table 5.2 ALU/branch instructions
    bool halts = false;            ///< either slot is Halt
    Violation violation = Violation::None;
    std::uint8_t violationReg = 0; ///< register named in the panic
};

class ThreadedProgram;

/**
 * The decoded image of one Program, built once per handler load and
 * cached on the Program (see Program::decoded()). Remembers which
 * storage it was decoded from — data pointer, size, and the mutation
 * version bumped by Program::mutablePairs() — so a reloaded, reassigned,
 * or in-place-mutated program is re-decoded automatically.
 */
class DecodedProgram
{
  public:
    explicit DecodedProgram(const Program &prog);
    ~DecodedProgram();

    const std::string &name() const { return name_; }
    const std::vector<DecodedPair> &pairs() const { return pairs_; }

    /** The threaded-code image (see threaded.hh), built eagerly with
     *  the decode so shared pre-decoded program sets publish it too. */
    const ThreadedProgram &threaded() const { return *threaded_; }

    /** True if this decode was built from exactly @p prog's current
     *  pairs storage and mutation version. */
    bool
    matches(const Program &prog) const
    {
        return src_ == prog.pairs().data() &&
               srcCount_ == prog.pairs().size() &&
               srcVersion_ == prog.decodeVersion();
    }

  private:
    std::string name_;
    std::vector<DecodedPair> pairs_;
    std::unique_ptr<const ThreadedProgram> threaded_;
    const InstrPair *src_;
    std::size_t srcCount_;
    std::uint64_t srcVersion_;
};

} // namespace flashsim::ppisa

#endif // FLASHSIM_PPISA_DECODE_HH_
