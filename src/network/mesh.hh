/**
 * @file
 * The interconnection network model.
 *
 * The paper charges every message a fixed transit latency derived from
 * the average path on a 2-D mesh with a 40 ns per-hop fall-through time
 * (Section 3.2): one hop to enter, the average internal hop count, one
 * hop to exit, plus 3 cycles of header. For 16 processors this comes to
 * 22 cycles; the same geometry formula scales the latency for the
 * 64-processor runs of Section 4.5.
 *
 * Optionally the model charges actual per-pair Manhattan distances
 * instead of the average (distanceBased), which the paper's simulator
 * did not do; the default matches the paper.
 *
 * Sharded runs (sim/shard.hh): the network is split into one endpoint
 * per shard. A send whose destination lives on the same shard schedules
 * its delivery directly on that shard's queue; a cross-shard send is
 * staged in a per-destination outbox and merged at the next window edge
 * by exchangeWindows(). Every delivery — local or staged — carries a
 * canonical (source node, per-source sequence) key and travels in the
 * EventQueue's network lane, so the delivery interleave at a tick is
 * identical whether or not a message crossed a shard boundary, and
 * identical to the single-threaded run. The minimum inter-node transit
 * (minTransit) is the conservative window lookahead: a message sent
 * inside a window cannot arrive before the next one.
 */

#ifndef FLASHSIM_NETWORK_MESH_HH_
#define FLASHSIM_NETWORK_MESH_HH_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "protocol/message.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flashsim::verify
{
class FaultInjector;
}

namespace flashsim::network
{

struct MeshParams
{
    Cycles perHop = 4;    ///< 40 ns fall-through
    Cycles header = 3;    ///< header cycles
    bool distanceBased = false; ///< per-pair distance instead of average
};

class MeshNetwork
{
  public:
    using Deliver = std::function<void(const protocol::Message &)>;

    /** Single-shard network: every node on one queue. */
    MeshNetwork(EventQueue &eq, int num_nodes, MeshParams params = {});

    /**
     * Sharded network: @p eqs holds one queue per shard and
     * @p shard_of maps each node to its shard. Cross-shard sends stage
     * until exchangeWindows().
     */
    MeshNetwork(const std::vector<EventQueue *> &eqs,
                std::vector<int> shard_of, int num_nodes,
                MeshParams params = {});

    /** Register node @p n's delivery callback (its NI inbound). */
    void connect(NodeId n, Deliver deliver);

    /** Inject a message; it is delivered after its transit latency. */
    void send(const protocol::Message &msg);

    /**
     * Inject a message that leaves its source NI at @p departure
     * (>= now): delivered at departure + transit. Equivalent to
     * scheduling an event at @p departure that calls send(), minus
     * that intermediate event — the sender's outbox hands the future
     * departure time straight to the network. Under an active
     * perturbation this falls back to the two-stage path, because the
     * anti-reordering clamp must observe sends in departure order.
     */
    void sendAt(const protocol::Message &msg, Tick departure);

    /**
     * Merge every staged cross-shard message into its destination
     * shard's queue (network lane, canonical key). Call only at a
     * window edge, with all shards quiescent.
     */
    void exchangeWindows();

    /** Average transit latency in cycles (22 for 16 nodes). */
    Cycles avgTransit() const { return avgTransit_; }

    /** Transit latency charged for a specific pair. Self-sends never
     *  enter the mesh and pay only entry/exit + header, in both
     *  modes. */
    Cycles transit(NodeId src, NodeId dest) const;

    /** Minimum transit between two *distinct* nodes: the conservative
     *  lookahead bounding a sharded run's time windows. */
    Cycles minTransit() const;

    /** minTransit() for a hypothetical network (lets the machine pick
     *  a shard count before constructing one). */
    static Cycles minTransitFor(int num_nodes, MeshParams params);

    /**
     * Minimum transit from any node of @p shard to any node outside
     * it: the per-shard outbound lookahead bound behind the adaptive
     * window widening (Machine::windowEndFor). Precomputed at
     * construction; falls back to minTransit() on a single-endpoint
     * network.
     */
    Cycles minOutboundTransit(int shard) const;

    /** avgTransit() for a hypothetical network. */
    static Cycles avgTransitFor(int num_nodes, MeshParams params);

    /** Mesh side length (smallest square covering num_nodes). */
    int side() const { return side_; }

    /**
     * Install a per-message transit perturbation (fault injection:
     * contention jitter). Extra cycles returned by @p perturb are added
     * to the transit, with delivery clamped so no message overtakes an
     * earlier one on the same (src, dest) pair — the protocol's
     * NACK/retry convergence depends on point-to-point FIFO order.
     * Pass an empty function to remove.
     */
    void setPerturb(std::function<Cycles(const protocol::Message &)> p);

    /** Total messages injected (all endpoints). */
    Counter messages() const;
    /** Data-carrying messages injected (all endpoints). */
    Counter dataMessages() const;

    // -- Lossy-mesh wire plane (recoverable-fault transport) ----------------
    //
    // When enabled, every mesh send additionally emits a *wire frame*
    // on its (src, dst) lane: a shadow copy carrying a per-lane
    // sequence number but no payload. The injector's per-lane fault
    // streams genuinely drop, duplicate and reorder these frames, and
    // a classic reliability stack recovers them — receiver-side
    // dedup/reorder window, cumulative acks (piggybacked on reverse
    // traffic or sent standalone after a short batching delay), and
    // per-lane retransmit timers with exponential backoff. After
    // kMaxWireRetries a copy is retransmitted *assured* (bypassing the
    // injector), bounding recovery even under total loss.
    //
    // The protocol's own delivery schedule (the commit plane above) is
    // untouched: physically this models link-level retry absorbed
    // within the mesh transit budget, and it is what makes a lossy
    // run's architectural results bit-identical to the clean run's.
    // Wire frames do not count toward messages()/dataMessages().
    //
    // Shard discipline: lane (s, d)'s send state, fault stream and RTO
    // timer are touched only by s's shard; its receive state and ack
    // timer only by d's shard. Frames travel in the canonical network
    // lane under the same (source node, srcSeq) key as commit
    // deliveries, and cross-shard frames stage in a wire outbox merged
    // at exchangeWindows() — so the wire plane is bit-identical across
    // shard counts too.

    /** Enable the wire plane. @p inj supplies the per-lane fault
     *  streams (params().wireLossy() must hold). Call before running. */
    void enableTransport(verify::FaultInjector *inj);

    bool transportEnabled() const { return wire_ != nullptr; }

    /** Aggregated wire-plane counters (all zero when disabled). */
    struct TransportStats
    {
        Counter copies = 0;            ///< data frames first-sent
        Counter retransmits = 0;       ///< RTO-driven resends
        Counter rtoFires = 0;          ///< retransmit timer expiries
        Counter assuredRetransmits = 0;///< escalations past the injector
        Counter acksSent = 0;          ///< standalone ack frames
        Counter dupsFiltered = 0;      ///< duplicate deliveries suppressed
        Counter reordersAccepted = 0;  ///< frames held in reorder windows
    };
    TransportStats transportStats() const;

    /**
     * True when every wire lane has quiesced: all sent copies acked,
     * every receiver's in-order point caught up, no held reorders.
     * Trivially true while the transport is disabled. This is the
     * predicate checkTransportQuiesced() panics on; exposed separately
     * so tests and the run loop can poll the ARQ plane without dying.
     * Quiescent (window-edge or drained) callers only.
     */
    bool transportQuiesced() const;

    /**
     * Panic unless every lane has quiesced: all sent wire copies
     * acked and every receiver's in-order point caught up with its
     * sender. Call on the drained machine — a failure means the
     * recovery stack lost a frame for good.
     */
    void checkTransportQuiesced() const;

    /** In-flight slab slots currently occupied (tests/diagnostics). */
    std::uint32_t inFlight() const;
    /** Total slab capacity allocated so far (tests/diagnostics). */
    std::uint32_t slabCapacity() const;

  private:
    /** Messages per slab chunk; chunk storage never moves, so a
     *  delivery may hold a reference across nested sends. */
    static constexpr std::uint32_t kSlabChunk = 128;
    using SlabChunk = std::unique_ptr<protocol::Message[]>;

    /** A cross-shard message parked until the next window edge. */
    struct Staged
    {
        Tick when;
        NodeId src;
        std::uint64_t seq;
        protocol::Message msg;
    };

    /**
     * One shard's view of the network: its own in-flight slab and
     * counters (written only from that shard's thread during a window)
     * plus per-destination-shard outboxes for staged messages.
     */
    struct Endpoint
    {
        EventQueue *eq = nullptr;
        std::vector<SlabChunk> slab;
        std::vector<std::uint32_t> freeSlots;
        std::uint32_t inFlight = 0;
        Counter messages = 0;
        Counter dataMessages = 0;
        std::vector<std::vector<Staged>> outbox;
    };

    std::uint32_t allocSlot(Endpoint &ep);
    void deliverSlot(std::uint32_t epIdx, std::uint32_t slot);
    protocol::Message &
    slot(Endpoint &ep, std::uint32_t s)
    {
        return ep.slab[s / kSlabChunk][s % kSlabChunk];
    }
    void inject(const protocol::Message &msg, Tick when);

    // -- Wire-plane internals -----------------------------------------------

    /** Receiver ack batching delay (cycles). */
    static constexpr Cycles kAckDelay = 12;
    /** Lossy (re)transmissions of one copy before escalating to an
     *  assured send that bypasses the injector. */
    static constexpr std::uint32_t kMaxWireRetries = 4;
    /** Cap on the RTO exponential backoff shift. */
    static constexpr std::uint32_t kMaxRtoShift = 6;

    /** One frame on the wire. Acks are just frames with no data seq —
     *  every frame carries the sender's cumulative in-order point for
     *  the reverse lane. */
    struct WireFrame
    {
        NodeId src = 0;
        NodeId dst = 0;
        bool isAck = false;
        std::uint64_t seq = 0;    ///< lane sequence (data frames only)
        std::uint64_t ackCum = 0; ///< cum. ack for the reverse lane
    };

    /** A cross-shard wire frame parked until the next window edge. */
    struct WireStaged
    {
        Tick when;
        NodeId src;
        std::uint64_t seq; ///< canonical network-lane key
        WireFrame frame;
    };

    /** One unacked wire copy awaiting its cumulative ack. */
    struct WireCopy
    {
        std::uint64_t seq;
        std::uint32_t tries;
    };

    /** Lane (s, d) sender state — touched only by s's shard. Padded:
     *  neighbouring rows belong to different shards. */
    struct alignas(64) SendLane
    {
        std::uint64_t nextSeq = 0;  ///< next wire seq stamped at send
        std::uint64_t cumAcked = 0; ///< all seqs below this are acked
        std::deque<WireCopy> unacked;
        EventQueue::TimerId rto{};
        std::uint32_t rtoStreak = 0; ///< RTO fires since last progress
        Counter copies = 0;
        Counter retransmits = 0;
        Counter rtoFires = 0;
        Counter assured = 0;
    };

    /** Lane (s, d) receiver state — touched only by d's shard. */
    struct alignas(64) RecvLane
    {
        std::uint64_t cumIn = 0; ///< all seqs below this received
        std::vector<std::uint64_t> held; ///< out-of-order seqs, sorted
        EventQueue::TimerId ackTimer{};
        bool ackPending = false;
        std::uint64_t lastAckedCum = 0; ///< for ack-loss escalation
        std::uint32_t ackRepeats = 0;
        Counter dupsFiltered = 0;
        Counter reordersAccepted = 0;
        Counter acksSent = 0;
    };

    struct WirePlane
    {
        verify::FaultInjector *inj = nullptr;
        std::vector<SendLane> send; ///< indexed src * numNodes + dst
        std::vector<RecvLane> recv;
        Cycles rtoBase = 0;
        /** [source shard][destination shard] staged frames. */
        std::vector<std::vector<std::vector<WireStaged>>> outbox;
    };

    SendLane &
    sendLane(NodeId s, NodeId d)
    {
        return wire_->send[static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(numNodes_) +
                           d];
    }
    RecvLane &
    recvLane(NodeId s, NodeId d)
    {
        return wire_->recv[static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(numNodes_) +
                           d];
    }

    Cycles rtoDelay(const SendLane &sl) const;
    /** One (src, dst) lane's quiescence predicate. */
    bool laneQuiesced(NodeId s, NodeId d) const;
    void wireOnSend(NodeId src, NodeId dst);
    void wireTransmit(const WireFrame &f, bool assured);
    void scheduleWireFrame(const WireFrame &f, Tick when);
    void wireArrive(const WireFrame &f);
    void wireAckApply(NodeId snd, NodeId rcv, std::uint64_t cum);
    void rtoFire(NodeId snd, NodeId rcv);
    void scheduleAck(NodeId lane_src, NodeId lane_dst);
    void ackFire(NodeId lane_src, NodeId lane_dst);
    std::uint64_t takeAck(NodeId frame_src, NodeId frame_dst);

    int numNodes_;
    int side_;
    MeshParams params_;
    Cycles avgTransit_;
    std::vector<Deliver> deliver_;
    std::function<Cycles(const protocol::Message &)> perturb_;
    /** Last scheduled delivery per (src, dest), perturbed mode only.
     *  Each row is written only by the source node's shard. */
    std::vector<Tick> lastDelivery_;

    std::vector<Endpoint> eps_;
    /** Per-shard minimum outbound transit (empty when single-shard). */
    std::vector<Cycles> minOut_;
    /** Node -> shard (all zero in the single-shard constructor). */
    std::vector<int> shardOf_;
    /** Per-source monotonic send sequence: the canonical network-lane
     *  key (written only by the source node's shard). */
    std::vector<std::uint64_t> srcSeq_;

    /** Wire-plane state; null while the transport is disabled, so the
     *  clean path pays one pointer test per send. */
    std::unique_ptr<WirePlane> wire_;
};

} // namespace flashsim::network

#endif // FLASHSIM_NETWORK_MESH_HH_
