#include "network/mesh.hh"

#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace flashsim::network
{

MeshNetwork::MeshNetwork(EventQueue &eq, int num_nodes, MeshParams params)
    : eq_(eq), numNodes_(num_nodes), params_(params),
      deliver_(static_cast<std::size_t>(num_nodes))
{
    side_ = 1;
    while (side_ * side_ < num_nodes)
        ++side_;

    // Average internal hop count for uniform traffic on a side x side
    // mesh: the mean |dx| on a line of n nodes is (n^2 - 1) / (3n), the
    // Manhattan distance doubles it, and excluding the self-pairs
    // scales by N/(N-1). That gives the paper's 2.6 average hops for 16
    // nodes; with one hop to enter and one to exit at 4 cycles each
    // plus 3 header cycles the average transit is 22 cycles.
    double n_nodes = static_cast<double>(side_) * side_;
    double mean_axis =
        (static_cast<double>(side_) * side_ - 1.0) / (3.0 * side_);
    double internal = 2.0 * mean_axis *
                      (n_nodes > 1 ? n_nodes / (n_nodes - 1.0) : 1.0);
    double hops = internal + 2.0;
    avgTransit_ = static_cast<Cycles>(
        std::lround(params_.perHop * hops + params_.header));
}

void
MeshNetwork::connect(NodeId n, Deliver deliver)
{
    if (n >= deliver_.size())
        fatal("MeshNetwork: node %u out of range", n);
    deliver_[n] = std::move(deliver);
}

Cycles
MeshNetwork::transit(NodeId src, NodeId dest) const
{
    // A self-send never crosses the mesh: it pays only the entry and
    // exit hops plus the header, in both average and distance-based
    // modes. (The average-transit figure explicitly excludes the
    // self-pairs, so charging it here would overbill by the mean
    // internal hop count, ~22 cycles on 16 nodes.)
    if (src == dest)
        return params_.perHop * 2 + params_.header;
    if (!params_.distanceBased)
        return avgTransit_;
    int sx = static_cast<int>(src) % side_;
    int sy = static_cast<int>(src) / side_;
    int dx = static_cast<int>(dest) % side_;
    int dy = static_cast<int>(dest) / side_;
    int hops = std::abs(sx - dx) + std::abs(sy - dy) + 2;
    return params_.perHop * static_cast<Cycles>(hops) + params_.header;
}

void
MeshNetwork::setPerturb(std::function<Cycles(const protocol::Message &)> p)
{
    perturb_ = std::move(p);
    // (Re)size the clamp table on every install, not only when it is
    // currently empty: a second perturb installed after the first was
    // cleared must start from a fresh, correctly sized table instead of
    // inheriting stale per-pair delivery floors.
    if (perturb_)
        lastDelivery_.assign(static_cast<std::size_t>(numNodes_) *
                                 static_cast<std::size_t>(numNodes_),
                             0);
}

std::uint32_t
MeshNetwork::allocSlot()
{
    if (!freeSlots_.empty()) {
        std::uint32_t s = freeSlots_.back();
        freeSlots_.pop_back();
        return s;
    }
    std::uint32_t s = static_cast<std::uint32_t>(slab_.size()) * kSlabChunk;
    slab_.push_back(std::make_unique<protocol::Message[]>(kSlabChunk));
    freeSlots_.reserve(slab_.size() * kSlabChunk);
    for (std::uint32_t i = kSlabChunk - 1; i > 0; --i)
        freeSlots_.push_back(s + i);
    return s;
}

void
MeshNetwork::deliverSlot(std::uint32_t s)
{
    // The slot is released only after the delivery callback returns:
    // chunk storage is stable, so the reference survives nested sends
    // that grow the slab, and the slot cannot be recycled underneath
    // the receiver.
    const protocol::Message &m = slot(s);
    deliver_[m.dest](m);
    freeSlots_.push_back(s);
    --inFlight_;
}

void
MeshNetwork::send(const protocol::Message &msg)
{
    if (msg.dest >= deliver_.size() || !deliver_[msg.dest])
        panic("MeshNetwork: no receiver for %s", msg.toString().c_str());
    ++messages;
    if (protocol::carriesData(msg.type))
        ++dataMessages;
    Cycles lat = transit(msg.src, msg.dest);
    Tick when = eq_.now() + lat;
    if (perturb_) {
        when += perturb_(msg);
        // Clamp per (src, dest) pair: jitter must never reorder the
        // point-to-point FIFO the protocol's race resolution assumes.
        Tick &last = lastDelivery_[static_cast<std::size_t>(msg.src) *
                                       static_cast<std::size_t>(numNodes_) +
                                   msg.dest];
        when = std::max(when, last);
        last = when;
    }
    std::uint32_t s = allocSlot();
    slot(s) = msg;
    ++inFlight_;
    eq_.scheduleAt(when, [this, s] { deliverSlot(s); });
}

void
MeshNetwork::sendAt(const protocol::Message &msg, Tick departure)
{
    if (perturb_) {
        // The jitter clamp requires sends to be observed in departure
        // order; re-create the intermediate event the fast path elides.
        eq_.scheduleAt(departure, [this, msg] { send(msg); });
        return;
    }
    if (msg.dest >= deliver_.size() || !deliver_[msg.dest])
        panic("MeshNetwork: no receiver for %s", msg.toString().c_str());
    ++messages;
    if (protocol::carriesData(msg.type))
        ++dataMessages;
    std::uint32_t s = allocSlot();
    slot(s) = msg;
    ++inFlight_;
    eq_.scheduleAt(departure + transit(msg.src, msg.dest),
                   [this, s] { deliverSlot(s); });
}

} // namespace flashsim::network
