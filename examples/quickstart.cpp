/**
 * @file
 * Quickstart: build a 16-processor FLASH machine and its idealized
 * hardwired twin, run a small blocked-stencil workload on both, and
 * print the execution-time comparison the paper's Figure 4.1 makes.
 */

#include <cstdio>

#include "machine/machine.hh"
#include "machine/report.hh"
#include "machine/runner.hh"

using namespace flashsim;
using namespace flashsim::machine;

namespace
{

/** Each processor sweeps its own partition and reads the neighbors'
 *  boundary lines — the classic regular-grid communication pattern. */
tango::Task
stencil(tango::Env &env, Addr base, int lines_per_proc, int iters,
        std::shared_ptr<tango::BarrierVar> bar)
{
    co_await env.busy(0);
    const int p = env.id();
    const int np = env.nprocs();
    const Addr mine =
        base + static_cast<Addr>(p) * lines_per_proc * kLineSize;
    const Addr left = base + static_cast<Addr>((p + np - 1) % np) *
                                 lines_per_proc * kLineSize;

    for (int it = 0; it < iters; ++it) {
        for (int i = 0; i < lines_per_proc; ++i) {
            co_await env.read(mine + static_cast<Addr>(i) * kLineSize);
            co_await env.busy(160); // ~40 cycles of compute per line
            co_await env.write(mine + static_cast<Addr>(i) * kLineSize);
        }
        // Boundary exchange: read the neighbor's last two lines.
        co_await env.read(left + static_cast<Addr>(lines_per_proc - 1) *
                                     kLineSize);
        co_await env.read(left + static_cast<Addr>(lines_per_proc - 2) *
                                     kLineSize);
        co_await env.barrier(*bar);
    }
}

Summary
runOn(const MachineConfig &cfg)
{
    Machine m(cfg);
    const int lines_per_proc = 32;
    Addr base = m.allocAuto(static_cast<Addr>(cfg.numProcs) *
                            lines_per_proc * kLineSize);
    auto bar = std::make_shared<tango::BarrierVar>(m.makeBarrier());
    m.run([=](tango::Env &env) {
        return stencil(env, base, lines_per_proc, 8, bar);
    });
    m.drain();
    return summarize(m);
}

} // namespace

int
main()
{
    std::printf("FlashSim quickstart: 16-processor stencil, FLASH vs the "
                "ideal machine\n\n");

    Summary flash = runOn(MachineConfig::flash(16));
    Summary ideal = runOn(MachineConfig::ideal(16));

    std::printf("%s\n", breakdownHeader().c_str());
    double norm = static_cast<double>(flash.execTime);
    std::printf("%s\n", breakdownRow("FLASH", flash, norm).c_str());
    std::printf("%s\n", breakdownRow("ideal", ideal, norm).c_str());

    double slowdown = 100.0 *
                      (static_cast<double>(flash.execTime) /
                           static_cast<double>(ideal.execTime) -
                       1.0);
    std::printf("\nFLASH is %.1f%% slower than the idealized hardwired "
                "machine on this workload.\n", slowdown);
    std::printf("miss rate %.2f%%, PP occupancy %.1f%%, memory occupancy "
                "%.1f%%\n", 100.0 * flash.missRate,
                100.0 * flash.avgPpOcc, 100.0 * flash.avgMemOcc);

    std::printf("\nNo-contention read-miss latencies (Table 3.3):\n");
    ProbeResult pf = probeMissLatencies(MachineConfig::flash(16));
    ProbeResult pi = probeMissLatencies(MachineConfig::ideal(16));
    std::printf("  %-28s %6s %6s\n", "operation", "ideal", "FLASH");
    std::printf("  %-28s %6.0f %6.0f\n", "local clean",
                pi.latency.localClean, pf.latency.localClean);
    std::printf("  %-28s %6.0f %6.0f\n", "local, dirty remote",
                pi.latency.localDirtyRemote, pf.latency.localDirtyRemote);
    std::printf("  %-28s %6.0f %6.0f\n", "remote clean",
                pi.latency.remoteClean, pf.latency.remoteClean);
    std::printf("  %-28s %6.0f %6.0f\n", "remote, dirty at home",
                pi.latency.remoteDirtyHome, pf.latency.remoteDirtyHome);
    std::printf("  %-28s %6.0f %6.0f\n", "remote, dirty 3rd node",
                pi.latency.remoteDirtyRemote,
                pf.latency.remoteDirtyRemote);
    return 0;
}
