/**
 * @file
 * The compute processor model.
 *
 * A 400 MIPS processor (four instructions per 10 ns system cycle) with
 * blocking reads and non-blocking writes, driven by a workload
 * coroutine. The processor keeps a local time cursor; memory operations
 * synchronize with the global event queue at the cursor, and all stall
 * time is attributed to the execution-time categories of Figure 4.1:
 * Busy, Cont (cache contention with MAGIC), Read, Write and Sync.
 */

#ifndef FLASHSIM_CPU_PROCESSOR_HH_
#define FLASHSIM_CPU_PROCESSOR_HH_

#include <cstdint>
#include <functional>

#include "cpu/cache.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flashsim::cpu
{

class Processor
{
  public:
    using Callback = std::function<void()>;

    /** Instructions issued per system clock cycle (400 MIPS / 100 MHz). */
    static constexpr std::uint64_t kIssueWidth = 4;

    /** Execution-time breakdown (all values in cycles). */
    struct Breakdown
    {
        Tick busy = 0;
        Tick cont = 0;
        Tick read = 0;
        Tick write = 0;
        Tick sync = 0;

        Tick
        total() const
        {
            return busy + cont + read + write + sync;
        }
    };

    Processor(EventQueue &eq, NodeId self, Cache &cache)
        : eq_(eq), self_(self), cache_(cache)
    {}

    /** Execute @p instrs instructions of pure compute. Synchronous. */
    void busy(std::uint64_t instrs, bool in_sync);

    /** Blocking read; @p done fires when the processor may proceed. */
    void read(Addr addr, bool in_sync, Callback done);

    /** Non-blocking write; @p done fires when the processor may proceed
     *  (immediately unless an MSHR conflict stalls the pipeline). */
    void write(Addr addr, bool in_sync, Callback done);

    /** The workload coroutine completed. */
    void markFinished();

    /**
     * An external event (message-passing completion, block arrival)
     * resumed the workload: jump the cursor to the present, charging
     * the gap as read stall (or sync inside synchronization).
     */
    void absorbExternalWait(bool in_sync);

    /** Reads resumed by a degraded (retry-budget-exhausted) completion
     *  rather than a real fill; the run report surfaces these. */
    Counter degradedResumes = 0;

    Tick cursor() const { return cursor_; }
    bool finished() const { return finished_; }
    Tick finishTime() const { return finishTime_; }
    NodeId id() const { return self_; }
    const Breakdown &breakdown() const { return bd_; }
    Cache &cache() { return cache_; }

  private:
    /** Advance the cursor over the cache-contention window; returns the
     *  cycles waited. */
    Tick absorbContention();
    void chargeStall(Tick cycles, bool in_sync, Tick Breakdown::*slot);
    void attemptRead(Addr addr, bool in_sync, Tick stall_start,
                     Callback done);
    void attemptWrite(Addr addr, bool in_sync, Tick stall_start,
                      Callback done);

    EventQueue &eq_;
    NodeId self_;
    Cache &cache_;

    Tick cursor_ = 0;
    std::uint64_t instrCarry_ = 0; ///< sub-cycle instruction remainder
    std::uint64_t bgRefCarry_ = 0; ///< background-reference remainder
    Breakdown bd_;
    bool finished_ = false;
    Tick finishTime_ = 0;
};

} // namespace flashsim::cpu

#endif // FLASHSIM_CPU_PROCESSOR_HH_
