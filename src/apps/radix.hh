/**
 * @file
 * Radix: parallel radix sort (Table 3.5: 256K integer keys, radix 256).
 *
 * Each pass builds per-processor histograms of the local key block,
 * computes global rank prefixes (reading every other processor's
 * histogram), then permutes keys to their destination positions in the
 * other buffer. The permutation writes land all over the machine, so
 * the next pass's local reads find their own lines dirty in remote
 * caches — the paper's striking 76% "local, dirty remote" class.
 */

#ifndef FLASHSIM_APPS_RADIX_HH_
#define FLASHSIM_APPS_RADIX_HH_

#include <cstdint>

#include "apps/workload.hh"
#include "sim/random.hh"

namespace flashsim::apps
{

struct RadixParams
{
    std::uint32_t keys = 1u << 18; ///< paper: 256K
    int radix = 256;               ///< paper: 256
    int passes = 2;                ///< digits sorted
    std::uint64_t seed = 12345;
    std::uint64_t instrsPerKey = 10;

    static RadixParams
    paper()
    {
        return RadixParams{};
    }
};

class Radix : public Workload
{
  public:
    explicit Radix(RadixParams params = {}) : p_(params) {}

    std::string name() const override { return "radix"; }
    void setup(machine::Machine &m) override;
    tango::Task run(tango::Env &env) override;

    /** Host-side result after run (buffer written by the last pass). */
    const std::vector<std::uint32_t> &
    result() const
    {
        return (p_.passes & 1) ? keysB_ : keysA_;
    }

    int passes() const { return p_.passes; }
    int radix() const { return p_.radix; }

  private:
    Addr keyAddr(const std::vector<Addr> &bases, std::uint32_t idx) const;

    RadixParams p_;
    int nprocs_ = 0;
    std::uint32_t keysPerProc_ = 0;
    std::vector<Addr> aBase_;    ///< per-proc key blocks, buffer A
    std::vector<Addr> bBase_;    ///< buffer B
    std::vector<Addr> histBase_; ///< per-proc histogram arrays
    tango::BarrierVar bar_;

    // Host-side sort state.
    std::vector<std::uint32_t> keysA_;
    std::vector<std::uint32_t> keysB_;
    std::vector<std::vector<std::uint32_t>> hist_; ///< [proc][digit]
    std::vector<std::vector<std::uint32_t>> rankBase_;
};

} // namespace flashsim::apps

#endif // FLASHSIM_APPS_RADIX_HH_
