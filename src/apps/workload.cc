#include "apps/workload.hh"

#include "apps/barnes.hh"
#include "apps/fft.hh"
#include "apps/lu.hh"
#include "apps/mp3d.hh"
#include "apps/ocean.hh"
#include "apps/os_workload.hh"
#include "apps/radix.hh"
#include "sim/logging.hh"

namespace flashsim::apps
{

std::unique_ptr<Workload>
makeWorkload(const std::string &name, Scale scale)
{
    const bool paper = scale == Scale::Paper;
    if (name == "fft")
        return std::make_unique<Fft>(paper ? FftParams::paper()
                                           : FftParams{});
    if (name == "lu")
        return std::make_unique<Lu>(paper ? LuParams::paper()
                                          : LuParams{});
    if (name == "ocean")
        return std::make_unique<Ocean>(paper ? OceanParams::paper()
                                             : OceanParams{});
    if (name == "radix")
        return std::make_unique<Radix>(paper ? RadixParams::paper()
                                             : RadixParams{});
    if (name == "barnes")
        return std::make_unique<Barnes>(paper ? BarnesParams::paper()
                                              : BarnesParams{});
    if (name == "mp3d")
        return std::make_unique<Mp3d>(paper ? Mp3dParams::paper()
                                            : Mp3dParams{});
    if (name == "os")
        return std::make_unique<OsWorkload>(paper ? OsParams::paper()
                                                  : OsParams{});
    fatal("makeWorkload: unknown workload '%s'", name.c_str());
}

std::vector<std::string>
parallelAppNames()
{
    return {"barnes", "fft", "lu", "mp3d", "ocean", "radix"};
}

std::vector<std::string>
allWorkloadNames()
{
    auto names = parallelAppNames();
    names.push_back("os");
    return names;
}

std::unique_ptr<machine::Machine>
runWorkload(const machine::MachineConfig &cfg, Workload &w)
{
    auto m = std::make_unique<machine::Machine>(cfg);
    w.setup(*m);
    m->run(w.body());
    m->drain();
    return m;
}

} // namespace flashsim::apps
