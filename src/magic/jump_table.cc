#include "magic/jump_table.hh"

#include "sim/logging.hh"

namespace flashsim::magic
{

using protocol::MsgType;

JumpTable
JumpTable::standard(bool speculation_enabled)
{
    JumpTable jt;
    auto on = [&](MsgType t, bool spec) {
        jt.set(t, JumpTableEntry{true, spec && speculation_enabled});
    };
    // Memory-reading request types get the speculative read; everything
    // else just dispatches.
    on(MsgType::PiGet, true);
    on(MsgType::PiGetx, true);
    on(MsgType::NetGet, true);
    on(MsgType::NetGetx, true);
    on(MsgType::PiWriteback, false);
    on(MsgType::PiReplaceHint, false);
    on(MsgType::NetFwdGet, false);
    on(MsgType::NetFwdGetx, false);
    on(MsgType::NetSwb, false);
    on(MsgType::NetOwnXfer, false);
    on(MsgType::NetInval, false);
    on(MsgType::NetInvalAck, false);
    on(MsgType::NetPut, false);
    on(MsgType::NetPutx, false);
    on(MsgType::NetNack, false);
    on(MsgType::NetWriteback, false);
    on(MsgType::NetReplaceHint, false);
    on(MsgType::NetBlockXfer, false);
    on(MsgType::NetBlockAck, false);
    on(MsgType::PiFetchOp, false); // word RMW issued by the handler
    on(MsgType::NetFetchOp, false);
    on(MsgType::NetFetchOpAck, false);
    return jt;
}

const JumpTableEntry &
JumpTable::lookup(MsgType t) const
{
    const JumpTableEntry &e = entries_[static_cast<std::size_t>(t)];
    if (!e.valid)
        panic("JumpTable: no entry for %s", protocol::msgTypeName(t));
    return e;
}

void
JumpTable::set(MsgType t, JumpTableEntry e)
{
    entries_[static_cast<std::size_t>(t)] = e;
}

} // namespace flashsim::magic
