file(REMOVE_RECURSE
  "libflashsim.a"
)
