/**
 * @file
 * Reproduces the Section 4.5 scaling experiments: 64-processor runs
 * with the same (now relatively small) problem sizes, which drives up
 * the communication-to-computation ratio and the remote miss fraction,
 * widening the FLASH/ideal gap (paper: FFT 17%, Ocean 12%, LU 0.7%);
 * scaling FFT's data set proportionally brings it back down (12%).
 */

#include <cstdio>

#include "apps/fft.hh"
#include "apps/lu.hh"
#include "apps/ocean.hh"
#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

/** Job running @p App with @p params on a fresh machine; the workload
 *  object is constructed inside the job so every run is independent. */
template <typename App, typename Params>
std::function<RunOutcome()>
appJob(MachineConfig cfg, Params params)
{
    return [cfg, params] {
        App w(params);
        RunOutcome out;
        out.machine = apps::runWorkload(cfg, w);
        out.summary = machine::summarize(*out.machine);
        return out;
    };
}

/** FLASH and ideal jobs at @p procs for one configuration. */
template <typename App, typename Params>
void
pushPairJobs(std::vector<std::function<RunOutcome()>> &jobs, int procs,
             Params params)
{
    jobs.push_back(appJob<App>(MachineConfig::flash(procs), params));
    jobs.push_back(appJob<App>(MachineConfig::ideal(procs), params));
}

Pair
takePair(std::vector<RunOutcome> &outs, std::size_t pair_index)
{
    Pair p;
    p.flash = std::move(outs[2 * pair_index]);
    p.ideal = std::move(outs[2 * pair_index + 1]);
    return p;
}

} // namespace

int
main()
{
    std::printf("Section 4.5: scaling to 64 processors "
                "(same problem sizes as the 16-processor runs)\n\n");
    std::printf("%-26s %10s %10s %10s\n", "configuration", "16p slow%",
                "64p slow%", "paper 64p");

    // Seven FLASH/ideal pairs, fourteen independent machines (the
    // 64-processor runs dominate), submitted as one sweep.
    apps::FftParams fft_small; // default size at both machine scales
    apps::FftParams fft_big = fft_small;
    fft_big.logN += 2; // data set scaled proportionally (4x points)
    apps::OceanParams ocean_p;
    apps::LuParams lu_p;

    std::vector<std::function<RunOutcome()>> jobs;
    pushPairJobs<apps::Fft>(jobs, 16, fft_small);   // pair 0
    pushPairJobs<apps::Fft>(jobs, 64, fft_small);   // pair 1
    pushPairJobs<apps::Fft>(jobs, 64, fft_big);     // pair 2
    pushPairJobs<apps::Ocean>(jobs, 16, ocean_p);   // pair 3
    pushPairJobs<apps::Ocean>(jobs, 64, ocean_p);   // pair 4
    pushPairJobs<apps::Lu>(jobs, 16, lu_p);         // pair 5
    pushPairJobs<apps::Lu>(jobs, 64, lu_p);         // pair 6

    sim::SweepRunner runner;
    std::vector<RunOutcome> outs = runner.run(std::move(jobs));
    printSweepMetrics("sec_4_5", runner.lastMetrics());

    // FFT.
    {
        Pair p16 = takePair(outs, 0);
        Pair p64 = takePair(outs, 1);
        std::printf("%-26s %9.1f%% %9.1f%% %9.1f%%\n", "fft",
                    p16.slowdownPct(), p64.slowdownPct(), 17.0);
        Pair pb = takePair(outs, 2);
        std::printf("%-26s %10s %9.1f%% %9.1f%%\n", "fft (scaled data)",
                    "-", pb.slowdownPct(), 12.0);
    }

    // Ocean.
    {
        Pair p16 = takePair(outs, 3);
        Pair p64 = takePair(outs, 4);
        std::printf("%-26s %9.1f%% %9.1f%% %9.1f%%\n", "ocean",
                    p16.slowdownPct(), p64.slowdownPct(), 12.0);
    }

    // LU.
    {
        Pair p16 = takePair(outs, 5);
        Pair p64 = takePair(outs, 6);
        std::printf("%-26s %9.1f%% %9.1f%% %9.1f%%\n", "lu",
                    p16.slowdownPct(), p64.slowdownPct(), 0.7);
    }

    std::printf("\n(key shape: shrinking per-processor work raises the "
                "remote miss rate and widens the gap, except for LU "
                "whose communication stays negligible)\n");
    return 0;
}
