/** @file Unit tests for the MAGIC data cache (MDC) model. */

#include <gtest/gtest.h>

#include "magic/magic_cache.hh"
#include "protocol/directory.hh"

namespace flashsim::magic
{
namespace
{

TEST(MagicCache, FirstAccessMissesThenHits)
{
    MagicCache c(64 * 1024, 2, 128);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1008, false).hit); // same line
    EXPECT_EQ(c.reads, 3u);
    EXPECT_EQ(c.readMisses, 1u);
}

TEST(MagicCache, SixteenHeadersShareOneLine)
{
    // Section 5.2: each 128-byte MDC line holds 16 8-byte directory
    // headers, i.e. the directory state of 2 KB of contiguous data.
    MagicCache c(64 * 1024, 2, 128);
    using protocol::headerAddr;
    EXPECT_FALSE(c.access(headerAddr(0), false).hit);
    for (int i = 1; i < 16; ++i)
        EXPECT_TRUE(c.access(headerAddr(i * kLineSize), false).hit);
    EXPECT_FALSE(c.access(headerAddr(16 * kLineSize), false).hit);
}

TEST(MagicCache, WriteSetsDirtyAndVictimWritesBack)
{
    MagicCache c(2 * 128, 1, 128); // 2 sets, direct mapped
    c.access(0x0, true);           // set 0, dirty
    MdcAccess a = c.access(0x100, false); // set 0, evicts dirty
    EXPECT_FALSE(a.hit);
    EXPECT_TRUE(a.victimWriteback);
    EXPECT_EQ(c.writebacks, 1u);
    MdcAccess b = c.access(0x200, false); // set 0 again, clean victim
    EXPECT_FALSE(b.hit);
    EXPECT_FALSE(b.victimWriteback);
}

TEST(MagicCache, LruReplacementWithinSet)
{
    MagicCache c(2 * 128, 2, 128); // 1 set, 2 ways
    c.access(0x000, false);
    c.access(0x080, false);
    c.access(0x000, false);       // touch A
    c.access(0x100, false);       // evicts B (LRU)
    EXPECT_TRUE(c.access(0x000, false).hit);
    EXPECT_FALSE(c.access(0x080, false).hit);
}

TEST(MagicCache, MissRateAccounting)
{
    MagicCache c(64 * 1024, 2, 128);
    for (int i = 0; i < 10; ++i)
        c.access(static_cast<Addr>(i) * 128, false);
    for (int i = 0; i < 10; ++i)
        c.access(static_cast<Addr>(i) * 128, true);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
    EXPECT_DOUBLE_EQ(c.readMissRate(), 1.0);
    EXPECT_DOUBLE_EQ(c.writeMissRate(), 0.0);
}

TEST(MagicCache, FlushInvalidatesAll)
{
    MagicCache c(64 * 1024, 2, 128);
    c.access(0x1000, false);
    c.flush();
    EXPECT_FALSE(c.access(0x1000, false).hit);
}

TEST(MagicCache, HighStrideThrashesLikeSection52)
{
    // A >2 KB stride over a large region touches a new header line per
    // access: this is the pathological pattern of Section 5.2.
    MagicCache c(64 * 1024, 2, 128);
    using protocol::headerAddr;
    int misses_before = static_cast<int>(c.readMisses);
    for (int i = 0; i < 1024; ++i) {
        // 4 KB stride in data space = 2 header lines apart.
        c.access(headerAddr(static_cast<Addr>(i) * 4096), false);
    }
    int misses = static_cast<int>(c.readMisses) - misses_before;
    EXPECT_GT(misses, 900); // nearly every access misses
}

TEST(MagicCache, UnitStrideBarelyMisses)
{
    MagicCache c(64 * 1024, 2, 128);
    using protocol::headerAddr;
    for (int i = 0; i < 1024; ++i)
        c.access(headerAddr(static_cast<Addr>(i) * kLineSize), false);
    // One miss per 16 headers.
    EXPECT_EQ(c.readMisses, 1024u / 16u);
}

TEST(MagicCache, BadGeometryIsFatal)
{
    EXPECT_DEATH(MagicCache(100, 2, 128), "power of two");
}

} // namespace
} // namespace flashsim::magic
