#include "machine/runner.hh"

#include "sim/logging.hh"

namespace flashsim::machine
{

namespace
{

/** Which processor performs the measured read for each class. */
constexpr int kReader[5] = {0, 0, 1, 1, 2};
/** Which processor dirties the line first (-1: none). */
constexpr int kWriter[5] = {-1, 1, -1, 0, 1};

/**
 * Both lines are homed on node 0 and adjacent, so their directory
 * headers (and ack-table entries) share MAGIC data cache lines: the
 * access to @p warm_line brings the protocol data into the MDC and the
 * measured access to @p line then sees the steady-state (warm-MDC)
 * latency that Table 3.3 reports. The MDC miss penalty itself is
 * evaluated separately in Section 5.2.
 */
tango::Task
probeTask(tango::Env &env, int cls, Addr warm_line, Addr line,
          bool do_read)
{
    co_await env.busy(0);
    const std::uint64_t wait_instrs = 400000; // 100k cycles of settling
    if (env.id() == kWriter[cls]) {
        co_await env.write(warm_line);
        co_await env.write(line);
    } else if (env.id() == kReader[cls]) {
        co_await env.busy(wait_instrs);
        co_await env.read(warm_line);
        co_await env.busy(wait_instrs);
        if (do_read)
            co_await env.read(line);
    }
}

/** Total PP busy cycles across the machine. */
Cycles
totalPpCycles(const Machine &m)
{
    Cycles total = 0;
    for (int i = 0; i < m.numProcs(); ++i)
        total += m.node(i).magic().ppOcc.busyCycles();
    return total;
}

/** Outcome of one probe run (one machine). */
struct ProbeRun
{
    double latency = 0;  ///< measured read latency (measured runs only)
    double ppCycles = 0; ///< machine-wide PP busy cycles after drain
};

/**
 * One independent probe run: the measured run performs the class's read
 * and records its latency; the reference run (do_read false) produces
 * only the setup traffic (the write and its writeback path) so its PP
 * cycles can be subtracted out.
 */
ProbeRun
probeRun(const MachineConfig &cfg, int cls, bool do_read)
{
    Machine m(cfg);
    Addr warm = m.alloc(2 * kLineSize, 0);
    m.run([cls, warm, do_read](tango::Env &env) {
        return probeTask(env, cls, warm, warm + kLineSize, do_read);
    });
    ProbeRun r;
    if (do_read) {
        const cpu::Cache &reader = m.node(kReader[cls]).cache();
        if (reader.missLatency.count() != 2)
            panic("probeRun %d: expected 2 read misses at the reader, "
                  "got %llu", cls,
                  static_cast<unsigned long long>(
                      reader.missLatency.count()));
        r.latency = reader.missLatency.last();
    }
    m.drain();
    r.ppCycles = static_cast<double>(totalPpCycles(m));
    return r;
}

} // namespace

ProbeResult
probeMissLatencies(MachineConfig cfg, sim::SweepRunner *runner)
{
    if (cfg.numProcs < 3)
        fatal("probeMissLatencies: need at least 3 processors");
    // Cold-MIC penalties would pollute the per-class PP deltas.
    cfg.magic.micColdMiss = 0;
    cfg.placement = Placement::Node0;

    // 5 classes x {reference, measured}: ten fully independent
    // machines, submitted as one sweep. Job 2*cls is the reference run,
    // job 2*cls+1 the measured one.
    std::vector<std::function<ProbeRun()>> jobs;
    jobs.reserve(10);
    for (int cls = 0; cls < 5; ++cls) {
        jobs.emplace_back([cfg, cls] { return probeRun(cfg, cls, false); });
        jobs.emplace_back([cfg, cls] { return probeRun(cfg, cls, true); });
    }
    sim::SweepRunner local;
    if (!runner)
        runner = &local;
    std::vector<ProbeRun> runs = runner->run(std::move(jobs));

    ProbeResult r;
    double *lat[5] = {&r.latency.localClean, &r.latency.localDirtyRemote,
                      &r.latency.remoteClean, &r.latency.remoteDirtyHome,
                      &r.latency.remoteDirtyRemote};
    double *occ[5] = {&r.ppOccupancy.localClean,
                      &r.ppOccupancy.localDirtyRemote,
                      &r.ppOccupancy.remoteClean,
                      &r.ppOccupancy.remoteDirtyHome,
                      &r.ppOccupancy.remoteDirtyRemote};
    for (int cls = 0; cls < 5; ++cls) {
        const ProbeRun &ref = runs[static_cast<std::size_t>(2 * cls)];
        const ProbeRun &meas =
            runs[static_cast<std::size_t>(2 * cls + 1)];
        *lat[cls] = meas.latency;
        *occ[cls] = meas.ppCycles - ref.ppCycles;
    }
    return r;
}

} // namespace flashsim::machine
