/**
 * @file
 * PPsim: the instruction-set emulator for the MAGIC protocol processor.
 *
 * The paper (Section 3.3) integrates an instruction-set emulator for the
 * PP with FlashLite so that protocol handler timing comes from executing
 * the real handler code. This emulator plays that role: it executes
 * scheduled dual-issue handler programs, reporting dynamic cycle counts
 * and the instruction-usage statistics of Table 5.2, and routes all
 * memory operations through a pluggable interface so the MAGIC data
 * cache model can charge its 29-cycle miss penalty.
 */

#ifndef FLASHSIM_PPISA_PPSIM_HH_
#define FLASHSIM_PPISA_PPSIM_HH_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppisa/instruction.hh"
#include "sim/types.hh"

namespace flashsim::ppisa
{

class DecodedProgram;

/**
 * A fully scheduled PP handler program.
 *
 * Branch targets are pair indices. Each pair executes in one PP cycle
 * (plus any memory stall charged by the PpMemory implementation).
 */
struct Program
{
    std::string name;
    std::vector<InstrPair> pairs;

    /** Static code size in bytes (two 4-byte instruction words per pair),
     *  NOP slots included, matching Table 5.2's "with NOPs" metric. */
    std::size_t codeBytes() const { return pairs.size() * 8; }

    std::string toString() const;

    /**
     * The pre-decoded image of this program (see decode.hh), built
     * lazily on first use and cached. Rebuilt automatically when the
     * program is reloaded (the cache remembers which pairs storage it
     * was decoded from, and reassignment replaces that storage). Only
     * an in-place mutation of an existing pairs vector that keeps both
     * data pointer and size needs invalidateDecodeCache(). Lazy build
     * is not thread-safe; machines own their programs, so cross-thread
     * sharing does not occur in-tree.
     */
    const DecodedProgram &decoded() const;

    /** Drop the cached decode (after in-place mutation of pairs). */
    void invalidateDecodeCache() const;

  private:
    mutable std::shared_ptr<const DecodedProgram> decoded_;
};

/**
 * Memory seen by the PP: protocol data structures in main memory,
 * accessed through the MAGIC data cache. Implementations return the
 * extra stall cycles (0 on an MDC hit, the miss penalty otherwise).
 */
class PpMemory
{
  public:
    virtual ~PpMemory() = default;
    virtual std::uint64_t load(Addr addr, Cycles &extra_cycles) = 0;
    virtual void store(Addr addr, std::uint64_t value,
                       Cycles &extra_cycles) = 0;
};

/** Trivial PpMemory backed by a flat map; every access hits (0 stall). */
class FlatPpMemory : public PpMemory
{
  public:
    std::uint64_t load(Addr addr, Cycles &extra_cycles) override;
    void store(Addr addr, std::uint64_t value,
               Cycles &extra_cycles) override;

    /** Direct (non-timed) backdoor access for test setup. */
    std::uint64_t peek(Addr addr) const;
    void poke(Addr addr, std::uint64_t value);

  private:
    std::vector<std::pair<Addr, std::uint64_t>> data_;
};

/** An outgoing message launched by a Send instruction. */
struct SentMessage
{
    int type;           ///< protocol message type (Send immediate)
    std::uint64_t dest; ///< destination (node id or interface code)
    std::uint64_t arg;  ///< packed argument word (address + aux fields)

    bool operator==(const SentMessage &) const = default;
};

/** Dynamic statistics from one or more handler executions. */
struct RunStats
{
    Cycles cycles = 0;        ///< total PP cycles including memory stalls
    std::uint64_t pairs = 0;  ///< dual-issue pairs executed
    std::uint64_t instrs = 0; ///< non-NOP instructions executed
    std::uint64_t specials = 0;   ///< special (FLASH-extension) instructions
    std::uint64_t aluBranch = 0;  ///< ALU + branch instructions
    std::uint64_t memStall = 0;   ///< cycles of MDC stall included in cycles
    std::uint64_t invocations = 0; ///< handler invocations accumulated

    void accumulate(const RunStats &other);

    /** Table 5.2: non-NOP instructions per pair (2.0 is perfect). */
    double dualIssueEfficiency() const;
    /** Table 5.2: fraction of ALU/branch instructions that are special. */
    double specialFraction() const;
    /** Table 5.2: mean instruction pairs per handler invocation. */
    double pairsPerInvocation() const;
};

/** Register file contents passed into / out of a handler run. */
using RegFile = std::array<std::uint64_t, kNumRegs>;

/**
 * The PP emulator. Stateless between runs; all architectural state lives
 * in the RegFile and PpMemory passed to run().
 */
class PpSim
{
  public:
    /** Upper bound on cycles per handler; exceeded => runaway handler. */
    static constexpr Cycles kMaxCycles = 1 << 20;

    /**
     * Execute @p prog from pair 0 until Halt.
     *
     * Enforces the PP's static-scheduling contract: an intra-pair
     * dependency or a use of a load result in the pair immediately after
     * the load is a panic (the real PP has no interlocks, so such code is
     * simply broken).
     *
     * Runs over the program's cached decode (Program::decoded()); the
     * architectural behaviour — register/memory/message effects, cycle
     * charges, statistics, and every contract panic — is identical to
     * runReference().
     *
     * @param regs     register file (r0 forced to zero); updated in place.
     * @param mem      protocol-data memory (MDC timing hook).
     * @param sent     messages launched by Send, in order.
     * @param stats    dynamic statistics, accumulated (not reset).
     * @return cycles consumed by this invocation.
     */
    Cycles run(const Program &prog, RegFile &regs, PpMemory &mem,
               std::vector<SentMessage> &sent, RunStats &stats) const;

    /**
     * The original per-issue-slot interpreter, which re-decodes each
     * instruction (bitfields, source/dest sets, contract checks) every
     * time it executes. Kept as the conformance oracle for the decode
     * cache: tests run every opcode through both paths and require
     * identical results.
     */
    Cycles runReference(const Program &prog, RegFile &regs, PpMemory &mem,
                        std::vector<SentMessage> &sent,
                        RunStats &stats) const;
};

} // namespace flashsim::ppisa

#endif // FLASHSIM_PPISA_PPSIM_HH_
