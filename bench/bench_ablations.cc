/**
 * @file
 * Ablations for the design choices DESIGN.md calls out, beyond the
 * paper's own Section 5 studies:
 *
 *  - MDC size sweep (the paper fixes 64 KB; how sensitive is the OS
 *    workload to it?)
 *  - MDC miss penalty sweep (what the 29 cycles are worth)
 *  - fixed-average vs distance-based network transit
 *  - NACK retry backoff policy (flat vs exponential)
 *  - handler timing source: PPsim emulation vs the Table 3.4 constants
 */

#include <cstdio>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

Tick
execOf(const MachineConfig &cfg, const std::string &app)
{
    return runApp(cfg, app).summary.execTime;
}

} // namespace

int
main()
{
    std::printf("FlashSim design ablations\n=========================\n\n");

    // 1. MDC geometry sweep on the MDC-heaviest workload.
    std::printf("1. MAGIC data cache size (OS workload, FLASH):\n");
    Tick mdc_base = 0;
    for (std::uint32_t kb : {16u, 32u, 64u, 128u}) {
        MachineConfig cfg = MachineConfig::flash(8);
        cfg.magic.mdcBytes = kb * 1024;
        Tick t = execOf(cfg, "os");
        if (kb == 64)
            mdc_base = t;
        std::printf("   %4u KB MDC: %9llu cycles\n", kb,
                    static_cast<unsigned long long>(t));
    }

    // 2. MDC miss penalty.
    std::printf("\n2. MDC miss penalty (OS workload, 64 KB MDC; paper "
                "charges 29 cycles):\n");
    for (Cycles pen : {Cycles{0}, Cycles{29}, Cycles{60}}) {
        MachineConfig cfg = MachineConfig::flash(8);
        cfg.magic.mdcMissPenalty = pen;
        std::printf("   penalty %2llu: %9llu cycles\n",
                    static_cast<unsigned long long>(pen),
                    static_cast<unsigned long long>(execOf(cfg, "os")));
    }
    (void)mdc_base;

    // 3. Network model: paper's fixed average vs per-pair distances.
    std::printf("\n3. Network transit model (FFT, FLASH):\n");
    {
        MachineConfig avg = MachineConfig::flash(16);
        MachineConfig dist = MachineConfig::flash(16);
        dist.net.distanceBased = true;
        std::printf("   fixed 22-cycle average: %9llu cycles\n",
                    static_cast<unsigned long long>(execOf(avg, "fft")));
        std::printf("   per-pair mesh distance: %9llu cycles\n",
                    static_cast<unsigned long long>(execOf(dist, "fft")));
    }

    // 4. NACK retry backoff (MP3D has the most transient racing).
    std::printf("\n4. NACK retry base backoff (MP3D, FLASH; retries "
                "double per consecutive NACK from this base):\n");
    for (Cycles b : {Cycles{4}, Cycles{16}, Cycles{64}}) {
        MachineConfig cfg = MachineConfig::flash(16);
        cfg.magic.nackRetryBackoff = b;
        RunOutcome r = runApp(cfg, "mp3d");
        std::printf("   base %2llu: %9llu cycles, %llu NACKs\n",
                    static_cast<unsigned long long>(b),
                    static_cast<unsigned long long>(r.summary.execTime),
                    static_cast<unsigned long long>(r.summary.nacksSent));
    }

    // 5. Timing source: PPsim-executed handlers vs Table 3.4 constants.
    std::printf("\n5. Handler timing source (FFT, FLASH):\n");
    {
        MachineConfig emu = MachineConfig::flash(16);
        MachineConfig table = MachineConfig::flash(16);
        table.magic.usePpEmulator = false;
        Tick te = execOf(emu, "fft");
        Tick tt = execOf(table, "fft");
        std::printf("   PPsim-executed handlers: %9llu cycles\n",
                    static_cast<unsigned long long>(te));
        std::printf("   Table 3.4 constants:     %9llu cycles "
                    "(%.1f%% apart)\n",
                    static_cast<unsigned long long>(tt),
                    100.0 * (static_cast<double>(te) /
                                 static_cast<double>(tt) -
                             1.0));
    }

    std::printf("\nDone.\n");
    return 0;
}
