#include "ppisa/ppsim.hh"

#include <algorithm>
#include <sstream>

#include "ppisa/decode.hh"
#include "sim/logging.hh"

namespace flashsim::ppisa
{

std::string
Program::toString() const
{
    std::ostringstream os;
    os << name << " (" << pairs.size() << " pairs, " << codeBytes()
       << " bytes)\n";
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        os << "  " << i << ": [" << pairs[i].a.toString() << " | "
           << pairs[i].b.toString() << "]\n";
    }
    return os.str();
}

std::uint64_t
FlatPpMemory::load(Addr addr, Cycles &extra_cycles)
{
    extra_cycles = 0;
    return peek(addr);
}

void
FlatPpMemory::store(Addr addr, std::uint64_t value, Cycles &extra_cycles)
{
    extra_cycles = 0;
    poke(addr, value);
}

std::uint64_t
FlatPpMemory::peek(Addr addr) const
{
    for (const auto &kv : data_)
        if (kv.first == addr)
            return kv.second;
    return 0;
}

void
FlatPpMemory::poke(Addr addr, std::uint64_t value)
{
    for (auto &kv : data_) {
        if (kv.first == addr) {
            kv.second = value;
            return;
        }
    }
    data_.emplace_back(addr, value);
}

void
RunStats::accumulate(const RunStats &other)
{
    cycles += other.cycles;
    pairs += other.pairs;
    instrs += other.instrs;
    specials += other.specials;
    aluBranch += other.aluBranch;
    memStall += other.memStall;
    invocations += other.invocations;
}

double
RunStats::dualIssueEfficiency() const
{
    return pairs ? static_cast<double>(instrs) / pairs : 0.0;
}

double
RunStats::specialFraction() const
{
    return aluBranch ? static_cast<double>(specials) / aluBranch : 0.0;
}

double
RunStats::pairsPerInvocation() const
{
    return invocations ? static_cast<double>(pairs) / invocations : 0.0;
}

namespace
{

/** Per-slot execution result. */
struct SlotResult
{
    int destReg = -1;
    std::uint64_t destVal = 0;
    bool branchTaken = false;
    std::int64_t branchTarget = 0;
};

SlotResult
execSlot(const Instr &in, RegFile &regs, PpMemory &mem,
         std::vector<SentMessage> &sent, Cycles &stall)
{
    SlotResult r;
    auto rs = [&] { return regs[in.rs]; };
    auto rt = [&] { return regs[in.rt]; };
    auto setDest = [&](std::uint64_t v) {
        r.destReg = in.rd;
        r.destVal = v;
    };

    switch (in.op) {
      case Op::Nop:
        break;
      case Op::Add: setDest(rs() + rt()); break;
      case Op::Sub: setDest(rs() - rt()); break;
      case Op::And: setDest(rs() & rt()); break;
      case Op::Or: setDest(rs() | rt()); break;
      case Op::Xor: setDest(rs() ^ rt()); break;
      case Op::Sllv: setDest(rs() << (rt() & 63)); break;
      case Op::Srlv: setDest(rs() >> (rt() & 63)); break;
      case Op::Slt:
        setDest(static_cast<std::int64_t>(rs()) <
                        static_cast<std::int64_t>(rt())
                    ? 1
                    : 0);
        break;
      case Op::Sltu: setDest(rs() < rt() ? 1 : 0); break;
      case Op::Addi:
        setDest(rs() + static_cast<std::uint64_t>(in.imm));
        break;
      case Op::Andi:
        setDest(rs() & static_cast<std::uint64_t>(in.imm));
        break;
      case Op::Ori:
        setDest(rs() | static_cast<std::uint64_t>(in.imm));
        break;
      case Op::Xori:
        setDest(rs() ^ static_cast<std::uint64_t>(in.imm));
        break;
      case Op::Slli: setDest(rs() << (in.imm & 63)); break;
      case Op::Srli: setDest(rs() >> (in.imm & 63)); break;
      case Op::Srai:
        setDest(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rs()) >> (in.imm & 63)));
        break;
      case Op::Slti:
        setDest(static_cast<std::int64_t>(rs()) < in.imm ? 1 : 0);
        break;
      case Op::Ld: {
        Cycles extra = 0;
        std::uint64_t v =
            mem.load(rs() + static_cast<std::uint64_t>(in.imm), extra);
        stall += extra;
        setDest(v);
        break;
      }
      case Op::Sd: {
        Cycles extra = 0;
        mem.store(rs() + static_cast<std::uint64_t>(in.imm), rt(), extra);
        stall += extra;
        break;
      }
      case Op::Beq:
        if (rs() == rt()) {
            r.branchTaken = true;
            r.branchTarget = in.imm;
        }
        break;
      case Op::Bne:
        if (rs() != rt()) {
            r.branchTaken = true;
            r.branchTarget = in.imm;
        }
        break;
      case Op::J:
        r.branchTaken = true;
        r.branchTarget = in.imm;
        break;
      case Op::Halt:
        break;
      case Op::Ffs: {
        std::uint64_t v = rs();
        setDest(v == 0 ? 64 : static_cast<std::uint64_t>(
                                  __builtin_ctzll(v)));
        break;
      }
      case Op::Bbs:
        if ((rs() >> in.lo) & 1) {
            r.branchTaken = true;
            r.branchTarget = in.imm;
        }
        break;
      case Op::Bbc:
        if (!((rs() >> in.lo) & 1)) {
            r.branchTaken = true;
            r.branchTarget = in.imm;
        }
        break;
      case Op::Ext:
        setDest((rs() >> in.lo) & fieldMask(0, in.width));
        break;
      case Op::Ins: {
        std::uint64_t mask = fieldMask(in.lo, in.width);
        setDest((regs[in.rd] & ~mask) | ((rs() << in.lo) & mask));
        break;
      }
      case Op::Orfi:
        setDest(rs() | fieldMask(in.lo, in.width));
        break;
      case Op::Andfi:
        setDest(rs() & ~fieldMask(in.lo, in.width));
        break;
      case Op::Send:
        sent.push_back(
            SentMessage{static_cast<int>(in.imm), rs(), rt()});
        break;
    }
    return r;
}

void
countInstr(const Instr &in, RunStats &stats)
{
    if (in.isNop())
        return;
    ++stats.instrs;
    if (in.isSpecial())
        ++stats.specials;
    if (in.isAluOrBranch())
        ++stats.aluBranch;
}

/** Per-slot execution over a decoded micro-op: execSlot with the
 *  bitfield masks and branch targets already resolved. */
struct MicroResult
{
    int destReg = -1;
    std::uint64_t destVal = 0;
    bool branchTaken = false;
    std::uint32_t target = 0;
};

/** Inlined into both issue slots of the dynamic loop: the call/return
 *  and the by-value MicroResult otherwise cost as much as the typical
 *  one-ALU-op payload. */
[[gnu::always_inline]] inline MicroResult
execMicro(const MicroOp &m, RegFile &regs, PpMemory &mem,
          std::vector<SentMessage> &sent, Cycles &stall)
{
    MicroResult r;
    auto rs = [&] { return regs[m.rs]; };
    auto rt = [&] { return regs[m.rt]; };
    auto setDest = [&](std::uint64_t v) {
        r.destReg = m.rd;
        r.destVal = v;
    };
    auto branch = [&] {
        r.branchTaken = true;
        r.target = m.target;
    };

    switch (m.op) {
      case Op::Nop:
        break;
      case Op::Add: setDest(rs() + rt()); break;
      case Op::Sub: setDest(rs() - rt()); break;
      case Op::And: setDest(rs() & rt()); break;
      case Op::Or: setDest(rs() | rt()); break;
      case Op::Xor: setDest(rs() ^ rt()); break;
      case Op::Sllv: setDest(rs() << (rt() & 63)); break;
      case Op::Srlv: setDest(rs() >> (rt() & 63)); break;
      case Op::Slt:
        setDest(static_cast<std::int64_t>(rs()) <
                        static_cast<std::int64_t>(rt())
                    ? 1
                    : 0);
        break;
      case Op::Sltu: setDest(rs() < rt() ? 1 : 0); break;
      case Op::Addi:
        setDest(rs() + static_cast<std::uint64_t>(m.imm));
        break;
      case Op::Andi:
        setDest(rs() & static_cast<std::uint64_t>(m.imm));
        break;
      case Op::Ori:
        setDest(rs() | static_cast<std::uint64_t>(m.imm));
        break;
      case Op::Xori:
        setDest(rs() ^ static_cast<std::uint64_t>(m.imm));
        break;
      case Op::Slli: setDest(rs() << (m.imm & 63)); break;
      case Op::Srli: setDest(rs() >> (m.imm & 63)); break;
      case Op::Srai:
        setDest(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rs()) >> (m.imm & 63)));
        break;
      case Op::Slti:
        setDest(static_cast<std::int64_t>(rs()) < m.imm ? 1 : 0);
        break;
      case Op::Ld: {
        Cycles extra = 0;
        std::uint64_t v =
            mem.load(rs() + static_cast<std::uint64_t>(m.imm), extra);
        stall += extra;
        setDest(v);
        break;
      }
      case Op::Sd: {
        Cycles extra = 0;
        mem.store(rs() + static_cast<std::uint64_t>(m.imm), rt(), extra);
        stall += extra;
        break;
      }
      case Op::Beq:
        if (rs() == rt())
            branch();
        break;
      case Op::Bne:
        if (rs() != rt())
            branch();
        break;
      case Op::J:
        branch();
        break;
      case Op::Halt:
        break;
      case Op::Ffs: {
        std::uint64_t v = rs();
        setDest(v == 0 ? 64 : static_cast<std::uint64_t>(
                                  __builtin_ctzll(v)));
        break;
      }
      case Op::Bbs:
        if ((rs() >> m.lo) & 1)
            branch();
        break;
      case Op::Bbc:
        if (!((rs() >> m.lo) & 1))
            branch();
        break;
      case Op::Ext:
        setDest((rs() >> m.lo) & m.mask);
        break;
      case Op::Ins:
        setDest((regs[m.rd] & ~m.mask) | ((rs() << m.lo) & m.mask));
        break;
      case Op::Orfi:
        setDest(rs() | m.mask);
        break;
      case Op::Andfi:
        setDest(rs() & ~m.mask);
        break;
      case Op::Send:
        sent.push_back(
            SentMessage{static_cast<int>(m.imm), rs(), rt()});
        break;
    }
    return r;
}

/** Name the offending register the way the interpreter did: first
 *  source of slot a then slot b that hits a previous-pair load dest. */
[[noreturn]] void
panicLoadDelay(const DecodedPair &pair, std::size_t pc,
               const DecodedProgram &d, std::uint32_t prev_load_mask)
{
    for (const MicroOp *m : {&pair.a, &pair.b}) {
        for (std::uint8_t i = 0; i < m->nsrcs; ++i) {
            const std::uint8_t src = m->srcs[i];
            if (src != 0 && ((prev_load_mask >> src) & 1))
                panic("PpSim: load-delay violation on r%d at pair %zu "
                      "of '%s'", int(src), pc, d.name().c_str());
        }
    }
    panic("PpSim: load-delay violation at pair %zu of '%s'", pc,
          d.name().c_str()); // unreachable: mask hit implies a source
}

} // namespace

Cycles
PpSim::run(const Program &prog, RegFile &regs, PpMemory &mem,
           std::vector<SentMessage> &sent, RunStats &stats) const
{
    if (prog.pairs.empty())
        panic("PpSim: empty program '%s'", prog.name.c_str());

    const DecodedProgram &d = prog.decoded();
    const DecodedPair *pairs = d.pairs().data();
    const std::size_t npairs = d.pairs().size();

    Cycles cycles = 0;
    std::size_t pc = 0;
    // Load destinations of the previous pair; reading one this pair
    // violates the load-delay scheduling contract.
    std::uint32_t prevLoadMask = 0;
    // Accumulate the per-pair statistics in locals and fold them into
    // stats once at the end: the loop body keeps them in registers
    // instead of re-touching the RunStats fields every pair.
    std::uint64_t instrs = 0, specials = 0, aluBranch = 0, npairsRun = 0;
    Cycles memStall = 0;

    while (true) {
        if (pc >= npairs)
            panic("PpSim: pc %zu out of range in '%s'", pc,
                  d.name().c_str());
        const DecodedPair &pair = pairs[pc];

        // Contract verdicts were resolved at decode time; act on them
        // in the interpreter's check order (intra-pair, load-delay,
        // two-branch) only now that the pair is dynamically reached.
        using Violation = DecodedPair::Violation;
        if (pair.violation == Violation::IntraRaw) [[unlikely]]
            panic("PpSim: intra-pair RAW on r%d at pair %zu of '%s'",
                  int(pair.violationReg), pc, d.name().c_str());
        if (pair.violation == Violation::IntraWaw) [[unlikely]]
            panic("PpSim: intra-pair WAW on r%d at pair %zu of '%s'",
                  int(pair.violationReg), pc, d.name().c_str());
        if ((pair.srcMask & prevLoadMask) != 0) [[unlikely]]
            panicLoadDelay(pair, pc, d, prevLoadMask);
        if (pair.violation == Violation::TwoBranch) [[unlikely]]
            panic("PpSim: two branches in pair %zu of '%s'", pc,
                  d.name().c_str());

        Cycles stall = 0;
        MicroResult ra = execMicro(pair.a, regs, mem, sent, stall);
        // Slot b is a Nop in every single-issue pair (and many dual-
        // issue ones): skip the whole switch for it.
        MicroResult rb;
        if (pair.b.op != Op::Nop)
            rb = execMicro(pair.b, regs, mem, sent, stall);
        // Parallel write-back (no intra-pair deps, so order is moot).
        if (ra.destReg > 0)
            regs[ra.destReg] = ra.destVal;
        if (rb.destReg > 0)
            regs[rb.destReg] = rb.destVal;
        regs[0] = 0;

        instrs += pair.instrsInc;
        specials += pair.specialsInc;
        aluBranch += pair.aluBranchInc;
        ++npairsRun;
        cycles += 1 + stall;
        memStall += stall;

        prevLoadMask = pair.loadMask;

        if (pair.halts)
            break;
        if (ra.branchTaken)
            pc = ra.target;
        else if (rb.branchTaken)
            pc = rb.target;
        else
            ++pc;

        if (cycles > kMaxCycles)
            panic("PpSim: runaway handler '%s'", d.name().c_str());
    }

    stats.instrs += instrs;
    stats.specials += specials;
    stats.aluBranch += aluBranch;
    stats.pairs += npairsRun;
    stats.memStall += memStall;
    stats.cycles += cycles;
    ++stats.invocations;
    return cycles;
}

Cycles
PpSim::runReference(const Program &prog, RegFile &regs, PpMemory &mem,
                    std::vector<SentMessage> &sent, RunStats &stats) const
{
    if (prog.pairs.empty())
        panic("PpSim: empty program '%s'", prog.name.c_str());

    Cycles cycles = 0;
    std::size_t pc = 0;
    // Registers written by loads in the previous pair: using them in the
    // current pair violates the load-delay scheduling contract.
    int prevLoadDest[2] = {-1, -1};

    while (true) {
        if (pc >= prog.pairs.size())
            panic("PpSim: pc %zu out of range in '%s'", pc,
                  prog.name.c_str());
        const InstrPair &pair = prog.pairs[pc];

        // Static-scheduling contract checks.
        int dest_a = pair.a.destReg();
        if (dest_a > 0) {
            for (int src : pair.b.srcRegs())
                if (src == dest_a)
                    panic("PpSim: intra-pair RAW on r%d at pair %zu of "
                          "'%s'", dest_a, pc, prog.name.c_str());
            if (pair.b.destReg() == dest_a)
                panic("PpSim: intra-pair WAW on r%d at pair %zu of '%s'",
                      dest_a, pc, prog.name.c_str());
        }
        for (const Instr *in : {&pair.a, &pair.b}) {
            for (int src : in->srcRegs()) {
                if (src != 0 &&
                    (src == prevLoadDest[0] || src == prevLoadDest[1])) {
                    panic("PpSim: load-delay violation on r%d at pair %zu "
                          "of '%s'", src, pc, prog.name.c_str());
                }
            }
        }
        if (pair.a.isBranch() && pair.b.isBranch())
            panic("PpSim: two branches in pair %zu of '%s'", pc,
                  prog.name.c_str());

        Cycles stall = 0;
        SlotResult ra = execSlot(pair.a, regs, mem, sent, stall);
        SlotResult rb = execSlot(pair.b, regs, mem, sent, stall);
        // Parallel write-back (no intra-pair deps, so order is moot).
        if (ra.destReg > 0)
            regs[ra.destReg] = ra.destVal;
        if (rb.destReg > 0)
            regs[rb.destReg] = rb.destVal;
        regs[0] = 0;

        countInstr(pair.a, stats);
        countInstr(pair.b, stats);
        ++stats.pairs;
        cycles += 1 + stall;
        stats.memStall += stall;

        prevLoadDest[0] = pair.a.isLoad() ? pair.a.destReg() : -1;
        prevLoadDest[1] = pair.b.isLoad() ? pair.b.destReg() : -1;

        if (pair.a.op == Op::Halt || pair.b.op == Op::Halt)
            break;
        if (ra.branchTaken)
            pc = static_cast<std::size_t>(ra.branchTarget);
        else if (rb.branchTaken)
            pc = static_cast<std::size_t>(rb.branchTarget);
        else
            ++pc;

        if (cycles > kMaxCycles)
            panic("PpSim: runaway handler '%s'", prog.name.c_str());
    }

    stats.cycles += cycles;
    ++stats.invocations;
    return cycles;
}

} // namespace flashsim::ppisa
