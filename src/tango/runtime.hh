/**
 * @file
 * The workload execution environment (Tango Lite analogue).
 *
 * Env is the per-processor handle a workload coroutine uses to touch
 * the simulated machine: timed loads/stores, compute time, and
 * synchronization primitives that generate real coherence traffic
 * (test-and-test&set locks, sense-reversing counter barriers spinning
 * on a flag line). Time spent inside synchronization is attributed to
 * the Sync execution-time category.
 */

#ifndef FLASHSIM_TANGO_RUNTIME_HH_
#define FLASHSIM_TANGO_RUNTIME_HH_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/processor.hh"
#include "sim/types.hh"
#include "tango/task.hh"

namespace flashsim::tango
{

class Env;

/** Awaitable for a timed read or write. */
struct MemAwaiter
{
    Env *env;
    Addr addr;
    bool isWrite;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
};

/** Synchronous awaitable advancing compute time. */
struct BusyAwaiter
{
    Env *env;
    std::uint64_t instrs;

    bool await_ready() noexcept;
    void await_suspend(std::coroutine_handle<>) noexcept {}
    void await_resume() const noexcept {}
};

/**
 * Awaitable serializing access to shared *host-side* state (lock/
 * barrier variables). Zero simulated time: it defers the continuation
 * into the machine's canonical per-tick sync phase, where operations
 * run in (tick, node, per-node sequence) order regardless of how the
 * run is sharded across threads — the mechanism that keeps sharded
 * runs bit-identical to the single-threaded path (see sim/shard.hh).
 * When no machine wires the hooks (standalone Env), it is a no-op.
 */
struct SyncPointAwaiter
{
    Env *env;

    bool await_ready() const noexcept;
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
};

/** A spin lock living on one cache line. */
struct LockVar
{
    Addr addr = 0;
    bool held = false; ///< host-side lock value
    std::uint64_t acquisitions = 0;
};

/**
 * Sense-reversing combining-tree barrier (two levels, arity 8).
 *
 * A flat counter barrier livelocks into NACK storms at 64 processors
 * (every arrival fights for exclusive ownership of one line), so like
 * real scalable machines the barrier combines within groups of eight
 * before touching the root, and releases through per-group flag lines.
 */
struct BarrierVar
{
    static constexpr int kArity = 8;

    struct Group
    {
        Addr countAddr = 0;
        Addr flagAddr = 0;
        int count = 0; ///< host-side arrival count
        int size = 0;
    };

    /** Use MAGIC's uncached fetch&op for arrivals instead of cached
     *  read-modify-write (no line ping-pong at all). */
    bool useFetchOp = false;

    std::vector<Group> groups;
    Addr rootCountAddr = 0;
    int rootCount = 0;
    int gen = 0;     ///< host-side generation
    int parties = 0; ///< number of processors participating
    std::uint64_t episodes = 0;
};

/** Awaitable for a synchronous block send (waits for the ack). */
struct BlockSendAwaiter
{
    Env *env;
    NodeId dest;
    Addr addr;
    std::uint32_t bytes;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept;
};

/** Awaitable for receiving a block (returns the completion token). */
struct BlockRecvAwaiter
{
    Env *env;

    bool await_ready() const noexcept;
    void await_suspend(std::coroutine_handle<> h);
    Addr await_resume() const noexcept;
};

/** Awaitable for an uncached fetch&op round trip. */
struct FetchOpAwaiter
{
    Env *env;
    Addr addr;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept;
};

class Env
{
  public:
    Env(cpu::Processor *proc, int id, int nprocs)
        : proc_(proc), id_(id), nprocs_(nprocs)
    {}

    int id() const { return id_; }
    int nprocs() const { return nprocs_; }
    cpu::Processor &proc() { return *proc_; }

    /** Timed read of the line containing @p addr (blocking). */
    MemAwaiter read(Addr addr) { return MemAwaiter{this, addr, false}; }
    /** Timed write (non-blocking, subject to MSHR limits). */
    MemAwaiter write(Addr addr) { return MemAwaiter{this, addr, true}; }
    /** Execute @p instrs instructions of compute. */
    BusyAwaiter busy(std::uint64_t instrs)
    {
        return BusyAwaiter{this, instrs};
    }
    /** Serialize the next shared host-state access (zero time). */
    SyncPointAwaiter syncPoint() { return SyncPointAwaiter{this}; }

    /** Acquire a test-and-test&set spin lock. */
    Task lockAcquire(LockVar &l);
    /** Release a lock (a single write to the lock line). */
    Task lockRelease(LockVar &l);
    /** Wait at a sense-reversing barrier. */
    Task barrier(BarrierVar &b);

    // -- Message passing (the FLASH block-transfer protocol) -------------
    /** Synchronously send @p bytes starting at @p addr to node @p dest
     *  as an uncached block transfer; resumes when the receiver's MAGIC
     *  acknowledges the whole block. */
    BlockSendAwaiter
    sendBlock(NodeId dest, Addr addr, std::uint32_t bytes)
    {
        return BlockSendAwaiter{this, dest, addr, bytes};
    }

    /** Wait for the next incoming block transfer; returns the line
     *  address of its final chunk. */
    BlockRecvAwaiter recvBlock() { return BlockRecvAwaiter{this}; }

    /**
     * Uncached fetch&op on @p addr's home memory word: one round trip,
     * no caching, no invalidation storm — FLASH's MAGIC performs the
     * read-modify-write at the home node. The value itself is host
     * state the caller updates on resume (like LL/SC direct execution).
     */
    FetchOpAwaiter fetchOp(Addr addr) { return FetchOpAwaiter{this, addr}; }

    /** Node-side wiring: initiate a transfer on this node's MAGIC. */
    std::function<void(NodeId, Addr, std::uint32_t, Tick)> blockSender;
    /** Node-side wiring: issue a fetch&op through this node's MAGIC. */
    std::function<void(Addr, Tick)> fetchOpSender;
    /** Machine wiring: defer a continuation into the canonical sync
     *  phase at the given tick. Unwired: syncPoint() is a no-op. */
    std::function<void(Tick, std::coroutine_handle<>)> syncParker;
    /** Machine wiring: may a sync point at this tick continue inline
     *  (already inside the sync phase for that tick)? */
    std::function<bool(Tick)> syncInlineOk;
    /** Node-side wiring: a fetch&op this node issued completed. */
    void notifyFetchOpDone(Addr addr);
    /** Node-side wiring: a block finished arriving here. */
    void notifyBlockReceived(Addr token);
    /** Node-side wiring: a block this node sent was acknowledged. */
    void notifyBlockAcked(Addr token);

    bool inSync() const { return inSync_; }
    void setInSync(bool v) { inSync_ = v; }

  private:
    friend struct BlockSendAwaiter;
    friend struct BlockRecvAwaiter;
    friend struct FetchOpAwaiter;

    cpu::Processor *proc_;
    int id_;
    int nprocs_;
    bool inSync_ = false;

    std::vector<Addr> arrivedBlocks_;
    std::coroutine_handle<> recvWaiter_;
    std::coroutine_handle<> sendWaiter_;
    std::coroutine_handle<> fetchOpWaiter_;
};

/** RAII-style toggle used by the sync primitives. */
class SyncRegion
{
  public:
    explicit SyncRegion(Env &env) : env_(env), prev_(env.inSync())
    {
        env_.setInSync(true);
    }
    ~SyncRegion() { env_.setInSync(prev_); }

  private:
    Env &env_;
    bool prev_;
};

} // namespace flashsim::tango

#endif // FLASHSIM_TANGO_RUNTIME_HH_
