#include "protocol/handlers.hh"

#include "sim/logging.hh"

namespace flashsim::protocol
{

const char *
handlerIdName(HandlerId id)
{
    switch (id) {
      case HandlerId::ServeReadMemory: return "ServeReadMemory";
      case HandlerId::ServeWriteMemory: return "ServeWriteMemory";
      case HandlerId::FwdToHome: return "FwdToHome";
      case HandlerId::FwdHomeToDirty: return "FwdHomeToDirty";
      case HandlerId::RetrieveFromCache: return "RetrieveFromCache";
      case HandlerId::ReplyToProc: return "ReplyToProc";
      case HandlerId::LocalWriteback: return "LocalWriteback";
      case HandlerId::LocalHint: return "LocalHint";
      case HandlerId::RemoteWriteback: return "RemoteWriteback";
      case HandlerId::RemoteHintOnly: return "RemoteHintOnly";
      case HandlerId::RemoteHintNth: return "RemoteHintNth";
      case HandlerId::InvalReceive: return "InvalReceive";
      case HandlerId::InvalAck: return "InvalAck";
      case HandlerId::SwbReceive: return "SwbReceive";
      case HandlerId::OwnXferReceive: return "OwnXferReceive";
      case HandlerId::NackReceive: return "NackReceive";
      case HandlerId::HomeNack: return "HomeNack";
      case HandlerId::BlockXferReceive: return "BlockXferReceive";
      case HandlerId::BlockAckReceive: return "BlockAckReceive";
      case HandlerId::FetchOpService: return "FetchOpService";
      case HandlerId::FetchOpAck: return "FetchOpAck";
    }
    return "?";
}

Message
ProtocolEngine::make(MsgType type, NodeId dest, Addr addr, NodeId requester,
                     std::uint32_t aux) const
{
    Message m;
    m.type = type;
    m.src = self_;
    m.dest = dest;
    m.requester = requester;
    m.addr = addr;
    m.aux = aux;
    return m;
}

HandlerResult
ProtocolEngine::handle(const Message &msg)
{
    const bool at_home = map_.homeOf(msg.addr) == self_;
    switch (msg.type) {
      case MsgType::PiGet:
      case MsgType::PiGetx:
      case MsgType::PiWriteback:
      case MsgType::PiReplaceHint:
        if (!at_home)
            return handleRequestForward(msg);
        switch (msg.type) {
          case MsgType::PiGet: return handleGetAtHome(msg);
          case MsgType::PiGetx: return handleGetxAtHome(msg);
          case MsgType::PiWriteback: return handleWritebackAtHome(msg);
          default: return handleReplaceHintAtHome(msg);
        }
      case MsgType::NetGet:
        return handleGetAtHome(msg);
      case MsgType::NetGetx:
        return handleGetxAtHome(msg);
      case MsgType::NetFwdGet:
        return handleFwdGet(msg);
      case MsgType::NetFwdGetx:
        return handleFwdGetx(msg);
      case MsgType::NetWriteback:
        return handleWritebackAtHome(msg);
      case MsgType::NetReplaceHint:
        return handleReplaceHintAtHome(msg);
      case MsgType::NetSwb:
        return handleSwb(msg);
      case MsgType::NetOwnXfer:
        return handleOwnXfer(msg);
      case MsgType::NetInval:
        return handleInval(msg);
      case MsgType::NetPut:
      case MsgType::NetPutx:
      case MsgType::NetInvalAck:
      case MsgType::NetNack:
        return handleReply(msg);
      case MsgType::NetBlockXfer:
      case MsgType::NetBlockAck:
        return handleBlockXfer(msg);
      case MsgType::PiFetchOp:
      case MsgType::NetFetchOp:
      case MsgType::NetFetchOpAck:
        return handleFetchOp(msg);
      default:
        panic("ProtocolEngine: no handler for %s", msg.toString().c_str());
    }
}

HandlerResult
ProtocolEngine::handleRequestForward(const Message &msg)
{
    // Requester-side: pass the processor's request on to the home node.
    // "Forward request to home node" (Table 3.4: 3 cycles).
    HandlerResult r;
    r.id = HandlerId::FwdToHome;
    NodeId home = map_.homeOf(msg.addr);
    MsgType t;
    switch (msg.type) {
      case MsgType::PiGet: t = MsgType::NetGet; break;
      case MsgType::PiGetx: t = MsgType::NetGetx; break;
      case MsgType::PiWriteback: t = MsgType::NetWriteback; break;
      case MsgType::PiReplaceHint: t = MsgType::NetReplaceHint; break;
      default:
        panic("handleRequestForward: bad type %s", msgTypeName(msg.type));
    }
    r.out.push_back({make(t, home, msg.addr, self_), Gate::None});
    return r;
}

HandlerResult
ProtocolEngine::handleGetAtHome(const Message &msg)
{
    HandlerResult r;
    const Addr addr = msg.addr;
    const NodeId req = msg.requester;
    DirHeader h = dir_.header(addr);

    if (h.dirty) {
        if (h.owner == req) {
            // The requester's own writeback is in flight; retry until the
            // writeback reaches memory.
            r.id = HandlerId::HomeNack;
            r.nackedRequest = true;
            r.out.push_back(
                {make(MsgType::NetNack, req, addr, req), Gate::None});
            return r;
        }
        if (h.owner == self_) {
            // Dirty in the home node's own processor cache: retrieve the
            // data via the processor interface, downgrade to shared, and
            // do a sharing writeback to memory.
            if (!probe_.holdsDirty(addr)) {
                // Local writeback already left the cache and sits in the
                // PI queue behind this message; retry.
                r.id = HandlerId::HomeNack;
                r.nackedRequest = true;
                r.out.push_back(
                    {make(MsgType::NetNack, req, addr, req), Gate::None});
                return r;
            }
            r.id = HandlerId::RetrieveFromCache;
            r.cacheRetrieve = true;
            r.cacheSharing = true;
            r.memWrite = true;
            h.dirty = false;
            h.owner = 0;
            dir_.setHeader(addr, h);
            dir_.addSharer(addr, self_);
            dir_.addSharer(addr, req);
            r.out.push_back({make(MsgType::NetPut, req, addr, req),
                             Gate::CacheData});
            return r;
        }
        // Dirty in a third node's cache: three-hop forward.
        r.id = HandlerId::FwdHomeToDirty;
        r.out.push_back(
            {make(MsgType::NetFwdGet, h.owner, addr, req), Gate::None});
        return r;
    }

    // Clean at home: serve from memory. The sharer list is a prepend-only
    // structure (dynamic pointer allocation): FIFO message ordering
    // guarantees a node is never on the list when its GET arrives, so no
    // membership walk is needed (this keeps the handler at its 11-cycle
    // budget).
    r.id = HandlerId::ServeReadMemory;
    r.memRead = true;
    dir_.addSharer(addr, req);
    if (req == self_) {
        r.out.push_back(
            {make(MsgType::PiPut, self_, addr, req), Gate::MemData});
    } else {
        r.out.push_back(
            {make(MsgType::NetPut, req, addr, req), Gate::MemData});
    }
    return r;
}

HandlerResult
ProtocolEngine::handleGetxAtHome(const Message &msg)
{
    HandlerResult r;
    const Addr addr = msg.addr;
    const NodeId req = msg.requester;
    DirHeader h = dir_.header(addr);

    if (h.dirty) {
        if (h.owner == req) {
            r.id = HandlerId::HomeNack;
            r.nackedRequest = true;
            r.out.push_back(
                {make(MsgType::NetNack, req, addr, req), Gate::None});
            return r;
        }
        if (h.owner == self_) {
            if (!probe_.holdsDirty(addr)) {
                r.id = HandlerId::HomeNack;
                r.nackedRequest = true;
                r.out.push_back(
                    {make(MsgType::NetNack, req, addr, req), Gate::None});
                return r;
            }
            // Dirty in home's own cache: retrieve + invalidate local copy,
            // transfer ownership to the requester. Memory stays stale (the
            // requester now owns the only valid copy).
            r.id = HandlerId::RetrieveFromCache;
            r.cacheRetrieve = true;
            r.cacheInvalidate = true;
            h.owner = req;
            dir_.setHeader(addr, h);
            r.out.push_back({make(MsgType::NetPutx, req, addr, req, 0),
                             Gate::CacheData});
            return r;
        }
        r.id = HandlerId::FwdHomeToDirty;
        r.out.push_back(
            {make(MsgType::NetFwdGetx, h.owner, addr, req), Gate::None});
        return r;
    }

    // Clean: invalidate all sharers other than the requester, then grant
    // exclusive ownership with data from memory. "Service write miss from
    // main memory" (Table 3.4: 14 + 10..15 per invalidation).
    r.id = HandlerId::ServeWriteMemory;
    r.memRead = true;
    std::uint32_t acks = 0;
    for (NodeId s : dir_.sharers(addr)) {
        if (s == req)
            continue;
        if (s == self_) {
            // Invalidate the home's own processor cache and ack on its
            // behalf (requester is necessarily remote here).
            r.cacheInvalidate = true;
            r.out.push_back({make(MsgType::NetInvalAck, req, addr, req),
                             Gate::CacheData});
        } else {
            r.out.push_back(
                {make(MsgType::NetInval, s, addr, req), Gate::None});
        }
        ++acks;
    }
    r.costParam = static_cast<int>(acks);
    dir_.clearSharers(addr);
    h = dir_.header(addr);
    h.dirty = true;
    h.owner = req;
    dir_.setHeader(addr, h);

    if (req == self_) {
        r.out.push_back({make(MsgType::PiPutx, self_, addr, req, acks),
                         Gate::MemData});
    } else {
        r.out.push_back({make(MsgType::NetPutx, req, addr, req, acks),
                         Gate::MemData});
    }
    return r;
}

HandlerResult
ProtocolEngine::handleFwdGet(const Message &msg)
{
    // At the (supposed) dirty owner: serve the requester directly and do
    // a sharing writeback to the home node.
    HandlerResult r;
    const Addr addr = msg.addr;
    const NodeId req = msg.requester;
    const NodeId home = map_.homeOf(addr);

    if (!probe_.holdsDirty(addr)) {
        // Ownership already left this cache (writeback or previous
        // forward in flight): NACK the requester, it will retry.
        r.id = HandlerId::NackReceive; // small handler: compose NACK
        r.nackedRequest = true;
        r.out.push_back(
            {make(MsgType::NetNack, req, addr, req), Gate::None});
        return r;
    }
    r.id = HandlerId::RetrieveFromCache;
    r.cacheRetrieve = true;
    r.cacheSharing = true;
    r.out.push_back(
        {make(MsgType::NetPut, req, addr, req), Gate::CacheData});
    r.out.push_back(
        {make(MsgType::NetSwb, home, addr, req), Gate::CacheData});
    return r;
}

HandlerResult
ProtocolEngine::handleFwdGetx(const Message &msg)
{
    HandlerResult r;
    const Addr addr = msg.addr;
    const NodeId req = msg.requester;
    const NodeId home = map_.homeOf(addr);

    if (!probe_.holdsDirty(addr)) {
        r.id = HandlerId::NackReceive;
        r.nackedRequest = true;
        r.out.push_back(
            {make(MsgType::NetNack, req, addr, req), Gate::None});
        return r;
    }
    r.id = HandlerId::RetrieveFromCache;
    r.cacheRetrieve = true;
    r.cacheInvalidate = true;
    r.out.push_back(
        {make(MsgType::NetPutx, req, addr, req, 0), Gate::CacheData});
    r.out.push_back(
        {make(MsgType::NetOwnXfer, home, addr, req), Gate::None});
    return r;
}

HandlerResult
ProtocolEngine::handleWritebackAtHome(const Message &msg)
{
    HandlerResult r;
    const Addr addr = msg.addr;
    const NodeId writer = msg.src;
    r.id = writer == self_ ? HandlerId::LocalWriteback
                           : HandlerId::RemoteWriteback;
    r.memWrite = true;
    DirHeader h = dir_.header(addr);
    if (h.dirty && h.owner == writer) {
        h.dirty = false;
        h.owner = 0;
        dir_.setHeader(addr, h);
    } else {
        // Stale writeback: ownership already moved on (e.g. the writer
        // was NACK-raced). Memory still gets the data; directory state
        // belongs to the newer owner.
        warn("stale writeback from node %u addr 0x%llx", writer,
             static_cast<unsigned long long>(addr));
    }
    return r;
}

HandlerResult
ProtocolEngine::handleReplaceHintAtHome(const Message &msg)
{
    HandlerResult r;
    const NodeId node = msg.src;
    int pos = dir_.removeSharer(msg.addr, node);
    int remaining = dir_.countSharers(msg.addr);
    if (node == self_) {
        r.id = HandlerId::LocalHint;
    } else if (pos <= 0 && remaining == 0) {
        r.id = HandlerId::RemoteHintOnly; // was the only node on the list
    } else {
        r.id = HandlerId::RemoteHintNth;
        r.costParam = pos < 0 ? remaining : pos;
    }
    return r;
}

HandlerResult
ProtocolEngine::handleSwb(const Message &msg)
{
    // Sharing writeback at home: the old owner downgraded and served the
    // requester; both become sharers, memory gets the data.
    HandlerResult r;
    r.id = HandlerId::SwbReceive;
    r.memWrite = true;
    const Addr addr = msg.addr;
    DirHeader h = dir_.header(addr);
    if (!h.dirty || h.owner != msg.src) {
        warn("unexpected Swb from node %u addr 0x%llx", msg.src,
             static_cast<unsigned long long>(addr));
    }
    h.dirty = false;
    h.owner = 0;
    dir_.setHeader(addr, h);
    dir_.addSharer(addr, msg.src);
    if (msg.requester != msg.src)
        dir_.addSharer(addr, msg.requester);
    return r;
}

HandlerResult
ProtocolEngine::handleOwnXfer(const Message &msg)
{
    HandlerResult r;
    r.id = HandlerId::OwnXferReceive;
    DirHeader h = dir_.header(msg.addr);
    if (!h.dirty || h.owner != msg.src) {
        warn("unexpected OwnXfer from node %u addr 0x%llx", msg.src,
             static_cast<unsigned long long>(msg.addr));
    }
    h.dirty = true;
    h.owner = msg.requester;
    dir_.setHeader(msg.addr, h);
    return r;
}

HandlerResult
ProtocolEngine::handleInval(const Message &msg)
{
    // At a sharer: invalidate the processor cache copy and ack to the
    // requester (who counts acks for its pending write).
    HandlerResult r;
    r.id = HandlerId::InvalReceive;
    r.cacheInvalidate = true;
    r.out.push_back({make(MsgType::NetInvalAck, msg.requester, msg.addr,
                          msg.requester),
                     Gate::CacheData});
    return r;
}

HandlerResult
ProtocolEngine::handleReply(const Message &msg)
{
    // Replies at the requesting node: forward data to the processor /
    // account an invalidation ack / schedule a NACK retry. The protocol
    // state here lives in MAGIC's miss-tracking structures, so the
    // handler only classifies; MAGIC performs the bookkeeping.
    HandlerResult r;
    switch (msg.type) {
      case MsgType::NetPut:
        r.id = HandlerId::ReplyToProc;
        r.out.push_back(
            {make(MsgType::PiPut, self_, msg.addr, msg.requester),
             Gate::None});
        break;
      case MsgType::NetPutx:
        r.id = HandlerId::ReplyToProc;
        r.out.push_back({make(MsgType::PiPutx, self_, msg.addr,
                              msg.requester, msg.aux),
                         Gate::None});
        break;
      case MsgType::NetInvalAck:
        r.id = HandlerId::InvalAck;
        break;
      case MsgType::NetNack:
        r.id = HandlerId::NackReceive;
        break;
      default:
        panic("handleReply: bad type %s", msgTypeName(msg.type));
    }
    return r;
}

HandlerResult
ProtocolEngine::handleBlockXfer(const Message &msg)
{
    // Message-passing protocol: block-transfer chunks bypass the
    // coherence directory entirely and stream straight into local
    // memory (the uncached transfer mode of FLASH's message-passing
    // protocol). The final chunk acknowledges the sender; delivery
    // notification to the receiving processor is MAGIC-level
    // bookkeeping (like ack counting).
    HandlerResult r;
    if (msg.type == MsgType::NetBlockAck) {
        r.id = HandlerId::BlockAckReceive;
        return r;
    }
    r.id = HandlerId::BlockXferReceive;
    r.memWrite = true;
    if (msg.aux == 0) { // last chunk of the block
        r.out.push_back(
            {make(MsgType::NetBlockAck, msg.src, msg.addr, msg.requester),
             Gate::None});
    }
    return r;
}

HandlerResult
ProtocolEngine::handleFetchOp(const Message &msg)
{
    // Uncached fetch&op: the home's PP performs the read-modify-write
    // on the memory word directly (no caching, no sharers, no
    // invalidations), so a hot counter costs one round trip however
    // many processors hammer it. The value itself is host-side; the
    // handler models the memory read-modify-write and the reply.
    HandlerResult r;
    if (msg.type == MsgType::NetFetchOpAck) {
        r.id = HandlerId::FetchOpAck;
        return r;
    }
    if (map_.homeOf(msg.addr) != self_) {
        // Requester side of a remote fetch&op: forward to home.
        r.id = HandlerId::FwdToHome;
        r.out.push_back({make(MsgType::NetFetchOp, map_.homeOf(msg.addr),
                              msg.addr, msg.requester),
                         Gate::None});
        return r;
    }
    r.id = HandlerId::FetchOpService;
    // The word-granular read-modify-write is issued by MAGIC as a
    // single short memory access (no line streaming, no allocation).
    if (msg.requester == self_) {
        r.out.push_back({make(MsgType::NetFetchOpAck, self_, msg.addr,
                              msg.requester),
                         Gate::MemData});
    } else {
        r.out.push_back({make(MsgType::NetFetchOpAck, msg.requester,
                              msg.addr, msg.requester),
                         Gate::MemData});
    }
    return r;
}

} // namespace flashsim::protocol
