/**
 * @file
 * Google-Benchmark microbenchmarks over the simulator's two hot paths
 * (the event core and the PP emulator) plus a whole-node miss
 * round-trip, tracked across PRs via BENCH_hotpath.json (see
 * scripts/bench_hotpath.sh). Unlike the evaluation benches (which
 * reproduce paper tables), this suite measures the *simulator's* own
 * speed, the ROADMAP's "as fast as the hardware allows" axis.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "machine/machine.hh"
#include "network/mesh.hh"
#include "ppisa/ppsim.hh"
#include "protocol/directory.hh"
#include "protocol/pp_programs.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace
{

using namespace flashsim;

/**
 * Capture payload matching what the simulator actually schedules: the
 * MAGIC/network/processor lambdas carry a protocol::Message (or more)
 * by value, ~40 bytes on top of the object pointer — past the inline
 * buffer of a libstdc++ std::function, so this is the capture shape
 * whose allocation behaviour matters.
 */
struct EventPayload
{
    std::uint64_t addr;
    std::uint64_t aux;
    std::uint32_t src, dest, req, type;
};

/**
 * Classic hold model: keep @p depth events pending, each iteration
 * schedules one event at a pseudo-random small delay and executes one.
 * Exercises schedule + pop at a steady queue depth.
 */
void
BM_EventQueueHold(benchmark::State &state)
{
    const std::size_t depth = static_cast<std::size_t>(state.range(0));
    EventQueue eq;
    std::uint64_t sink = 0;
    std::uint32_t lcg = 12345;
    auto delay = [&]() -> Cycles {
        lcg = lcg * 1664525u + 1013904223u;
        return (lcg >> 20) & 0xff; // 0..255 cycles: near-term events
    };
    auto post = [&](Cycles d) {
        EventPayload p{sink, d, 1, 2, 3, 4};
        eq.schedule(d, [&sink, p] { sink += p.addr ^ p.aux; });
    };
    for (std::size_t i = 0; i < depth; ++i)
        post(delay());
    for (auto _ : state) {
        post(delay());
        eq.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/** Hold model with far-future delays (overflow/heap level). */
void
BM_EventQueueHoldFar(benchmark::State &state)
{
    const std::size_t depth = static_cast<std::size_t>(state.range(0));
    EventQueue eq;
    std::uint64_t sink = 0;
    std::uint32_t lcg = 99999;
    auto delay = [&]() -> Cycles {
        lcg = lcg * 1664525u + 1013904223u;
        return 4096 + ((lcg >> 16) & 0xfff); // beyond any near-term ring
    };
    auto post = [&](Cycles d) {
        EventPayload p{sink, d, 1, 2, 3, 4};
        eq.schedule(d, [&sink, p] { sink += p.addr ^ p.aux; });
    };
    for (std::size_t i = 0; i < depth; ++i)
        post(delay());
    for (auto _ : state) {
        post(delay());
        eq.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * Bulk schedule + drain: fill the queue with @p depth events, run to
 * empty. The shape of Machine::run's inner life (bursts of nearby
 * events), measured end to end.
 */
void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const std::size_t depth = static_cast<std::size_t>(state.range(0));
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        std::uint32_t lcg = 7;
        for (std::size_t i = 0; i < depth; ++i) {
            lcg = lcg * 1664525u + 1013904223u;
            Cycles d = (lcg >> 20) & 0x3ff;
            EventPayload p{sink, d, 1, 2, 3, 4};
            eq.schedule(d, [&sink, p] { sink += p.addr ^ p.aux; });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(depth));
}

/**
 * PP handler dispatch: execute protocol handler programs back to back
 * the way PpTimingModel does per invocation (register-file setup +
 * emulated execution). The mix alternates the hot read path (GET at
 * home, clean) with the cheap forward program.
 *
 * Two registrations share this body: BM_PpHandlerDispatch runs the
 * decoded interpreter, BM_PpDispatchCompiled the threaded-code backend
 * (scripts/bench_gate.py enforces a >= 2x ratio between them). Release
 * builds leave the conformance oracle off (see PpSim::oracleEnabled),
 * so the threaded number is the production configuration.
 */
void
dispatchBench(benchmark::State &state, ppisa::PpBackend backend)
{
    using protocol::Message;
    using protocol::MsgType;

    static const protocol::HandlerPrograms programs =
        protocol::buildHandlerPrograms();
    ppisa::PpSim sim(backend);
    ppisa::FlatPpMemory mem;
    ppisa::RunStats stats;
    std::vector<ppisa::SentMessage> sent;

    Message get;
    get.type = MsgType::NetGet;
    get.src = 1;
    get.dest = 0;
    get.requester = 1;
    get.addr = 0x10000;

    Message fwd;
    fwd.type = MsgType::PiGet;
    fwd.src = 0;
    fwd.dest = 0;
    fwd.requester = 0;
    fwd.addr = 0x20000;

    // Resolve programs and pin their decodes up front, the way
    // PpTimingModel's dispatch table does at construction; the measured
    // loop then uses the same pre-resolved run() entry the per-message
    // path uses.
    const ppisa::Program &getProg =
        programs.forMessage(get.type, /*at_home=*/true);
    const ppisa::DecodedProgram &getDec = getProg.decoded();
    const ppisa::Program &fwdProg =
        programs.forMessage(fwd.type, /*at_home=*/false);
    const ppisa::DecodedProgram &fwdDec = fwdProg.decoded();

    Cycles total = 0;
    for (auto _ : state) {
        {
            ppisa::RegFile regs =
                protocol::makeHandlerRegs(get, 0, 0, false);
            sent.clear();
            total += sim.run(getProg, getDec, regs, mem, sent, stats);
        }
        {
            ppisa::RegFile regs =
                protocol::makeHandlerRegs(fwd, 0, 1, false);
            sent.clear();
            total += sim.run(fwdProg, fwdDec, regs, mem, sent, stats);
        }
    }
    benchmark::DoNotOptimize(total);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2);
}

void
BM_PpHandlerDispatch(benchmark::State &state)
{
    dispatchBench(state, ppisa::PpBackend::Interpreter);
}

void
BM_PpDispatchCompiled(benchmark::State &state)
{
    dispatchBench(state, ppisa::PpBackend::Threaded);
}

/**
 * Whole-node miss round-trip: processor 0 streams reads over lines
 * homed on node 1 (remote-clean misses), every one a full PI -> MAGIC
 * -> network -> home PP -> reply round trip with the PP emulator in the
 * loop. One benchmark iteration = one whole machine lifetime, so this
 * tracks the end-to-end cost of everything the simulator does per miss.
 */
void
BM_MissRoundTrip(benchmark::State &state)
{
    constexpr int kLines = 512;
    std::uint64_t misses = 0;
    for (auto _ : state) {
        machine::MachineConfig cfg = machine::MachineConfig::flash(4);
        machine::Machine m(cfg);
        Addr base = m.alloc(kLines * kLineSize, /*node=*/1);
        auto workload = [base](tango::Env &env) -> tango::Task {
            co_await env.busy(0);
            if (env.id() != 0)
                co_return;
            for (int i = 0; i < kLines; ++i)
                co_await env.read(base +
                                  static_cast<Addr>(i) * kLineSize);
        };
        m.run(workload);
        m.drain();
        misses += kLines;
    }
    benchmark::DoNotOptimize(misses);
    state.SetItemsProcessed(static_cast<std::int64_t>(misses));
}

/**
 * BM_MissRoundTrip with the recoverable-fault transport live: seeded
 * wire-plane loss (drops, duplicates, reorders) on every lane, so each
 * miss also pays sequence/dedup bookkeeping, ack traffic and a share
 * of RTO retransmissions. The spread over BM_MissRoundTrip is the
 * all-in cost of surviving a lossy mesh; the clean-path cost of merely
 * compiling the transport in is gated separately (BM_MissRoundTrip
 * must stay within a strict tolerance of its baseline).
 */
void
BM_LossyMissRoundTrip(benchmark::State &state)
{
    constexpr int kLines = 512;
    std::uint64_t misses = 0;
    for (auto _ : state) {
        machine::MachineConfig cfg = machine::MachineConfig::flash(4);
        cfg.magic.verify.fault.enabled = true;
        cfg.magic.verify.fault.seed = 17;
        cfg.magic.verify.fault.wireDropProb = 0.05;
        cfg.magic.verify.fault.wireDupProb = 0.03;
        cfg.magic.verify.fault.wireReorderProb = 0.03;
        machine::Machine m(cfg);
        Addr base = m.alloc(kLines * kLineSize, /*node=*/1);
        auto workload = [base](tango::Env &env) -> tango::Task {
            co_await env.busy(0);
            if (env.id() != 0)
                co_return;
            for (int i = 0; i < kLines; ++i)
                co_await env.read(base +
                                  static_cast<Addr>(i) * kLineSize);
        };
        m.run(workload);
        m.drain();
        misses += kLines;
    }
    benchmark::DoNotOptimize(misses);
    state.SetItemsProcessed(static_cast<std::int64_t>(misses));
}

/**
 * Directory hot ops over the paged flat store: the add/remove/clear
 * sharer-list walks every home-node handler performs, plus the raw
 * word view the PP shadow memory reads through. 64 lines cycle
 * through 1-sharer and 3-sharer states so both the header fast path
 * and the link pool (alloc + free-list reuse) stay exercised.
 */
void
BM_DirectoryOps(benchmark::State &state)
{
    protocol::DirectoryStore dir;
    constexpr int kLines = 64;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < kLines; ++i) {
            Addr line = static_cast<Addr>(i) * kLineSize;
            dir.addSharer(line, 1);
            dir.addSharer(line, 2);
            dir.addSharer(line, 3);
            sink += dir.countSharers(line);
            sink += dir.loadWord(protocol::headerAddr(line));
            dir.removeSharer(line, 2);
            sink += dir.isSharer(line, 3) ? 1 : 0;
            dir.clearSharers(line);
        }
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            kLines);
}

/**
 * Dense stat handles: the per-event counter update path (resolve once,
 * then array adds), the shape every per-node model uses after the
 * string-keyed map moved to report time.
 */
void
BM_StatHandle(benchmark::State &state)
{
    StatSet stats;
    const StatSet::Handle h0 = stats.handle("pp.invocations");
    const StatSet::Handle h1 = stats.handle("pp.busyCycles");
    const StatSet::Handle h2 = stats.handle("mdc.reads");
    const StatSet::Handle h3 = stats.handle("mdc.misses");
    for (auto _ : state) {
        stats.add(h0, 1.0);
        stats.add(h1, 14.0);
        stats.add(h2, 3.0);
        stats.add(h3, 1.0);
    }
    benchmark::DoNotOptimize(stats.get(h0) + stats.get(h1) +
                             stats.get(h2) + stats.get(h3));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4);
}

/**
 * Pooled mesh send: inject and deliver messages through the slab-
 * backed network (send -> slot copy -> event -> deliver -> slot
 * recycle), 16 in flight like a busy 16-node machine.
 */
void
BM_MeshSend(benchmark::State &state)
{
    EventQueue eq;
    network::MeshNetwork net(eq, 16);
    std::uint64_t delivered = 0;
    for (NodeId n = 0; n < 16; ++n)
        net.connect(n, [&delivered](const protocol::Message &m) {
            delivered += m.addr;
        });
    protocol::Message msg;
    msg.type = protocol::MsgType::NetGet;
    msg.requester = 0;
    msg.addr = 0x10000;
    std::uint32_t lcg = 99;
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i) {
            lcg = lcg * 1664525u + 1013904223u;
            msg.src = static_cast<NodeId>((lcg >> 8) & 15);
            msg.dest = static_cast<NodeId>((lcg >> 12) & 15);
            net.send(msg);
        }
        eq.run();
    }
    benchmark::DoNotOptimize(delivered);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            16);
}

/**
 * The sharded run loop (sim/shard.hh): one 64-node machine running a
 * remote-heavy read/write mix, at 1, 2 and 4 worker shards. Results
 * are bit-identical across shard counts, so this measures pure
 * simulator throughput: window scheduling + cross-shard staging
 * overhead versus parallel event execution. On a host with >= 4 free
 * cores the 4-shard run should be >= 2x the 1-shard run; on fewer
 * cores the extra shards only add synchronization overhead and the
 * ratio inverts (compare against num_cpus in the tracked JSON).
 */
void
BM_ShardedRun(benchmark::State &state)
{
    constexpr int kProcs = 64;
    constexpr int kRefs = 48;
    constexpr int kTotalLines = kProcs * kRefs;
    std::uint64_t refs = 0;
    for (auto _ : state) {
        machine::MachineConfig cfg = machine::MachineConfig::flash(kProcs);
        cfg.shards = static_cast<int>(state.range(0));
        machine::Machine m(cfg);
        // Auto placement stripes pages round-robin, so the strided
        // walk below hits homes on every node from every node.
        Addr base = m.allocAuto(kTotalLines * kLineSize);
        auto workload = [base](tango::Env &env) -> tango::Task {
            co_await env.busy(0);
            for (int i = 0; i < kRefs; ++i) {
                const int line =
                    (env.id() * 17 + i * 7) % kTotalLines;
                const Addr a =
                    base + static_cast<Addr>(line) * kLineSize;
                if (i % 4 == 3)
                    co_await env.write(a);
                else
                    co_await env.read(a);
                co_await env.busy(20);
            }
        };
        m.run(workload);
        m.drain();
        refs += static_cast<std::uint64_t>(kProcs) * kRefs;
    }
    benchmark::DoNotOptimize(refs);
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}

/**
 * The same sharded loop on a *sparse* workload: long busy gaps between
 * remote misses, so most of virtual time is idle and the adaptive
 * coordinator's idle-window skipping carries the run (shard.windows.*
 * stats in the CLI report show the skip fraction). Measures the cost
 * of a window edge itself — horizon query, merge, barrier — rather
 * than event execution; the win from skipping shows up as this bench
 * staying flat as busy gaps grow.
 */
void
BM_ShardedSparseRun(benchmark::State &state)
{
    constexpr int kProcs = 64;
    constexpr int kRefs = 8;
    constexpr int kTotalLines = kProcs * kRefs;
    std::uint64_t refs = 0;
    for (auto _ : state) {
        machine::MachineConfig cfg = machine::MachineConfig::flash(kProcs);
        cfg.shards = static_cast<int>(state.range(0));
        machine::Machine m(cfg);
        Addr base = m.allocAuto(kTotalLines * kLineSize);
        auto workload = [base](tango::Env &env) -> tango::Task {
            co_await env.busy(0);
            for (int i = 0; i < kRefs; ++i) {
                const int line =
                    (env.id() * 17 + i * 7) % kTotalLines;
                const Addr a =
                    base + static_cast<Addr>(line) * kLineSize;
                co_await env.read(a);
                co_await env.busy(1500);
            }
        };
        m.run(workload);
        m.drain();
        refs += static_cast<std::uint64_t>(kProcs) * kRefs;
    }
    benchmark::DoNotOptimize(refs);
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}

BENCHMARK(BM_EventQueueHold)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_EventQueueHoldFar)->Arg(256)->Arg(4096);
BENCHMARK(BM_EventQueueScheduleRun)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_PpHandlerDispatch);
BENCHMARK(BM_PpDispatchCompiled);
BENCHMARK(BM_DirectoryOps);
BENCHMARK(BM_StatHandle);
BENCHMARK(BM_MeshSend);
BENCHMARK(BM_MissRoundTrip)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LossyMissRoundTrip)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedRun)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_ShardedSparseRun)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
