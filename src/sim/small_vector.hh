/**
 * @file
 * SmallVector: a vector with inline storage for the first N elements.
 *
 * The protocol hot path builds a handful of outgoing messages per
 * handler invocation; a std::vector heap-allocates for the first
 * push_back every time. Storing the common case inline makes the
 * per-invocation message list allocation-free, spilling to the heap
 * only for the rare large fan-out (one invalidation per sharer).
 */

#ifndef FLASHSIM_SIM_SMALL_VECTOR_HH_
#define FLASHSIM_SIM_SMALL_VECTOR_HH_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace flashsim
{

template <typename T, std::size_t N>
class SmallVector
{
    static_assert(N > 0, "inline capacity must be nonzero");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVector() = default;

    SmallVector(const SmallVector &other) { appendAll(other); }

    SmallVector(SmallVector &&other) noexcept { moveFrom(other); }

    SmallVector &
    operator=(const SmallVector &other)
    {
        if (this != &other) {
            clear();
            appendAll(other);
        }
        return *this;
    }

    SmallVector &
    operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            moveFrom(other);
        }
        return *this;
    }

    ~SmallVector() { destroyAll(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return cap_; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void
    push_back(const T &v)
    {
        emplace_back(v);
    }

    void
    push_back(T &&v)
    {
        emplace_back(std::move(v));
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == cap_)
            grow();
        T *p = ::new (static_cast<void *>(data_ + size_))
            T(std::forward<Args>(args)...);
        ++size_;
        return *p;
    }

    /** Destroy all elements; inline storage is retained, heap storage
     *  is kept for reuse (capacity is never reduced). */
    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            data_[i].~T();
        size_ = 0;
    }

  private:
    T *
    inlineData()
    {
        return reinterpret_cast<T *>(inline_);
    }

    bool onHeap() const { return data_ != nullptr && cap_ > N; }

    void
    grow()
    {
        const std::size_t newCap = cap_ * 2;
        T *fresh = static_cast<T *>(
            ::operator new(newCap * sizeof(T), std::align_val_t{
                                                   alignof(T)}));
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(fresh + i)) T(std::move(data_[i]));
            data_[i].~T();
        }
        if (onHeap())
            ::operator delete(data_, std::align_val_t{alignof(T)});
        data_ = fresh;
        cap_ = newCap;
    }

    void
    destroyAll()
    {
        clear();
        if (onHeap())
            ::operator delete(data_, std::align_val_t{alignof(T)});
        data_ = inlineData();
        cap_ = N;
    }

    void
    appendAll(const SmallVector &other)
    {
        for (const T &v : other)
            push_back(v);
    }

    /** Steal @p other's heap buffer or move its inline elements;
     *  leaves @p other empty. Precondition: *this holds no elements. */
    void
    moveFrom(SmallVector &other) noexcept
    {
        if (other.onHeap()) {
            data_ = other.data_;
            cap_ = other.cap_;
            size_ = other.size_;
            other.data_ = other.inlineData();
            other.cap_ = N;
            other.size_ = 0;
            return;
        }
        data_ = inlineData();
        cap_ = N;
        for (std::size_t i = 0; i < other.size_; ++i) {
            ::new (static_cast<void *>(data_ + i))
                T(std::move(other.data_[i]));
            other.data_[i].~T();
        }
        size_ = other.size_;
        other.size_ = 0;
    }

    alignas(T) unsigned char inline_[N * sizeof(T)];
    T *data_ = reinterpret_cast<T *>(inline_);
    std::size_t size_ = 0;
    std::size_t cap_ = N;
};

} // namespace flashsim

#endif // FLASHSIM_SIM_SMALL_VECTOR_HH_
