/**
 * @file
 * Reproduces the Section 4.3 occupancy experiments:
 *
 *  1. FFT with 4 KB caches and ALL memory allocated on node 0: the
 *     paper measures 81.6% PP occupancy on node 0 but only a 2.6%
 *     FLASH/ideal difference, because node 0's memory occupancy is
 *     simultaneously high (67.7%) — the protocol processing hides
 *     under the memory access time.
 *
 *  2. The OS workload with first-fit page placement (the original
 *     bus-oriented IRIX port): maximum PP occupancy 81% with memory
 *     occupancy only 33%, costing FLASH 29% against the ideal machine;
 *     round-robin placement (the tuned kernel) recovers it.
 *
 * The paper's conclusion: high PP occupancy hurts only when memory
 * occupancy is simultaneously low.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

struct HotspotResult
{
    Pair pair;
    double maxPpOcc = 0;
    double maxMemOcc = 0;
};

PairSpec
hotspotSpec(const std::string &app, int procs, std::uint32_t cache,
            machine::Placement placement)
{
    PairSpec s = pairSpec(app, procs, cache);
    s.flash.placement = placement;
    s.ideal.placement = placement;
    return s;
}

HotspotResult
hotspotResult(Pair pair)
{
    HotspotResult r;
    r.pair = std::move(pair);
    const Machine &m = *r.pair.flash.machine;
    for (int n = 0; n < m.numProcs(); ++n) {
        r.maxPpOcc = std::max(
            r.maxPpOcc,
            m.node(n).magic().ppOcc.fraction(m.executionTime()));
        r.maxMemOcc = std::max(
            r.maxMemOcc,
            m.node(n).magic().memory().occ.fraction(m.executionTime()));
    }
    return r;
}

void
report(const char *label, const HotspotResult &r, double paper_pp,
       double paper_mem, double paper_slowdown)
{
    std::printf("%-34s maxPP %5.1f%% (paper %4.0f%%)  maxMem %5.1f%% "
                "(paper %4.0f%%)  FLASH +%5.1f%% (paper +%.1f%%)\n",
                label, 100.0 * r.maxPpOcc, paper_pp, 100.0 * r.maxMemOcc,
                paper_mem, r.pair.slowdownPct(), paper_slowdown);
}

} // namespace

int
main()
{
    std::printf("Section 4.3: PP occupancy vs memory occupancy\n\n");

    // Four placement configurations, eight independent machines, one
    // sweep: FFT hot-spot and round-robin, OS first-fit (the original
    // bus-oriented IRIX port) and round-robin (the tuned kernel).
    sim::SweepRunner runner;
    std::vector<PairSpec> specs = {
        hotspotSpec("fft", 16, 4096, machine::Placement::Node0),
        hotspotSpec("fft", 16, 4096, machine::Placement::RoundRobinPages),
        hotspotSpec("os", 8, 1u << 20, machine::Placement::FirstFit),
        hotspotSpec("os", 8, 1u << 20,
                    machine::Placement::RoundRobinPages),
    };
    std::vector<Pair> pairs = runPairs(specs, runner);
    printSweepMetrics("sec_4_3", runner.lastMetrics());

    report("FFT 4KB, all memory on node 0:",
           hotspotResult(std::move(pairs[0])), 81.6, 67.7, 2.6);
    report("FFT 4KB, round-robin pages:",
           hotspotResult(std::move(pairs[1])), 0, 0, 0);
    std::printf("\n");
    report("OS, first-fit placement:", hotspotResult(std::move(pairs[2])),
           81, 33, 29);
    report("OS, round-robin placement:",
           hotspotResult(std::move(pairs[3])), 0, 0, 10);

    std::printf("\nShape check: the hot node's PP occupancy is high in "
                "both hot-spot runs, but only the OS/first-fit case "
                "(high PP occupancy with LOW memory occupancy) costs "
                "FLASH significantly against the ideal machine.\n");
    return 0;
}
