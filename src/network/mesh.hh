/**
 * @file
 * The interconnection network model.
 *
 * The paper charges every message a fixed transit latency derived from
 * the average path on a 2-D mesh with a 40 ns per-hop fall-through time
 * (Section 3.2): one hop to enter, the average internal hop count, one
 * hop to exit, plus 3 cycles of header. For 16 processors this comes to
 * 22 cycles; the same geometry formula scales the latency for the
 * 64-processor runs of Section 4.5.
 *
 * Optionally the model charges actual per-pair Manhattan distances
 * instead of the average (distanceBased), which the paper's simulator
 * did not do; the default matches the paper.
 *
 * Sharded runs (sim/shard.hh): the network is split into one endpoint
 * per shard. A send whose destination lives on the same shard schedules
 * its delivery directly on that shard's queue; a cross-shard send is
 * staged in a per-destination outbox and merged at the next window edge
 * by exchangeWindows(). Every delivery — local or staged — carries a
 * canonical (source node, per-source sequence) key and travels in the
 * EventQueue's network lane, so the delivery interleave at a tick is
 * identical whether or not a message crossed a shard boundary, and
 * identical to the single-threaded run. The minimum inter-node transit
 * (minTransit) is the conservative window lookahead: a message sent
 * inside a window cannot arrive before the next one.
 */

#ifndef FLASHSIM_NETWORK_MESH_HH_
#define FLASHSIM_NETWORK_MESH_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "protocol/message.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flashsim::network
{

struct MeshParams
{
    Cycles perHop = 4;    ///< 40 ns fall-through
    Cycles header = 3;    ///< header cycles
    bool distanceBased = false; ///< per-pair distance instead of average
};

class MeshNetwork
{
  public:
    using Deliver = std::function<void(const protocol::Message &)>;

    /** Single-shard network: every node on one queue. */
    MeshNetwork(EventQueue &eq, int num_nodes, MeshParams params = {});

    /**
     * Sharded network: @p eqs holds one queue per shard and
     * @p shard_of maps each node to its shard. Cross-shard sends stage
     * until exchangeWindows().
     */
    MeshNetwork(const std::vector<EventQueue *> &eqs,
                std::vector<int> shard_of, int num_nodes,
                MeshParams params = {});

    /** Register node @p n's delivery callback (its NI inbound). */
    void connect(NodeId n, Deliver deliver);

    /** Inject a message; it is delivered after its transit latency. */
    void send(const protocol::Message &msg);

    /**
     * Inject a message that leaves its source NI at @p departure
     * (>= now): delivered at departure + transit. Equivalent to
     * scheduling an event at @p departure that calls send(), minus
     * that intermediate event — the sender's outbox hands the future
     * departure time straight to the network. Under an active
     * perturbation this falls back to the two-stage path, because the
     * anti-reordering clamp must observe sends in departure order.
     */
    void sendAt(const protocol::Message &msg, Tick departure);

    /**
     * Merge every staged cross-shard message into its destination
     * shard's queue (network lane, canonical key). Call only at a
     * window edge, with all shards quiescent.
     */
    void exchangeWindows();

    /** Average transit latency in cycles (22 for 16 nodes). */
    Cycles avgTransit() const { return avgTransit_; }

    /** Transit latency charged for a specific pair. Self-sends never
     *  enter the mesh and pay only entry/exit + header, in both
     *  modes. */
    Cycles transit(NodeId src, NodeId dest) const;

    /** Minimum transit between two *distinct* nodes: the conservative
     *  lookahead bounding a sharded run's time windows. */
    Cycles minTransit() const;

    /** minTransit() for a hypothetical network (lets the machine pick
     *  a shard count before constructing one). */
    static Cycles minTransitFor(int num_nodes, MeshParams params);

    /** avgTransit() for a hypothetical network. */
    static Cycles avgTransitFor(int num_nodes, MeshParams params);

    /** Mesh side length (smallest square covering num_nodes). */
    int side() const { return side_; }

    /**
     * Install a per-message transit perturbation (fault injection:
     * contention jitter). Extra cycles returned by @p perturb are added
     * to the transit, with delivery clamped so no message overtakes an
     * earlier one on the same (src, dest) pair — the protocol's
     * NACK/retry convergence depends on point-to-point FIFO order.
     * Pass an empty function to remove.
     */
    void setPerturb(std::function<Cycles(const protocol::Message &)> p);

    /** Total messages injected (all endpoints). */
    Counter messages() const;
    /** Data-carrying messages injected (all endpoints). */
    Counter dataMessages() const;

    /** In-flight slab slots currently occupied (tests/diagnostics). */
    std::uint32_t inFlight() const;
    /** Total slab capacity allocated so far (tests/diagnostics). */
    std::uint32_t slabCapacity() const;

  private:
    /** Messages per slab chunk; chunk storage never moves, so a
     *  delivery may hold a reference across nested sends. */
    static constexpr std::uint32_t kSlabChunk = 128;
    using SlabChunk = std::unique_ptr<protocol::Message[]>;

    /** A cross-shard message parked until the next window edge. */
    struct Staged
    {
        Tick when;
        NodeId src;
        std::uint64_t seq;
        protocol::Message msg;
    };

    /**
     * One shard's view of the network: its own in-flight slab and
     * counters (written only from that shard's thread during a window)
     * plus per-destination-shard outboxes for staged messages.
     */
    struct Endpoint
    {
        EventQueue *eq = nullptr;
        std::vector<SlabChunk> slab;
        std::vector<std::uint32_t> freeSlots;
        std::uint32_t inFlight = 0;
        Counter messages = 0;
        Counter dataMessages = 0;
        std::vector<std::vector<Staged>> outbox;
    };

    std::uint32_t allocSlot(Endpoint &ep);
    void deliverSlot(std::uint32_t epIdx, std::uint32_t slot);
    protocol::Message &
    slot(Endpoint &ep, std::uint32_t s)
    {
        return ep.slab[s / kSlabChunk][s % kSlabChunk];
    }
    void inject(const protocol::Message &msg, Tick when);

    int numNodes_;
    int side_;
    MeshParams params_;
    Cycles avgTransit_;
    std::vector<Deliver> deliver_;
    std::function<Cycles(const protocol::Message &)> perturb_;
    /** Last scheduled delivery per (src, dest), perturbed mode only.
     *  Each row is written only by the source node's shard. */
    std::vector<Tick> lastDelivery_;

    std::vector<Endpoint> eps_;
    /** Node -> shard (all zero in the single-shard constructor). */
    std::vector<int> shardOf_;
    /** Per-source monotonic send sequence: the canonical network-lane
     *  key (written only by the source node's shard). */
    std::vector<std::uint64_t> srcSeq_;
};

} // namespace flashsim::network

#endif // FLASHSIM_NETWORK_MESH_HH_
