#include "verify/watchdog.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/logging.hh"

namespace flashsim::verify
{

Watchdog::Watchdog(EventQueue &eq, const VerifyParams &params)
    : eq_(eq), interval_(params.watchdogInterval),
      maxAge_(params.maxTransactionAge),
      noProgressWindow_(params.noProgressWindow)
{
    if (interval_ == 0)
        fatal("Watchdog: watchdogInterval must be nonzero");
}

void
Watchdog::txnStart(NodeId node, Addr addr)
{
    txns_.emplace(key(node, addr), eq_.now());
    if (!armed_)
        arm();
}

void
Watchdog::txnRetire(NodeId node, Addr addr)
{
    txns_.erase(key(node, addr));
    ++retired_;
    lastProgress_ = eq_.now();
}

void
Watchdog::txnRetry(NodeId node, Addr addr)
{
    auto it = txns_.find(key(node, addr));
    if (it == txns_.end())
        return; // raced with completion; nothing to re-age
    it->second = eq_.now();
    lastProgress_ = eq_.now();
}

void
Watchdog::arm()
{
    armed_ = true;
    lastProgress_ = eq_.now();
    std::uint64_t gen = gen_;
    eq_.schedule(interval_, [this, gen] { check(gen); });
}

void
Watchdog::check(std::uint64_t gen)
{
    if (gen != gen_)
        return; // disarmed since this check was scheduled
    if (txns_.empty()) {
        // Quiesced: stop rescheduling so the event queue can drain.
        armed_ = false;
        ++gen_;
        return;
    }

    const Tick now = eq_.now();

    std::uint64_t oldestKey = 0;
    Tick oldestStart = ~Tick{0};
    for (const auto &[k, start] : txns_) {
        if (start < oldestStart) {
            oldestStart = start;
            oldestKey = k;
        }
    }
    if (now - oldestStart > maxAge_) {
        trip("transaction from node " +
             std::to_string(oldestKey >> 48) + " for line 0x" +
             [&] {
                 char buf[32];
                 std::snprintf(buf, sizeof(buf), "%llx",
                               static_cast<unsigned long long>(
                                   (oldestKey & ((std::uint64_t{1} << 48) -
                                                 1)) *
                                   kLineSize));
                 return std::string(buf);
             }() +
             " outstanding for " + std::to_string(now - oldestStart) +
             " cycles (limit " + std::to_string(maxAge_) + ")");
        return;
    }
    if (now - lastProgress_ > noProgressWindow_) {
        trip("no transaction retired for " +
             std::to_string(now - lastProgress_) + " cycles with " +
             std::to_string(txns_.size()) +
             " outstanding (NACK livelock or deadlock)");
        return;
    }

    std::uint64_t g = gen_;
    eq_.schedule(interval_, [this, g] { check(g); });
}

void
Watchdog::trip(std::string reason)
{
    ++trips_;
    // Disarm: if onTrip returns (record-only policy) we must not keep
    // the event queue alive forever on a machine that will never make
    // progress again. The next txn start or retire re-arms.
    armed_ = false;
    ++gen_;
    if (onTrip)
        onTrip(reason);
}

void
Watchdog::writeStatus(std::ostream &os) const
{
    const Tick now = eq_.now();
    os << "watchdog: " << txns_.size() << " transaction(s) outstanding, "
       << retired_ << " retired, last progress at t=" << lastProgress_
       << " (now t=" << now << ")\n";

    std::vector<std::pair<std::uint64_t, Tick>> v(txns_.begin(),
                                                  txns_.end());
    std::sort(v.begin(), v.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second < b.second;
        return a.first < b.first;
    });
    const std::size_t shown = std::min<std::size_t>(v.size(), 16);
    for (std::size_t i = 0; i < shown; ++i) {
        const auto &[k, start] = v[i];
        os << "  node " << (k >> 48) << " line 0x" << std::hex
           << ((k & ((std::uint64_t{1} << 48) - 1)) * kLineSize)
           << std::dec << " age " << (now - start) << "\n";
    }
    if (v.size() > shown)
        os << "  ... and " << (v.size() - shown) << " more\n";
}

} // namespace flashsim::verify
