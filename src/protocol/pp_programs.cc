#include "protocol/pp_programs.hh"

#include <memory>
#include <mutex>

#include "ppisa/decode.hh"
#include "protocol/directory.hh"
#include "sim/logging.hh"

namespace flashsim::protocol
{

namespace
{

using ppc::IrFunction;
using ppc::Label;
using ppc::Reg;
namespace df = dirfield;

/** The handler ABI register set (see pp_programs.hh). */
struct Abi
{
    Reg msgType, addr, src, aux, req, self, home, hdrAddr, linkBase,
        cacheDirty, ackAddr, rawArg;

    explicit Abi(IrFunction &f)
        : msgType(f.reg()), addr(f.reg()), src(f.reg()), aux(f.reg()),
          req(f.reg()), self(f.reg()), home(f.reg()), hdrAddr(f.reg()),
          linkBase(f.reg()), cacheDirty(f.reg()), ackAddr(f.reg()),
          rawArg(f.reg())
    {}
};

constexpr int
mt(MsgType t)
{
    return static_cast<int>(t);
}

/** Scratch registers shared by repeated list-prepend expansions. */
struct AllocTemps
{
    Reg fh, fa, fw, e;
};

/**
 * Emit the dynamic-pointer-allocation list prepend: pop the free list,
 * write the new entry {node, next = old head}, splice into the header.
 * Mirrors DirectoryStore::addSharer; @p hdr is updated in-register and
 * the caller stores it back.
 */
void
emitAddSharerFixed(IrFunction &f, const Abi &a, Reg hdr, Reg node,
                   const AllocTemps &t)
{
    f.ld(t.fh, a.linkBase, 0);
    f.ext(t.e, hdr, df::kHeadLo, df::kHeadWidth);
    f.slli(t.e, t.e, 16);               // next field position
    f.slli(t.fa, t.fh, 3);
    f.add(t.fa, t.fa, a.linkBase);
    f.ld(t.fw, t.fa, 0);
    f.ins(t.e, node, 0, 16);
    f.ext(t.fw, t.fw, 16, 16);
    f.sd(a.linkBase, 0, t.fw);
    f.sd(t.fa, 0, t.e);
    f.ins(hdr, t.fh, df::kHeadLo, df::kHeadWidth);
}

/**
 * Requester-side program forwarding a processor request to the home
 * node. The jump table dispatches this variant directly when the inbox
 * address decode says the line is remote ("forward request to home
 * node", Table 3.4: 3 cycles).
 */
IrFunction
buildForwardToHome(const char *name, MsgType net_type)
{
    IrFunction f(name);
    Abi a(f);
    f.send(mt(net_type), a.home, a.rawArg);
    f.halt();
    return f;
}

/**
 * Home-side bookkeeping when a request is forwarded to a dirty owner:
 * the protocol records the outstanding forward (so stale writebacks and
 * re-requests can be sorted out later) in a transaction record next to
 * the ack-table entry. This is what makes "forward request from home to
 * dirty node" cost 18 cycles in Table 3.4.
 */
void
emitForwardRecord(IrFunction &f, const Abi &a, Reg owner, Reg scratch)
{
    f.ld(scratch, a.ackAddr, 0);      // outstanding-transaction record
    f.addi(scratch, scratch, 0);
    f.ins(scratch, a.req, 0, 8);      // requester field
    f.ins(scratch, owner, 8, 8);      // owner field
    f.orfi(scratch, scratch, 16, 1);  // forward-pending flag
    f.ins(scratch, a.msgType, 24, 8); // original request type
    f.sd(a.ackAddr, 0, scratch);
}

/**
 * GET service at the home node (shared by PiGet and NetGet programs).
 * @p reply_type is PiPut for the local case, NetPut for the remote case.
 */
IrFunction
buildGet(const char *name, MsgType reply_type)
{
    IrFunction f(name);
    Abi a(f);

    Label dirty = f.label();
    Label nack = f.label();
    Label owner_self = f.label();

    Reg hdr = f.reg();
    f.ld(hdr, a.hdrAddr, 0);
    f.bbs(hdr, df::kDirtyBit, dirty);

    // Clean: prepend the requester and reply with data from memory.
    AllocTemps t{f.reg(), f.reg(), f.reg(), f.reg()};
    emitAddSharerFixed(f, a, hdr, a.req, t);
    f.sd(a.hdrAddr, 0, hdr);
    f.send(mt(reply_type), a.req, a.rawArg);
    f.halt();

    f.bind(dirty);
    Reg owner = f.reg();
    Reg rec = f.reg();
    f.ext(owner, hdr, df::kOwnerLo, df::kOwnerWidth);
    f.beq(owner, a.req, nack);      // requester's writeback in flight
    f.beq(owner, a.self, owner_self);
    emitForwardRecord(f, a, owner, rec);
    f.send(mt(MsgType::NetFwdGet), owner, a.rawArg); // three-hop forward
    f.halt();

    f.bind(owner_self);
    f.bbc(a.cacheDirty, 0, nack);   // local writeback raced ahead
    // Dirty in our own processor cache: downgrade to shared, sharing
    // writeback to memory, reply directly.
    f.andfi(hdr, hdr, df::kDirtyBit, 1);
    f.andfi(hdr, hdr, df::kOwnerLo, df::kOwnerWidth);
    emitAddSharerFixed(f, a, hdr, a.self, t);
    emitAddSharerFixed(f, a, hdr, a.req, t);
    f.sd(a.hdrAddr, 0, hdr);
    f.send(mt(MsgType::NetPut), a.req, a.rawArg);
    f.halt();

    f.bind(nack);
    f.send(mt(MsgType::NetNack), a.req, a.rawArg);
    f.halt();
    return f;
}

/** GETX service at the home node (PiGetx and NetGetx programs). */
IrFunction
buildGetx(const char *name, MsgType reply_type)
{
    IrFunction f(name);
    Abi a(f);

    Label dirty = f.label();
    Label nack = f.label();
    Label owner_self = f.label();
    Label loop = f.label();
    Label loop_end = f.label();
    Label not_self = f.label();
    Label skip = f.label();

    Reg hdr = f.reg();
    f.ld(hdr, a.hdrAddr, 0);
    f.bbs(hdr, df::kDirtyBit, dirty);

    // Clean: invalidate every sharer except the requester, freeing the
    // list as we walk it, then grant exclusive with data from memory.
    Reg cur = f.reg();
    Reg fh = f.reg();
    Reg acks = f.reg();
    Reg t0 = f.reg();
    Reg lw = f.reg();
    Reg lnode = f.reg();
    Reg lnext = f.reg();
    Reg e = f.reg();
    f.ext(cur, hdr, df::kHeadLo, df::kHeadWidth);
    f.ld(fh, a.linkBase, 0);
    f.li(acks, 0);

    f.bind(loop);
    Reg zero{0};
    f.beq(cur, zero, loop_end);
    f.slli(t0, cur, 3);
    f.add(t0, t0, a.linkBase);
    f.ld(lw, t0, 0);
    f.ext(lnode, lw, 0, 16);
    f.ext(lnext, lw, 16, 16);
    f.beq(lnode, a.req, skip);      // requester keeps its copy
    f.beq(lnode, a.self, not_self);
    f.send(mt(MsgType::NetInval), lnode, a.rawArg);
    f.addi(acks, acks, 1);
    f.j(skip);
    f.bind(not_self);
    // Home itself is a sharer: invalidate the local cache (done by the
    // PI under handler control) and ack on the home's behalf.
    f.send(mt(MsgType::NetInvalAck), a.req, a.rawArg);
    f.addi(acks, acks, 1);
    f.bind(skip);
    // Free this link entry: entry = {0, old free head}; free head = cur.
    f.slli(e, fh, 16);
    f.sd(t0, 0, e);
    f.mv(fh, cur);
    f.mv(cur, lnext);
    f.j(loop);

    f.bind(loop_end);
    f.sd(a.linkBase, 0, fh);
    f.ins(hdr, zero, df::kHeadLo, df::kHeadWidth);
    f.orfi(hdr, hdr, df::kDirtyBit, 1);
    f.ins(hdr, a.req, df::kOwnerLo, df::kOwnerWidth);
    f.sd(a.hdrAddr, 0, hdr);
    Reg argx = f.reg();
    f.mv(argx, a.rawArg);
    f.ins(argx, acks, 40, 16);
    f.send(mt(reply_type), a.req, argx);
    f.halt();

    f.bind(dirty);
    Reg owner = f.reg();
    Reg rec = f.reg();
    f.ext(owner, hdr, df::kOwnerLo, df::kOwnerWidth);
    f.beq(owner, a.req, nack);
    f.beq(owner, a.self, owner_self);
    emitForwardRecord(f, a, owner, rec);
    f.send(mt(MsgType::NetFwdGetx), owner, a.rawArg);
    f.halt();

    f.bind(owner_self);
    f.bbc(a.cacheDirty, 0, nack);
    // Dirty in our own cache: hand ownership straight to the requester.
    f.ins(hdr, a.req, df::kOwnerLo, df::kOwnerWidth);
    f.sd(a.hdrAddr, 0, hdr);
    f.send(mt(MsgType::NetPutx), a.req, a.rawArg);
    f.halt();

    f.bind(nack);
    f.send(mt(MsgType::NetNack), a.req, a.rawArg);
    f.halt();
    return f;
}

/** Writeback at home (PiWriteback local path and NetWriteback). */
IrFunction
buildWriteback(const char *name)
{
    IrFunction f(name);
    Abi a(f);

    Label skip = f.label();
    Reg hdr = f.reg();
    Reg owner = f.reg();
    f.ld(hdr, a.hdrAddr, 0);
    f.li(owner, 0); // fill load delay
    f.bbc(hdr, df::kDirtyBit, skip);
    f.ext(owner, hdr, df::kOwnerLo, df::kOwnerWidth);
    f.bne(owner, a.src, skip);      // stale writeback: leave directory
    f.andfi(hdr, hdr, df::kDirtyBit, 1);
    f.andfi(hdr, hdr, df::kOwnerLo, df::kOwnerWidth);
    f.sd(a.hdrAddr, 0, hdr);
    f.bind(skip);
    f.halt();
    return f;
}

/** Replacement hint at home: unlink @c src from the sharer list. */
IrFunction
buildHint(const char *name)
{
    IrFunction f(name);
    Abi a(f);

    Label loop = f.label();
    Label found = f.label();
    Label at_head = f.label();
    Label free_entry = f.label();
    Label done = f.label();

    Reg hdr = f.reg();
    Reg cur = f.reg();
    Reg prev_addr = f.reg();
    Reg t0 = f.reg();
    Reg lw = f.reg();
    Reg lnode = f.reg();
    Reg lnext = f.reg();
    Reg e = f.reg();
    Reg fh = f.reg();
    Reg zero{0};

    f.ld(hdr, a.hdrAddr, 0);
    f.li(prev_addr, 0);
    f.ext(cur, hdr, df::kHeadLo, df::kHeadWidth);

    f.bind(loop);
    f.beq(cur, zero, done);         // node not on list: stale hint
    f.slli(t0, cur, 3);
    f.add(t0, t0, a.linkBase);
    f.ld(lw, t0, 0);
    f.li(lnode, 0); // fill load delay
    f.ext(lnode, lw, 0, 16);
    f.ext(lnext, lw, 16, 16);
    f.beq(lnode, a.src, found);
    f.mv(prev_addr, t0);
    f.mv(cur, lnext);
    f.j(loop);

    f.bind(found);
    f.beq(prev_addr, zero, at_head);
    f.ld(lw, prev_addr, 0);         // predecessor entry
    f.li(e, 0);
    f.ins(lw, lnext, 16, 16);       // unlink
    f.sd(prev_addr, 0, lw);
    f.j(free_entry);

    f.bind(at_head);
    f.ins(hdr, lnext, df::kHeadLo, df::kHeadWidth);
    f.sd(a.hdrAddr, 0, hdr);

    f.bind(free_entry);
    f.ld(fh, a.linkBase, 0);
    f.li(e, 0);
    f.ins(e, fh, 16, 16);           // entry = {0, old free head}
    f.sd(t0, 0, e);
    f.sd(a.linkBase, 0, cur);       // free head = freed entry

    f.bind(done);
    f.halt();
    return f;
}

/** NetFwdGet at the dirty owner. */
IrFunction
buildFwdGet()
{
    IrFunction f("ni_fwdget");
    Abi a(f);
    Label nack = f.label();
    f.bbc(a.cacheDirty, 0, nack);
    // The PP directs the PI intervention and the data transfer logic;
    // the transfer setup is a handful of control-register writes modeled
    // by the ack-table store below.
    Reg t0 = f.reg();
    f.li(t0, 1);
    f.sd(a.ackAddr, 0, t0);
    f.send(mt(MsgType::NetPut), a.req, a.rawArg);
    f.send(mt(MsgType::NetSwb), a.home, a.rawArg);
    f.halt();
    f.bind(nack);
    f.send(mt(MsgType::NetNack), a.req, a.rawArg);
    f.halt();
    return f;
}

/** NetFwdGetx at the dirty owner. */
IrFunction
buildFwdGetx()
{
    IrFunction f("ni_fwdgetx");
    Abi a(f);
    Label nack = f.label();
    f.bbc(a.cacheDirty, 0, nack);
    Reg t0 = f.reg();
    f.li(t0, 1);
    f.sd(a.ackAddr, 0, t0);
    f.send(mt(MsgType::NetPutx), a.req, a.rawArg);
    f.send(mt(MsgType::NetOwnXfer), a.home, a.rawArg);
    f.halt();
    f.bind(nack);
    f.send(mt(MsgType::NetNack), a.req, a.rawArg);
    f.halt();
    return f;
}

/**
 * NetSwb at home: old owner and requester become sharers. This handler
 * is on the critical occupancy path of migratory sharing (every
 * three-hop read ends here), so it is hand-tuned the way the paper's
 * handlers were: both sharer-list entries are carved out of the free
 * list with a single pop-two sequence instead of two independent
 * allocations.
 */
IrFunction
buildSwb()
{
    IrFunction f("ni_swb");
    Abi a(f);
    Label single = f.label();
    Reg hdr = f.reg();
    Reg fh = f.reg();   // first free index
    Reg fa1 = f.reg();  // its address
    Reg fw1 = f.reg();  // its link word
    Reg f2 = f.reg();   // second free index
    Reg e1 = f.reg();
    Reg oh = f.reg();   // old list head

    f.ld(fh, a.linkBase, 0);
    f.ld(hdr, a.hdrAddr, 0);
    f.slli(fa1, fh, 3);
    f.add(fa1, fa1, a.linkBase);
    f.ld(fw1, fa1, 0);
    f.ext(oh, hdr, df::kHeadLo, df::kHeadWidth);
    f.andfi(hdr, hdr, df::kDirtyBit, 1);
    f.andfi(hdr, hdr, df::kOwnerLo, df::kOwnerWidth);
    f.ext(f2, fw1, 16, 16);
    // entry1 = {old owner, next = old head} at index fh.
    f.slli(e1, oh, 16);
    f.ins(e1, a.src, 0, 16);
    f.sd(fa1, 0, e1);
    f.beq(a.req, a.src, single);

    // entry2 = {requester, next = fh} at index f2; new list head = f2.
    Reg fa2 = f.reg();
    Reg fw2 = f.reg();
    Reg e2 = f.reg();
    Reg nf = f.reg();
    f.slli(fa2, f2, 3);
    f.add(fa2, fa2, a.linkBase);
    f.ld(fw2, fa2, 0);
    f.slli(e2, fh, 16);
    f.ins(e2, a.req, 0, 16);
    f.ext(nf, fw2, 16, 16);
    f.sd(fa2, 0, e2);
    f.sd(a.linkBase, 0, nf);
    f.ins(hdr, f2, df::kHeadLo, df::kHeadWidth);
    f.sd(a.hdrAddr, 0, hdr);
    f.halt();

    f.bind(single);
    f.sd(a.linkBase, 0, f2);
    f.ins(hdr, fh, df::kHeadLo, df::kHeadWidth);
    f.sd(a.hdrAddr, 0, hdr);
    f.halt();
    return f;
}

/** NetOwnXfer at home: record the new owner. */
IrFunction
buildOwnXfer()
{
    IrFunction f("ni_ownxfer");
    Abi a(f);
    Reg hdr = f.reg();
    f.ld(hdr, a.hdrAddr, 0);
    f.addi(hdr, hdr, 0); // load delay (scheduler keeps the gap)
    f.ins(hdr, a.req, df::kOwnerLo, df::kOwnerWidth);
    f.orfi(hdr, hdr, df::kDirtyBit, 1);
    f.sd(a.hdrAddr, 0, hdr);
    f.halt();
    return f;
}

/** NetInval at a sharer: invalidate local cache, ack to the requester. */
IrFunction
buildInval()
{
    IrFunction f("ni_inval");
    Abi a(f);
    // Model the PI invalidation control sequence.
    Reg t0 = f.reg();
    f.li(t0, 2);
    f.sd(a.ackAddr, 0, t0);
    f.send(mt(MsgType::NetInvalAck), a.req, a.rawArg);
    f.halt();
    return f;
}

/** NetInvalAck at the requester: decrement the pending-ack count. */
IrFunction
buildInvalAck()
{
    IrFunction f("ni_invalack");
    Abi a(f);
    Reg cnt = f.reg();
    f.ld(cnt, a.ackAddr, 0);
    f.addi(cnt, cnt, -1);
    f.sd(a.ackAddr, 0, cnt);
    f.halt();
    return f;
}

/** NetPut at the requester: forward the reply to the processor. */
IrFunction
buildPut()
{
    IrFunction f("ni_put");
    Abi a(f);
    f.send(mt(MsgType::PiPut), a.self, a.rawArg);
    f.halt();
    return f;
}

/** NetPutx at the requester: forward + arm the ack counter. */
IrFunction
buildPutx()
{
    IrFunction f("ni_putx");
    Abi a(f);
    f.sd(a.ackAddr, 0, a.aux);
    f.send(mt(MsgType::PiPutx), a.self, a.rawArg);
    f.halt();
    return f;
}

/**
 * NetBlockXfer at the receiver: steer the chunk into local memory via
 * the data-transfer logic and update the transfer record; the final
 * chunk acknowledges the sender (message-passing protocol).
 */
IrFunction
buildBlockXfer()
{
    IrFunction f("ni_block_xfer");
    Abi a(f);
    Label not_last = f.label();
    Reg rec = f.reg();
    f.ld(rec, a.ackAddr, 0);        // transfer record for this block
    f.addi(rec, rec, 1);            // chunks landed
    f.sd(a.ackAddr, 0, rec);
    f.bne(a.aux, Reg{0}, not_last); // aux = chunks remaining after this
    f.send(mt(MsgType::NetBlockAck), a.src, a.rawArg);
    f.bind(not_last);
    f.halt();
    return f;
}

/** NetBlockAck at the sender: mark the transfer complete. */
IrFunction
buildBlockAck()
{
    IrFunction f("ni_block_ack");
    Abi a(f);
    Reg t0 = f.reg();
    f.li(t0, 0);
    f.sd(a.ackAddr, 0, t0); // clear the transfer record
    f.halt();
    return f;
}

/**
 * Fetch&op service at the home node: the PP performs the uncached
 * read-modify-write (the data access itself is the speculative memory
 * read) and replies with the old value.
 */
IrFunction
buildFetchOp()
{
    IrFunction f("ni_fetchop");
    Abi a(f);
    Reg rec = f.reg();
    f.ld(rec, a.ackAddr, 0);   // op descriptor / combining record
    f.addi(rec, rec, 1);
    f.sd(a.ackAddr, 0, rec);
    f.send(mt(MsgType::NetFetchOpAck), a.req, a.rawArg);
    f.halt();
    return f;
}

/** Fetch&op result back at the requester. */
IrFunction
buildFetchOpAck()
{
    IrFunction f("ni_fetchop_ack");
    Abi a(f);
    Reg t0 = f.reg();
    f.li(t0, 0);
    f.sd(a.ackAddr, 0, t0);
    f.halt();
    return f;
}

/** NetNack at the requester: MAGIC schedules the retry. */
IrFunction
buildNack()
{
    IrFunction f("ni_nack");
    Abi a(f);
    Reg t0 = f.reg();
    f.li(t0, 1);
    f.sd(a.ackAddr, 0, t0); // mark the miss entry for retry
    f.halt();
    return f;
}

} // namespace

HandlerPrograms
buildHandlerPrograms(const ppc::CompileOptions &opts)
{
    HandlerPrograms p;
    p.piGetLocal =
        ppc::compile(buildGet("pi_get_local", MsgType::PiPut), opts);
    p.piGetRemote = ppc::compile(
        buildForwardToHome("pi_get_remote", MsgType::NetGet), opts);
    p.piGetxLocal =
        ppc::compile(buildGetx("pi_getx_local", MsgType::PiPutx), opts);
    p.piGetxRemote = ppc::compile(
        buildForwardToHome("pi_getx_remote", MsgType::NetGetx), opts);
    p.piWbLocal = ppc::compile(buildWriteback("pi_wb_local"), opts);
    p.piWbRemote = ppc::compile(
        buildForwardToHome("pi_wb_remote", MsgType::NetWriteback), opts);
    p.piHintLocal = ppc::compile(buildHint("pi_hint_local"), opts);
    p.piHintRemote = ppc::compile(
        buildForwardToHome("pi_hint_remote", MsgType::NetReplaceHint),
        opts);
    p.niGet = ppc::compile(buildGet("ni_get", MsgType::NetPut), opts);
    p.niGetx = ppc::compile(buildGetx("ni_getx", MsgType::NetPutx), opts);
    p.niFwdGet = ppc::compile(buildFwdGet(), opts);
    p.niFwdGetx = ppc::compile(buildFwdGetx(), opts);
    p.niSwb = ppc::compile(buildSwb(), opts);
    p.niOwnXfer = ppc::compile(buildOwnXfer(), opts);
    p.niInval = ppc::compile(buildInval(), opts);
    p.niInvalAck = ppc::compile(buildInvalAck(), opts);
    p.niPut = ppc::compile(buildPut(), opts);
    p.niPutx = ppc::compile(buildPutx(), opts);
    p.niNack = ppc::compile(buildNack(), opts);
    p.niWb = ppc::compile(buildWriteback("ni_wb"), opts);
    p.niHint = ppc::compile(buildHint("ni_hint"), opts);
    p.niBlockXfer = ppc::compile(buildBlockXfer(), opts);
    p.niBlockAck = ppc::compile(buildBlockAck(), opts);
    p.niFetchOp = ppc::compile(buildFetchOp(), opts);
    p.niFetchOpAck = ppc::compile(buildFetchOpAck(), opts);
    p.piFetchOpRemote = ppc::compile(
        buildForwardToHome("pi_fetchop_remote", MsgType::NetFetchOp),
        opts);
    return p;
}

std::shared_ptr<const HandlerPrograms>
sharedHandlerPrograms(const ppc::CompileOptions &opts)
{
    // Four possible option combinations; each slot is built once per
    // process under the lock and pre-decoded before publication so
    // concurrent machines only ever read the shared set.
    static std::mutex mu;
    static std::shared_ptr<const HandlerPrograms> cache[2][2];

    std::lock_guard<std::mutex> lock(mu);
    std::shared_ptr<const HandlerPrograms> &slot =
        cache[opts.useSpecialInstrs ? 1 : 0][opts.dualIssue ? 1 : 0];
    if (!slot) {
        auto built =
            std::make_shared<HandlerPrograms>(buildHandlerPrograms(opts));
        for (const ppisa::Program *p : built->all())
            p->decoded(); // warm the decode cache while still private
        slot = std::move(built);
    }
    return slot;
}

const ppisa::Program &
HandlerPrograms::forMessage(MsgType t, bool at_home) const
{
    const ppisa::Program *p = forMessageOrNull(t, at_home);
    if (p == nullptr)
        panic("HandlerPrograms: no program for type %d",
              static_cast<int>(t));
    return *p;
}

const ppisa::Program *
HandlerPrograms::forMessageOrNull(MsgType t, bool at_home) const
{
    switch (t) {
      case MsgType::PiGet: return at_home ? &piGetLocal : &piGetRemote;
      case MsgType::PiGetx:
        return at_home ? &piGetxLocal : &piGetxRemote;
      case MsgType::PiWriteback:
        return at_home ? &piWbLocal : &piWbRemote;
      case MsgType::PiReplaceHint:
        return at_home ? &piHintLocal : &piHintRemote;
      case MsgType::NetGet: return &niGet;
      case MsgType::NetGetx: return &niGetx;
      case MsgType::NetFwdGet: return &niFwdGet;
      case MsgType::NetFwdGetx: return &niFwdGetx;
      case MsgType::NetSwb: return &niSwb;
      case MsgType::NetOwnXfer: return &niOwnXfer;
      case MsgType::NetInval: return &niInval;
      case MsgType::NetInvalAck: return &niInvalAck;
      case MsgType::NetPut: return &niPut;
      case MsgType::NetPutx: return &niPutx;
      case MsgType::NetNack: return &niNack;
      case MsgType::NetWriteback: return &niWb;
      case MsgType::NetReplaceHint: return &niHint;
      case MsgType::NetBlockXfer: return &niBlockXfer;
      case MsgType::NetBlockAck: return &niBlockAck;
      case MsgType::PiFetchOp:
        return at_home ? &niFetchOp : &piFetchOpRemote;
      case MsgType::NetFetchOp: return &niFetchOp;
      case MsgType::NetFetchOpAck: return &niFetchOpAck;
      default:
        return nullptr;
    }
}

std::vector<const ppisa::Program *>
HandlerPrograms::all() const
{
    return {&piGetLocal, &piGetRemote, &piGetxLocal, &piGetxRemote,
            &piWbLocal,  &piWbRemote,  &piHintLocal, &piHintRemote,
            &niGet,      &niGetx,      &niFwdGet,    &niFwdGetx,
            &niSwb,      &niOwnXfer,   &niInval,     &niInvalAck,
            &niPut,      &niPutx,      &niNack,      &niWb,
            &niHint,     &niBlockXfer, &niBlockAck,
            &niFetchOp,  &niFetchOpAck, &piFetchOpRemote};
}

std::size_t
HandlerPrograms::totalCodeBytes() const
{
    std::size_t total = 0;
    for (const ppisa::Program *p : all())
        total += p->codeBytes();
    return total;
}

Message
decodeSent(const ppisa::SentMessage &s, NodeId self)
{
    Message m;
    m.type = static_cast<MsgType>(s.type);
    m.src = self;
    m.dest = static_cast<NodeId>(s.dest);
    m.addr = sendArgAddr(s.arg);
    m.aux = sendArgAux(s.arg);
    m.requester = sendArgRequester(s.arg);
    return m;
}

} // namespace flashsim::protocol
