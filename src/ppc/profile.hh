/**
 * @file
 * Static micro-op profile pass.
 *
 * Walks compiled handler programs (post-decode, so Nop padding and the
 * scheduler's pairing are visible) and counts static opcode and
 * issue-pair frequencies. Two consumers:
 *
 *  - The threaded-code backend (ppisa/threaded.hh) implements fused
 *    fast-path kernels for the hottest dual-issue (a, b) combinations
 *    this pass reports over the protocol handler set; a unit test pins
 *    the specialized-kernel coverage so the fused set cannot silently
 *    rot as handlers evolve.
 *  - Toolchain statistics: the report() breakdown extends the Table 5.2
 *    static-code numbers with per-opcode and per-pair detail.
 *
 * Counts are static (each scheduled pair counted once, loop bodies
 * unweighted): the protocol handlers are short and loop-light, so
 * static frequency is a faithful stand-in for dynamic frequency, and it
 * keeps the pass deterministic with no workload in the loop.
 */

#ifndef FLASHSIM_PPC_PROFILE_HH_
#define FLASHSIM_PPC_PROFILE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "ppisa/instruction.hh"
#include "ppisa/ppsim.hh"

namespace flashsim::ppc
{

/** One (slot a, slot b) issue-pair combination and its static count. */
struct PairFreq
{
    ppisa::Op a = ppisa::Op::Nop;
    ppisa::Op b = ppisa::Op::Nop;
    std::uint64_t count = 0;
};

/** Accumulated static micro-op statistics over one or more programs. */
class MicroOpProfile
{
  public:
    /** Fold @p prog's scheduled pairs into the profile. */
    void addProgram(const ppisa::Program &prog);

    /** Static occurrences of @p op across both issue slots. */
    std::uint64_t opCount(ppisa::Op op) const;

    /** Static occurrences of the ordered issue pair (@p a, @p b). */
    std::uint64_t pairCount(ppisa::Op a, ppisa::Op b) const;

    /** Total scheduled pairs folded in (Nop/Nop padding included). */
    std::uint64_t totalPairs() const { return totalPairs_; }

    /**
     * The @p n most frequent pair combinations, most frequent first.
     * Ties break toward lower opcode values so the order is stable.
     * Pure Nop/Nop padding pairs are excluded (nothing to fuse).
     */
    std::vector<PairFreq> hottest(std::size_t n) const;

    /** Like hottest(), but only genuinely dual-issue pairs (both slots
     *  non-Nop) — the fusion candidates for the threaded backend. */
    std::vector<PairFreq> hottestDual(std::size_t n) const;

    /** Human-readable breakdown (opcode table + hottest pairs). */
    std::string report() const;

  private:
    std::uint64_t pairs_[ppisa::kNumOps][ppisa::kNumOps] = {};
    std::uint64_t totalPairs_ = 0;
};

/** Profile every program in @p progs (e.g. HandlerPrograms::all()). */
MicroOpProfile
profilePrograms(const std::vector<const ppisa::Program *> &progs);

} // namespace flashsim::ppc

#endif // FLASHSIM_PPC_PROFILE_HH_
