#include "apps/mp3d.hh"

#include "sim/logging.hh"

namespace flashsim::apps
{

namespace
{
constexpr Addr kParticleBytes = 32; ///< position, velocity, flags
constexpr Addr kCellBytes = 64;     ///< counters, collision partners
} // namespace

void
Mp3d::setup(machine::Machine &m)
{
    // Particle placement and drift both draw rng.below(p_.cells); a
    // zero-cell configuration must fail fast, not divide by zero.
    if (p_.cells <= 0)
        panic("Mp3d: cells must be positive (got %d)", p_.cells);

    nprocs_ = m.numProcs();
    perProc_ = p_.particles / nprocs_;

    for (int p = 0; p < nprocs_; ++p) {
        Addr base = m.alloc(static_cast<Addr>(perProc_) * kParticleBytes,
                            static_cast<NodeId>(p));
        for (int i = 0; i < perProc_; ++i)
            particleAddr_.push_back(base +
                                    static_cast<Addr>(i) * kParticleBytes);
    }
    // Space cells, striped across node memories page by page.
    Addr cells_base =
        m.allocAuto(static_cast<Addr>(p_.cells) * kCellBytes);
    for (int c = 0; c < p_.cells; ++c)
        cellAddr_.push_back(cells_base + static_cast<Addr>(c) * kCellBytes);

    Rng rng(p_.seed);
    particleCell_.resize(
        static_cast<std::size_t>(nprocs_) * perProc_);
    for (auto &c : particleCell_)
        c = static_cast<std::uint32_t>(
            rng.below(static_cast<std::uint64_t>(p_.cells)));
    bar_ = m.makeBarrier();
}

tango::Task
Mp3d::run(tango::Env &env)
{
    co_await env.busy(0);
    const int me = env.id();
    Rng rng(p_.seed + static_cast<std::uint64_t>(me) * 7 + 1);

    for (int step = 0; step < p_.steps; ++step) {
        for (int i = 0; i < perProc_; ++i) {
            std::size_t body =
                static_cast<std::size_t>(me) *
                    static_cast<std::size_t>(perProc_) +
                static_cast<std::size_t>(i);
            // Move the particle: read/update its record (local block).
            co_await env.read(particleAddr_[body]);
            co_await env.busy(p_.instrsPerMove);
            co_await env.write(particleAddr_[body]);

            // Drift to a nearby cell and update the shared space cell:
            // read-modify-write on a line almost certainly dirty in the
            // cache of whichever processor last moved a particle there.
            std::uint32_t cell = particleCell_[body];
            std::uint32_t next =
                (cell + 1 +
                 static_cast<std::uint32_t>(rng.below(31))) %
                static_cast<std::uint32_t>(p_.cells);
            particleCell_[body] = next;
            co_await env.read(cellAddr_[next]);
            co_await env.busy(40);
            co_await env.write(cellAddr_[next]);
        }
        co_await env.barrier(bar_);
    }
}

} // namespace flashsim::apps
