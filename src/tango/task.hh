/**
 * @file
 * Coroutine task type for workload programs.
 *
 * FlashLite was driven by Tango Lite, an event-driven reference
 * generator executing the application per-processor. Here each
 * simulated processor runs a C++20 coroutine issuing loads, stores and
 * synchronization against the simulated memory system. Task supports
 * composition (co_await a child task) with symmetric transfer, so
 * synchronization primitives are themselves coroutines.
 */

#ifndef FLASHSIM_TANGO_TASK_HH_
#define FLASHSIM_TANGO_TASK_HH_

#include <coroutine>
#include <cstdlib>
#include <utility>

namespace flashsim::tango
{

/** A lazily-started void coroutine with continuation chaining. */
class Task
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation = std::noop_coroutine();

        Task
        get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                return h.promise().continuation;
            }
            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::abort(); }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
    Task(Task &&other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            h_ = std::exchange(other.h_, nullptr);
        }
        return *this;
    }
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    /** Start a root task (fire and keep; caller must keep Task alive). */
    void
    start()
    {
        h_.resume();
    }

    bool done() const { return !h_ || h_.done(); }

    /** Awaiting a task starts it and resumes the parent on completion. */
    auto
    operator co_await() noexcept
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> h;
            bool await_ready() const noexcept { return !h || h.done(); }
            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent) noexcept
            {
                h.promise().continuation = parent;
                return h;
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{h_};
    }

  private:
    void
    destroy()
    {
        if (h_)
            h_.destroy();
        h_ = nullptr;
    }

    std::coroutine_handle<promise_type> h_;
};

} // namespace flashsim::tango

#endif // FLASHSIM_TANGO_TASK_HH_
