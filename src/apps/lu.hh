/**
 * @file
 * LU: blocked dense LU factorization (Table 3.5: 512x512 matrix,
 * 16x16 blocks).
 *
 * Blocks are assigned to processors in a 2-D scatter and allocated in
 * their owner's local memory (the SPLASH-2 contiguous-blocks layout).
 * Each step factors the diagonal block, updates the perimeter, then
 * updates the interior; consumers read the pivot blocks of remote
 * owners after they are written, so misses are mostly remote (Table
 * 4.1: 67% remote clean, 32% remote dirty at home) but rare — LU's
 * computation-to-communication ratio keeps the miss rate at ~0.05%.
 */

#ifndef FLASHSIM_APPS_LU_HH_
#define FLASHSIM_APPS_LU_HH_

#include "apps/workload.hh"

namespace flashsim::apps
{

struct LuParams
{
    int n = 256;        ///< matrix dimension (paper: 512)
    int blockSize = 16; ///< paper: 16
    /** Instructions per multiply-add in the block update kernels. */
    std::uint64_t instrsPerFlop = 4;

    static LuParams
    paper()
    {
        LuParams p;
        p.n = 512;
        return p;
    }
};

class Lu : public Workload
{
  public:
    explicit Lu(LuParams params = {}) : p_(params) {}

    std::string name() const override { return "lu"; }
    void setup(machine::Machine &m) override;
    tango::Task run(tango::Env &env) override;

  private:
    int owner(int bi, int bj) const;
    Addr blockBase(int bi, int bj) const;
    /** Read every line of a block (consumer side). */
    tango::Task touchBlock(tango::Env &env, int bi, int bj);
    /** Read-modify-write every element of a block with compute. */
    tango::Task updateBlock(tango::Env &env, int bi, int bj,
                            std::uint64_t instrs_per_elem);

    LuParams p_;
    int nblocks_ = 0;
    int procSide_ = 0; ///< processor grid side
    int nprocs_ = 0;
    std::vector<Addr> blockAddr_; ///< base address per block
    tango::BarrierVar bar_;
};

} // namespace flashsim::apps

#endif // FLASHSIM_APPS_LU_HH_
