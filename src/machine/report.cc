#include "machine/report.hh"

#include <algorithm>
#include <cstdio>

#include "sim/stats.hh"

namespace flashsim::machine
{

double
MissLatencies::crmt(const ReadMissDistribution &d) const
{
    return d.localClean * localClean +
           d.localDirtyRemote * localDirtyRemote +
           d.remoteClean * remoteClean +
           d.remoteDirtyHome * remoteDirtyHome +
           d.remoteDirtyRemote * remoteDirtyRemote;
}

Summary
summarize(const Machine &m)
{
    Summary s;
    s.execTime = m.executionTime();

    double busy = 0, cont = 0, read = 0, write = 0, sync = 0;
    std::uint64_t mdc_reads = 0, mdc_read_misses = 0;
    std::uint64_t mdc_accesses = 0, mdc_misses = 0;
    magic::Magic::MissClasses classes;

    for (int i = 0; i < m.numProcs(); ++i) {
        const Node &n = m.node(i);
        const cpu::Processor::Breakdown &bd = n.proc().breakdown();
        busy += static_cast<double>(bd.busy);
        cont += static_cast<double>(bd.cont);
        read += static_cast<double>(bd.read);
        write += static_cast<double>(bd.write);
        sync += static_cast<double>(bd.sync);

        const cpu::Cache &c = n.cache();
        s.cacheReads += c.reads;
        s.cacheWrites += c.writes;
        s.backgroundRefs += c.backgroundHits;
        s.readMisses += c.readMisses;
        s.writeMisses += c.writeMisses;

        s.timeoutRetries += c.timeoutRetries;
        s.lateFills += c.lateFills;
        s.degradedTxns += c.degradedTxns;
        for (const cpu::Cache::DegradedTxn &d : c.degradedLog)
            s.degraded.push_back(
                {static_cast<NodeId>(i), d.line, d.retries});
        s.degradedResumes += n.proc().degradedResumes;

        const magic::Magic &mg = n.magic();
        s.handlerInvocations += mg.invocations;
        s.specIssued += mg.specIssued;
        s.specUselessFrac += static_cast<double>(mg.specUseless);
        s.nacksSent += mg.nacksSent;
        s.mdcProtocolMemOps += mg.memory().protocolAccesses;

        classes.localClean += mg.readClasses.localClean;
        classes.localDirtyRemote += mg.readClasses.localDirtyRemote;
        classes.remoteClean += mg.readClasses.remoteClean;
        classes.remoteDirtyHome += mg.readClasses.remoteDirtyHome;
        classes.remoteDirtyRemote += mg.readClasses.remoteDirtyRemote;

        double mem_occ = mg.memory().occ.fraction(s.execTime);
        double pp_occ = mg.ppOcc.fraction(s.execTime);
        s.avgMemOcc += mem_occ;
        s.avgPpOcc += pp_occ;
        s.maxMemOcc = std::max(s.maxMemOcc, mem_occ);
        s.maxPpOcc = std::max(s.maxPpOcc, pp_occ);

        if (const magic::PpTimingModel *pm = mg.ppModel()) {
            mdc_reads += pm->mdc().reads;
            mdc_read_misses += pm->mdc().readMisses;
            mdc_accesses += pm->mdc().reads + pm->mdc().writes;
            mdc_misses += pm->mdc().readMisses + pm->mdc().writeMisses;
        }
    }

    double total = busy + cont + read + write + sync;
    if (total > 0) {
        s.busy = busy / total;
        s.cont = cont / total;
        s.read = read / total;
        s.write = write / total;
        s.sync = sync / total;
    }

    s.missRate =
        ratio(static_cast<double>(s.readMisses + s.writeMisses),
              static_cast<double>(s.cacheReads + s.cacheWrites +
                                  s.backgroundRefs));

    double nmiss = static_cast<double>(classes.total());
    if (nmiss > 0) {
        s.dist.localClean = classes.localClean / nmiss;
        s.dist.localDirtyRemote = classes.localDirtyRemote / nmiss;
        s.dist.remoteClean = classes.remoteClean / nmiss;
        s.dist.remoteDirtyHome = classes.remoteDirtyHome / nmiss;
        s.dist.remoteDirtyRemote = classes.remoteDirtyRemote / nmiss;
    }

    s.avgMemOcc /= m.numProcs();
    s.avgPpOcc /= m.numProcs();
    s.handlersPerMiss =
        ratio(static_cast<double>(s.handlerInvocations),
              static_cast<double>(s.readMisses + s.writeMisses));
    s.specUselessFrac =
        ratio(s.specUselessFrac, static_cast<double>(s.specIssued));
    s.mdcMissRate = ratio(static_cast<double>(mdc_misses),
                          static_cast<double>(mdc_accesses));
    s.mdcReadMissRate = ratio(static_cast<double>(mdc_read_misses),
                              static_cast<double>(mdc_reads));

    if (m.network().transportEnabled()) {
        network::MeshNetwork::TransportStats ts =
            m.network().transportStats();
        s.wireCopies = ts.copies;
        s.wireRetransmits = ts.retransmits;
        s.wireAssured = ts.assuredRetransmits;
        s.wireAcks = ts.acksSent;
        s.wireDupsFiltered = ts.dupsFiltered;
        s.wireReordersAccepted = ts.reordersAccepted;
    }
    if (const verify::Sentinel *sent = m.sentinel()) {
        const verify::FaultInjector &inj = sent->injectorStats();
        s.wireDrops = inj.wireDropsInjected();
        s.wireDups = inj.wireDupsInjected();
        s.wireReorders = inj.wireReordersInjected();
        s.reqDropsInjected = inj.reqDropsInjected();
    }
    return s;
}

void
exportTransportStats(const Summary &s, StatSet &stats)
{
    // Handles resolve once per name; repeated exports reuse them.
    stats.set(stats.handle("transport.wire.drops"),
              static_cast<double>(s.wireDrops));
    stats.set(stats.handle("transport.wire.dups"),
              static_cast<double>(s.wireDups));
    stats.set(stats.handle("transport.wire.reorders"),
              static_cast<double>(s.wireReorders));
    stats.set(stats.handle("transport.wire.copies"),
              static_cast<double>(s.wireCopies));
    stats.set(stats.handle("transport.wire.retransmits"),
              static_cast<double>(s.wireRetransmits));
    stats.set(stats.handle("transport.wire.assured"),
              static_cast<double>(s.wireAssured));
    stats.set(stats.handle("transport.wire.acks"),
              static_cast<double>(s.wireAcks));
    stats.set(stats.handle("transport.wire.dupsFiltered"),
              static_cast<double>(s.wireDupsFiltered));
    stats.set(stats.handle("transport.wire.reordersAccepted"),
              static_cast<double>(s.wireReordersAccepted));
    stats.set(stats.handle("transport.txn.reqDrops"),
              static_cast<double>(s.reqDropsInjected));
    stats.set(stats.handle("transport.txn.timeoutRetries"),
              static_cast<double>(s.timeoutRetries));
    stats.set(stats.handle("transport.txn.lateFills"),
              static_cast<double>(s.lateFills));
    stats.set(stats.handle("transport.txn.degraded"),
              static_cast<double>(s.degradedTxns));
    stats.set(stats.handle("transport.txn.degradedResumes"),
              static_cast<double>(s.degradedResumes));
}

void
exportShardStats(const Machine &m, StatSet &stats)
{
    const Machine::ShardRunStats &st = m.shardStats();
    stats.set(stats.handle("shard.windows.run"),
              static_cast<double>(st.windowsRun));
    stats.set(stats.handle("shard.windows.skipped"),
              static_cast<double>(st.windowsSkipped));
    stats.set(stats.handle("shard.windows.widened"),
              static_cast<double>(st.windowsWidened));
    stats.set(stats.handle("shard.ticks.skipped"),
              static_cast<double>(st.ticksSkipped));
    stats.set(stats.handle("shard.width.mean"), st.meanWidth());
    stats.set(stats.handle("shard.width.max"),
              static_cast<double>(st.maxWidth));
    stats.set(stats.handle("shard.barrier.parks"),
              static_cast<double>(st.barrierParks));
    stats.set(stats.handle("shard.barrier.waitNs"),
              static_cast<double>(st.barrierWaitNs));
    stats.set(stats.handle("shard.sync.phases"),
              static_cast<double>(st.syncPhases));
}

std::string
breakdownHeader()
{
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-24s %8s %7s %6s %6s %6s %6s %6s",
                  "run", "cycles", "norm", "busy", "cont", "read", "write",
                  "sync");
    return buf;
}

std::string
breakdownRow(const std::string &label, const Summary &s,
             double norm_exec_time)
{
    double norm = norm_exec_time > 0
                      ? 100.0 * static_cast<double>(s.execTime) /
                            norm_exec_time
                      : 0.0;
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "%-24s %8llu %7.1f %6.1f %6.1f %6.1f %6.1f %6.1f",
                  label.c_str(),
                  static_cast<unsigned long long>(s.execTime), norm,
                  100.0 * s.busy * norm / 100.0,
                  100.0 * s.cont * norm / 100.0,
                  100.0 * s.read * norm / 100.0,
                  100.0 * s.write * norm / 100.0,
                  100.0 * s.sync * norm / 100.0);
    return buf;
}

} // namespace flashsim::machine
