#include "ppc/profile.hh"

#include <algorithm>
#include <sstream>

namespace flashsim::ppc
{

using ppisa::Op;
using ppisa::kNumOps;

void
MicroOpProfile::addProgram(const ppisa::Program &prog)
{
    for (const ppisa::InstrPair &pair : prog.pairs()) {
        ++pairs_[static_cast<int>(pair.a.op)]
               [static_cast<int>(pair.b.op)];
        ++totalPairs_;
    }
}

std::uint64_t
MicroOpProfile::opCount(Op op) const
{
    const int i = static_cast<int>(op);
    std::uint64_t n = 0;
    for (int j = 0; j < kNumOps; ++j)
        n += pairs_[i][j] + pairs_[j][i];
    // Both slots the same opcode: counted once per slot, so (i,i) pairs
    // contribute two occurrences — which the sum above already does.
    return n;
}

std::uint64_t
MicroOpProfile::pairCount(Op a, Op b) const
{
    return pairs_[static_cast<int>(a)][static_cast<int>(b)];
}

std::vector<PairFreq>
MicroOpProfile::hottest(std::size_t n) const
{
    std::vector<PairFreq> all;
    for (int a = 0; a < kNumOps; ++a) {
        for (int b = 0; b < kNumOps; ++b) {
            if (pairs_[a][b] == 0)
                continue;
            if (a == static_cast<int>(Op::Nop) &&
                b == static_cast<int>(Op::Nop))
                continue; // padding: nothing to fuse
            all.push_back(PairFreq{static_cast<Op>(a),
                                   static_cast<Op>(b), pairs_[a][b]});
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const PairFreq &x, const PairFreq &y) {
                         return x.count > y.count;
                     });
    if (all.size() > n)
        all.resize(n);
    return all;
}

std::vector<PairFreq>
MicroOpProfile::hottestDual(std::size_t n) const
{
    std::vector<PairFreq> dual;
    for (const PairFreq &p : hottest(static_cast<std::size_t>(-1)))
        if (p.a != Op::Nop && p.b != Op::Nop)
            dual.push_back(p);
    if (dual.size() > n)
        dual.resize(n);
    return dual;
}

std::string
MicroOpProfile::report() const
{
    std::ostringstream os;
    os << "static micro-op profile: " << totalPairs_ << " pairs\n";
    os << "  opcode occurrences:\n";
    for (int i = 0; i < kNumOps; ++i) {
        const std::uint64_t n = opCount(static_cast<Op>(i));
        if (n != 0)
            os << "    " << ppisa::opName(static_cast<Op>(i)) << ": "
               << n << "\n";
    }
    os << "  hottest pairs:\n";
    for (const PairFreq &p : hottest(24))
        os << "    [" << ppisa::opName(p.a) << " | " << ppisa::opName(p.b)
           << "]: " << p.count << "\n";
    return os.str();
}

MicroOpProfile
profilePrograms(const std::vector<const ppisa::Program *> &progs)
{
    MicroOpProfile prof;
    for (const ppisa::Program *p : progs)
        prof.addProgram(*p);
    return prof;
}

} // namespace flashsim::ppc
