/**
 * @file
 * Fundamental scalar types shared by every FlashSim module.
 *
 * All latencies in the simulator are expressed in 10 ns system clock
 * cycles (MAGIC runs at 100 MHz), matching the unit used throughout the
 * ASPLOS'94 FLASH flexibility paper.
 */

#ifndef FLASHSIM_SIM_TYPES_HH_
#define FLASHSIM_SIM_TYPES_HH_

#include <cstdint>

namespace flashsim
{

/** Simulation time in 10 ns system clock cycles. */
using Tick = std::uint64_t;

/** A duration in system clock cycles. */
using Cycles = std::uint64_t;

/** Physical address within the machine's shared address space. */
using Addr = std::uint64_t;

/** Node (processor/MAGIC/memory tuple) identifier. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/** Cache line size used by both the processor caches and MAGIC (bytes). */
inline constexpr Addr kLineSize = 128;

/** log2(kLineSize). */
inline constexpr int kLineShift = 7;

/** Align an address down to its cache-line base. */
constexpr Addr
lineBase(Addr a)
{
    return a & ~(kLineSize - 1);
}

/** Cache-line index of an address. */
constexpr Addr
lineNumber(Addr a)
{
    return a >> kLineShift;
}

} // namespace flashsim

#endif // FLASHSIM_SIM_TYPES_HH_
