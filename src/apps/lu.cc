#include "apps/lu.hh"

#include "sim/logging.hh"

namespace flashsim::apps
{

namespace
{
constexpr Addr kElemBytes = 8;
} // namespace

void
Lu::setup(machine::Machine &m)
{
    nprocs_ = m.numProcs();
    procSide_ = 1;
    while (procSide_ * procSide_ < nprocs_)
        ++procSide_;
    if (procSide_ * procSide_ != nprocs_)
        fatal("Lu: processor count must be a perfect square");
    if (p_.n % p_.blockSize != 0)
        fatal("Lu: n must be a multiple of the block size");
    nblocks_ = p_.n / p_.blockSize;

    const Addr block_bytes = static_cast<Addr>(p_.blockSize) *
                             p_.blockSize * kElemBytes;
    blockAddr_.resize(static_cast<std::size_t>(nblocks_) * nblocks_);
    for (int bi = 0; bi < nblocks_; ++bi) {
        for (int bj = 0; bj < nblocks_; ++bj) {
            NodeId node = static_cast<NodeId>(owner(bi, bj));
            blockAddr_[static_cast<std::size_t>(bi) * nblocks_ + bj] =
                m.alloc(block_bytes, node);
        }
    }
    bar_ = m.makeBarrier();
}

int
Lu::owner(int bi, int bj) const
{
    return (bi % procSide_) * procSide_ + (bj % procSide_);
}

Addr
Lu::blockBase(int bi, int bj) const
{
    return blockAddr_[static_cast<std::size_t>(bi) * nblocks_ + bj];
}

tango::Task
Lu::touchBlock(tango::Env &env, int bi, int bj)
{
    const Addr base = blockBase(bi, bj);
    const Addr bytes =
        static_cast<Addr>(p_.blockSize) * p_.blockSize * kElemBytes;
    for (Addr off = 0; off < bytes; off += kLineSize) {
        co_await env.read(base + off);
        co_await env.busy(8);
    }
}

tango::Task
Lu::updateBlock(tango::Env &env, int bi, int bj,
                std::uint64_t instrs_per_elem)
{
    const Addr base = blockBase(bi, bj);
    const int elems = p_.blockSize * p_.blockSize;
    for (int e = 0; e < elems; ++e) {
        Addr a = base + static_cast<Addr>(e) * kElemBytes;
        co_await env.read(a);
        co_await env.busy(instrs_per_elem);
        co_await env.write(a);
    }
}

tango::Task
Lu::run(tango::Env &env)
{
    co_await env.busy(0);
    const int me = env.id();
    const std::uint64_t bs = static_cast<std::uint64_t>(p_.blockSize);
    // Flops per element: factor ~ b/3 madds, perimeter ~ b/2, interior
    // ~ 2b (one madd is ~2 flops).
    const std::uint64_t factor_instrs = p_.instrsPerFlop * bs * 2 / 3;
    const std::uint64_t perim_instrs = p_.instrsPerFlop * bs;
    const std::uint64_t inner_instrs = p_.instrsPerFlop * bs * 2;

    for (int k = 0; k < nblocks_; ++k) {
        if (owner(k, k) == me)
            co_await updateBlock(env, k, k, factor_instrs);
        co_await env.barrier(bar_);

        // Perimeter: blocks (k, j) and (i, k) I own, using the diagonal.
        bool touched_diag = false;
        for (int j = k + 1; j < nblocks_; ++j) {
            if (owner(k, j) == me) {
                if (!touched_diag) {
                    co_await touchBlock(env, k, k);
                    touched_diag = true;
                }
                co_await updateBlock(env, k, j, perim_instrs);
            }
            if (owner(j, k) == me) {
                if (!touched_diag) {
                    co_await touchBlock(env, k, k);
                    touched_diag = true;
                }
                co_await updateBlock(env, j, k, perim_instrs);
            }
        }
        co_await env.barrier(bar_);

        // Interior: A(i,j) -= A(i,k) * A(k,j). The pivot row/column
        // blocks are read from their remote owners (remote clean /
        // remote dirty at home) and reused across the j loop.
        for (int i = k + 1; i < nblocks_; ++i) {
            bool read_ik = false;
            for (int j = k + 1; j < nblocks_; ++j) {
                if (owner(i, j) != me)
                    continue;
                if (!read_ik) {
                    co_await touchBlock(env, i, k);
                    read_ik = true;
                }
                co_await touchBlock(env, k, j);
                co_await updateBlock(env, i, j, inner_instrs);
            }
        }
        co_await env.barrier(bar_);
    }
}

} // namespace flashsim::apps
