#include "ppisa/decode.hh"

#include "ppisa/ppsim.hh"
#include "ppisa/threaded.hh"

namespace flashsim::ppisa
{

namespace
{

/** Lower one issue slot, precomputing everything execSlot re-derived. */
MicroOp
lowerSlot(const Instr &in)
{
    MicroOp m;
    m.op = in.op;
    m.rd = in.rd;
    m.rs = in.rs;
    m.rt = in.rt;
    m.lo = in.lo;
    m.imm = in.imm;
    if (in.isBranch())
        m.target = static_cast<std::uint32_t>(in.imm);
    switch (in.op) {
      case Op::Ext:
        m.mask = fieldMask(0, in.width);
        break;
      case Op::Ins:
      case Op::Orfi:
      case Op::Andfi:
        m.mask = fieldMask(in.lo, in.width);
        break;
      default:
        break;
    }
    const std::vector<int> srcs = in.srcRegs();
    m.nsrcs = static_cast<std::uint8_t>(srcs.size());
    for (std::size_t i = 0; i < srcs.size(); ++i)
        m.srcs[i] = static_cast<std::uint8_t>(srcs[i]);
    return m;
}

std::uint32_t
srcMaskOf(const Instr &in)
{
    std::uint32_t mask = 0;
    for (int src : in.srcRegs())
        if (src != 0)
            mask |= std::uint32_t{1} << src;
    return mask;
}

} // namespace

DecodedProgram::DecodedProgram(const Program &prog)
    : name_(prog.name), src_(prog.pairs().data()),
      srcCount_(prog.pairs().size()), srcVersion_(prog.decodeVersion())
{
    const std::vector<InstrPair> &pairs = prog.pairs();
    pairs_.reserve(pairs.size());
    for (const InstrPair &pair : pairs) {
        DecodedPair d;
        d.a = lowerSlot(pair.a);
        d.b = lowerSlot(pair.b);
        d.srcMask = srcMaskOf(pair.a) | srcMaskOf(pair.b);
        for (const Instr *in : {&pair.a, &pair.b}) {
            const int dest = in->isLoad() ? in->destReg() : -1;
            if (dest > 0)
                d.loadMask |= std::uint32_t{1} << dest;
            if (!in->isNop()) {
                ++d.instrsInc;
                if (in->isSpecial())
                    ++d.specialsInc;
                if (in->isAluOrBranch())
                    ++d.aluBranchInc;
            }
        }
        d.halts = pair.a.op == Op::Halt || pair.b.op == Op::Halt;

        // Resolve the static-scheduling contract, in the interpreter's
        // check order so a multiply-broken pair reports the same
        // violation first.
        const int dest_a = pair.a.destReg();
        if (dest_a > 0) {
            for (int src : pair.b.srcRegs()) {
                if (src == dest_a &&
                    d.violation == DecodedPair::Violation::None) {
                    d.violation = DecodedPair::Violation::IntraRaw;
                    d.violationReg = static_cast<std::uint8_t>(dest_a);
                }
            }
            if (pair.b.destReg() == dest_a &&
                d.violation == DecodedPair::Violation::None) {
                d.violation = DecodedPair::Violation::IntraWaw;
                d.violationReg = static_cast<std::uint8_t>(dest_a);
            }
        }
        if (pair.a.isBranch() && pair.b.isBranch() &&
            d.violation == DecodedPair::Violation::None)
            d.violation = DecodedPair::Violation::TwoBranch;

        pairs_.push_back(d);
    }

    // Build the threaded-code image here rather than lazily at first
    // threaded run: pre-decoded program sets (protocol/pp_programs.cc)
    // are published across sweep worker threads, so everything hanging
    // off a DecodedProgram must be complete before publication.
    threaded_ = std::make_unique<const ThreadedProgram>(name_, pairs_);
}

DecodedProgram::~DecodedProgram() = default;

const DecodedProgram &
Program::decoded() const
{
    if (!decoded_ || !decoded_->matches(*this))
        decoded_ = std::make_shared<const DecodedProgram>(*this);
    return *decoded_;
}

void
Program::invalidateDecodeCache() const
{
    decoded_.reset();
}

} // namespace flashsim::ppisa
