/**
 * @file
 * Deterministic fault injector.
 *
 * One xorshift64* stream, drawn in event order, decides every
 * perturbation, so a (seed, config) pair replays bit-identically. The
 * injector itself is pure policy — it only answers "what should happen
 * to this message"; the mechanism (delaying delivery, synthesizing a
 * NACK, swallowing a hint) lives at the call sites in the mesh and in
 * MAGIC, which are also responsible for preserving the point-to-point
 * FIFO ordering the NACK/retry protocol depends on (delivery times are
 * clamped monotonically per (src, dest) pair and per inbound queue).
 */

#ifndef FLASHSIM_VERIFY_FAULT_HH_
#define FLASHSIM_VERIFY_FAULT_HH_

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "verify/params.hh"

namespace flashsim::verify
{

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultParams &params)
        : p_(params), rng_(params.seed)
    {}

    bool enabled() const { return p_.enabled; }
    const FaultParams &params() const { return p_; }

    /** Extra mesh transit cycles for one message. */
    Cycles
    meshJitter()
    {
        if (p_.meshJitter == 0)
            return 0;
        Cycles j = rng_.below(p_.meshJitter + 1);
        jitterCycles += j;
        return j;
    }

    /** Extra cycles a message waits to enter a MAGIC inbound queue
     *  (models queue-full backpressure at the interfaces). */
    Cycles
    inboundStall()
    {
        if (p_.inboundStall == 0)
            return 0;
        Cycles s = rng_.below(p_.inboundStall + 1);
        stallCycles += s;
        return s;
    }

    /** Should this home-node GET/GETX be NACKed outright? */
    bool
    rollNack()
    {
        if (p_.extraNackProb <= 0.0)
            return false;
        if (rng_.uniform() >= p_.extraNackProb)
            return false;
        ++nacksInjected;
        return true;
    }

    enum class HintFate
    {
        Deliver,
        Drop,
        Duplicate,
    };

    /** Fate of a replacement hint arriving at the home node. */
    HintFate
    hintFate()
    {
        if (p_.dropHintProb <= 0.0 && p_.dupHintProb <= 0.0)
            return HintFate::Deliver;
        double u = rng_.uniform();
        if (u < p_.dropHintProb) {
            ++hintsDropped;
            return HintFate::Drop;
        }
        if (u < p_.dropHintProb + p_.dupHintProb) {
            ++hintsDuped;
            return HintFate::Duplicate;
        }
        return HintFate::Deliver;
    }

    /** True when hint perturbation can leave duplicate or stale sharer
     *  pointers in the directory (the oracle relaxes its checks). */
    bool
    perturbsHints() const
    {
        return p_.enabled && (p_.dropHintProb > 0.0 || p_.dupHintProb > 0.0);
    }

    // -- Statistics ---------------------------------------------------------
    Counter nacksInjected = 0;
    Counter hintsDropped = 0;
    Counter hintsDuped = 0;
    Counter jitterCycles = 0;
    Counter stallCycles = 0;

  private:
    FaultParams p_;
    Rng rng_;
};

} // namespace flashsim::verify

#endif // FLASHSIM_VERIFY_FAULT_HH_
