/**
 * @file
 * Lightweight statistics primitives.
 *
 * Hardware units own their statistics as plain members built from these
 * primitives; machine::Report walks them to produce the paper's tables.
 */

#ifndef FLASHSIM_SIM_STATS_HH_
#define FLASHSIM_SIM_STATS_HH_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace flashsim
{

/** Simple monotonically increasing event counter. */
using Counter = std::uint64_t;

/**
 * Running mean/min/max/sum of a sampled quantity.
 */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double last() const { return last_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double last_ = 0.0;
};

/**
 * Tracks what fraction of simulated time a resource is busy.
 *
 * The paper reports "occupancy" for the protocol processor and the memory
 * system: busy cycles divided by total elapsed cycles.
 */
class Occupancy
{
  public:
    /** Record @p cycles of busy time. */
    void addBusy(Cycles cycles) { busy_ += cycles; }

    Cycles busyCycles() const { return busy_; }

    /** Occupancy over an interval of @p total cycles (0..1). */
    double
    fraction(Tick total) const
    {
        return total ? static_cast<double>(busy_) / total : 0.0;
    }

    void reset() { busy_ = 0; }

  private:
    Cycles busy_ = 0;
};

/**
 * A named bag of scalar statistics, used by reports and tests to
 * introspect a unit's counters without hard-coded accessors.
 *
 * Values live in a contiguous array indexed by a dense Handle. A hot
 * call site resolves its name to a Handle once (at construction) and
 * then updates through the handle — a bounds-free array store, no
 * string hashing. The string-keyed ordered map the report/JSON
 * consumers read through all() is rebuilt lazily from the dense array
 * only when it is actually requested.
 */
class StatSet
{
  public:
    /** Dense index of one named stat in this set. */
    using Handle = std::uint32_t;

    /**
     * Resolve @p name to its handle, registering it (initial value 0)
     * on first use. Call once per site, at construction time.
     */
    Handle handle(const std::string &name);

    // -- Handle-addressed hot path ----------------------------------------
    void
    set(Handle h, double value)
    {
        values_[h] = value;
        viewStale_ = true;
    }
    void
    add(Handle h, double delta)
    {
        values_[h] += delta;
        viewStale_ = true;
    }
    double get(Handle h) const { return values_[h]; }

    // -- String-keyed view (reports, tests, JSON) --------------------------
    void
    set(const std::string &name, double value)
    {
        set(handle(name), value);
    }
    double get(const std::string &name) const;
    bool has(const std::string &name) const;
    /** Name-ordered map of every stat, rebuilt lazily when stale. */
    const std::map<std::string, double> &all() const;

  private:
    std::vector<double> values_;            ///< dense, handle-indexed
    std::vector<std::string> names_;        ///< handle -> name
    std::unordered_map<std::string, Handle> index_; ///< name -> handle
    mutable std::map<std::string, double> view_; ///< lazy string view
    mutable bool viewStale_ = false;
};

/** Percentage helper: 100 * num / denom, 0 when denom == 0. */
double pct(double num, double denom);

/** Ratio helper: num / denom, 0 when denom == 0. */
double ratio(double num, double denom);

} // namespace flashsim

#endif // FLASHSIM_SIM_STATS_HH_
