# Empty dependencies file for bench_sec_4_3.
# This may be replaced when dependencies are built.
