/**
 * @file
 * The interconnection network model.
 *
 * The paper charges every message a fixed transit latency derived from
 * the average path on a 2-D mesh with a 40 ns per-hop fall-through time
 * (Section 3.2): one hop to enter, the average internal hop count, one
 * hop to exit, plus 3 cycles of header. For 16 processors this comes to
 * 22 cycles; the same geometry formula scales the latency for the
 * 64-processor runs of Section 4.5.
 *
 * Optionally the model charges actual per-pair Manhattan distances
 * instead of the average (distanceBased), which the paper's simulator
 * did not do; the default matches the paper.
 */

#ifndef FLASHSIM_NETWORK_MESH_HH_
#define FLASHSIM_NETWORK_MESH_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "protocol/message.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flashsim::network
{

struct MeshParams
{
    Cycles perHop = 4;    ///< 40 ns fall-through
    Cycles header = 3;    ///< header cycles
    bool distanceBased = false; ///< per-pair distance instead of average
};

class MeshNetwork
{
  public:
    using Deliver = std::function<void(const protocol::Message &)>;

    MeshNetwork(EventQueue &eq, int num_nodes, MeshParams params = {});

    /** Register node @p n's delivery callback (its NI inbound). */
    void connect(NodeId n, Deliver deliver);

    /** Inject a message; it is delivered after its transit latency. */
    void send(const protocol::Message &msg);

    /**
     * Inject a message that leaves its source NI at @p departure
     * (>= now): delivered at departure + transit. Equivalent to
     * scheduling an event at @p departure that calls send(), minus
     * that intermediate event — the sender's outbox hands the future
     * departure time straight to the network. Under an active
     * perturbation this falls back to the two-stage path, because the
     * anti-reordering clamp must observe sends in departure order.
     */
    void sendAt(const protocol::Message &msg, Tick departure);

    /** Average transit latency in cycles (22 for 16 nodes). */
    Cycles avgTransit() const { return avgTransit_; }

    /** Transit latency charged for a specific pair. Self-sends never
     *  enter the mesh and pay only entry/exit + header, in both
     *  modes. */
    Cycles transit(NodeId src, NodeId dest) const;

    /** Mesh side length (smallest square covering num_nodes). */
    int side() const { return side_; }

    /**
     * Install a per-message transit perturbation (fault injection:
     * contention jitter). Extra cycles returned by @p perturb are added
     * to the transit, with delivery clamped so no message overtakes an
     * earlier one on the same (src, dest) pair — the protocol's
     * NACK/retry convergence depends on point-to-point FIFO order.
     * Pass an empty function to remove.
     */
    void setPerturb(std::function<Cycles(const protocol::Message &)> p);

    Counter messages = 0;
    Counter dataMessages = 0;

    /** In-flight slab slots currently occupied (tests/diagnostics). */
    std::uint32_t inFlight() const { return inFlight_; }
    /** Total slab capacity allocated so far (tests/diagnostics). */
    std::uint32_t slabCapacity() const
    {
        return static_cast<std::uint32_t>(slab_.size()) * kSlabChunk;
    }

  private:
    /** Messages per slab chunk; chunk storage never moves, so a
     *  delivery may hold a reference across nested sends. */
    static constexpr std::uint32_t kSlabChunk = 128;
    using SlabChunk = std::unique_ptr<protocol::Message[]>;

    std::uint32_t allocSlot();
    void deliverSlot(std::uint32_t slot);
    protocol::Message &
    slot(std::uint32_t s)
    {
        return slab_[s / kSlabChunk][s % kSlabChunk];
    }

    EventQueue &eq_;
    int numNodes_;
    int side_;
    MeshParams params_;
    Cycles avgTransit_;
    std::vector<Deliver> deliver_;
    std::function<Cycles(const protocol::Message &)> perturb_;
    /** Last scheduled delivery per (src, dest), perturbed mode only. */
    std::vector<Tick> lastDelivery_;

    /** Pooled in-flight message slab: sends park the message in a
     *  freelist-recycled slot and the delivery callback captures only
     *  the 4-byte slot index (no Message copy in the event core). */
    std::vector<SlabChunk> slab_;
    std::vector<std::uint32_t> freeSlots_;
    std::uint32_t inFlight_ = 0;
};

} // namespace flashsim::network

#endif // FLASHSIM_NETWORK_MESH_HH_
