/**
 * @file
 * Run summaries: the quantities the paper's tables and figures report,
 * extracted from a finished Machine.
 */

#ifndef FLASHSIM_MACHINE_REPORT_HH_
#define FLASHSIM_MACHINE_REPORT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "sim/stats.hh"

namespace flashsim::machine
{

/** Read-miss distribution as fractions summing to ~1 (Table 4.1). */
struct ReadMissDistribution
{
    double localClean = 0;
    double localDirtyRemote = 0;
    double remoteClean = 0;
    double remoteDirtyHome = 0;
    double remoteDirtyRemote = 0;
};

/** No-contention read-miss latencies per class (Table 3.3). */
struct MissLatencies
{
    double localClean = 0;
    double localDirtyRemote = 0;
    double remoteClean = 0;
    double remoteDirtyHome = 0;
    double remoteDirtyRemote = 0;

    /** Contentionless read miss time for a distribution (Section 4.1). */
    double crmt(const ReadMissDistribution &d) const;
};

/** Everything the paper reports about one run. */
struct Summary
{
    Tick execTime = 0;

    // Execution-time breakdown, as fractions of aggregate processor time
    // (Figure 4.1's Busy / Cont / Read / Write / Sync categories).
    double busy = 0;
    double cont = 0;
    double read = 0;
    double write = 0;
    double sync = 0;

    double missRate = 0; ///< processor cache misses / references
    ReadMissDistribution dist;

    double avgMemOcc = 0;
    double maxMemOcc = 0;
    double avgPpOcc = 0;
    double maxPpOcc = 0;

    std::uint64_t cacheReads = 0;
    std::uint64_t cacheWrites = 0;
    std::uint64_t backgroundRefs = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t handlerInvocations = 0;
    double handlersPerMiss = 0;

    std::uint64_t specIssued = 0;
    double specUselessFrac = 0;

    double mdcMissRate = 0;
    double mdcReadMissRate = 0;
    std::uint64_t mdcProtocolMemOps = 0; ///< MDC fills + writebacks

    std::uint64_t nacksSent = 0;

    // -- Recoverable-fault transport (lossy-mesh mode) ----------------------
    // Wire-plane injector actions and the ARQ machinery that absorbed
    // them; all zero when the transport is disabled.
    std::uint64_t wireDrops = 0;
    std::uint64_t wireDups = 0;
    std::uint64_t wireReorders = 0;
    std::uint64_t wireCopies = 0;
    std::uint64_t wireRetransmits = 0;
    std::uint64_t wireAssured = 0;
    std::uint64_t wireAcks = 0;
    std::uint64_t wireDupsFiltered = 0;
    std::uint64_t wireReordersAccepted = 0;

    // Transaction-level recovery (request drops at the home NI).
    std::uint64_t reqDropsInjected = 0;
    std::uint64_t timeoutRetries = 0;
    std::uint64_t lateFills = 0;
    std::uint64_t degradedTxns = 0;
    std::uint64_t degradedResumes = 0;

    /** One transaction that exhausted its retry budget. */
    struct DegradedTxn
    {
        NodeId node = 0;
        Addr line = 0;
        std::uint32_t retries = 0;
    };
    std::vector<DegradedTxn> degraded;

    /** Some transaction gave up inside its retry budget: results are
     *  complete but weaker than a clean run — report, don't trust. */
    bool runDegraded() const { return degradedTxns != 0; }
};

/** Collect a Summary from a machine that has finished run(). */
Summary summarize(const Machine &m);

/** Publish the transport/recovery counters of @p s into @p stats under
 *  dense "transport.*" handles (dashboards, bench fixtures). */
void exportTransportStats(const Summary &s, StatSet &stats);

/** Publish the sharded-run engine counters of @p m into @p stats under
 *  dense "shard.*" handles. These are PDES engine quantities (windows
 *  run/skipped, adaptive widths, barrier behaviour) — they vary with
 *  shard count by design and deliberately live outside Summary so they
 *  can never leak into bit-identity signatures. */
void exportShardStats(const Machine &m, StatSet &stats);

/** Figure 4.1-style row: normalized total plus category percentages. */
std::string breakdownRow(const std::string &label, const Summary &s,
                         double norm_exec_time);

/** Header matching breakdownRow. */
std::string breakdownHeader();

} // namespace flashsim::machine

#endif // FLASHSIM_MACHINE_REPORT_HH_
