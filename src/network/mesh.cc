#include "network/mesh.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"
#include "verify/fault.hh"

namespace flashsim::network
{

MeshNetwork::MeshNetwork(EventQueue &eq, int num_nodes, MeshParams params)
    : MeshNetwork(std::vector<EventQueue *>{&eq},
                  std::vector<int>(static_cast<std::size_t>(num_nodes), 0),
                  num_nodes, params)
{}

MeshNetwork::MeshNetwork(const std::vector<EventQueue *> &eqs,
                         std::vector<int> shard_of, int num_nodes,
                         MeshParams params)
    : numNodes_(num_nodes), params_(params),
      deliver_(static_cast<std::size_t>(num_nodes)),
      shardOf_(std::move(shard_of)),
      srcSeq_(static_cast<std::size_t>(num_nodes), 0)
{
    side_ = 1;
    while (side_ * side_ < num_nodes)
        ++side_;
    avgTransit_ = avgTransitFor(num_nodes, params_);

    eps_.resize(eqs.size());
    for (std::size_t s = 0; s < eqs.size(); ++s) {
        eps_[s].eq = eqs[s];
        eps_[s].outbox.resize(eqs.size());
    }

    // Per-shard outbound lookahead for the adaptive window widening:
    // minimum transit from each shard's nodes to any node outside the
    // shard. O(nodes^2) once at construction.
    if (eps_.size() > 1) {
        minOut_.assign(eps_.size(), ~Cycles{0});
        for (NodeId a = 0; a < static_cast<NodeId>(numNodes_); ++a) {
            const int sa = shardOf_[a];
            for (NodeId b = 0; b < static_cast<NodeId>(numNodes_); ++b) {
                if (shardOf_[b] == sa)
                    continue;
                minOut_[static_cast<std::size_t>(sa)] =
                    std::min(minOut_[static_cast<std::size_t>(sa)],
                             transit(a, b));
            }
        }
    }
}

Cycles
MeshNetwork::minOutboundTransit(int shard) const
{
    if (minOut_.empty())
        return minTransit();
    return minOut_[static_cast<std::size_t>(shard)];
}

void
MeshNetwork::connect(NodeId n, Deliver deliver)
{
    if (n >= deliver_.size())
        fatal("MeshNetwork: node %u out of range", n);
    deliver_[n] = std::move(deliver);
}

Cycles
MeshNetwork::transit(NodeId src, NodeId dest) const
{
    // A self-send never crosses the mesh: it pays only the entry and
    // exit hops plus the header, in both average and distance-based
    // modes. (The average-transit figure explicitly excludes the
    // self-pairs, so charging it here would overbill by the mean
    // internal hop count, ~22 cycles on 16 nodes.)
    if (src == dest)
        return params_.perHop * 2 + params_.header;
    if (!params_.distanceBased)
        return avgTransit_;
    int sx = static_cast<int>(src) % side_;
    int sy = static_cast<int>(src) / side_;
    int dx = static_cast<int>(dest) % side_;
    int dy = static_cast<int>(dest) / side_;
    int hops = std::abs(sx - dx) + std::abs(sy - dy) + 2;
    return params_.perHop * static_cast<Cycles>(hops) + params_.header;
}

Cycles
MeshNetwork::minTransit() const
{
    return minTransitFor(numNodes_, params_);
}

Cycles
MeshNetwork::avgTransitFor(int num_nodes, MeshParams params)
{
    int side = 1;
    while (side * side < num_nodes)
        ++side;

    // Average internal hop count for uniform traffic on a side x side
    // mesh: the mean |dx| on a line of n nodes is (n^2 - 1) / (3n), the
    // Manhattan distance doubles it, and excluding the self-pairs
    // scales by N/(N-1). That gives the paper's 2.6 average hops for 16
    // nodes; with one hop to enter and one to exit at 4 cycles each
    // plus 3 header cycles the average transit is 22 cycles.
    double n_nodes = static_cast<double>(side) * side;
    double mean_axis =
        (static_cast<double>(side) * side - 1.0) / (3.0 * side);
    double internal = 2.0 * mean_axis *
                      (n_nodes > 1 ? n_nodes / (n_nodes - 1.0) : 1.0);
    double hops = internal + 2.0;
    return static_cast<Cycles>(
        std::lround(params.perHop * hops + params.header));
}

Cycles
MeshNetwork::minTransitFor(int num_nodes, MeshParams params)
{
    // Minimum over *distinct* pairs: adjacent nodes pay 1 internal hop
    // plus entry and exit in the distance-based mode, the flat average
    // otherwise. Self-sends are excluded — a node shares a shard with
    // itself by construction, so they never cross a window boundary.
    if (!params.distanceBased)
        return avgTransitFor(num_nodes, params);
    return params.perHop * 3 + params.header;
}

void
MeshNetwork::setPerturb(std::function<Cycles(const protocol::Message &)> p)
{
    perturb_ = std::move(p);
    // (Re)size the clamp table on every install, not only when it is
    // currently empty: a second perturb installed after the first was
    // cleared must start from a fresh, correctly sized table instead of
    // inheriting stale per-pair delivery floors.
    if (perturb_)
        lastDelivery_.assign(static_cast<std::size_t>(numNodes_) *
                                 static_cast<std::size_t>(numNodes_),
                             0);
}

Counter
MeshNetwork::messages() const
{
    Counter n = 0;
    for (const Endpoint &ep : eps_)
        n += ep.messages;
    return n;
}

Counter
MeshNetwork::dataMessages() const
{
    Counter n = 0;
    for (const Endpoint &ep : eps_)
        n += ep.dataMessages;
    return n;
}

std::uint32_t
MeshNetwork::inFlight() const
{
    std::uint32_t n = 0;
    for (const Endpoint &ep : eps_)
        n += ep.inFlight;
    return n;
}

std::uint32_t
MeshNetwork::slabCapacity() const
{
    std::uint32_t n = 0;
    for (const Endpoint &ep : eps_)
        n += static_cast<std::uint32_t>(ep.slab.size()) * kSlabChunk;
    return n;
}

std::uint32_t
MeshNetwork::allocSlot(Endpoint &ep)
{
    if (!ep.freeSlots.empty()) {
        std::uint32_t s = ep.freeSlots.back();
        ep.freeSlots.pop_back();
        return s;
    }
    std::uint32_t s =
        static_cast<std::uint32_t>(ep.slab.size()) * kSlabChunk;
    ep.slab.push_back(std::make_unique<protocol::Message[]>(kSlabChunk));
    ep.freeSlots.reserve(ep.slab.size() * kSlabChunk);
    for (std::uint32_t i = kSlabChunk - 1; i > 0; --i)
        ep.freeSlots.push_back(s + i);
    return s;
}

void
MeshNetwork::deliverSlot(std::uint32_t epIdx, std::uint32_t s)
{
    // The slot is released only after the delivery callback returns:
    // chunk storage is stable, so the reference survives nested sends
    // that grow the slab, and the slot cannot be recycled underneath
    // the receiver.
    Endpoint &ep = eps_[epIdx];
    const protocol::Message &m = slot(ep, s);
    deliver_[m.dest](m);
    ep.freeSlots.push_back(s);
    --ep.inFlight;
}

void
MeshNetwork::inject(const protocol::Message &msg, Tick when)
{
    // Both the slot and the delivery event live on the destination
    // shard: the delivering thread frees the slot, so the slab must be
    // the one that thread owns. A local send's source and destination
    // shards coincide; a cross-shard message reaches the destination
    // only at a window edge, when every shard is quiescent.
    const std::uint32_t dst =
        static_cast<std::uint32_t>(shardOf_[msg.dest]);
    const std::uint32_t here =
        static_cast<std::uint32_t>(shardOf_[msg.src]);
    const std::uint64_t seq = srcSeq_[msg.src]++;
    if (dst == here) {
        Endpoint &ep = eps_[dst];
        std::uint32_t s = allocSlot(ep);
        slot(ep, s) = msg;
        ++ep.inFlight;
        ep.eq->scheduleNet(when, msg.src, seq,
                           [this, dst, s] { deliverSlot(dst, s); });
    } else {
        eps_[here].outbox[dst].push_back(Staged{when, msg.src, seq, msg});
    }
}

void
MeshNetwork::exchangeWindows()
{
    // Allocation-free in steady state: the per-(src,dst) outbox
    // vectors are pooled (clear() keeps capacity, so staged frames
    // reuse last window's storage), slab slots are recycled, and the
    // delivery closures fit the EventQueue's inline callback.
    for (Endpoint &src : eps_) {
        for (std::size_t dst = 0; dst < eps_.size(); ++dst) {
            std::vector<Staged> &box = src.outbox[dst];
            if (box.empty())
                continue;
            Endpoint &ep = eps_[dst];
            for (const Staged &st : box) {
                std::uint32_t s = allocSlot(ep);
                slot(ep, s) = st.msg;
                ++ep.inFlight;
                const std::uint32_t d = static_cast<std::uint32_t>(dst);
                ep.eq->scheduleNet(st.when, st.src, st.seq,
                                   [this, d, s] { deliverSlot(d, s); });
            }
            box.clear();
        }
    }
    if (!wire_)
        return;
    // Merge the staged wire frames the same way: the canonical
    // (src, srcSeq) key makes the delivery interleave identical to the
    // single-shard run's, frames and commit messages alike.
    for (std::size_t srcSh = 0; srcSh < eps_.size(); ++srcSh) {
        for (std::size_t dstSh = 0; dstSh < eps_.size(); ++dstSh) {
            std::vector<WireStaged> &box = wire_->outbox[srcSh][dstSh];
            for (const WireStaged &st : box) {
                const WireFrame f = st.frame;
                eps_[dstSh].eq->scheduleNet(st.when, st.src, st.seq,
                                            [this, f] { wireArrive(f); });
            }
            box.clear();
        }
    }
}

void
MeshNetwork::send(const protocol::Message &msg)
{
    if (msg.dest >= deliver_.size() || !deliver_[msg.dest])
        panic("MeshNetwork: no receiver for %s", msg.toString().c_str());
    Endpoint &src = eps_[static_cast<std::size_t>(shardOf_[msg.src])];
    ++src.messages;
    if (protocol::carriesData(msg.type))
        ++src.dataMessages;
    Cycles lat = transit(msg.src, msg.dest);
    Tick when = src.eq->now() + lat;
    if (perturb_) {
        when += perturb_(msg);
        // Clamp per (src, dest) pair: jitter must never reorder the
        // point-to-point FIFO the protocol's race resolution assumes.
        Tick &last = lastDelivery_[static_cast<std::size_t>(msg.src) *
                                       static_cast<std::size_t>(numNodes_) +
                                   msg.dest];
        when = std::max(when, last);
        last = when;
    }
    inject(msg, when);
    if (wire_ && msg.src != msg.dest)
        wireOnSend(msg.src, msg.dest);
}

void
MeshNetwork::sendAt(const protocol::Message &msg, Tick departure)
{
    Endpoint &src = eps_[static_cast<std::size_t>(shardOf_[msg.src])];
    if (perturb_) {
        // The jitter clamp requires sends to be observed in departure
        // order; re-create the intermediate event the fast path elides.
        src.eq->scheduleAt(departure, [this, msg] { send(msg); });
        return;
    }
    if (msg.dest >= deliver_.size() || !deliver_[msg.dest])
        panic("MeshNetwork: no receiver for %s", msg.toString().c_str());
    ++src.messages;
    if (protocol::carriesData(msg.type))
        ++src.dataMessages;
    inject(msg, departure + transit(msg.src, msg.dest));
    if (wire_ && msg.src != msg.dest)
        wireOnSend(msg.src, msg.dest);
}

// ---- Wire plane (lossy-mesh reliable transport) ---------------------------

void
MeshNetwork::enableTransport(verify::FaultInjector *inj)
{
    wire_ = std::make_unique<WirePlane>();
    wire_->inj = inj;
    const std::size_t n2 = static_cast<std::size_t>(numNodes_) *
                           static_cast<std::size_t>(numNodes_);
    wire_->send.resize(n2);
    wire_->recv.resize(n2);
    // Base retransmit timeout: a round trip on the average path plus
    // the receiver's ack batching delay and a little slack.
    wire_->rtoBase = 2 * avgTransit_ + kAckDelay + 8;
    wire_->outbox.resize(eps_.size());
    for (auto &row : wire_->outbox)
        row.resize(eps_.size());
}

Cycles
MeshNetwork::rtoDelay(const SendLane &sl) const
{
    return wire_->rtoBase << std::min(sl.rtoStreak, kMaxRtoShift);
}

void
MeshNetwork::wireOnSend(NodeId src, NodeId dst)
{
    SendLane &sl = sendLane(src, dst);
    WireFrame f;
    f.src = src;
    f.dst = dst;
    f.isAck = false;
    f.seq = sl.nextSeq++;
    f.ackCum = takeAck(src, dst);
    sl.unacked.push_back(WireCopy{f.seq, 0});
    ++sl.copies;
    if (sl.unacked.size() == 1) {
        // First outstanding copy on an idle lane: arm the RTO. (The
        // lane's timer is cancelled whenever unacked empties, so a
        // size of one here always means "no timer pending".)
        EventQueue &eq = *eps_[static_cast<std::size_t>(shardOf_[src])].eq;
        sl.rto = eq.armTimer(eq.now() + rtoDelay(sl),
                             [this, src, dst] { rtoFire(src, dst); });
    }
    wireTransmit(f, /*assured=*/false);
}

void
MeshNetwork::wireTransmit(const WireFrame &f, bool assured)
{
    Endpoint &src = eps_[static_cast<std::size_t>(shardOf_[f.src])];
    Tick when = src.eq->now() + transit(f.src, f.dst);
    if (!assured) {
        Cycles extra = 0;
        switch (wire_->inj->wireFate(f.src, f.dst, extra)) {
          case verify::FaultInjector::WireFate::Drop:
            return; // vanishes on the wire; the RTO recovers it
          case verify::FaultInjector::WireFate::Duplicate:
            scheduleWireFrame(f, when); // clone one cycle behind
            when += 1;
            break;
          case verify::FaultInjector::WireFate::Reorder:
            when += extra; // held back past later copies
            break;
          case verify::FaultInjector::WireFate::Deliver:
            break;
        }
    }
    scheduleWireFrame(f, when);
}

void
MeshNetwork::scheduleWireFrame(const WireFrame &f, Tick when)
{
    const std::uint32_t here =
        static_cast<std::uint32_t>(shardOf_[f.src]);
    const std::uint32_t dst = static_cast<std::uint32_t>(shardOf_[f.dst]);
    const std::uint64_t key = srcSeq_[f.src]++;
    if (dst == here) {
        const WireFrame copy = f;
        eps_[dst].eq->scheduleNet(when, f.src, key,
                                  [this, copy] { wireArrive(copy); });
    } else {
        wire_->outbox[here][dst].push_back(WireStaged{when, f.src, key, f});
    }
}

void
MeshNetwork::wireArrive(const WireFrame &f)
{
    // Every frame carries the sender's cumulative in-order point for
    // the reverse lane: apply it to this node's send state first.
    wireAckApply(f.dst, f.src, f.ackCum);
    if (f.isAck)
        return;
    RecvLane &rl = recvLane(f.src, f.dst);
    if (f.seq < rl.cumIn ||
        std::binary_search(rl.held.begin(), rl.held.end(), f.seq)) {
        // Retransmit of something already received, or an injected
        // duplicate: invisible above this layer.
        ++rl.dupsFiltered;
    } else if (f.seq == rl.cumIn) {
        ++rl.cumIn;
        std::size_t i = 0;
        while (i < rl.held.size() && rl.held[i] == rl.cumIn) {
            ++rl.cumIn;
            ++i;
        }
        rl.held.erase(rl.held.begin(),
                      rl.held.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
        auto pos = std::lower_bound(rl.held.begin(), rl.held.end(), f.seq);
        rl.held.insert(pos, f.seq);
        ++rl.reordersAccepted;
    }
    // Ack lazily: the short timer batches a burst into one standalone
    // ack, and any reverse data frame departing sooner carries the ack
    // for free (takeAck cancels the pending timer). Dup-filtered
    // arrivals re-ack too — a retransmit means the previous ack died.
    scheduleAck(f.src, f.dst);
}

void
MeshNetwork::wireAckApply(NodeId snd, NodeId rcv, std::uint64_t cum)
{
    SendLane &sl = sendLane(snd, rcv);
    if (cum <= sl.cumAcked)
        return; // stale: a reordered or duplicated ack
    sl.cumAcked = cum;
    bool progress = false;
    while (!sl.unacked.empty() && sl.unacked.front().seq < cum) {
        sl.unacked.pop_front();
        progress = true;
    }
    EventQueue &eq = *eps_[static_cast<std::size_t>(shardOf_[snd])].eq;
    if (sl.unacked.empty()) {
        if (sl.rto.valid()) {
            eq.cancelTimer(sl.rto);
            sl.rto = EventQueue::TimerId{};
        }
        sl.rtoStreak = 0;
    } else if (progress) {
        sl.rtoStreak = 0;
        eq.rearmTimer(sl.rto, eq.now() + rtoDelay(sl));
    }
}

void
MeshNetwork::rtoFire(NodeId snd, NodeId rcv)
{
    SendLane &sl = sendLane(snd, rcv);
    if (sl.unacked.empty()) {
        // Unreachable in principle (acks cancel the timer), kept as a
        // cheap guard against a same-tick race regression.
        sl.rto = EventQueue::TimerId{};
        return;
    }
    ++sl.rtoFires;
    WireCopy &head = sl.unacked.front();
    const bool assured = head.tries >= kMaxWireRetries;
    if (assured)
        ++sl.assured;
    ++head.tries;
    ++sl.retransmits;
    WireFrame f;
    f.src = snd;
    f.dst = rcv;
    f.isAck = false;
    f.seq = head.seq;
    f.ackCum = takeAck(snd, rcv);
    wireTransmit(f, assured);
    if (sl.rtoStreak < kMaxRtoShift)
        ++sl.rtoStreak;
    EventQueue &eq = *eps_[static_cast<std::size_t>(shardOf_[snd])].eq;
    eq.rearmTimer(sl.rto, eq.now() + rtoDelay(sl));
}

std::uint64_t
MeshNetwork::takeAck(NodeId frame_src, NodeId frame_dst)
{
    // A departing frame_src -> frame_dst frame carries the cumulative
    // in-order point of the *reverse* lane, whose receive state this
    // node owns; any pending standalone ack becomes redundant.
    RecvLane &rl = recvLane(frame_dst, frame_src);
    if (rl.ackPending) {
        rl.ackPending = false;
        eps_[static_cast<std::size_t>(shardOf_[frame_src])]
            .eq->cancelTimer(rl.ackTimer);
        rl.ackTimer = EventQueue::TimerId{};
    }
    return rl.cumIn;
}

void
MeshNetwork::scheduleAck(NodeId lane_src, NodeId lane_dst)
{
    RecvLane &rl = recvLane(lane_src, lane_dst);
    if (rl.ackPending)
        return;
    rl.ackPending = true;
    EventQueue &eq =
        *eps_[static_cast<std::size_t>(shardOf_[lane_dst])].eq;
    const Tick when = eq.now() + kAckDelay;
    if (rl.ackTimer.valid())
        eq.rearmTimer(rl.ackTimer, when);
    else
        rl.ackTimer = eq.armTimer(
            when, [this, lane_src, lane_dst] { ackFire(lane_src, lane_dst); });
}

void
MeshNetwork::ackFire(NodeId lane_src, NodeId lane_dst)
{
    RecvLane &rl = recvLane(lane_src, lane_dst);
    rl.ackPending = false;
    bool assured = false;
    if (rl.cumIn == rl.lastAckedCum) {
        // Re-acking the same point: previous acks (or the data they
        // answered) keep dying. Escalate like the data path so even a
        // total-loss configuration converges.
        assured = ++rl.ackRepeats > kMaxWireRetries;
    } else {
        rl.lastAckedCum = rl.cumIn;
        rl.ackRepeats = 0;
    }
    ++rl.acksSent;
    WireFrame f;
    f.src = lane_dst;
    f.dst = lane_src;
    f.isAck = true;
    f.seq = 0;
    f.ackCum = rl.cumIn;
    wireTransmit(f, assured);
}

MeshNetwork::TransportStats
MeshNetwork::transportStats() const
{
    TransportStats t;
    if (!wire_)
        return t;
    for (const SendLane &sl : wire_->send) {
        t.copies += sl.copies;
        t.retransmits += sl.retransmits;
        t.rtoFires += sl.rtoFires;
        t.assuredRetransmits += sl.assured;
    }
    for (const RecvLane &rl : wire_->recv) {
        t.acksSent += rl.acksSent;
        t.dupsFiltered += rl.dupsFiltered;
        t.reordersAccepted += rl.reordersAccepted;
    }
    return t;
}

bool
MeshNetwork::laneQuiesced(NodeId s, NodeId d) const
{
    const std::size_t l = static_cast<std::size_t>(s) *
                              static_cast<std::size_t>(numNodes_) +
                          d;
    const SendLane &sl = wire_->send[l];
    const RecvLane &rl = wire_->recv[l];
    return sl.unacked.empty() && sl.cumAcked == sl.nextSeq &&
           rl.cumIn == sl.nextSeq && rl.held.empty();
}

bool
MeshNetwork::transportQuiesced() const
{
    if (!wire_)
        return true;
    for (NodeId s = 0; s < static_cast<NodeId>(numNodes_); ++s) {
        for (NodeId d = 0; d < static_cast<NodeId>(numNodes_); ++d) {
            if (s != d && !laneQuiesced(s, d))
                return false;
        }
    }
    return true;
}

void
MeshNetwork::checkTransportQuiesced() const
{
    if (!wire_)
        return;
    for (NodeId s = 0; s < static_cast<NodeId>(numNodes_); ++s) {
        for (NodeId d = 0; d < static_cast<NodeId>(numNodes_); ++d) {
            if (s == d || laneQuiesced(s, d))
                continue;
            const std::size_t l = static_cast<std::size_t>(s) *
                                      static_cast<std::size_t>(numNodes_) +
                                  d;
            const SendLane &sl = wire_->send[l];
            const RecvLane &rl = wire_->recv[l];
            panic("wire lane %u->%u failed to quiesce: sent %llu, "
                      "receiver in-order %llu, acked %llu, %zu unacked, "
                      "%zu held",
                      s, d, static_cast<unsigned long long>(sl.nextSeq),
                      static_cast<unsigned long long>(rl.cumIn),
                      static_cast<unsigned long long>(sl.cumAcked),
                      sl.unacked.size(), rl.held.size());
        }
    }
}

} // namespace flashsim::network
