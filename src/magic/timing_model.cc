#include "magic/timing_model.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ppisa/decode.hh"

#include "sim/logging.hh"

namespace
{
/** Debug aid: set FS_TRACE_MDC=1 to log every MDC access on stderr. */
bool
traceMdc()
{
    static const bool on = std::getenv("FS_TRACE_MDC") != nullptr;
    return on;
}
} // namespace

namespace flashsim::magic
{

using protocol::HandlerId;

Cycles
TableTimingModel::cost(HandlerId id, int param)
{
    switch (id) {
      case HandlerId::ServeReadMemory: return 11;
      case HandlerId::ServeWriteMemory:
        return 14 + 13 * static_cast<Cycles>(param);
      case HandlerId::FwdToHome: return 3;
      case HandlerId::FwdHomeToDirty: return 18;
      case HandlerId::RetrieveFromCache: return 38;
      case HandlerId::ReplyToProc: return 2;
      case HandlerId::LocalWriteback: return 10;
      case HandlerId::LocalHint: return 7;
      case HandlerId::RemoteWriteback: return 8;
      case HandlerId::RemoteHintOnly: return 17;
      case HandlerId::RemoteHintNth:
        return 23 + 14 * static_cast<Cycles>(param);
      case HandlerId::InvalReceive: return 9;
      case HandlerId::InvalAck: return 4;
      case HandlerId::SwbReceive: return 10;
      case HandlerId::OwnXferReceive: return 5;
      case HandlerId::NackReceive: return 3;
      case HandlerId::HomeNack: return 6;
    }
    return 0;
}

HandlerTiming
TableTimingModel::occupancy(const protocol::Message &,
                            const protocol::HandlerResult &res)
{
    HandlerTiming t;
    t.occupancy = cost(res.id, res.costParam);
    return t;
}

std::uint64_t
PpTimingModel::ShadowMemory::load(Addr addr, Cycles &extra)
{
    MdcAccess a = mdc_.access(addr, false);
    if (traceMdc())
        std::fprintf(stderr, "[mdc] ld 0x%llx %s\n",
                     static_cast<unsigned long long>(addr),
                     a.hit ? "hit" : "MISS");
    extra = a.hit ? 0 : missPenalty_;
    if (!a.hit)
        ++misses;
    if (a.victimWriteback)
        ++writebacks;
    const std::uint64_t *w = writes_.find(addr);
    return w != nullptr ? *w : dir_.loadWord(addr);
}

void
PpTimingModel::ShadowMemory::store(Addr addr, std::uint64_t value,
                                   Cycles &extra)
{
    MdcAccess a = mdc_.access(addr, true);
    if (traceMdc())
        std::fprintf(stderr, "[mdc] sd 0x%llx %s\n",
                     static_cast<unsigned long long>(addr),
                     a.hit ? "hit" : "MISS");
    extra = a.hit ? 0 : missPenalty_;
    if (!a.hit)
        ++misses;
    if (a.victimWriteback)
        ++writebacks;
    writes_.put(addr, value);
}

void
PpTimingModel::ShadowMemory::reset()
{
    writes_.reset();
    misses = 0;
    writebacks = 0;
}

PpTimingModel::PpTimingModel(const protocol::HandlerPrograms &programs,
                             const protocol::DirectoryStore &dir,
                             const MagicParams &params)
    : programs_(programs), params_(params),
      mdc_(params.mdcBytes, params.mdcAssoc, params.mdcLineBytes),
      shadow_(dir, mdc_, params.mdcMissPenalty), sim_(params.ppBackend)
{
    // Resolve the (type, at_home) -> program mapping once — the handler
    // load point — pre-decoding each program so no dispatch or decode
    // work remains on the per-message path. Entries aliasing the same
    // program share a warm slot (see DispatchEntry).
    std::vector<const ppisa::Program *> uniq;
    for (int t = 0; t < protocol::kNumMsgTypes; ++t) {
        for (int at_home = 0; at_home < 2; ++at_home) {
            const ppisa::Program *prog = programs_.forMessageOrNull(
                static_cast<protocol::MsgType>(t), at_home != 0);
            if (prog == nullptr)
                continue;
            const ppisa::DecodedProgram &decoded = prog->decoded();
            auto it = std::find(uniq.begin(), uniq.end(), prog);
            if (it == uniq.end())
                it = uniq.insert(uniq.end(), prog);
            dispatch_[static_cast<std::size_t>(t)]
                     [static_cast<std::size_t>(at_home)] = DispatchEntry{
                prog, &decoded,
                static_cast<std::int8_t>(it - uniq.begin())};
        }
    }
}

void
PpTimingModel::preHandler(const protocol::Message &msg, NodeId self,
                          NodeId home, bool cache_dirty)
{
    const DispatchEntry &e =
        dispatch_[static_cast<std::size_t>(msg.type)][home == self ? 1 : 0];
    if (e.prog == nullptr)
        panic("HandlerPrograms: no program for type %d",
              static_cast<int>(msg.type));
    shadow_.reset();
    ppisa::RegFile regs =
        protocol::makeHandlerRegs(msg, self, home, cache_dirty);
    sent_.clear();
    Cycles cycles =
        sim_.run(*e.prog, *e.decoded, regs, shadow_, sent_, stats_);

    last_ = HandlerTiming{};
    last_.occupancy = cycles;
    last_.mdcMisses = shadow_.misses;
    last_.mdcWritebacks = shadow_.writebacks;
    bool &warm = warm_[static_cast<std::size_t>(e.warmSlot)];
    if (!warm) {
        warm = true;
        last_.micColdMiss = true;
        last_.occupancy += params_.micColdMiss;
    }
}

HandlerTiming
PpTimingModel::occupancy(const protocol::Message &,
                         const protocol::HandlerResult &res)
{
    HandlerTiming t = last_;
    // The PP coordinates the PI intervention while data streams out of
    // the processor cache; Table 3.4 charges this coordination to the
    // handler ("retrieve data from processor cache": 38 cycles total).
    if (res.cacheRetrieve)
        t.occupancy += params_.cacheStateRetrieve +
                       params_.cacheDataRetrieve - 1;
    return t;
}

} // namespace flashsim::magic
