/** @file Unit tests for the handler compiler (IR, expansion, scheduling). */

#include <gtest/gtest.h>

#include "ppc/compiler.hh"
#include "ppc/ir.hh"
#include "ppisa/ppsim.hh"

namespace flashsim::ppc
{
namespace
{

using ppisa::FlatPpMemory;
using ppisa::PpSim;
using ppisa::Program;
using ppisa::RegFile;
using ppisa::RunStats;
using ppisa::SentMessage;

struct RunResult
{
    RegFile regs{};
    std::vector<SentMessage> sent;
    RunStats stats;
    Cycles cycles = 0;
};

RunResult
execute(const Program &prog, const RegFile &in)
{
    RunResult r;
    r.regs = in;
    FlatPpMemory mem;
    PpSim sim;
    r.cycles = sim.run(prog, r.regs, mem, r.sent, r.stats);
    return r;
}

/** All four compiler modes. */
std::vector<CompileOptions>
allModes()
{
    return {{true, true}, {true, false}, {false, true}, {false, false}};
}

/** A function exercising ALU ops, fields, branches and a loop. */
IrFunction
makeTestFunction()
{
    IrFunction f("popcount_low_nibbles");
    Reg in = f.reg();   // r1: input
    Reg out = f.reg();  // r2: result
    Reg tmp = f.reg();
    Reg bit = f.reg();
    Label loop = f.label();
    Label done = f.label();
    Label skip = f.label();

    f.li(out, 0);
    f.mv(tmp, in);
    f.bind(loop);
    f.beq(tmp, Reg{0}, done);
    f.andi(bit, tmp, 1);
    f.beq(bit, Reg{0}, skip);
    f.addi(out, out, 1);
    f.bind(skip);
    f.srli(tmp, tmp, 1);
    f.j(loop);
    f.bind(done);
    f.halt();
    return f;
}

/** A function using every special instruction. */
IrFunction
makeSpecialFunction()
{
    IrFunction f("specials");
    Reg in = f.reg();  // r1
    Reg a = f.reg();   // r2
    Reg b = f.reg();   // r3
    Reg c = f.reg();   // r4
    Reg d = f.reg();   // r5
    Label set = f.label();
    Label done = f.label();

    f.ffs(a, in);                 // a = ffs(in)
    f.ext(b, in, 4, 8);           // b = in[11:4]
    f.orfi(c, in, 20, 3);         // c = in | 0x700000
    f.andfi(d, in, 0, 4);         // d = in & ~0xf
    f.bbs(in, 0, set);
    f.addi(a, a, 100);
    f.j(done);
    f.bind(set);
    f.ins(d, b, 32, 8);           // d[39:32] = b
    f.bind(done);
    f.halt();
    return f;
}

TEST(Compiler, SemanticsIdenticalAcrossModes)
{
    IrFunction f = makeTestFunction();
    RegFile in{};
    for (std::uint64_t v : {0ull, 1ull, 0xffull, 0xa5a5ull, 0x123456ull}) {
        in[1] = v;
        std::uint64_t expect = static_cast<std::uint64_t>(
            __builtin_popcountll(v));
        for (const CompileOptions &opt : allModes()) {
            Program p = compile(f, opt);
            RunResult r = execute(p, in);
            EXPECT_EQ(r.regs[2], expect)
                << "v=" << v << " special=" << opt.useSpecialInstrs
                << " dual=" << opt.dualIssue;
        }
    }
}

TEST(Compiler, SpecialInstructionSemanticsSurviveExpansion)
{
    IrFunction f = makeSpecialFunction();
    RegFile in{};
    for (std::uint64_t v :
         {0x1ull, 0x80ull, 0xdeadbeefull, 0xfff0ull, 0ull}) {
        in[1] = v;
        Program opt = compile(f, {true, true});
        Program base = compile(f, {false, false});
        RunResult a = execute(opt, in);
        RunResult b = execute(base, in);
        for (int reg = 2; reg <= 5; ++reg)
            EXPECT_EQ(a.regs[reg], b.regs[reg])
                << "v=" << v << " reg=" << reg;
    }
}

TEST(Compiler, DualIssuePacksTighterThanSingleIssue)
{
    IrFunction f = makeSpecialFunction();
    Program dual = compile(f, {true, true});
    Program single = compile(f, {true, false});
    EXPECT_LT(dual.pairs().size(), single.pairs().size());
}

TEST(Compiler, ExpansionGrowsCodeSize)
{
    IrFunction f = makeSpecialFunction();
    Program with = compile(f, {true, false});
    Program without = compile(f, {false, false});
    EXPECT_GT(without.codeBytes(), with.codeBytes());
}

TEST(Compiler, BaselineSlowerInCycles)
{
    IrFunction f = makeSpecialFunction();
    RegFile in{};
    in[1] = 0x81;
    RunResult fast = execute(compile(f, {true, true}), in);
    RunResult slow = execute(compile(f, {false, false}), in);
    EXPECT_LT(fast.cycles, slow.cycles);
}

TEST(Compiler, DualIssueEfficiencyAboveOne)
{
    IrFunction f = makeSpecialFunction();
    RegFile in{};
    in[1] = 0x81;
    RunResult r = execute(compile(f, {true, true}), in);
    EXPECT_GT(r.stats.dualIssueEfficiency(), 1.0);
    EXPECT_LE(r.stats.dualIssueEfficiency(), 2.0);
}

TEST(Compiler, NoSpecialsAfterExpansion)
{
    IrFunction f = makeSpecialFunction();
    Program base = compile(f, {false, true});
    for (const auto &pair : base.pairs()) {
        EXPECT_FALSE(pair.a.isSpecial()) << pair.a.toString();
        EXPECT_FALSE(pair.b.isSpecial()) << pair.b.toString();
    }
}

TEST(Compiler, SendsPreserveOrderAcrossModes)
{
    IrFunction f("sends");
    Reg d1 = f.reg();
    Reg d2 = f.reg();
    Reg arg = f.reg();
    f.li(d1, 1);
    f.li(d2, 2);
    f.li(arg, 42);
    f.send(10, d1, arg);
    f.send(11, d2, arg);
    f.send(12, d1, arg);
    f.halt();
    for (const CompileOptions &opt : allModes()) {
        RunResult r = execute(compile(f, opt), RegFile{});
        ASSERT_EQ(r.sent.size(), 3u);
        EXPECT_EQ(r.sent[0].type, 10);
        EXPECT_EQ(r.sent[1].type, 11);
        EXPECT_EQ(r.sent[2].type, 12);
        EXPECT_EQ(r.sent[1].dest, 2u);
    }
}

TEST(Compiler, MemoryOrderPreserved)
{
    IrFunction f("memorder");
    Reg base = f.reg(); // r1
    Reg v1 = f.reg();
    Reg v2 = f.reg();
    f.li(v1, 111);
    f.sd(base, 0, v1);
    f.li(v2, 222);
    f.sd(base, 0, v2);
    f.ld(v1, base, 0); // must observe 222
    f.sd(base, 8, v1);
    f.halt();
    for (const CompileOptions &opt : allModes()) {
        Program p = compile(f, opt);
        RegFile regs{};
        regs[1] = 0x100;
        FlatPpMemory mem;
        PpSim sim;
        std::vector<SentMessage> sent;
        RunStats stats;
        sim.run(p, regs, mem, sent, stats);
        EXPECT_EQ(mem.peek(0x108), 222u)
            << "special=" << opt.useSpecialInstrs
            << " dual=" << opt.dualIssue;
    }
}

TEST(Compiler, ValidateRejectsUnboundLabel)
{
    IrFunction f("bad");
    Reg r = f.reg();
    Label l = f.label();
    f.beq(r, Reg{0}, l);
    f.halt();
    EXPECT_DEATH(f.validate(), "never bound");
}

TEST(Compiler, ValidateRequiresTrailingHalt)
{
    IrFunction f("nohalt");
    Reg r = f.reg();
    f.li(r, 1);
    EXPECT_DEATH(f.validate(), "halt");
}

TEST(Compiler, RegisterExhaustionIsFatal)
{
    IrFunction f("many");
    EXPECT_DEATH(
        {
            for (int i = 0; i < 40; ++i)
                f.reg();
        },
        "out of registers");
}

TEST(Compiler, EmptyLoopBodyBlocks)
{
    // A label directly on halt (empty block) must compile and run.
    IrFunction f("empty_block");
    Reg r = f.reg();
    Label l = f.label();
    f.beq(r, Reg{0}, l);
    f.addi(r, r, 1);
    f.bind(l);
    f.halt();
    for (const CompileOptions &opt : allModes()) {
        RunResult res = execute(compile(f, opt), RegFile{});
        EXPECT_EQ(res.regs[1], 0u); // branch taken, addi skipped
    }
}

/** Property sweep: random ALU/branch programs agree across modes. */
class CompilerPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(CompilerPropertyTest, RandomDagsAgree)
{
    // Build a random straight-line function from a seed and check all
    // four compile modes compute identical register state.
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    auto next = [&seed]() {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        return seed * 0x2545f4914f6cdd1dull;
    };

    IrFunction f("random");
    std::vector<Reg> regs;
    for (int i = 0; i < 8; ++i)
        regs.push_back(f.reg());
    for (int i = 0; i < 24; ++i) {
        Reg d = regs[next() % 8];
        Reg a = regs[next() % 8];
        Reg b = regs[next() % 8];
        switch (next() % 8) {
          case 0: f.add(d, a, b); break;
          case 1: f.sub(d, a, b); break;
          case 2: f.xor_(d, a, b); break;
          case 3: f.addi(d, a, static_cast<std::int64_t>(next() % 97)); break;
          case 4: f.ext(d, a, next() % 32, 1 + next() % 16); break;
          case 5: f.orfi(d, a, next() % 32, 1 + next() % 16); break;
          case 6: f.andfi(d, a, next() % 32, 1 + next() % 16); break;
          case 7: f.ins(d, a, next() % 32, 1 + next() % 16); break;
        }
    }
    f.halt();

    RegFile in{};
    for (int i = 1; i <= 8; ++i)
        in[i] = next();

    RunResult ref = execute(compile(f, {true, true}), in);
    for (const CompileOptions &opt : allModes()) {
        RunResult r = execute(compile(f, opt), in);
        for (int i = 1; i <= 8; ++i)
            EXPECT_EQ(r.regs[i], ref.regs[i])
                << "seed=" << GetParam() << " reg=" << i
                << " special=" << opt.useSpecialInstrs
                << " dual=" << opt.dualIssue;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerPropertyTest,
                         ::testing::Range(1, 33));

/** Property sweep with control flow: random forward-branching programs
 *  agree across all compile modes (exercises block scheduling, branch
 *  fixups, and cross-block load-delay padding). */
class BranchyPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(BranchyPropertyTest, RandomBranchesAgree)
{
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 977 + 5;
    auto next = [&seed]() {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        return seed * 0x2545f4914f6cdd1dull;
    };

    IrFunction f("branchy");
    std::vector<Reg> regs;
    for (int i = 0; i < 6; ++i)
        regs.push_back(f.reg());
    Reg mem_base = f.reg();

    // Blocks of straight-line code separated by forward branches.
    std::vector<Label> pending;
    for (int block = 0; block < 6; ++block) {
        for (int i = 0; i < 6; ++i) {
            Reg d = regs[next() % 6];
            Reg a = regs[next() % 6];
            Reg b = regs[next() % 6];
            switch (next() % 7) {
              case 0: f.add(d, a, b); break;
              case 1: f.xor_(d, a, b); break;
              case 2: f.addi(d, a, static_cast<std::int64_t>(next() % 63)); break;
              case 3: f.ext(d, a, next() % 24, 1 + next() % 8); break;
              case 4: f.orfi(d, a, next() % 24, 1 + next() % 8); break;
              case 5: f.sd(mem_base, 8 * static_cast<std::int64_t>(next() % 4), a); break;
              case 6: f.ld(d, mem_base, 8 * static_cast<std::int64_t>(next() % 4)); break;
            }
        }
        // Forward branch over the next block, sometimes taken.
        Label skip = f.label();
        switch (next() % 3) {
          case 0: f.beq(regs[next() % 6], regs[next() % 6], skip); break;
          case 1: f.bbs(regs[next() % 6], next() % 16, skip); break;
          case 2: f.bbc(regs[next() % 6], next() % 16, skip); break;
        }
        f.addi(regs[next() % 6], regs[next() % 6],
               static_cast<std::int64_t>(next() % 31));
        pending.push_back(skip);
        f.bind(skip);
    }
    f.halt();

    RegFile in{};
    for (int i = 1; i <= 7; ++i)
        in[i] = next();
    in[7] = 0x4000; // mem_base

    RunResult ref = execute(compile(f, {true, true}), in);
    for (const CompileOptions &opt : allModes()) {
        Program p = compile(f, opt);
        RegFile regs2 = in;
        FlatPpMemory mem;
        PpSim sim;
        std::vector<SentMessage> sent;
        RunStats stats;
        sim.run(p, regs2, mem, sent, stats);
        for (int i = 1; i <= 6; ++i)
            EXPECT_EQ(regs2[i], ref.regs[i])
                << "seed=" << GetParam() << " reg=" << i
                << " special=" << opt.useSpecialInstrs
                << " dual=" << opt.dualIssue;
        for (int w = 0; w < 4; ++w)
            EXPECT_EQ(mem.peek(0x4000 + 8 * w),
                      [&] {
                          FlatPpMemory ref_mem;
                          RegFile r2 = in;
                          std::vector<SentMessage> s2;
                          RunStats st2;
                          PpSim s;
                          s.run(compile(f, {true, true}), r2, ref_mem,
                                s2, st2);
                          return ref_mem.peek(0x4000 + 8 * w);
                      }())
                << "seed=" << GetParam() << " word=" << w;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchyPropertyTest,
                         ::testing::Range(1, 25));

} // namespace
} // namespace flashsim::ppc
