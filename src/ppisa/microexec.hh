/**
 * @file
 * Shared micro-op execution core (internal header).
 *
 * Both PP execution backends — the decoded interpreter in ppsim.cc and
 * the threaded-code engine in threaded.cc — must agree bit-for-bit on
 * every architectural effect. The generic per-slot executor and the
 * load-delay panic report therefore live here, in one place, so the
 * backends cannot drift: the threaded engine's specialized kernels are
 * each a hand-unrolled copy of exactly one case below, and its generic
 * fallback kernel calls execMicro directly.
 */

#ifndef FLASHSIM_PPISA_MICROEXEC_HH_
#define FLASHSIM_PPISA_MICROEXEC_HH_

#include <cstdint>
#include <vector>

#include "ppisa/decode.hh"
#include "ppisa/ppsim.hh"
#include "sim/logging.hh"

namespace flashsim::ppisa::detail
{

/** Per-slot execution result over a decoded micro-op. */
struct MicroResult
{
    int destReg = -1;
    std::uint64_t destVal = 0;
    bool branchTaken = false;
    std::uint32_t target = 0;
};

/** Inlined into both issue slots of the dynamic loops: the call/return
 *  and the by-value MicroResult otherwise cost as much as the typical
 *  one-ALU-op payload. */
[[gnu::always_inline]] inline MicroResult
execMicro(const MicroOp &m, RegFile &regs, PpMemory &mem,
          std::vector<SentMessage> &sent, Cycles &stall)
{
    MicroResult r;
    auto rs = [&] { return regs[m.rs]; };
    auto rt = [&] { return regs[m.rt]; };
    auto setDest = [&](std::uint64_t v) {
        r.destReg = m.rd;
        r.destVal = v;
    };
    auto branch = [&] {
        r.branchTaken = true;
        r.target = m.target;
    };

    switch (m.op) {
      case Op::Nop:
        break;
      case Op::Add: setDest(rs() + rt()); break;
      case Op::Sub: setDest(rs() - rt()); break;
      case Op::And: setDest(rs() & rt()); break;
      case Op::Or: setDest(rs() | rt()); break;
      case Op::Xor: setDest(rs() ^ rt()); break;
      case Op::Sllv: setDest(rs() << (rt() & 63)); break;
      case Op::Srlv: setDest(rs() >> (rt() & 63)); break;
      case Op::Slt:
        setDest(static_cast<std::int64_t>(rs()) <
                        static_cast<std::int64_t>(rt())
                    ? 1
                    : 0);
        break;
      case Op::Sltu: setDest(rs() < rt() ? 1 : 0); break;
      case Op::Addi:
        setDest(rs() + static_cast<std::uint64_t>(m.imm));
        break;
      case Op::Andi:
        setDest(rs() & static_cast<std::uint64_t>(m.imm));
        break;
      case Op::Ori:
        setDest(rs() | static_cast<std::uint64_t>(m.imm));
        break;
      case Op::Xori:
        setDest(rs() ^ static_cast<std::uint64_t>(m.imm));
        break;
      case Op::Slli: setDest(rs() << (m.imm & 63)); break;
      case Op::Srli: setDest(rs() >> (m.imm & 63)); break;
      case Op::Srai:
        setDest(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rs()) >> (m.imm & 63)));
        break;
      case Op::Slti:
        setDest(static_cast<std::int64_t>(rs()) < m.imm ? 1 : 0);
        break;
      case Op::Ld: {
        Cycles extra = 0;
        std::uint64_t v =
            mem.load(rs() + static_cast<std::uint64_t>(m.imm), extra);
        stall += extra;
        setDest(v);
        break;
      }
      case Op::Sd: {
        Cycles extra = 0;
        mem.store(rs() + static_cast<std::uint64_t>(m.imm), rt(), extra);
        stall += extra;
        break;
      }
      case Op::Beq:
        if (rs() == rt())
            branch();
        break;
      case Op::Bne:
        if (rs() != rt())
            branch();
        break;
      case Op::J:
        branch();
        break;
      case Op::Halt:
        break;
      case Op::Ffs: {
        std::uint64_t v = rs();
        setDest(v == 0 ? 64 : static_cast<std::uint64_t>(
                                  __builtin_ctzll(v)));
        break;
      }
      case Op::Bbs:
        if ((rs() >> m.lo) & 1)
            branch();
        break;
      case Op::Bbc:
        if (!((rs() >> m.lo) & 1))
            branch();
        break;
      case Op::Ext:
        setDest((rs() >> m.lo) & m.mask);
        break;
      case Op::Ins:
        setDest((regs[m.rd] & ~m.mask) | ((rs() << m.lo) & m.mask));
        break;
      case Op::Orfi:
        setDest(rs() | m.mask);
        break;
      case Op::Andfi:
        setDest(rs() & ~m.mask);
        break;
      case Op::Send:
        sent.push_back(
            SentMessage{static_cast<int>(m.imm), rs(), rt()});
        break;
    }
    return r;
}

/** Name the offending register the way the interpreter did: first
 *  source of slot a then slot b that hits a previous-pair load dest.
 *  @p a / @p b are the two micro-ops of the offending pair. */
[[noreturn]] inline void
panicLoadDelay(const MicroOp &a, const MicroOp &b, std::size_t pc,
               const char *name, std::uint32_t prev_load_mask)
{
    for (const MicroOp *m : {&a, &b}) {
        for (std::uint8_t i = 0; i < m->nsrcs; ++i) {
            const std::uint8_t src = m->srcs[i];
            if (src != 0 && ((prev_load_mask >> src) & 1))
                panic("PpSim: load-delay violation on r%d at pair %zu "
                      "of '%s'", int(src), pc, name);
        }
    }
    panic("PpSim: load-delay violation at pair %zu of '%s'", pc,
          name); // unreachable: mask hit implies a source
}

/** Act on a decode-time contract verdict, in the interpreter's check
 *  order (intra-pair RAW, intra-pair WAW, then two-branch — load-delay
 *  sits between WAW and two-branch and is checked by the caller). */
[[noreturn]] inline void
panicViolation(DecodedPair::Violation v, std::uint8_t violation_reg,
               std::size_t pc, const char *name)
{
    switch (v) {
      case DecodedPair::Violation::IntraRaw:
        panic("PpSim: intra-pair RAW on r%d at pair %zu of '%s'",
              int(violation_reg), pc, name);
      case DecodedPair::Violation::IntraWaw:
        panic("PpSim: intra-pair WAW on r%d at pair %zu of '%s'",
              int(violation_reg), pc, name);
      case DecodedPair::Violation::TwoBranch:
        panic("PpSim: two branches in pair %zu of '%s'", pc, name);
      case DecodedPair::Violation::None:
        break;
    }
    panic("PpSim: unknown contract violation at pair %zu of '%s'", pc,
          name);
}

} // namespace flashsim::ppisa::detail

#endif // FLASHSIM_PPISA_MICROEXEC_HH_
