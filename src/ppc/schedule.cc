/**
 * @file
 * Static instruction scheduling for the PP (the PPtwine analogue).
 *
 * Dual-issue mode builds a dependence DAG per basic block and
 * list-schedules by critical-path height into pairs, honoring:
 *   - RAW latency 1 (2 from loads: one load-delay pair),
 *   - WAW latency 1, WAR latency 0 (same-pair OK, reader in slot a),
 *   - one memory operation and one Send per pair,
 *   - branches issue in the final pair of their block,
 *   - no load in the final pair of a block (cross-block load delay).
 *
 * Single-issue mode emits one instruction per pair with an explicit
 * load-delay NOP where the next instruction consumes a load result,
 * mirroring plain DLX scheduling for the Section 5.3 baseline.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ppc/compiler.hh"
#include "sim/logging.hh"

namespace flashsim::ppc
{

namespace
{

bool
isTerminator(const IrInstr &in)
{
    return in.op == Op::Halt || in.op == Op::J || in.op == Op::Beq ||
           in.op == Op::Bne || in.op == Op::Bbs || in.op == Op::Bbc;
}

bool
isMemOp(const IrInstr &in)
{
    return in.op == Op::Ld || in.op == Op::Sd;
}

struct Block
{
    int first; ///< index of first instruction
    int last;  ///< one past last instruction
    bool hasTerm;
};

std::vector<Block>
findBlocks(const LinearCode &code)
{
    const int n = static_cast<int>(code.instrs.size());
    std::vector<char> leader(static_cast<std::size_t>(n) + 1, 0);
    leader[0] = 1;
    for (int pos : code.labelPos) {
        if (pos < 0 || pos > n)
            panic("schedule: label out of range in '%s'",
                  code.name.c_str());
        leader[pos] = 1;
    }
    for (int i = 0; i < n; ++i)
        if (isTerminator(code.instrs[i]) && i + 1 <= n)
            leader[i + 1] = 1;

    std::vector<Block> blocks;
    int start = 0;
    for (int i = 1; i <= n; ++i) {
        if (i == n || leader[i]) {
            Block b;
            b.first = start;
            b.last = i;
            b.hasTerm = isTerminator(code.instrs[i - 1]);
            blocks.push_back(b);
            start = i;
        }
    }
    return blocks;
}

/** Emulator-compatible pairing constraints; @p x would go in slot a. */
bool
canPairOrdered(const IrInstr &x, const IrInstr &y)
{
    ppisa::Instr ix = x.toInstr(0);
    ppisa::Instr iy = y.toInstr(0);
    int dx = ix.destReg();
    if (dx > 0) {
        for (int s : iy.srcRegs())
            if (s == dx)
                return false;
        if (iy.destReg() == dx)
            return false;
    }
    // Slot-a result must also not feed slot a... (same instruction, moot).
    // Structural constraints:
    if (ix.isBranch() && iy.isBranch())
        return false;
    if (isMemOp(x) && isMemOp(y))
        return false;
    if (x.op == Op::Send && y.op == Op::Send)
        return false;
    return true;
}

/** Dependence DAG edges with latencies for one block body. */
struct Dag
{
    std::vector<std::vector<std::pair<int, int>>> succ; // (to, latency)
    std::vector<int> indeg;
    std::vector<int> height;

    explicit Dag(int n) : succ(n), indeg(n, 0), height(n, 1) {}

    void
    edge(int from, int to, int lat)
    {
        succ[from].emplace_back(to, lat);
        ++indeg[to];
    }
};

Dag
buildDag(const LinearCode &code, int first, int last)
{
    const int n = last - first;
    Dag dag(n);
    for (int i = 0; i < n; ++i) {
        const IrInstr &a = code.instrs[first + i];
        ppisa::Instr ia = a.toInstr(0);
        int da = ia.destReg();
        for (int j = i + 1; j < n; ++j) {
            const IrInstr &b = code.instrs[first + j];
            ppisa::Instr ib = b.toInstr(0);
            bool dep = false;
            int lat = 1;
            // RAW
            if (da > 0) {
                for (int s : ib.srcRegs()) {
                    if (s == da) {
                        dep = true;
                        lat = std::max(lat, a.op == Op::Ld ? 2 : 1);
                    }
                }
                // WAW
                if (ib.destReg() == da)
                    dep = true;
            }
            // WAR (b writes something a reads): same-cycle legal.
            int db = ib.destReg();
            if (db > 0) {
                for (int s : ia.srcRegs()) {
                    if (s == db) {
                        if (!dep)
                            lat = 0;
                        dep = true;
                    }
                }
            }
            // Memory ordering: conservative except load-load.
            if (isMemOp(a) && isMemOp(b) &&
                !(a.op == Op::Ld && b.op == Op::Ld))
                dep = true;
            // Message ordering.
            if (a.op == Op::Send && b.op == Op::Send)
                dep = true;
            if (dep)
                dag.edge(i, j, lat);
        }
    }
    // Critical-path heights.
    for (int i = n - 1; i >= 0; --i)
        for (auto [j, lat] : dag.succ[i])
            dag.height[i] = std::max(dag.height[i], lat + dag.height[j]);
    return dag;
}

ppisa::Instr
nop()
{
    return ppisa::Instr{};
}

/**
 * List-schedule one block body (instructions [first, term_idx)), then
 * place the terminator (if any). Appends pairs to @p out. Returns for
 * each emitted branch its index in @p branch_fixups.
 */
void
scheduleBlock(const LinearCode &code, const Block &blk,
              std::vector<ppisa::InstrPair> &out,
              std::vector<std::pair<std::size_t, int>> &branch_fixups)
{
    int body_last = blk.hasTerm ? blk.last - 1 : blk.last;
    const int n = body_last - blk.first;
    Dag dag = buildDag(code, blk.first, body_last);

    std::vector<int> earliest(n, 0);
    std::vector<char> done(n, 0);
    std::vector<int> cycleOf(n, -1);
    int scheduled = 0;
    int cycle = 0;
    std::size_t blockPairBase = out.size();

    while (scheduled < n) {
        // Collect ready instructions.
        std::vector<int> ready;
        for (int i = 0; i < n; ++i)
            if (!done[i] && dag.indeg[i] == 0 && earliest[i] <= cycle)
                ready.push_back(i);
        std::sort(ready.begin(), ready.end(), [&](int x, int y) {
            if (dag.height[x] != dag.height[y])
                return dag.height[x] > dag.height[y];
            return x < y;
        });

        std::vector<int> slot;
        for (int cand : ready) {
            if (slot.empty()) {
                slot.push_back(cand);
            } else if (slot.size() == 1) {
                const IrInstr &x = code.instrs[blk.first + slot[0]];
                const IrInstr &y = code.instrs[blk.first + cand];
                if (canPairOrdered(x, y)) {
                    slot.push_back(cand);
                } else if (canPairOrdered(y, x)) {
                    slot.insert(slot.begin(), cand);
                }
            }
            if (slot.size() == 2)
                break;
        }

        if (!slot.empty()) {
            ppisa::InstrPair pair;
            const IrInstr &ia = code.instrs[blk.first + slot[0]];
            pair.a = ia.toInstr(0);
            if (ia.label >= 0)
                branch_fixups.emplace_back(out.size() * 2, ia.label);
            if (slot.size() == 2) {
                const IrInstr &ib = code.instrs[blk.first + slot[1]];
                pair.b = ib.toInstr(0);
                if (ib.label >= 0)
                    branch_fixups.emplace_back(out.size() * 2 + 1,
                                               ib.label);
            } else {
                pair.b = nop();
            }
            out.push_back(pair);
            for (int s : slot) {
                done[s] = 1;
                cycleOf[s] = cycle;
                ++scheduled;
                for (auto [j, lat] : dag.succ[s]) {
                    --dag.indeg[j];
                    earliest[j] = std::max(earliest[j], cycle + lat);
                }
            }
        } else {
            out.push_back(ppisa::InstrPair{nop(), nop()});
        }
        ++cycle;
        if (cycle > 100000)
            panic("scheduleBlock: no progress in '%s'", code.name.c_str());
    }

    if (blk.hasTerm) {
        const IrInstr &term = code.instrs[blk.last - 1];
        ppisa::Instr it = term.toInstr(0);
        // Earliest legal cycle for the terminator given its producers.
        int term_earliest = cycle == 0 ? 0 : cycle; // after all body pairs
        for (int i = 0; i < n; ++i) {
            ppisa::Instr ii = code.instrs[blk.first + i].toInstr(0);
            int di = ii.destReg();
            if (di <= 0)
                continue;
            for (int s : it.srcRegs()) {
                if (s == di) {
                    int lat = ii.op == ppisa::Op::Ld ? 2 : 1;
                    term_earliest =
                        std::max(term_earliest, cycleOf[i] + lat);
                }
            }
        }
        bool coIssued = false;
        if (term_earliest <= cycle - 1 && out.size() > blockPairBase) {
            ppisa::InstrPair &lastPair = out.back();
            // Co-issue into an empty slot b if legal; never pair a load
            // with a branch (cross-block load delay).
            if (lastPair.b.isNop() && !lastPair.a.isLoad() &&
                !lastPair.a.isBranch()) {
                int da = lastPair.a.destReg();
                bool hazard = false;
                for (int s : it.srcRegs())
                    if (s == da && da > 0)
                        hazard = true;
                if (!hazard) {
                    lastPair.b = it;
                    if (term.label >= 0)
                        branch_fixups.emplace_back(
                            (out.size() - 1) * 2 + 1, term.label);
                    coIssued = true;
                }
            }
        }
        if (!coIssued) {
            while (static_cast<int>(out.size() - blockPairBase) <
                   term_earliest)
                out.push_back(ppisa::InstrPair{nop(), nop()});
            ppisa::InstrPair pair;
            pair.a = it;
            pair.b = nop();
            if (term.label >= 0)
                branch_fixups.emplace_back(out.size() * 2, term.label);
            out.push_back(pair);
        }
    } else if (!out.empty() && out.size() > blockPairBase) {
        // Fallthrough block: keep loads out of the final pair so a
        // successor's first pair can always consume safely.
        if (out.back().a.isLoad() || out.back().b.isLoad())
            out.push_back(ppisa::InstrPair{nop(), nop()});
    }
}

} // namespace

ppisa::Program
scheduleDualIssue(const LinearCode &code)
{
    ppisa::Program prog;
    prog.name = code.name;

    std::vector<Block> blocks = findBlocks(code);
    std::vector<std::size_t> blockPairStart(blocks.size(), 0);
    std::vector<std::pair<std::size_t, int>> fixups; // (slot index, label)

    for (std::size_t b = 0; b < blocks.size(); ++b) {
        blockPairStart[b] = prog.mutablePairs().size();
        scheduleBlock(code, blocks[b], prog.mutablePairs(), fixups);
    }

    // Map each instruction index to its containing block.
    auto blockOfInstr = [&](int idx) -> std::size_t {
        for (std::size_t b = 0; b < blocks.size(); ++b)
            if (idx >= blocks[b].first && idx < blocks[b].last)
                return b;
        panic("scheduleDualIssue: instr %d outside all blocks in '%s'",
              idx, code.name.c_str());
    };

    for (auto [slotIdx, label] : fixups) {
        int target_instr = code.labelPos[label];
        if (target_instr == static_cast<int>(code.instrs.size()))
            panic("scheduleDualIssue: label past end in '%s'",
                  code.name.c_str());
        std::size_t tb = blockOfInstr(target_instr);
        if (blocks[tb].first != target_instr)
            panic("scheduleDualIssue: label into middle of block in '%s'",
                  code.name.c_str());
        std::int64_t target_pair =
            static_cast<std::int64_t>(blockPairStart[tb]);
        ppisa::InstrPair &pair = prog.mutablePairs()[slotIdx / 2];
        (slotIdx % 2 == 0 ? pair.a : pair.b).imm = target_pair;
    }
    return prog;
}

ppisa::Program
scheduleSingleIssue(const LinearCode &code)
{
    ppisa::Program prog;
    prog.name = code.name;

    const int n = static_cast<int>(code.instrs.size());
    std::vector<std::size_t> pairOfInstr(n, 0);
    std::vector<std::pair<std::size_t, int>> fixups;
    std::vector<ppisa::InstrPair> &pairs = prog.mutablePairs();

    for (int i = 0; i < n; ++i) {
        const IrInstr &in = code.instrs[i];
        pairOfInstr[i] = pairs.size();
        ppisa::InstrPair pair;
        pair.a = in.toInstr(0);
        pair.b = nop();
        if (in.label >= 0)
            fixups.emplace_back(pairs.size(), in.label);
        pairs.push_back(pair);
        // DLX load delay: if the next instruction consumes this load's
        // result, or this load ends a block, insert a delay NOP.
        if (in.op == Op::Ld) {
            bool needNop = i + 1 >= n;
            if (i + 1 < n) {
                ppisa::Instr next = code.instrs[i + 1].toInstr(0);
                for (int s : next.srcRegs())
                    if (s == in.rd)
                        needNop = true;
                if (isTerminator(code.instrs[i + 1]))
                    needNop = true; // protect successor blocks
            }
            // Loads that are branch targets' predecessors are rare; the
            // conservative cases above cover cross-block hazards.
            if (needNop)
                pairs.push_back(ppisa::InstrPair{nop(), nop()});
        }
    }

    for (auto [pairIdx, label] : fixups) {
        int target_instr = code.labelPos[label];
        if (target_instr >= n)
            panic("scheduleSingleIssue: label past end in '%s'",
                  code.name.c_str());
        pairs[pairIdx].a.imm =
            static_cast<std::int64_t>(pairOfInstr[target_instr]);
    }
    return prog;
}

} // namespace flashsim::ppc
