/**
 * @file
 * Table 3.3 reproduction tests: the no-contention read-miss latencies
 * and PP occupancies of the five miss classes, for FLASH and the ideal
 * machine. Bands are centered on the paper's numbers with tolerance for
 * the model's composition (see EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "machine/runner.hh"

namespace flashsim::machine
{
namespace
{

class LatencyTest : public ::testing::Test
{
  protected:
    static const ProbeResult &
    flash()
    {
        static ProbeResult r =
            probeMissLatencies(MachineConfig::flash(16));
        return r;
    }

    static const ProbeResult &
    ideal()
    {
        static ProbeResult r =
            probeMissLatencies(MachineConfig::ideal(16));
        return r;
    }
};

TEST_F(LatencyTest, IdealLocalCleanMatchesPaperExactly)
{
    // 5 (detect) + 1 (bus) + 1 (PI in) + 1 (arb) + 14 (memory) + 2 (PI
    // out, overlapped with arb+transit): Table 3.3 says 24.
    EXPECT_EQ(ideal().latency.localClean, 24.0);
}

TEST_F(LatencyTest, FlashLocalCleanNearPaper)
{
    // Paper: 27. The jump table and outbox add a few cycles over ideal;
    // the handler itself hides under the memory access.
    EXPECT_GE(flash().latency.localClean, 25.0);
    EXPECT_LE(flash().latency.localClean, 34.0);
}

TEST_F(LatencyTest, FlashAlwaysSlowerThanIdeal)
{
    const MissLatencies &f = flash().latency;
    const MissLatencies &i = ideal().latency;
    EXPECT_GT(f.localClean, i.localClean);
    EXPECT_GT(f.localDirtyRemote, i.localDirtyRemote);
    EXPECT_GT(f.remoteClean, i.remoteClean);
    EXPECT_GT(f.remoteDirtyHome, i.remoteDirtyHome);
    EXPECT_GT(f.remoteDirtyRemote, i.remoteDirtyRemote);
}

TEST_F(LatencyTest, ClassOrderingMatchesPaper)
{
    for (const MissLatencies *l : {&flash().latency, &ideal().latency}) {
        EXPECT_LT(l->localClean, l->remoteClean);
        EXPECT_LT(l->remoteClean, l->remoteDirtyRemote);
        EXPECT_LT(l->localDirtyRemote, l->remoteDirtyRemote);
        EXPECT_LE(l->localDirtyRemote, l->remoteDirtyHome + 10);
    }
}

TEST_F(LatencyTest, FlashBandsNearPaper)
{
    const MissLatencies &f = flash().latency;
    EXPECT_NEAR(f.localDirtyRemote, 143.0, 15.0);
    EXPECT_NEAR(f.remoteClean, 111.0, 10.0);
    EXPECT_NEAR(f.remoteDirtyHome, 145.0, 15.0);
    EXPECT_NEAR(f.remoteDirtyRemote, 191.0, 20.0);
}

TEST_F(LatencyTest, IdealBandsNearPaper)
{
    const MissLatencies &i = ideal().latency;
    EXPECT_NEAR(i.remoteClean, 92.0, 6.0);
    // The dirty-class ideal latencies land ~10 cycles above the paper's
    // values because we charge the requester-side receive tail that the
    // paper's accounting appears to fold into the transfer (see
    // EXPERIMENTS.md); the FLASH-ideal deltas are unaffected.
    EXPECT_NEAR(i.localDirtyRemote, 100.0, 15.0);
    EXPECT_NEAR(i.remoteDirtyHome, 100.0, 15.0);
    EXPECT_NEAR(i.remoteDirtyRemote, 136.0, 15.0);
}

TEST_F(LatencyTest, FlexibilityDeltasMatchPaper)
{
    // The headline quantity: how much latency flexibility adds per
    // class (paper: +3, +43, +19, +45, +55).
    const MissLatencies &f = flash().latency;
    const MissLatencies &i = ideal().latency;
    EXPECT_NEAR(f.localClean - i.localClean, 3.0, 6.0);
    EXPECT_NEAR(f.remoteClean - i.remoteClean, 19.0, 8.0);
    EXPECT_NEAR(f.remoteDirtyHome - i.remoteDirtyHome, 45.0, 12.0);
    EXPECT_NEAR(f.localDirtyRemote - i.localDirtyRemote, 43.0, 16.0);
    EXPECT_NEAR(f.remoteDirtyRemote - i.remoteDirtyRemote, 55.0, 22.0);
}

TEST_F(LatencyTest, PpOccupanciesNearTable33)
{
    // Table 3.3 occupancy column: 11 / 53 / 16 / 53 / 61.
    const MissLatencies &o = flash().ppOccupancy;
    // Our sums include the sharing-writeback and reply-forward handlers
    // of the full transaction, which the paper's table appears to fold
    // elsewhere, so the dirty-class bands are wider.
    EXPECT_NEAR(o.localClean, 11.0, 5.0);
    EXPECT_NEAR(o.remoteClean, 16.0, 8.0);
    EXPECT_NEAR(o.localDirtyRemote, 53.0, 28.0);
    EXPECT_NEAR(o.remoteDirtyHome, 53.0, 18.0);
    EXPECT_NEAR(o.remoteDirtyRemote, 61.0, 28.0);
}

TEST_F(LatencyTest, IdealHasZeroPpOccupancy)
{
    const MissLatencies &o = ideal().ppOccupancy;
    EXPECT_EQ(o.localClean, 0.0);
    EXPECT_EQ(o.remoteDirtyRemote, 0.0);
}

TEST_F(LatencyTest, CrmtWeightsDistribution)
{
    MissLatencies l;
    l.localClean = 27;
    l.remoteClean = 111;
    ReadMissDistribution d;
    d.localClean = 0.5;
    d.remoteClean = 0.5;
    EXPECT_DOUBLE_EQ(l.crmt(d), 69.0);
}

} // namespace
} // namespace flashsim::machine
