/**
 * @file
 * Reproduces Figure 4.3 and the small-cache columns of Table 4.2: FFT,
 * MP3D and Radix with 4 KB caches, Ocean with 16 KB (the paper uses
 * 16 KB for Ocean because of line-conflict problems at 4 KB; Barnes,
 * LU and the OS workload are not run at this size). With working sets
 * far beyond the cache, most misses are satisfied locally, where the
 * latency difference between FLASH and the ideal machine is smallest —
 * so the relative cost of flexibility stays moderate even though the
 * machines spend most of their time in the memory system.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

int
main()
{
    std::printf("Figure 4.3 / Table 4.2 (4 KB caches; Ocean 16 KB)\n\n");
    sim::SweepRunner runner;
    machine::ProbeResult fp =
        machine::probeMissLatencies(MachineConfig::flash(16), &runner);
    machine::ProbeResult ip =
        machine::probeMissLatencies(MachineConfig::ideal(16), &runner);

    struct Row
    {
        const char *app;
        std::uint32_t cacheBytes;
        double paperMiss;     // Table 4.2 small-cache column
        double paperLocalClean;
    };
    const Row rows[] = {
        {"fft", 4096, 8.7, 64.7},
        {"mp3d", 4096, 11.4, 3.8},
        {"ocean", 16384, 10.0, 95.6},
        {"radix", 4096, 10.0, 91.3},
    };

    // The per-app cache sizes make this the cache-size sweep: each
    // FLASH/ideal machine is its own job.
    std::vector<PairSpec> specs;
    for (const Row &row : rows)
        specs.push_back(pairSpec(row.app, 16, row.cacheBytes));
    std::vector<Pair> pairs = runPairs(specs, runner);
    printSweepMetrics("fig_4_3", runner.lastMetrics());

    std::printf("Execution time breakdowns (FLASH normalized to 100):\n");
    std::vector<std::pair<std::string, Pair>> results;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        printBars(specs[i].app, pairs[i]);
        results.emplace_back(specs[i].app, std::move(pairs[i]));
    }

    std::printf("\nTable 4.2 statistics (measured):\n");
    for (auto &[app, p] : results)
        printTable41Row(app, p, fp.latency, ip.latency);

    std::printf("\nPaper vs measured (small caches):\n");
    std::printf("%-8s | %8s %8s | %8s %8s\n", "app", "missP", "missM",
                "LCp", "LCm");
    for (std::size_t i = 0; i < results.size(); ++i) {
        auto &[app, p] = results[i];
        std::printf("%-8s | %7.2f%% %7.2f%% | %7.1f%% %7.1f%%\n",
                    app.c_str(), rows[i].paperMiss,
                    100.0 * p.flash.summary.missRate,
                    rows[i].paperLocalClean,
                    100.0 * p.flash.summary.dist.localClean);
    }
    std::printf("\n(key shape: with tiny caches the miss mix shifts to "
                "local lines, so the FLASH/ideal gap does not blow up)\n");
    return 0;
}
