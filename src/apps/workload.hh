/**
 * @file
 * Workload interface and registry.
 *
 * The paper drives FlashLite with six parallel scientific applications
 * (Table 3.5) plus an OS multiprogramming workload. Here each workload
 * implements the computational kernel itself as a per-processor
 * coroutine issuing timed loads/stores/synchronization against the
 * simulated machine, reproducing the reference patterns the paper's
 * Tables 4.1/4.2 depend on (locality, sharing, communication and
 * computation/communication ratio).
 *
 * Every workload has two operating points: the default problem size
 * (scaled down from the paper for simulation cost, like the paper
 * itself scales down from production sizes) and the paper's size
 * (Table 3.5), selected by Scale::Paper.
 */

#ifndef FLASHSIM_APPS_WORKLOAD_HH_
#define FLASHSIM_APPS_WORKLOAD_HH_

#include <memory>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "tango/runtime.hh"
#include "tango/task.hh"

namespace flashsim::apps
{

enum class Scale
{
    Default, ///< reduced problem size (fast simulation)
    Paper,   ///< Table 3.5 problem size
};

/** A parallel application or OS workload. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate simulated memory and host state. Called exactly once,
     *  before run. */
    virtual void setup(machine::Machine &m) = 0;

    /** The per-processor body. */
    virtual tango::Task run(tango::Env &env) = 0;

    /** Adapter for Machine::run. */
    machine::Workload
    body()
    {
        return [this](tango::Env &env) { return run(env); };
    }
};

/** Factory: fft, lu, ocean, radix, barnes, mp3d, os. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       Scale scale = Scale::Default);

/** The six parallel applications (no OS), in the paper's order. */
std::vector<std::string> parallelAppNames();

/** All seven workloads. */
std::vector<std::string> allWorkloadNames();

/**
 * Convenience: construct a machine from @p cfg, set up @p w, run it to
 * completion and drain.
 * @return the machine (for summarize()).
 */
std::unique_ptr<machine::Machine> runWorkload(
    const machine::MachineConfig &cfg, Workload &w);

} // namespace flashsim::apps

#endif // FLASHSIM_APPS_WORKLOAD_HH_
