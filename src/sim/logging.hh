/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 * panic() for simulator bugs, fatal() for user/configuration errors,
 * warn()/inform() for non-fatal status.
 *
 * Both fatal() and panic() die via abort() after (a) prefixing the
 * message with the current simulation tick and node when a context has
 * been registered, and (b) replaying any registered post-mortem dumpers
 * (the verify::Sentinel's trace rings and watchdog status) to stderr —
 * so a death mid-simulation is never blind.
 *
 * Context and dumpers are thread-local: sweep-runner workers each run a
 * whole machine on one thread, so each worker sees only its own
 * machine's context.
 */

#ifndef FLASHSIM_SIM_LOGGING_HH_
#define FLASHSIM_SIM_LOGGING_HH_

#include <cstdarg>
#include <functional>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace flashsim
{

/** Print a formatted message and abort(); use for internal invariant
 *  violations (simulator bugs). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and abort(); use for configuration errors
 *  and unrecoverable simulation conditions. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; simulation continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);

// -- Simulation context (thread-local) --------------------------------------

/** Register the current thread's simulation clock; fatal()/panic()
 *  prefix their message with its value. Empty function clears it. */
void setLogTickSource(std::function<Tick()> fn);

/** Set the node whose handler is currently executing on this thread
 *  (kInvalidNode = none); fatal()/panic() report it. */
void setLogNode(NodeId node);

NodeId currentLogNode();

// -- Post-mortem dumpers (thread-local) -------------------------------------

/**
 * Register a dumper replayed to stderr when this thread dies in
 * fatal()/panic(). Returns a token for unregisterPostMortem().
 */
int registerPostMortem(std::function<void(std::ostream &)> fn);

void unregisterPostMortem(int token);

/** Replay this thread's registered dumpers onto @p os (also used to
 *  produce a dump without dying, e.g. on a record-only violation). */
void runPostMortems(std::ostream &os);

} // namespace flashsim

#endif // FLASHSIM_SIM_LOGGING_HH_
