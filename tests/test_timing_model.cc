/** @file Unit tests for the handler timing models. */

#include <gtest/gtest.h>

#include "magic/timing_model.hh"

namespace flashsim::magic
{
namespace
{

using protocol::DirectoryStore;
using protocol::DirHeader;
using protocol::HandlerId;
using protocol::HandlerPrograms;
using protocol::HandlerResult;
using protocol::Message;
using protocol::MsgType;

Message
msg(MsgType t, NodeId src, Addr addr, NodeId req, std::uint32_t aux = 0)
{
    Message m;
    m.type = t;
    m.src = src;
    m.dest = 0;
    m.requester = req;
    m.addr = addr;
    m.aux = aux;
    return m;
}

TEST(TableTimingModel, MatchesTable34)
{
    EXPECT_EQ(TableTimingModel::cost(HandlerId::ServeReadMemory, 0), 11u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::ServeWriteMemory, 0), 14u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::ServeWriteMemory, 5),
              14u + 5u * 13u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::FwdToHome, 0), 3u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::FwdHomeToDirty, 0), 18u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::RetrieveFromCache, 0),
              38u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::ReplyToProc, 0), 2u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::LocalWriteback, 0), 10u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::LocalHint, 0), 7u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::RemoteWriteback, 0), 8u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::RemoteHintOnly, 0), 17u);
    EXPECT_EQ(TableTimingModel::cost(HandlerId::RemoteHintNth, 2),
              23u + 28u);
}

TEST(TableTimingModel, OccupancyUsesResult)
{
    TableTimingModel m;
    HandlerResult res;
    res.id = HandlerId::ServeWriteMemory;
    res.costParam = 3;
    HandlerTiming t =
        m.occupancy(msg(MsgType::NetGetx, 1, 0, 1), res);
    EXPECT_EQ(t.occupancy, 14u + 39u);
    EXPECT_EQ(t.mdcMisses, 0u);
}

class PpTimingTest : public ::testing::Test
{
  protected:
    PpTimingTest()
        : programs(protocol::buildHandlerPrograms()),
          model(programs, dir, params)
    {}

    /** Run preHandler/occupancy for a message at home node 0. */
    HandlerTiming
    time(const Message &m, HandlerId id, bool cache_dirty = false)
    {
        model.preHandler(m, 0, 0, cache_dirty);
        HandlerResult res;
        res.id = id;
        res.cacheRetrieve = id == HandlerId::RetrieveFromCache;
        return model.occupancy(m, res);
    }

    DirectoryStore dir;
    MagicParams params;
    HandlerPrograms programs;
    PpTimingModel model;
};

TEST_F(PpTimingTest, ColdRunIncludesMdcAndMicPenalties)
{
    Message m = msg(MsgType::NetGet, 2, 0x2000, 2);
    HandlerTiming t = time(m, HandlerId::ServeReadMemory);
    EXPECT_TRUE(t.micColdMiss);
    EXPECT_GT(t.mdcMisses, 0u);
    EXPECT_GT(t.occupancy, params.micColdMiss);
}

TEST_F(PpTimingTest, WarmRunApproachesTable34)
{
    Message m = msg(MsgType::NetGet, 2, 0x2000, 2);
    time(m, HandlerId::ServeReadMemory); // warm MIC + MDC
    HandlerTiming t = time(m, HandlerId::ServeReadMemory);
    EXPECT_FALSE(t.micColdMiss);
    EXPECT_EQ(t.mdcMisses, 0u);
    // Table 3.4 says 11 cycles for a read-miss service; the emulated
    // handler must land in its neighborhood.
    EXPECT_GE(t.occupancy, 8u);
    EXPECT_LE(t.occupancy, 16u);
}

TEST_F(PpTimingTest, ShadowWritesDoNotTouchDirectory)
{
    Message m = msg(MsgType::NetGet, 2, 0x2000, 2);
    time(m, HandlerId::ServeReadMemory);
    // The PP program added a sharer in its shadow; the real directory
    // must be untouched (the C++ handler is authoritative).
    EXPECT_EQ(dir.countSharers(0x2000), 0);
    EXPECT_FALSE(dir.header(0x2000).dirty);
}

TEST_F(PpTimingTest, CacheRetrieveAddsCoordinationCycles)
{
    // A forwarded GET arriving at the dirty owner: the handler directs
    // the PI intervention ("retrieve data from processor cache",
    // Table 3.4: 38 cycles).
    Message m = msg(MsgType::NetFwdGet, 1, 0x2000, 2);
    time(m, HandlerId::RetrieveFromCache, true); // warm
    HandlerTiming t = time(m, HandlerId::RetrieveFromCache, true);
    EXPECT_GE(t.occupancy, 32u);
    EXPECT_LE(t.occupancy, 45u);
}

TEST_F(PpTimingTest, HintCostGrowsWithListPosition)
{
    // Hint for the node at position N walks N links (23 + 14N).
    auto hint_cost = [&](int n_ahead) {
        DirectoryStore d2;
        PpTimingModel m2(programs, d2, params);
        Addr line = 0x2000;
        d2.addSharer(line, 9); // the node we remove (ends up deepest)
        for (int i = 0; i < n_ahead; ++i)
            d2.addSharer(line, static_cast<NodeId>(i + 1));
        Message m = msg(MsgType::NetReplaceHint, 9, line, 9);
        m2.preHandler(m, 0, 0, false); // warm
        m2.preHandler(m, 0, 0, false);
        HandlerResult res;
        res.id = HandlerId::RemoteHintNth;
        return m2.occupancy(m, res).occupancy;
    };
    Cycles c0 = hint_cost(0);
    Cycles c2 = hint_cost(2);
    Cycles c5 = hint_cost(5);
    EXPECT_GT(c2, c0);
    EXPECT_GT(c5, c2);
    // Roughly linear growth.
    Cycles per_link = (c5 - c2) / 3;
    EXPECT_GE(per_link, 4u);
    EXPECT_LE(per_link, 20u);
}

TEST_F(PpTimingTest, StatsAccumulateAcrossRuns)
{
    Message m = msg(MsgType::NetGet, 2, 0x2000, 2);
    time(m, HandlerId::ServeReadMemory);
    time(m, HandlerId::ServeReadMemory);
    EXPECT_EQ(model.runStats().invocations, 2u);
    EXPECT_GT(model.runStats().pairs, 0u);
    EXPECT_GT(model.runStats().specialFraction(), 0.0);
}

TEST_F(PpTimingTest, GetxOccupancyScalesWithInvalidations)
{
    auto getx_cost = [&](int sharers) {
        DirectoryStore d2;
        PpTimingModel m2(programs, d2, params);
        Addr line = 0x2000;
        for (int i = 0; i < sharers; ++i)
            d2.addSharer(line, static_cast<NodeId>(i + 3));
        Message m = msg(MsgType::NetGetx, 2, line, 2);
        m2.preHandler(m, 0, 0, false);
        HandlerResult res;
        res.id = HandlerId::ServeWriteMemory;
        res.costParam = sharers;
        Cycles warm_cold = m2.occupancy(m, res).occupancy;
        (void)warm_cold;
        // Re-prime the directory (the shadow discarded the walk).
        m2.preHandler(m, 0, 0, false);
        return m2.occupancy(m, res).occupancy;
    };
    Cycles c1 = getx_cost(1);
    Cycles c4 = getx_cost(4);
    // Table 3.4: 10-15 extra cycles per invalidation.
    Cycles per_inval = (c4 - c1) / 3;
    EXPECT_GE(per_inval, 7u);
    EXPECT_LE(per_inval, 18u);
}

} // namespace
} // namespace flashsim::magic
