/**
 * @file
 * Deterministic PRNG for workload generators.
 *
 * Simulation results must be reproducible across platforms, so workloads
 * use this xorshift64* generator rather than std::mt19937 (whose
 * distribution implementations vary across standard libraries).
 */

#ifndef FLASHSIM_SIM_RANDOM_HH_
#define FLASHSIM_SIM_RANDOM_HH_

#include <cassert>
#include <cstdint>

namespace flashsim
{

/** xorshift64* pseudo-random generator with helper draws. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /**
     * Uniform integer in [0, bound). @p bound must be nonzero — with a
     * zero bound there is no value to return, and the old modulo
     * implementation hit undefined behaviour (integer division by
     * zero), so a zero bound from a shrunken workload parameter could
     * crash or return garbage depending on platform. Callers with
     * possibly-degenerate ranges must guard (see apps/os_workload.cc).
     *
     * Uses the widening-multiply (Lemire) reduction rather than
     * `next() % bound`: one multiply instead of a 64-bit division, no
     * modulo bias for bounds that don't divide 2^64 (the old reduction
     * skewed toward low values by up to bound/2^64), and still exactly
     * one next() draw per call, so seeded draw sequences keep their
     * draw counts and replay determinism.
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0 && "Rng::below requires a nonzero bound");
        const auto wide =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(wide >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace flashsim

#endif // FLASHSIM_SIM_RANDOM_HH_
