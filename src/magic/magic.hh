/**
 * @file
 * The MAGIC node controller model.
 *
 * All transactions in a FLASH node pass through MAGIC: requests from
 * the processor (PI), messages from the network (NI), and everything
 * the protocol generates locally. The model implements the control
 * macropipeline of Figure 2.2:
 *
 *   interface inbound -> incoming queue -> inbox (arbitration + jump
 *   table + speculative memory initiation) -> protocol processor ->
 *   outbox -> interface outbound
 *
 * with the data-transfer logic expressed as launch gates: a data-
 * carrying reply leaves as soon as both its header has cleared the
 * control pipeline and its data is staged (memory first-word time or
 * processor-cache retrieval time), which is what the multiported,
 * per-word-valid data buffers buy the real chip.
 *
 * The ideal machine (params.ideal) is the same pipeline with all
 * macropipeline stages at zero cycles and infinite queues.
 */

#ifndef FLASHSIM_MAGIC_MAGIC_HH_
#define FLASHSIM_MAGIC_MAGIC_HH_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "magic/data_buffer.hh"
#include "magic/jump_table.hh"
#include "magic/params.hh"
#include "magic/timing_model.hh"
#include "memsys/memory_controller.hh"
#include "protocol/directory.hh"
#include "protocol/handlers.hh"
#include "protocol/message.hh"
#include "protocol/pp_programs.hh"
#include "sim/event_queue.hh"
#include "sim/flat_table.hh"
#include "sim/stats.hh"

namespace flashsim::verify
{
class Sentinel;
}

namespace flashsim::magic
{

/** Callbacks wiring MAGIC to the rest of its node and the network. */
struct MagicHooks
{
    /** Deliver a Pi* message (data reply, nack) to the processor cache;
     *  called at the time the first 8 bytes are on the processor bus. */
    std::function<void(const protocol::Message &)> toProcessor;
    /** Hand a message to the network (transit charged by the network). */
    std::function<void(const protocol::Message &)> toNetwork;
    /** Hand a message to the network with an explicit future departure
     *  time (outbox completion), sparing the event that would otherwise
     *  only exist to call toNetwork at that time. */
    std::function<void(const protocol::Message &, Tick)> toNetworkAt;
    /** Probe: local processor cache holds the line dirty. */
    std::function<bool(Addr)> cacheHoldsDirty;
    /** Invalidate the line in the local processor cache. */
    std::function<void(Addr)> cacheInvalidate;
    /** Downgrade the local processor cache line to shared. */
    std::function<void(Addr)> cacheDowngrade;
    /** The processor cache is busy with a MAGIC-side operation until
     *  @p until (source of the "Cont" execution-time category). */
    std::function<void(Tick until)> cacheBusy;
    /** A message-passing block finished landing in local memory. */
    std::function<void(Addr base)> blockReceived;
    /** A block transfer this node sent was fully received. */
    std::function<void(Addr base)> blockAcked;
    /** A fetch&op this node issued completed (result arrived). */
    std::function<void(Addr addr)> fetchOpDone;
};

class Magic
{
  public:
    Magic(EventQueue &eq, NodeId self, const MagicParams &params,
          const protocol::AddressMap &map,
          const protocol::HandlerPrograms *programs, MagicHooks hooks);
    ~Magic();

    Magic(const Magic &) = delete;
    Magic &operator=(const Magic &) = delete;

    /** A processor request appears on the bus at MAGIC's pins (the
     *  miss-detect and bus-transit cycles are charged by the cache). */
    void fromProcessor(const protocol::Message &msg);

    /** fromProcessor as it will stand @p delay cycles from now, folded
     *  into one event: the request lands in the PI queue at
     *  now + delay + piInbound directly. Falls back to the two-stage
     *  path under an active fault injector, whose inbound-stall clamp
     *  must observe arrivals in order. */
    void fromProcessorAfter(const protocol::Message &msg, Cycles delay);

    /** A network message arrives at the NI pins. */
    void fromNetwork(const protocol::Message &msg);

    /**
     * Initiate an uncached block transfer (the message-passing
     * protocol): stream @p bytes starting at @p addr to @p dest. The
     * PP sets the transfer up and the data-transfer logic pipelines
     * one line-sized chunk per local memory read; the receiver's
     * handler deposits chunks straight into its memory and the final
     * chunk is acknowledged back (hooks.blockAcked).
     */
    void sendBlock(NodeId dest, Addr addr, std::uint32_t bytes);

    memsys::MemoryController &memory() { return mem_; }
    const memsys::MemoryController &memory() const { return mem_; }
    protocol::DirectoryStore &directory() { return dir_; }
    const MagicParams &params() const { return params_; }
    NodeId self() const { return self_; }

    /** The PP emulator timing model, if in use (Table 5.2 stats). */
    const PpTimingModel *ppModel() const { return ppModel_; }

    JumpTable &jumpTable() { return jumpTable_; }

    /** Attach the machine's verification sentinel (null = none). MAGIC
     *  reports handler completions to it and asks its injector for
     *  perturbations; the hot path costs one null check when absent. */
    void attachSentinel(verify::Sentinel *s) { sentinel_ = s; }
    verify::Sentinel *sentinel() const { return sentinel_; }

    // -- Statistics ---------------------------------------------------------
    Occupancy ppOcc;        ///< protocol processor busy time
    Counter invocations = 0;    ///< handler invocations
    Counter specIssued = 0;     ///< speculative memory reads launched
    Counter specUseless = 0;    ///< ... whose data was not needed
    Counter nacksSent = 0;
    Counter nacksReceived = 0;
    Counter msgsIn = 0;
    Counter micColdMisses = 0;
    Counter queueStallCycles = 0; ///< cycles messages waited for the PP
    Counter blockChunksSent = 0;
    Counter blockChunksReceived = 0;
    Counter blocksCompleted = 0;  ///< transfers fully received here
    Counter reqDropsInjected = 0; ///< inbound requests killed at the NI

    /** Read-miss service classification (Tables 3.3 / 4.1), counted at
     *  the home node when the servicing handler runs. */
    struct MissClasses
    {
        Counter localClean = 0;
        Counter localDirtyRemote = 0;
        Counter remoteClean = 0;
        Counter remoteDirtyHome = 0;
        Counter remoteDirtyRemote = 0;

        Counter
        total() const
        {
            return localClean + localDirtyRemote + remoteClean +
                   remoteDirtyHome + remoteDirtyRemote;
        }
    };
    MissClasses readClasses;

    /** Per-handler invocation counts and cycles (Table 3.4). */
    std::array<Counter, protocol::kNumHandlerIds> handlerCount{};
    std::array<Counter, protocol::kNumHandlerIds> handlerCycles{};

    /**
     * Per-page remote-request counts (params.monitorPages): the
     * protocol-processor-side performance monitoring the paper names as
     * a key advantage of flexibility (Sections 1 and 4.4), usable to
     * drive page migration policies. Keyed by page index; stored in an
     * open-addressing flat table so the handler-path increment is an
     * array probe, not a hash-map node walk.
     */
    FlatCounterMap pageRemoteAccesses;

  private:
    struct Pending
    {
        protocol::Message msg;
        Tick enqueued;
        /** The inbox issued the speculative memory read on arrival
         *  (macropipeline: this overlaps queued messages' memory time
         *  with the PP's processing of earlier messages). */
        bool specIssued = false;
        Tick specReady = 0;
    };

    void enqueue(std::deque<Pending> &q, const protocol::Message &msg);
    void tryDispatch();
    void runHandler(const Pending &pending);
    void launch(const protocol::Message &msg, Tick pp_end, Tick gate);
    /** Injector-forced NACK of a request at the home node; bypasses the
     *  protocol engine and the PP timing model entirely. */
    void injectedNack(const Pending &pending, bool release_buffer);
    /** Inbound arrival time with injected stall, FIFO-clamped per
     *  queue so no message overtakes an earlier one. */
    Tick inboundArrival(Cycles base, Tick &last);

    EventQueue &eq_;
    NodeId self_;
    MagicParams params_;
    const protocol::AddressMap &map_;
    MagicHooks hooks_;

    protocol::DirectoryStore dir_;
    memsys::MemoryController mem_;
    JumpTable jumpTable_;
    DataBufferPool buffers_;

    /** CacheProbe adapter over the hook. */
    class Probe : public protocol::CacheProbe
    {
      public:
        explicit Probe(const Magic &m) : m_(m) {}
        bool
        holdsDirty(Addr addr) const override
        {
            return m_.hooks_.cacheHoldsDirty(addr);
        }

      private:
        const Magic &m_;
    };
    Probe probe_;
    protocol::ProtocolEngine engine_;

    std::unique_ptr<HandlerTimingModel> timing_;
    PpTimingModel *ppModel_ = nullptr; ///< non-null iff usePpEmulator

    std::deque<Pending> piQueue_;
    std::deque<Pending> niQueue_;
    bool ppBusy_ = false;
    bool pickPiFirst_ = true;

    verify::Sentinel *sentinel_ = nullptr;
    /** Last injector-stalled arrival per inbound queue (FIFO clamps). */
    Tick lastPiArrival_ = 0;
    Tick lastNiArrival_ = 0;
};

} // namespace flashsim::magic

#endif // FLASHSIM_MAGIC_MAGIC_HH_
