file(REMOVE_RECURSE
  "CMakeFiles/bench_sec_4_5.dir/bench_sec_4_5.cc.o"
  "CMakeFiles/bench_sec_4_5.dir/bench_sec_4_5.cc.o.d"
  "bench_sec_4_5"
  "bench_sec_4_5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec_4_5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
