/**
 * @file
 * The event-driven simulation core.
 *
 * FlashLite (the paper's simulator) is a multi-threaded event-driven
 * memory-system simulator. Here every hardware unit schedules closures on
 * a single global-order EventQueue; ties are broken by insertion order so
 * simulation is fully deterministic.
 */

#ifndef FLASHSIM_SIM_EVENT_QUEUE_HH_
#define FLASHSIM_SIM_EVENT_QUEUE_HH_

#include <array>
#include <cstdint>
#include <vector>

#include "sim/inline_callback.hh"
#include "sim/types.hh"

namespace flashsim
{

/**
 * Deterministic discrete-event queue.
 *
 * Events are arbitrary callables. Two events scheduled for the same tick
 * run in the order they were scheduled (FIFO), which keeps hardware
 * arbitration deterministic across runs.
 *
 * Storage is two-level, sized for the simulator's delay profile (almost
 * every latency is a handful of cycles, far-future events are rare):
 *
 *  - a power-of-two ring of per-tick buckets covering the next
 *    kRingSize ticks. Each bucket is an append-only FIFO vector, so
 *    schedule() into the window is push_back into recycled storage —
 *    O(1), allocation-free in steady state, and same-tick FIFO order is
 *    the storage order itself;
 *  - a binary min-heap holding the overflow (events >= kRingSize ticks
 *    out). When the clock reaches an overflow event's tick it is
 *    promoted into that tick's bucket, merged by sequence number so the
 *    global (tick, seq) execution order is identical to a single heap.
 *
 * Callbacks are InlineCallback: stored inline in the event, with a
 * compile-time size cap instead of std::function's silent heap fallback
 * — schedule() never allocates once bucket capacity has warmed up.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Ticks covered by the near-term bucket ring (power of two). */
    static constexpr std::size_t kRingSize = 1024;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time in system clock cycles. */
    Tick now() const { return _now; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void
    schedule(Cycles delay, Callback cb)
    {
        scheduleAt(_now + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute time @p when (must be >= now()). */
    void scheduleAt(Tick when, Callback cb);

    /** True when no events remain. */
    bool empty() const { return ringCount_ == 0 && overflow_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return ringCount_ + overflow_.size(); }

    /**
     * Run events until the queue drains or @p limit ticks have elapsed.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = ~Tick{0});

    /** Execute exactly one event, if any; returns true if one ran. */
    bool step();

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * One tick's events. head indexes the next unexecuted event;
     * entries before it have already run (their storage is recycled
     * when the bucket drains). All live entries share the same tick:
     * the window [now, now + kRingSize) maps each ring slot to exactly
     * one tick, and a slot is fully drained before the window wraps
     * back onto it.
     */
    struct Bucket
    {
        std::vector<Event> events;
        std::size_t head = 0;
    };

    static constexpr std::size_t kRingMask = kRingSize - 1;
    static constexpr std::size_t kBitWords = kRingSize / 64;
    /** Sentinel for "no pending event". */
    static constexpr Tick kNever = ~Tick{0};

    Bucket &bucketFor(Tick when) { return ring_[when & kRingMask]; }

    void markLive(Tick when);
    void clearLive(Tick when);

    /** Recycle a fully executed bucket's storage before reuse. */
    static void
    freshen(Bucket &b)
    {
        if (b.head != 0 && b.head == b.events.size()) {
            b.events.clear();
            b.head = 0;
        }
    }

    /** Earliest pending tick in the ring, or kNever. */
    Tick nextRingTick() const;
    /** Earliest pending tick across both levels, or kNever. */
    Tick nextTick() const;
    /** Move overflow events for tick @p t into its bucket, seq-merged. */
    void promoteOverflow(Tick t);

    Tick _now = 0;
    std::uint64_t nextSeq_ = 0;

    std::array<Bucket, kRingSize> ring_{};
    /** Occupancy bitmap: bit i set iff ring_[i] has unexecuted events. */
    std::array<std::uint64_t, kBitWords> live_{};
    std::size_t ringCount_ = 0;

    /** Overflow min-heap (std::push_heap/std::pop_heap over a vector,
     *  ordered by Later so front() is the earliest event). */
    std::vector<Event> overflow_;
};

} // namespace flashsim

#endif // FLASHSIM_SIM_EVENT_QUEUE_HH_
