# Empty dependencies file for flashsim_tests.
# This may be replaced when dependencies are built.
