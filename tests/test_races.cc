/**
 * @file
 * Directed protocol race tests: each constructs a timing window where
 * two transactions collide and asserts the NACK/retry (or
 * inval-on-fill) machinery converges to a coherent state. These are the
 * corner cases Section 5.3 alludes to with "all corner cases, deadlock
 * avoidance checks, and other complications".
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace flashsim::machine
{
namespace
{

using cpu::Cache;

/** Sweep a relative delay so the racing request lands at many points
 *  inside the victim transaction's window. */
class RaceDelayTest : public ::testing::TestWithParam<int>
{};

TEST_P(RaceDelayTest, WritebackVsGetConverges)
{
    // Node 1 dirties a line and evicts it (writeback); node 0 reads the
    // line while the writeback is in flight. Depending on the delay the
    // GET hits the dirty-owner window (forward + NACK + retry) or the
    // post-writeback window (clean service).
    MachineConfig cfg = MachineConfig::flash(2);
    cfg.cache.sizeBytes = 4096; // tiny: eviction is easy to force
    Machine m(cfg);
    // Two lines mapping to the same set force the eviction.
    std::uint32_t sets = 4096 / (2 * 128);
    Addr a = m.alloc(kLineSize, 0);
    Addr conflict1 = m.alloc(sets * kLineSize, 0);
    Addr conflict2 = m.alloc(sets * kLineSize, 0);
    Addr c1 = conflict1 + (a - conflict1) % (sets * kLineSize);
    (void)c1;
    const int delay = GetParam();

    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1) {
            co_await env.write(a);
            // Touch two conflicting lines: evicts the dirty line.
            co_await env.read(conflict1);
            co_await env.read(conflict2);
        } else {
            co_await env.busy(200 + 4 * static_cast<std::uint64_t>(delay));
            co_await env.read(a);
        }
    });
    m.drain();
    // Whatever interleaving happened (node 0's copy may legitimately
    // have been invalidated if the write landed after its read), the
    // directory must agree with the caches.
    const auto &dir = m.node(0).magic().directory();
    auto h = dir.header(a);
    if (h.dirty) {
        EXPECT_EQ(m.node(static_cast<int>(h.owner)).cache().state(a),
                  Cache::State::Exclusive);
    }
    for (int i = 0; i < 2; ++i) {
        Cache::State st = m.node(i).cache().state(a);
        if (st == Cache::State::Shared) {
            EXPECT_TRUE(dir.isSharer(a, static_cast<NodeId>(i)))
                << "node " << i;
        }
        if (st == Cache::State::Exclusive) {
            EXPECT_EQ(h.owner, static_cast<NodeId>(i));
        }
    }
}

TEST_P(RaceDelayTest, TwoWritersConverge)
{
    MachineConfig cfg = MachineConfig::flash(3);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    const int delay = GetParam();
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1) {
            co_await env.write(a);
        } else if (env.id() == 2) {
            co_await env.busy(static_cast<std::uint64_t>(delay) * 8);
            co_await env.write(a);
        }
    });
    m.drain();
    const auto &dir = m.node(0).magic().directory();
    auto h = dir.header(a);
    ASSERT_TRUE(h.dirty);
    int holders = 0;
    for (int i = 0; i < 3; ++i)
        if (m.node(i).cache().state(a) == Cache::State::Exclusive) {
            ++holders;
            EXPECT_EQ(h.owner, static_cast<NodeId>(i));
        }
    EXPECT_EQ(holders, 1);
}

TEST_P(RaceDelayTest, ReaderVsWriterConverges)
{
    // Node 1 reads (GET) while node 2 writes (GETX) the same line: the
    // inval may overtake the read reply (inval-on-fill), the GET may be
    // forwarded to a not-yet-ready owner (NACK/retry), etc.
    MachineConfig cfg = MachineConfig::flash(3);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    const int delay = GetParam();
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1) {
            co_await env.busy(static_cast<std::uint64_t>(delay) * 4);
            co_await env.read(a);
        } else if (env.id() == 2) {
            co_await env.write(a);
        }
    });
    m.drain();
    const auto &dir = m.node(0).magic().directory();
    auto h = dir.header(a);
    // Node 2 must own the line unless node 1's later read downgraded it
    // to shared; either way states must be coherent.
    for (int i = 0; i < 3; ++i) {
        Cache::State st = m.node(i).cache().state(a);
        if (st == Cache::State::Exclusive) {
            EXPECT_TRUE(h.dirty);
            EXPECT_EQ(h.owner, static_cast<NodeId>(i));
        }
        if (st == Cache::State::Shared) {
            EXPECT_FALSE(h.dirty);
            EXPECT_TRUE(dir.isSharer(a, static_cast<NodeId>(i)));
        }
    }
}

TEST_P(RaceDelayTest, ThreeHopChainsConverge)
{
    // The line migrates 1 -> 2 -> 3 as dirty data while node 0 (its
    // home) reads it in the middle of the chain.
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    const int delay = GetParam();
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        switch (env.id()) {
          case 1:
            co_await env.write(a);
            break;
          case 2:
            co_await env.busy(600);
            co_await env.write(a);
            break;
          case 3:
            co_await env.busy(1200);
            co_await env.write(a);
            break;
          case 0:
            co_await env.busy(400 + static_cast<std::uint64_t>(delay) * 16);
            co_await env.read(a);
            break;
        }
    });
    m.drain();
    const auto &dir = m.node(0).magic().directory();
    auto h = dir.header(a);
    int exclusive = 0;
    for (int i = 0; i < 4; ++i) {
        Cache::State st = m.node(i).cache().state(a);
        if (st == Cache::State::Exclusive)
            ++exclusive;
        if (st == Cache::State::Shared) {
            EXPECT_TRUE(dir.isSharer(a, static_cast<NodeId>(i)))
                << "node " << i;
        }
    }
    if (h.dirty)
        EXPECT_EQ(exclusive, 1);
    else
        EXPECT_EQ(exclusive, 0);
}

INSTANTIATE_TEST_SUITE_P(Delays, RaceDelayTest,
                         ::testing::Range(0, 40, 3));

// ---------------------------------------------------------------------------
// Injector-driven races: the fault injector widens the same windows the
// delay sweep above probes (late writebacks, mid-flight interventions,
// NACK retries) and the coherence oracle checks every handler along the
// way, so convergence is asserted by the golden invariants instead of
// by spot-checking final states.

/** Race config with the oracle watching and seeded injection on. */
machine::MachineConfig
injectedRaceConfig(int procs, std::uint64_t seed)
{
    MachineConfig cfg = MachineConfig::flash(procs);
    cfg.magic.verify.oracle = true;
    cfg.magic.verify.watchdog = true;
    cfg.magic.verify.haltOnViolation = false;
    cfg.magic.verify.haltOnTrip = false;
    cfg.magic.verify.fault.enabled = true;
    cfg.magic.verify.fault.seed = seed;
    cfg.magic.verify.fault.meshJitter = 16;
    cfg.magic.verify.fault.extraNackProb = 0.2;
    cfg.magic.verify.fault.inboundStall = 6;
    return cfg;
}

/** Sweep the injector seed: each seed produces a different perturbation
 *  schedule, landing the race at different points in the window. */
class InjectedRaceTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(InjectedRaceTest, WritebackVsGetOracleClean)
{
    // The PR-seed writeback race, but with jitter/NACK/stall injection
    // smearing the writeback and the racing GET across the window.
    MachineConfig cfg = injectedRaceConfig(2, GetParam());
    cfg.cache.sizeBytes = 4096;
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    std::uint32_t sets = 4096 / (2 * 128);
    Addr conflict1 = m.alloc(sets * kLineSize, 0);
    Addr conflict2 = m.alloc(sets * kLineSize, 0);
    (void)conflict2;

    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1) {
            co_await env.write(a);
            co_await env.read(conflict1);
            co_await env.read(conflict2);
        } else {
            co_await env.busy(250);
            co_await env.read(a);
        }
    });
    m.drain();

    EXPECT_EQ(m.sentinel()->violations(), 0u);
    EXPECT_EQ(m.sentinel()->trips(), 0u);
    const auto &dir = m.node(0).magic().directory();
    auto h = dir.header(a);
    if (h.dirty) {
        EXPECT_EQ(m.node(static_cast<int>(h.owner)).cache().state(a),
                  Cache::State::Exclusive);
    }
}

TEST_P(InjectedRaceTest, InterventionChainOracleClean)
{
    // Dirty line migrating 1 -> 2 -> 3 with the home reading mid-chain:
    // every 3-hop intervention (forward, SWB, ownership transfer) runs
    // under injection with the oracle checking each hop.
    MachineConfig cfg = injectedRaceConfig(4, GetParam());
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        switch (env.id()) {
          case 1:
            co_await env.write(a);
            break;
          case 2:
            co_await env.busy(500);
            co_await env.write(a);
            break;
          case 3:
            co_await env.busy(1000);
            co_await env.write(a);
            break;
          case 0:
            co_await env.busy(750);
            co_await env.read(a);
            break;
        }
    });
    m.drain();

    EXPECT_EQ(m.sentinel()->violations(), 0u);
    EXPECT_EQ(m.sentinel()->trips(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InjectedRaceTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(RaceTest, NackStormConvergesOracleClean)
{
    // Half of all home GET/GETX requests are NACKed outright on top of
    // three writers fighting for one line: the retry machinery must
    // still serialise the writers, make forward progress (no watchdog
    // trip) and keep the directory golden throughout.
    MachineConfig cfg = injectedRaceConfig(4, 3);
    cfg.magic.verify.fault.extraNackProb = 0.5;
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0)
            co_return;
        for (int it = 0; it < 8; ++it) {
            co_await env.write(a);
            co_await env.busy(50);
            co_await env.read(a);
        }
    });
    m.drain();

    EXPECT_GT(m.sentinel()->injectorStats().nacksInjected(), 0u);
    EXPECT_EQ(m.sentinel()->violations(), 0u);
    EXPECT_EQ(m.sentinel()->trips(), 0u);
    const auto &dir = m.node(0).magic().directory();
    auto h = dir.header(a);
    int holders = 0;
    for (int i = 0; i < 4; ++i)
        if (m.node(i).cache().state(a) == Cache::State::Exclusive) {
            ++holders;
            EXPECT_TRUE(h.dirty);
            EXPECT_EQ(h.owner, static_cast<NodeId>(i));
        }
    EXPECT_LE(holders, 1);
}

TEST(RaceTest, UpgradeRace)
{
    // Both sharers upgrade simultaneously; exactly one wins first and
    // the other is served through the forward path.
    MachineConfig cfg = MachineConfig::flash(3);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0)
            co_return;
        co_await env.read(a); // both become sharers
        co_await env.busy(40000);
        co_await env.write(a); // simultaneous upgrade
        co_await env.busy(40000);
        co_await env.read(a); // make sure we still converge for reads
    });
    m.drain();
    const auto &dir = m.node(0).magic().directory();
    auto h = dir.header(a);
    // After the dust settles both re-read: line is shared by 1 and 2,
    // or one of them re-dirtied it — either must be coherent.
    if (!h.dirty) {
        EXPECT_TRUE(dir.isSharer(a, 1) || dir.isSharer(a, 2));
    }
}

} // namespace
} // namespace flashsim::machine
