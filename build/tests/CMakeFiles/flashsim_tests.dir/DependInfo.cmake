
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/flashsim_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/flashsim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_conformance.cc" "tests/CMakeFiles/flashsim_tests.dir/test_conformance.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_conformance.cc.o.d"
  "/root/repo/tests/test_directory.cc" "tests/CMakeFiles/flashsim_tests.dir/test_directory.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_directory.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/flashsim_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_fetchop.cc" "tests/CMakeFiles/flashsim_tests.dir/test_fetchop.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_fetchop.cc.o.d"
  "/root/repo/tests/test_handlers.cc" "tests/CMakeFiles/flashsim_tests.dir/test_handlers.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_handlers.cc.o.d"
  "/root/repo/tests/test_latency.cc" "tests/CMakeFiles/flashsim_tests.dir/test_latency.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_latency.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/flashsim_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_magic.cc" "tests/CMakeFiles/flashsim_tests.dir/test_magic.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_magic.cc.o.d"
  "/root/repo/tests/test_magic_cache.cc" "tests/CMakeFiles/flashsim_tests.dir/test_magic_cache.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_magic_cache.cc.o.d"
  "/root/repo/tests/test_memory_controller.cc" "tests/CMakeFiles/flashsim_tests.dir/test_memory_controller.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_memory_controller.cc.o.d"
  "/root/repo/tests/test_monitoring.cc" "tests/CMakeFiles/flashsim_tests.dir/test_monitoring.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_monitoring.cc.o.d"
  "/root/repo/tests/test_msgpass.cc" "tests/CMakeFiles/flashsim_tests.dir/test_msgpass.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_msgpass.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/flashsim_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_ppc.cc" "tests/CMakeFiles/flashsim_tests.dir/test_ppc.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_ppc.cc.o.d"
  "/root/repo/tests/test_ppsim.cc" "tests/CMakeFiles/flashsim_tests.dir/test_ppsim.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_ppsim.cc.o.d"
  "/root/repo/tests/test_races.cc" "tests/CMakeFiles/flashsim_tests.dir/test_races.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_races.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/flashsim_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/flashsim_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_tango.cc" "tests/CMakeFiles/flashsim_tests.dir/test_tango.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_tango.cc.o.d"
  "/root/repo/tests/test_timing_model.cc" "tests/CMakeFiles/flashsim_tests.dir/test_timing_model.cc.o" "gcc" "tests/CMakeFiles/flashsim_tests.dir/test_timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flashsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
