/**
 * @file
 * The MAGIC protocol processor (PP) instruction set.
 *
 * The PP is a 64-bit dual-issue core based on DLX, extended (Section 5.3
 * of the paper) with:
 *   - find-first-set-bit (Ffs)
 *   - branch on bit set / clear (Bbs / Bbc)
 *   - general ALU field-immediate instructions whose immediate is a run of
 *     consecutive ones (Orfi / Andfi, the latter clearing the field)
 *   - bitfield insert / extract (Ins / Ext)
 *
 * The PP is statically scheduled: instruction pairs must be free of
 * intra-pair dependencies and loads have a one-pair load-delay before
 * their result may be used. The ppc scheduler enforces both; the emulator
 * assumes correctly scheduled code, exactly like the real PP (which has
 * no interlock hardware).
 */

#ifndef FLASHSIM_PPISA_INSTRUCTION_HH_
#define FLASHSIM_PPISA_INSTRUCTION_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace flashsim::ppisa
{

/** Number of general-purpose PP registers. r0 is hardwired to zero. */
inline constexpr int kNumRegs = 32;

/** PP opcodes. */
enum class Op : std::uint8_t
{
    Nop,
    // ALU register-register
    Add, Sub, And, Or, Xor, Sllv, Srlv, Slt, Sltu,
    // ALU register-immediate
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
    // Memory (8-byte accesses through the MAGIC data cache)
    Ld, Sd,
    // Control
    Beq, Bne, J,
    // Handler terminator (return to inbox dispatch)
    Halt,
    // --- FLASH special extensions ---
    Ffs,   ///< rd = index of lowest set bit in rs (64 if rs == 0)
    Bbs,   ///< branch to target if bit 'bit' of rs is set
    Bbc,   ///< branch to target if bit 'bit' of rs is clear
    Ext,   ///< rd = (rs >> lo) & mask(width)
    Ins,   ///< rd = rd with bits [lo, lo+width) replaced by low bits of rs
    Orfi,  ///< rd = rs | fieldMask(lo, width)
    Andfi, ///< rd = rs & ~fieldMask(lo, width)
    // --- MAGIC I/O operations (outbox / data-transfer control) ---
    Send,  ///< launch outgoing message: type=imm, dest=rs, addr=rt
};

/** Number of opcodes (Send is the last enumerator). */
inline constexpr int kNumOps = static_cast<int>(Op::Send) + 1;

/** A single PP instruction (one issue slot). */
struct Instr
{
    Op op = Op::Nop;
    std::uint8_t rd = 0;  ///< destination register
    std::uint8_t rs = 0;  ///< first source register
    std::uint8_t rt = 0;  ///< second source register
    std::int64_t imm = 0; ///< immediate / branch target (pair index) / msg type
    std::uint8_t lo = 0;  ///< bitfield low position (Ext/Ins/Orfi/Andfi) or
                          ///< bit number (Bbs/Bbc)
    std::uint8_t width = 0; ///< bitfield width

    bool isBranch() const;
    bool isLoad() const { return op == Op::Ld; }
    bool isStore() const { return op == Op::Sd; }
    bool isNop() const { return op == Op::Nop; }
    /** True for the FLASH ISA extensions (Table 5.3 instructions). */
    bool isSpecial() const;
    /** True for instructions counted as "ALU or branch" in Table 5.2. */
    bool isAluOrBranch() const;
    /** Register written by this instruction, or -1. */
    int destReg() const;
    /** Registers read by this instruction. */
    std::vector<int> srcRegs() const;

    std::string toString() const;
};

/** A statically scheduled dual-issue pair; executes in one PP cycle. */
struct InstrPair
{
    Instr a;
    Instr b;
};

/** Bit mask with @p width ones starting at bit @p lo. */
constexpr std::uint64_t
fieldMask(unsigned lo, unsigned width)
{
    std::uint64_t ones =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return ones << lo;
}

/** Human-readable opcode name. */
const char *opName(Op op);

} // namespace flashsim::ppisa

#endif // FLASHSIM_PPISA_INSTRUCTION_HH_
