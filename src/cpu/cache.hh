/**
 * @file
 * The compute processor's secondary cache.
 *
 * Two-way set associative, 128-byte lines, up to 4 outstanding misses,
 * critical-word-first fills (Section 3.2). Reads are blocking; writes
 * are non-blocking and merge into an outstanding miss to the same line,
 * stalling only on an index conflict or when the MSHRs are exhausted.
 *
 * The processor implements its own cache control, so MAGIC reaches in
 * through explicit operations (invalidate / downgrade / retrieve) that
 * occupy the cache and contend with the processor ("Cont" time).
 */

#ifndef FLASHSIM_CPU_CACHE_HH_
#define FLASHSIM_CPU_CACHE_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "magic/magic.hh"
#include "protocol/message.hh"
#include "sim/event_queue.hh"
#include "sim/inline_callback.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flashsim::cpu
{

struct CacheParams
{
    std::uint32_t sizeBytes = 1u << 20; ///< 1 MB default
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 128;
    int mshrs = 4; ///< outstanding misses
};

class Cache
{
  public:
    /** Inline-only callable: miss continuations fire once per fill, on
     *  the hottest path in the machine — no heap fallback allowed. */
    using Callback = InlineCallback;

    enum class State : std::uint8_t { Invalid, Shared, Exclusive };

    enum class ReadOutcome { Hit, Miss, MshrFull };
    enum class WriteOutcome { Done, Queued, MshrFull, Conflict };

    Cache(EventQueue &eq, NodeId self, const CacheParams &params,
          magic::Magic &magic);

    // -- Processor side (call at the processor's current time) -------------
    /** Earliest time the processor can use the cache (MAGIC ops). */
    Tick freeAt() const { return busyUntil_; }

    /**
     * Read access. Hit: complete. Miss: @p on_fill fires when the first
     * 8 bytes arrive. MshrFull: retry after onMshrFree.
     */
    ReadOutcome read(Addr addr, Callback on_fill);

    /**
     * Write access. Done: line exclusive, proceed. Queued: request or
     * merge launched, proceed (non-blocking write). Conflict/MshrFull:
     * the processor must stall; retry after onMshrFree.
     */
    WriteOutcome write(Addr addr);

    /** One-shot callback the next time any MSHR completes. */
    void onMshrFree(Callback cb);

    // -- MAGIC side ----------------------------------------------------------
    /** Deliver a PiPut / PiPutx / NetNack from MAGIC. */
    void deliver(const protocol::Message &msg);
    bool holdsDirty(Addr addr) const;
    void invalidate(Addr addr);
    void downgrade(Addr addr);
    /** A MAGIC-directed operation occupies the cache until @p until. */
    void busyUntil(Tick until);

    State state(Addr addr) const;

    // -- Statistics -----------------------------------------------------------
    Counter reads = 0;
    Counter writes = 0;
    /** References implied by compute time (busy instructions include
     *  loads/stores that hit in the primary cache and are not simulated
     *  individually); they enter the miss-rate denominator like the
     *  paper's full reference stream does. */
    Counter backgroundHits = 0;
    Counter readMisses = 0;
    Counter writeMisses = 0; ///< including upgrades
    Counter writebacks = 0;
    Counter replaceHints = 0;
    Counter invalsReceived = 0;
    Counter nackRetries = 0;
    Counter timeoutRetries = 0; ///< transaction-timeout re-issues
    /** Fills that arrived after their transaction was retired (late
     *  replies to a request the timeout path already re-issued or gave
     *  up on); installed benignly instead of panicking. Only possible
     *  when txnRetryTimeout is enabled. */
    Counter lateFills = 0;
    Counter degradedTxns = 0; ///< retries exhausted; completed degraded
    Distribution missLatency; ///< read-miss service time (cycles)

    /** One transaction that exhausted its retry budget. */
    struct DegradedTxn
    {
        Addr line;
        std::uint32_t retries;
    };
    std::vector<DegradedTxn> degradedLog;

    /** True while completeMshr runs for a budget-exhausted transaction
     *  (the processor's fill hooks use this to count degraded resumes). */
    bool completingDegraded() const { return completingDegraded_; }

    double
    missRate() const
    {
        return ratio(static_cast<double>(readMisses + writeMisses),
                     static_cast<double>(reads + writes +
                                         backgroundHits));
    }

  private:
    /** Tag/LRU metadata of one way. Kept separate from the 1-byte
     *  state array so constructing a cache only zeroes states_ (8 KB)
     *  instead of value-initializing 24 bytes per way (~200 KB for the
     *  default 1 MB cache — a dominant cost when a machine is built per
     *  benchmark iteration). An entry is meaningful only while its
     *  state is not Invalid; installLine writes it before validating. */
    struct Way
    {
        Addr tag;
        std::uint64_t lru;
    };

    struct Mshr
    {
        bool valid = false;
        Addr line = 0; ///< line base address
        protocol::MsgType sentType = protocol::MsgType::PiGet;
        bool needsUpgrade = false; ///< read fill must be followed by GETX
        /** An invalidation raced ahead of our read reply (it is not
         *  gated on memory data, the reply is): the fill satisfies the
         *  blocked read with its critical word but the line must not
         *  stay resident. */
        bool invalOnFill = false;
        /** Consecutive NACKs for this miss (exponential backoff). */
        std::uint32_t nackCount = 0;
        /** Transaction-timeout re-issues so far (capped by the retry
         *  budget; orthogonal to nackCount — a NACK is a live reply,
         *  a timeout means the request died outright). */
        std::uint32_t timeoutRetries = 0;
        Tick issued = 0;
        /** Armed iff txnRetryTimeout != 0 and the miss is outstanding. */
        EventQueue::TimerId timeout{};
        std::vector<Callback> readWaiters;
    };

    /** Index of @p addr's way, or -1 when not resident. */
    std::int32_t findWay(Addr addr) const;
    Mshr *findMshr(Addr line);
    Mshr *allocMshr();
    std::uint32_t setIndex(Addr addr) const;
    void sendRequest(protocol::MsgType t, Addr line, bool retry);
    void fill(const protocol::Message &msg);
    void installLine(Addr line, State st);
    void completeMshr(Mshr &m);
    /** Arm (or re-arm) @p m's transaction timeout at the base interval
     *  shifted by its retry count; no-op when timeouts are disabled. */
    void armTxnTimeout(Mshr &m);
    /** The transaction timeout fired for @p line: re-issue the request
     *  with backoff, or complete degraded once the budget is spent. */
    void onTxnTimeout(Addr line);

    EventQueue &eq_;
    NodeId self_;
    CacheParams p_;
    magic::Magic &magic_;

    std::uint32_t numSets_;
    std::uint32_t lineShift_ = 0; ///< log2(lineBytes)
    std::uint32_t setShift_ = 0;  ///< log2(numSets_)
    std::uint64_t lruClock_ = 0;
    std::vector<State> states_; ///< per-way state; Invalid = 0
    std::unique_ptr<Way[]> ways_; ///< valid iff states_[i] != Invalid
    std::vector<Mshr> mshrs_;
    Tick busyUntil_ = 0;
    bool completingDegraded_ = false;
    std::vector<Callback> mshrFreeWaiters_;
    /** Scratch the completed MSHR's waiter list is swapped into before
     *  running (callbacks may re-enter the cache); the swap hands the
     *  scratch's spare capacity back, so steady state never allocates. */
    std::vector<Callback> fillScratch_;
};

} // namespace flashsim::cpu

#endif // FLASHSIM_CPU_CACHE_HH_
