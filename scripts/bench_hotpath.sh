#!/usr/bin/env sh
# Regenerate BENCH_hotpath.json, the tracked hot-path microbenchmark
# record (event core, PP dispatch, whole-node miss round-trip).
#
# Usage: scripts/bench_hotpath.sh [build-dir] [extra benchmark args...]
# Runs the default-preset bench_hotpath binary and writes the JSON to
# the repository root so perf regressions show up in review diffs.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bench="$build_dir/bench/bench_hotpath"
if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build_dir -j)" >&2
    exit 1
fi

# Old-style min_time flag (no unit suffix): the baked-in google-benchmark
# predates the "0.2s" syntax.
"$bench" \
    --benchmark_min_time=0.2 \
    --benchmark_out="$repo_root/BENCH_hotpath.json" \
    --benchmark_out_format=json \
    "$@"

# Stamp the host shape into the record: the shard-scaling benches
# (BM_Sharded*/N) only mean anything when the recording host had >= N
# cores, and scripts/bench_gate.py skips them otherwise.
python3 - "$repo_root/BENCH_hotpath.json" <<'EOF'
import json, os, socket, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
doc["bench_host"] = {
    "cores": os.cpu_count() or 0,
    "host": socket.gethostname(),
}
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF

echo "wrote $repo_root/BENCH_hotpath.json" >&2
