# Empty compiler generated dependencies file for flashsim.
# This may be replaced when dependencies are built.
