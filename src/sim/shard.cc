#include "sim/shard.hh"

#include <algorithm>
#include <thread>

#include "sim/logging.hh"

namespace flashsim
{

namespace
{

/** Bounded spin before yielding the core: on a loaded host the waited-
 *  on shard may well need this CPU to make progress. */
void
backoff(unsigned &spins)
{
    if (++spins < 64) {
        cpuRelax();
        return;
    }
    std::this_thread::yield();
}

} // namespace

int
resolveShards(int requested, int num_nodes)
{
    if (requested <= 1)
        return 1;
    return std::max(1, std::min({requested, num_nodes, kMaxShards}));
}

void
SyncArbiter::init(std::vector<EventQueue *> eqs, int num_nodes)
{
    shards_ = static_cast<int>(eqs.size());
    per_.clear();
    for (EventQueue *eq : eqs) {
        auto p = std::make_unique<PerShard>();
        p->eq = eq;
        per_.push_back(std::move(p));
    }
    nodeSeq_.assign(static_cast<std::size_t>(num_nodes), 0);
    execTick_.store(EventQueue::kNever, std::memory_order_relaxed);
    parked_.assign(static_cast<std::size_t>(shards_), EventQueue::kNever);
    phaseDone_ = 0;
    parkedHint_.store(0, std::memory_order_relaxed);
    phasesRun_ = 0;
    batch_.clear();
}

void
SyncArbiter::publishClock(int shard, Tick t)
{
    PerShard &p = *per_[static_cast<std::size_t>(shard)];
    if (t < p.clock.load(std::memory_order_relaxed))
        fatal("SyncArbiter: shard %d clock regression %llu -> %llu",
              shard,
              static_cast<unsigned long long>(
                  p.clock.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(t));
    p.clock.store(t, std::memory_order_release);
}

void
SyncArbiter::park(int shard, Tick tick, NodeId node,
                  std::coroutine_handle<> h)
{
    PerShard &p = *per_[static_cast<std::size_t>(shard)];
    const Tick c = p.clock.load(std::memory_order_relaxed);
    if (tick < c && tick + 1 != c)
        fatal("SyncArbiter: node %u parked at tick %llu behind shard %d "
              "clock %llu",
              node, static_cast<unsigned long long>(tick), shard,
              static_cast<unsigned long long>(c));
    p.ops.push_back(SyncOp{tick, node, nodeSeq_[node]++, h});
}

Tick
SyncArbiter::minPending(int shard) const
{
    const PerShard &p = *per_[static_cast<std::size_t>(shard)];
    Tick m = EventQueue::kNever;
    for (const SyncOp &op : p.ops)
        m = std::min(m, op.tick);
    return m;
}

void
SyncArbiter::runPhase(Tick u, const int *parts, int nparts)
{
    execTick_.store(u, std::memory_order_relaxed);
    ++phasesRun_;
    while (true) {
        // Round snapshot: every parked shard's tick-u operations, in
        // canonical (node, seq) order. Operations parked *while* the
        // batch runs (a released coroutine immediately re-entering a
        // sync point at this tick) form the next round. batch_ is a
        // member so its storage survives across phases; executors are
        // serialized machine-wide (at most one phase is live, and
        // consecutive executors synchronize through mu_).
        batch_.clear();
        for (int i = 0; i < nparts; ++i) {
            auto &ops = per_[static_cast<std::size_t>(parts[i])]->ops;
            for (std::size_t k = 0; k < ops.size();) {
                if (ops[k].tick == u) {
                    batch_.push_back(ops[k]);
                    ops[k] = ops.back();
                    ops.pop_back();
                } else {
                    ++k;
                }
            }
        }
        if (batch_.empty())
            break;
        std::sort(batch_.begin(), batch_.end(),
                  [](const SyncOp &a, const SyncOp &b) {
                      if (a.node != b.node)
                          return a.node < b.node;
                      return a.seq < b.seq;
                  });
        for (const SyncOp &op : batch_)
            op.h.resume();
        // Resumed coroutines may have scheduled zero-time events at
        // this tick (e.g. a queued write) on any parked shard: drain
        // them before the next round so the tick stays complete.
        for (int i = 0; i < nparts; ++i) {
            EventQueue *eq = per_[static_cast<std::size_t>(parts[i])]->eq;
            if (eq->nextTick() == u)
                eq->drainTick(u);
        }
    }
    execTick_.store(EventQueue::kNever, std::memory_order_relaxed);
}

void
SyncArbiter::syncPhase(int shard, Tick u)
{
    if (shards_ == 1) {
        int self = 0;
        runPhase(u, &self, 1);
        return;
    }

    PerShard &me = *per_[static_cast<std::size_t>(shard)];
    const std::uint64_t rel = me.release.load(std::memory_order_relaxed);
    // Raise the parked watermark first: every other shard's window
    // loop re-checks it each iteration and resumes publishing per-tick
    // clocks, which is what lets our clock spin below terminate.
    parkedHint_.fetch_add(1, std::memory_order_relaxed);
    // Register before publishing the clock: any shard whose rendezvous
    // scan runs (it observed our clock pass u) is then guaranteed to
    // find us in the table — the participant set is complete and
    // frozen once every clock has passed u.
    {
        std::lock_guard<std::mutex> g(mu_);
        parked_[static_cast<std::size_t>(shard)] = u;
    }
    me.clock.store(u + 1, std::memory_order_release);

    unsigned spins = 0;
    for (int p = 0; p < shards_; ++p) {
        while (per_[static_cast<std::size_t>(p)]->clock.load(
                   std::memory_order_acquire) <= u)
            backoff(spins);
    }

    // Every shard has completed tick u. Under the lock, either the
    // phase at u already ran in full (a fast executor finished while
    // we spun — our release bump is already pending, so fall through
    // to the wait), or every participant is still registered and every
    // scanner computes the same set; its lowest member executes.
    int parts[kMaxShards];
    int nparts = 0;
    bool executor = false;
    {
        std::lock_guard<std::mutex> g(mu_);
        if (phaseDone_ <= u) {
            for (int p = 0; p < shards_; ++p) {
                if (parked_[static_cast<std::size_t>(p)] == u)
                    parts[nparts++] = p;
            }
            executor = parts[0] == shard;
        }
    }

    if (executor) {
        runPhase(u, parts, nparts);
        {
            std::lock_guard<std::mutex> g(mu_);
            phaseDone_ = u + 1;
            for (int i = 0; i < nparts; ++i)
                parked_[static_cast<std::size_t>(parts[i])] =
                    EventQueue::kNever;
        }
        // The release bump is the participants' sole wake edge: its
        // release order (paired with the acquire in the wait below) is
        // what orders everything the phase did to a participant's ops
        // and queue before that shard's next step.
        for (int i = 0; i < nparts; ++i) {
            if (parts[i] != shard)
                per_[static_cast<std::size_t>(parts[i])]
                    ->release.fetch_add(1, std::memory_order_release);
        }
    } else {
        spins = 0;
        while (me.release.load(std::memory_order_acquire) == rel)
            backoff(spins);
    }
    parkedHint_.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace flashsim
