/**
 * @file
 * The interconnection network model.
 *
 * The paper charges every message a fixed transit latency derived from
 * the average path on a 2-D mesh with a 40 ns per-hop fall-through time
 * (Section 3.2): one hop to enter, the average internal hop count, one
 * hop to exit, plus 3 cycles of header. For 16 processors this comes to
 * 22 cycles; the same geometry formula scales the latency for the
 * 64-processor runs of Section 4.5.
 *
 * Optionally the model charges actual per-pair Manhattan distances
 * instead of the average (distanceBased), which the paper's simulator
 * did not do; the default matches the paper.
 */

#ifndef FLASHSIM_NETWORK_MESH_HH_
#define FLASHSIM_NETWORK_MESH_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "protocol/message.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flashsim::network
{

struct MeshParams
{
    Cycles perHop = 4;    ///< 40 ns fall-through
    Cycles header = 3;    ///< header cycles
    bool distanceBased = false; ///< per-pair distance instead of average
};

class MeshNetwork
{
  public:
    using Deliver = std::function<void(const protocol::Message &)>;

    MeshNetwork(EventQueue &eq, int num_nodes, MeshParams params = {});

    /** Register node @p n's delivery callback (its NI inbound). */
    void connect(NodeId n, Deliver deliver);

    /** Inject a message; it is delivered after its transit latency. */
    void send(const protocol::Message &msg);

    /** Average transit latency in cycles (22 for 16 nodes). */
    Cycles avgTransit() const { return avgTransit_; }

    /** Transit latency charged for a specific pair. Self-sends never
     *  enter the mesh and pay only entry/exit + header, in both
     *  modes. */
    Cycles transit(NodeId src, NodeId dest) const;

    /** Mesh side length (smallest square covering num_nodes). */
    int side() const { return side_; }

    /**
     * Install a per-message transit perturbation (fault injection:
     * contention jitter). Extra cycles returned by @p perturb are added
     * to the transit, with delivery clamped so no message overtakes an
     * earlier one on the same (src, dest) pair — the protocol's
     * NACK/retry convergence depends on point-to-point FIFO order.
     * Pass an empty function to remove.
     */
    void setPerturb(std::function<Cycles(const protocol::Message &)> p);

    Counter messages = 0;
    Counter dataMessages = 0;

  private:
    EventQueue &eq_;
    int numNodes_;
    int side_;
    MeshParams params_;
    Cycles avgTransit_;
    std::vector<Deliver> deliver_;
    std::function<Cycles(const protocol::Message &)> perturb_;
    /** Last scheduled delivery per (src, dest), perturbed mode only. */
    std::vector<Tick> lastDelivery_;
};

} // namespace flashsim::network

#endif // FLASHSIM_NETWORK_MESH_HH_
