/**
 * @file
 * Deterministic fault injector.
 *
 * Each node owns an independent xorshift64* stream (seeded from the
 * run seed and the node id), drawn in that node's event order, so a
 * (seed, config) pair replays bit-identically — including in sharded
 * runs, where nodes advance on different threads: every draw is keyed
 * by the node whose event stream triggered it (the message source for
 * mesh jitter, the local MAGIC for queue stalls, NACKs and hint
 * fates), and node-local event order is invariant under sharding. The
 * injector itself is pure policy — it only answers "what should happen
 * to this message"; the mechanism (delaying delivery, synthesizing a
 * NACK, swallowing a hint) lives at the call sites in the mesh and in
 * MAGIC, which are also responsible for preserving the point-to-point
 * FIFO ordering the NACK/retry protocol depends on (delivery times are
 * clamped monotonically per (src, dest) pair and per inbound queue).
 */

#ifndef FLASHSIM_VERIFY_FAULT_HH_
#define FLASHSIM_VERIFY_FAULT_HH_

#include <vector>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "verify/params.hh"

namespace flashsim::verify
{

class FaultInjector
{
  public:
    FaultInjector(const FaultParams &params, int num_nodes)
        : p_(params), per_(static_cast<std::size_t>(num_nodes))
    {
        // Per-node seeds via a splitmix-style mix of the run seed and
        // the node id: decorrelated streams from one knob.
        for (std::size_t n = 0; n < per_.size(); ++n)
            per_[n].rng = Rng(params.seed ^
                              (0x9e3779b97f4a7c15ull * (n + 1)));
    }

    bool enabled() const { return p_.enabled; }
    const FaultParams &params() const { return p_; }

    /** Extra mesh transit cycles for one message, drawn from the
     *  stream of its source node. */
    Cycles
    meshJitter(NodeId src)
    {
        if (p_.meshJitter == 0)
            return 0;
        PerNode &n = per_[src];
        Cycles j = n.rng.below(p_.meshJitter + 1);
        n.jitterCycles += j;
        return j;
    }

    /** Extra cycles a message waits to enter node @p at's MAGIC
     *  inbound queue (models queue-full backpressure). */
    Cycles
    inboundStall(NodeId at)
    {
        if (p_.inboundStall == 0)
            return 0;
        PerNode &n = per_[at];
        Cycles s = n.rng.below(p_.inboundStall + 1);
        n.stallCycles += s;
        return s;
    }

    /** Should home node @p home NACK this GET/GETX outright? */
    bool
    rollNack(NodeId home)
    {
        if (p_.extraNackProb <= 0.0)
            return false;
        PerNode &n = per_[home];
        if (n.rng.uniform() >= p_.extraNackProb)
            return false;
        ++n.nacksInjected;
        return true;
    }

    enum class HintFate
    {
        Deliver,
        Drop,
        Duplicate,
    };

    /** Fate of a replacement hint arriving at home node @p home. */
    HintFate
    hintFate(NodeId home)
    {
        if (p_.dropHintProb <= 0.0 && p_.dupHintProb <= 0.0)
            return HintFate::Deliver;
        PerNode &n = per_[home];
        double u = n.rng.uniform();
        if (u < p_.dropHintProb) {
            ++n.hintsDropped;
            return HintFate::Drop;
        }
        if (u < p_.dropHintProb + p_.dupHintProb) {
            ++n.hintsDuped;
            return HintFate::Duplicate;
        }
        return HintFate::Deliver;
    }

    /** True when hint perturbation can leave duplicate or stale sharer
     *  pointers in the directory (the oracle relaxes its checks). */
    bool
    perturbsHints() const
    {
        return p_.enabled && (p_.dropHintProb > 0.0 || p_.dupHintProb > 0.0);
    }

    // -- Statistics (summed over nodes) -------------------------------------
    Counter
    nacksInjected() const
    {
        return sum(&PerNode::nacksInjected);
    }
    Counter
    hintsDropped() const
    {
        return sum(&PerNode::hintsDropped);
    }
    Counter
    hintsDuped() const
    {
        return sum(&PerNode::hintsDuped);
    }
    Counter
    jitterCycles() const
    {
        return sum(&PerNode::jitterCycles);
    }
    Counter
    stallCycles() const
    {
        return sum(&PerNode::stallCycles);
    }

  private:
    /** Padded to a cache line: adjacent nodes' streams are drawn from
     *  different shard threads concurrently. */
    struct alignas(64) PerNode
    {
        Rng rng{0};
        Counter nacksInjected = 0;
        Counter hintsDropped = 0;
        Counter hintsDuped = 0;
        Counter jitterCycles = 0;
        Counter stallCycles = 0;
    };

    Counter
    sum(Counter PerNode::*f) const
    {
        Counter total = 0;
        for (const PerNode &n : per_)
            total += n.*f;
        return total;
    }

    FaultParams p_;
    std::vector<PerNode> per_;
};

} // namespace flashsim::verify

#endif // FLASHSIM_VERIFY_FAULT_HH_
