/** @file Unit tests for the PP instruction set emulator (PPsim). */

#include <gtest/gtest.h>

#include "ppisa/instruction.hh"
#include "ppisa/ppsim.hh"

namespace flashsim::ppisa
{
namespace
{

Instr
rri(Op op, int rd, int rs, std::int64_t imm)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.rs = static_cast<std::uint8_t>(rs);
    in.imm = imm;
    return in;
}

Instr
rrr(Op op, int rd, int rs, int rt)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.rs = static_cast<std::uint8_t>(rs);
    in.rt = static_cast<std::uint8_t>(rt);
    return in;
}

Instr
field(Op op, int rd, int rs, unsigned lo, unsigned width)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.rs = static_cast<std::uint8_t>(rs);
    in.lo = static_cast<std::uint8_t>(lo);
    in.width = static_cast<std::uint8_t>(width);
    return in;
}

Instr
halt()
{
    Instr in;
    in.op = Op::Halt;
    return in;
}

Instr
nop()
{
    return Instr{};
}

/** Run a single-issue program (each instruction in its own pair). */
struct Runner
{
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;

    Cycles
    run(std::vector<Instr> instrs)
    {
        Program prog;
        prog.name = "test";
        // A NOP pair between consecutive instructions keeps load-delay
        // and pairing rules trivially satisfied for semantic tests.
        for (const Instr &i : instrs) {
            prog.pairs.push_back(InstrPair{i, nop()});
            prog.pairs.push_back(InstrPair{nop(), nop()});
        }
        // Rewrite branch targets (instruction index -> pair index).
        for (auto &p : prog.pairs) {
            if (p.a.isBranch())
                p.a.imm *= 2;
        }
        prog.pairs.push_back(InstrPair{halt(), nop()});
        PpSim sim;
        return sim.run(prog, regs, mem, sent, stats);
    }
};

TEST(PpSim, AluBasics)
{
    Runner r;
    r.regs[1] = 7;
    r.regs[2] = 5;
    r.run({rrr(Op::Add, 3, 1, 2), rrr(Op::Sub, 4, 1, 2),
           rrr(Op::And, 5, 1, 2), rrr(Op::Or, 6, 1, 2),
           rrr(Op::Xor, 7, 1, 2)});
    EXPECT_EQ(r.regs[3], 12u);
    EXPECT_EQ(r.regs[4], 2u);
    EXPECT_EQ(r.regs[5], 5u);
    EXPECT_EQ(r.regs[6], 7u);
    EXPECT_EQ(r.regs[7], 2u);
}

TEST(PpSim, Immediates)
{
    Runner r;
    r.regs[1] = 0xf0;
    r.run({rri(Op::Addi, 2, 1, 0x10), rri(Op::Andi, 3, 1, 0x30),
           rri(Op::Ori, 4, 1, 0x0f), rri(Op::Xori, 5, 1, -1),
           rri(Op::Slli, 6, 1, 4), rri(Op::Srli, 7, 1, 4)});
    EXPECT_EQ(r.regs[2], 0x100u);
    EXPECT_EQ(r.regs[3], 0x30u);
    EXPECT_EQ(r.regs[4], 0xffu);
    EXPECT_EQ(r.regs[5], ~std::uint64_t{0xf0});
    EXPECT_EQ(r.regs[6], 0xf00u);
    EXPECT_EQ(r.regs[7], 0xfu);
}

TEST(PpSim, SignedOps)
{
    Runner r;
    r.regs[1] = static_cast<std::uint64_t>(-8);
    r.run({rri(Op::Srai, 2, 1, 2), rri(Op::Slti, 3, 1, 0),
           rri(Op::Slti, 4, 1, -10)});
    EXPECT_EQ(static_cast<std::int64_t>(r.regs[2]), -2);
    EXPECT_EQ(r.regs[3], 1u);
    EXPECT_EQ(r.regs[4], 0u);
}

TEST(PpSim, R0IsHardZero)
{
    Runner r;
    r.run({rri(Op::Addi, 0, 0, 99), rri(Op::Addi, 1, 0, 3)});
    EXPECT_EQ(r.regs[0], 0u);
    EXPECT_EQ(r.regs[1], 3u);
}

TEST(PpSim, LoadStore)
{
    Runner r;
    r.regs[1] = 0x1000;
    r.regs[2] = 0xdeadbeef;
    r.run({rri(Op::Sd, 0, 1, 8), rri(Op::Ld, 3, 1, 8)});
    // Sd encodes value in rt; build explicitly:
    Runner r2;
    r2.regs[1] = 0x1000;
    r2.regs[2] = 0xdeadbeef;
    Instr sd;
    sd.op = Op::Sd;
    sd.rs = 1;
    sd.rt = 2;
    sd.imm = 8;
    r2.run({sd, rri(Op::Ld, 3, 1, 8)});
    EXPECT_EQ(r2.regs[3], 0xdeadbeefu);
}

TEST(PpSim, FindFirstSet)
{
    Runner r;
    r.regs[1] = 0x80;
    r.regs[2] = 0;
    r.regs[3] = 1;
    r.run({rri(Op::Ffs, 4, 1, 0), rri(Op::Ffs, 5, 2, 0),
           rri(Op::Ffs, 6, 3, 0)});
    EXPECT_EQ(r.regs[4], 7u);
    EXPECT_EQ(r.regs[5], 64u); // all-zero convention
    EXPECT_EQ(r.regs[6], 0u);
}

TEST(PpSim, BitfieldExtractInsert)
{
    Runner r;
    r.regs[1] = 0xabcd1234u;
    r.regs[2] = 0x7;
    r.regs[3] = 0xffffffffffffffffu;
    r.run({field(Op::Ext, 4, 1, 8, 8), field(Op::Orfi, 5, 1, 32, 4),
           field(Op::Andfi, 6, 3, 16, 16)});
    EXPECT_EQ(r.regs[4], 0x12u);
    EXPECT_EQ(r.regs[5], 0xfabcd1234u);
    EXPECT_EQ(r.regs[6], 0xffffffff0000ffffu);

    Runner r2;
    r2.regs[1] = 0; // target of Ins
    r2.regs[2] = 0x5;
    Instr ins = field(Op::Ins, 1, 2, 16, 4);
    r2.run({ins});
    EXPECT_EQ(r2.regs[1], 0x50000u);
}

TEST(PpSim, BranchOnBit)
{
    // bbs r1[3] -> skip the addi
    Instr b;
    b.op = Op::Bbs;
    b.rs = 1;
    b.lo = 3;
    b.imm = 2; // instruction index (Runner doubles it)
    Runner r;
    r.regs[1] = 0x8;
    r.run({b, rri(Op::Addi, 2, 0, 1), rri(Op::Addi, 3, 0, 1)});
    EXPECT_EQ(r.regs[2], 0u); // skipped
    EXPECT_EQ(r.regs[3], 1u);

    Runner r2;
    r2.regs[1] = 0; // bit clear: fall through
    r2.run({b, rri(Op::Addi, 2, 0, 1), rri(Op::Addi, 3, 0, 1)});
    EXPECT_EQ(r2.regs[2], 1u);
}

TEST(PpSim, SendProducesMessages)
{
    Instr s;
    s.op = Op::Send;
    s.rs = 1; // dest
    s.rt = 2; // arg
    s.imm = 12;
    Runner r;
    r.regs[1] = 3;
    r.regs[2] = 0xabc;
    r.run({s, s});
    ASSERT_EQ(r.sent.size(), 2u);
    EXPECT_EQ(r.sent[0].type, 12);
    EXPECT_EQ(r.sent[0].dest, 3u);
    EXPECT_EQ(r.sent[0].arg, 0xabcu);
}

TEST(PpSim, StatsCountPairsAndInstrs)
{
    Runner r;
    r.regs[1] = 1;
    r.run({rrr(Op::Add, 2, 1, 1), field(Op::Ext, 3, 1, 0, 1)});
    // 2 real instrs + 2 padding pairs + halt pair = 5 pairs
    EXPECT_EQ(r.stats.pairs, 5u);
    EXPECT_EQ(r.stats.instrs, 3u); // add, ext, halt is non-NOP
    EXPECT_EQ(r.stats.specials, 1u);
    EXPECT_EQ(r.stats.invocations, 1u);
    EXPECT_GT(r.stats.dualIssueEfficiency(), 0.0);
}

TEST(PpSim, IntraPairRawPanics)
{
    Program prog;
    prog.name = "bad";
    InstrPair p;
    p.a = rri(Op::Addi, 1, 0, 5);
    p.b = rrr(Op::Add, 2, 1, 1); // reads r1 written by slot a
    prog.pairs.push_back(p);
    prog.pairs.push_back(InstrPair{halt(), nop()});
    PpSim sim;
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    EXPECT_DEATH(sim.run(prog, regs, mem, sent, stats), "intra-pair");
}

TEST(PpSim, LoadDelayViolationPanics)
{
    Program prog;
    prog.name = "bad2";
    prog.pairs.push_back(InstrPair{rri(Op::Ld, 1, 0, 0), nop()});
    prog.pairs.push_back(InstrPair{rrr(Op::Add, 2, 1, 1), nop()});
    prog.pairs.push_back(InstrPair{halt(), nop()});
    PpSim sim;
    RegFile regs{};
    FlatPpMemory mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    EXPECT_DEATH(sim.run(prog, regs, mem, sent, stats), "load-delay");
}

TEST(PpSim, MemoryStallsAccumulate)
{
    struct SlowMem : PpMemory
    {
        std::uint64_t
        load(Addr, Cycles &extra) override
        {
            extra = 29;
            return 0;
        }
        void
        store(Addr, std::uint64_t, Cycles &extra) override
        {
            extra = 29;
        }
    };
    Program prog;
    prog.name = "slow";
    prog.pairs.push_back(InstrPair{rri(Op::Ld, 1, 0, 0), nop()});
    prog.pairs.push_back(InstrPair{nop(), nop()});
    prog.pairs.push_back(InstrPair{halt(), nop()});
    PpSim sim;
    RegFile regs{};
    SlowMem mem;
    std::vector<SentMessage> sent;
    RunStats stats;
    Cycles c = sim.run(prog, regs, mem, sent, stats);
    EXPECT_EQ(c, 3u + 29u);
    EXPECT_EQ(stats.memStall, 29u);
}

TEST(PpSim, FieldMaskHelper)
{
    EXPECT_EQ(fieldMask(0, 4), 0xfu);
    EXPECT_EQ(fieldMask(4, 4), 0xf0u);
    EXPECT_EQ(fieldMask(0, 64), ~std::uint64_t{0});
    EXPECT_EQ(fieldMask(63, 1), std::uint64_t{1} << 63);
}

TEST(PpSim, ProgramToStringContainsName)
{
    Program prog;
    prog.name = "pi_get";
    prog.pairs.push_back(InstrPair{halt(), nop()});
    EXPECT_NE(prog.toString().find("pi_get"), std::string::npos);
    EXPECT_EQ(prog.codeBytes(), 8u);
}

} // namespace
} // namespace flashsim::ppisa
