/**
 * @file
 * Edge cases for the flat open-addressing tables (sim/flat_table.hh).
 *
 * The slot encodings make three classes of bugs easy to introduce and
 * hard to notice: key 0 colliding with the default-initialized (empty)
 * slot key, off-by-one errors at the grow-at-half-full boundary, and
 * ScratchWordMap's generation stamp resurrecting stale entries across
 * reset cycles. Each gets a dedicated test.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/flat_table.hh"

namespace flashsim
{
namespace
{

// ---------------------------------------------------------------------
// FlatCounterMap: key 0 vs the empty-slot sentinel.
// ---------------------------------------------------------------------

TEST(FlatCounterMap, KeyZeroIsARealKey)
{
    FlatCounterMap m;
    // Empty slots also carry key == 0; only the used flag may
    // distinguish them.
    EXPECT_EQ(m.find(0), nullptr);
    EXPECT_EQ(m.count(0), 0u);

    m[0] = 41;
    ++m[0];
    EXPECT_EQ(m.size(), 1u);
    ASSERT_NE(m.find(0), nullptr);
    EXPECT_EQ(*m.find(0), 42u);
    EXPECT_EQ(m.count(0), 1u);

    // Key 0 must survive iteration and a rehash among other keys.
    for (std::uint64_t k = 1; k <= 100; ++k)
        m[k] = k;
    EXPECT_EQ(m.size(), 101u);
    ASSERT_NE(m.find(0), nullptr);
    EXPECT_EQ(*m.find(0), 42u);

    bool saw_zero = false;
    std::size_t seen = 0;
    for (const auto &[key, value] : m) {
        ++seen;
        if (key == 0) {
            saw_zero = true;
            EXPECT_EQ(value, 42u);
        }
    }
    EXPECT_EQ(seen, 101u);
    EXPECT_TRUE(saw_zero);
}

TEST(FlatCounterMap, FindOnEmptyMapIsSafe)
{
    FlatCounterMap m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(12345), nullptr);
    EXPECT_EQ(m.count(12345), 0u);
    EXPECT_EQ(m.begin(), m.end());
}

// ---------------------------------------------------------------------
// FlatCounterMap: growth exactly at the half-full boundary.
// ---------------------------------------------------------------------

TEST(FlatCounterMap, GrowthAtHalfFullPreservesEveryEntry)
{
    // First table is 16 slots; operator[] grows when 2 * (live + 1)
    // would exceed the slot count, i.e. on the insertion that would
    // make it more than half full. Cross several doublings and verify
    // nothing is lost or corrupted at any boundary.
    FlatCounterMap m;
    constexpr std::uint64_t kKeys = 300; // 16 -> 32 -> ... -> 1024 slots
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        m[k * 0x10001ull] = k + 1;
        ASSERT_EQ(m.size(), k + 1);
        // Every previously inserted key must still be present with its
        // value — a bad rehash shows up immediately at the boundary.
        if (k == 7 || k == 8 || k == 15 || k == 16 || k == 127 ||
            k == 128 || k == kKeys - 1) {
            for (std::uint64_t j = 0; j <= k; ++j) {
                const Counter *v = m.find(j * 0x10001ull);
                ASSERT_NE(v, nullptr) << "lost key " << j << " at " << k;
                EXPECT_EQ(*v, j + 1);
            }
        }
    }
    EXPECT_EQ(m.size(), kKeys);

    // Iteration visits each entry exactly once after all the rehashes.
    std::vector<std::uint64_t> keys;
    for (const auto &[key, value] : m)
        keys.push_back(key);
    EXPECT_EQ(keys.size(), kKeys);
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(FlatCounterMap, CollidingKeysProbeCorrectly)
{
    // Keys crafted to land in few distinct buckets exercise the linear
    // probe chain across a grow.
    FlatCounterMap m;
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 0; keys.size() < 24; ++k)
        if ((flatTableHash(k) & 15) < 2)
            keys.push_back(k);
    for (std::size_t i = 0; i < keys.size(); ++i)
        m[keys[i]] = i + 1;
    EXPECT_EQ(m.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const Counter *v = m.find(keys[i]);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, i + 1);
    }
}

TEST(FlatCounterMap, ReserveThenFillDoesNotLoseEntries)
{
    FlatCounterMap m;
    m.reserve(100);
    for (std::uint64_t k = 0; k < 100; ++k)
        m[k] = k;
    EXPECT_EQ(m.size(), 100u);
    for (std::uint64_t k = 0; k < 100; ++k) {
        ASSERT_NE(m.find(k), nullptr);
        EXPECT_EQ(*m.find(k), k);
    }
}

TEST(FlatCounterMap, ClearEmptiesAndReusesCleanly)
{
    FlatCounterMap m;
    for (std::uint64_t k = 0; k < 50; ++k)
        m[k] = 1;
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(10), nullptr);
    m[10] = 7;
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(*m.find(10), 7u);
}

// ---------------------------------------------------------------------
// ScratchWordMap: generation stamp across many reset cycles.
// ---------------------------------------------------------------------

TEST(ScratchWordMap, KeyZeroDistinctFromNeverUsedSlot)
{
    // A fresh slot has key == 0 and gen == 0; the first generation is
    // 1, so find(0) must miss until key 0 is genuinely inserted.
    ScratchWordMap m;
    EXPECT_EQ(m.find(0), nullptr);
    m.put(0, 99);
    ASSERT_NE(m.find(0), nullptr);
    EXPECT_EQ(*m.find(0), 99u);
    m.reset();
    EXPECT_EQ(m.find(0), nullptr);
}

TEST(ScratchWordMap, ResetForgetsInConstantTime)
{
    ScratchWordMap m;
    for (std::uint64_t k = 0; k < 20; ++k)
        m.put(k, k * 10);
    EXPECT_EQ(m.size(), 20u);
    m.reset();
    EXPECT_EQ(m.size(), 0u);
    for (std::uint64_t k = 0; k < 20; ++k)
        EXPECT_EQ(m.find(k), nullptr) << "stale key " << k;
}

TEST(ScratchWordMap, ManyResetCyclesNeverResurrectStaleEntries)
{
    // The MDC shadow tracker resets once per handler invocation —
    // millions of times per simulation. Each generation writes a
    // distinguishable value; any stale read from an earlier generation
    // (or a stamp collision) is caught immediately.
    ScratchWordMap m(16);
    for (std::uint64_t gen = 0; gen < 10000; ++gen) {
        // Overlapping key sets between generations so stale slots are
        // frequently re-probed.
        const std::uint64_t base = gen % 7;
        m.put(base, gen);
        m.put(base + 1, gen + 1);
        ASSERT_EQ(m.size(), 2u) << "generation " << gen;
        const std::uint64_t *a = m.find(base);
        const std::uint64_t *b = m.find(base + 1);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(*a, gen);
        EXPECT_EQ(*b, gen + 1);
        // A key from the previous generation that is not in this one
        // must read as absent even though its slot bytes are intact.
        if (gen > 0 && (gen - 1) % 7 != base && (gen - 1) % 7 != base + 1)
            EXPECT_EQ(m.find((gen - 1) % 7), nullptr)
                << "generation " << gen;
        m.reset();
    }
}

TEST(ScratchWordMap, OverwriteWithinGenerationKeepsSizeStable)
{
    ScratchWordMap m;
    m.put(5, 1);
    m.put(5, 2);
    m.put(5, 3);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(*m.find(5), 3u);
}

TEST(ScratchWordMap, GrowthMidGenerationKeepsLiveEntriesOnly)
{
    // Fill past the half-full boundary of the initial 16-slot table in
    // one generation, with stale garbage from a previous generation
    // occupying many slots: grow() must carry live entries and drop the
    // stale ones.
    ScratchWordMap m(16);
    for (std::uint64_t k = 100; k < 108; ++k)
        m.put(k, 0xdead);
    m.reset();
    constexpr std::uint64_t kLive = 40; // forces 16 -> 32 -> ... growth
    for (std::uint64_t k = 0; k < kLive; ++k) {
        m.put(k, k + 1000);
        ASSERT_EQ(m.size(), k + 1);
    }
    for (std::uint64_t k = 0; k < kLive; ++k) {
        const std::uint64_t *v = m.find(k);
        ASSERT_NE(v, nullptr) << "lost key " << k << " across grow";
        EXPECT_EQ(*v, k + 1000);
    }
    for (std::uint64_t k = 100; k < 108; ++k)
        EXPECT_EQ(m.find(k), nullptr) << "stale key " << k << " revived";
}

} // namespace
} // namespace flashsim
