#include "magic/magic.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sim/logging.hh"
#include "verify/sentinel.hh"

namespace
{

/**
 * Debug aid: set FS_TRACE_LINE=<line number> (decimal) to trace every
 * handler invocation for that cache line on stderr.
 */
bool
traceLine(flashsim::Addr addr)
{
    static const char *env = std::getenv("FS_TRACE_LINE");
    static const unsigned long long line =
        env ? std::strtoull(env, nullptr, 0) : 0;
    return env != nullptr && flashsim::lineNumber(addr) == line;
}

} // namespace

namespace flashsim::magic
{

using protocol::Gate;
using protocol::HandlerId;
using protocol::HandlerResult;
using protocol::Message;
using protocol::MsgType;

Magic::Magic(EventQueue &eq, NodeId self, const MagicParams &params,
             const protocol::AddressMap &map,
             const protocol::HandlerPrograms *programs, MagicHooks hooks)
    : eq_(eq), self_(self), params_(params), map_(map),
      hooks_(std::move(hooks)), dir_(),
      mem_(params.memAccess, params.memBusy),
      jumpTable_(JumpTable::standard(params.speculation)),
      buffers_(params.dataBuffers, params.ideal), probe_(*this),
      engine_(self, dir_, map_, probe_)
{
    if (params_.usePpEmulator && !params_.ideal) {
        if (programs == nullptr)
            fatal("Magic: usePpEmulator requires handler programs");
        auto model =
            std::make_unique<PpTimingModel>(*programs, dir_, params_);
        ppModel_ = model.get();
        timing_ = std::move(model);
    } else {
        timing_ = std::make_unique<TableTimingModel>();
    }
    if (params_.monitorPages) {
        // Page-monitoring counters grow one entry per remotely accessed
        // local page; pre-size past any workload in-tree so the counting
        // in the handler path never rehashes.
        pageRemoteAccesses.reserve(1024);
    }
}

Magic::~Magic() = default;

Tick
Magic::inboundArrival(Cycles base, Tick &last)
{
    Tick t = eq_.now() + base;
    if (sentinel_ && sentinel_->injector().enabled()) {
        t += sentinel_->injector().inboundStall(self_);
        // Queue-full backpressure must not reorder the queue: clamp to
        // the latest stalled arrival (same-tick ties keep FIFO order).
        t = std::max(t, last);
        last = t;
    }
    return t;
}

void
Magic::fromProcessor(const Message &msg)
{
    Tick t = inboundArrival(params_.piInbound, lastPiArrival_);
    eq_.scheduleAt(t, [this, msg] { enqueue(piQueue_, msg); });
}

void
Magic::fromProcessorAfter(const Message &msg, Cycles delay)
{
    if (sentinel_ && sentinel_->injector().enabled()) {
        eq_.schedule(delay, [this, msg] { fromProcessor(msg); });
        return;
    }
    eq_.scheduleAt(eq_.now() + delay + params_.piInbound,
                   [this, msg] { enqueue(piQueue_, msg); });
}

void
Magic::fromNetwork(const Message &msg)
{
    // Transaction-kill injection: an initial request can die at the
    // home node's NI before it touches any protocol state — the
    // directory has never heard of it, so the requester's transaction
    // timeout can safely re-issue from scratch. Only initial requests
    // arriving at their home qualify; dropping a forwarded or reply
    // message would strand directory state no retry could clear.
    if (sentinel_ && sentinel_->injector().enabled() &&
        (msg.type == MsgType::NetGet || msg.type == MsgType::NetGetx) &&
        map_.homeOf(msg.addr) == self_ &&
        sentinel_->injector().txnDrop(self_)) {
        ++reqDropsInjected;
        sentinel_->recordInjected(self_, eq_.now(), msg,
                                  verify::TraceEntry::Kind::DroppedRequest);
        return;
    }
    Tick t = inboundArrival(params_.niInbound, lastNiArrival_);
    eq_.scheduleAt(t, [this, msg] { enqueue(niQueue_, msg); });
}

void
Magic::sendBlock(NodeId dest, Addr addr, std::uint32_t bytes)
{
    const Addr base = lineBase(addr);
    const std::uint32_t chunks =
        (bytes + static_cast<std::uint32_t>(kLineSize) - 1) /
        static_cast<std::uint32_t>(kLineSize);
    // The PP runs the send handler once to program the transfer; the
    // data-transfer logic then streams chunks at memory speed, with a
    // couple of PP cycles per chunk to compose each header.
    const Cycles setup = params_.ideal ? 0 : 8;
    ppOcc.addBusy(setup);
    Tick launch = eq_.now() + setup;
    for (std::uint32_t i = 0; i < chunks; ++i) {
        Tick data_ready = mem_.read(launch);
        if (!params_.ideal)
            ppOcc.addBusy(2);
        Message m;
        m.type = MsgType::NetBlockXfer;
        m.src = self_;
        m.dest = dest;
        m.requester = self_;
        m.addr = base + static_cast<Addr>(i) * kLineSize;
        m.aux = chunks - 1 - i; // chunks remaining after this one
        ++blockChunksSent;
        Tick t = std::max(launch + params_.niOutbound, data_ready);
        if (hooks_.toNetworkAt)
            hooks_.toNetworkAt(m, t);
        else
            eq_.scheduleAt(t, [this, m] { hooks_.toNetwork(m); });
        launch = t; // chunks stay ordered on the wire
    }
}

void
Magic::enqueue(std::deque<Pending> &q, const Message &msg)
{
    // Injected replacement-hint perturbation: a dropped hint leaves a
    // stale sharer pointer in the directory (cleaned up by a later
    // invalidation), a duplicated one a double entry — both states the
    // real machine can reach through lost or replayed hint messages.
    int copies = 1;
    if (sentinel_ && sentinel_->injector().enabled() &&
        (msg.type == MsgType::PiReplaceHint ||
         msg.type == MsgType::NetReplaceHint)) {
        switch (sentinel_->injector().hintFate(self_)) {
          case verify::FaultInjector::HintFate::Drop:
            sentinel_->recordInjected(self_, eq_.now(), msg,
                                      verify::TraceEntry::Kind::DroppedHint);
            return;
          case verify::FaultInjector::HintFate::Duplicate:
            sentinel_->recordInjected(self_, eq_.now(), msg,
                                      verify::TraceEntry::Kind::DupedHint);
            copies = 2;
            break;
          case verify::FaultInjector::HintFate::Deliver:
            break;
        }
    }
    for (int c = 0; c < copies; ++c) {
        ++msgsIn;
        Pending p{msg, eq_.now(), false, 0};
        // Speculative memory initiation happens as the inbox preprocesses
        // the incoming header, concurrently with the PP working on earlier
        // messages — this is what hides protocol processing behind the
        // memory access time even when the PP is backed up (Section 4.3).
        // Each early read stages into one of the 16 data buffers.
        if (!params_.ideal && map_.homeOf(msg.addr) == self_ &&
            jumpTable_.lookup(msg.type).specRead && buffers_.acquire()) {
            p.specIssued = true;
            p.specReady = mem_.read(eq_.now() + params_.jumpTable);
            ++specIssued;
        }
        q.push_back(std::move(p));
    }
    tryDispatch();
}

void
Magic::tryDispatch()
{
    if (ppBusy_)
        return;
    std::deque<Pending> *q = nullptr;
    if (!piQueue_.empty() && !niQueue_.empty()) {
        q = pickPiFirst_ ? &piQueue_ : &niQueue_;
        pickPiFirst_ = !pickPiFirst_;
    } else if (!piQueue_.empty()) {
        q = &piQueue_;
    } else if (!niQueue_.empty()) {
        q = &niQueue_;
    } else {
        return;
    }

    Pending p = q->front();
    q->pop_front();
    queueStallCycles += eq_.now() - p.enqueued;
    ppBusy_ = true;

    // Inbox: queue selection/arbitration, then the jump-table lookup.
    Cycles lead =
        params_.inboxArb + (params_.ideal ? 0 : params_.jumpTable);
    eq_.schedule(lead, [this, p = std::move(p)] { runHandler(p); });
}

void
Magic::runHandler(const Pending &pending)
{
    const Message &msg = pending.msg;
    const Tick now = eq_.now();
    const NodeId home = map_.homeOf(msg.addr);
    const bool at_home = home == self_;

    setLogNode(self_);

    // Injector-forced NACK: the request is bounced as if the line were
    // in a transient state, exercising the retry paths without waiting
    // for a genuine race.
    if (sentinel_ && at_home && sentinel_->injector().enabled() &&
        (msg.type == MsgType::PiGet || msg.type == MsgType::PiGetx ||
         msg.type == MsgType::NetGet || msg.type == MsgType::NetGetx) &&
        sentinel_->injector().rollNack(self_)) {
        injectedNack(pending, pending.specIssued);
        setLogNode(kInvalidNode);
        return;
    }

    // Speculative memory initiation: usually already launched by the
    // inbox at message arrival; the ideal machine (or an inbox that ran
    // out of data buffers) starts the read here instead.
    bool spec_issued = pending.specIssued;
    bool release_buffer = pending.specIssued;
    Tick mem_ready = pending.specReady;
    if (!spec_issued && at_home &&
        jumpTable_.lookup(msg.type).specRead) {
        mem_ready = mem_.read(now);
        spec_issued = true;
        ++specIssued;
    }

    const bool cache_dirty = hooks_.cacheHoldsDirty(msg.addr);
    timing_->preHandler(msg, self_, home, cache_dirty);
    HandlerResult res = engine_.handle(msg);
    HandlerTiming ht = timing_->occupancy(msg, res);

    if (traceLine(msg.addr)) {
        std::fprintf(stderr,
                     "[magic %u t=%llu] %s -> %s occ=%llu out=%zu "
                     "cdirty=%d\n",
                     self_, static_cast<unsigned long long>(now),
                     msg.toString().c_str(),
                     protocol::handlerIdName(res.id),
                     static_cast<unsigned long long>(ht.occupancy),
                     res.out.size(), cache_dirty);
    }

    Cycles occ = params_.ideal ? 0 : ht.occupancy;

    // Optional PP-side page monitoring (Section 4.4): count remote
    // requests per local page, paying a couple of handler cycles.
    if (params_.monitorPages && at_home && msg.requester != self_ &&
        (msg.type == MsgType::PiGet || msg.type == MsgType::NetGet ||
         msg.type == MsgType::PiGetx || msg.type == MsgType::NetGetx)) {
        ++pageRemoteAccesses[msg.addr >> params_.pageShift];
        if (!params_.ideal)
            occ += params_.monitorCost;
    }

    ppOcc.addBusy(occ);
    ++invocations;
    handlerCount[static_cast<std::size_t>(res.id)] += 1;
    handlerCycles[static_cast<std::size_t>(res.id)] += ht.occupancy;
    if (ht.micColdMiss)
        ++micColdMisses;
    if (res.nackedRequest)
        ++nacksSent;

    // Classify read-miss services (Tables 3.3 / 4.1). NACKed requests
    // are classified when the successful retry is serviced.
    if (msg.type == MsgType::PiGet || msg.type == MsgType::NetGet) {
        const bool local = msg.requester == self_;
        switch (res.id) {
          case HandlerId::ServeReadMemory:
            (local ? readClasses.localClean : readClasses.remoteClean) += 1;
            break;
          case HandlerId::RetrieveFromCache:
            readClasses.remoteDirtyHome += 1;
            break;
          case HandlerId::FwdHomeToDirty:
            (local ? readClasses.localDirtyRemote
                   : readClasses.remoteDirtyRemote) += 1;
            break;
          default:
            break;
        }
    }

    // Protocol-data traffic: MDC fills and victim writebacks occupy the
    // node's memory system (Section 5.2).
    for (std::uint32_t i = 0; i < ht.mdcMisses + ht.mdcWritebacks; ++i)
        mem_.protocolAccess(now);

    const Tick pp_end = now + occ;

    if (res.id == HandlerId::FetchOpService) {
        // Word-granular RMW at the home memory (fetch&op).
        mem_ready = mem_.rmw(now);
    }
    if (spec_issued && !res.memRead)
        ++specUseless; // the data in memory was not the up-to-date copy
    if (!spec_issued && res.memRead) {
        // Without speculation the PP initiates the access itself once it
        // has read the directory state.
        mem_ready = mem_.read(pp_end);
    }
    if (res.memWrite)
        mem_.write(pp_end);

    // Processor-cache operations directed through the PI.
    Tick cache_ready = 0;
    if (res.cacheRetrieve) {
        cache_ready =
            now + params_.cacheStateRetrieve + params_.cacheDataRetrieve;
        hooks_.cacheBusy(cache_ready);
        if (res.cacheSharing)
            hooks_.cacheDowngrade(msg.addr);
        if (res.cacheInvalidate)
            hooks_.cacheInvalidate(msg.addr);
    } else if (res.cacheInvalidate) {
        cache_ready = now + params_.cacheStateRetrieve;
        hooks_.cacheBusy(cache_ready);
        hooks_.cacheInvalidate(msg.addr);
    } else if (res.cacheSharing) {
        hooks_.cacheDowngrade(msg.addr);
    }

    // The handler's directory transition and cache operations are all
    // applied: let the sentinel update its golden state and cross-check
    // the machine. The test mutator (if any) corrupts state first so
    // tests can prove a broken handler is caught.
    if (sentinel_) {
        if (sentinel_->testMutator)
            sentinel_->testMutator(self_, msg, res);
        sentinel_->observeHandler(self_, at_home, now, msg, res);
    }

    for (const protocol::OutMsg &o : res.out) {
        Tick gate = 0;
        switch (o.gate) {
          case Gate::MemData: gate = mem_ready; break;
          case Gate::CacheData: gate = cache_ready; break;
          case Gate::None: break;
        }
        launch(o.msg, pp_end, gate);
    }

    // Message-passing notifications.
    if (msg.type == MsgType::NetBlockXfer) {
        ++blockChunksReceived;
        if (msg.aux == 0) {
            ++blocksCompleted;
            Addr base = msg.addr; // last chunk; block base not carried
            eq_.scheduleAt(pp_end, [this, base] {
                if (hooks_.blockReceived)
                    hooks_.blockReceived(base);
            });
        }
    } else if (msg.type == MsgType::NetBlockAck) {
        Addr base = msg.addr;
        eq_.scheduleAt(pp_end, [this, base] {
            if (hooks_.blockAcked)
                hooks_.blockAcked(base);
        });
    } else if (msg.type == MsgType::NetFetchOpAck) {
        Addr fa = msg.addr;
        eq_.scheduleAt(pp_end, [this, fa] {
            if (hooks_.fetchOpDone)
                hooks_.fetchOpDone(fa);
        });
    }

    // A NACK reply at the requester: tell the cache so it retries.
    if (msg.type == MsgType::NetNack) {
        ++nacksReceived;
        Tick t = pp_end + (params_.ideal ? 0 : params_.outbox);
        eq_.scheduleAt(t, [this, msg] { hooks_.toProcessor(msg); });
    }

    eq_.scheduleAt(pp_end, [this, release_buffer] {
        if (release_buffer)
            buffers_.release();
        ppBusy_ = false;
        tryDispatch();
    });

    setLogNode(kInvalidNode);
}

void
Magic::injectedNack(const Pending &pending, bool release_buffer)
{
    const Message &msg = pending.msg;
    const Tick now = eq_.now();

    // The PP reads the header, decides to bounce, and composes the
    // NACK — about what a genuine transient-state NACK costs (HomeNack
    // in Table 3.4 territory). The protocol engine and the PP timing
    // model never see the message, so neither real directory state nor
    // the emulator's internal bookkeeping is touched.
    const Cycles occ = params_.ideal ? 0 : 6;
    ppOcc.addBusy(occ);
    ++invocations;
    handlerCount[static_cast<std::size_t>(HandlerId::HomeNack)] += 1;
    handlerCycles[static_cast<std::size_t>(HandlerId::HomeNack)] += occ;
    ++nacksSent;
    if (pending.specIssued)
        ++specUseless;

    sentinel_->recordInjected(self_, now, msg,
                              verify::TraceEntry::Kind::InjectedNack);

    Message nack;
    nack.type = MsgType::NetNack;
    nack.src = self_;
    nack.dest = msg.requester;
    nack.requester = msg.requester;
    nack.addr = msg.addr;

    const Tick pp_end = now + occ;
    launch(nack, pp_end, 0);
    eq_.scheduleAt(pp_end, [this, release_buffer] {
        if (release_buffer)
            buffers_.release();
        ppBusy_ = false;
        tryDispatch();
    });
}

void
Magic::launch(const Message &msg, Tick pp_end, Tick gate)
{
    const Cycles outbox = params_.ideal ? 0 : params_.outbox;
    const Tick header_start = pp_end + outbox;

    if (!protocol::isNetMsg(msg.type)) {
        // Processor-bound reply: outbound PI processing overlaps with
        // data staging; first word hits the bus after arbitration.
        Tick t = std::max(header_start + params_.piOut(), gate) +
                 params_.busArb + params_.busTransit;
        eq_.scheduleAt(t, [this, msg] { hooks_.toProcessor(msg); });
        return;
    }

    if (msg.dest == self_) {
        // Local loopback (e.g. a NACK the home sends itself): re-enters
        // through the network interface without transiting the mesh.
        Tick t = std::max(header_start, gate);
        eq_.scheduleAt(t, [this, msg] { fromNetwork(msg); });
        return;
    }

    // Network-bound: NI outbound header processing overlaps with data
    // staging (pipelined data buffers). Hand the departure time to the
    // network directly when the wiring supports it — the intermediate
    // "call toNetwork at t" event is pure overhead.
    Tick t = std::max(header_start + params_.niOutbound, gate);
    if (hooks_.toNetworkAt)
        hooks_.toNetworkAt(msg, t);
    else
        eq_.scheduleAt(t, [this, msg] { hooks_.toNetwork(msg); });
}

} // namespace flashsim::magic
