/**
 * @file
 * Fetch&op vs cached read-modify-write for hot synchronization.
 *
 * FLASH's MAGIC can perform fetch&op directly at the home memory — a
 * protocol the flexible controller loads like any other. A hot counter
 * updated this way costs one round trip per operation with zero
 * coherence traffic, where the cached version ping-pongs ownership,
 * invalidates sharers, and NACK-retries through transient states.
 * Measured here: a contended counter at increasing processor counts,
 * and the combining-tree barrier with fetch&op vs cached arrivals.
 */

#include <cstdio>
#include <memory>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

Tick
hotCounter(int procs, bool use_fetchop, Counter *nacks)
{
    MachineConfig cfg = MachineConfig::flash(procs);
    Machine m(cfg);
    Addr a = m.alloc(kLineSize, 0);
    Tick t = m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int i = 0; i < 32; ++i) {
            if (use_fetchop) {
                co_await env.fetchOp(a);
            } else {
                co_await env.read(a);
                co_await env.write(a);
            }
            co_await env.busy(64);
        }
    });
    if (nacks) {
        *nacks = 0;
        for (int i = 0; i < procs; ++i)
            *nacks += m.node(i).magic().nacksSent;
    }
    return t;
}

Tick
barrierStorm(int procs, bool use_fetchop)
{
    MachineConfig cfg = MachineConfig::flash(procs);
    Machine m(cfg);
    auto bar = std::make_shared<tango::BarrierVar>(m.makeBarrier());
    bar->useFetchOp = use_fetchop;
    return m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        for (int round = 0; round < 16; ++round) {
            co_await env.busy(200);
            co_await env.barrier(*bar);
        }
    });
}

} // namespace

int
main()
{
    std::printf("Fetch&op at the home memory vs cached "
                "read-modify-write\n\n");

    std::printf("Hot counter, 32 increments per processor:\n");
    std::printf("%6s | %12s %8s | %12s %8s | %8s\n", "procs", "cached",
                "NACKs", "fetch&op", "NACKs", "speedup");
    for (int procs : {4, 8, 16, 32}) {
        Counter n_cached = 0, n_fop = 0;
        Tick cached = hotCounter(procs, false, &n_cached);
        Tick fop = hotCounter(procs, true, &n_fop);
        std::printf("%6d | %12llu %8llu | %12llu %8llu | %7.2fx\n",
                    procs, static_cast<unsigned long long>(cached),
                    static_cast<unsigned long long>(n_cached),
                    static_cast<unsigned long long>(fop),
                    static_cast<unsigned long long>(n_fop),
                    static_cast<double>(cached) /
                        static_cast<double>(fop));
    }

    std::printf("\nCombining-tree barrier, 16 episodes:\n");
    std::printf("%6s | %12s | %12s | %8s\n", "procs", "cached arrivals",
                "fetch&op", "speedup");
    for (int procs : {16, 64}) {
        Tick cached = barrierStorm(procs, false);
        Tick fop = barrierStorm(procs, true);
        std::printf("%6d | %12llu | %12llu | %7.2fx\n", procs,
                    static_cast<unsigned long long>(cached),
                    static_cast<unsigned long long>(fop),
                    static_cast<double>(cached) /
                        static_cast<double>(fop));
    }

    std::printf("\n(the fetch&op handlers are ordinary PP programs — "
                "loading them is the flexibility the paper is "
                "pricing)\n");
    return 0;
}
