/** @file Unit tests for the memory controller model. */

#include <gtest/gtest.h>

#include "memsys/memory_controller.hh"

namespace flashsim::memsys
{
namespace
{

TEST(MemoryController, ReadReturnsAccessLatency)
{
    MemoryController mc(14, 16);
    EXPECT_EQ(mc.read(100), 114u);
    EXPECT_EQ(mc.reads, 1u);
}

TEST(MemoryController, BackToBackReadsSerialize)
{
    MemoryController mc(14, 16);
    EXPECT_EQ(mc.read(0), 14u);
    // Second read waits for the 16-cycle service interval.
    EXPECT_EQ(mc.read(0), 16u + 14u);
    EXPECT_EQ(mc.read(100), 114u); // idle again by then
}

TEST(MemoryController, WritesOccupyToo)
{
    MemoryController mc(14, 16);
    mc.write(0);
    EXPECT_EQ(mc.read(0), 16u + 14u);
    EXPECT_EQ(mc.writes, 1u);
}

TEST(MemoryController, ProtocolAccessesCounted)
{
    MemoryController mc(14, 16);
    mc.protocolAccess(0);
    EXPECT_EQ(mc.protocolAccesses, 1u);
    EXPECT_EQ(mc.read(0), 30u);
}

TEST(MemoryController, OccupancyAccumulates)
{
    MemoryController mc(14, 16);
    mc.read(0);
    mc.read(0);
    mc.write(0);
    EXPECT_EQ(mc.occ.busyCycles(), 48u);
    EXPECT_DOUBLE_EQ(mc.occ.fraction(96), 0.5);
}

TEST(MemoryController, FreeAtTracksBusyWindow)
{
    MemoryController mc(14, 16);
    EXPECT_EQ(mc.freeAt(), 0u);
    mc.read(10);
    EXPECT_EQ(mc.freeAt(), 26u);
}

} // namespace
} // namespace flashsim::memsys
