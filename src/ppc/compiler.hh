/**
 * @file
 * The handler compiler driver: IR -> executable PP program.
 *
 * Two independent knobs reproduce the Section 5.3 ablation:
 *   - useSpecialInstrs: keep the FLASH ISA extensions, or expand each into
 *     the DLX substitution sequence of Table 5.3.
 *   - dualIssue: statically schedule into dual-issue pairs (the PPtwine
 *     analogue), or emit single-issue code with explicit load-delay NOPs.
 */

#ifndef FLASHSIM_PPC_COMPILER_HH_
#define FLASHSIM_PPC_COMPILER_HH_

#include <string>
#include <vector>

#include "ppc/ir.hh"
#include "ppisa/ppsim.hh"

namespace flashsim::ppc
{

/** Linearized code between compiler passes. */
struct LinearCode
{
    std::string name;
    std::vector<IrInstr> instrs;
    std::vector<int> labelPos;

    static LinearCode fromFunction(const IrFunction &f);
};

/** Expand FLASH special instructions into DLX substitution sequences. */
LinearCode expandSpecials(const LinearCode &code);

/** Statically schedule into dual-issue pairs (optimized PP). */
ppisa::Program scheduleDualIssue(const LinearCode &code);

/** Emit single-issue pairs with load-delay NOPs (baseline PP). */
ppisa::Program scheduleSingleIssue(const LinearCode &code);

struct CompileOptions
{
    bool useSpecialInstrs = true;
    bool dualIssue = true;
};

/** Full pipeline: validate, optionally expand, schedule. */
ppisa::Program compile(const IrFunction &f,
                       const CompileOptions &opts = {});

} // namespace flashsim::ppc

#endif // FLASHSIM_PPC_COMPILER_HH_
