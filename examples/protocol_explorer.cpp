/**
 * @file
 * Protocol explorer: a guided tour of the MAGIC protocol machinery.
 *
 * Walks a single coherence transaction through every layer the library
 * exposes: the PP handler programs the compiler produces (optimized
 * dual-issue vs the DLX baseline), the cycle-by-cycle PPsim execution
 * with MAGIC-data-cache effects, and the authoritative directory state
 * transitions. Useful as a worked example for writing new protocol
 * handlers.
 */

#include <cstdio>

#include "magic/timing_model.hh"
#include "ppc/compiler.hh"
#include "protocol/directory.hh"
#include "protocol/handlers.hh"
#include "protocol/pp_programs.hh"

using namespace flashsim;
using namespace flashsim::protocol;

namespace
{

struct Map : AddressMap
{
    NodeId
    homeOf(Addr a) const override
    {
        return static_cast<NodeId>((a >> 12) % 4);
    }
};

struct Probe : CacheProbe
{
    bool dirty = false;
    bool
    holdsDirty(Addr) const override
    {
        return dirty;
    }
};

/** PP memory adapter over a directory store. */
struct DirMem : ppisa::PpMemory
{
    DirectoryStore &d;
    explicit DirMem(DirectoryStore &dd) : d(dd) {}
    std::uint64_t
    load(Addr a, Cycles &e) override
    {
        e = 0;
        return d.loadWord(a);
    }
    void
    store(Addr a, std::uint64_t v, Cycles &e) override
    {
        e = 0;
        d.storeWord(a, v);
    }
};

void
showState(const DirectoryStore &dir, Addr line)
{
    DirHeader h = dir.header(line);
    std::printf("  directory: dirty=%d owner=%u sharers={", h.dirty,
                h.owner);
    bool first = true;
    for (NodeId s : dir.sharers(line)) {
        std::printf("%s%u", first ? "" : ",", s);
        first = false;
    }
    std::printf("}\n");
}

} // namespace

int
main()
{
    std::printf("FlashSim protocol explorer\n");
    std::printf("==========================\n\n");

    const Addr line = 0x0000; // homed on node 0
    Map map;
    Probe probe;
    DirectoryStore dir;
    ProtocolEngine engine(0, dir, map, probe);

    // Scenario: nodes 2 and 3 read the line, then node 1 writes it.
    std::printf("1. Node 2 and node 3 read the line (clean at home):\n");
    for (NodeId reader : {NodeId{2}, NodeId{3}}) {
        Message m;
        m.type = MsgType::NetGet;
        m.src = reader;
        m.dest = 0;
        m.requester = reader;
        m.addr = line;
        HandlerResult r = engine.handle(m);
        std::printf("  GET from node %u -> handler %s, %zu message(s): ",
                    reader, handlerIdName(r.id), r.out.size());
        for (const OutMsg &o : r.out)
            std::printf("%s->%u ", msgTypeName(o.msg.type), o.msg.dest);
        std::printf("\n");
    }
    showState(dir, line);

    std::printf("\n2. Node 1 requests exclusive ownership:\n");
    Message getx;
    getx.type = MsgType::NetGetx;
    getx.src = 1;
    getx.dest = 0;
    getx.requester = 1;
    getx.addr = line;
    HandlerResult r = engine.handle(getx);
    std::printf("  GETX from node 1 -> handler %s (%d invalidations):\n",
                handlerIdName(r.id), r.costParam);
    for (const OutMsg &o : r.out)
        std::printf("    %s\n", o.msg.toString().c_str());
    showState(dir, line);

    // The same GETX through the PP program, instruction by instruction.
    std::printf("\n3. The same GETX as PP handler code:\n\n");
    HandlerPrograms progs = buildHandlerPrograms();
    std::printf("%s\n", progs.niGetx.toString().c_str());

    std::printf("4. Executing it on PPsim against a fresh directory "
                "with two sharers:\n");
    DirectoryStore dir2;
    dir2.addSharer(line, 2);
    dir2.addSharer(line, 3);
    DirMem mem(dir2);
    ppisa::RegFile regs = makeHandlerRegs(getx, 0, 0, false);
    std::vector<ppisa::SentMessage> sent;
    ppisa::RunStats stats;
    ppisa::PpSim sim;
    Cycles cycles = sim.run(progs.niGetx, regs, mem, sent, stats);
    std::printf("  %llu cycles, %llu instruction pairs, dual-issue "
                "efficiency %.2f, %llu special instructions\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(stats.pairs),
                stats.dualIssueEfficiency(),
                static_cast<unsigned long long>(stats.specials));
    for (const ppisa::SentMessage &s : sent)
        std::printf("  PP sent: %s\n", decodeSent(s, 0).toString().c_str());
    showState(dir2, line);

    std::printf("\n5. The compiler's baseline (no special instructions, "
                "single issue) for comparison:\n");
    HandlerPrograms base = buildHandlerPrograms({false, false});
    DirectoryStore dir3;
    dir3.addSharer(line, 2);
    dir3.addSharer(line, 3);
    DirMem mem3(dir3);
    regs = makeHandlerRegs(getx, 0, 0, false);
    sent.clear();
    ppisa::RunStats base_stats;
    Cycles base_cycles =
        sim.run(base.niGetx, regs, mem3, sent, base_stats);
    std::printf("  optimized: %llu cycles / %zu bytes;  baseline: %llu "
                "cycles / %zu bytes (%.1fx slower)\n",
                static_cast<unsigned long long>(cycles),
                progs.niGetx.codeBytes(),
                static_cast<unsigned long long>(base_cycles),
                base.niGetx.codeBytes(),
                static_cast<double>(base_cycles) /
                    static_cast<double>(cycles));
    return 0;
}
