/**
 * @file
 * Measurement harness helpers shared by tests and benchmarks: the
 * no-contention miss-latency probe (Table 3.3) and CRMT computation.
 */

#ifndef FLASHSIM_MACHINE_RUNNER_HH_
#define FLASHSIM_MACHINE_RUNNER_HH_

#include "machine/machine.hh"
#include "machine/report.hh"
#include "sim/sweep.hh"

namespace flashsim::machine
{

/** Per-class probe results: latency and total PP occupancy. */
struct ProbeResult
{
    MissLatencies latency;
    MissLatencies ppOccupancy; ///< same slots, PP cycles per miss class
};

/**
 * Measure the five read-miss classes of Table 3.3 on an otherwise idle
 * machine built from @p cfg: each class is produced by a directed
 * micro-workload (e.g. "dirty in a 3rd node's cache" = node 1 writes,
 * node 2 reads) and the miss service time is read from the requester's
 * cache. PP occupancy per class is the delta in machine-wide PP busy
 * cycles attributable to servicing the read.
 *
 * The ten underlying runs (5 classes x {reference, measured}) are
 * independent machines and execute through @p runner when given (or a
 * private auto-sized SweepRunner otherwise); results are identical to
 * serial execution regardless of worker count.
 */
ProbeResult probeMissLatencies(MachineConfig cfg,
                               sim::SweepRunner *runner = nullptr);

} // namespace flashsim::machine

#endif // FLASHSIM_MACHINE_RUNNER_HH_
