/**
 * @file
 * Message passing vs shared memory: the flexibility payoff the paper's
 * introduction claims ("support for multiple communication protocols",
 * evaluated in the companion [HGD+94] paper).
 *
 * One node hands a large buffer to another, two ways:
 *   (a) shared memory — the consumer read-misses every line through
 *       the coherence protocol (remote dirty at home);
 *   (b) block transfer — the producer's MAGIC streams the block into
 *       the consumer's memory with the message-passing handlers, and
 *       the consumer then reads it locally.
 * Reports end-to-end cycles, effective bandwidth, and the PP occupancy
 * each protocol costs.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

namespace
{

struct Result
{
    Tick cycles = 0;
    Cycles ppCycles = 0;
};

Result
sharedMemory(int lines)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr buf = m.alloc(static_cast<Addr>(lines) * kLineSize, 0);
    auto done_at = std::make_shared<Tick>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0) {
            // Producer writes the buffer (dirty in its cache).
            for (int i = 0; i < lines; ++i)
                co_await env.write(buf + static_cast<Addr>(i) * kLineSize);
        } else {
            co_await env.busy(40000);
            // Consumer pulls every line through the protocol.
            for (int i = 0; i < lines; ++i)
                co_await env.read(buf + static_cast<Addr>(i) * kLineSize);
            *done_at = env.proc().cursor();
        }
    });
    m.drain();
    Result r;
    r.cycles = *done_at - 10000;
    for (int i = 0; i < 2; ++i)
        r.ppCycles += m.node(i).magic().ppOcc.busyCycles();
    return r;
}

Result
blockTransfer(int lines)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr buf = m.alloc(static_cast<Addr>(lines) * kLineSize, 0);
    Addr dst = m.alloc(static_cast<Addr>(lines) * kLineSize, 1);
    auto done_at = std::make_shared<Tick>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0) {
            for (int i = 0; i < lines; ++i)
                co_await env.write(buf + static_cast<Addr>(i) * kLineSize);
            co_await env.busy(40000);
            co_await env.sendBlock(
                1, buf, static_cast<std::uint32_t>(lines) * kLineSize);
        } else {
            co_await env.recvBlock();
            // Consume from local memory.
            for (int i = 0; i < lines; ++i)
                co_await env.read(dst + static_cast<Addr>(i) * kLineSize);
            *done_at = env.proc().cursor();
        }
    });
    m.drain();
    Result r;
    r.cycles = *done_at - 10000;
    for (int i = 0; i < 2; ++i)
        r.ppCycles += m.node(i).magic().ppOcc.busyCycles();
    return r;
}

} // namespace

int
main()
{
    std::printf("Message passing vs shared memory (producer/consumer "
                "handoff between two nodes)\n\n");
    std::printf("%8s | %22s | %22s | %8s\n", "", "shared memory",
                "block transfer", "");
    std::printf("%8s | %10s %11s | %10s %11s | %8s\n", "buffer", "cycles",
                "MB/s", "cycles", "MB/s", "speedup");

    for (int lines : {32, 128, 512, 2048}) {
        Result sm = sharedMemory(lines);
        Result bt = blockTransfer(lines);
        double bytes = static_cast<double>(lines) * kLineSize;
        // 10 ns per cycle -> bytes / (cycles * 10ns) in MB/s.
        auto mbps = [bytes](Tick c) {
            return bytes / (static_cast<double>(c) * 10e-9) / 1e6;
        };
        std::printf("%5d KB | %10llu %11.0f | %10llu %11.0f | %7.2fx\n",
                    lines * 128 / 1024,
                    static_cast<unsigned long long>(sm.cycles),
                    mbps(sm.cycles),
                    static_cast<unsigned long long>(bt.cycles),
                    mbps(bt.cycles),
                    static_cast<double>(sm.cycles) /
                        static_cast<double>(bt.cycles));
    }

    std::printf("\nThe same MAGIC hardware runs both protocols — the "
                "block transfer simply loads different handlers, which "
                "is the entire argument for a programmable node "
                "controller.\n");
    return 0;
}
