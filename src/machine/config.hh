/**
 * @file
 * Whole-machine configuration: FLASH vs the ideal machine, cache sizes,
 * page placement, and the PP toolchain knobs.
 */

#ifndef FLASHSIM_MACHINE_CONFIG_HH_
#define FLASHSIM_MACHINE_CONFIG_HH_

#include <cstdint>
#include <functional>

#include "cpu/cache.hh"
#include "magic/params.hh"
#include "network/mesh.hh"
#include "ppc/compiler.hh"

namespace flashsim::machine
{

/** Physical page placement policy (Sections 3.4 and 4.3). */
enum class Placement
{
    RoundRobinPages, ///< pages striped across node memories (default)
    Node0,           ///< everything in node 0's memory (FFT hot-spot run)
    FirstFit,        ///< fill one node's memory before the next (old IRIX)
};

struct MachineConfig
{
    int numProcs = 16;
    /**
     * Worker shards for the parallel (conservative time-window PDES)
     * run loop: nodes are partitioned across this many threads, each
     * with its own event queue, advancing in barrier-synchronized
     * windows bounded by the minimum inter-node mesh transit. Results
     * are bit-identical across shard counts for a given seed; 1 (the
     * default) is the plain single-threaded loop. Clamped at
     * construction to [1, min(numProcs, 64)]; more shards than host
     * cores merely oversubscribes (the CLI clamps its knob to cores).
     */
    int shards = 1;
    magic::MagicParams magic;
    cpu::CacheParams cache;
    network::MeshParams net;
    ppc::CompileOptions ppCompile;

    Placement placement = Placement::RoundRobinPages;
    std::uint64_t pageBytes = 4096;
    /** Per-node memory filled before moving on under FirstFit. */
    std::uint64_t firstFitNodeBytes = std::uint64_t{8} << 20;

    /**
     * Page remapping hook (Section 4.4): when set it overrides every
     * allocation's home with placementHook(page index). Allocation
     * order is deterministic, so a map derived from a prior run's
     * MAGIC page-monitoring counters (see Magic::pageRemoteAccesses)
     * re-homes exactly the pages it measured — the "automatic page
     * remapping" the paper proposes building on flexibility.
     */
    std::function<NodeId(std::uint64_t page_index)> placementHook;

    /** FLASH machine with @p cache_bytes processor caches. */
    static MachineConfig
    flash(int nprocs, std::uint32_t cache_bytes = 1u << 20)
    {
        MachineConfig c;
        c.numProcs = nprocs;
        c.cache.sizeBytes = cache_bytes;
        return c;
    }

    /** The idealized hardwired machine of Section 3.1. */
    static MachineConfig
    ideal(int nprocs, std::uint32_t cache_bytes = 1u << 20)
    {
        MachineConfig c = flash(nprocs, cache_bytes);
        c.magic.ideal = true;
        c.magic.usePpEmulator = false;
        return c;
    }
};

} // namespace flashsim::machine

#endif // FLASHSIM_MACHINE_CONFIG_HH_
