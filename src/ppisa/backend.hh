/**
 * @file
 * PP execution backend selection.
 *
 * Tiny standalone header so configuration layers (magic/params.hh, the
 * CLI) can name a backend without pulling in the emulator headers.
 */

#ifndef FLASHSIM_PPISA_BACKEND_HH_
#define FLASHSIM_PPISA_BACKEND_HH_

namespace flashsim::ppisa
{

/**
 * Which engine executes PP handler programs.
 *
 *  - Interpreter: the decoded-micro-op interpreter (reference
 *    semantics; itself oracle-checked against the original per-slot
 *    interpreter, PpSim::runReference).
 *  - Threaded: token-threaded code with per-opcode specialized and
 *    pair-fused kernels (see threaded.hh). Architecturally
 *    bit-identical to the interpreter — cycles, statistics, messages,
 *    and contract panics — enforced by the debug conformance oracle
 *    (FS_PP_ORACLE) and the differential fuzz tests.
 */
enum class PpBackend
{
    Interpreter,
    Threaded,
};

/** Human-readable backend name. */
constexpr const char *
ppBackendName(PpBackend b)
{
    return b == PpBackend::Interpreter ? "interpreter" : "threaded";
}

} // namespace flashsim::ppisa

#endif // FLASHSIM_PPISA_BACKEND_HH_
