/** @file Unit tests for the mesh network model. */

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "network/mesh.hh"

namespace flashsim::network
{
namespace
{

protocol::Message
msg(NodeId src, NodeId dest, bool data = false)
{
    protocol::Message m;
    m.type = data ? protocol::MsgType::NetPut : protocol::MsgType::NetGet;
    m.src = src;
    m.dest = dest;
    m.requester = src;
    m.addr = 0x1000;
    return m;
}

TEST(MeshNetwork, SixteenNodeAverageIs22Cycles)
{
    // Section 3.2: 1 hop in + 2.6 hops + 1 hop out at 4 cycles/hop plus
    // 3 header cycles = 22 cycles for 16 processors.
    EventQueue eq;
    MeshNetwork net(eq, 16);
    EXPECT_EQ(net.side(), 4);
    EXPECT_EQ(net.avgTransit(), 22u);
}

TEST(MeshNetwork, SixtyFourNodeAverageGrows)
{
    EventQueue eq;
    MeshNetwork net(eq, 64);
    EXPECT_EQ(net.side(), 8);
    EXPECT_GT(net.avgTransit(), 22u);
    EXPECT_LT(net.avgTransit(), 50u);
}

TEST(MeshNetwork, DeliversAfterTransit)
{
    EventQueue eq;
    MeshNetwork net(eq, 16);
    Tick delivered = 0;
    net.connect(3, [&](const protocol::Message &) { delivered = eq.now(); });
    eq.schedule(100, [&] { net.send(msg(0, 3)); });
    eq.run();
    EXPECT_EQ(delivered, 100u + net.avgTransit());
}

TEST(MeshNetwork, CountsDataMessages)
{
    EventQueue eq;
    MeshNetwork net(eq, 4);
    net.connect(1, [](const protocol::Message &) {});
    net.send(msg(0, 1, false));
    net.send(msg(0, 1, true));
    eq.run();
    EXPECT_EQ(net.messages(), 2u);
    EXPECT_EQ(net.dataMessages(), 1u);
}

TEST(MeshNetwork, SelfSendPaysOnlyEntryExitInAverageMode)
{
    // Regression: a self-send never enters the mesh, so it must not be
    // charged the average internal hop count (which itself excludes
    // self-pairs) — only entry + exit at 4 cycles each plus the 3
    // header cycles.
    EventQueue eq;
    MeshNetwork net(eq, 16);
    EXPECT_EQ(net.transit(5, 5), 2u * 4u + 3u);
    EXPECT_LT(net.transit(5, 5), net.avgTransit());
    // Distinct pairs still pay the fixed average.
    EXPECT_EQ(net.transit(5, 6), net.avgTransit());
}

TEST(MeshNetwork, SelfSendPaysOnlyEntryExitInDistanceMode)
{
    EventQueue eq;
    MeshParams p;
    p.distanceBased = true;
    MeshNetwork net(eq, 16, p);
    EXPECT_EQ(net.transit(5, 5), 2u * 4u + 3u);

    // Delivery honours the reduced self-send latency.
    Tick delivered = 0;
    net.connect(5, [&](const protocol::Message &) { delivered = eq.now(); });
    net.send(msg(5, 5));
    eq.run();
    EXPECT_EQ(delivered, 2u * 4u + 3u);
}

TEST(MeshNetwork, DistanceBasedTransit)
{
    EventQueue eq;
    MeshParams p;
    p.distanceBased = true;
    MeshNetwork net(eq, 16, p);
    // Corner to corner on a 4x4 mesh: 6 internal hops + 2 = 8 hops.
    EXPECT_EQ(net.transit(0, 15), 4u * 8u + 3u);
    // Adjacent nodes: 1 + 2 hops.
    EXPECT_EQ(net.transit(0, 1), 4u * 3u + 3u);
}

TEST(MeshNetwork, FifoPerPair)
{
    EventQueue eq;
    MeshNetwork net(eq, 4);
    std::vector<Addr> order;
    net.connect(1, [&](const protocol::Message &m) {
        order.push_back(m.addr);
    });
    eq.schedule(0, [&] {
        protocol::Message a = msg(0, 1);
        a.addr = 1;
        net.send(a);
    });
    eq.schedule(1, [&] {
        protocol::Message b = msg(0, 1);
        b.addr = 2;
        net.send(b);
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<Addr>{1, 2}));
}

TEST(MeshNetwork, PerturbJitterClampsToFifo)
{
    // A later message with less jitter must not overtake an earlier
    // heavily-jittered one on the same (src, dest) pair.
    EventQueue eq;
    MeshNetwork net(eq, 4);
    std::vector<std::pair<Addr, Tick>> deliveries;
    net.connect(1, [&](const protocol::Message &m) {
        deliveries.emplace_back(m.addr, eq.now());
    });
    net.setPerturb([](const protocol::Message &m) -> Cycles {
        return m.addr == 1 ? 500 : 0;
    });
    eq.schedule(0, [&] {
        protocol::Message a = msg(0, 1);
        a.addr = 1;
        net.send(a);
    });
    eq.schedule(1, [&] {
        protocol::Message b = msg(0, 1);
        b.addr = 2;
        net.send(b);
    });
    eq.run();
    ASSERT_EQ(deliveries.size(), 2u);
    EXPECT_EQ(deliveries[0].first, 1u);
    EXPECT_EQ(deliveries[1].first, 2u);
    EXPECT_GE(deliveries[1].second, deliveries[0].second);
}

TEST(MeshNetwork, PerturbReinstallDropsStaleClamps)
{
    // A perturb pushed lastDelivery_ far into the future; clearing it
    // and installing a fresh one must start from a clean clamp table,
    // not hold new traffic behind the old floors.
    EventQueue eq;
    MeshNetwork net(eq, 4);
    Tick delivered = 0;
    net.connect(1, [&](const protocol::Message &) { delivered = eq.now(); });

    net.setPerturb([](const protocol::Message &) -> Cycles {
        return 100000;
    });
    net.send(msg(0, 1));
    eq.run();
    EXPECT_GE(delivered, 100000u);

    net.setPerturb({}); // remove
    net.setPerturb([](const protocol::Message &) -> Cycles { return 0; });
    Tick start = eq.now();
    net.send(msg(0, 1));
    eq.run();
    EXPECT_EQ(delivered, start + net.transit(0, 1));
}

TEST(MeshNetwork, SendAtDeliversAtDeparturePlusTransit)
{
    EventQueue eq;
    MeshNetwork net(eq, 16);
    Tick delivered = 0;
    net.connect(3, [&](const protocol::Message &) { delivered = eq.now(); });
    eq.schedule(10, [&] { net.sendAt(msg(0, 3), eq.now() + 7); });
    eq.run();
    EXPECT_EQ(delivered, 10u + 7u + net.avgTransit());
    EXPECT_EQ(net.messages(), 1u);
}

TEST(MeshNetwork, SendAtUnderPerturbKeepsFifoClamp)
{
    // sendAt falls back to the two-stage path under a perturb, so the
    // anti-reordering clamp still observes sends in departure order.
    EventQueue eq;
    MeshNetwork net(eq, 4);
    std::vector<Addr> order;
    net.connect(1, [&](const protocol::Message &m) {
        order.push_back(m.addr);
    });
    net.setPerturb([](const protocol::Message &m) -> Cycles {
        return m.addr == 1 ? 300 : 0;
    });
    eq.schedule(0, [&] {
        protocol::Message a = msg(0, 1);
        a.addr = 1;
        net.sendAt(a, eq.now() + 2);
        protocol::Message b = msg(0, 1);
        b.addr = 2;
        net.sendAt(b, eq.now() + 5);
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<Addr>{1, 2}));
}

TEST(MeshNetwork, SlabSlotsRecycleAcrossSends)
{
    // Sequential send/deliver cycles must recycle freed slots instead
    // of growing the slab: the capacity stays at one chunk no matter
    // how many messages pass through.
    EventQueue eq;
    MeshNetwork net(eq, 4);
    int received = 0;
    net.connect(1, [&](const protocol::Message &) { ++received; });
    for (int i = 0; i < 1000; ++i) {
        net.send(msg(0, 1));
        eq.run();
    }
    EXPECT_EQ(received, 1000);
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_EQ(net.slabCapacity(), 128u);
}

TEST(MeshNetwork, SlabGrowsUnderBurstThenDrains)
{
    // A burst wider than one chunk grows the slab; every slot is back
    // on the free list once the burst drains.
    EventQueue eq;
    MeshNetwork net(eq, 4);
    int received = 0;
    net.connect(1, [&](const protocol::Message &) { ++received; });
    constexpr int kBurst = 300;
    eq.schedule(0, [&] {
        for (int i = 0; i < kBurst; ++i)
            net.send(msg(0, 1));
    });
    eq.run();
    EXPECT_EQ(received, kBurst);
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_GE(net.slabCapacity(), static_cast<std::uint32_t>(kBurst));
}

TEST(MeshNetwork, UnconnectedDestinationPanics)
{
    EventQueue eq;
    MeshNetwork net(eq, 4);
    EXPECT_DEATH(
        {
            net.send(msg(0, 2));
            eq.run();
        },
        "no receiver");
}

} // namespace
} // namespace flashsim::network
