/**
 * @file
 * Workload lab: write your own workload against the public API.
 *
 * Demonstrates the Tango-style coroutine interface with a producer/
 * consumer pipeline (locks, barriers, and a migratory shared queue),
 * then sweeps it across cache sizes on FLASH and the ideal machine —
 * the same experiment structure the paper uses, applied to a new
 * program. Run with --help for options.
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "machine/machine.hh"
#include "machine/report.hh"
#include "sim/sweep.hh"

using namespace flashsim;
using namespace flashsim::machine;

namespace
{

/** Shared state for the pipeline workload. */
struct PipelineState
{
    Addr queueBase = 0;  ///< ring of queue slots (one line each)
    int slots = 32;
    tango::LockVar lock;
    tango::BarrierVar bar;
    int head = 0; ///< host-side ring state
    int tail = 0;
    int produced = 0;
    int consumed = 0;
    int items = 512;
};

/** Even processors produce, odd processors consume. */
tango::Task
pipeline(tango::Env &env, std::shared_ptr<PipelineState> st)
{
    co_await env.busy(0);
    const bool producer = env.id() % 2 == 0;

    while (true) {
        // Work on private data between queue operations.
        co_await env.busy(400);

        co_await env.lockAcquire(st->lock);
        bool done = st->produced >= st->items &&
                    st->consumed >= st->items;
        bool can_produce =
            producer && st->produced < st->items &&
            (st->head + 1) % st->slots != st->tail;
        bool can_consume =
            !producer && st->consumed < st->produced &&
            st->tail != st->head;
        int slot = -1;
        if (can_produce) {
            slot = st->head;
            st->head = (st->head + 1) % st->slots;
            ++st->produced;
        } else if (can_consume) {
            slot = st->tail;
            st->tail = (st->tail + 1) % st->slots;
            ++st->consumed;
        }
        co_await env.lockRelease(st->lock);

        if (slot >= 0) {
            // Touch the queue slot: the line migrates from producer to
            // consumer caches (dirty remote misses, like MP3D's cells).
            Addr a = st->queueBase + static_cast<Addr>(slot) * kLineSize;
            co_await env.read(a);
            co_await env.busy(120);
            co_await env.write(a);
        }
        if (done)
            break;
    }
    co_await env.barrier(st->bar);
}

Summary
runPipeline(const MachineConfig &cfg)
{
    Machine m(cfg);
    auto st = std::make_shared<PipelineState>();
    st->queueBase =
        m.allocAuto(static_cast<Addr>(st->slots) * kLineSize);
    st->lock = m.makeLock(0);
    st->bar = m.makeBarrier();
    m.run([st](tango::Env &env) { return pipeline(env, st); });
    m.drain();
    return summarize(m);
}

} // namespace

int
main(int argc, char **argv)
{
    int procs = 8;
    int jobs = 0; // 0: FLASHSIM_JOBS or hardware concurrency
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: workload_lab [--procs N] [--jobs N]\n"
                        "  --jobs N   sweep workers (default: "
                        "FLASHSIM_JOBS or hardware concurrency)\n");
            return 0;
        }
        if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc)
            procs = std::atoi(argv[++i]);
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::atoi(argv[++i]);
    }

    std::printf("Workload lab: producer/consumer pipeline on %d "
                "processors\n\n", procs);
    std::printf("%-10s %-7s %10s %8s %8s %8s %8s\n", "cache", "machine",
                "cycles", "miss%", "sync%", "ppOcc%", "FLASH+%");

    // The cache-size sweep runs all six machines (3 sizes x
    // FLASH/ideal) as independent jobs; results come back in
    // submission order so the table below is identical however many
    // workers execute it.
    const std::uint32_t caches[] = {1u << 20, 64u * 1024u, 4096u};
    std::vector<std::function<Summary()>> sweep_jobs;
    for (std::uint32_t cache : caches) {
        MachineConfig f = MachineConfig::flash(procs, cache);
        MachineConfig i = MachineConfig::ideal(procs, cache);
        sweep_jobs.emplace_back([f] { return runPipeline(f); });
        sweep_jobs.emplace_back([i] { return runPipeline(i); });
    }
    sim::SweepRunner runner(jobs);
    std::vector<Summary> results = runner.run(std::move(sweep_jobs));

    for (std::size_t c = 0; c < std::size(caches); ++c) {
        std::uint32_t cache = caches[c];
        const Summary &sf = results[2 * c];
        const Summary &si = results[2 * c + 1];
        double slow = 100.0 * (static_cast<double>(sf.execTime) /
                                   static_cast<double>(si.execTime) -
                               1.0);
        char label[32];
        std::snprintf(label, sizeof label, "%u KB", cache / 1024);
        std::printf("%-10s %-7s %10llu %7.2f%% %7.1f%% %7.1f%% %7.1f%%\n",
                    label, "FLASH",
                    static_cast<unsigned long long>(sf.execTime),
                    100.0 * sf.missRate, 100.0 * sf.sync,
                    100.0 * sf.avgPpOcc, slow);
        std::printf("%-10s %-7s %10llu %7.2f%% %7.1f%% %7.1f%%\n", "",
                    "ideal",
                    static_cast<unsigned long long>(si.execTime),
                    100.0 * si.missRate, 100.0 * si.sync,
                    100.0 * si.avgPpOcc);
    }

    std::printf("\nThe lock line and queue slots migrate between "
                "producers and consumers; watch the flexibility cost "
                "rise as the cache shrinks and the traffic mix shifts "
                "toward the protocol processor.\n");
    return 0;
}
