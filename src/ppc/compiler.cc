#include "ppc/compiler.hh"

namespace flashsim::ppc
{

LinearCode
LinearCode::fromFunction(const IrFunction &f)
{
    LinearCode code;
    code.name = f.name();
    code.instrs = f.instrs();
    code.labelPos = f.labelPos();
    return code;
}

ppisa::Program
compile(const IrFunction &f, const CompileOptions &opts)
{
    f.validate();
    LinearCode code = LinearCode::fromFunction(f);
    if (!opts.useSpecialInstrs)
        code = expandSpecials(code);
    return opts.dualIssue ? scheduleDualIssue(code)
                          : scheduleSingleIssue(code);
}

} // namespace flashsim::ppc
