/**
 * @file
 * Flat open-addressing tables for hot-path bookkeeping.
 *
 * Two index-addressed replacements for the std::unordered_map layers
 * that used to sit between a coherence miss and its handler:
 *
 *  - FlatCounterMap: a persistent 64-bit-key -> counter table (linear
 *    probing, power-of-two capacity) used for the MAGIC per-page
 *    monitoring counters and their machine-wide aggregation. Iteration
 *    is in slot order, which is deterministic for a deterministic
 *    insertion history.
 *
 *  - ScratchWordMap: a key -> word buffer that is bulk-reset between
 *    uses in O(1) via a generation stamp, for the MDC shadow-write
 *    tracker that is cleared at every handler invocation.
 *
 * Neither table supports erase; both grow by doubling and rehashing
 * when half full, so probes stay short.
 */

#ifndef FLASHSIM_SIM_FLAT_TABLE_HH_
#define FLASHSIM_SIM_FLAT_TABLE_HH_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/stats.hh" // Counter
#include "sim/types.hh"

namespace flashsim
{

/** Fibonacci-style mixer: spreads clustered keys over the table. */
constexpr std::uint64_t
flatTableHash(std::uint64_t key)
{
    std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
    return h ^ (h >> 32);
}

/**
 * Open-addressing 64-bit-key -> Counter map with a map-like surface
 * (operator[], find, count, empty, size, iteration).
 */
class FlatCounterMap
{
    struct Slot
    {
        std::uint64_t key = 0;
        Counter value = 0;
        bool used = false;
    };

  public:
    using value_type = std::pair<std::uint64_t, Counter>;

    FlatCounterMap() = default;

    /** Pre-size for @p n entries (power-of-two slots, <= half full). */
    void
    reserve(std::size_t n)
    {
        std::size_t want = 16;
        while (want < 2 * n)
            want <<= 1;
        if (want > slots_.size())
            rehash(want);
    }

    bool empty() const { return live_ == 0; }
    std::size_t size() const { return live_; }

    /** Value for @p key, inserting a zero entry when absent. */
    Counter &
    operator[](std::uint64_t key)
    {
        if (slots_.empty() || 2 * (live_ + 1) > slots_.size())
            rehash(slots_.empty() ? 16 : slots_.size() * 2);
        Slot &s = probe(key);
        if (!s.used) {
            s.used = true;
            s.key = key;
            s.value = 0;
            ++live_;
        }
        return s.value;
    }

    /** Pointer to @p key's value, or nullptr when absent. */
    const Counter *
    find(std::uint64_t key) const
    {
        if (slots_.empty())
            return nullptr;
        const Slot &s =
            const_cast<FlatCounterMap *>(this)->probe(key);
        return s.used ? &s.value : nullptr;
    }

    std::size_t count(std::uint64_t key) const
    {
        return find(key) != nullptr ? 1 : 0;
    }

    void
    clear()
    {
        slots_.clear();
        live_ = 0;
    }

    /** Slot-order const iterator yielding (key, value) pairs. */
    class const_iterator
    {
      public:
        using value_type = FlatCounterMap::value_type;
        using difference_type = std::ptrdiff_t;
        using reference = value_type;
        using iterator_category = std::forward_iterator_tag;

        const_iterator() = default;
        const_iterator(const Slot *p, const Slot *end) : p_(p), end_(end)
        {
            skip();
        }

        value_type operator*() const { return {p_->key, p_->value}; }

        /** Arrow support (e.g. it->first) via a temporary pair. */
        struct ArrowProxy
        {
            value_type pair;
            const value_type *operator->() const { return &pair; }
        };
        ArrowProxy operator->() const { return ArrowProxy{**this}; }

        const_iterator &
        operator++()
        {
            ++p_;
            skip();
            return *this;
        }
        const_iterator
        operator++(int)
        {
            const_iterator t = *this;
            ++*this;
            return t;
        }

        bool operator==(const const_iterator &o) const
        {
            return p_ == o.p_;
        }
        bool operator!=(const const_iterator &o) const
        {
            return p_ != o.p_;
        }

      private:
        void
        skip()
        {
            while (p_ != end_ && !p_->used)
                ++p_;
        }
        const Slot *p_ = nullptr;
        const Slot *end_ = nullptr;
    };

    const_iterator begin() const
    {
        return {slots_.data(), slots_.data() + slots_.size()};
    }
    const_iterator end() const
    {
        return {slots_.data() + slots_.size(),
                slots_.data() + slots_.size()};
    }

  private:
    Slot &
    probe(std::uint64_t key)
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t i = flatTableHash(key) & mask;
        while (slots_[i].used && slots_[i].key != key)
            i = (i + 1) & mask;
        return slots_[i];
    }

    void
    rehash(std::size_t new_size)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_size, Slot{});
        for (const Slot &s : old) {
            if (!s.used)
                continue;
            Slot &d = probe(s.key);
            d = s;
        }
    }

    std::vector<Slot> slots_;
    std::size_t live_ = 0;
};

/**
 * Scratch 64-bit-key -> word map with O(1) bulk reset: each slot
 * carries the generation it was written in, and reset() just bumps the
 * current generation so every slot reads as empty.
 */
class ScratchWordMap
{
    struct Slot
    {
        std::uint64_t key = 0;
        std::uint64_t value = 0;
        std::uint64_t gen = 0; ///< 0 = never used; matches gen_ = live
    };

  public:
    explicit ScratchWordMap(std::size_t initial_slots = 64)
    {
        std::size_t want = 16;
        while (want < initial_slots)
            want <<= 1;
        slots_.assign(want, Slot{});
    }

    /** Forget every entry (O(1): stale generations read as empty). */
    void
    reset()
    {
        ++gen_;
        live_ = 0;
    }

    /** Pointer to @p key's value from the current generation, or null. */
    const std::uint64_t *
    find(std::uint64_t key) const
    {
        const Slot &s = const_cast<ScratchWordMap *>(this)->probe(key);
        return s.gen == gen_ ? &s.value : nullptr;
    }

    /** Insert or overwrite @p key -> @p value. */
    void
    put(std::uint64_t key, std::uint64_t value)
    {
        if (2 * (live_ + 1) > slots_.size())
            grow();
        Slot &s = probe(key);
        if (s.gen != gen_) {
            s.gen = gen_;
            s.key = key;
            ++live_;
        }
        s.value = value;
    }

    std::size_t size() const { return live_; }

  private:
    Slot &
    probe(std::uint64_t key)
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t i = flatTableHash(key) & mask;
        while (slots_[i].gen == gen_ && slots_[i].key != key)
            i = (i + 1) & mask;
        return slots_[i];
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        for (const Slot &s : old) {
            if (s.gen != gen_)
                continue;
            Slot &d = probe(s.key);
            d = s;
        }
    }

    std::vector<Slot> slots_;
    std::uint64_t gen_ = 1;
    std::size_t live_ = 0;
};

} // namespace flashsim

#endif // FLASHSIM_SIM_FLAT_TABLE_HH_
