#include "apps/radix.hh"

#include "sim/logging.hh"

namespace flashsim::apps
{

namespace
{
constexpr Addr kKeyBytes = 4;
constexpr Addr kHistEntryBytes = 4;
} // namespace

void
Radix::setup(machine::Machine &m)
{
    nprocs_ = m.numProcs();
    keysPerProc_ = p_.keys / static_cast<std::uint32_t>(nprocs_);
    if (keysPerProc_ == 0)
        fatal("Radix: fewer keys than processors");

    const Addr block_bytes = static_cast<Addr>(keysPerProc_) * kKeyBytes;
    const Addr hist_bytes = static_cast<Addr>(p_.radix) * kHistEntryBytes;
    for (int p = 0; p < nprocs_; ++p) {
        aBase_.push_back(m.alloc(block_bytes, static_cast<NodeId>(p)));
        bBase_.push_back(m.alloc(block_bytes, static_cast<NodeId>(p)));
        histBase_.push_back(m.alloc(hist_bytes, static_cast<NodeId>(p)));
    }
    bar_ = m.makeBarrier();

    keysA_.resize(p_.keys);
    keysB_.resize(p_.keys);
    Rng rng(p_.seed);
    for (std::uint32_t &k : keysA_)
        k = static_cast<std::uint32_t>(rng.next());
    hist_.assign(static_cast<std::size_t>(nprocs_),
                 std::vector<std::uint32_t>(
                     static_cast<std::size_t>(p_.radix), 0));
    rankBase_ = hist_;
}

Addr
Radix::keyAddr(const std::vector<Addr> &bases, std::uint32_t idx) const
{
    std::uint32_t proc = idx / keysPerProc_;
    std::uint32_t local = idx % keysPerProc_;
    return bases[proc] + static_cast<Addr>(local) * kKeyBytes;
}

tango::Task
Radix::run(tango::Env &env)
{
    co_await env.busy(0);
    const int me = env.id();
    const std::uint32_t i0 =
        static_cast<std::uint32_t>(me) * keysPerProc_;
    const std::uint32_t digits =
        static_cast<std::uint32_t>(p_.radix) - 1;
    int shift_bits = 0;
    for (int r = p_.radix; r > 1; r >>= 1)
        ++shift_bits;

    for (int pass = 0; pass < p_.passes; ++pass) {
        std::vector<std::uint32_t> &src =
            (pass & 1) ? keysB_ : keysA_;
        std::vector<std::uint32_t> &dst =
            (pass & 1) ? keysA_ : keysB_;
        const std::vector<Addr> &src_base = (pass & 1) ? bBase_ : aBase_;
        const std::vector<Addr> &dst_base = (pass & 1) ? aBase_ : bBase_;
        const int shift = pass * shift_bits;

        // Phase 1: local histogram. The source block is local memory,
        // but after the first pass its lines are dirty in the caches of
        // whichever processors wrote them during the permutation — the
        // "local, dirty remote" misses of Table 4.1.
        auto &h = hist_[static_cast<std::size_t>(me)];
        std::fill(h.begin(), h.end(), 0);
        const Addr my_hist = histBase_[static_cast<std::size_t>(me)];
        for (Addr off = 0;
             off < static_cast<Addr>(p_.radix) * kHistEntryBytes;
             off += kLineSize)
            co_await env.write(my_hist + off);
        for (std::uint32_t i = 0; i < keysPerProc_; ++i) {
            co_await env.read(keyAddr(src_base, i0 + i));
            std::uint32_t d = (src[i0 + i] >> shift) & digits;
            ++h[d];
            co_await env.write(my_hist +
                               static_cast<Addr>(d) * kHistEntryBytes);
            co_await env.busy(p_.instrsPerKey);
        }
        co_await env.barrier(bar_);

        // Phase 2: global rank computation — read every processor's
        // histogram (remote clean traffic) and prefix-sum on the host.
        for (int p = 0; p < nprocs_; ++p) {
            for (Addr off = 0;
                 off < static_cast<Addr>(p_.radix) * kHistEntryBytes;
                 off += kLineSize) {
                co_await env.read(
                    histBase_[static_cast<std::size_t>(p)] + off);
                co_await env.busy(16);
            }
        }
        auto &rank = rankBase_[static_cast<std::size_t>(me)];
        for (std::uint32_t d = 0, run = 0;
             d < static_cast<std::uint32_t>(p_.radix); ++d) {
            std::uint32_t before_me = 0;
            std::uint32_t total = 0;
            for (int p = 0; p < nprocs_; ++p) {
                if (p < me)
                    before_me += hist_[static_cast<std::size_t>(p)][d];
                total += hist_[static_cast<std::size_t>(p)][d];
            }
            rank[d] = run + before_me;
            run += total;
        }
        co_await env.barrier(bar_);

        // Phase 3: permutation — scatter local keys to their global
        // rank positions in the destination buffer (remote writes).
        for (std::uint32_t i = 0; i < keysPerProc_; ++i) {
            co_await env.read(keyAddr(src_base, i0 + i));
            std::uint32_t key = src[i0 + i];
            std::uint32_t d = (key >> shift) & digits;
            std::uint32_t dest = rank[d]++;
            dst[dest] = key;
            co_await env.write(keyAddr(dst_base, dest));
            co_await env.busy(p_.instrsPerKey);
        }
        co_await env.barrier(bar_);
    }
}

} // namespace flashsim::apps
