#include "sim/sweep.hh"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/logging.hh"

namespace flashsim::sim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string
describeCurrentException()
{
    try {
        throw;
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown exception";
    }
}

} // namespace

int
resolveWorkers(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("FLASHSIM_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1 && v <= 4096)
            return static_cast<int>(v);
        warn("sweep: ignoring invalid FLASHSIM_JOBS='%s'", env);
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc ? static_cast<int>(hc) : 1;
}

void
SweepRunner::runIndexed(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    metrics_ = SweepMetrics{};
    metrics_.jobs.resize(count);
    const int nw = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(workers_),
                              count ? count : 1));
    metrics_.workers = nw;
    const auto sweep_start = Clock::now();

    if (nw <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            const auto job_start = Clock::now();
            try {
                body(i);
            } catch (const SweepJobError &) {
                throw; // nested sweep: already attributed
            } catch (...) {
                throw SweepJobError(i, describeCurrentException());
            }
            metrics_.jobs[i] = {secondsSince(job_start), 0};
        }
        metrics_.wallSeconds = secondsSince(sweep_start);
        for (const JobMetrics &j : metrics_.jobs)
            metrics_.serialSeconds += j.wallSeconds;
        return;
    }

    // Round-robin pre-distribution over per-worker deques. A worker
    // pops from its own front and steals from a victim's back; since
    // jobs never enqueue further jobs, an empty scan means the pool is
    // drained and the worker can exit.
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<std::size_t> q;
    };
    std::vector<WorkerQueue> queues(static_cast<std::size_t>(nw));
    for (std::size_t i = 0; i < count; ++i)
        queues[i % static_cast<std::size_t>(nw)].q.push_back(i);

    std::mutex err_mu;
    bool have_error = false;
    std::size_t error_job = 0;
    std::string error_msg;

    auto worker = [&](int w) {
        for (;;) {
            std::size_t idx = 0;
            bool got = false;
            {
                WorkerQueue &own = queues[static_cast<std::size_t>(w)];
                std::lock_guard<std::mutex> lock(own.mu);
                if (!own.q.empty()) {
                    idx = own.q.front();
                    own.q.pop_front();
                    got = true;
                }
            }
            for (int v = 0; !got && v < nw; ++v) {
                if (v == w)
                    continue;
                WorkerQueue &victim = queues[static_cast<std::size_t>(v)];
                std::lock_guard<std::mutex> lock(victim.mu);
                if (!victim.q.empty()) {
                    idx = victim.q.back();
                    victim.q.pop_back();
                    got = true;
                }
            }
            if (!got)
                return;
            const auto job_start = Clock::now();
            try {
                body(idx);
            } catch (...) {
                std::string msg = describeCurrentException();
                std::lock_guard<std::mutex> lock(err_mu);
                // Keep the smallest failing index so the surfaced
                // error does not depend on worker scheduling.
                if (!have_error || idx < error_job) {
                    have_error = true;
                    error_job = idx;
                    error_msg = std::move(msg);
                }
            }
            metrics_.jobs[idx] = {secondsSince(job_start), w};
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nw));
    for (int w = 0; w < nw; ++w)
        threads.emplace_back(worker, w);
    for (std::thread &t : threads)
        t.join();

    metrics_.wallSeconds = secondsSince(sweep_start);
    for (const JobMetrics &j : metrics_.jobs)
        metrics_.serialSeconds += j.wallSeconds;

    if (have_error)
        throw SweepJobError(error_job, error_msg);
}

} // namespace flashsim::sim
