/**
 * @file
 * One FLASH node: compute processor + cache + MAGIC + local memory,
 * wired to the mesh (Figure 2.1).
 */

#ifndef FLASHSIM_MACHINE_NODE_HH_
#define FLASHSIM_MACHINE_NODE_HH_

#include <functional>
#include <memory>

#include "cpu/cache.hh"
#include "cpu/processor.hh"
#include "machine/config.hh"
#include "magic/magic.hh"
#include "network/mesh.hh"
#include "protocol/handlers.hh"
#include "protocol/pp_programs.hh"
#include "sim/event_queue.hh"
#include "tango/runtime.hh"
#include "tango/task.hh"

namespace flashsim::machine
{

class Node
{
  public:
    Node(EventQueue &eq, NodeId id, const MachineConfig &cfg,
         const protocol::AddressMap &map,
         const protocol::HandlerPrograms *programs,
         network::MeshNetwork &net);

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    /** Launch @p workload on this node's processor. */
    void startWorkload(const std::function<tango::Task(tango::Env &)> &workload);

    NodeId id() const { return id_; }
    magic::Magic &magic() { return *magic_; }
    const magic::Magic &magic() const { return *magic_; }
    cpu::Cache &cache() { return *cache_; }
    const cpu::Cache &cache() const { return *cache_; }
    cpu::Processor &proc() { return *proc_; }
    const cpu::Processor &proc() const { return *proc_; }
    tango::Env &env() { return *env_; }

  private:
    tango::Task
    rootTask(std::function<tango::Task(tango::Env &)> workload);

    NodeId id_;
    std::unique_ptr<magic::Magic> magic_;
    std::unique_ptr<cpu::Cache> cache_;
    std::unique_ptr<cpu::Processor> proc_;
    std::unique_ptr<tango::Env> env_;
    tango::Task inner_; ///< the workload task, kept alive
    tango::Task root_;  ///< wrapper marking the processor finished
};

} // namespace flashsim::machine

#endif // FLASHSIM_MACHINE_NODE_HH_
