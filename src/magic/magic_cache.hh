/**
 * @file
 * The MAGIC data cache (MDC) and instruction cache (MIC) models.
 *
 * Protocol code and data live in main memory; the PP reaches them
 * through these on-chip caches (Section 5.2). The MDC is modeled as a
 * tag-only set-associative cache: each PP load/store probes it and a
 * miss costs the 29-cycle penalty plus a main-memory fill (and possibly
 * a dirty-victim writeback, both of which occupy the node's memory
 * system).
 */

#ifndef FLASHSIM_MAGIC_MAGIC_CACHE_HH_
#define FLASHSIM_MAGIC_MAGIC_CACHE_HH_

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace flashsim::magic
{

/** Outcome of one MDC access. */
struct MdcAccess
{
    bool hit = true;
    bool victimWriteback = false; ///< a dirty victim was evicted
};

/** Tag-only set-associative cache with LRU replacement. */
class MagicCache
{
  public:
    MagicCache(std::uint32_t size_bytes, std::uint32_t assoc,
               std::uint32_t line_bytes);

    /** Probe/fill for @p addr; updates LRU and dirty state. */
    MdcAccess access(Addr addr, bool is_write);

    /** Invalidate all entries (used between benchmark phases). */
    void flush();

    // Statistics (Section 5.2 reports overall/read/write miss rates).
    Counter reads = 0;
    Counter readMisses = 0;
    Counter writes = 0;
    Counter writeMisses = 0;
    Counter writebacks = 0;

    double
    missRate() const
    {
        return ratio(static_cast<double>(readMisses + writeMisses),
                     static_cast<double>(reads + writes));
    }

    double
    readMissRate() const
    {
        return ratio(static_cast<double>(readMisses),
                     static_cast<double>(reads));
    }

    double
    writeMissRate() const
    {
        return ratio(static_cast<double>(writeMisses),
                     static_cast<double>(writes));
    }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lru = 0;
    };

    std::uint32_t numSets_;
    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::uint32_t lineShift_ = 0; ///< log2(lineBytes_)
    std::uint32_t setShift_ = 0;  ///< log2(numSets_)
    std::uint64_t lruClock_ = 0;
    std::vector<Way> ways_; ///< numSets_ * assoc_, set-major
};

} // namespace flashsim::magic

#endif // FLASHSIM_MAGIC_MAGIC_CACHE_HH_
