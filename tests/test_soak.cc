/**
 * @file
 * Multi-seed fault-injection soak: every (seed, workload) pair runs
 * with the coherence oracle and watchdog enabled under seeded protocol
 * perturbation (mesh jitter, forced NACKs, hint drop/duplication,
 * inbound stalls) and must finish with zero violations and zero trips.
 * This is the robustness acceptance bar: injection stresses the
 * NACK/retry and stale-pointer corner paths far harder than clean runs
 * do, and the oracle holds the machine to the golden invariants the
 * whole way. The sweep shards across the SweepRunner pool, so it also
 * soaks the per-thread log-context and post-mortem plumbing.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/fft.hh"
#include "apps/lu.hh"
#include "apps/radix.hh"
#include "apps/workload.hh"
#include "machine/machine.hh"
#include "sim/sweep.hh"

namespace flashsim::apps
{
namespace
{

constexpr int kSeeds = 8;

std::unique_ptr<Workload>
makeSoakWorkload(int which)
{
    switch (which) {
      case 0: {
          FftParams p;
          p.logN = 10;
          return std::make_unique<Fft>(p);
      }
      case 1: {
          LuParams p;
          p.n = 64;
          return std::make_unique<Lu>(p);
      }
      default: {
          RadixParams p;
          p.keys = 1 << 12;
          return std::make_unique<Radix>(p);
      }
    }
}

machine::MachineConfig
soakConfig(std::uint64_t seed)
{
    // Small caches raise the eviction (hint) rate; moderate injection
    // probabilities exercise every perturbation without livelocking.
    machine::MachineConfig cfg = machine::MachineConfig::flash(4, 64u * 1024u);
    cfg.magic.verify.oracle = true;
    cfg.magic.verify.watchdog = true;
    cfg.magic.verify.haltOnViolation = false;
    cfg.magic.verify.haltOnTrip = false;
    cfg.magic.verify.fault.enabled = true;
    cfg.magic.verify.fault.seed = seed;
    cfg.magic.verify.fault.meshJitter = 10;
    cfg.magic.verify.fault.extraNackProb = 0.05;
    cfg.magic.verify.fault.dropHintProb = 0.05;
    cfg.magic.verify.fault.dupHintProb = 0.05;
    cfg.magic.verify.fault.inboundStall = 4;
    return cfg;
}

struct SoakResult
{
    Tick execTime = 0;
    Counter violations = 0;
    Counter trips = 0;
    Counter retired = 0;
    Counter perturbations = 0;
    std::size_t trackedLines = 0;
};

TEST(SoakTest, MultiSeedInjectionSweepIsOracleClean)
{
    std::vector<std::function<SoakResult()>> jobs;
    for (int w = 0; w < 3; ++w) {
        for (int s = 0; s < kSeeds; ++s) {
            jobs.emplace_back([w, s] {
                auto workload = makeSoakWorkload(w);
                auto m = runWorkload(soakConfig(
                                         static_cast<std::uint64_t>(s) + 1),
                                     *workload);
                const verify::Sentinel *sent = m->sentinel();
                SoakResult r;
                r.execTime = m->executionTime();
                r.violations = sent->violations();
                r.trips = sent->trips();
                r.retired = sent->watchdog()->retired();
                r.perturbations = sent->injectorStats().nacksInjected() +
                                  sent->injectorStats().hintsDropped() +
                                  sent->injectorStats().hintsDuped() +
                                  sent->injectorStats().jitterCycles() +
                                  sent->injectorStats().stallCycles();
                r.trackedLines = sent->oracle()->trackedLines();
                return r;
            });
        }
    }

    sim::SweepRunner runner;
    std::vector<SoakResult> results = runner.run(std::move(jobs));
    ASSERT_EQ(results.size(), static_cast<std::size_t>(3 * kSeeds));
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("workload " + std::to_string(i / kSeeds) + " seed " +
                     std::to_string(i % kSeeds + 1));
        const SoakResult &r = results[i];
        EXPECT_EQ(r.violations, 0u);
        EXPECT_EQ(r.trips, 0u);
        EXPECT_GT(r.execTime, 0u);
        EXPECT_GT(r.retired, 0u);
        EXPECT_GT(r.trackedLines, 0u);
        // The injector actually perturbed the run (otherwise the soak
        // proves nothing).
        EXPECT_GT(r.perturbations, 0u);
    }
}

TEST(SoakTest, InjectionSweepIsDeterministicAcrossWorkerCounts)
{
    // The thread-local sentinel plumbing must not let one worker's
    // machine leak into another's: the same injected job list must
    // digest identically serial and parallel.
    auto jobs = [] {
        std::vector<std::function<Tick()>> v;
        for (int s = 0; s < 4; ++s)
            v.emplace_back([s] {
                auto w = makeSoakWorkload(s % 3);
                auto m = runWorkload(
                    soakConfig(static_cast<std::uint64_t>(s) + 1), *w);
                return m->executionTime();
            });
        return v;
    };
    sim::SweepRunner serial(1);
    sim::SweepRunner parallel(4);
    EXPECT_EQ(serial.run(jobs()), parallel.run(jobs()));
}

} // namespace
} // namespace flashsim::apps
