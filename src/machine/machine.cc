#include "machine/machine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace flashsim::machine
{

namespace
{
/** Base of the application address space (must stay clear of the
 *  protocol-data regions at 1<<44 and above). */
constexpr Addr kAppBase = Addr{1} << 20;
} // namespace

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), programs_(protocol::sharedHandlerPrograms(cfg.ppCompile)),
      base_(kAppBase), next_(kAppBase)
{
    cfg_.magic.pageShift = 0;
    for (std::uint64_t b = cfg_.pageBytes; b > 1; b >>= 1)
        ++cfg_.magic.pageShift;
    if (cfg_.pageBytes != 0 &&
        (cfg_.pageBytes & (cfg_.pageBytes - 1)) == 0)
        pageShift_ = cfg_.magic.pageShift;
    net_ = std::make_unique<network::MeshNetwork>(eq_, cfg_.numProcs,
                                                  cfg_.net);
    nodes_.reserve(static_cast<std::size_t>(cfg_.numProcs));
    for (int i = 0; i < cfg_.numProcs; ++i) {
        nodes_.push_back(std::make_unique<Node>(
            eq_, static_cast<NodeId>(i), cfg_, *this, programs_.get(), *net_));
    }

    // A machine runs wholly on one thread (sweep workers included), so
    // the thread-local log context is safe to point at this machine.
    setLogTickSource([this] { return eq_.now(); });

    if (cfg_.magic.verify.any()) {
        sentinel_ = std::make_unique<verify::Sentinel>(
            eq_, cfg_.magic.verify, cfg_.numProcs);

        verify::CoherenceOracle::Wiring w;
        w.numNodes = cfg_.numProcs;
        w.homeOf = [this](Addr a) { return homeOf(a); };
        w.header = [this](NodeId home, Addr line) {
            return nodes_[home]->magic().directory().header(line);
        };
        w.sharers = [this](NodeId home, Addr line) {
            return nodes_[home]->magic().directory().sharers(line);
        };
        w.cacheState = [this](NodeId n, Addr line) {
            switch (nodes_[n]->cache().state(line)) {
              case cpu::Cache::State::Invalid: return 0;
              case cpu::Cache::State::Shared: return 1;
              case cpu::Cache::State::Exclusive: return 2;
            }
            return 0;
        };
        sentinel_->wireOracle(std::move(w));

        for (auto &n : nodes_)
            n->magic().attachSentinel(sentinel_.get());
        if (sentinel_->injector().enabled() &&
            cfg_.magic.verify.fault.meshJitter > 0) {
            net_->setPerturb([this](const protocol::Message &) {
                return sentinel_->injector().meshJitter();
            });
        }
    }
}

Machine::~Machine()
{
    setLogTickSource({});
}

Addr
Machine::alloc(std::uint64_t bytes, NodeId node)
{
    if (node >= static_cast<NodeId>(cfg_.numProcs))
        fatal("Machine::alloc: node %u out of range", node);
    // Under the Section 4.3 hot-spot policies the physical allocator
    // ignores NUMA placement hints: first-fit is the original
    // bus-oriented IRIX port, Node0 the all-memory-on-one-node FFT
    // experiment. Round-robin (the tuned kernel) honors explicit hints.
    if (cfg_.placement == Placement::Node0 ||
        cfg_.placement == Placement::FirstFit || cfg_.placementHook)
        return allocAuto(bytes);
    Addr start = next_;
    std::uint64_t pages =
        (bytes + cfg_.pageBytes - 1) / cfg_.pageBytes;
    if (pages == 0)
        pages = 1;
    for (std::uint64_t p = 0; p < pages; ++p)
        pageHome_.push_back(node);
    next_ += pages * cfg_.pageBytes;
    return start;
}

Addr
Machine::allocAuto(std::uint64_t bytes)
{
    Addr start = next_;
    std::uint64_t pages =
        (bytes + cfg_.pageBytes - 1) / cfg_.pageBytes;
    if (pages == 0)
        pages = 1;
    for (std::uint64_t p = 0; p < pages; ++p) {
        if (cfg_.placementHook) {
            pageHome_.push_back(cfg_.placementHook(pageHome_.size()) %
                                static_cast<NodeId>(cfg_.numProcs));
            continue;
        }
        NodeId home = 0;
        switch (cfg_.placement) {
          case Placement::RoundRobinPages:
            home = static_cast<NodeId>(rrCounter_++ %
                                       static_cast<std::uint64_t>(
                                           cfg_.numProcs));
            break;
          case Placement::Node0:
            home = 0;
            break;
          case Placement::FirstFit:
            home = static_cast<NodeId>(
                (firstFitAllocated_ / cfg_.firstFitNodeBytes) %
                static_cast<std::uint64_t>(cfg_.numProcs));
            firstFitAllocated_ += cfg_.pageBytes;
            break;
        }
        pageHome_.push_back(home);
    }
    next_ += pages * cfg_.pageBytes;
    return start;
}

NodeId
Machine::homeOf(Addr addr) const
{
    if (addr < base_)
        panic("homeOf: address 0x%llx below app base",
              static_cast<unsigned long long>(addr));
    std::uint64_t page = pageShift_ != 0
                             ? (addr - base_) >> pageShift_
                             : (addr - base_) / cfg_.pageBytes;
    if (page >= pageHome_.size())
        panic("homeOf: address 0x%llx was never allocated",
              static_cast<unsigned long long>(addr));
    return pageHome_[page];
}

tango::BarrierVar
Machine::makeBarrier()
{
    tango::BarrierVar b;
    b.parties = cfg_.numProcs;
    int ngroups = (cfg_.numProcs + tango::BarrierVar::kArity - 1) /
                  tango::BarrierVar::kArity;
    for (int g = 0; g < ngroups; ++g) {
        tango::BarrierVar::Group grp;
        // Each group's lines live on one of its members' nodes.
        NodeId home = static_cast<NodeId>(
            (g * tango::BarrierVar::kArity) % cfg_.numProcs);
        grp.countAddr = alloc(kLineSize, home);
        grp.flagAddr = alloc(kLineSize, home);
        grp.size = std::min(tango::BarrierVar::kArity,
                            cfg_.numProcs -
                                g * tango::BarrierVar::kArity);
        b.groups.push_back(grp);
    }
    b.rootCountAddr = alloc(kLineSize, 0);
    return b;
}

tango::LockVar
Machine::makeLock(NodeId node)
{
    tango::LockVar l;
    l.addr = alloc(kLineSize, node);
    return l;
}

std::uint64_t
Machine::pageIndexOf(Addr addr) const
{
    return (addr - base_) / cfg_.pageBytes;
}

FlatCounterMap
Machine::pageHeat() const
{
    FlatCounterMap heat;
    std::size_t entries = 0;
    for (const auto &n : nodes_)
        entries += n->magic().pageRemoteAccesses.size();
    heat.reserve(entries);
    const std::uint64_t base_page = base_ / cfg_.pageBytes;
    for (const auto &n : nodes_) {
        for (const auto &[abs_page, count] :
             n->magic().pageRemoteAccesses)
            heat[abs_page - base_page] += count;
    }
    // NRVO/move: the aggregate is handed to the caller, never copied.
    return heat;
}

Tick
Machine::run(const Workload &workload)
{
    for (auto &n : nodes_)
        n->startWorkload(workload);

    // finished() is monotone, so it suffices to watch one unfinished
    // processor at a time: the scan resumes where it left off instead
    // of walking every node on every event step.
    std::size_t watch = 0;
    auto all_done = [this, &watch] {
        while (watch < nodes_.size() && nodes_[watch]->proc().finished())
            ++watch;
        return watch == nodes_.size();
    };

    while (!all_done()) {
        if (!eq_.step())
            fatal("Machine::run: deadlock — event queue empty with %d "
                  "processors unfinished",
                  cfg_.numProcs);
    }

    execTime_ = 0;
    for (auto &n : nodes_)
        execTime_ = std::max(execTime_, n->proc().finishTime());
    return execTime_;
}

void
Machine::drain()
{
    eq_.run();
    // The machine is quiesced: every in-flight message has landed, so
    // the oracle can hold it to the strict (no transient windows)
    // whole-machine invariants.
    if (sentinel_)
        sentinel_->finalCheck();
}

} // namespace flashsim::machine
