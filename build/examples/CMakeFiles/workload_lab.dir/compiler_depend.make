# Empty compiler generated dependencies file for workload_lab.
# This may be replaced when dependencies are built.
