/**
 * @file
 * Ablations for the design choices DESIGN.md calls out, beyond the
 * paper's own Section 5 studies:
 *
 *  - MDC size sweep (the paper fixes 64 KB; how sensitive is the OS
 *    workload to it?)
 *  - MDC miss penalty sweep (what the 29 cycles are worth)
 *  - fixed-average vs distance-based network transit
 *  - NACK retry backoff policy (flat vs exponential)
 *  - handler timing source: PPsim emulation vs the Table 3.4 constants
 */

#include <cstdio>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

int
main()
{
    std::printf("FlashSim design ablations\n=========================\n\n");

    // Every ablation point is an independent machine; submit all of
    // them as one sweep and print section by section afterwards (the
    // results vector preserves submission order).
    std::vector<std::function<RunOutcome()>> jobs;
    auto add = [&jobs](MachineConfig cfg, const std::string &app) {
        jobs.emplace_back([cfg, app] { return runApp(cfg, app); });
        return jobs.size() - 1;
    };

    // 1. MDC geometry sweep on the MDC-heaviest workload.
    const std::uint32_t mdc_kb[] = {16u, 32u, 64u, 128u};
    std::size_t mdc_first = jobs.size();
    for (std::uint32_t kb : mdc_kb) {
        MachineConfig cfg = MachineConfig::flash(8);
        cfg.magic.mdcBytes = kb * 1024;
        add(cfg, "os");
    }

    // 2. MDC miss penalty.
    const Cycles penalties[] = {Cycles{0}, Cycles{29}, Cycles{60}};
    std::size_t pen_first = jobs.size();
    for (Cycles pen : penalties) {
        MachineConfig cfg = MachineConfig::flash(8);
        cfg.magic.mdcMissPenalty = pen;
        add(cfg, "os");
    }

    // 3. Network model: paper's fixed average vs per-pair distances.
    std::size_t net_avg = add(MachineConfig::flash(16), "fft");
    MachineConfig dist_cfg = MachineConfig::flash(16);
    dist_cfg.net.distanceBased = true;
    std::size_t net_dist = add(dist_cfg, "fft");

    // 4. NACK retry backoff (MP3D has the most transient racing).
    const Cycles backoffs[] = {Cycles{4}, Cycles{16}, Cycles{64}};
    std::size_t backoff_first = jobs.size();
    for (Cycles b : backoffs) {
        MachineConfig cfg = MachineConfig::flash(16);
        cfg.magic.nackRetryBackoff = b;
        add(cfg, "mp3d");
    }

    // 5. Timing source: PPsim-executed handlers vs Table 3.4 constants.
    std::size_t timing_emu = add(MachineConfig::flash(16), "fft");
    MachineConfig table_cfg = MachineConfig::flash(16);
    table_cfg.magic.usePpEmulator = false;
    std::size_t timing_table = add(table_cfg, "fft");

    sim::SweepRunner runner;
    std::vector<RunOutcome> outs = runner.run(std::move(jobs));
    printSweepMetrics("ablations", runner.lastMetrics());

    std::printf("1. MAGIC data cache size (OS workload, FLASH):\n");
    for (std::size_t i = 0; i < std::size(mdc_kb); ++i)
        std::printf("   %4u KB MDC: %9llu cycles\n", mdc_kb[i],
                    static_cast<unsigned long long>(
                        outs[mdc_first + i].summary.execTime));

    std::printf("\n2. MDC miss penalty (OS workload, 64 KB MDC; paper "
                "charges 29 cycles):\n");
    for (std::size_t i = 0; i < std::size(penalties); ++i)
        std::printf("   penalty %2llu: %9llu cycles\n",
                    static_cast<unsigned long long>(penalties[i]),
                    static_cast<unsigned long long>(
                        outs[pen_first + i].summary.execTime));

    std::printf("\n3. Network transit model (FFT, FLASH):\n");
    std::printf("   fixed 22-cycle average: %9llu cycles\n",
                static_cast<unsigned long long>(
                    outs[net_avg].summary.execTime));
    std::printf("   per-pair mesh distance: %9llu cycles\n",
                static_cast<unsigned long long>(
                    outs[net_dist].summary.execTime));

    std::printf("\n4. NACK retry base backoff (MP3D, FLASH; retries "
                "double per consecutive NACK from this base):\n");
    for (std::size_t i = 0; i < std::size(backoffs); ++i) {
        const RunOutcome &r = outs[backoff_first + i];
        std::printf("   base %2llu: %9llu cycles, %llu NACKs\n",
                    static_cast<unsigned long long>(backoffs[i]),
                    static_cast<unsigned long long>(r.summary.execTime),
                    static_cast<unsigned long long>(r.summary.nacksSent));
    }

    std::printf("\n5. Handler timing source (FFT, FLASH):\n");
    {
        Tick te = outs[timing_emu].summary.execTime;
        Tick tt = outs[timing_table].summary.execTime;
        std::printf("   PPsim-executed handlers: %9llu cycles\n",
                    static_cast<unsigned long long>(te));
        std::printf("   Table 3.4 constants:     %9llu cycles "
                    "(%.1f%% apart)\n",
                    static_cast<unsigned long long>(tt),
                    100.0 * (static_cast<double>(te) /
                                 static_cast<double>(tt) -
                             1.0));
    }

    std::printf("\nDone.\n");
    return 0;
}
