/**
 * @file
 * Reproduces Figure 4.2 and the 64 KB columns of Table 4.2: the
 * parallel applications with 64 KB processor caches (the paper omits
 * LU and the OS workload at this size). Capacity misses shift the miss
 * mix toward local lines, so the FLASH/ideal gap does not necessarily
 * widen — radix's relative performance actually improves.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace flashsim;
using namespace flashsim::bench;

int
main()
{
    std::printf("Figure 4.2 / Table 4.2 (64 KB caches, 16 procs)\n\n");
    sim::SweepRunner runner;
    machine::ProbeResult fp =
        machine::probeMissLatencies(MachineConfig::flash(16), &runner);
    machine::ProbeResult ip =
        machine::probeMissLatencies(MachineConfig::ideal(16), &runner);

    // Paper Table 4.2, 64 KB columns: miss rate / local-clean fraction.
    struct PaperRow
    {
        const char *app;
        double missRate;
        double localClean;
    };
    const PaperRow paper[] = {
        {"barnes", 0.6, 7.0},
        {"fft", 1.1, 42.7},
        {"mp3d", 7.1, 1.4},
        {"ocean", 2.5, 88.6},
        {"radix", 4.2, 80.1},
    };

    std::vector<PairSpec> specs;
    for (const PaperRow &row : paper)
        specs.push_back(pairSpec(row.app, 16, 64u * 1024u));
    std::vector<Pair> pairs = runPairs(specs, runner);
    printSweepMetrics("fig_4_2", runner.lastMetrics());

    std::printf("Execution time breakdowns (FLASH normalized to 100):\n");
    std::vector<std::pair<std::string, Pair>> results;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        printBars(specs[i].app, pairs[i]);
        results.emplace_back(specs[i].app, std::move(pairs[i]));
    }

    std::printf("\nTable 4.2 statistics (measured):\n");
    for (auto &[app, p] : results)
        printTable41Row(app, p, fp.latency, ip.latency);

    std::printf("\nPaper vs measured (64 KB):\n");
    std::printf("%-8s | %8s %8s | %8s %8s\n", "app", "missP", "missM",
                "LCp", "LCm");
    for (std::size_t i = 0; i < results.size(); ++i) {
        auto &[app, p] = results[i];
        std::printf("%-8s | %7.2f%% %7.2f%% | %7.1f%% %7.1f%%\n",
                    app.c_str(), paper[i].missRate,
                    100.0 * p.flash.summary.missRate, paper[i].localClean,
                    100.0 * p.flash.summary.dist.localClean);
    }
    return 0;
}
