/**
 * @file
 * The whole simulated multiprocessor: nodes, mesh, shared address space
 * with page placement, and the run loop.
 */

#ifndef FLASHSIM_MACHINE_MACHINE_HH_
#define FLASHSIM_MACHINE_MACHINE_HH_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/config.hh"
#include "machine/node.hh"
#include "network/mesh.hh"
#include "protocol/handlers.hh"
#include "protocol/pp_programs.hh"
#include "sim/event_queue.hh"
#include "sim/flat_table.hh"
#include "sim/shard.hh"
#include "tango/runtime.hh"
#include "tango/task.hh"
#include "verify/sentinel.hh"

namespace flashsim::machine
{

/** Workload body run on every processor. */
using Workload = std::function<tango::Task(tango::Env &)>;

class Machine : public protocol::AddressMap
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine() override;

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    // -- Address space ------------------------------------------------------
    /** Allocate @p bytes homed on @p node; returns a line-aligned base. */
    Addr alloc(std::uint64_t bytes, NodeId node);
    /** Allocate with the configured placement policy. */
    Addr allocAuto(std::uint64_t bytes);
    NodeId homeOf(Addr addr) const override;

    /** Allocate the lines of a barrier (placed on node 0, the classic
     *  hot spot) and size it for all processors. */
    tango::BarrierVar makeBarrier();
    /** Allocate a lock line homed on @p node. */
    tango::LockVar makeLock(NodeId node = 0);

    /** Index of @p addr's page in allocation order (the key space of
     *  MachineConfig::placementHook). */
    std::uint64_t pageIndexOf(Addr addr) const;

    /**
     * Aggregate the MAGIC page-monitoring counters machine-wide
     * (requires cfg.magic.monitorPages): page index -> remote requests.
     * Feed this into a placementHook on a fresh machine to implement
     * the paper's Section 4.4 page remapping.
     */
    FlatCounterMap pageHeat() const;

    // -- Execution ------------------------------------------------------------
    /**
     * Run @p workload on every processor to completion. With
     * cfg.shards > 1 the run executes across that many worker threads
     * as conservative time-window PDES (see sim/shard.hh); results are
     * bit-identical to the single-threaded run for the same seed.
     * @return machine execution time in cycles (max processor finish).
     */
    Tick run(const Workload &workload);

    /** Drain remaining protocol events (trailing writebacks, acks). */
    void drain();

    /**
     * Bit-exact fingerprint of the final architectural state: every
     * allocated line's directory header and sharer list at its home,
     * plus each node's cache state for it. Two drained runs that agree
     * here reached the same caches and directory bit for bit — the
     * lossy-run equivalence criterion. Call after drain().
     */
    std::uint64_t stateDigest() const;

    // -- Access ----------------------------------------------------------------
    /** Shard 0's event queue (the only one when shards() == 1). */
    EventQueue &eq() { return *eqs_[0]; }
    /** Resolved shard count (cfg.shards clamped to the machine/host). */
    int shards() const { return shards_; }
    /** The conservative window width: minimum inter-node transit. */
    Tick lookahead() const { return lookahead_; }
    int numProcs() const { return cfg_.numProcs; }
    Node &node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
    const Node &node(int i) const
    {
        return *nodes_[static_cast<std::size_t>(i)];
    }
    network::MeshNetwork &network() { return *net_; }
    const network::MeshNetwork &network() const { return *net_; }
    const MachineConfig &config() const { return cfg_; }
    const protocol::HandlerPrograms &programs() const { return *programs_; }
    Tick executionTime() const { return execTime_; }

    /** The verification sentinel, or null when cfg.magic.verify is all
     *  off (the default). */
    verify::Sentinel *sentinel() { return sentinel_.get(); }
    const verify::Sentinel *sentinel() const { return sentinel_.get(); }

    /**
     * PDES-engine efficiency counters for the sharded run loop
     * (windows scheduled by run() and drain()). Deliberately *not*
     * part of Summary: they describe the engine, not the simulated
     * machine, and legitimately vary with shard count — so they must
     * stay out of the bit-identity signatures. All zero after a
     * single-shard run.
     */
    struct ShardRunStats
    {
        std::uint64_t windowsRun = 0;
        /** Windows whose start jumped past the previous window's end
         *  (idle-gap skipping), and the ticks jumped over. */
        std::uint64_t windowsSkipped = 0;
        std::uint64_t ticksSkipped = 0;
        /** Windows widened beyond the minimum lookahead. */
        std::uint64_t windowsWidened = 0;
        /** Sum of window widths (mean width = / windowsRun). */
        std::uint64_t ticksWindowed = 0;
        Tick maxWidth = 0;
        /** Futex parks inside the run barrier (all shards). */
        std::uint64_t barrierParks = 0;
        /** Wall time shard 0 spent in the barrier rendezvous,
         *  including window edges it ran itself (an estimate). */
        std::uint64_t barrierWaitNs = 0;
        /** Sync-arbiter phases executed. */
        std::uint64_t syncPhases = 0;

        double
        meanWidth() const
        {
            return windowsRun != 0
                       ? static_cast<double>(ticksWindowed) /
                             static_cast<double>(windowsRun)
                       : 0.0;
        }
    };
    const ShardRunStats &shardStats() const { return shardStats_; }

  private:
    /** Drive shard @p s from its current time up to @p wend: drain
     *  event ticks and run sync phases in canonical order, then
     *  publish that the whole window is complete. */
    void runShardWindow(int s, Tick wend);
    /** Earliest pending work (event or sync op) machine-wide; only
     *  meaningful when every shard is quiescent. */
    Tick earliestWork() const;
    /** Safe end for a window starting at @p T: adaptive widening up to
     *  the earliest possible cross-shard arrival, never below
     *  T + lookahead. Window-edge (quiescent) only. */
    Tick windowEndFor(Tick T) const;
    /** Account one scheduled window [T, wend) in shardStats_. */
    void noteWindow(Tick T, Tick wend);
    void runSingle(const std::function<bool()> &all_done);
    void runSharded(const std::function<bool()> &all_done);

    MachineConfig cfg_;
    int shards_ = 1;
    Tick lookahead_ = 0;
    /** One event queue per shard; queue 0 doubles as the machine's
     *  "main" queue (sentinel, logging, drain tail). */
    std::vector<std::unique_ptr<EventQueue>> eqs_;
    std::vector<int> shardOf_;
    SyncArbiter arb_;
    /** Shared, immutable, pre-decoded program set (process-wide cache:
     *  see protocol::sharedHandlerPrograms). */
    std::shared_ptr<const protocol::HandlerPrograms> programs_;
    std::unique_ptr<network::MeshNetwork> net_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unique_ptr<verify::Sentinel> sentinel_;

    /** Page table: page index -> home node. */
    std::vector<NodeId> pageHome_;
    Addr base_;
    Addr next_;
    /** log2(pageBytes) when it is a power of two, else 0 — homeOf runs
     *  per protocol message, so avoid the 64-bit division when we can. */
    std::uint32_t pageShift_ = 0;
    std::uint64_t rrCounter_ = 0;
    std::uint64_t firstFitAllocated_ = 0;
    Tick execTime_ = 0;

    /** Engine counters (see ShardRunStats). Written at window edges
     *  (serial) and read quiescent. */
    ShardRunStats shardStats_;
    Tick lastWindowEnd_ = 0;
    bool anyWindow_ = false;
};

} // namespace flashsim::machine

#endif // FLASHSIM_MACHINE_MACHINE_HH_
