/** @file Unit tests for statistics primitives. */

#include <gtest/gtest.h>

#include "sim/random.hh"
#include "sim/stats.hh"

namespace flashsim
{
namespace
{

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
    EXPECT_DOUBLE_EQ(d.last(), 30.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(5);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0.0);
}

TEST(Distribution, ResetClearsLastSample)
{
    // Regression: reset() used to leave last_ stale, so a reused
    // distribution reported the previous run's final sample.
    Distribution d;
    d.sample(42);
    d.reset();
    EXPECT_EQ(d.last(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    d.sample(7);
    EXPECT_DOUBLE_EQ(d.last(), 7.0);
    EXPECT_DOUBLE_EQ(d.min(), 7.0);
    EXPECT_DOUBLE_EQ(d.max(), 7.0);
}

TEST(Occupancy, FractionOfInterval)
{
    Occupancy o;
    o.addBusy(25);
    o.addBusy(25);
    EXPECT_DOUBLE_EQ(o.fraction(100), 0.5);
    EXPECT_DOUBLE_EQ(o.fraction(0), 0.0);
    EXPECT_EQ(o.busyCycles(), 50u);
    o.reset();
    EXPECT_EQ(o.busyCycles(), 0u);
}

TEST(Helpers, PctAndRatio)
{
    EXPECT_DOUBLE_EQ(pct(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(pct(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(3, 4), 0.75);
    EXPECT_DOUBLE_EQ(ratio(3, 0), 0.0);
}

TEST(StatSet, SetGetHas)
{
    StatSet s;
    s.set("x", 3.5);
    EXPECT_TRUE(s.has("x"));
    EXPECT_FALSE(s.has("y"));
    EXPECT_DOUBLE_EQ(s.get("x"), 3.5);
    EXPECT_DEATH(s.get("y"), "unknown stat");
}

TEST(StatSet, HandleAndStringViewsAgree)
{
    StatSet s;
    StatSet::Handle h = s.handle("misses");
    s.add(h, 2.0);
    s.add(h, 3.0);
    EXPECT_DOUBLE_EQ(s.get(h), 5.0);
    EXPECT_DOUBLE_EQ(s.get("misses"), 5.0);

    // Writes through either view land in the same slot.
    s.set("misses", 7.0);
    EXPECT_DOUBLE_EQ(s.get(h), 7.0);

    // The lazily rebuilt report view reflects handle-path updates made
    // after the previous rebuild.
    EXPECT_DOUBLE_EQ(s.all().at("misses"), 7.0);
    s.add(h, 1.0);
    EXPECT_DOUBLE_EQ(s.all().at("misses"), 8.0);
}

TEST(StatSet, HandlesAreStableAndDistinct)
{
    StatSet s;
    StatSet::Handle a = s.handle("a");
    StatSet::Handle b = s.handle("b");
    EXPECT_NE(a, b);
    // Re-resolving an existing name returns the original handle and
    // does not disturb its value.
    s.add(a, 4.0);
    EXPECT_EQ(s.handle("a"), a);
    EXPECT_DOUBLE_EQ(s.get(a), 4.0);
}

TEST(StatSet, AllListsEveryRegisteredStatNameOrdered)
{
    StatSet s;
    s.set("zeta", 1.0);
    StatSet::Handle h = s.handle("alpha"); // registered, never written
    (void)h;
    const auto &all = s.all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all.begin()->first, "alpha");
    EXPECT_DOUBLE_EQ(all.at("alpha"), 0.0);
    EXPECT_DOUBLE_EQ(all.at("zeta"), 1.0);
}

TEST(StatSet, UnknownNameStillPanicsAfterHandleUse)
{
    // Handle registration must not change the string-view contract:
    // unknown names panic on get() and read false from has().
    StatSet s;
    s.add(s.handle("known"), 1.0);
    EXPECT_FALSE(s.has("missing"));
    EXPECT_DEATH(s.get("missing"), "unknown stat");
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng c(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(c.below(17), 17u);
        double u = c.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

// Golden draws for the widening-multiply (Lemire) reduction. These pin
// the cross-platform sequence: workload address streams are derived
// from these draws, so a change here silently changes every seeded
// simulation. Update deliberately, never to paper over a regression.
TEST(Rng, BelowGoldenSequence)
{
    Rng r(42);
    const std::uint64_t expected[] = {2, 5, 5, 6, 5, 5, 1, 3, 2, 4};
    for (std::uint64_t e : expected)
        EXPECT_EQ(r.below(7), e);
    Rng s(42);
    const std::uint64_t expected1000[] = {339, 782, 790, 944, 764,
                                          835, 204, 439, 302, 673};
    for (std::uint64_t e : expected1000)
        EXPECT_EQ(s.below(1000), e);
}

// below() must consume exactly one next() per call regardless of the
// bound, so mixed-draw replay sequences stay aligned.
TEST(Rng, BelowConsumesOneDrawPerCall)
{
    Rng a(9), b(9);
    a.below(3);
    a.below(1000000007ull);
    a.below(2);
    b.next();
    b.next();
    b.next();
    EXPECT_EQ(a.next(), b.next());
}

// The widening multiply maps the full 64-bit draw onto [0, bound), so
// small bounds must still reach every value (the old modulo reduction
// did too, but with a low-value skew this distribution check would
// flag if the reduction regressed to e.g. taking only high bits of a
// narrow draw).
TEST(Rng, BelowCoversRangeUniformly)
{
    Rng r(1234);
    constexpr std::uint64_t kBound = 8;
    constexpr int kDraws = 8000;
    int counts[kBound] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.below(kBound)];
    for (std::uint64_t v = 0; v < kBound; ++v) {
        EXPECT_GT(counts[v], kDraws / static_cast<int>(kBound) / 2)
            << "value " << v << " drawn too rarely";
        EXPECT_LT(counts[v], kDraws * 2 / static_cast<int>(kBound))
            << "value " << v << " drawn too often";
    }
}

#ifndef NDEBUG
TEST(RngDeathTest, BelowZeroBoundAsserts)
{
    EXPECT_DEATH(
        {
            Rng r(5);
            (void)r.below(0);
        },
        "nonzero bound");
}
#endif

} // namespace
} // namespace flashsim
