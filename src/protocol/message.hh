/**
 * @file
 * Protocol message definitions.
 *
 * Everything that moves between units in a FLASH node (and between
 * nodes) is a message; MAGIC's inbox dispatches each message type to a
 * protocol handler via the jump table. The message vocabulary below
 * implements the dynamic pointer allocation cache-coherence protocol
 * (Simoni; the paper's initial FLASH protocol) with NACK/retry conflict
 * resolution and three-hop dirty forwarding.
 */

#ifndef FLASHSIM_PROTOCOL_MESSAGE_HH_
#define FLASHSIM_PROTOCOL_MESSAGE_HH_

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace flashsim::protocol
{

/**
 * Message types. Pi* messages cross the processor interface; Net*
 * messages cross the network interface. Values are stable because the
 * PP handler programs encode them in Send immediates.
 */
enum class MsgType : std::uint8_t
{
    // Processor -> MAGIC
    PiGet = 0,        ///< read miss
    PiGetx = 1,       ///< write miss / upgrade
    PiWriteback = 2,  ///< dirty line eviction (data)
    PiReplaceHint = 3,///< clean line eviction notice
    // MAGIC -> processor
    PiPut = 4,        ///< read data reply
    PiPutx = 5,       ///< exclusive data reply; aux = pending inval acks
    PiInval = 6,      ///< invalidate processor cache line
    // Network request messages
    NetGet = 8,       ///< read request to home
    NetGetx = 9,      ///< exclusive request to home
    NetFwdGet = 10,   ///< home -> dirty owner: forward read
    NetFwdGetx = 11,  ///< home -> dirty owner: forward exclusive
    // Network reply messages
    NetPut = 12,      ///< data reply (home or owner -> requester)
    NetPutx = 13,     ///< exclusive data reply; aux = pending inval acks
    NetSwb = 14,      ///< sharing writeback (owner -> home, data)
    NetOwnXfer = 15,  ///< ownership transfer notice (owner -> home)
    NetInval = 16,    ///< invalidation request (home -> sharer)
    NetInvalAck = 17, ///< invalidation ack (sharer -> requester)
    NetWriteback = 18,///< dirty eviction writeback (owner -> home, data)
    NetReplaceHint = 19, ///< clean eviction notice (sharer -> home)
    NetNack = 20,     ///< negative ack: line pending, retry
    // Message-passing protocol (the "second protocol" MAGIC's
    // flexibility exists to support; cf. the companion [HGD+94] work):
    NetBlockXfer = 21, ///< one line of an uncached block transfer;
                       ///< aux = remaining chunks after this one
    NetBlockAck = 22,  ///< whole block landed in the receiver's memory
    // Uncached fetch&op synchronization (FLASH's MAGIC performed these
    // at the home memory, so hot counters never ping-pong as lines):
    PiFetchOp = 23,    ///< processor-issued fetch&op on an uncached word
    NetFetchOp = 24,   ///< fetch&op forwarded to the home node
    NetFetchOpAck = 25,///< fetch&op result back to the requester
};

/** Number of distinct message type codes (jump table size). */
inline constexpr int kNumMsgTypes = 26;

/** True for messages that carry a full cache line of data. */
bool carriesData(MsgType t);

/** True for messages that arrive over the network interface. */
bool isNetMsg(MsgType t);

const char *msgTypeName(MsgType t);

/**
 * A protocol message. For forwarded requests, @c requester preserves the
 * original requesting node across the three-hop path.
 */
struct Message
{
    MsgType type = MsgType::PiGet;
    NodeId src = 0;       ///< sending node
    NodeId dest = 0;      ///< destination node
    NodeId requester = 0; ///< original requester (== src for 2-hop)
    Addr addr = 0;        ///< line-aligned address
    std::uint32_t aux = 0;///< inval count / sharer count as needed

    std::string toString() const;
};

/**
 * Packing of (addr, aux) into the single 64-bit Send argument used by PP
 * handler programs: bits [0,40) address, bits [40,56) aux, bits [56,64)
 * requester. Conformance tests compare C++ handler output against PP
 * program output through this encoding.
 */
constexpr std::uint64_t
packSendArg(Addr addr, std::uint32_t aux, NodeId requester)
{
    return (addr & ((std::uint64_t{1} << 40) - 1)) |
           (static_cast<std::uint64_t>(aux & 0xffff) << 40) |
           (static_cast<std::uint64_t>(requester & 0xff) << 56);
}

constexpr Addr
sendArgAddr(std::uint64_t arg)
{
    return arg & ((std::uint64_t{1} << 40) - 1);
}

constexpr std::uint32_t
sendArgAux(std::uint64_t arg)
{
    return static_cast<std::uint32_t>((arg >> 40) & 0xffff);
}

constexpr NodeId
sendArgRequester(std::uint64_t arg)
{
    return static_cast<NodeId>((arg >> 56) & 0xff);
}

} // namespace flashsim::protocol

#endif // FLASHSIM_PROTOCOL_MESSAGE_HH_
