/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 * panic() for simulator bugs, fatal() for user/configuration errors,
 * warn()/inform() for non-fatal status.
 */

#ifndef FLASHSIM_SIM_LOGGING_HH_
#define FLASHSIM_SIM_LOGGING_HH_

#include <cstdarg>
#include <string>

namespace flashsim
{

/** Print a formatted message and abort(); use for internal invariant
 *  violations (simulator bugs). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1); use for configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; simulation continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);

} // namespace flashsim

#endif // FLASHSIM_SIM_LOGGING_HH_
