/**
 * @file
 * The coherence oracle: a zero-time golden shadow model of every cache
 * line's protocol state, cross-checked against the real directory and
 * processor caches at every handler completion.
 *
 * The oracle re-derives each protocol transition from first principles
 * (message type + golden state), so a handler that diverges from the
 * dynamic-pointer-allocation protocol — a forgotten addSharer, a leaked
 * link, a lost dirty bit — shows up as a mismatch at the very handler
 * that introduced it, with node/tick/address attached, instead of as a
 * plausible-but-wrong latency number thousands of cycles later.
 *
 * Golden state per line keeps two views:
 *
 *  - the *mirror*: what the home directory words must contain right
 *    now. Updated exactly at the handlers that update the directory
 *    (including the deferred SWB/OwnXfer updates of the 3-hop path),
 *    and compared field-for-field after every home handler.
 *
 *  - the *truth*: which node really owns the line, which nodes are
 *    entitled to a shared copy, and data epochs (writeEpoch bumps at
 *    each exclusive grant, memEpoch records what main memory holds).
 *    Backs the single-writer, sharers-consistent and no-lost-dirty-data
 *    invariants: at most one cache Exclusive and only the truth owner;
 *    any Shared copy held by an entitled or inval-pending node; memory
 *    never serves a line whose latest epoch lives in a cache.
 */

#ifndef FLASHSIM_VERIFY_ORACLE_HH_
#define FLASHSIM_VERIFY_ORACLE_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "protocol/directory.hh"
#include "protocol/handlers.hh"
#include "protocol/message.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace flashsim::verify
{

/** One invariant violation, with full blame context. */
struct Violation
{
    Tick tick = 0;
    NodeId node = 0;
    Addr addr = 0;
    std::string kind;   ///< stable identifier, e.g. "dir-mismatch"
    std::string detail; ///< human-readable specifics
};

class CoherenceOracle
{
  public:
    /** Accessors into the live machine, installed by machine::Machine. */
    struct Wiring
    {
        int numNodes = 0;
        std::function<NodeId(Addr)> homeOf;
        std::function<protocol::DirHeader(NodeId home, Addr line)> header;
        std::function<std::vector<NodeId>(NodeId home, Addr line)> sharers;
        /** 0 = Invalid, 1 = Shared, 2 = Exclusive. */
        std::function<int(NodeId node, Addr line)> cacheState;
    };

    /**
     * @param allow_hint_anomalies duplicate sharer entries and hint
     * underflows are expected (not violations) when the fault injector
     * drops or duplicates replacement hints.
     */
    CoherenceOracle(Wiring wiring, bool allow_hint_anomalies);

    /** Observe a completed handler (after its cache operations ran). */
    void onHandler(NodeId node, bool at_home, Tick now,
                   const protocol::Message &msg,
                   const protocol::HandlerResult &res);

    /**
     * Windowed (sharded) observation: apply the golden transition now
     * but postpone the directory/cache cross-checks — they read other
     * nodes' state, which another shard may be mutating mid-window.
     * The touched lines are checked by runDeferredChecks() at the next
     * window edge, when every shard is quiescent.
     */
    void onHandlerDeferred(NodeId node, bool at_home, Tick now,
                           const protocol::Message &msg,
                           const protocol::HandlerResult &res);

    /** Run the postponed checks for every line touched since the last
     *  call (window-edge, machine quiescent but not drained). */
    void runDeferredChecks(Tick now);

    /** Whole-machine consistency check on a quiesced machine. */
    void finalCheck(Tick now);

    Counter violations() const { return violationCount_; }
    /** First violations, capped (the count keeps rising past the cap). */
    const std::vector<Violation> &violationLog() const { return log_; }

    /** Called on every violation (dump / halt policy lives outside). */
    std::function<void(const Violation &)> onViolation;

    /** Lines with golden state (diagnostics). */
    std::size_t trackedLines() const { return lines_.size(); }

  private:
    struct GoldenLine
    {
        // Mirror of the home directory words.
        bool mirrorDirty = false;
        NodeId mirrorOwner = kInvalidNode;
        /** Sharer-list multiset: count per node (dropped hints make
         *  duplicate directory entries legitimate under injection). */
        std::vector<std::uint16_t> mirrorCount;

        // Ground truth.
        bool truthDirty = false;
        NodeId truthOwner = kInvalidNode;
        std::uint64_t truthSharers = 0; ///< bitmask: entitled Shared
        std::uint64_t invalPending = 0; ///< inval sent, not yet arrived
        /** Sharers cleared by an exclusive grant whose eviction hint
         *  may still be in flight: a hint crossing the invalidation on
         *  the mesh is a benign race (hints are imprecise by design),
         *  forgiven once per invalidation event. */
        std::uint64_t hintDebt = 0;
        std::uint64_t writeEpoch = 0;
        std::uint64_t memEpoch = 0;
        bool swbInFlight = false; ///< 3-hop sharing writeback en route
    };

    GoldenLine &line(Addr line_base);
    GoldenLine *find(Addr line_base);

    /** The golden-state transition shared by the live and deferred
     *  paths. Returns false for traffic that bypasses the directory. */
    bool applyTransition(NodeId node, bool at_home, Tick now,
                         const protocol::Message &msg,
                         const protocol::HandlerResult &res, Addr lb);

    void fail(Tick now, NodeId node, Addr addr, const char *kind,
              std::string detail);

    /** Field-for-field directory-vs-mirror compare at the home node. */
    void checkDirectory(Tick now, NodeId home, Addr line_base,
                        const GoldenLine &g);
    /** Single-writer and sharers-consistent checks across caches. */
    void checkCaches(Tick now, NodeId node, Addr line_base,
                     const GoldenLine &g, bool quiesced);

    Wiring w_;
    bool allowHintAnomalies_;
    std::unordered_map<Addr, GoldenLine> lines_;
    /** Lines with a pending deferred check (windowed mode). */
    std::vector<Addr> touched_;
    Counter violationCount_ = 0;
    std::vector<Violation> log_;
    static constexpr std::size_t kLogCap = 100;
};

} // namespace flashsim::verify

#endif // FLASHSIM_VERIFY_ORACLE_HH_
