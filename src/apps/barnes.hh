/**
 * @file
 * Barnes: hierarchical Barnes-Hut N-body (Table 3.5: 8192 particles,
 * theta = 1.0).
 *
 * Each step builds an octree over the particles (cells are written by
 * their builder and land dirty in its cache), then every processor
 * computes forces on its particle block by walking the tree with the
 * opening criterion theta: cells near the root are read by everyone
 * (remote clean after the first reader downgrades them), deeper cells
 * less so — giving the read-mostly sharing mix of Table 4.1 (52.6%
 * remote dirty remote, 38.7% remote clean at 1 MB).
 */

#ifndef FLASHSIM_APPS_BARNES_HH_
#define FLASHSIM_APPS_BARNES_HH_

#include <array>
#include <cstdint>

#include "apps/workload.hh"
#include "sim/random.hh"

namespace flashsim::apps
{

struct BarnesParams
{
    int particles = 4096; ///< paper: 8192
    int steps = 3;
    double theta = 1.0;   ///< opening criterion (paper: 1.0)
    std::uint64_t seed = 99;
    std::uint64_t instrsPerInteraction = 170;

    static BarnesParams
    paper()
    {
        BarnesParams p;
        p.particles = 8192;
        return p;
    }
};

class Barnes : public Workload
{
  public:
    explicit Barnes(BarnesParams params = {}) : p_(params) {}

    std::string name() const override { return "barnes"; }
    void setup(machine::Machine &m) override;
    tango::Task run(tango::Env &env) override;

  private:
    struct Cell
    {
        double cx = 0, cy = 0, cz = 0; ///< center of mass
        double size = 0;               ///< spatial extent
        double mass = 0;
        std::array<int, 8> child{};    ///< child cell ids (-1: none)
        int body = -1;                 ///< particle id for leaves
        Addr addr = 0;                 ///< simulated cell record line
    };

    void buildTree();
    int insert(int cell, int body, double x, double y, double z,
               double size, int depth);
    void summarize(int cell);
    /** Collect the cells a traversal from @p body touches. */
    void walk(int cell, int body, std::vector<int> &out) const;

    BarnesParams p_;
    int nprocs_ = 0;
    int perProc_ = 0;

    std::vector<double> px_, py_, pz_;
    std::vector<Addr> bodyAddr_;  ///< particle records (per-proc blocks)
    std::vector<Cell> cells_;
    std::vector<Addr> cellPool_;  ///< simulated cell lines, round-robin
    tango::BarrierVar bar_;
    Rng rng_{99};
};

} // namespace flashsim::apps

#endif // FLASHSIM_APPS_BARNES_HH_
