/**
 * @file
 * Tests for the message-passing (block transfer) protocol — the second
 * protocol MAGIC's flexibility exists to support.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "machine/report.hh"

namespace flashsim::machine
{
namespace
{

TEST(MsgPass, SingleBlockDelivered)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr src = m.alloc(8 * kLineSize, 0);
    auto recv_token = std::make_shared<Addr>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0) {
            co_await env.sendBlock(1, src, 8 * kLineSize);
        } else {
            *recv_token = co_await env.recvBlock();
        }
    });
    m.drain();
    // The completion token is the final chunk's line address.
    EXPECT_EQ(*recv_token, src + 7 * kLineSize);
    EXPECT_EQ(m.node(0).magic().blockChunksSent, 8u);
    EXPECT_EQ(m.node(1).magic().blockChunksReceived, 8u);
    EXPECT_EQ(m.node(1).magic().blocksCompleted, 1u);
}

TEST(MsgPass, SenderWaitsForAck)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr src = m.alloc(4 * kLineSize, 0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0)
            co_await env.sendBlock(1, src, 4 * kLineSize);
        else
            co_await env.recvBlock();
    });
    m.drain();
    // Round trip: chunks out, landing, ack back — well over a network
    // round trip of time must have been absorbed as stall.
    Tick sender_finish = m.node(0).proc().finishTime();
    EXPECT_GT(sender_finish, 2u * 22u);
    EXPECT_GT(m.node(0).proc().breakdown().read, 0u);
}

TEST(MsgPass, BlocksBypassTheDirectory)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr src = m.alloc(16 * kLineSize, 0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0)
            co_await env.sendBlock(1, src, 16 * kLineSize);
        else
            co_await env.recvBlock();
    });
    m.drain();
    // No coherence state was created for the transferred lines.
    const auto &dir = m.node(0).magic().directory();
    for (int i = 0; i < 16; ++i) {
        Addr a = src + static_cast<Addr>(i) * kLineSize;
        EXPECT_FALSE(dir.header(a).dirty);
        EXPECT_EQ(dir.countSharers(a), 0);
    }
    // But the receiver's memory system did absorb the data.
    EXPECT_GE(m.node(1).magic().memory().writes, 16u);
}

TEST(MsgPass, ManyBlocksInterleave)
{
    MachineConfig cfg = MachineConfig::flash(4);
    Machine m(cfg);
    Addr src = m.alloc(64 * kLineSize, 0);
    auto received = std::make_shared<int>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0) {
            // Send four blocks to node 3 back to back.
            for (int b = 0; b < 4; ++b)
                co_await env.sendBlock(
                    3, src + static_cast<Addr>(b) * 16 * kLineSize,
                    16 * kLineSize);
        } else if (env.id() == 3) {
            for (int b = 0; b < 4; ++b) {
                co_await env.recvBlock();
                ++*received;
            }
        }
    });
    m.drain();
    EXPECT_EQ(*received, 4);
    EXPECT_EQ(m.node(3).magic().blocksCompleted, 4u);
}

TEST(MsgPass, RecvBeforeSendBlocksUntilArrival)
{
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    Addr src = m.alloc(2 * kLineSize, 0);
    auto recv_done_at = std::make_shared<Tick>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 1) {
            co_await env.recvBlock(); // waits: sender starts much later
            *recv_done_at = env.proc().cursor();
        } else {
            co_await env.busy(40000); // 10k cycles
            co_await env.sendBlock(1, src, 2 * kLineSize);
        }
    });
    m.drain();
    EXPECT_GT(*recv_done_at, 10000u);
}

TEST(MsgPass, TransferThroughputNearMemoryBandwidth)
{
    // A large block should stream at roughly the memory service rate
    // (20 cycles per 128-byte line), far better than per-line coherent
    // reads with their protocol round trips.
    MachineConfig cfg = MachineConfig::flash(2);
    Machine m(cfg);
    const int lines = 256;
    Addr src = m.alloc(static_cast<Addr>(lines) * kLineSize, 0);
    auto t0 = std::make_shared<Tick>(0);
    m.run([=](tango::Env &env) -> tango::Task {
        co_await env.busy(0);
        if (env.id() == 0) {
            co_await env.sendBlock(
                1, src, static_cast<std::uint32_t>(lines) * kLineSize);
            *t0 = env.proc().cursor();
        } else {
            co_await env.recvBlock();
        }
    });
    m.drain();
    double cycles_per_line = static_cast<double>(*t0) / lines;
    EXPECT_LT(cycles_per_line, 30.0); // near the 20-cycle memory rate
    EXPECT_GT(cycles_per_line, 15.0);
}

} // namespace
} // namespace flashsim::machine
