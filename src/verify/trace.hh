/**
 * @file
 * Bounded per-node trace of recent protocol activity.
 *
 * Each node owns a fixed-depth ring recording handler invocations and
 * injector actions. The rings cost two stores per record and never
 * allocate after construction; they exist solely to be replayed as a
 * post-mortem when the watchdog trips, the oracle flags a violation, or
 * the process dies in fatal()/panic().
 */

#ifndef FLASHSIM_VERIFY_TRACE_HH_
#define FLASHSIM_VERIFY_TRACE_HH_

#include <cstdint>
#include <ostream>
#include <vector>

#include "protocol/handlers.hh"
#include "protocol/message.hh"
#include "sim/types.hh"

namespace flashsim::verify
{

/** One recorded protocol event. */
struct TraceEntry
{
    enum class Kind : std::uint8_t
    {
        Handler,        ///< a handler ran for the message
        InjectedNack,   ///< the injector NACKed the request instead
        DroppedHint,    ///< the injector swallowed a replacement hint
        DupedHint,      ///< the injector duplicated a replacement hint
        DroppedRequest, ///< the injector killed an inbound request
        TxnRetry,       ///< a timed-out transaction was re-issued
    };

    Tick tick = 0;
    Kind kind = Kind::Handler;
    protocol::MsgType type = protocol::MsgType::PiGet;
    protocol::HandlerId handler = protocol::HandlerId::ServeReadMemory;
    NodeId src = 0;
    NodeId requester = 0;
    Addr addr = 0;
    std::uint32_t aux = 0;
};

/** Fixed-capacity ring of TraceEntry. */
class TraceRing
{
  public:
    explicit TraceRing(std::uint32_t depth = 64)
        : entries_(depth ? depth : 1)
    {}

    void
    record(const TraceEntry &e)
    {
        entries_[static_cast<std::size_t>(next_ % entries_.size())] = e;
        ++next_;
    }

    /** Replay oldest-to-newest onto @p os, prefixing @p node. */
    void
    dump(std::ostream &os, NodeId node) const
    {
        std::uint64_t n = next_ < entries_.size()
                              ? next_
                              : static_cast<std::uint64_t>(entries_.size());
        std::uint64_t first = next_ - n;
        for (std::uint64_t i = first; i < next_; ++i) {
            const TraceEntry &e =
                entries_[static_cast<std::size_t>(i % entries_.size())];
            os << "  [node " << node << " t=" << e.tick << "] ";
            switch (e.kind) {
              case TraceEntry::Kind::Handler:
                os << protocol::msgTypeName(e.type) << " -> "
                   << protocol::handlerIdName(e.handler);
                break;
              case TraceEntry::Kind::InjectedNack:
                os << protocol::msgTypeName(e.type)
                   << " -> HomeNack (injected)";
                break;
              case TraceEntry::Kind::DroppedHint:
                os << protocol::msgTypeName(e.type) << " dropped (injected)";
                break;
              case TraceEntry::Kind::DupedHint:
                os << protocol::msgTypeName(e.type)
                   << " duplicated (injected)";
                break;
              case TraceEntry::Kind::DroppedRequest:
                os << protocol::msgTypeName(e.type)
                   << " dropped at NI (injected)";
                break;
              case TraceEntry::Kind::TxnRetry:
                os << protocol::msgTypeName(e.type)
                   << " re-issued (transaction timeout)";
                break;
            }
            os << " src=" << e.src << " req=" << e.requester << " addr=0x"
               << std::hex << e.addr << std::dec;
            if (e.aux)
                os << " aux=" << e.aux;
            os << "\n";
        }
    }

    std::uint64_t recorded() const { return next_; }

  private:
    std::vector<TraceEntry> entries_;
    std::uint64_t next_ = 0;
};

} // namespace flashsim::verify

#endif // FLASHSIM_VERIFY_TRACE_HH_
