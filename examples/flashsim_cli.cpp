/**
 * @file
 * Command-line driver: run any workload on any machine configuration
 * and print the full report. The flags mirror the paper's experimental
 * axes (machine type, processor count, cache size, page placement,
 * speculation, PP toolchain, problem scale).
 *
 *   flashsim_cli --app fft --procs 16 --cache 64K --machine flash
 *   flashsim_cli --app os --procs 8 --placement firstfit
 *   flashsim_cli --app mp3d --no-spec --table-timing
 *
 * The verification layer (src/verify) is driven by --verify and the
 * --inject-* flags:
 *
 *   flashsim_cli --app fft --verify
 *   flashsim_cli --app lu --verify --inject-seed 7 \
 *       --inject-nacks 0.05 --inject-jitter 20 --inject-drop-hints 0.1
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "apps/workload.hh"
#include "machine/report.hh"

using namespace flashsim;
using namespace flashsim::machine;

namespace
{

std::uint32_t
parseSize(const char *s)
{
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (end && (*end == 'K' || *end == 'k'))
        return static_cast<std::uint32_t>(v * 1024);
    if (end && (*end == 'M' || *end == 'm'))
        return static_cast<std::uint32_t>(v * 1024 * 1024);
    return static_cast<std::uint32_t>(v);
}

void
usage()
{
    std::printf(
        "usage: flashsim_cli [options]\n"
        "  --app NAME        fft|lu|ocean|radix|barnes|mp3d|os "
        "(default fft)\n"
        "  --machine M       flash|ideal (default flash)\n"
        "  --procs N         processor count (default 16; os wants 8)\n"
        "  --cache SIZE      e.g. 1M, 64K, 4096 (default 1M)\n"
        "  --placement P     rr|firstfit|node0 (default rr)\n"
        "  --paper           paper problem sizes (Table 3.5)\n"
        "  --no-spec         disable speculative memory operations\n"
        "  --table-timing    Table 3.4 constants instead of PPsim\n"
        "  --baseline-pp     no ISA extensions, single issue (S5.3)\n"
        "  --pp-backend B    threaded|interpreter handler engine\n"
        "                    (default threaded; bit-identical timing)\n"
        "  --distance-net    per-pair mesh distances instead of the\n"
        "                    22-cycle average\n"
        "  --shards N        worker threads for the PDES run loop\n"
        "                    (default $FLASHSIM_SHARDS or 1; results\n"
        "                    are bit-identical across shard counts;\n"
        "                    clamped to procs and host cores)\n"
        "verification (src/verify):\n"
        "  --verify          enable the coherence oracle and watchdog\n"
        "  --halt-on-violation   fatal() on the first oracle violation\n"
        "  --watchdog-interval N sampling interval (default 20000)\n"
        "  --max-txn-age N       per-transaction age limit (400000)\n"
        "  --no-progress N       global progress window (200000)\n"
        "fault injection (implies deterministic seeded perturbation):\n"
        "  --inject-seed N       injector RNG seed (default 1)\n"
        "  --inject-jitter N     max extra mesh transit cycles\n"
        "  --inject-nacks P      P(NACK a home request outright)\n"
        "  --inject-drop-hints P P(drop a replacement hint)\n"
        "  --inject-dup-hints P  P(duplicate a replacement hint)\n"
        "  --inject-stall N      max extra inbound-queue stall cycles\n"
        "recoverable-fault transport (timing-invariant wire plane):\n"
        "  --inject-loss P       P(drop)=P(dup)=P(reorder)=P per wire\n"
        "                        frame; acked retransmission recovers\n"
        "                        every loss, final state bit-identical\n"
        "                        to the clean same-seed run\n"
        "  --inject-txn-drop P   P(kill a NetGet/GetX at the home NI);\n"
        "                        recovered by transaction retry\n"
        "  --retry-backoff N     base transaction timeout in cycles\n"
        "                        (doubles per retry, 16x cap; default\n"
        "                        60000 when --inject-txn-drop is set)\n"
        "  --retry-budget N      re-issues before a transaction gives\n"
        "                        up and completes degraded (default 8)\n"
        "exit codes: 0 ok, 1 usage, 2 verification failed (violation or\n"
        "watchdog trip), 3 run degraded (some retry budget exhausted)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = "fft";
    MachineConfig cfg = MachineConfig::flash(16);
    bool ideal = false;
    apps::Scale scale = apps::Scale::Default;

    // FLASHSIM_SHARDS seeds the default; --shards overrides it. (The
    // sibling knob FLASHSIM_JOBS parallelizes *across* runs in the
    // sweep runner — compose them so shards x jobs stays within the
    // host's cores; Machine clamps shards to the core count either
    // way.)
    if (const char *env = std::getenv("FLASHSIM_SHARDS"))
        cfg.shards = std::atoi(env);

    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--help")) {
            usage();
            return 0;
        } else if (!std::strcmp(argv[i], "--app")) {
            app = next();
        } else if (!std::strcmp(argv[i], "--machine")) {
            ideal = std::string(next()) == "ideal";
        } else if (!std::strcmp(argv[i], "--procs")) {
            cfg.numProcs = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--cache")) {
            cfg.cache.sizeBytes = parseSize(next());
        } else if (!std::strcmp(argv[i], "--placement")) {
            std::string p = next();
            cfg.placement = p == "firstfit" ? Placement::FirstFit
                            : p == "node0" ? Placement::Node0
                                           : Placement::RoundRobinPages;
        } else if (!std::strcmp(argv[i], "--paper")) {
            scale = apps::Scale::Paper;
        } else if (!std::strcmp(argv[i], "--no-spec")) {
            cfg.magic.speculation = false;
        } else if (!std::strcmp(argv[i], "--table-timing")) {
            cfg.magic.usePpEmulator = false;
        } else if (!std::strcmp(argv[i], "--baseline-pp")) {
            cfg.ppCompile = ppc::CompileOptions{false, false};
            cfg.magic.optimizedPp = false;
        } else if (!std::strcmp(argv[i], "--pp-backend")) {
            const std::string backend = next();
            if (backend == "threaded") {
                cfg.magic.ppBackend = ppisa::PpBackend::Threaded;
            } else if (backend == "interpreter") {
                cfg.magic.ppBackend = ppisa::PpBackend::Interpreter;
            } else {
                usage();
                return 1;
            }
        } else if (!std::strcmp(argv[i], "--shards")) {
            cfg.shards = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--distance-net")) {
            cfg.net.distanceBased = true;
        } else if (!std::strcmp(argv[i], "--verify")) {
            cfg.magic.verify.oracle = true;
            cfg.magic.verify.watchdog = true;
        } else if (!std::strcmp(argv[i], "--halt-on-violation")) {
            cfg.magic.verify.haltOnViolation = true;
        } else if (!std::strcmp(argv[i], "--watchdog-interval")) {
            cfg.magic.verify.watchdogInterval =
                std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--max-txn-age")) {
            cfg.magic.verify.maxTransactionAge =
                std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--no-progress")) {
            cfg.magic.verify.noProgressWindow =
                std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--inject-seed")) {
            cfg.magic.verify.fault.enabled = true;
            cfg.magic.verify.fault.seed =
                std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--inject-jitter")) {
            cfg.magic.verify.fault.enabled = true;
            cfg.magic.verify.fault.meshJitter =
                std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--inject-nacks")) {
            cfg.magic.verify.fault.enabled = true;
            cfg.magic.verify.fault.extraNackProb = std::atof(next());
        } else if (!std::strcmp(argv[i], "--inject-drop-hints")) {
            cfg.magic.verify.fault.enabled = true;
            cfg.magic.verify.fault.dropHintProb = std::atof(next());
        } else if (!std::strcmp(argv[i], "--inject-dup-hints")) {
            cfg.magic.verify.fault.enabled = true;
            cfg.magic.verify.fault.dupHintProb = std::atof(next());
        } else if (!std::strcmp(argv[i], "--inject-stall")) {
            cfg.magic.verify.fault.enabled = true;
            cfg.magic.verify.fault.inboundStall =
                std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--inject-loss")) {
            double p = std::atof(next());
            cfg.magic.verify.fault.enabled = true;
            cfg.magic.verify.fault.wireDropProb = p;
            cfg.magic.verify.fault.wireDupProb = p;
            cfg.magic.verify.fault.wireReorderProb = p;
        } else if (!std::strcmp(argv[i], "--inject-txn-drop")) {
            cfg.magic.verify.fault.enabled = true;
            cfg.magic.verify.fault.txnDropProb = std::atof(next());
            if (cfg.magic.txnRetryTimeout == 0)
                cfg.magic.txnRetryTimeout = 60000;
        } else if (!std::strcmp(argv[i], "--retry-backoff")) {
            cfg.magic.txnRetryTimeout =
                std::strtoull(next(), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--retry-budget")) {
            cfg.magic.txnRetryBudget =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else {
            usage();
            return 1;
        }
    }
    if (ideal) {
        cfg.magic.ideal = true;
        cfg.magic.usePpEmulator = false;
    }
    // Clamp the user-facing knob to the host's cores: extra shards
    // past that only add synchronization overhead (results would still
    // be identical). Machine further clamps to numProcs.
    if (cfg.shards > 1) {
        int hw = static_cast<int>(std::thread::hardware_concurrency());
        if (hw > 0 && cfg.shards > hw) {
            std::fprintf(stderr,
                         "flashsim_cli: clamping --shards %d to %d "
                         "(host cores)\n", cfg.shards, hw);
            cfg.shards = hw;
        }
    }

    auto w = apps::makeWorkload(app, scale);
    std::printf("running %s on %s, %d procs, %u KB caches...\n",
                app.c_str(), ideal ? "ideal" : "FLASH", cfg.numProcs,
                cfg.cache.sizeBytes / 1024);
    auto m = apps::runWorkload(cfg, *w);
    Summary s = summarize(*m);

    std::printf("\nexecution time: %llu cycles (%.2f ms at 100 MHz)\n",
                static_cast<unsigned long long>(s.execTime),
                static_cast<double>(s.execTime) / 100000.0);
    std::printf("breakdown: busy %.1f%%  cont %.1f%%  read %.1f%%  "
                "write %.1f%%  sync %.1f%%\n", 100 * s.busy,
                100 * s.cont, 100 * s.read, 100 * s.write, 100 * s.sync);
    std::printf("miss rate: %.2f%%  (reads %llu, writes %llu, misses "
                "%llu)\n", 100 * s.missRate,
                static_cast<unsigned long long>(s.cacheReads),
                static_cast<unsigned long long>(s.cacheWrites),
                static_cast<unsigned long long>(s.readMisses +
                                                s.writeMisses));
    std::printf("read-miss mix: LC %.1f%%  LDR %.1f%%  RC %.1f%%  RDH "
                "%.1f%%  RDR %.1f%%\n", 100 * s.dist.localClean,
                100 * s.dist.localDirtyRemote, 100 * s.dist.remoteClean,
                100 * s.dist.remoteDirtyHome,
                100 * s.dist.remoteDirtyRemote);
    std::printf("occupancy: memory %.1f%% avg / %.1f%% max,  PP %.1f%% "
                "avg / %.1f%% max\n", 100 * s.avgMemOcc,
                100 * s.maxMemOcc, 100 * s.avgPpOcc, 100 * s.maxPpOcc);
    std::printf("protocol: %llu handler invocations (%.2f per miss), "
                "%llu NACKs, %.1f%% useless speculative reads\n",
                static_cast<unsigned long long>(s.handlerInvocations),
                s.handlersPerMiss,
                static_cast<unsigned long long>(s.nacksSent),
                100 * s.specUselessFrac);
    if (s.mdcMissRate > 0)
        std::printf("MDC: %.2f%% miss rate (%.2f%% reads)\n",
                    100 * s.mdcMissRate, 100 * s.mdcReadMissRate);
    if (m->network().transportEnabled())
        std::printf("transport: %llu frames (%llu retransmits, %llu "
                    "assured), %llu acks; injected %llu drops / %llu "
                    "dups / %llu reorders; filtered %llu dups, held "
                    "%llu reorders\n",
                    static_cast<unsigned long long>(s.wireCopies),
                    static_cast<unsigned long long>(s.wireRetransmits),
                    static_cast<unsigned long long>(s.wireAssured),
                    static_cast<unsigned long long>(s.wireAcks),
                    static_cast<unsigned long long>(s.wireDrops),
                    static_cast<unsigned long long>(s.wireDups),
                    static_cast<unsigned long long>(s.wireReorders),
                    static_cast<unsigned long long>(s.wireDupsFiltered),
                    static_cast<unsigned long long>(
                        s.wireReordersAccepted));
    if (s.reqDropsInjected != 0 || s.timeoutRetries != 0 ||
        s.lateFills != 0)
        std::printf("txn recovery: %llu requests dropped at home NI, "
                    "%llu timeout retries, %llu late fills\n",
                    static_cast<unsigned long long>(s.reqDropsInjected),
                    static_cast<unsigned long long>(s.timeoutRetries),
                    static_cast<unsigned long long>(s.lateFills));
    if (m->shards() > 1) {
        const machine::Machine::ShardRunStats &st = m->shardStats();
        std::printf("shard windows: %llu run (%llu skipped ahead over "
                    "%llu idle ticks, %llu widened), width %.1f mean / "
                    "%llu max\n",
                    static_cast<unsigned long long>(st.windowsRun),
                    static_cast<unsigned long long>(st.windowsSkipped),
                    static_cast<unsigned long long>(st.ticksSkipped),
                    static_cast<unsigned long long>(st.windowsWidened),
                    st.meanWidth(),
                    static_cast<unsigned long long>(st.maxWidth));
        std::printf("shard sync: %llu tango phases, %llu barrier parks, "
                    "%.2f ms coordinator barrier wait\n",
                    static_cast<unsigned long long>(st.syncPhases),
                    static_cast<unsigned long long>(st.barrierParks),
                    static_cast<double>(st.barrierWaitNs) / 1e6);
    }
    if (const verify::Sentinel *sent = m->sentinel()) {
        std::fflush(stdout);
        sent->writeSummary(std::cout);
        std::cout.flush();
        if (sent->violations() != 0 || sent->trips() != 0) {
            std::fprintf(stderr,
                         "VERIFICATION FAILED: %llu violation(s), %llu "
                         "watchdog trip(s)\n",
                         static_cast<unsigned long long>(
                             sent->violations()),
                         static_cast<unsigned long long>(sent->trips()));
            return 2;
        }
    }
    if (s.runDegraded()) {
        // Structured degraded-run report: the run completed and the
        // final state is coherent, but these transactions exhausted
        // their retry budgets and resumed without data. Distinct exit
        // code so harnesses separate "weaker result" from "broken".
        std::fprintf(stderr,
                     "RUN DEGRADED: %llu transaction(s) exhausted the "
                     "retry budget (%llu degraded resumes)\n",
                     static_cast<unsigned long long>(s.degradedTxns),
                     static_cast<unsigned long long>(s.degradedResumes));
        for (const Summary::DegradedTxn &d : s.degraded)
            std::fprintf(stderr,
                         "  node %u line 0x%llx gave up after %u "
                         "retries\n", d.node,
                         static_cast<unsigned long long>(d.line),
                         d.retries);
        return 3;
    }
    return 0;
}
