/**
 * @file
 * Reproduces Table 5.3 and the Section 5.3 ablation.
 *
 * Table 5.3 compares each FLASH special instruction with its DLX
 * substitution sequence (static size and latency); we measure both by
 * compiling single-instruction functions through the ppc backend in
 * baseline mode.
 *
 * The ablation recompiles the whole protocol without the ISA
 * extensions and for single issue, then reruns the parallel suite
 * (paper: average degradation 40%, maximum 137% for MP3D).
 */

#include <cstdio>

#include "bench_util.hh"
#include "ppc/compiler.hh"

using namespace flashsim;
using namespace flashsim::bench;
using namespace flashsim::ppc;

namespace
{

/** Static instruction count of the expansion of one special op. */
int
expansionSize(ppisa::Op op, unsigned lo, unsigned width)
{
    IrFunction f("probe");
    Reg d = f.reg();
    Reg s = f.reg();
    switch (op) {
      case ppisa::Op::Ffs: f.ffs(d, s); break;
      case ppisa::Op::Bbs: {
        Label l = f.label();
        f.bbs(s, lo, l);
        f.bind(l);
        break;
      }
      case ppisa::Op::Ext: f.ext(d, s, lo, width); break;
      case ppisa::Op::Ins: f.ins(d, s, lo, width); break;
      case ppisa::Op::Orfi: f.orfi(d, s, lo, width); break;
      case ppisa::Op::Andfi: f.andfi(d, s, lo, width); break;
      default: break;
    }
    f.halt();
    LinearCode code = expandSpecials(LinearCode::fromFunction(f));
    return static_cast<int>(code.instrs.size()) - 1; // minus halt
}

} // namespace

int
main()
{
    std::printf("Table 5.3: special instructions vs DLX substitution\n\n");
    std::printf("%-22s %22s %28s\n", "instr type", "DLX static size",
                "paper");
    std::printf("%-22s %18d instrs %28s\n", "find first set bit",
                expansionSize(ppisa::Op::Ffs, 0, 0),
                "6 (size-opt) / 27 (speed-opt)");
    std::printf("%-22s %18d instrs %28s\n", "branch on bit (low)",
                expansionSize(ppisa::Op::Bbs, 3, 0), "2 or 4");
    std::printf("%-22s %18d instrs %28s\n", "branch on bit (high)",
                expansionSize(ppisa::Op::Bbs, 40, 0), "2 or 4");
    std::printf("%-22s %18d instrs %28s\n", "field extract",
                expansionSize(ppisa::Op::Ext, 16, 16), "(2 shifts)");
    std::printf("%-22s %18d instrs %28s\n", "ALU field imm (small)",
                expansionSize(ppisa::Op::Orfi, 0, 8), "1-5");
    std::printf("%-22s %18d instrs %28s\n", "ALU field imm (large)",
                expansionSize(ppisa::Op::Orfi, 32, 16), "1-5");
    std::printf("%-22s %18d instrs %28s\n", "insert field",
                expansionSize(ppisa::Op::Ins, 16, 16),
                "two field imms + or");

    // Code-size comparison of the full protocol.
    protocol::HandlerPrograms opt = protocol::buildHandlerPrograms();
    protocol::HandlerPrograms base =
        protocol::buildHandlerPrograms({false, false});
    std::printf("\nProtocol code: optimized %.1f KB, baseline (no "
                "specials, single issue) %.1f KB\n\n",
                opt.totalCodeBytes() / 1024.0,
                base.totalCodeBytes() / 1024.0);

    // Section 5.3 ablation: rerun the suite with the non-optimized PP.
    std::printf("Section 5.3 ablation: parallel suite with the "
                "non-optimized PP (no special instructions, single "
                "issue)\n");
    std::printf("%-8s %12s %12s %10s\n", "app", "optimized",
                "baseline", "degrade");
    double sum = 0, worst = 0;
    std::string worst_app;
    for (const std::string &app : apps::parallelAppNames()) {
        RunOutcome o = runApp(MachineConfig::flash(16), app);
        MachineConfig slow_cfg = MachineConfig::flash(16);
        slow_cfg.ppCompile = CompileOptions{false, false};
        slow_cfg.magic.optimizedPp = false;
        RunOutcome s = runApp(slow_cfg, app);
        double deg = 100.0 * (static_cast<double>(s.summary.execTime) /
                                  static_cast<double>(
                                      o.summary.execTime) -
                              1.0);
        sum += deg;
        if (deg > worst) {
            worst = deg;
            worst_app = app;
        }
        std::printf("%-8s %12llu %12llu %9.1f%%\n", app.c_str(),
                    static_cast<unsigned long long>(o.summary.execTime),
                    static_cast<unsigned long long>(s.summary.execTime),
                    deg);
    }
    std::printf("\naverage degradation %.1f%% (paper: 40%%), maximum "
                "%.1f%% on %s (paper: 137%% on MP3D)\n",
                sum / apps::parallelAppNames().size(), worst,
                worst_app.c_str());
    return 0;
}
