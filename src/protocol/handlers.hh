/**
 * @file
 * Authoritative cache-coherence handler logic.
 *
 * Each MAGIC message type dispatches to one handler, mirroring the PP
 * handler structure of the real machine. The C++ handlers here perform
 * the authoritative directory state transition and tell MAGIC what to do
 * (messages to launch, memory/cache operations to perform); their PP
 * program counterparts in pp_programs.cc reproduce the same control flow
 * for cycle-accurate timing, and a conformance test checks both agree.
 *
 * Race handling follows the NACK/retry discipline: requests that find
 * the line in a transient state (owner not yet holding data, writeback
 * in flight) are NACKed and retried by the requesting MAGIC. With the
 * simulator's FIFO point-to-point message delivery this converges.
 */

#ifndef FLASHSIM_PROTOCOL_HANDLERS_HH_
#define FLASHSIM_PROTOCOL_HANDLERS_HH_

#include <cstdint>
#include <vector>

#include "protocol/directory.hh"
#include "protocol/message.hh"
#include "sim/small_vector.hh"
#include "sim/types.hh"

namespace flashsim::protocol
{

/** Maps physical addresses to their home node (page placement policy). */
class AddressMap
{
  public:
    virtual ~AddressMap() = default;
    virtual NodeId homeOf(Addr addr) const = 0;
};

/** Lets home-node handlers probe their local processor cache state. */
class CacheProbe
{
  public:
    virtual ~CacheProbe() = default;
    /** True if the local processor cache holds @p addr's line dirty. */
    virtual bool holdsDirty(Addr addr) const = 0;
};

/** What an outgoing message's launch must wait for. */
enum class Gate : std::uint8_t
{
    None,      ///< launch as soon as the handler completes
    MemData,   ///< wait for local memory read data
    CacheData, ///< wait for the local processor-cache retrieval
};

struct OutMsg
{
    Message msg;
    Gate gate = Gate::None;
};

/**
 * Handler identities for occupancy accounting (rows of Table 3.4 plus
 * the small receive-side handlers the table does not list).
 */
enum class HandlerId : std::uint8_t
{
    ServeReadMemory,   ///< service read miss from main memory (11)
    ServeWriteMemory,  ///< service write miss (14 + 10..15 per inval)
    FwdToHome,         ///< requester-side forward of request (3)
    FwdHomeToDirty,    ///< home forwards to dirty node (18)
    RetrieveFromCache, ///< retrieve data from processor cache (38)
    ReplyToProc,       ///< forward network reply to processor (2)
    LocalWriteback,    ///< local writeback (10)
    LocalHint,         ///< local replacement hint (7)
    RemoteWriteback,   ///< writeback from a remote processor (8)
    RemoteHintOnly,    ///< remote hint, only node on list (17)
    RemoteHintNth,     ///< remote hint, Nth node (23 + 14N)
    InvalReceive,      ///< invalidation request at a sharer
    InvalAck,          ///< invalidation ack at the requester
    SwbReceive,        ///< sharing writeback at home
    OwnXferReceive,    ///< ownership transfer at home
    NackReceive,       ///< NACK at the requester (schedule retry)
    HomeNack,          ///< home NACKs a request in transient state
    BlockXferReceive,  ///< message-passing chunk lands in local memory
    BlockAckReceive,   ///< block-transfer completion at the sender
    FetchOpService,    ///< fetch&op read-modify-write at home memory
    FetchOpAck,        ///< fetch&op result back at the requester
};

/** Number of HandlerId values (for per-handler stat arrays). */
inline constexpr int kNumHandlerIds = 21;

const char *handlerIdName(HandlerId id);

/** Result of running a handler: directives for MAGIC. */
struct HandlerResult
{
    HandlerId id = HandlerId::ServeReadMemory;
    int costParam = 0; ///< inval count / sharer-list position, as needed

    /** Outgoing messages. Inline capacity covers every handler except
     *  a wide invalidation fan-out, so the hot path never allocates. */
    SmallVector<OutMsg, 4> out;

    bool memRead = false;   ///< handler needs local memory read data
    bool memWrite = false;  ///< handler writes the line back to memory
    bool cacheRetrieve = false;   ///< retrieve data from local proc cache
    bool cacheInvalidate = false; ///< invalidate line in local proc cache
    bool cacheSharing = false;    ///< downgrade local proc cache to shared
    bool nackedRequest = false;   ///< request was NACKed (stats)
};

/**
 * The per-node protocol engine: owns no timing, only state transitions.
 */
class ProtocolEngine
{
  public:
    ProtocolEngine(NodeId self, DirectoryStore &dir, const AddressMap &map,
                   const CacheProbe &probe)
        : self_(self), dir_(dir), map_(map), probe_(probe)
    {}

    /** Dispatch @p msg to its handler and return MAGIC's directives. */
    HandlerResult handle(const Message &msg);

    NodeId self() const { return self_; }

    // Individual handlers, public for direct unit testing. @p msg must be
    // of the matching type and (for home handlers) homed at this node.
    HandlerResult handleGetAtHome(const Message &msg);
    HandlerResult handleGetxAtHome(const Message &msg);
    HandlerResult handleRequestForward(const Message &msg);
    HandlerResult handleFwdGet(const Message &msg);
    HandlerResult handleFwdGetx(const Message &msg);
    HandlerResult handleWritebackAtHome(const Message &msg);
    HandlerResult handleReplaceHintAtHome(const Message &msg);
    HandlerResult handleSwb(const Message &msg);
    HandlerResult handleOwnXfer(const Message &msg);
    HandlerResult handleInval(const Message &msg);
    HandlerResult handleReply(const Message &msg);
    HandlerResult handleBlockXfer(const Message &msg);
    HandlerResult handleFetchOp(const Message &msg);

  private:
    Message make(MsgType type, NodeId dest, Addr addr, NodeId requester,
                 std::uint32_t aux = 0) const;

    NodeId self_;
    DirectoryStore &dir_;
    const AddressMap &map_;
    const CacheProbe &probe_;
};

} // namespace flashsim::protocol

#endif // FLASHSIM_PROTOCOL_HANDLERS_HH_
