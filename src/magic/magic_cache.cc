#include "magic/magic_cache.hh"

#include "sim/logging.hh"

namespace flashsim::magic
{

MagicCache::MagicCache(std::uint32_t size_bytes, std::uint32_t assoc,
                       std::uint32_t line_bytes)
    : numSets_(size_bytes / (assoc * line_bytes)), assoc_(assoc),
      lineBytes_(line_bytes)
{
    if (numSets_ == 0 || (numSets_ & (numSets_ - 1)) != 0)
        fatal("MagicCache: set count %u must be a nonzero power of two",
              numSets_);
    if (lineBytes_ == 0 || (lineBytes_ & (lineBytes_ - 1)) != 0)
        fatal("MagicCache: line size %u must be a nonzero power of two",
              lineBytes_);
    // Hot-path probes index with shifts, not 64-bit divisions.
    for (std::uint32_t b = lineBytes_; b > 1; b >>= 1)
        ++lineShift_;
    for (std::uint32_t ns = numSets_; ns > 1; ns >>= 1)
        ++setShift_;
    ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

MdcAccess
MagicCache::access(Addr addr, bool is_write)
{
    MdcAccess result;
    if (is_write)
        ++writes;
    else
        ++reads;

    Addr line = addr >> lineShift_;
    std::uint32_t set = static_cast<std::uint32_t>(line) & (numSets_ - 1);
    Addr tag = line >> setShift_;
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];

    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lru = ++lruClock_;
            way.dirty = way.dirty || is_write;
            return result;
        }
    }

    // Miss: fill into the LRU (or an invalid) way.
    result.hit = false;
    if (is_write)
        ++writeMisses;
    else
        ++readMisses;

    Way *victim = base;
    for (std::uint32_t w = 1; w < assoc_; ++w) {
        Way &way = base[w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim->valid)
            break;
        if (way.lru < victim->lru)
            victim = &way;
    }
    if (victim->valid && victim->dirty) {
        result.victimWriteback = true;
        ++writebacks;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lru = ++lruClock_;
    return result;
}

void
MagicCache::flush()
{
    for (Way &w : ways_)
        w = Way{};
}

} // namespace flashsim::magic
