/**
 * @file
 * Conformance between the authoritative C++ handlers and the PP handler
 * programs: for a sweep of directory states and message types, both
 * implementations must emit the same messages and leave the directory
 * in the same state. This is what justifies using PPsim execution of
 * the handler programs as the timing oracle.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ppisa/ppsim.hh"
#include "protocol/directory.hh"
#include "protocol/handlers.hh"
#include "protocol/pp_programs.hh"

namespace flashsim::protocol
{
namespace
{

constexpr NodeId kSelf = 0;

struct TestMap : AddressMap
{
    NodeId
    homeOf(Addr addr) const override
    {
        return static_cast<NodeId>((addr >> 12) % 4);
    }
};

struct TestProbe : CacheProbe
{
    bool dirty = false;
    bool
    holdsDirty(Addr) const override
    {
        return dirty;
    }
};

/** PP memory adapter writing directly into a DirectoryStore. */
struct DirMem : ppisa::PpMemory
{
    DirectoryStore &d;
    explicit DirMem(DirectoryStore &dd) : d(dd) {}
    std::uint64_t
    load(Addr a, Cycles &extra) override
    {
        extra = 0;
        return d.loadWord(a);
    }
    void
    store(Addr a, std::uint64_t v, Cycles &extra) override
    {
        extra = 0;
        d.storeWord(a, v);
    }
};

/** Directory pre-states to sweep. */
enum class DirState
{
    CleanEmpty,
    CleanOneSharer,     // node 3
    CleanThreeSharers,  // nodes 1, 2, 3
    CleanRequesterShares,
    CleanManySharers,   // nodes 1..3 plus requester
    DirtyThirdNode,     // owner 3
    DirtyRequester,
    DirtySelf,
};

const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::CleanEmpty: return "CleanEmpty";
      case DirState::CleanOneSharer: return "CleanOneSharer";
      case DirState::CleanThreeSharers: return "CleanThreeSharers";
      case DirState::CleanRequesterShares: return "CleanReqShares";
      case DirState::CleanManySharers: return "CleanManySharers";
      case DirState::DirtyThirdNode: return "DirtyThird";
      case DirState::DirtyRequester: return "DirtyRequester";
      case DirState::DirtySelf: return "DirtySelf";
    }
    return "?";
}

struct Case
{
    MsgType type;
    NodeId src;
    NodeId requester;
    bool local; // address homed at kSelf?
    DirState state;
    bool cacheDirty;
    std::uint32_t aux = 0;
};

std::string
caseName(const Case &c)
{
    std::string n = msgTypeName(c.type);
    n += c.local ? "_local_" : "_remote_";
    n += dirStateName(c.state);
    n += c.cacheDirty ? "_cdirty" : "_cclean";
    n += "_r" + std::to_string(c.requester);
    return n;
}

std::vector<Case>
makeCases()
{
    std::vector<Case> cases;
    // Home-side GET/GETX over all directory states.
    for (MsgType t : {MsgType::PiGet, MsgType::PiGetx}) {
        for (DirState s :
             {DirState::CleanEmpty, DirState::CleanOneSharer,
              DirState::CleanThreeSharers, DirState::DirtyThirdNode,
              DirState::DirtyRequester}) {
            cases.push_back({t, kSelf, kSelf, true, s, false});
        }
        // Remote home: pure forward.
        cases.push_back(
            {t, kSelf, kSelf, false, DirState::CleanEmpty, false});
    }
    for (MsgType t : {MsgType::NetGet, MsgType::NetGetx}) {
        for (DirState s :
             {DirState::CleanEmpty, DirState::CleanOneSharer,
              DirState::CleanThreeSharers,
              DirState::CleanRequesterShares,
              DirState::CleanManySharers, DirState::DirtyThirdNode,
              DirState::DirtyRequester}) {
            cases.push_back({t, 2, 2, true, s, false});
        }
        cases.push_back({t, 2, 2, true, DirState::DirtySelf, true});
        cases.push_back({t, 2, 2, true, DirState::DirtySelf, false});
    }
    // Owner-side forwards.
    for (MsgType t : {MsgType::NetFwdGet, MsgType::NetFwdGetx}) {
        cases.push_back({t, 1, 2, false, DirState::CleanEmpty, true});
        cases.push_back({t, 1, 2, false, DirState::CleanEmpty, false});
    }
    // Home-side writebacks.
    cases.push_back({MsgType::PiWriteback, kSelf, kSelf, true,
                     DirState::DirtySelf, false});
    cases.push_back({MsgType::PiWriteback, kSelf, kSelf, false,
                     DirState::CleanEmpty, false});
    cases.push_back({MsgType::NetWriteback, 2, 2, true,
                     DirState::DirtyRequester, false});
    cases.push_back({MsgType::NetWriteback, 2, 2, true,
                     DirState::DirtyThirdNode, false}); // stale
    // Hints.
    cases.push_back({MsgType::PiReplaceHint, kSelf, kSelf, false,
                     DirState::CleanEmpty, false});
    cases.push_back({MsgType::NetReplaceHint, 3, 3, true,
                     DirState::CleanOneSharer, false});
    cases.push_back({MsgType::NetReplaceHint, 1, 1, true,
                     DirState::CleanThreeSharers, false});
    cases.push_back({MsgType::NetReplaceHint, 2, 2, true,
                     DirState::CleanOneSharer, false}); // absent node
    // Sharing writeback / ownership transfer.
    cases.push_back(
        {MsgType::NetSwb, 3, 2, true, DirState::DirtyThirdNode, false});
    cases.push_back(
        {MsgType::NetSwb, 3, 3, true, DirState::DirtyThirdNode, false});
    cases.push_back({MsgType::NetOwnXfer, 3, 2, true,
                     DirState::DirtyThirdNode, false});
    // Requester-side replies.
    cases.push_back(
        {MsgType::NetInval, 1, 2, false, DirState::CleanEmpty, false});
    cases.push_back(
        {MsgType::NetInvalAck, 1, kSelf, false, DirState::CleanEmpty,
         false});
    cases.push_back(
        {MsgType::NetPut, 1, kSelf, false, DirState::CleanEmpty, false});
    cases.push_back({MsgType::NetPutx, 1, kSelf, false,
                     DirState::CleanEmpty, false, 3});
    cases.push_back(
        {MsgType::NetNack, 1, kSelf, false, DirState::CleanEmpty, false});
    // Message-passing protocol: middle chunk (aux > 0), final chunk
    // (aux == 0, acks the sender), and the ack itself.
    cases.push_back({MsgType::NetBlockXfer, 1, 1, true,
                     DirState::CleanEmpty, false, 3});
    cases.push_back({MsgType::NetBlockXfer, 1, 1, true,
                     DirState::CleanEmpty, false, 0});
    cases.push_back({MsgType::NetBlockAck, 1, kSelf, false,
                     DirState::CleanEmpty, false});
    return cases;
}

/** Apply a pre-state to a store (identically for both copies). */
void
applyState(DirectoryStore &dir, Addr line, DirState s, NodeId requester)
{
    // Thread the free list so the C++ allocator never takes its
    // lazy-extension path (which the PP program cannot see).
    constexpr Addr scratch = 0x40000;
    for (int i = 0; i < 12; ++i)
        dir.addSharer(scratch, static_cast<NodeId>(i));
    for (int i = 0; i < 12; ++i)
        dir.removeSharer(scratch, static_cast<NodeId>(i));

    DirHeader h = dir.header(line);
    switch (s) {
      case DirState::CleanEmpty:
        break;
      case DirState::CleanOneSharer:
        dir.addSharer(line, 3);
        break;
      case DirState::CleanThreeSharers:
        dir.addSharer(line, 1);
        dir.addSharer(line, 2);
        dir.addSharer(line, 3);
        break;
      case DirState::CleanRequesterShares:
        dir.addSharer(line, requester);
        break;
      case DirState::CleanManySharers:
        dir.addSharer(line, 1);
        dir.addSharer(line, requester);
        dir.addSharer(line, 3);
        break;
      case DirState::DirtyThirdNode:
        h = dir.header(line);
        h.dirty = true;
        h.owner = 3;
        dir.setHeader(line, h);
        break;
      case DirState::DirtyRequester:
        h = dir.header(line);
        h.dirty = true;
        h.owner = requester;
        dir.setHeader(line, h);
        break;
      case DirState::DirtySelf:
        h = dir.header(line);
        h.dirty = true;
        h.owner = kSelf;
        dir.setHeader(line, h);
        break;
    }
}

class ConformanceTest : public ::testing::TestWithParam<Case>
{};

TEST_P(ConformanceTest, CppAndPpAgree)
{
    const Case &c = GetParam();
    const Addr line = c.local ? 0x0000 : 0x1000;
    TestMap map;
    TestProbe probe;
    probe.dirty = c.cacheDirty;

    Message m;
    m.type = c.type;
    m.src = c.src;
    m.dest = kSelf;
    m.requester = c.requester;
    m.addr = line;
    m.aux = c.aux;

    // C++ side.
    DirectoryStore dirC;
    applyState(dirC, line, c.state, c.requester);
    ProtocolEngine engine(kSelf, dirC, map, probe);
    HandlerResult res = engine.handle(m);

    // PP side on an identically prepared store.
    DirectoryStore dirP;
    applyState(dirP, line, c.state, c.requester);
    DirMem mem(dirP);
    static HandlerPrograms programs = buildHandlerPrograms();
    const NodeId home = map.homeOf(line);
    ppisa::RegFile regs =
        makeHandlerRegs(m, kSelf, home, c.cacheDirty);
    std::vector<ppisa::SentMessage> sent;
    ppisa::RunStats stats;
    ppisa::PpSim sim;
    sim.run(programs.forMessage(c.type, home == kSelf), regs, mem, sent,
            stats);

    // Message-level agreement.
    ASSERT_EQ(sent.size(), res.out.size()) << caseName(c);
    for (std::size_t i = 0; i < sent.size(); ++i) {
        Message pp = decodeSent(sent[i], kSelf);
        const Message &cc = res.out[i].msg;
        EXPECT_EQ(pp.type, cc.type) << caseName(c) << " msg " << i;
        EXPECT_EQ(pp.dest, cc.dest) << caseName(c) << " msg " << i;
        EXPECT_EQ(pp.addr, cc.addr) << caseName(c) << " msg " << i;
        EXPECT_EQ(pp.aux, cc.aux) << caseName(c) << " msg " << i;
        EXPECT_EQ(pp.requester, cc.requester)
            << caseName(c) << " msg " << i;
    }

    // Directory post-state agreement (home-side handlers only; the
    // requester-side programs use MAGIC-local state we do not model in
    // the word store).
    DirHeader hc = dirC.header(line);
    DirHeader hp = dirP.header(line);
    EXPECT_EQ(hp.dirty, hc.dirty) << caseName(c);
    EXPECT_EQ(hp.owner, hc.owner) << caseName(c);
    EXPECT_EQ(dirP.sharers(line), dirC.sharers(line)) << caseName(c);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConformanceTest, ::testing::ValuesIn(makeCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string n = caseName(info.param);
        n += "_i" + std::to_string(info.index);
        for (char &ch : n)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

TEST(HandlerPrograms, CodeSizeWithinMagicInstructionCache)
{
    // Table 5.2: the full protocol is ~15 KB, well under the 32 KB MIC.
    static HandlerPrograms programs = buildHandlerPrograms();
    EXPECT_LT(programs.totalCodeBytes(), 32u * 1024u);
    EXPECT_GT(programs.totalCodeBytes(), 1024u);
}

TEST(HandlerPrograms, BaselineCompilesAndIsBigger)
{
    HandlerPrograms opt = buildHandlerPrograms({true, true});
    HandlerPrograms base = buildHandlerPrograms({false, false});
    EXPECT_GT(base.totalCodeBytes(), opt.totalCodeBytes());
}

} // namespace
} // namespace flashsim::protocol
