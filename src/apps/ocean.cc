#include "apps/ocean.hh"

#include "sim/logging.hh"

namespace flashsim::apps
{

namespace
{
constexpr Addr kElemBytes = 8;
} // namespace

void
Ocean::setup(machine::Machine &m)
{
    nprocs_ = m.numProcs();
    procSide_ = 1;
    while (procSide_ * procSide_ < nprocs_)
        ++procSide_;
    if (procSide_ * procSide_ != nprocs_)
        fatal("Ocean: processor count must be a perfect square");
    int interior = p_.n - 2;
    if (interior % procSide_ != 0)
        fatal("Ocean: (n - 2) must divide by the processor-grid side");
    sub_ = interior / procSide_;

    const Addr sub_bytes =
        static_cast<Addr>(sub_) * sub_ * kElemBytes;
    base_.resize(static_cast<std::size_t>(p_.grids) * nprocs_);
    for (int g = 0; g < p_.grids; ++g)
        for (int p = 0; p < nprocs_; ++p)
            base_[static_cast<std::size_t>(g) * nprocs_ + p] =
                m.alloc(sub_bytes, static_cast<NodeId>(p));
    bar_ = m.makeBarrier();
}

Addr
Ocean::elem(int g, int r, int c) const
{
    int owner = (r / sub_) * procSide_ + (c / sub_);
    int lr = r % sub_;
    int lc = c % sub_;
    return base_[static_cast<std::size_t>(g) * nprocs_ + owner] +
           (static_cast<Addr>(lr) * sub_ + lc) * kElemBytes;
}

tango::Task
Ocean::run(tango::Env &env)
{
    co_await env.busy(0);
    const int me = env.id();
    const int interior = p_.n - 2;
    const int r0 = (me / procSide_) * sub_;
    const int c0 = (me % procSide_) * sub_;

    for (int it = 0; it < p_.iters; ++it) {
        // Red/black relaxation on the main grid.
        for (int parity = 0; parity < 2; ++parity) {
            for (int lr = 0; lr < sub_; ++lr) {
                for (int lc = 0; lc < sub_; ++lc) {
                    int r = r0 + lr;
                    int c = c0 + lc;
                    if (((r + c) & 1) != parity)
                        continue;
                    co_await env.read(elem(0, r, c));
                    if (r > 0)
                        co_await env.read(elem(0, r - 1, c));
                    if (r < interior - 1)
                        co_await env.read(elem(0, r + 1, c));
                    if (c > 0)
                        co_await env.read(elem(0, r, c - 1));
                    if (c < interior - 1)
                        co_await env.read(elem(0, r, c + 1));
                    co_await env.busy(p_.instrsPerPoint);
                    co_await env.write(elem(0, r, c));
                }
            }
            co_await env.barrier(bar_);
        }

        // Two auxiliary grid sweeps per iteration (restriction /
        // interpolation traffic of the multigrid solver): local
        // streaming read-modify-write over the owner's subgrids. The
        // rotation across the grid set is what gives Ocean its >64 KB
        // per-processor working set (Table 4.2).
        for (int k = 0; k < 2; ++k) {
            int g = 1 + (2 * it + k) % (p_.grids - 1);
            for (int lr = 0; lr < sub_; ++lr) {
                for (int lc = 0; lc < sub_; ++lc) {
                    int r = r0 + lr;
                    int c = c0 + lc;
                    co_await env.read(elem(g, r, c));
                    co_await env.busy(20);
                    co_await env.write(elem(g, r, c));
                }
            }
        }
        co_await env.barrier(bar_);
    }
}

} // namespace flashsim::apps
