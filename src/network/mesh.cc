#include "network/mesh.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace flashsim::network
{

MeshNetwork::MeshNetwork(EventQueue &eq, int num_nodes, MeshParams params)
    : MeshNetwork(std::vector<EventQueue *>{&eq},
                  std::vector<int>(static_cast<std::size_t>(num_nodes), 0),
                  num_nodes, params)
{}

MeshNetwork::MeshNetwork(const std::vector<EventQueue *> &eqs,
                         std::vector<int> shard_of, int num_nodes,
                         MeshParams params)
    : numNodes_(num_nodes), params_(params),
      deliver_(static_cast<std::size_t>(num_nodes)),
      shardOf_(std::move(shard_of)),
      srcSeq_(static_cast<std::size_t>(num_nodes), 0)
{
    side_ = 1;
    while (side_ * side_ < num_nodes)
        ++side_;
    avgTransit_ = avgTransitFor(num_nodes, params_);

    eps_.resize(eqs.size());
    for (std::size_t s = 0; s < eqs.size(); ++s) {
        eps_[s].eq = eqs[s];
        eps_[s].outbox.resize(eqs.size());
    }
}

void
MeshNetwork::connect(NodeId n, Deliver deliver)
{
    if (n >= deliver_.size())
        fatal("MeshNetwork: node %u out of range", n);
    deliver_[n] = std::move(deliver);
}

Cycles
MeshNetwork::transit(NodeId src, NodeId dest) const
{
    // A self-send never crosses the mesh: it pays only the entry and
    // exit hops plus the header, in both average and distance-based
    // modes. (The average-transit figure explicitly excludes the
    // self-pairs, so charging it here would overbill by the mean
    // internal hop count, ~22 cycles on 16 nodes.)
    if (src == dest)
        return params_.perHop * 2 + params_.header;
    if (!params_.distanceBased)
        return avgTransit_;
    int sx = static_cast<int>(src) % side_;
    int sy = static_cast<int>(src) / side_;
    int dx = static_cast<int>(dest) % side_;
    int dy = static_cast<int>(dest) / side_;
    int hops = std::abs(sx - dx) + std::abs(sy - dy) + 2;
    return params_.perHop * static_cast<Cycles>(hops) + params_.header;
}

Cycles
MeshNetwork::minTransit() const
{
    return minTransitFor(numNodes_, params_);
}

Cycles
MeshNetwork::avgTransitFor(int num_nodes, MeshParams params)
{
    int side = 1;
    while (side * side < num_nodes)
        ++side;

    // Average internal hop count for uniform traffic on a side x side
    // mesh: the mean |dx| on a line of n nodes is (n^2 - 1) / (3n), the
    // Manhattan distance doubles it, and excluding the self-pairs
    // scales by N/(N-1). That gives the paper's 2.6 average hops for 16
    // nodes; with one hop to enter and one to exit at 4 cycles each
    // plus 3 header cycles the average transit is 22 cycles.
    double n_nodes = static_cast<double>(side) * side;
    double mean_axis =
        (static_cast<double>(side) * side - 1.0) / (3.0 * side);
    double internal = 2.0 * mean_axis *
                      (n_nodes > 1 ? n_nodes / (n_nodes - 1.0) : 1.0);
    double hops = internal + 2.0;
    return static_cast<Cycles>(
        std::lround(params.perHop * hops + params.header));
}

Cycles
MeshNetwork::minTransitFor(int num_nodes, MeshParams params)
{
    // Minimum over *distinct* pairs: adjacent nodes pay 1 internal hop
    // plus entry and exit in the distance-based mode, the flat average
    // otherwise. Self-sends are excluded — a node shares a shard with
    // itself by construction, so they never cross a window boundary.
    if (!params.distanceBased)
        return avgTransitFor(num_nodes, params);
    return params.perHop * 3 + params.header;
}

void
MeshNetwork::setPerturb(std::function<Cycles(const protocol::Message &)> p)
{
    perturb_ = std::move(p);
    // (Re)size the clamp table on every install, not only when it is
    // currently empty: a second perturb installed after the first was
    // cleared must start from a fresh, correctly sized table instead of
    // inheriting stale per-pair delivery floors.
    if (perturb_)
        lastDelivery_.assign(static_cast<std::size_t>(numNodes_) *
                                 static_cast<std::size_t>(numNodes_),
                             0);
}

Counter
MeshNetwork::messages() const
{
    Counter n = 0;
    for (const Endpoint &ep : eps_)
        n += ep.messages;
    return n;
}

Counter
MeshNetwork::dataMessages() const
{
    Counter n = 0;
    for (const Endpoint &ep : eps_)
        n += ep.dataMessages;
    return n;
}

std::uint32_t
MeshNetwork::inFlight() const
{
    std::uint32_t n = 0;
    for (const Endpoint &ep : eps_)
        n += ep.inFlight;
    return n;
}

std::uint32_t
MeshNetwork::slabCapacity() const
{
    std::uint32_t n = 0;
    for (const Endpoint &ep : eps_)
        n += static_cast<std::uint32_t>(ep.slab.size()) * kSlabChunk;
    return n;
}

std::uint32_t
MeshNetwork::allocSlot(Endpoint &ep)
{
    if (!ep.freeSlots.empty()) {
        std::uint32_t s = ep.freeSlots.back();
        ep.freeSlots.pop_back();
        return s;
    }
    std::uint32_t s =
        static_cast<std::uint32_t>(ep.slab.size()) * kSlabChunk;
    ep.slab.push_back(std::make_unique<protocol::Message[]>(kSlabChunk));
    ep.freeSlots.reserve(ep.slab.size() * kSlabChunk);
    for (std::uint32_t i = kSlabChunk - 1; i > 0; --i)
        ep.freeSlots.push_back(s + i);
    return s;
}

void
MeshNetwork::deliverSlot(std::uint32_t epIdx, std::uint32_t s)
{
    // The slot is released only after the delivery callback returns:
    // chunk storage is stable, so the reference survives nested sends
    // that grow the slab, and the slot cannot be recycled underneath
    // the receiver.
    Endpoint &ep = eps_[epIdx];
    const protocol::Message &m = slot(ep, s);
    deliver_[m.dest](m);
    ep.freeSlots.push_back(s);
    --ep.inFlight;
}

void
MeshNetwork::inject(const protocol::Message &msg, Tick when)
{
    // Both the slot and the delivery event live on the destination
    // shard: the delivering thread frees the slot, so the slab must be
    // the one that thread owns. A local send's source and destination
    // shards coincide; a cross-shard message reaches the destination
    // only at a window edge, when every shard is quiescent.
    const std::uint32_t dst =
        static_cast<std::uint32_t>(shardOf_[msg.dest]);
    const std::uint32_t here =
        static_cast<std::uint32_t>(shardOf_[msg.src]);
    const std::uint64_t seq = srcSeq_[msg.src]++;
    if (dst == here) {
        Endpoint &ep = eps_[dst];
        std::uint32_t s = allocSlot(ep);
        slot(ep, s) = msg;
        ++ep.inFlight;
        ep.eq->scheduleNet(when, msg.src, seq,
                           [this, dst, s] { deliverSlot(dst, s); });
    } else {
        eps_[here].outbox[dst].push_back(Staged{when, msg.src, seq, msg});
    }
}

void
MeshNetwork::exchangeWindows()
{
    for (Endpoint &src : eps_) {
        for (std::size_t dst = 0; dst < eps_.size(); ++dst) {
            std::vector<Staged> &box = src.outbox[dst];
            if (box.empty())
                continue;
            Endpoint &ep = eps_[dst];
            for (const Staged &st : box) {
                std::uint32_t s = allocSlot(ep);
                slot(ep, s) = st.msg;
                ++ep.inFlight;
                const std::uint32_t d = static_cast<std::uint32_t>(dst);
                ep.eq->scheduleNet(st.when, st.src, st.seq,
                                   [this, d, s] { deliverSlot(d, s); });
            }
            box.clear();
        }
    }
}

void
MeshNetwork::send(const protocol::Message &msg)
{
    if (msg.dest >= deliver_.size() || !deliver_[msg.dest])
        panic("MeshNetwork: no receiver for %s", msg.toString().c_str());
    Endpoint &src = eps_[static_cast<std::size_t>(shardOf_[msg.src])];
    ++src.messages;
    if (protocol::carriesData(msg.type))
        ++src.dataMessages;
    Cycles lat = transit(msg.src, msg.dest);
    Tick when = src.eq->now() + lat;
    if (perturb_) {
        when += perturb_(msg);
        // Clamp per (src, dest) pair: jitter must never reorder the
        // point-to-point FIFO the protocol's race resolution assumes.
        Tick &last = lastDelivery_[static_cast<std::size_t>(msg.src) *
                                       static_cast<std::size_t>(numNodes_) +
                                   msg.dest];
        when = std::max(when, last);
        last = when;
    }
    inject(msg, when);
}

void
MeshNetwork::sendAt(const protocol::Message &msg, Tick departure)
{
    Endpoint &src = eps_[static_cast<std::size_t>(shardOf_[msg.src])];
    if (perturb_) {
        // The jitter clamp requires sends to be observed in departure
        // order; re-create the intermediate event the fast path elides.
        src.eq->scheduleAt(departure, [this, msg] { send(msg); });
        return;
    }
    if (msg.dest >= deliver_.size() || !deliver_[msg.dest])
        panic("MeshNetwork: no receiver for %s", msg.toString().c_str());
    ++src.messages;
    if (protocol::carriesData(msg.type))
        ++src.dataMessages;
    inject(msg, departure + transit(msg.src, msg.dest));
}

} // namespace flashsim::network
